/**
 * @file
 * ShardPool unit tests: every shard runs exactly once per phase, the
 * runPhase return is a true barrier (all shard work complete), the
 * 1-shard pool runs inline on the calling thread, and the per-phase
 * data handoff (coordinator writes before the phase, workers read
 * during it, coordinator reads worker results after it) is ordered by
 * the pool's release/acquire protocol — the property TSan checks over
 * the full network in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sim/shard_pool.hh"

namespace mmr
{
namespace
{

TEST(ShardPool, EveryShardRunsOncePerPhase)
{
    ShardPool pool(4);
    ASSERT_EQ(pool.shards(), 4u);
    std::vector<std::atomic<unsigned>> runs(4);
    for (auto &r : runs)
        r = 0;
    for (unsigned phase = 0; phase < 50; ++phase)
        pool.runPhase(phase, [&](unsigned s) { ++runs[s]; });
    for (unsigned s = 0; s < 4; ++s)
        EXPECT_EQ(runs[s].load(), 50u) << "shard " << s;
}

TEST(ShardPool, SingleShardRunsInlineOnCallingThread)
{
    ShardPool pool(1);
    const auto caller = std::this_thread::get_id();
    bool ran = false;
    pool.runPhase(0, [&](unsigned s) {
        EXPECT_EQ(s, 0u);
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ran = true;
    });
    EXPECT_TRUE(ran);
}

TEST(ShardPool, CoordinatorRunsShardZero)
{
    ShardPool pool(3);
    const auto caller = std::this_thread::get_id();
    std::atomic<bool> zeroOnCaller{false};
    pool.runPhase(0, [&](unsigned s) {
        if (s == 0)
            zeroOnCaller = std::this_thread::get_id() == caller;
    });
    EXPECT_TRUE(zeroOnCaller.load());
}

TEST(ShardPool, RunPhaseIsABarrier)
{
    // Workers write their slot; the coordinator reads all slots after
    // runPhase returns.  Any missing write is a barrier failure (and
    // a TSan report when run under the sanitizer job).
    ShardPool pool(4);
    std::vector<std::uint64_t> slot(4, 0);
    for (std::uint64_t phase = 1; phase <= 200; ++phase) {
        pool.runPhase(phase, [&](unsigned s) { slot[s] = phase; });
        for (unsigned s = 0; s < 4; ++s)
            ASSERT_EQ(slot[s], phase) << "shard " << s;
    }
}

TEST(ShardPool, PhasesAreSequencedAcrossShards)
{
    // Phase N+1 must observe every shard's phase-N result: each shard
    // sums all slots written in the previous phase.
    ShardPool pool(2);
    std::vector<std::uint64_t> prev(2, 1);
    std::vector<std::uint64_t> cur(2, 0);
    std::uint64_t expect = 2; // sum of prev at phase start
    for (unsigned phase = 0; phase < 64; ++phase) {
        pool.runPhase(phase, [&](unsigned s) {
            cur[s] = prev[0] + prev[1];
        });
        EXPECT_EQ(cur[0], expect);
        EXPECT_EQ(cur[1], expect);
        prev = cur;
        expect = cur[0] + cur[1];
    }
}

} // namespace
} // namespace mmr
