/**
 * @file
 * Parallel sweep runner (sim/sweep.hh): worker-count clamping, result
 * ordering, and — the property everything else rests on — per-point
 * result digests that are bit-identical no matter how many worker
 * threads execute the sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/sweep.hh"

namespace mmr
{
namespace
{

/** A small but non-trivial grid: four loads, two schedulers. */
std::vector<ExperimentConfig>
smallGrid()
{
    std::vector<ExperimentConfig> cfgs;
    for (const SchedulerKind sched :
         {SchedulerKind::BiasedPriority, SchedulerKind::FixedPriority}) {
        for (const double load : {0.3, 0.5, 0.7, 0.9}) {
            ExperimentConfig cfg;
            cfg.router.numPorts = 4;
            cfg.router.vcsPerPort = 32;
            cfg.router.candidates = 4;
            cfg.router.scheduler = sched;
            cfg.offeredLoad = load;
            cfg.warmupCycles = 500;
            cfg.measureCycles = 3000;
            cfg.seed = 42;
            cfgs.push_back(cfg);
        }
    }
    return cfgs;
}

TEST(Sweep, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(Sweep, EmptyGridReturnsEmpty)
{
    EXPECT_TRUE(runExperiments({}, 4).empty());
}

TEST(Sweep, ResultsComeBackInInputOrder)
{
    const auto cfgs = smallGrid();
    const auto results = runExperiments(cfgs, 4);
    ASSERT_EQ(results.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        EXPECT_DOUBLE_EQ(results[i].offeredLoad, cfgs[i].offeredLoad)
            << "point " << i;
}

TEST(Sweep, OnDoneFiresOncePerPoint)
{
    const auto cfgs = smallGrid();
    std::atomic<unsigned> calls{0};
    std::vector<bool> seen(cfgs.size(), false);
    runExperiments(cfgs, 3,
                   [&](std::size_t i, const ExperimentResult &) {
                       ++calls;
                       EXPECT_FALSE(seen[i]) << "duplicate completion";
                       seen[i] = true;
                   });
    EXPECT_EQ(calls.load(), cfgs.size());
}

/**
 * The tentpole property: running the same grid serially and on four
 * workers yields bit-identical per-point digests.  Parallelism may
 * only change which OS thread executes a point, never its result.
 */
TEST(Sweep, DigestsIdenticalSerialVsFourJobs)
{
    const auto cfgs = smallGrid();
    const auto serial = runExperiments(cfgs, 1);
    const auto parallel4 = runExperiments(cfgs, 4);
    ASSERT_EQ(serial.size(), parallel4.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(resultDigest(serial[i]), resultDigest(parallel4[i]))
            << "point " << i << " (load " << cfgs[i].offeredLoad
            << ", sched "
            << to_string(cfgs[i].router.scheduler) << ")";
    }
}

/** More workers than points is clamped, not an error. */
TEST(Sweep, MoreJobsThanPointsIsFine)
{
    auto cfgs = smallGrid();
    cfgs.resize(2);
    const auto results = runExperiments(cfgs, 16);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[0].flitsDelivered, 0u);
    EXPECT_GT(results[1].flitsDelivered, 0u);
}

} // namespace
} // namespace mmr
