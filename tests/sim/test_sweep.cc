/**
 * @file
 * Parallel sweep runner (sim/sweep.hh): worker-count clamping, result
 * ordering, and — the property everything else rests on — per-point
 * result digests that are bit-identical no matter how many worker
 * threads execute the sweep.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <vector>

#include "sim/sweep.hh"

namespace mmr
{
namespace
{

/** A small but non-trivial grid: four loads, two schedulers. */
std::vector<ExperimentConfig>
smallGrid()
{
    std::vector<ExperimentConfig> cfgs;
    for (const SchedulerKind sched :
         {SchedulerKind::BiasedPriority, SchedulerKind::FixedPriority}) {
        for (const double load : {0.3, 0.5, 0.7, 0.9}) {
            ExperimentConfig cfg;
            cfg.router.numPorts = 4;
            cfg.router.vcsPerPort = 32;
            cfg.router.candidates = 4;
            cfg.router.scheduler = sched;
            cfg.offeredLoad = load;
            cfg.warmupCycles = 500;
            cfg.measureCycles = 3000;
            cfg.seed = 42;
            cfgs.push_back(cfg);
        }
    }
    return cfgs;
}

TEST(Sweep, DefaultJobsIsAtLeastOne)
{
    EXPECT_GE(defaultJobs(), 1u);
}

TEST(Sweep, EmptyGridReturnsEmpty)
{
    EXPECT_TRUE(runExperiments({}, 4).empty());
}

TEST(Sweep, ResultsComeBackInInputOrder)
{
    const auto cfgs = smallGrid();
    const auto results = runExperiments(cfgs, 4);
    ASSERT_EQ(results.size(), cfgs.size());
    for (std::size_t i = 0; i < cfgs.size(); ++i)
        EXPECT_DOUBLE_EQ(results[i].offeredLoad, cfgs[i].offeredLoad)
            << "point " << i;
}

TEST(Sweep, OnDoneFiresOncePerPoint)
{
    const auto cfgs = smallGrid();
    std::atomic<unsigned> calls{0};
    std::vector<bool> seen(cfgs.size(), false);
    runExperiments(cfgs, 3,
                   [&](std::size_t i, const ExperimentResult &) {
                       ++calls;
                       EXPECT_FALSE(seen[i]) << "duplicate completion";
                       seen[i] = true;
                   });
    EXPECT_EQ(calls.load(), cfgs.size());
}

/**
 * The tentpole property: running the same grid serially and on four
 * workers yields bit-identical per-point digests.  Parallelism may
 * only change which OS thread executes a point, never its result.
 */
TEST(Sweep, DigestsIdenticalSerialVsFourJobs)
{
    const auto cfgs = smallGrid();
    const auto serial = runExperiments(cfgs, 1);
    const auto parallel4 = runExperiments(cfgs, 4);
    ASSERT_EQ(serial.size(), parallel4.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(resultDigest(serial[i]), resultDigest(parallel4[i]))
            << "point " << i << " (load " << cfgs[i].offeredLoad
            << ", sched "
            << to_string(cfgs[i].router.scheduler) << ")";
    }
}

/**
 * Histograms, not just scalar digests: the per-stage and per-class
 * latency histograms harvested from a parallel sweep are bucket-for-
 * bucket identical to the serial run's, so percentile columns computed
 * from merged shards never depend on --jobs.
 */
TEST(Sweep, HistogramsIdenticalSerialVsFourJobs)
{
    const auto cfgs = smallGrid();
    const auto serial = runExperiments(cfgs, 1);
    const auto parallel4 = runExperiments(cfgs, 4);
    ASSERT_EQ(serial.size(), parallel4.size());
    LatencyHistogram mergedSerial, mergedParallel;
    for (std::size_t i = 0; i < serial.size(); ++i) {
        for (std::size_t s = 0; s < kNumLatencyStages; ++s)
            EXPECT_TRUE(serial[i].stageHist[s].identical(
                parallel4[i].stageHist[s]))
                << "point " << i << " stage " << s;
        EXPECT_TRUE(serial[i].cbr.delayHist.identical(
            parallel4[i].cbr.delayHist))
            << "point " << i;
        mergedSerial.merge(serial[i].cbr.delayHist);
        mergedParallel.merge(parallel4[i].cbr.delayHist);
    }
    EXPECT_TRUE(mergedSerial.identical(mergedParallel));
    EXPECT_GT(mergedSerial.count(), 0u);
}

/**
 * Regression: points of one sweep sharing an observability output path
 * used to race (parallel) or silently overwrite each other (serial),
 * leaving one winner's file.  The runner now gives every point its own
 * ".point<N>" path; the caller's exact path is reserved for
 * single-point runs.
 */
TEST(Sweep, SharedStatsPathFansOutPerPoint)
{
    const std::string base =
        ::testing::TempDir() + "sweep_stats.json";
    auto cfgs = smallGrid();
    cfgs.resize(3);
    for (auto &cfg : cfgs)
        cfg.obs.statsJsonPath = base;
    const auto results = runExperiments(cfgs, 3);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(std::ifstream(base).good())
        << "multi-point sweep must not write the bare shared path";
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        const std::string path = ::testing::TempDir() +
                                 "sweep_stats.point" +
                                 std::to_string(i) + ".json";
        std::ifstream in(path);
        EXPECT_TRUE(in.good()) << "missing per-point file " << path;
        std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
        EXPECT_NE(text.find("\"histograms\""), std::string::npos)
            << path;
        std::remove(path.c_str());
    }
}

/** A single-point "sweep" keeps the caller's exact output path. */
TEST(Sweep, SinglePointKeepsExactPath)
{
    const std::string base =
        ::testing::TempDir() + "sweep_single.json";
    auto cfgs = smallGrid();
    cfgs.resize(1);
    cfgs[0].obs.statsJsonPath = base;
    runExperiments(cfgs, 1);
    EXPECT_TRUE(std::ifstream(base).good());
    std::remove(base.c_str());
}

/** More workers than points is clamped, not an error. */
TEST(Sweep, MoreJobsThanPointsIsFine)
{
    auto cfgs = smallGrid();
    cfgs.resize(2);
    const auto results = runExperiments(cfgs, 16);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_GT(results[0].flitsDelivered, 0u);
    EXPECT_GT(results[1].flitsDelivered, 0u);
}

} // namespace
} // namespace mmr
