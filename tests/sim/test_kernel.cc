/**
 * @file
 * Unit tests for the cycle kernel and the event queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/kernel.hh"

namespace mmr
{
namespace
{

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(5, [&] { fired.push_back(5); });
    q.schedule(2, [&] { fired.push_back(2); });
    q.schedule(9, [&] { fired.push_back(9); });
    q.runUntil(10);
    EXPECT_EQ(fired, (std::vector<int>{2, 5, 9}));
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameCycleIsFifo)
{
    EventQueue q;
    std::vector<int> fired;
    for (int i = 0; i < 5; ++i)
        q.schedule(3, [&fired, i] { fired.push_back(i); });
    q.runUntil(3);
    EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilIsInclusiveAndPartial)
{
    EventQueue q;
    int fired = 0;
    q.schedule(3, [&] { ++fired; });
    q.schedule(4, [&] { ++fired; });
    q.runUntil(3);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.nextCycle(), 4u);
    q.runUntil(4);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue q;
    int fired = 0;
    const auto id = q.schedule(1, [&] { ++fired; });
    q.schedule(1, [&] { ++fired; });
    q.cancel(id);
    EXPECT_EQ(q.pendingCount(), 1u);
    q.runUntil(5);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop)
{
    EventQueue q;
    const auto id = q.schedule(1, [] {});
    q.runUntil(2);
    q.cancel(id); // must not underflow or crash
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireKeepsPendingEventsAlive)
{
    // Regression: cancelling an already-fired event used to corrupt
    // the live count, making the queue report empty while an event
    // was still pending.
    EventQueue q;
    int fired = 0;
    const auto early = q.schedule(1, [&] { ++fired; });
    q.schedule(7, [&] { ++fired; });
    q.runUntil(2);
    q.cancel(early);
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_EQ(q.nextCycle(), 7u);
    q.runUntil(10);
    EXPECT_EQ(fired, 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelIsNoop)
{
    EventQueue q;
    int fired = 0;
    const auto id = q.schedule(2, [&] { ++fired; });
    q.schedule(2, [&] { ++fired; });
    q.cancel(id);
    q.cancel(id);
    EXPECT_EQ(q.pendingCount(), 1u);
    q.runUntil(5);
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TracksLastRunCycle)
{
    EventQueue q;
    EXPECT_EQ(q.lastRunCycle(), 0u);
    q.runUntil(42);
    EXPECT_EQ(q.lastRunCycle(), 42u);
    q.runUntil(42); // re-running the same cycle is legal
    EXPECT_EQ(q.lastRunCycle(), 42u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    std::vector<int> fired;
    q.schedule(1, [&] {
        fired.push_back(1);
        q.schedule(2, [&] { fired.push_back(2); });
    });
    q.runUntil(1);
    EXPECT_EQ(fired, (std::vector<int>{1}));
    q.runUntil(2);
    EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

/** Probe component recording the phase call pattern. */
class Probe : public Clocked
{
  public:
    explicit Probe(std::vector<std::string> *log_, std::string name_)
        : log(log_), name(std::move(name_))
    {
    }
    void evaluate(Cycle now) override
    {
        log->push_back(name + ":eval@" + std::to_string(now));
    }
    void advance(Cycle now) override
    {
        log->push_back(name + ":adv@" + std::to_string(now));
    }

  private:
    std::vector<std::string> *log;
    std::string name;
};

TEST(Kernel, TwoPhaseOrdering)
{
    Kernel k;
    std::vector<std::string> log;
    Probe a(&log, "a"), b(&log, "b");
    k.add(&a, "a");
    k.add(&b, "b");
    k.run(2);
    // All evaluates precede all advances within a cycle.
    ASSERT_EQ(log.size(), 8u);
    EXPECT_EQ(log[0], "a:eval@0");
    EXPECT_EQ(log[1], "b:eval@0");
    EXPECT_EQ(log[2], "a:adv@0");
    EXPECT_EQ(log[3], "b:adv@0");
    EXPECT_EQ(log[4], "a:eval@1");
    EXPECT_EQ(k.now(), 2u);
}

TEST(Kernel, EventsRunBeforeComponents)
{
    Kernel k;
    std::vector<std::string> log;
    Probe a(&log, "a");
    k.add(&a);
    k.events().schedule(1, [&] { log.push_back("event@1"); });
    k.run(2);
    // Cycle 1 sequence: event first, then evaluate.
    const auto ev = std::find(log.begin(), log.end(), "event@1");
    const auto eval1 = std::find(log.begin(), log.end(), "a:eval@1");
    ASSERT_NE(ev, log.end());
    ASSERT_NE(eval1, log.end());
    EXPECT_LT(ev - log.begin(), eval1 - log.begin());
}

TEST(Kernel, StepAdvancesClock)
{
    Kernel k;
    EXPECT_EQ(k.now(), 0u);
    k.step();
    EXPECT_EQ(k.now(), 1u);
    k.run(9);
    EXPECT_EQ(k.now(), 10u);
}

TEST(KernelDeath, NullComponentPanics)
{
    Kernel k;
    EXPECT_DEATH(k.add(nullptr), "null component");
}

} // namespace
} // namespace mmr
