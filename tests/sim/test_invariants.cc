/**
 * @file
 * Tests for the invariant-checking framework and for each named
 * conservation-law invariant: every checker must fire (panic) on a
 * seeded violation and stay silent on healthy state.
 */

#include <gtest/gtest.h>

#include "router/router.hh"
#include "router/switch_sched.hh"
#include "sim/invariant.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

RouterConfig
smallConfig()
{
    RouterConfig cfg;
    cfg.numPorts = 4;
    cfg.vcsPerPort = 8;
    cfg.vcBufferFlits = 4;
    cfg.candidates = 2;
    return cfg;
}

// ---------------------------------------------------------------------
// Framework
// ---------------------------------------------------------------------

TEST(InvariantFramework, EnabledByDefaultInTests)
{
    // MMR_INVARIANTS is ON by default and tests run without the env
    // override, so auditing must be active everywhere.
    EXPECT_TRUE(invariant::enabled());
}

TEST(InvariantFramework, RuntimeOverrideWins)
{
    invariant::setEnabled(false);
    EXPECT_FALSE(invariant::enabled());
    invariant::setEnabled(true);
    EXPECT_TRUE(invariant::enabled());
    invariant::clearOverride();
    EXPECT_TRUE(invariant::enabled());
}

TEST(InvariantFramework, RegistryTracksNames)
{
    InvariantChecker chk;
    EXPECT_EQ(chk.size(), 0u);
    chk.add("alpha", [](Cycle) {});
    chk.add("beta", [](Cycle) {}, 4);
    EXPECT_EQ(chk.size(), 2u);
    EXPECT_TRUE(chk.has("alpha"));
    EXPECT_FALSE(chk.has("gamma"));
    EXPECT_EQ(chk.names(),
              (std::vector<std::string>{"alpha", "beta"}));
}

TEST(InvariantFramework, AdvanceHonorsPeriods)
{
    InvariantChecker chk;
    unsigned every = 0, strided = 0;
    chk.add("every-cycle", [&](Cycle) { ++every; });
    chk.add("strided", [&](Cycle) { ++strided; }, 4);
    for (Cycle c = 0; c < 8; ++c)
        chk.advance(c);
    EXPECT_EQ(every, 8u);
    EXPECT_EQ(strided, 2u); // cycles 0 and 4
    EXPECT_EQ(chk.checksRun(), 10u);
}

TEST(InvariantFramework, DisabledSkipsChecks)
{
    InvariantChecker chk;
    unsigned calls = 0;
    chk.add("counted", [&](Cycle) { ++calls; });
    invariant::setEnabled(false);
    chk.advance(0);
    chk.checkAll(0);
    EXPECT_EQ(calls, 0u);
    invariant::clearOverride();
    chk.advance(1);
    EXPECT_EQ(calls, 1u);
}

TEST(InvariantFramework, RunByNameIgnoresPeriodAndPassesCycle)
{
    InvariantChecker chk;
    Cycle seen = 0;
    chk.add("probe", [&](Cycle now) { seen = now; }, 1000);
    chk.run("probe", 123);
    EXPECT_EQ(seen, 123u);
}

TEST(InvariantFrameworkDeath, UnknownNamePanics)
{
    InvariantChecker chk;
    EXPECT_DEATH(chk.run("nope", 0), "no invariant named");
}

TEST(InvariantFrameworkDeath, DuplicateRegistrationPanics)
{
    InvariantChecker chk;
    chk.add("dup", [](Cycle) {});
    EXPECT_DEATH(chk.add("dup", [](Cycle) {}), "registered twice");
}

// ---------------------------------------------------------------------
// Router registration
// ---------------------------------------------------------------------

TEST(RouterInvariants, RegistersTheFullSet)
{
    MmrRouter router(smallConfig());
    InvariantChecker chk;
    router.registerInvariants(chk);
    for (const char *name :
         {"flit-conservation", "vc-occupancy", "vc-legality",
          "admission-ledger", "matching-validity", "credit-ledger"}) {
        EXPECT_TRUE(chk.has(name)) << name;
    }
    EXPECT_GE(chk.size(), 6u);
}

TEST(RouterInvariants, HealthyRouterPassesAllChecks)
{
    MmrRouter router(smallConfig());
    const ConnId id = router.openCbr(0, 1, 10.0 * kMbps);
    ASSERT_NE(id, kInvalidConn);
    Flit f;
    ASSERT_TRUE(router.inject(id, f));

    InvariantChecker chk;
    router.registerInvariants(chk);
    chk.checkAll(0); // would panic on any violation
    EXPECT_EQ(chk.checksRun(), chk.size());

    Kernel kernel;
    kernel.add(&router, "router");
    kernel.add(&chk, "invariants");
    kernel.run(64); // flit drains through the switch under audit
    EXPECT_EQ(router.flitsForwarded(), 1u);
}

// ---------------------------------------------------------------------
// Seeded violations: every named invariant must fire
// ---------------------------------------------------------------------

TEST(InvariantViolationDeath, FlitConservation)
{
    MmrRouter router(smallConfig());
    const ConnId id = router.openBestEffort(0, 1);
    ASSERT_NE(id, kInvalidConn);
    Flit f;
    ASSERT_TRUE(router.inject(id, f));
    InvariantChecker chk;
    router.registerInvariants(chk);

    // Remove the flit behind the router's back (keeping the occupancy
    // counter in step, so the theft is invisible to vc-occupancy): it
    // is now neither buffered nor forwarded, so a flit was "dropped".
    const SegmentParams *p = router.connection(id);
    ASSERT_NE(p, nullptr);
    router.inputMemory(p->in).vc(p->inVc).pop();
    router.inputMemory(p->in).noteDrained(p->inVc);
    EXPECT_DEATH(chk.run("flit-conservation", 0),
                 "invariant 'flit-conservation' violated");
}

TEST(InvariantViolationDeath, VcOccupancy)
{
    MmrRouter router(smallConfig());
    const ConnId id = router.openBestEffort(2, 3);
    ASSERT_NE(id, kInvalidConn);
    Flit f;
    ASSERT_TRUE(router.inject(id, f));
    InvariantChecker chk;
    router.registerInvariants(chk);

    // Popping without noteDrained desynchronizes the occupancy
    // counter and the flits-available bit vector from the FIFOs.
    const SegmentParams *p = router.connection(id);
    router.inputMemory(p->in).vc(p->inVc).pop();
    EXPECT_DEATH(chk.run("vc-occupancy", 0),
                 "invariant 'vc-occupancy' violated");
}

TEST(InvariantViolationDeath, VcLegality)
{
    MmrRouter router(smallConfig());
    InvariantChecker chk;
    router.registerInvariants(chk);

    // A free VC must never carry an output mapping.
    router.inputMemory(1).vc(5).setMapping(2, 3);
    EXPECT_DEATH(chk.run("vc-legality", 0),
                 "invariant 'vc-legality' violated");
}

TEST(InvariantViolationDeath, AdmissionLedger)
{
    MmrRouter router(smallConfig());
    const ConnId id = router.openCbr(0, 1, 20.0 * kMbps);
    ASSERT_NE(id, kInvalidConn);
    InvariantChecker chk;
    router.registerInvariants(chk);
    chk.run("admission-ledger", 0); // healthy

    // Releasing bandwidth while the segment is still installed makes
    // the allocated register drift below the sum of bound segments.
    const SegmentParams *p = router.connection(id);
    ASSERT_GT(p->allocCycles, 0u);
    router.admission().releaseCbr(p->out, p->allocCycles);
    EXPECT_DEATH(chk.run("admission-ledger", 0),
                 "invariant 'admission-ledger' violated");
}

TEST(InvariantViolationDeath, MatchingValidityOutputCollision)
{
    Matching m;
    Candidate a, b;
    a.in = 0;
    a.out = 2;
    b.in = 1;
    b.out = 2;
    m.push_back(a);
    m.push_back(b);
    ASSERT_FALSE(SwitchScheduler::validate(m, 4, false));
    EXPECT_DEATH(SwitchScheduler::auditMatching(m, 4, false),
                 "invariant 'matching-validity' violated");
    // With output sharing allowed (Perfect switch) the same matching
    // is legal.
    SwitchScheduler::auditMatching(m, 4, true);
}

TEST(InvariantViolationDeath, MatchingValidityInputCollision)
{
    Matching m;
    Candidate a, b;
    a.in = 3;
    a.out = 0;
    b.in = 3;
    b.out = 1;
    m.push_back(a);
    m.push_back(b);
    EXPECT_DEATH(SwitchScheduler::auditMatching(m, 4, false),
                 "matched twice");
}

TEST(InvariantViolationDeath, MatchingValidityPortRange)
{
    Matching m;
    Candidate c;
    c.in = 9;
    c.out = 0;
    m.push_back(c);
    EXPECT_DEATH(SwitchScheduler::auditMatching(m, 4, false),
                 "outside the");
}

TEST(InvariantViolationDeath, CreditLedgerCensusMismatch)
{
    CreditManager cm(2, 4, 3);
    cm.consume(0, 0);
    // An honest census (one flit sitting downstream of (0,0)) passes.
    const auto honest = [](PortId p, VcId v) -> unsigned {
        return (p == 0 && v == 0) ? 1u : 0u;
    };
    cm.audit(honest);

    InvariantChecker chk;
    // A census that lost the flit breaks credits + occupancy == depth.
    cm.registerInvariants(chk, [](PortId, VcId) { return 0u; });
    EXPECT_DEATH(chk.run("credit-ledger", 0),
                 "invariant 'credit-ledger' violated");
}

TEST(InvariantViolationDeath, EventMonotonicRunBackwards)
{
    EventQueue q;
    q.runUntil(10);
    EXPECT_DEATH(q.runUntil(5),
                 "invariant 'event-monotonic' violated");
}

TEST(InvariantViolationDeath, EventMonotonicScheduleIntoPast)
{
    EventQueue q;
    q.runUntil(10);
    EXPECT_DEATH(q.schedule(3, [] {}),
                 "invariant 'event-monotonic' violated");
}

TEST(KernelInvariants, EventMonotonicRegisteredAndHealthy)
{
    Kernel k;
    InvariantChecker chk;
    k.registerInvariants(chk);
    EXPECT_TRUE(chk.has("event-monotonic"));
    k.events().schedule(5, [] {});
    k.run(3);
    chk.run("event-monotonic", k.now()); // pending future event is fine
}

} // namespace
} // namespace mmr
