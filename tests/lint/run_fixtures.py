#!/usr/bin/env python3
"""Self-test for mmr-lint against the fixture corpus.

Each bad_<rule-with-underscores>.cc fixture must produce exactly one
finding, and that finding must be of the rule named by the file.  The
clean_suppressed.cc fixture exercises the annotation syntax and must
produce zero findings.  Any drift — a rule that stops firing, fires
twice, or leaks into another fixture — fails the test.

Run from anywhere:  python3 tests/lint/run_fixtures.py [--backend=...]
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(ROOT, "tools", "mmr-lint", "mmr_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")


def run_lint(paths, backend):
    with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", delete=False) as tmp:
        report = tmp.name
    try:
        proc = subprocess.run(
            [sys.executable, LINT, f"--backend={backend}",
             "--no-baseline", f"--report={report}", *paths],
            capture_output=True, text=True, cwd=ROOT)
        if proc.returncode not in (0, 1):
            raise SystemExit(
                f"mmr-lint errored (rc={proc.returncode}):\n"
                f"{proc.stdout}{proc.stderr}")
        with open(report) as f:
            return json.load(f)
    finally:
        os.unlink(report)


def main():
    backend = "text"
    for arg in sys.argv[1:]:
        if arg.startswith("--backend="):
            backend = arg.split("=", 1)[1]

    failures = []
    bad = sorted(f for f in os.listdir(FIXTURES)
                 if f.startswith("bad_") and f.endswith(".cc"))
    if not bad:
        raise SystemExit("no bad_*.cc fixtures found")

    for name in bad:
        expected_rule = name[len("bad_"):-len(".cc")].replace("_", "-")
        payload = run_lint([os.path.join(FIXTURES, name)], backend)
        findings = payload["findings"]
        rules = [f["rule"] for f in findings]
        if rules != [expected_rule]:
            failures.append(
                f"{name}: expected exactly one {expected_rule} "
                f"finding, got {rules or 'none'}")
        else:
            print(f"PASS {name}: one {expected_rule} finding")

    clean = os.path.join(FIXTURES, "clean_suppressed.cc")
    payload = run_lint([clean], backend)
    if payload["findings"]:
        rules = [f["rule"] for f in payload["findings"]]
        failures.append(
            f"clean_suppressed.cc: expected zero findings, got {rules}")
    else:
        print("PASS clean_suppressed.cc: zero findings")

    if failures:
        print()
        for f in failures:
            print(f"FAIL {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(bad) + 1} fixture checks passed "
          f"[{payload['backend']}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
