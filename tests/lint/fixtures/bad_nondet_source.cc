// mmr-lint fixture: the nondet-source rule must fire exactly once.
#include <cstdlib>

namespace mmr
{

double
jitterFraction()
{
    // BAD: libc rand() outside src/base/rng.* — unseeded, global, and
    // invisible to the reproducibility contract.
    return static_cast<double>(rand()) / RAND_MAX;
}

} // namespace mmr
