// mmr-lint fixture: the clocked-simclock rule must fire exactly once.
namespace mmr
{

using Cycle = unsigned long long;

namespace simclock
{
Cycle now();
} // namespace simclock

struct Clocked
{
    virtual void evaluate(Cycle) = 0;
    virtual void advance(Cycle) = 0;
    virtual ~Clocked() = default;
};

class InvariantChecker;

class Echo : public Clocked
{
  public:
    void
    evaluate(Cycle now) override
    {
        (void)now;
        // BAD: a tick must take time from the kernel parameter, never
        // the global clock (which may be another shard's in the
        // sharded core).
        last = simclock::now();
    }

    void advance(Cycle) override {}
    void registerInvariants(InvariantChecker &, unsigned) const;

  private:
    Cycle last = 0;
};

} // namespace mmr
