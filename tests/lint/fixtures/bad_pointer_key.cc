// mmr-lint fixture: the pointer-key rule must fire exactly once.
#include <map>

namespace mmr
{

class MmrRouter;

struct Roster
{
    // BAD: ordered by heap address, i.e. by allocation order and ASLR.
    std::map<MmrRouter *, unsigned> ranks;
};

} // namespace mmr
