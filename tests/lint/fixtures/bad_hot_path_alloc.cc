// mmr-lint fixture: the hot-path-alloc rule must fire exactly once,
// on the push_back reached transitively from the MMR_HOT_PATH root.
#include <vector>

#define MMR_HOT_PATH __attribute__((hot))

namespace mmr
{

struct Arbiter
{
    std::vector<unsigned> grants;

    void
    recordGrant(unsigned g)
    {
        // BAD: reachable from the hot root below and may reallocate.
        grants.push_back(g);
    }

    MMR_HOT_PATH void
    evaluateCycle(unsigned winner)
    {
        recordGrant(winner);
    }
};

} // namespace mmr
