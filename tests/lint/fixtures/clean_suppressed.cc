// mmr-lint fixture: every violation below carries a justification
// annotation, so the tool must report zero findings for this file.
#include <unordered_map>

namespace mmr
{

struct Totals
{
    std::unordered_map<unsigned, unsigned> counts;

    unsigned
    sum() const
    {
        unsigned total = 0;
        // mmr-lint: allow(unordered-iter) order-insensitive: a
        // commutative integer sum over all entries.
        for (const auto &kv : counts)
            total += kv.second;
        return total;
    }
};

struct Legacy
{
    // mmr-lint: allow(cycle-type) third-party ABI struct mirrored
    // verbatim; converted to Cycle at the boundary.
    long timeoutCycles = 0;
};

} // namespace mmr
