// mmr-lint fixture: the cycle-type rule must fire exactly once.
namespace mmr
{

struct Probe
{
    // BAD: a flit-cycle deadline in a raw builtin integer where the
    // Cycle type exists (and per-round budgets like allocCycles are
    // exempt by convention, so this is unambiguous).
    long timeoutCycles = 0;
};

} // namespace mmr
