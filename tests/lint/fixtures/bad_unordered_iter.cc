// mmr-lint fixture: the determinism rule must fire exactly once here.
#include <unordered_map>

namespace mmr
{

struct Ledger
{
    std::unordered_map<unsigned, unsigned> credits;

    unsigned
    firstNonZero() const
    {
        // BAD: early-exit over unordered_map — the result depends on
        // the bucket layout.
        for (const auto &kv : credits) {
            if (kv.second != 0)
                return kv.first;
        }
        return 0;
    }
};

} // namespace mmr
