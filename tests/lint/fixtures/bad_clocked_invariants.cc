// mmr-lint fixture: the clocked-invariants rule must fire exactly once.
namespace mmr
{

using Cycle = unsigned long long;

struct Clocked
{
    virtual void evaluate(Cycle) = 0;
    virtual void advance(Cycle) = 0;
    virtual ~Clocked() = default;
};

// BAD: a per-cycle component with simulation state but no
// registerInvariants(InvariantChecker&) hook.
class DriftCounter : public Clocked
{
  public:
    void evaluate(Cycle) override { ++ticks; }
    void advance(Cycle) override {}

  private:
    unsigned long long ticks = 0;
};

} // namespace mmr
