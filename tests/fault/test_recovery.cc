/**
 * @file
 * RecoveryManager tests: EPB re-route after a link failure, clean
 * abandonment when the only legal path vanished (all reservations
 * released), recovery after a mid-backoff repair, bounded retry
 * budgets, replacement re-adoption, and the NetworkInterface
 * integration (stream swaps onto the replacement connection).
 */

#include <gtest/gtest.h>

#include <memory>

#include "fault/recovery.hh"
#include "network/interface.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

NetworkConfig
netCfg()
{
    NetworkConfig c;
    c.router.vcsPerPort = 16;
    c.router.candidates = 4;
    c.seed = 23;
    return c;
}

RecoverySpec
cbrSpec(NodeId src, NodeId dst, double rate_bps)
{
    RecoverySpec s;
    s.src = src;
    s.dst = dst;
    s.klass = TrafficClass::CBR;
    s.rateOrMeanBps = rate_bps;
    return s;
}

class RecoveryTest : public ::testing::Test
{
  protected:
    void
    build(const Topology &t, RecoveryConfig cfg = RecoveryConfig{})
    {
        net = std::make_unique<Network>(t, netCfg());
        mgr = std::make_unique<RecoveryManager>(*net, cfg, 77);
        kernel.add(mgr.get(), "recovery-manager");
        kernel.add(net.get(), "network");
    }

    /** Expect zero reserved bandwidth and all VCs free everywhere. */
    void
    expectAllReservationsReleased()
    {
        const Topology &t = net->topology();
        for (NodeId n = 0; n < t.numNodes(); ++n) {
            auto &r = net->routerAt(n);
            for (const auto &pi : t.ports(n)) {
                EXPECT_EQ(r.admission().allocatedCycles(pi.localPort),
                          0u)
                    << "node " << n << " port " << pi.localPort;
                EXPECT_EQ(r.routing().freeOutputVcCount(pi.localPort),
                          16u)
                    << "node " << n << " port " << pi.localPort;
            }
        }
    }

    std::unique_ptr<Network> net;
    std::unique_ptr<RecoveryManager> mgr;
    Kernel kernel;
};

TEST_F(RecoveryTest, ReroutesAroundFailedLink)
{
    build(Topology::ring(4));
    const auto o = net->openCbr(0, 1, 10 * kMbps);
    ASSERT_TRUE(o.accepted);
    mgr->adopt(o.id, cbrSpec(0, 1, 10 * kMbps));

    ASSERT_TRUE(net->failLink(0, 1));
    EXPECT_EQ(mgr->failuresSeen(), 1u);
    kernel.run(4000);

    const RecoveryStatus *st = mgr->status(o.id);
    ASSERT_NE(st, nullptr);
    ASSERT_EQ(st->state, RecoveryState::Recovered);
    EXPECT_NE(st->replacement, o.id);
    EXPECT_EQ(net->connectionState(st->replacement),
              Network::ConnState::Open);
    EXPECT_EQ(mgr->connectionsRecovered(), 1u);
    EXPECT_EQ(mgr->activeRecoveries(), 0u);

    // The replacement was found by EPB over the surviving ring: the
    // long way round, 0-3-2-1.
    const auto path = net->connectionPath(st->replacement);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path[0], 0u);
    EXPECT_EQ(path[1], 3u);
    EXPECT_EQ(path[2], 2u);
    EXPECT_EQ(path[3], 1u);
}

TEST_F(RecoveryTest, OnlyPathVanishedAbandonsCleanly)
{
    // 0-1-2 line: killing 1-2 leaves no legal path from 0 to 2, so
    // every re-setup must be refused and the recovery abandoned with
    // nothing left reserved anywhere.
    Topology line(3);
    line.addLink(0, 1);
    line.addLink(1, 2);
    RecoveryConfig cfg;
    cfg.maxRetries = 3;
    cfg.baseBackoffCycles = 16;
    cfg.maxBackoffCycles = 64;
    cfg.setupTimeoutCycles = 256;
    build(line, cfg);

    const auto o = net->openCbr(0, 2, 10 * kMbps);
    ASSERT_TRUE(o.accepted);
    mgr->adopt(o.id, cbrSpec(0, 2, 10 * kMbps));

    ASSERT_TRUE(net->failLink(1, 2));
    kernel.run(4000);

    const RecoveryStatus *st = mgr->status(o.id);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->state, RecoveryState::Abandoned);
    EXPECT_EQ(st->attempts, cfg.maxRetries);
    EXPECT_EQ(mgr->retriesLaunched(), cfg.maxRetries);
    EXPECT_EQ(mgr->connectionsAbandoned(), 1u);
    EXPECT_EQ(mgr->connectionsRecovered(), 0u);
    EXPECT_EQ(mgr->activeRecoveries(), 0u);
    EXPECT_EQ(net->pendingSetups(), 0u);
    expectAllReservationsReleased();
}

TEST_F(RecoveryTest, RepairMidBackoffLetsRecoverySucceed)
{
    Topology line(3);
    line.addLink(0, 1);
    line.addLink(1, 2);
    RecoveryConfig cfg;
    cfg.maxRetries = 12;
    cfg.baseBackoffCycles = 64;
    build(line, cfg);

    const auto o = net->openCbr(0, 2, 10 * kMbps);
    ASSERT_TRUE(o.accepted);
    mgr->adopt(o.id, cbrSpec(0, 2, 10 * kMbps));

    ASSERT_TRUE(net->failLink(1, 2));
    kernel.run(300); // burn a few refused attempts
    EXPECT_GE(mgr->retriesLaunched(), 1u);
    ASSERT_TRUE(net->repairLink(1, 2));
    kernel.run(6000);

    const RecoveryStatus *st = mgr->status(o.id);
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->state, RecoveryState::Recovered);
    EXPECT_LE(st->attempts, cfg.maxRetries);
    EXPECT_EQ(net->connectionState(st->replacement),
              Network::ConnState::Open);
}

TEST_F(RecoveryTest, ReplacementIsAdoptedForTheNextFailure)
{
    build(Topology::ring(4));
    const auto o = net->openCbr(0, 1, 10 * kMbps);
    ASSERT_TRUE(o.accepted);
    mgr->adopt(o.id, cbrSpec(0, 1, 10 * kMbps));

    ASSERT_TRUE(net->failLink(0, 1));
    kernel.run(4000);
    const RecoveryStatus *first = mgr->status(o.id);
    ASSERT_NE(first, nullptr);
    ASSERT_EQ(first->state, RecoveryState::Recovered);
    const ConnId second_id = first->replacement;
    EXPECT_TRUE(mgr->adopted(second_id))
        << "the replacement must be re-adopted automatically";

    // Kill a link on the replacement path (0-3-2-1).  The direct link
    // is back up, so the second recovery lands on it.
    ASSERT_TRUE(net->repairLink(0, 1));
    ASSERT_TRUE(net->failLink(2, 3));
    kernel.run(4000);

    const RecoveryStatus *chained = mgr->status(second_id);
    ASSERT_NE(chained, nullptr);
    EXPECT_EQ(chained->state, RecoveryState::Recovered);
    const auto path = net->connectionPath(chained->replacement);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], 0u);
    EXPECT_EQ(path[1], 1u);
    EXPECT_EQ(mgr->connectionsRecovered(), 2u);
}

TEST_F(RecoveryTest, UnadoptedConnectionsAreIgnored)
{
    build(Topology::ring(4));
    const auto o = net->openCbr(0, 1, 10 * kMbps);
    ASSERT_TRUE(o.accepted);

    ASSERT_TRUE(net->failLink(0, 1));
    kernel.run(1000);
    EXPECT_EQ(mgr->failuresSeen(), 0u);
    EXPECT_EQ(mgr->status(o.id), nullptr);
    EXPECT_EQ(mgr->retriesLaunched(), 0u);
}

TEST_F(RecoveryTest, ForgetStopsRecovery)
{
    build(Topology::ring(4));
    const auto o = net->openCbr(0, 1, 10 * kMbps);
    ASSERT_TRUE(o.accepted);
    mgr->adopt(o.id, cbrSpec(0, 1, 10 * kMbps));
    mgr->forget(o.id);

    ASSERT_TRUE(net->failLink(0, 1));
    kernel.run(1000);
    EXPECT_EQ(mgr->failuresSeen(), 0u);
    EXPECT_EQ(mgr->status(o.id), nullptr);
}

TEST_F(RecoveryTest, DisabledManagerInstallsNoHook)
{
    RecoveryConfig cfg;
    cfg.enabled = false;
    build(Topology::ring(4), cfg);
    const auto o = net->openCbr(0, 1, 10 * kMbps);
    ASSERT_TRUE(o.accepted);
    mgr->adopt(o.id, cbrSpec(0, 1, 10 * kMbps));

    ASSERT_TRUE(net->failLink(0, 1));
    kernel.run(1000);
    EXPECT_EQ(mgr->failuresSeen(), 0u);
    EXPECT_EQ(mgr->retriesLaunched(), 0u);
}

TEST_F(RecoveryTest, InterfaceSwapsOntoReplacement)
{
    build(Topology::mesh2d(3, 3));
    NetworkInterface host(*net, 0, 99);
    host.attachRecovery(mgr.get());
    ASSERT_TRUE(host.openCbrStream(8, 100 * kMbps));
    const ConnId orig = host.connections().at(0);
    EXPECT_TRUE(mgr->adopted(orig));

    // Warm the stream up, then cut the first hop of its path.
    for (Cycle c = 0; c < 500; ++c) {
        host.tick(kernel.now());
        kernel.step();
    }
    const auto path = net->connectionPath(orig);
    ASSERT_GE(path.size(), 2u);
    ASSERT_TRUE(net->failLink(path[0], path[1]));

    for (Cycle c = 0; c < 6000; ++c) {
        host.tick(kernel.now());
        kernel.step();
    }

    EXPECT_EQ(host.lostStreams(), 1u);
    EXPECT_EQ(host.reestablishedStreams(), 1u);
    ASSERT_EQ(host.establishedStreams(), 1u);
    const ConnId now_id = host.connections().at(0);
    EXPECT_NE(now_id, orig);
    EXPECT_EQ(net->connectionState(now_id), Network::ConnState::Open);
    EXPECT_GT(host.flitsDroppedInRecovery(), 0u)
        << "arrivals during recovery are dropped with accounting";

    // And the stream actually flows again on the new path.
    const auto delivered_then = net->flitsDelivered();
    for (Cycle c = 0; c < 1000; ++c) {
        host.tick(kernel.now());
        kernel.step();
    }
    EXPECT_GT(net->flitsDelivered(), delivered_then);
}

} // namespace
} // namespace mmr
