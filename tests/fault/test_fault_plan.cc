/**
 * @file
 * FaultPlan tests: seed determinism, horizon bounds, chronological
 * order, partition avoidance, explicit-event parsing and the
 * toSpec()/fromEvents() round trip, and the fault-model spec parser.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "fault/fault_plan.hh"
#include "network/topology.hh"

namespace mmr
{
namespace
{

FaultModel
churnModel(double fail_per_10k = 2.0, Cycle repair = 1000,
           Cycle horizon = 20000)
{
    FaultModel m;
    m.linkFailPer10k = fail_per_10k;
    m.meanRepairCycles = repair;
    m.horizon = horizon;
    return m;
}

std::pair<NodeId, NodeId>
linkKey(NodeId a, NodeId b)
{
    return {std::min(a, b), std::max(a, b)};
}

/** Replay the schedule and return the largest concurrent down-set. */
std::size_t
maxConcurrentDowns(const FaultPlan &plan)
{
    std::set<std::pair<NodeId, NodeId>> down;
    std::size_t worst = 0;
    for (const auto &e : plan.events()) {
        if (e.kind == FaultEvent::Kind::LinkDown)
            down.insert(linkKey(e.a, e.b));
        else
            down.erase(linkKey(e.a, e.b));
        worst = std::max(worst, down.size());
    }
    return worst;
}

TEST(FaultPlan, SameSeedSameSchedule)
{
    const Topology t = Topology::mesh2d(3, 3);
    const FaultModel m = churnModel();
    const FaultPlan a = FaultPlan::random(t, m, 99);
    const FaultPlan b = FaultPlan::random(t, m, 99);
    ASSERT_EQ(a.events().size(), b.events().size());
    EXPECT_GT(a.events().size(), 0u) << "churn model produced nothing";
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].at, b.events()[i].at);
        EXPECT_EQ(a.events()[i].kind, b.events()[i].kind);
        EXPECT_EQ(a.events()[i].a, b.events()[i].a);
        EXPECT_EQ(a.events()[i].b, b.events()[i].b);
    }
    EXPECT_EQ(a.toSpec(), b.toSpec());
}

TEST(FaultPlan, DifferentSeedsDiffer)
{
    const Topology t = Topology::mesh2d(3, 3);
    const FaultModel m = churnModel();
    EXPECT_NE(FaultPlan::random(t, m, 1).toSpec(),
              FaultPlan::random(t, m, 2).toSpec());
}

TEST(FaultPlan, EventsChronologicalAndWithinHorizon)
{
    const Topology t = Topology::torus2d(4, 4);
    const FaultPlan plan = FaultPlan::random(t, churnModel(), 7);
    Cycle prev = 0;
    for (const auto &e : plan.events()) {
        EXPECT_GE(e.at, prev) << "events out of order";
        EXPECT_LT(e.at, churnModel().horizon);
        EXPECT_TRUE(t.hasLink(e.a, e.b));
        prev = e.at;
    }
}

TEST(FaultPlan, PartitionAvoidanceOnRing)
{
    // A ring minus one link is a line; removing any second link
    // partitions it.  With repairs disabled every down is permanent,
    // so a partition-avoiding plan can schedule at most one failure
    // no matter how hot the failure rate runs.
    const Topology t = Topology::ring(6);
    FaultModel m = churnModel(50.0, /*repair=*/0, /*horizon=*/50000);
    const FaultPlan plan = FaultPlan::random(t, m, 3);
    EXPECT_LE(plan.events().size(), 1u);
    EXPECT_GT(plan.partitionSkips(), 0u)
        << "a hot failure rate must have tripped the partition guard";
    EXPECT_LE(maxConcurrentDowns(plan), 1u);
}

TEST(FaultPlan, AllowPartitionLiftsTheGuard)
{
    const Topology t = Topology::ring(6);
    FaultModel m = churnModel(50.0, /*repair=*/0, /*horizon=*/50000);
    m.allowPartition = true;
    const FaultPlan plan = FaultPlan::random(t, m, 3);
    EXPECT_GT(plan.events().size(), 1u);
    EXPECT_EQ(plan.partitionSkips(), 0u);
}

TEST(FaultPlan, ChurnNeverExceedsConnectivityBudgetOnMesh)
{
    // With repairs on, concurrent downs happen; replaying the schedule
    // must still never disconnect a 2d mesh when the guard is active.
    const Topology t = Topology::mesh2d(4, 4);
    const FaultPlan plan =
        FaultPlan::random(t, churnModel(20.0, 2000, 40000), 11);
    ASSERT_GT(plan.events().size(), 2u);

    std::set<std::pair<NodeId, NodeId>> down;
    auto connected = [&]() {
        std::vector<bool> seen(t.numNodes(), false);
        std::vector<NodeId> stack{0};
        seen[0] = true;
        unsigned reached = 1;
        while (!stack.empty()) {
            const NodeId n = stack.back();
            stack.pop_back();
            for (const auto &pi : t.ports(n)) {
                const NodeId nb = pi.neighbor;
                if (down.count(linkKey(n, nb)) || seen[nb])
                    continue;
                seen[nb] = true;
                ++reached;
                stack.push_back(nb);
            }
        }
        return reached == t.numNodes();
    };

    for (const auto &e : plan.events()) {
        if (e.kind == FaultEvent::Kind::LinkDown)
            down.insert(linkKey(e.a, e.b));
        else
            down.erase(linkKey(e.a, e.b));
        EXPECT_TRUE(connected())
            << "plan disconnected the mesh at cycle " << e.at;
    }
}

TEST(FaultPlan, FromEventsParsesAndRoundTrips)
{
    const Topology t = Topology::ring(4);
    const FaultPlan plan =
        FaultPlan::fromEvents("down@500:2-3;up@900:2-3;down@950:0-1", t);
    ASSERT_EQ(plan.events().size(), 3u);
    EXPECT_EQ(plan.events()[0].at, 500u);
    EXPECT_EQ(plan.events()[0].kind, FaultEvent::Kind::LinkDown);
    EXPECT_EQ(plan.events()[0].a, 2u);
    EXPECT_EQ(plan.events()[0].b, 3u);
    EXPECT_EQ(plan.events()[1].kind, FaultEvent::Kind::LinkUp);
    EXPECT_EQ(plan.events()[2].at, 950u);

    // toSpec() must parse back to the identical schedule.
    const FaultPlan again = FaultPlan::fromEvents(plan.toSpec(), t);
    ASSERT_EQ(again.events().size(), plan.events().size());
    for (std::size_t i = 0; i < plan.events().size(); ++i) {
        EXPECT_EQ(again.events()[i].at, plan.events()[i].at);
        EXPECT_EQ(again.events()[i].kind, plan.events()[i].kind);
        EXPECT_EQ(again.events()[i].a, plan.events()[i].a);
        EXPECT_EQ(again.events()[i].b, plan.events()[i].b);
    }
}

TEST(FaultPlan, FromEventsRejectsGarbage)
{
    const Topology t = Topology::ring(4);
    EXPECT_THROW(FaultPlan::fromEvents("down@500:0-2", t),
                 std::runtime_error)
        << "0 and 2 are not adjacent on ring(4)";
    EXPECT_THROW(FaultPlan::fromEvents("sideways@500:0-1", t),
                 std::runtime_error);
    EXPECT_THROW(FaultPlan::fromEvents("down@x:0-1", t),
                 std::runtime_error);
}

TEST(FaultPlan, ParseFaultModelKeysAndDefaults)
{
    const FaultModel m = parseFaultModel(
        "fail=0.01,repair=4000,drop=0.02,corrupt=1e-4,partition=1");
    EXPECT_DOUBLE_EQ(m.linkFailPer10k, 0.01);
    EXPECT_EQ(m.meanRepairCycles, 4000u);
    EXPECT_DOUBLE_EQ(m.probeDropRate, 0.02);
    EXPECT_DOUBLE_EQ(m.corruptRate, 1e-4);
    EXPECT_TRUE(m.allowPartition);

    const FaultModel d = parseFaultModel("fail=0.5");
    EXPECT_DOUBLE_EQ(d.linkFailPer10k, 0.5);
    EXPECT_EQ(d.meanRepairCycles, FaultModel{}.meanRepairCycles);
    EXPECT_DOUBLE_EQ(d.probeDropRate, 0.0);
    EXPECT_FALSE(d.allowPartition);

    EXPECT_THROW(parseFaultModel("fail=0.5,bogus=1"),
                 std::runtime_error);
    EXPECT_THROW(parseFaultModel("drop=1.5"), std::runtime_error)
        << "probabilities above 1 must be rejected";
}

TEST(FaultPlan, EmptinessTracksEventsAndRates)
{
    EXPECT_TRUE(FaultPlan().empty());
    const Topology t = Topology::ring(4);
    EXPECT_FALSE(FaultPlan::fromEvents("down@5:0-1", t).empty());

    FaultPlan rates_only;
    FaultModel m;
    m.corruptRate = 1e-3;
    rates_only.setModel(m);
    EXPECT_FALSE(rates_only.empty())
        << "stochastic rates alone still inject faults";
}

} // namespace
} // namespace mmr
