/**
 * @file
 * FaultInjector tests: scheduled events fire on their cycle through a
 * kernel-driven run; flit corruption is discarded downstream with all
 * credits/VCs returned (nothing wedges); probe-message loss leads to
 * a clean setup timeout with every hop reservation released.
 */

#include <gtest/gtest.h>

#include <memory>

#include "fault/injector.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

NetworkConfig
netCfg()
{
    NetworkConfig c;
    c.router.vcsPerPort = 16;
    c.router.candidates = 4;
    c.seed = 23;
    return c;
}

class InjectorTest : public ::testing::Test
{
  protected:
    /** Injector evaluates before the network, as in the harness. */
    void
    build(const Topology &t, FaultPlan plan, std::uint64_t seed = 5)
    {
        net = std::make_unique<Network>(t, netCfg());
        injector =
            std::make_unique<FaultInjector>(*net, std::move(plan), seed);
        kernel.add(injector.get(), "fault-injector");
        kernel.add(net.get(), "network");
    }

    std::unique_ptr<Network> net;
    std::unique_ptr<FaultInjector> injector;
    Kernel kernel;
};

TEST_F(InjectorTest, AppliesEventsOnSchedule)
{
    const Topology t = Topology::ring(4);
    build(t, FaultPlan::fromEvents("down@10:0-1;up@20:0-1", t));

    kernel.run(10); // cycles 0..9
    EXPECT_TRUE(net->linkIsUp(0, 1)) << "event must not fire early";
    EXPECT_EQ(injector->linkDownsApplied(), 0u);

    kernel.run(1); // cycle 10
    EXPECT_FALSE(net->linkIsUp(0, 1));
    EXPECT_EQ(injector->linkDownsApplied(), 1u);
    EXPECT_FALSE(injector->done());

    kernel.run(10); // through cycle 20
    EXPECT_TRUE(net->linkIsUp(0, 1));
    EXPECT_EQ(injector->linkUpsApplied(), 1u);
    EXPECT_TRUE(injector->done());
    EXPECT_EQ(injector->eventsSkipped(), 0u);
}

TEST_F(InjectorTest, RedundantEventsAreCountedSkipped)
{
    const Topology t = Topology::ring(4);
    // The second down and the first up target a link already in that
    // state; Network refuses them and the injector counts the skips.
    build(t, FaultPlan::fromEvents("down@5:0-1;down@6:0-1;up@7:2-3", t));
    kernel.run(10);
    EXPECT_EQ(injector->linkDownsApplied(), 1u);
    EXPECT_EQ(injector->linkUpsApplied(), 0u);
    EXPECT_EQ(injector->eventsSkipped(), 2u);
}

TEST_F(InjectorTest, CorruptedFlitsAreDiscardedWithoutWedging)
{
    const Topology t = Topology::ring(4);
    FaultPlan plan; // no events; corruption only
    FaultModel m;
    m.corruptRate = 1.0; // every inter-router flit dies on the wire
    plan.setModel(m);
    build(t, std::move(plan));

    const auto o = net->openCbr(0, 1, 100 * kMbps);
    ASSERT_TRUE(o.accepted);

    // Inject a stream of flits; with a 100% corruption rate none may
    // arrive, but the upstream credits must keep coming back or
    // injection would wedge after the VC depth.
    unsigned accepted = 0;
    for (Cycle c = 0; c < 1600; ++c) {
        if (c % 16 == 0) {
            Flit f;
            f.conn = o.id;
            f.createTime = kernel.now();
            if (net->inject(o.id, f, kernel.now()))
                ++accepted;
        }
        kernel.step();
    }
    EXPECT_GE(accepted, 90u) << "credit return must sustain injection";
    EXPECT_GT(injector->flitsCorrupted(), 0u);
    EXPECT_EQ(net->flitsCorrupted(), injector->flitsCorrupted())
        << "every corruption marked at egress is discarded at arrival";
    EXPECT_EQ(net->flitsDelivered(), 0u);
}

TEST_F(InjectorTest, CorruptedDatagramsReleaseTheirLinkVc)
{
    const Topology t = Topology::ring(4);
    FaultPlan plan;
    FaultModel m;
    m.corruptRate = 1.0;
    plan.setModel(m);
    build(t, std::move(plan));

    for (unsigned i = 0; i < 50; ++i)
        net->sendDatagram(0, 2, TrafficClass::BestEffort, 0x9000,
                          kernel.now(), i);
    kernel.run(600);

    EXPECT_EQ(net->datagramsDelivered(), 0u);
    EXPECT_GT(net->datagramsLost(), 0u)
        << "corrupt datagrams count as lost";
    EXPECT_EQ(net->pendingDatagrams(), 0u)
        << "nothing may stay parked on a released VC";

    // The per-hop VCs the dead datagrams held must all be free again.
    const Topology &topo = net->topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        auto &r = net->routerAt(n);
        for (const auto &pi : topo.ports(n))
            EXPECT_EQ(r.routing().freeOutputVcCount(pi.localPort), 16u)
                << "node " << n << " port " << pi.localPort;
    }
}

TEST_F(InjectorTest, LostProbesTimeOutAndReleaseReservations)
{
    const Topology t = Topology::ring(4);
    FaultPlan plan;
    FaultModel m;
    m.probeDropRate = 1.0; // every setup message is lost
    plan.setModel(m);
    build(t, std::move(plan));

    // The injector installs its fall-back source timeout when nobody
    // configured one — a lost probe's reservations must be
    // reclaimable.
    ASSERT_EQ(net->probes().setupTimeout(),
              FaultInjector::kDefaultSetupTimeout);

    const auto token = net->openCbrTimed(0, 2, 10 * kMbps, kernel.now());
    kernel.run(FaultInjector::kDefaultSetupTimeout + 16);

    const auto *r = net->timedResult(token);
    ASSERT_NE(r, nullptr) << "timeout must complete the setup attempt";
    EXPECT_TRUE(r->done);
    EXPECT_FALSE(r->accepted);
    EXPECT_GT(injector->probeMessagesDropped(), 0u);
    EXPECT_GE(net->probes().messagesLost(), 1u);
    EXPECT_GE(net->probes().setupTimeouts(), 1u);
    EXPECT_EQ(net->pendingSetups(), 0u);

    // Clean failure: no bandwidth and no VCs may stay reserved
    // anywhere.
    const Topology &topo = net->topology();
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        auto &r_n = net->routerAt(n);
        for (const auto &pi : topo.ports(n)) {
            EXPECT_EQ(r_n.admission().allocatedCycles(pi.localPort), 0u)
                << "node " << n << " port " << pi.localPort;
            EXPECT_EQ(r_n.routing().freeOutputVcCount(pi.localPort),
                      16u)
                << "node " << n << " port " << pi.localPort;
        }
    }
}

TEST_F(InjectorTest, HookRemovalOnDestruction)
{
    const Topology t = Topology::ring(4);
    FaultPlan plan;
    FaultModel m;
    m.corruptRate = 1.0;
    plan.setModel(m);

    net = std::make_unique<Network>(t, netCfg());
    {
        FaultInjector inj(*net, std::move(plan), 5);
    } // destroyed: the corrupt hook must be gone

    kernel.add(net.get());
    const auto o = net->openCbr(0, 1, 10 * kMbps);
    ASSERT_TRUE(o.accepted);
    Flit f;
    f.conn = o.id;
    ASSERT_TRUE(net->inject(o.id, f, kernel.now()));
    kernel.run(50);
    EXPECT_EQ(net->flitsCorrupted(), 0u);
    EXPECT_EQ(net->flitsDelivered(), 1u);
}

} // namespace
} // namespace mmr
