/**
 * @file
 * Property-based fault tests: randomized seed-derived fault schedules
 * (link churn + probe drops + flit corruption) over mixed topologies
 * with the full invariant battery force-enabled.  Every run must hold
 * all invariants, keep its accounting conservation laws, and
 * reproduce a bit-identical resultDigest when re-run from its seed.
 *
 * The seed count scales with MMR_FAULT_PROP_SEEDS (default 10); CI's
 * sanitizer job raises it for a deeper sweep under ASan.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "harness/network_experiment.hh"
#include "sim/invariant.hh"

namespace mmr
{
namespace
{

unsigned
seedCount()
{
    if (const char *env = std::getenv("MMR_FAULT_PROP_SEEDS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 10;
}

/** One stressed configuration per seed; topologies rotate. */
NetworkExperimentConfig
stressConfig(unsigned s)
{
    static const char *kTopos[] = {"mesh:3x3", "ring:8",
                                   "irregular:10:4:4"};
    NetworkExperimentConfig c;
    c.topologySpec = kTopos[s % 3];
    c.seed = 42 + 7919ULL * (s + 1);
    c.net.router.vcsPerPort = 32;
    c.net.router.candidates = 8;
    c.cbrStreamsPerHost = 1;
    c.cbrRateBps = 10 * kMbps;
    c.beFlowsPerHost = 1;
    c.beRateBps = 2 * kMbps;
    c.warmupCycles = 1000;
    c.measureCycles = 3000;
    c.drainCycles = 1500;
    c.faults.linkFailPer10k = 1.0;
    c.faults.meanRepairCycles = 2000;
    c.faults.probeDropRate = 0.02;
    c.faults.corruptRate = 2e-4;
    c.invariantPeriod = 4;
    return c;
}

/** Force the invariant battery on for the duration of a test. */
class InvariantGuard
{
  public:
    InvariantGuard() { invariant::setEnabled(true); }
    ~InvariantGuard() { invariant::clearOverride(); }
};

TEST(FaultProperties, RandomScheduleRunsHoldAllInvariants)
{
    InvariantGuard guard;
    const unsigned seeds = seedCount();
    for (unsigned s = 0; s < seeds; ++s) {
        SCOPED_TRACE("seed index " + std::to_string(s));
        const auto r = runNetworkExperiment(stressConfig(s));

        // The battery must actually have swept; a violation would
        // have aborted the process before we got here.
        EXPECT_GT(r.invariantChecks, 0u);

        // Conservation: what the datagram layer sent is accounted for
        // by deliveries, routing drops and fault losses, modulo the
        // handful still in flight when the run stops.
        EXPECT_LE(r.datagramsDelivered + r.datagramDrops +
                      r.datagramsLost,
                  r.datagramsSent);
        const std::uint64_t accounted = r.datagramsDelivered +
                                        r.datagramDrops +
                                        r.datagramsLost;
        EXPECT_LE(r.datagramsSent - accounted, 64u)
            << "too many datagrams vanished without accounting";

        // Streams: every accepted stream is either still alive or was
        // abandoned after a failure; never more alive than accepted.
        EXPECT_LE(r.streamsAlive, r.streamsAccepted);
        EXPECT_GE(r.streamsAlive + r.connectionsAbandoned,
                  r.streamsAccepted);

        // Fault bookkeeping is internally consistent.
        EXPECT_LE(r.linkUps, r.linkDowns);
        EXPECT_LE(r.connectionsRecovered + r.connectionsAbandoned,
                  r.recoveryRetries + 1);
        if (r.connectionsFailed == 0) {
            EXPECT_EQ(r.recoveryRetries, 0u);
            EXPECT_EQ(r.droppedInRecovery, 0u);
        }

        // Alive CBR connections still get bounded service.
        if (r.streamsAlive > 0 && r.maxAliveConnMeanDelay > 0.0) {
            EXPECT_LT(r.maxAliveConnMeanDelay, 1000.0);
        }
    }
}

TEST(FaultProperties, DigestReproducibleFromSeed)
{
    InvariantGuard guard;
    const unsigned seeds = std::min(seedCount(), 5u);
    for (unsigned s = 0; s < seeds; ++s) {
        SCOPED_TRACE("seed index " + std::to_string(s));
        const auto cfg = stressConfig(s);
        const auto a = runNetworkExperiment(cfg);
        const auto b = runNetworkExperiment(cfg);
        EXPECT_EQ(networkResultDigest(a), networkResultDigest(b))
            << "same seed must reproduce the identical simulation";
    }
}

TEST(FaultProperties, DistinctSeedsDiverge)
{
    // Not a law of nature, but with link churn, probe drops and
    // corruption in play, two different seeds on the same topology
    // colliding on every output field would point at a seeding bug.
    InvariantGuard guard;
    auto c0 = stressConfig(0);
    auto c3 = stressConfig(3); // same topology (index % 3), new seed
    ASSERT_EQ(std::string(c0.topologySpec), std::string(c3.topologySpec));
    EXPECT_NE(networkResultDigest(runNetworkExperiment(c0)),
              networkResultDigest(runNetworkExperiment(c3)));
}

TEST(FaultProperties, ExplicitEventPlanIsHonored)
{
    InvariantGuard guard;
    NetworkExperimentConfig c = stressConfig(0);
    c.topologySpec = "mesh:3x3";
    c.faults = FaultModel{}; // no stochastic faults
    c.faultEvents = "down@1500:0-1;up@2500:0-1";
    const auto r = runNetworkExperiment(c);
    EXPECT_EQ(r.linkDowns, 1u);
    EXPECT_EQ(r.linkUps, 1u);
    EXPECT_GT(r.invariantChecks, 0u);
}

TEST(FaultProperties, FaultFreeRunsKeepEveryStream)
{
    InvariantGuard guard;
    for (unsigned s = 0; s < 3; ++s) {
        SCOPED_TRACE("seed index " + std::to_string(s));
        NetworkExperimentConfig c = stressConfig(s);
        c.faults = FaultModel{};
        const auto r = runNetworkExperiment(c);
        EXPECT_EQ(r.streamsAlive, r.streamsAccepted);
        EXPECT_EQ(r.connectionsFailed, 0u);
        EXPECT_EQ(r.flitsCorrupted, 0u);
        EXPECT_EQ(r.droppedInRecovery, 0u);
        EXPECT_GT(r.flitsDelivered, 0u);
    }
}

TEST(FaultProperties, QosDeadlineAccountingIsReported)
{
    InvariantGuard guard;
    NetworkExperimentConfig c = stressConfig(0);
    c.faults = FaultModel{};

    // Unmeetable 1-cycle end-to-end budget: every measured CBR flit
    // violates and the violation rate saturates at 1.
    c.cbrDelayBudgetCycles = 1;
    const auto tight = runNetworkExperiment(c);
    ASSERT_GT(tight.qosFlits, 0u);
    EXPECT_EQ(tight.qosViolations, tight.qosFlits);
    EXPECT_DOUBLE_EQ(tight.qosViolationRate, 1.0);
    EXPECT_GT(tight.worstQosExcessCycles, 0u);
    EXPECT_EQ(tight.cbrLatency.count, tight.qosFlits);
    EXPECT_LE(tight.cbrLatency.p50, tight.cbrLatency.p999);

    // A generous budget is met by every flit; the histogram-backed
    // summary still reports the same population.
    c.cbrDelayBudgetCycles = 1000000;
    const auto loose = runNetworkExperiment(c);
    EXPECT_EQ(loose.qosFlits, tight.qosFlits);
    EXPECT_EQ(loose.qosViolations, 0u);
    EXPECT_DOUBLE_EQ(loose.qosViolationRate, 0.0);
    EXPECT_EQ(loose.worstQosExcessCycles, 0u);

    // Budget 0 disables the accounting without disturbing delivery.
    c.cbrDelayBudgetCycles = 0;
    const auto off = runNetworkExperiment(c);
    EXPECT_EQ(off.qosFlits, 0u);
    EXPECT_EQ(off.cbrLatency.count, tight.cbrLatency.count);
}

} // namespace
} // namespace mmr
