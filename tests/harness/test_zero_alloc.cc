/**
 * @file
 * Steady-state allocation audit: once warmed up, a cycle of
 * MmrRouter::evaluate/advance must perform no heap allocation at all
 * — every per-cycle container (candidate lists, matching, scheduler
 * scratch, eligibility masks, VC rings) is preallocated and reused.
 *
 * This lives in its own test binary because it replaces the global
 * operator new/delete with counting versions; the counter is only
 * armed inside the measurement window so gtest's own allocations do
 * not interfere.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "harness/network_experiment.hh"
#include "metrics/recorder.hh"
#include "obs/flight_recorder.hh"
#include "router/router.hh"
#include "sim/kernel.hh"
#include "workload/churn.hh"

namespace
{

std::atomic<bool> counting{false};
std::atomic<std::uint64_t> allocations{0};

} // namespace

void *
operator new(std::size_t n)
{
    if (counting.load(std::memory_order_relaxed))
        allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t n)
{
    return operator new(n);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace mmr
{
namespace
{

TEST(ZeroAlloc, SteadyStateCycleAllocatesNothing)
{
    RouterConfig cfg;
    cfg.numPorts = 4;
    cfg.vcsPerPort = 64;
    cfg.vcBufferFlits = 8;
    cfg.candidates = 4;
    cfg.seed = 7;

    MmrRouter router(cfg, /*metrics=*/nullptr);
    std::uint64_t delivered = 0;
    router.setSink([&](PortId, VcId, const Flit &, Cycle) {
        ++delivered;
    });

    // A saturating mesh of CBR connections so every port arbitrates
    // every cycle.
    std::vector<ConnId> conns;
    for (PortId in = 0; in < 4; ++in) {
        for (PortId out = 0; out < 4; ++out) {
            const ConnId id =
                router.openCbr(in, out, 60 * kMbps);
            ASSERT_NE(id, kInvalidConn);
            conns.push_back(id);
        }
    }

    Kernel kernel;
    kernel.add(&router, "dut");

    std::vector<std::uint32_t> seq(conns.size(), 0);
    const auto injectAll = [&] {
        for (std::size_t i = 0; i < conns.size(); ++i) {
            Flit f;
            f.seq = seq[i];
            f.readyTime = kernel.now();
            if (router.inject(conns[i], f))
                ++seq[i];
        }
    };

    // Warm-up: 2000 cycles of full-tilt traffic grows every scratch
    // container to its steady-state capacity.
    for (Cycle t = 0; t < 2000; ++t) {
        injectAll();
        kernel.step();
    }
    ASSERT_GT(delivered, 0u) << "workload never moved a flit";

    // Measurement: the next 2000 cycles must not allocate once.
    allocations.store(0);
    counting.store(true);
    for (Cycle t = 0; t < 2000; ++t) {
        injectAll();
        kernel.step();
    }
    counting.store(false);

    EXPECT_EQ(allocations.load(), 0u)
        << "heap allocation on the steady-state evaluate/advance path";
}

/**
 * The observability hot paths ride the same budget: metrics recording
 * (stage/class histogram stamps, QoS deadline checks) and the always-on
 * flight recorder's event ring must be allocation-free too, or turning
 * on forensics would perturb the very runs it is meant to explain.
 */
TEST(ZeroAlloc, MetricsAndFlightRecorderAllocateNothing)
{
    RouterConfig cfg;
    cfg.numPorts = 4;
    cfg.vcsPerPort = 64;
    cfg.vcBufferFlits = 8;
    cfg.candidates = 4;
    cfg.seed = 7;

    MetricsRecorder metrics;
    metrics.setQosBudget(TrafficClass::CBR, 4);
    FlightRecorder blackBox(1024);
    blackBox.activate();

    MmrRouter router(cfg, &metrics);
    std::uint64_t delivered = 0;
    router.setSink([&](PortId, VcId, const Flit &, Cycle) {
        ++delivered;
    });

    std::vector<ConnId> conns;
    for (PortId in = 0; in < 4; ++in)
        for (PortId out = 0; out < 4; ++out) {
            const ConnId id = router.openCbr(in, out, 60 * kMbps);
            ASSERT_NE(id, kInvalidConn);
            conns.push_back(id);
        }

    Kernel kernel;
    kernel.add(&router, "dut");
    metrics.startMeasurement(0);

    std::vector<std::uint32_t> seq(conns.size(), 0);
    const auto injectAll = [&] {
        for (std::size_t i = 0; i < conns.size(); ++i) {
            Flit f;
            f.seq = seq[i];
            f.readyTime = kernel.now();
            if (router.inject(conns[i], f))
                ++seq[i];
        }
    };

    for (Cycle t = 0; t < 2000; ++t) {
        injectAll();
        kernel.step();
    }
    ASSERT_GT(delivered, 0u) << "workload never moved a flit";
    ASSERT_GT(blackBox.recorded(), 0u)
        << "flight recorder saw no events";
    ASSERT_GT(metrics.stageHistogram(LatencyStage::SwitchTraversal)
                  .count(),
              0u)
        << "metrics recorder saw no flits";

    allocations.store(0);
    counting.store(true);
    for (Cycle t = 0; t < 2000; ++t) {
        injectAll();
        kernel.step();
    }
    counting.store(false);
    blackBox.deactivate();

    EXPECT_EQ(allocations.load(), 0u)
        << "heap allocation on the instrumented steady-state path";
}

/**
 * The steady-state session path draws its per-session state only from
 * the churn engine's pool: once the population has reached its peak,
 * arrivals reuse freed slots and the pool never grows.  Strict
 * zero-alloc is out of reach for the full setup path — the probe
 * protocol and the metrics recorder keep per-connection map entries —
 * so the contract is (a) pool bytes are frozen across a steady
 * window and (b) total heap allocations stay bounded by a small
 * constant per session, not per cycle or per flit.
 */
TEST(ZeroAlloc, ChurnSessionsAllocateOnlyFromThePool)
{
    NetworkConfig ncfg;
    ncfg.seed = 17;
    ncfg.router.vcsPerPort = 32;
    ncfg.router.candidates = 8;
    Network net(topologyFromSpec("mesh:3x3", ncfg.seed), ncfg);

    ChurnConfig ccfg;
    ccfg.enabled = true;
    ccfg.maxLiveSessions = 512;
    ccfg.workload.arrivalsPer1k = 150.0;
    ccfg.workload.holdingMeanCycles = 500;
    ChurnEngine churn(net, ccfg, /*horizon=*/20000, /*seed=*/99);

    Kernel kernel;
    kernel.add(&net, "network");

    // Warm-up: long enough for the population to reach steady state
    // (several holding times) and every pool slot / scratch container
    // to hit its high-water mark.
    for (Cycle t = 0; t < 6000; ++t) {
        churn.tick(kernel.now());
        kernel.step();
    }
    ASSERT_GT(churn.ledger().admitted, 0u);
    ASSERT_GT(churn.liveSessions(), 0u);
    ASSERT_LT(churn.peakLiveSessions(), ccfg.maxLiveSessions)
        << "pool saturated during warm-up; the test needs headroom";

    const std::uint64_t poolBytesBefore = churn.poolBytes();
    const std::uint64_t arrivedBefore = churn.ledger().arrived;

    allocations.store(0);
    counting.store(true);
    for (Cycle t = 0; t < 4000; ++t) {
        churn.tick(kernel.now());
        kernel.step();
    }
    counting.store(false);

    const std::uint64_t arrived =
        churn.ledger().arrived - arrivedBefore;
    ASSERT_GT(arrived, 0u) << "no sessions churned in the window";

    // (a) The pool is frozen: sessions recycled free slots only.
    EXPECT_EQ(churn.poolBytes(), poolBytesBefore)
        << "session pool grew during steady-state churn";

    // (b) Heap traffic is per-session bookkeeping (probe protocol,
    // recorder entries), not per-cycle or per-flit: with thousands of
    // flits moving per session, a per-session bound this tight fails
    // loudly if any hot path starts allocating.
    EXPECT_LE(allocations.load(), 64 * arrived + 64)
        << "steady-state churn allocated beyond per-session "
           "bookkeeping (" << allocations.load() << " allocations for "
        << arrived << " arrivals)";
}

} // namespace
} // namespace mmr
