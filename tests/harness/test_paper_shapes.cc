/**
 * @file
 * Fast regression guards for the paper's qualitative results (§5.2).
 * The bench binaries regenerate the full figures; these tests pin the
 * same *shapes* at reduced scale so a scheduling regression fails CI
 * in seconds.  Everything here is deterministic (fixed seeds), so the
 * assertions are exact reruns, not statistical gambles.
 */

#include <gtest/gtest.h>

#include "harness/single_router.hh"

namespace mmr
{
namespace
{

ExperimentResult
run(SchedulerKind kind, unsigned candidates, double load)
{
    ExperimentConfig cfg;
    cfg.router.scheduler = kind;
    cfg.router.candidates = candidates;
    cfg.offeredLoad = load;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 30000;
    cfg.seed = 42;
    return runSingleRouter(cfg);
}

TEST(PaperShapes, BiasedBeatsFixedNearSaturation)
{
    // Figure 4's central claim at 80% load, 8 candidates.
    const auto biased = run(SchedulerKind::BiasedPriority, 8, 0.8);
    const auto fixed = run(SchedulerKind::FixedPriority, 8, 0.8);
    EXPECT_LT(biased.meanDelayUs, fixed.meanDelayUs);
    EXPECT_LT(biased.meanJitterCycles, fixed.meanJitterCycles);
    EXPECT_LT(biased.meanDelayUs, 1.0)
        << "8C biased stays sub-microsecond (paper: 0.4-0.6 us)";
}

TEST(PaperShapes, PerfectSwitchLowerBoundsEveryScheme)
{
    const auto perfect = run(SchedulerKind::Perfect, 8, 0.8);
    for (SchedulerKind kind :
         {SchedulerKind::BiasedPriority, SchedulerKind::FixedPriority,
          SchedulerKind::Autonet, SchedulerKind::Islip,
          SchedulerKind::OutputDriven}) {
        const auto r = run(kind, 8, 0.8);
        EXPECT_LE(perfect.meanDelayCycles,
                  r.meanDelayCycles + 1e-9)
            << to_string(kind);
    }
}

TEST(PaperShapes, BiasedTracksPerfectClosely)
{
    // Figure 5: "closely tracking the performance of the perfect
    // switch" with 8 candidates.
    const auto biased = run(SchedulerKind::BiasedPriority, 8, 0.9);
    const auto perfect = run(SchedulerKind::Perfect, 8, 0.9);
    EXPECT_LT(biased.meanDelayUs, 3.0 * perfect.meanDelayUs);
}

TEST(PaperShapes, MoreCandidatesNeverHurtThroughput)
{
    // §5.2 claim C1 at 90% load.
    double prev_util = 0.0;
    for (unsigned c : {1u, 2u, 4u, 8u}) {
        const auto r = run(SchedulerKind::BiasedPriority, c, 0.9);
        EXPECT_GE(r.utilization + 0.02, prev_util)
            << c << " candidates";
        prev_util = r.utilization;
    }
}

TEST(PaperShapes, OneCandidateSaturatesEarly)
{
    // The clipped 1C curves of Figures 3/4: a single candidate cannot
    // carry 90% load (single-iteration matching bound ~63%).
    const auto r = run(SchedulerKind::BiasedPriority, 1, 0.9);
    EXPECT_LT(r.utilization, 0.8);
    const auto r8 = run(SchedulerKind::BiasedPriority, 8, 0.9);
    EXPECT_GT(r8.utilization, 0.85);
}

TEST(PaperShapes, AutonetIsNotQosAware)
{
    // Figure 5: the DEC scheduler, lacking QoS-weighted arbitration,
    // sits well above the biased scheme near saturation.
    const auto autonet = run(SchedulerKind::Autonet, 8, 0.9);
    const auto biased = run(SchedulerKind::BiasedPriority, 8, 0.9);
    EXPECT_GT(autonet.meanDelayUs, 2.0 * biased.meanDelayUs);
}

TEST(PaperShapes, HybridTrafficProtectsGuaranteedClasses)
{
    // §3.4: streams keep their QoS while best effort absorbs
    // congestion.
    ExperimentConfig cfg;
    cfg.router.candidates = 8;
    cfg.offeredLoad = 0.9;
    cfg.warmupCycles = 5000;
    cfg.measureCycles = 30000;
    cfg.seed = 42;
    cfg.mix.cbrShare = 0.5;
    cfg.mix.vbrShare = 0.25;
    cfg.mix.beShare = 0.25;
    cfg.mix.vbrProfile.framesPerSecond = 500.0;
    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_LT(r.cbr.delayCycles.mean(), r.vbr.delayCycles.mean());
    EXPECT_LT(r.vbr.delayCycles.mean(),
              r.bestEffort.delayCycles.mean());
    EXPECT_LT(r.cbr.delayCycles.mean(), 10.0)
        << "CBR stays near the contention-free floor";
}

} // namespace
} // namespace mmr
