/**
 * @file
 * Determinism audit (§5 methodology): two runs of the single-router
 * harness with the same seed must produce bit-identical statistics.
 * Any dependence on container iteration order, uninitialized state or
 * address-dependent hashing shows up here as a digest mismatch.
 */

#include <gtest/gtest.h>

#include "harness/single_router.hh"

namespace mmr
{
namespace
{

ExperimentConfig
auditConfig(std::uint64_t seed)
{
    ExperimentConfig cfg;
    cfg.router.numPorts = 4;
    cfg.router.vcsPerPort = 32;
    cfg.offeredLoad = 0.6;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 12000;
    cfg.seed = seed;
    // Mixed workload so all three service classes, the VBR deadline
    // ledger and the per-class recorders feed the digest.
    cfg.mix.cbrShare = 0.5;
    cfg.mix.vbrShare = 0.3;
    cfg.mix.beShare = 0.2;
    return cfg;
}

TEST(Determinism, SameSeedSameDigest)
{
    const ExperimentResult a = runSingleRouter(auditConfig(1234));
    const ExperimentResult b = runSingleRouter(auditConfig(1234));
    EXPECT_GT(a.flitsDelivered, 0u);
    EXPECT_GT(a.connections, 0u);
    EXPECT_EQ(resultDigest(a), resultDigest(b))
        << "same-seed runs diverged: simulation is not deterministic";
    // Spot-check a few raw fields so a digest bug cannot mask a
    // genuine divergence.
    EXPECT_EQ(a.flitsDelivered, b.flitsDelivered);
    EXPECT_EQ(a.connections, b.connections);
    EXPECT_DOUBLE_EQ(a.meanDelayCycles, b.meanDelayCycles);
    EXPECT_DOUBLE_EQ(a.meanJitterCycles, b.meanJitterCycles);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    // Not a strict requirement, but if two different seeds collide on
    // every statistic the digest is almost certainly not looking at
    // the simulation at all.
    const ExperimentResult a = runSingleRouter(auditConfig(1));
    const ExperimentResult b = runSingleRouter(auditConfig(2));
    EXPECT_NE(resultDigest(a), resultDigest(b));
}

TEST(Determinism, DigestIsOrderSensitive)
{
    ExperimentResult r;
    r.meanDelayCycles = 3.0;
    r.meanJitterCycles = 7.0;
    const std::uint64_t d1 = resultDigest(r);
    std::swap(r.meanDelayCycles, r.meanJitterCycles);
    EXPECT_NE(resultDigest(r), d1);
}

TEST(Determinism, InvariantAuditorRanDuringTheRun)
{
    SingleRouterExperiment exp(auditConfig(77));
    exp.run();
    // The full invariant set must have been registered and exercised.
    const auto names = exp.invariants().names();
    EXPECT_GE(names.size(), 7u);
    for (const char *name :
         {"flit-conservation", "vc-occupancy", "vc-legality",
          "admission-ledger", "matching-validity", "credit-ledger",
          "event-monotonic"}) {
        EXPECT_TRUE(exp.invariants().has(name)) << name;
    }
    EXPECT_GT(exp.invariants().checksRun(), 0u)
        << "auditing was registered but never executed";
}

} // namespace
} // namespace mmr
