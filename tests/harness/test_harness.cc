/**
 * @file
 * Tests for the §5 experiment harness: workload construction,
 * admission-bounded load targets, traffic mixes and measurement
 * gating.
 */

#include <gtest/gtest.h>

#include "harness/single_router.hh"

namespace mmr
{
namespace
{

ExperimentConfig
smallCfg(double load)
{
    ExperimentConfig cfg;
    cfg.router.numPorts = 4;
    cfg.router.vcsPerPort = 64;
    cfg.router.candidates = 4;
    cfg.offeredLoad = load;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 8000;
    cfg.seed = 5;
    return cfg;
}

TEST(Harness, HitsTheLoadTarget)
{
    for (double load : {0.2, 0.5, 0.8}) {
        const ExperimentResult r = runSingleRouter(smallCfg(load));
        EXPECT_NEAR(r.achievedLoad, load, 0.05) << "load " << load;
        EXPECT_EQ(r.offeredLoad, load);
    }
}

TEST(Harness, ZeroLoadIsEmptyButWellFormed)
{
    const ExperimentResult r = runSingleRouter(smallCfg(0.0));
    EXPECT_EQ(r.connections, 0u);
    EXPECT_EQ(r.flitsDelivered, 0u);
    EXPECT_EQ(r.meanDelayCycles, 0.0);
}

TEST(Harness, RespectsPerLinkCapacity)
{
    SingleRouterExperiment exp(smallCfg(0.9));
    const ExperimentResult r = exp.run();
    // With per-port admission, the aggregate allocation on each output
    // never exceeds the reservable round.
    auto &admission = exp.router().admission();
    for (PortId p = 0; p < 4; ++p)
        EXPECT_LE(admission.allocatedCycles(p),
                  admission.reservableCycles());
    EXPECT_GT(r.connections, 0u);
}

TEST(Harness, DeterministicAcrossRuns)
{
    const ExperimentResult a = runSingleRouter(smallCfg(0.6));
    const ExperimentResult b = runSingleRouter(smallCfg(0.6));
    EXPECT_EQ(a.connections, b.connections);
    EXPECT_EQ(a.flitsDelivered, b.flitsDelivered);
    EXPECT_DOUBLE_EQ(a.meanDelayCycles, b.meanDelayCycles);
}

TEST(Harness, SeedsChangeTheWorkload)
{
    auto cfg1 = smallCfg(0.6);
    auto cfg2 = smallCfg(0.6);
    cfg2.seed = 6;
    const ExperimentResult a = runSingleRouter(cfg1);
    const ExperimentResult b = runSingleRouter(cfg2);
    EXPECT_NE(a.flitsDelivered, b.flitsDelivered);
}

TEST(Harness, DelayUnitsAreConsistent)
{
    const ExperimentResult r = runSingleRouter(smallCfg(0.5));
    EXPECT_NEAR(r.meanDelayUs,
                r.meanDelayCycles * r.flitCycleNanos / 1000.0, 1e-9);
    EXPECT_NEAR(r.flitCycleNanos, 103.2, 0.5);
}

TEST(Harness, MixedWorkloadBuildsAllClasses)
{
    auto cfg = smallCfg(0.6);
    cfg.mix.cbrShare = 0.5;
    cfg.mix.vbrShare = 0.3;
    cfg.mix.beShare = 0.2;
    cfg.measureCycles = 20000;
    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_GT(r.cbr.flits, 0u);
    EXPECT_GT(r.vbr.flits, 0u);
    EXPECT_GT(r.bestEffort.flits, 0u);
    EXPECT_GT(r.cbr.delayCycles.count(), 0u);
}

TEST(Harness, PureVbrWorkload)
{
    auto cfg = smallCfg(0.4);
    cfg.mix.cbrShare = 0.0;
    cfg.mix.vbrShare = 1.0;
    cfg.measureCycles = 20000;
    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_GT(r.connections, 0u);
    EXPECT_EQ(r.cbr.flits, 0u);
    EXPECT_GT(r.vbr.flits, 0u);
}

TEST(Harness, WarmupGatesMeasurement)
{
    // With a warmup longer than the run, nothing is measured even
    // though flits flow.
    auto cfg = smallCfg(0.5);
    cfg.warmupCycles = 100000;
    cfg.measureCycles = 0;
    SingleRouterExperiment exp(cfg);
    (void)exp;
    auto cfg2 = smallCfg(0.5);
    cfg2.warmupCycles = 5000;
    cfg2.measureCycles = 0;
    const ExperimentResult r = runSingleRouter(cfg2);
    EXPECT_EQ(r.flitsDelivered, 0u)
        << "measured-flit count must exclude the warmup";
}

TEST(Harness, PerfectNeverSlowerThanArbitratedSwitch)
{
    auto biased = smallCfg(0.8);
    biased.router.scheduler = SchedulerKind::BiasedPriority;
    auto perfect = smallCfg(0.8);
    perfect.router.scheduler = SchedulerKind::Perfect;
    const ExperimentResult rb = runSingleRouter(biased);
    const ExperimentResult rp = runSingleRouter(perfect);
    EXPECT_LE(rp.meanDelayCycles, rb.meanDelayCycles + 1e-9)
        << "the perfect switch lower-bounds delay (§5.1)";
}

TEST(Harness, CustomRateLadderIsHonored)
{
    auto cfg = smallCfg(0.5);
    cfg.rateLadder = {20 * kMbps}; // a single allowed rate
    SingleRouterExperiment exp(cfg);
    exp.run();
    const double link = cfg.router.linkRateBps;
    const double expected_ia = interArrivalCycles(20 * kMbps, link);
    unsigned checked = 0;
    for (ConnId conn : exp.metrics().connections()) {
        const SegmentParams *seg = exp.router().connection(conn);
        ASSERT_NE(seg, nullptr);
        EXPECT_NEAR(seg->interArrival, expected_ia, 0.5);
        ++checked;
    }
    EXPECT_GT(checked, 10u) << "0.5 load of 20 Mb/s streams on 4 ports";
}

TEST(Harness, VbrDeadlineAccountingIsPopulated)
{
    auto cfg = smallCfg(0.7);
    cfg.mix.cbrShare = 0.0;
    cfg.mix.vbrShare = 1.0;
    cfg.mix.vbrProfile.framesPerSecond = 2000.0;
    cfg.measureCycles = 30000;
    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_GT(r.vbr.deadlineTotal, 0u);
    EXPECT_LE(r.vbr.deadlineMisses, r.vbr.deadlineTotal);
    EXPECT_GE(r.vbr.deadlineMissRate(), 0.0);
    EXPECT_LE(r.vbr.deadlineMissRate(), 1.0);
}

TEST(Harness, AbortLateFramesSavesBandwidth)
{
    // A bursty profile whose big frames cannot fit their slot at the
    // declared peak rate: without aborts those flits are transmitted
    // anyway; with aborts the interface drops them at the source
    // (§4.3) and the router forwards fewer flits.
    auto base = smallCfg(0.6);
    base.mix.cbrShare = 0.0;
    base.mix.vbrShare = 1.0;
    base.mix.vbrProfile.framesPerSecond = 2000.0;
    base.mix.vbrProfile.sigma = 1.0;
    base.mix.vbrProfile.peakToMean = 1.3;
    base.measureCycles = 30000;

    auto aborting = base;
    aborting.mix.abortLateFrames = true;

    const ExperimentResult keep = runSingleRouter(base);
    const ExperimentResult drop = runSingleRouter(aborting);
    EXPECT_EQ(keep.abortedFlits, 0u);
    EXPECT_GT(drop.abortedFlits, 0u);
    EXPECT_LT(drop.flitsDelivered, keep.flitsDelivered)
        << "aborted flits never consume switch bandwidth";
}

TEST(Harness, InvalidLoadIsFatal)
{
    auto cfg = smallCfg(1.5);
    EXPECT_THROW(SingleRouterExperiment exp(cfg), std::runtime_error);
}

TEST(Harness, StageDecompositionIsHarvested)
{
    const ExperimentResult r = runSingleRouter(smallCfg(0.6));
    ASSERT_GT(r.flitsDelivered, 0u);
    // Every delivered flit crosses the switch and waits for at least
    // one arbitration decision; both stages must be populated.
    const auto &sw = r.stageHist[static_cast<std::size_t>(
        LatencyStage::SwitchTraversal)];
    const auto &arb =
        r.stageHist[static_cast<std::size_t>(LatencyStage::ArbWait)];
    EXPECT_EQ(sw.count(), r.flitsDelivered);
    EXPECT_EQ(arb.count(), r.flitsDelivered);
    // Summaries are derived from the same histograms and ordered.
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        const LatencySummary &sum = r.stageLatency[s];
        EXPECT_EQ(sum.count, r.stageHist[s].count());
        EXPECT_LE(sum.p50, sum.p90);
        EXPECT_LE(sum.p90, sum.p99);
        EXPECT_LE(sum.p99, sum.p999);
        EXPECT_LE(sum.p999, sum.maxCycles);
    }
    // The per-class totals mirror their histograms too.
    EXPECT_EQ(r.cbr.latency.count, r.cbr.delayHist.count());
}

TEST(Harness, QosBudgetCountsViolations)
{
    // A 1-cycle budget is unmeetable: every measured CBR flit takes
    // at least the switch-traversal cycle plus arbitration.
    auto tight = smallCfg(0.6);
    tight.cbrDelayBudget = 1;
    const ExperimentResult rt = runSingleRouter(tight);
    ASSERT_GT(rt.cbr.flits, 0u);
    EXPECT_EQ(rt.cbr.qos.flits, rt.cbr.flits);
    EXPECT_GT(rt.cbr.qos.violations, 0u);
    EXPECT_GT(rt.cbr.qos.violationRate(), 0.0);
    EXPECT_LE(rt.cbr.qos.violationRate(), 1.0);
    EXPECT_GT(rt.cbr.qos.worstExcessCycles, 0u);

    // A generous budget is always met.
    auto loose = smallCfg(0.6);
    loose.cbrDelayBudget = 1000000;
    const ExperimentResult rl = runSingleRouter(loose);
    EXPECT_EQ(rl.cbr.qos.flits, rl.cbr.flits);
    EXPECT_EQ(rl.cbr.qos.violations, 0u);
    EXPECT_EQ(rl.cbr.qos.worstExcessCycles, 0u);

    // Budget 0 disables the accounting entirely.
    const ExperimentResult roff = runSingleRouter(smallCfg(0.6));
    EXPECT_EQ(roff.cbr.qos.flits, 0u);
    EXPECT_EQ(roff.cbr.qos.violations, 0u);
}

TEST(HarnessDeath, ForcedPanicTripsTheInvariantMachinery)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    auto cfg = smallCfg(0.3);
    cfg.forcePanicAt = cfg.warmupCycles + 100;
    EXPECT_DEATH(runSingleRouter(cfg), "forced-panic");
}

} // namespace
} // namespace mmr
