/**
 * @file
 * Tests for the trace-driven VBR source: parsing, replay fidelity,
 * looping, rate computation, and cross-validation against the
 * synthetic GOP model it can be generated from.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "traffic/trace_source.hh"

namespace mmr
{
namespace
{

constexpr double kLink = 1.24 * kGbps;

/** RAII temp file helper. */
class TempFile
{
  public:
    explicit TempFile(const std::string &content)
        : path_("/tmp/mmr_trace_test_" +
                std::to_string(counter_++) + ".txt")
    {
        std::ofstream out(path_);
        out << content;
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    static int counter_;
    std::string path_;
};

int TempFile::counter_ = 0;

TEST(FrameTrace, ParsesSizesAndComments)
{
    TempFile f("# header comment\n"
               "1000\n"
               "2000  # trailing comment\n"
               "\n"
               "3000\n");
    const auto trace = loadFrameTrace(f.path());
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0], 1000u);
    EXPECT_EQ(trace[1], 2000u);
    EXPECT_EQ(trace[2], 3000u);
}

TEST(FrameTrace, RejectsGarbage)
{
    TempFile junk("1000 extra\n");
    EXPECT_THROW(loadFrameTrace(junk.path()), std::runtime_error);
    TempFile zero("0\n");
    EXPECT_THROW(loadFrameTrace(zero.path()), std::runtime_error);
    TempFile empty("# nothing\n");
    EXPECT_THROW(loadFrameTrace(empty.path()), std::runtime_error);
    EXPECT_THROW(loadFrameTrace("/nonexistent/trace.txt"),
                 std::runtime_error);
}

TEST(TraceVbrSource, MeanRateFromTrace)
{
    // 3 frames of 12800 bits at 1000 fps -> 12.8 Mb/s.
    Rng rng(1);
    TraceVbrSource src(std::vector<std::uint64_t>{12800, 12800, 12800}, 1000.0, 100 * kMbps,
                       kLink, 128, rng);
    EXPECT_NEAR(src.meanRateBps(), 12.8 * kMbps, 1.0);
    EXPECT_DOUBLE_EQ(src.peakRateBps(), 100 * kMbps);
    EXPECT_EQ(src.traceLength(), 3u);
}

TEST(TraceVbrSource, ReplaysAndLoops)
{
    // Distinct frame sizes replay in order and wrap around.
    Rng rng(2);
    TraceVbrSource src(std::vector<std::uint64_t>{1280, 2560, 640}, 2000.0, 200 * kMbps, kLink,
                       128, rng);
    // Frame interval at 2000 fps: ~4844 cycles.  Count flits per
    // frame window: 10, 20, 5, then 10 again.
    std::vector<unsigned> per_window;
    unsigned current = 0;
    double boundary = -1.0;
    for (Cycle t = 0; t < 40000; ++t) {
        const unsigned n = src.arrivals(t);
        if (n > 0 && boundary < 0.0)
            boundary = src.currentFrameDeadline();
        if (boundary > 0.0 && static_cast<double>(t) > boundary) {
            per_window.push_back(current);
            current = 0;
            boundary = src.currentFrameDeadline();
        }
        current += n;
    }
    ASSERT_GE(per_window.size(), 4u);
    EXPECT_EQ(per_window[0], 10u);
    EXPECT_EQ(per_window[1], 20u);
    EXPECT_EQ(per_window[2], 5u);
    EXPECT_EQ(per_window[3], 10u) << "trace loops back to the start";
}

TEST(TraceVbrSource, LongRunRateConverges)
{
    Rng rng(3);
    VbrProfile prof;
    prof.meanRateBps = 6 * kMbps;
    prof.framesPerSecond = 500.0;
    TempFile dummy("");
    writeSyntheticTrace(dummy.path(), prof, 400, rng);

    TraceVbrSource src(dummy.path(), prof.framesPerSecond,
                       prof.meanRateBps * 3.0, kLink, 128, rng);
    // The lognormal sampling keeps the empirical mean near the
    // profile's.
    EXPECT_NEAR(src.meanRateBps(), prof.meanRateBps,
                0.15 * prof.meanRateBps);

    std::uint64_t flits = 0;
    const Cycle horizon = 2000000;
    for (Cycle t = 0; t < horizon; ++t)
        flits += src.arrivals(t);
    const double cycles_per_second = kLink / 128;
    const double bps = static_cast<double>(flits) * 128.0 /
                       (horizon / cycles_per_second);
    EXPECT_NEAR(bps, src.meanRateBps(), 0.15 * src.meanRateBps());
}

TEST(TraceVbrSource, RespectsPeakCap)
{
    // One huge frame with a tight peak: emission is spaced at the
    // peak period, never faster.
    Rng rng(4);
    TraceVbrSource src(std::vector<std::uint64_t>{128 * 1000}, 100.0, 12.4 * kMbps, kLink, 128,
                       rng);
    const double min_gap = interArrivalCycles(12.4 * kMbps, kLink);
    Cycle last = 0;
    bool first = true;
    for (Cycle t = 0; t < 400000; ++t) {
        const unsigned n = src.arrivals(t);
        ASSERT_LE(n, 1u) << "peak cap forbids bursts within a cycle";
        if (n == 1) {
            if (!first) {
                EXPECT_GE(static_cast<double>(t - last), min_gap - 1.0);
            }
            last = t;
            first = false;
        }
    }
}

TEST(TraceVbrSource, GeneratedTraceMatchesGopStatistics)
{
    // Cross-validation: a trace generated from the GOP model, played
    // back, carries the same long-run rate as the live VbrSource.
    Rng rng(5);
    VbrProfile prof;
    prof.meanRateBps = 4 * kMbps;
    prof.framesPerSecond = 1000.0;
    TempFile f("");
    writeSyntheticTrace(f.path(), prof, 600, rng);
    TraceVbrSource replay(f.path(), prof.framesPerSecond,
                          prof.meanRateBps * prof.peakToMean, kLink,
                          128, rng);
    VbrSource live(prof, kLink, 128, rng);

    std::uint64_t flits_replay = 0, flits_live = 0;
    const Cycle horizon = 3000000;
    for (Cycle t = 0; t < horizon; ++t) {
        flits_replay += replay.arrivals(t);
        flits_live += live.arrivals(t);
    }
    EXPECT_NEAR(static_cast<double>(flits_replay),
                static_cast<double>(flits_live),
                0.2 * static_cast<double>(flits_live));
}

} // namespace
} // namespace mmr
