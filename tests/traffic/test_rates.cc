/**
 * @file
 * Unit tests for the rate ladder and bandwidth quantization (§4.1).
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "traffic/rates.hh"

namespace mmr
{
namespace
{

TEST(Rates, PaperLadderContents)
{
    const auto &l = paperRateLadder();
    ASSERT_EQ(l.size(), 9u);
    EXPECT_DOUBLE_EQ(l.front(), 64 * kKbps);
    EXPECT_DOUBLE_EQ(l.back(), 120 * kMbps);
    // Strictly increasing.
    for (std::size_t i = 1; i < l.size(); ++i)
        EXPECT_LT(l[i - 1], l[i]);
}

TEST(Rates, CyclesPerRoundNeverUndershoots)
{
    const double link = 1.24 * kGbps;
    const unsigned round = 512;
    for (double rate : paperRateLadder()) {
        const unsigned cycles = cyclesPerRound(rate, link, round);
        EXPECT_GE(cycles, 1u);
        // The granted rate covers the requested rate.
        EXPECT_GE(grantedRate(cycles, link, round), rate);
        // ...but by less than one extra cycle's worth.
        EXPECT_LT(grantedRate(cycles, link, round),
                  rate + link / round + 1e-6);
    }
}

TEST(Rates, FullLinkIsWholeRound)
{
    EXPECT_EQ(cyclesPerRound(1.24 * kGbps, 1.24 * kGbps, 512), 512u);
}

TEST(Rates, QuantizationErrorShrinksWithK)
{
    // The §4.1 trade-off: larger K (longer rounds) allocates closer
    // to the requested rate.
    const double link = 1.24 * kGbps;
    const double rate = 1.54 * kMbps;
    const unsigned v = 256;
    double prev_err = 1e18;
    for (unsigned k = 1; k <= 16; k *= 2) {
        const unsigned round = k * v;
        const double granted =
            grantedRate(cyclesPerRound(rate, link, round), link, round);
        const double err = granted - rate;
        EXPECT_GE(err, 0.0);
        EXPECT_LE(err, prev_err + 1e-6);
        prev_err = err;
    }
}

TEST(Rates, ClassNames)
{
    EXPECT_EQ(to_string(TrafficClass::CBR), "CBR");
    EXPECT_EQ(to_string(TrafficClass::VBR), "VBR");
    EXPECT_EQ(to_string(TrafficClass::BestEffort), "best-effort");
    EXPECT_EQ(to_string(TrafficClass::Control), "control");
}

TEST(RatesDeath, OverLinkRatePanics)
{
    EXPECT_DEATH(cyclesPerRound(2 * kGbps, 1 * kGbps, 512),
                 "exceeds link rate");
}

} // namespace
} // namespace mmr
