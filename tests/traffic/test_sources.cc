/**
 * @file
 * Unit and property tests for the traffic models (§2): CBR, the
 * MPEG-like VBR model, best-effort sources, and the leaky-bucket
 * policer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "traffic/besteffort_source.hh"
#include "traffic/cbr_source.hh"
#include "traffic/policer.hh"
#include "traffic/vbr_source.hh"

namespace mmr
{
namespace
{

constexpr double kLink = 1.24 * kGbps;

std::uint64_t
drain(TrafficSource &src, Cycle cycles, std::vector<Cycle> *arrivals = nullptr)
{
    std::uint64_t total = 0;
    for (Cycle t = 0; t < cycles; ++t) {
        const unsigned n = src.arrivals(t);
        total += n;
        if (arrivals) {
            for (unsigned k = 0; k < n; ++k)
                arrivals->push_back(t);
        }
    }
    return total;
}

TEST(CbrSource, LongRunRateIsExact)
{
    Rng rng(1);
    CbrSource src(10 * kMbps, kLink, rng);
    const Cycle horizon = 200000;
    const auto n = drain(src, horizon);
    const double expected =
        static_cast<double>(horizon) / src.interArrival();
    EXPECT_NEAR(static_cast<double>(n), expected, 2.0);
}

TEST(CbrSource, InterArrivalIsConstant)
{
    Rng rng(2);
    CbrSource src(20 * kMbps, kLink, rng);
    std::vector<Cycle> times;
    drain(src, 100000, &times);
    ASSERT_GT(times.size(), 100u);
    // Gaps are all within 1 cycle of the nominal period (integer
    // quantization of a real-valued period).
    const double period = src.interArrival();
    for (std::size_t i = 1; i < times.size(); ++i) {
        const double gap = static_cast<double>(times[i] - times[i - 1]);
        EXPECT_NEAR(gap, period, 1.0);
    }
}

TEST(CbrSource, PhaseIsRandomized)
{
    Rng rng(3);
    CbrSource a(64 * kKbps, kLink, rng);
    CbrSource b(64 * kKbps, kLink, rng);
    std::vector<Cycle> ta, tb;
    drain(a, 100000, &ta);
    drain(b, 100000, &tb);
    ASSERT_FALSE(ta.empty());
    ASSERT_FALSE(tb.empty());
    EXPECT_NE(ta.front(), tb.front());
}

TEST(CbrSource, ClassAndRates)
{
    Rng rng(4);
    CbrSource src(5 * kMbps, kLink, rng);
    EXPECT_EQ(src.trafficClass(), TrafficClass::CBR);
    EXPECT_DOUBLE_EQ(src.meanRateBps(), 5 * kMbps);
    EXPECT_DOUBLE_EQ(src.peakRateBps(), 5 * kMbps);
}

TEST(VbrSource, LongRunMeanMatchesProfile)
{
    Rng rng(5);
    VbrProfile prof;
    prof.meanRateBps = 4 * kMbps;
    VbrSource src(prof, kLink, 128, rng);
    // ~200 frames at 25 fps on a 9.69 Mcycle/s clock.
    const auto cycles_per_sec = static_cast<Cycle>(kLink / 128);
    const Cycle horizon = 8 * cycles_per_sec;
    const auto n = drain(src, horizon);
    const double bits = static_cast<double>(n) * 128.0;
    const double seconds = static_cast<double>(horizon) / cycles_per_sec;
    EXPECT_NEAR(bits / seconds, prof.meanRateBps,
                0.15 * prof.meanRateBps);
}

TEST(VbrSource, NeverExceedsPeakRate)
{
    Rng rng(6);
    VbrProfile prof;
    prof.meanRateBps = 8 * kMbps;
    prof.peakToMean = 2.0;
    VbrSource src(prof, kLink, 128, rng);
    // Sliding-window check: flits in any window of W cycles stay
    // within peak * W (+1 boundary flit).
    const double peak_per_cycle = src.peakRateBps() / kLink;
    const Cycle window = 2000;
    std::vector<unsigned> per_cycle(400000, 0);
    for (Cycle t = 0; t < per_cycle.size(); ++t)
        per_cycle[t] = src.arrivals(t);
    std::uint64_t in_window = 0;
    for (Cycle t = 0; t < per_cycle.size(); ++t) {
        in_window += per_cycle[t];
        if (t >= window)
            in_window -= per_cycle[t - window];
        EXPECT_LE(in_window, peak_per_cycle * window + 2.0)
            << "window ending at " << t;
    }
}

TEST(VbrSource, FrameCadenceMatchesFps)
{
    Rng rng(7);
    VbrProfile prof;
    prof.framesPerSecond = 25.0;
    VbrSource src(prof, kLink, 128, rng);
    const double cycles_per_sec = kLink / 128;
    EXPECT_NEAR(src.frameIntervalCycles(), cycles_per_sec / 25.0, 1.0);
}

TEST(VbrSource, IFramesFollowTheGopScaling)
{
    // With sigma -> 0 the frame sizes become deterministic, so the
    // I/B scaling is directly observable: pattern "IB" with scales
    // 3:1 must alternate frame sizes in a 3:1 ratio.
    Rng rng(8);
    VbrProfile prof;
    prof.meanRateBps = 4 * kMbps;
    prof.sigma = 1e-9;
    prof.gopPattern = "IB";
    prof.iScale = 3.0;
    prof.bScale = 1.0;
    VbrSource src(prof, kLink, 128, rng);

    std::vector<unsigned> frame_sizes;
    unsigned last = 0;
    for (Cycle t = 0; t < 3000000 && frame_sizes.size() < 6; ++t) {
        src.arrivals(t);
        const unsigned cur = src.currentFrameFlits();
        if (cur != 0 && cur != last) {
            frame_sizes.push_back(cur);
            last = cur;
        }
    }
    ASSERT_GE(frame_sizes.size(), 4u);
    // Expected absolute sizes: mean flits/frame = 4e6/25/128 = 1250;
    // normalization (3+1)/2 = 2 gives I = 1875, B = 625.
    for (std::size_t i = 0; i + 1 < frame_sizes.size(); i += 2) {
        const double big = std::max(frame_sizes[i], frame_sizes[i + 1]);
        const double small = std::min(frame_sizes[i], frame_sizes[i + 1]);
        EXPECT_NEAR(big / small, 3.0, 0.05);
        EXPECT_NEAR(big, 1875.0, 5.0);
        EXPECT_NEAR(small, 625.0, 5.0);
    }
}

TEST(VbrSourceDeath, BadGopPatternIsFatal)
{
    Rng rng(9);
    VbrProfile prof;
    prof.gopPattern = "IXB";
    EXPECT_THROW(VbrSource(prof, kLink, 128, rng), std::runtime_error);
}

TEST(PoissonSource, MeanRateConverges)
{
    Rng rng(10);
    PoissonSource src(10 * kMbps, kLink, rng);
    const Cycle horizon = 500000;
    const auto n = drain(src, horizon);
    const double expected = horizon / interArrivalCycles(10 * kMbps, kLink);
    EXPECT_NEAR(static_cast<double>(n), expected, 0.05 * expected);
}

TEST(PoissonSource, ClassOverride)
{
    Rng rng(11);
    PoissonSource src(1 * kMbps, kLink, rng, TrafficClass::Control);
    EXPECT_EQ(src.trafficClass(), TrafficClass::Control);
}

TEST(OnOffSource, LongRunMeanRate)
{
    Rng rng(12);
    OnOffSource src(5 * kMbps, 50 * kMbps, 2000.0, kLink, rng);
    const Cycle horizon = 2000000;
    const auto n = drain(src, horizon);
    const double expected = horizon / interArrivalCycles(5 * kMbps, kLink);
    EXPECT_NEAR(static_cast<double>(n), expected, 0.2 * expected);
    EXPECT_DOUBLE_EQ(src.peakRateBps(), 50 * kMbps);
}

TEST(OnOffSource, BurstsAtBurstRate)
{
    Rng rng(13);
    OnOffSource src(5 * kMbps, 124 * kMbps, 5000.0, kLink, rng);
    // Shortest observed gap inside a burst equals the burst period.
    std::vector<Cycle> times;
    drain(src, 1000000, &times);
    ASSERT_GT(times.size(), 50u);
    Cycle min_gap = ~Cycle{0};
    for (std::size_t i = 1; i < times.size(); ++i)
        min_gap = std::min(min_gap, times[i] - times[i - 1]);
    const double burst_period = interArrivalCycles(124 * kMbps, kLink);
    EXPECT_GE(static_cast<double>(min_gap), burst_period - 1.0);
    EXPECT_LE(static_cast<double>(min_gap), burst_period + 2.0);
}

TEST(Policer, EnforcesLongRunRate)
{
    LeakyBucketPolicer pol(0.1, 4.0); // 0.1 flits/cycle, burst of 4
    unsigned sent = 0;
    for (Cycle t = 0; t < 1000; ++t) {
        pol.advanceTo(t);
        while (pol.conforming()) {
            pol.consume();
            ++sent;
        }
    }
    // 4 initial tokens + 0.1 * 1000 accrued.
    EXPECT_NEAR(static_cast<double>(sent), 104.0, 2.0);
}

TEST(Policer, AllowsBurstUpToDepth)
{
    LeakyBucketPolicer pol(0.01, 8.0);
    pol.advanceTo(0);
    unsigned burst = 0;
    while (pol.conforming()) {
        pol.consume();
        ++burst;
    }
    EXPECT_EQ(burst, 8u);
}

TEST(Policer, RateChangeTakesEffect)
{
    LeakyBucketPolicer pol(0.01, 1.0);
    pol.advanceTo(0);
    while (pol.conforming())
        pol.consume();
    pol.setRate(1.0);
    EXPECT_DOUBLE_EQ(pol.rate(), 1.0);
    pol.advanceTo(10);
    EXPECT_TRUE(pol.conforming());
}

TEST(PolicerDeath, TimeBackwardsPanics)
{
    LeakyBucketPolicer pol(0.5, 2.0);
    pol.advanceTo(10);
    EXPECT_DEATH(pol.advanceTo(5), "backwards");
}

TEST(PolicerDeath, ConsumeWithoutTokenPanics)
{
    LeakyBucketPolicer pol(0.001, 1.0);
    pol.advanceTo(0);
    pol.consume();
    EXPECT_DEATH(pol.consume(), "token");
}

} // namespace
} // namespace mmr
