/**
 * @file
 * Unit tests for bandwidth allocation and admission control (§4.2).
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "router/admission.hh"

namespace mmr
{
namespace
{

TEST(Admission, CbrWithinRoundAccepted)
{
    AdmissionController a(4, 512, 2.0, 0.0);
    EXPECT_TRUE(a.tryAdmitCbr(0, 100));
    EXPECT_TRUE(a.tryAdmitCbr(0, 412));
    EXPECT_EQ(a.allocatedCycles(0), 512u);
    EXPECT_EQ(a.availableCycles(0), 0u);
}

TEST(Admission, CbrBeyondRoundRejectedWithoutSideEffects)
{
    AdmissionController a(4, 512, 2.0, 0.0);
    EXPECT_TRUE(a.tryAdmitCbr(1, 500));
    EXPECT_FALSE(a.tryAdmitCbr(1, 13));
    EXPECT_EQ(a.allocatedCycles(1), 500u) << "failed admit must not leak";
    EXPECT_TRUE(a.tryAdmitCbr(1, 12));
}

TEST(Admission, LinksAreIndependent)
{
    AdmissionController a(2, 100, 2.0, 0.0);
    EXPECT_TRUE(a.tryAdmitCbr(0, 100));
    EXPECT_TRUE(a.tryAdmitCbr(1, 100));
    EXPECT_FALSE(a.tryAdmitCbr(0, 1));
}

TEST(Admission, ReleaseRestoresCapacity)
{
    AdmissionController a(1, 100, 2.0, 0.0);
    EXPECT_TRUE(a.tryAdmitCbr(0, 100));
    a.releaseCbr(0, 40);
    EXPECT_EQ(a.allocatedCycles(0), 60u);
    EXPECT_TRUE(a.tryAdmitCbr(0, 40));
}

TEST(Admission, VbrPermanentConditionBinds)
{
    AdmissionController a(1, 100, 10.0, 0.0);
    // Permanent bandwidth is the hard condition (i).
    EXPECT_TRUE(a.tryAdmitVbr(0, 60, 90));
    EXPECT_FALSE(a.tryAdmitVbr(0, 50, 60)) << "perm sum 110 > 100";
    EXPECT_TRUE(a.tryAdmitVbr(0, 40, 60));
    EXPECT_EQ(a.allocatedCycles(0), 100u);
    EXPECT_EQ(a.peakCycles(0), 150u);
}

TEST(Admission, VbrPeakConditionBinds)
{
    // Condition (ii): total peak <= round x concurrency factor.
    AdmissionController a(1, 100, 1.5, 0.0);
    EXPECT_TRUE(a.tryAdmitVbr(0, 10, 100));
    EXPECT_TRUE(a.tryAdmitVbr(0, 10, 50));
    EXPECT_FALSE(a.tryAdmitVbr(0, 10, 10)) << "peak 160 > 150";
    EXPECT_EQ(a.peakCycles(0), 150u);
}

TEST(Admission, VbrReleaseRestoresBothRegisters)
{
    AdmissionController a(1, 100, 2.0, 0.0);
    ASSERT_TRUE(a.tryAdmitVbr(0, 30, 80));
    a.releaseVbr(0, 30, 80);
    EXPECT_EQ(a.allocatedCycles(0), 0u);
    EXPECT_EQ(a.peakCycles(0), 0u);
}

TEST(Admission, CbrAndVbrShareTheAllocatedRegister)
{
    AdmissionController a(1, 100, 2.0, 0.0);
    EXPECT_TRUE(a.tryAdmitCbr(0, 70));
    EXPECT_FALSE(a.tryAdmitVbr(0, 40, 40));
    EXPECT_TRUE(a.tryAdmitVbr(0, 30, 60));
}

TEST(Admission, BestEffortReserveWithheld)
{
    // 25% of the round stays unreservable so best-effort traffic
    // cannot starve (§4.2).
    AdmissionController a(1, 100, 2.0, 0.25);
    EXPECT_EQ(a.reservableCycles(), 75u);
    EXPECT_FALSE(a.tryAdmitCbr(0, 80));
    EXPECT_TRUE(a.tryAdmitCbr(0, 75));
}

TEST(Admission, RenegotiateUpAndDown)
{
    AdmissionController a(1, 100, 2.0, 0.0);
    ASSERT_TRUE(a.tryAdmitCbr(0, 50));
    ASSERT_TRUE(a.tryAdmitCbr(0, 30));
    // 50 -> 60 fits (80 - 50 + 60 = 90).
    EXPECT_TRUE(a.renegotiateCbr(0, 50, 60));
    EXPECT_EQ(a.allocatedCycles(0), 90u);
    // 60 -> 80 does not fit (90 - 60 + 80 = 110).
    EXPECT_FALSE(a.renegotiateCbr(0, 60, 80));
    EXPECT_EQ(a.allocatedCycles(0), 90u) << "failed renegotiate leaks";
    // Shrinking always fits.
    EXPECT_TRUE(a.renegotiateCbr(0, 60, 10));
    EXPECT_EQ(a.allocatedCycles(0), 40u);
}

TEST(AdmissionDeath, OverReleasePanics)
{
    AdmissionController a(1, 100, 2.0, 0.0);
    ASSERT_TRUE(a.tryAdmitCbr(0, 10));
    EXPECT_DEATH(a.releaseCbr(0, 11), "more than allocated");
}

TEST(AdmissionDeath, BadPortPanics)
{
    AdmissionController a(2, 100, 2.0, 0.0);
    EXPECT_DEATH(a.tryAdmitCbr(2, 1), "out of range");
}

/** Property: a random admit/release workload never overcommits. */
class AdmissionProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(AdmissionProperty, NeverOvercommits)
{
    Rng rng(GetParam());
    AdmissionController a(4, 512, 2.0, 0.1);
    struct Grant
    {
        PortId out;
        unsigned perm, peak;
        bool vbr;
    };
    std::vector<Grant> live;
    for (int step = 0; step < 2000; ++step) {
        if (!live.empty() && rng.chance(0.4)) {
            const auto i = rng.below(live.size());
            const Grant g = live[i];
            live.erase(live.begin() + i);
            if (g.vbr)
                a.releaseVbr(g.out, g.perm, g.peak);
            else
                a.releaseCbr(g.out, g.perm);
        } else {
            Grant g;
            g.out = static_cast<PortId>(rng.below(4));
            g.vbr = rng.chance(0.5);
            g.perm = 1 + static_cast<unsigned>(rng.below(64));
            g.peak = g.perm + static_cast<unsigned>(rng.below(128));
            const bool ok = g.vbr
                                ? a.tryAdmitVbr(g.out, g.perm, g.peak)
                                : a.tryAdmitCbr(g.out, g.perm);
            if (ok)
                live.push_back(g);
        }
        for (PortId p = 0; p < 4; ++p) {
            ASSERT_LE(a.allocatedCycles(p), a.reservableCycles());
            ASSERT_LE(static_cast<double>(a.peakCycles(p)),
                      a.reservableCycles() * a.concurrency() + 1e-9);
        }
    }
    // Releasing everything must drain both registers exactly.
    for (const Grant &g : live) {
        if (g.vbr)
            a.releaseVbr(g.out, g.perm, g.peak);
        else
            a.releaseCbr(g.out, g.perm);
    }
    for (PortId p = 0; p < 4; ++p) {
        EXPECT_EQ(a.allocatedCycles(p), 0u);
        EXPECT_EQ(a.peakCycles(p), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmissionProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace mmr
