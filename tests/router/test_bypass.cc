/**
 * @file
 * Focused tests for the asynchronous VCT cut-through path (§3.4):
 * port claiming, interaction with the synchronous matching, and the
 * "busy during link arbitration for the next flit cycle" rule.
 */

#include <gtest/gtest.h>

#include <vector>

#include "router/router.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

RouterConfig
cfg()
{
    RouterConfig c;
    c.numPorts = 4;
    c.vcsPerPort = 8;
    c.vcBufferFlits = 8;
    c.candidates = 4;
    c.seed = 5;
    return c;
}

struct Delivery
{
    PortId out;
    Flit flit;
    Cycle when;
};

class BypassTest : public ::testing::Test
{
  protected:
    BypassTest() : router(cfg())
    {
        router.setSink([this](PortId out, VcId, const Flit &f, Cycle t) {
            deliveries.push_back(Delivery{out, f, t});
        });
        kernel.add(&router);
    }

    MmrRouter router;
    Kernel kernel;
    std::vector<Delivery> deliveries;
};

TEST_F(BypassTest, CutThroughClaimsPortsForNextArbitration)
{
    // A stream wants output 2 every cycle; a control packet cuts
    // through output 2 at cycle 0, so the stream's first flit cannot
    // be granted in the arbitration running concurrently (§3.4: the
    // port is busy for the next flit cycle's arbitration).
    const ConnId stream = router.openCbr(0, 2, 1.0 * kGbps);
    for (int i = 0; i < 4; ++i) {
        Flit f;
        f.seq = static_cast<std::uint32_t>(i);
        ASSERT_TRUE(router.inject(stream, f));
    }
    Flit ctl;
    ctl.conn = 777;
    ctl.readyTime = 0;
    router.offerControl(1, 2, ctl);

    kernel.run(10);
    ASSERT_GE(deliveries.size(), 5u);
    // Control left during cycle 0.
    EXPECT_EQ(deliveries[0].flit.klass, TrafficClass::Control);
    EXPECT_EQ(deliveries[0].when, 0u);
    // The stream's first flit cannot leave at cycle 1: the matching
    // applied at cycle 1 was computed while output 2 was masked.
    EXPECT_EQ(deliveries[1].flit.klass, TrafficClass::CBR);
    EXPECT_GE(deliveries[1].when, 2u);
}

TEST_F(BypassTest, DistinctPortsCutThroughTogether)
{
    Flit a, b;
    a.conn = 1;
    b.conn = 2;
    router.offerControl(0, 1, a);
    router.offerControl(2, 3, b);
    kernel.run(1);
    EXPECT_EQ(deliveries.size(), 2u);
    EXPECT_EQ(router.bypassHits(), 2u);
}

TEST_F(BypassTest, SameOutputSecondPacketFallsBack)
{
    Flit a, b;
    a.conn = 1;
    b.conn = 2;
    router.offerControl(0, 1, a);
    router.offerControl(2, 1, b); // same output: must not cut through
    kernel.run(8);
    EXPECT_EQ(router.bypassHits(), 1u);
    EXPECT_EQ(router.bypassMisses(), 1u);
    EXPECT_EQ(deliveries.size(), 2u) << "the loser is scheduled";
    EXPECT_EQ(router.controlDrops(), 0u);
}

TEST_F(BypassTest, SameInputSecondPacketFallsBack)
{
    Flit a, b;
    a.conn = 1;
    b.conn = 2;
    router.offerControl(0, 1, a);
    router.offerControl(0, 2, b); // same input link
    kernel.run(8);
    EXPECT_EQ(router.bypassHits(), 1u);
    EXPECT_EQ(router.bypassMisses(), 1u);
    EXPECT_EQ(deliveries.size(), 2u);
}

TEST_F(BypassTest, ControlChannelIsReusedAcrossPackets)
{
    // Repeatedly blocked control packets share one lazily-created
    // control channel per (in, out) pair instead of exhausting VCs.
    const ConnId stream = router.openCbr(0, 2, 1.0 * kGbps);
    const unsigned before_in = router.routing().freeInputVcCount(1);
    for (int round = 0; round < 6; ++round) {
        Flit f;
        f.seq = static_cast<std::uint32_t>(round);
        router.inject(stream, f);
        Flit ctl;
        ctl.conn = 900 + round;
        ctl.readyTime = kernel.now();
        router.offerControl(1, 2, ctl);
        kernel.run(3);
    }
    kernel.run(20);
    // At most one control VC was consumed on input port 1.
    EXPECT_GE(router.routing().freeInputVcCount(1), before_in - 1);
    EXPECT_EQ(router.controlDrops(), 0u);
    unsigned control_seen = 0;
    for (const Delivery &d : deliveries)
        control_seen += (d.flit.klass == TrafficClass::Control);
    EXPECT_EQ(control_seen, 6u);
}

TEST_F(BypassTest, PhitBufferCapacityBoundsControlAcceptance)
{
    // The phit buffer holds 4 flits (one decode period + headroom);
    // a burst beyond that is refused — link-level back-pressure on
    // probes (§3.2).
    unsigned accepted = 0;
    for (int i = 0; i < 10; ++i) {
        Flit f;
        f.conn = static_cast<ConnId>(i);
        if (router.offerControl(0, 1, f))
            ++accepted;
    }
    EXPECT_EQ(accepted, 4u);
    EXPECT_EQ(router.phitBufferDepth(0), 4u);
    EXPECT_EQ(router.controlDrops(), 6u);
    // The buffer drains as the cycles advance and all accepted
    // packets eventually deliver.
    kernel.run(12);
    EXPECT_EQ(router.phitBufferDepth(0), 0u);
    EXPECT_EQ(deliveries.size(), 4u);
}

TEST_F(BypassTest, PhitBuffersAreIndependentPerInput)
{
    for (PortId in = 0; in < 4; ++in) {
        Flit f;
        f.conn = in;
        EXPECT_TRUE(router.offerControl(in, (in + 1) % 4, f));
    }
    EXPECT_EQ(router.phitBufferDepth(0), 1u);
    EXPECT_EQ(router.phitBufferDepth(3), 1u);
    kernel.run(6);
    EXPECT_EQ(deliveries.size(), 4u);
}

} // namespace
} // namespace mmr
