/**
 * @file
 * Unit tests for the virtual channel memory (§3.2): the functional
 * buffer pool and the interleaved-bank timing model.
 */

#include <gtest/gtest.h>

#include "router/vc_memory.hh"

namespace mmr
{
namespace
{

Flit
makeFlit(std::uint32_t seq)
{
    Flit f;
    f.seq = seq;
    return f;
}

TEST(VcMemory, DepositAndDrainTrackOccupancy)
{
    VcMemory mem(8, 4);
    mem.vc(2).bindBestEffort(1);
    EXPECT_TRUE(mem.deposit(2, makeFlit(0)));
    EXPECT_TRUE(mem.deposit(2, makeFlit(1)));
    EXPECT_EQ(mem.occupancy(), 2u);
    EXPECT_EQ(mem.freeSlots(2), 2u);
    EXPECT_TRUE(mem.flitsAvailable().test(2));

    mem.vc(2).pop();
    mem.noteDrained(2);
    EXPECT_EQ(mem.occupancy(), 1u);
    EXPECT_TRUE(mem.flitsAvailable().test(2));
    mem.vc(2).pop();
    mem.noteDrained(2);
    EXPECT_FALSE(mem.flitsAvailable().test(2));
    EXPECT_EQ(mem.occupancy(), 0u);
}

TEST(VcMemory, OverflowRejectedAndCounted)
{
    VcMemory mem(2, 2);
    mem.vc(0).bindBestEffort(1);
    EXPECT_TRUE(mem.deposit(0, makeFlit(0)));
    EXPECT_TRUE(mem.deposit(0, makeFlit(1)));
    EXPECT_FALSE(mem.deposit(0, makeFlit(2)));
    EXPECT_EQ(mem.overflowCount(), 1u);
    EXPECT_EQ(mem.occupancy(), 2u);
    EXPECT_EQ(mem.freeSlots(0), 0u);
}

TEST(VcMemory, FlitsAvailableTracksManyVcs)
{
    VcMemory mem(64, 4);
    for (VcId v : {VcId{0}, VcId{13}, VcId{63}}) {
        mem.vc(v).bindBestEffort(v + 1);
        mem.deposit(v, makeFlit(v));
    }
    EXPECT_EQ(mem.flitsAvailable().setBits(),
              (std::vector<std::size_t>{0, 13, 63}));
}

TEST(VcMemoryDeath, OutOfRangePanics)
{
    VcMemory mem(4, 4);
    EXPECT_DEATH(mem.vc(4), "out of range");
    EXPECT_DEATH(mem.noteDrained(0), "zero occupancy");
}

TEST(VcMemoryModel, WordsPerFlitRoundsUp)
{
    VcMemoryModel m;
    m.wordBits = 32;
    EXPECT_EQ(m.wordsPerFlit(128), 4u);
    EXPECT_EQ(m.wordsPerFlit(129), 5u);
    EXPECT_EQ(m.wordsPerFlit(32), 1u);
}

TEST(VcMemoryModel, MoreBanksMoreBandwidth)
{
    double prev = 0.0;
    for (unsigned banks : {1u, 2u, 4u, 8u}) {
        VcMemoryModel m{banks, 32, 6.0, 1};
        const double rate = m.sustainableRateBps(128);
        EXPECT_GE(rate, prev);
        prev = rate;
    }
}

TEST(VcMemoryModel, DualPortDoublesBandwidth)
{
    VcMemoryModel single{4, 32, 6.0, 1};
    VcMemoryModel dual{4, 32, 6.0, 2};
    EXPECT_NEAR(dual.sustainableRateBps(128),
                2.0 * single.sustainableRateBps(128), 1.0);
}

TEST(VcMemoryModel, MinBanksIsTight)
{
    // The returned bank count sustains the link; one fewer does not.
    const double link = 1.24 * kGbps;
    const unsigned banks =
        VcMemoryModel::minBanksFor(link, 128, 32, 6.0);
    VcMemoryModel ok{banks, 32, 6.0, 1};
    EXPECT_TRUE(ok.matchesLink(128, link));
    if (banks > 1) {
        VcMemoryModel tight{banks - 1, 32, 6.0, 1};
        EXPECT_FALSE(tight.matchesLink(128, link));
    }
}

TEST(VcMemoryModel, PaperDesignPointIsFeasible)
{
    // §3.2: banks and flit size are chosen to balance memory access
    // time against a 1.24 Gb/s link.  A modest SRAM (6 ns) with a
    // 32-bit datapath needs only a handful of interleaved banks.
    const unsigned banks =
        VcMemoryModel::minBanksFor(1.24 * kGbps, 128, 32, 6.0);
    EXPECT_LE(banks, 8u);
}

TEST(VcMemoryModel, FlitAccessScalesWithFlitSize)
{
    VcMemoryModel m{4, 32, 5.0, 1};
    EXPECT_DOUBLE_EQ(m.flitAccessNs(128), 5.0);  // 4 words, 1 group
    EXPECT_DOUBLE_EQ(m.flitAccessNs(256), 10.0); // 8 words, 2 groups
    EXPECT_DOUBLE_EQ(m.flitAccessNs(64), 5.0);   // 2 words, 1 group
}

} // namespace
} // namespace mmr
