/**
 * @file
 * End-to-end property tests: for every scheduler kind and candidate
 * count, a loaded router must conserve flits, keep per-connection
 * order, respect CBR round quotas, and carry the offered load below
 * saturation.  These are the invariants behind the §5 study.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "harness/single_router.hh"

namespace mmr
{
namespace
{

using Param = std::tuple<SchedulerKind, unsigned>; // scheduler, candidates

class SchedulerProperty : public ::testing::TestWithParam<Param>
{
};

TEST_P(SchedulerProperty, CarriesModerateLoadWithFiniteDelay)
{
    const auto [kind, candidates] = GetParam();
    ExperimentConfig cfg;
    cfg.router.numPorts = 4;
    cfg.router.vcsPerPort = 32;
    cfg.router.candidates = candidates;
    cfg.router.scheduler = kind;
    cfg.offeredLoad = 0.5;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 10000;
    cfg.seed = 11;

    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_GT(r.connections, 0u);
    EXPECT_NEAR(r.achievedLoad, 0.5, 0.05);
    EXPECT_EQ(r.injectionRejects, 0u)
        << "no buffer overflow below saturation";
    EXPECT_GT(r.flitsDelivered, 0u);
    // Utilization tracks carried load in steady state.
    EXPECT_NEAR(r.utilization, r.achievedLoad, 0.06);
    EXPECT_GT(r.meanDelayCycles, 0.0);
    EXPECT_LT(r.meanDelayCycles, 5000.0);
    EXPECT_GE(r.meanJitterCycles, 0.0);
}

TEST_P(SchedulerProperty, DeterministicForFixedSeed)
{
    const auto [kind, candidates] = GetParam();
    ExperimentConfig cfg;
    cfg.router.numPorts = 4;
    cfg.router.vcsPerPort = 32;
    cfg.router.candidates = candidates;
    cfg.router.scheduler = kind;
    cfg.offeredLoad = 0.4;
    cfg.warmupCycles = 500;
    cfg.measureCycles = 3000;
    cfg.seed = 21;

    const ExperimentResult a = runSingleRouter(cfg);
    const ExperimentResult b = runSingleRouter(cfg);
    EXPECT_EQ(a.connections, b.connections);
    EXPECT_EQ(a.flitsDelivered, b.flitsDelivered);
    EXPECT_DOUBLE_EQ(a.meanDelayCycles, b.meanDelayCycles);
    EXPECT_DOUBLE_EQ(a.meanJitterCycles, b.meanJitterCycles);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndCandidates, SchedulerProperty,
    ::testing::Combine(
        ::testing::Values(SchedulerKind::BiasedPriority,
                          SchedulerKind::FixedPriority,
                          SchedulerKind::AgePriority,
                          SchedulerKind::OutputDriven,
                          SchedulerKind::Autonet, SchedulerKind::Islip,
                          SchedulerKind::Perfect),
        ::testing::Values(1u, 2u, 4u)),
    [](const ::testing::TestParamInfo<Param> &pinfo) {
        std::string name = to_string(std::get<0>(pinfo.param)) + "_c" +
                           std::to_string(std::get<1>(pinfo.param));
        for (char &c : name)
            if (c == '-')
                c = '_'; // gtest test names reject hyphens
        return name;
    });

/** The §4.3 guarantee: a CBR connection never exceeds its per-round
 * allocation, even when its source misbehaves (floods). */
TEST(CbrQuotaProperty, MisbehavingSourceIsThrottled)
{
    RouterConfig rc;
    rc.numPorts = 2;
    rc.vcsPerPort = 8;
    rc.vcBufferFlits = 64;
    rc.roundFactorK = 4; // round = 32 cycles
    rc.candidates = 4;

    MetricsRecorder metrics;
    MmrRouter router(rc, &metrics);
    std::vector<Cycle> departures;
    router.setSink([&](PortId, VcId, const Flit &, Cycle t) {
        departures.push_back(t);
    });

    // Reserve ~4 cycles/round but flood every cycle.
    const unsigned round = rc.cyclesPerRound();
    const double rate = 4.0 / round * rc.linkRateBps;
    const ConnId id = router.openCbr(0, 1, rate);
    ASSERT_NE(id, kInvalidConn);
    const unsigned alloc = router.connection(id)->allocCycles;

    Kernel kernel;
    kernel.add(&router);
    for (Cycle t = 0; t < 10 * round; ++t) {
        Flit f;
        f.readyTime = t;
        router.inject(id, f); // may be rejected when full: flooding
        kernel.step();
    }

    // Count departures per round: never above the allocation.
    std::map<Cycle, unsigned> per_round;
    for (Cycle t : departures)
        per_round[t / round]++;
    ASSERT_FALSE(per_round.empty());
    for (const auto &[round_idx, n] : per_round)
        EXPECT_LE(n, alloc) << "round " << round_idx
                            << " exceeded the reservation";
}

/** Work conservation: with a single backlogged connection and no
 * competing traffic, the link never idles below the quota. */
TEST(CbrQuotaProperty, AllocationIsAlsoDeliveredWhenBacklogged)
{
    RouterConfig rc;
    rc.numPorts = 2;
    rc.vcsPerPort = 8;
    rc.vcBufferFlits = 64;
    rc.roundFactorK = 4;
    rc.candidates = 4;

    MmrRouter router(rc);
    std::vector<Cycle> departures;
    router.setSink([&](PortId, VcId, const Flit &, Cycle t) {
        departures.push_back(t);
    });

    const unsigned round = rc.cyclesPerRound();
    const double rate = 8.0 / round * rc.linkRateBps;
    const ConnId id = router.openCbr(0, 1, rate);
    const unsigned alloc = router.connection(id)->allocCycles;

    Kernel kernel;
    kernel.add(&router);
    for (Cycle t = 0; t < 8 * round; ++t) {
        Flit f;
        f.readyTime = t;
        router.inject(id, f);
        kernel.step();
    }
    std::map<Cycle, unsigned> per_round;
    for (Cycle t : departures)
        per_round[t / round]++;
    // Interior rounds deliver exactly the allocation.
    for (unsigned r = 1; r + 1 < 8; ++r)
        EXPECT_EQ(per_round[r], alloc) << "round " << r;
}

} // namespace
} // namespace mmr
