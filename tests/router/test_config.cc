/**
 * @file
 * Tests for the router configuration surface: validation of the §2
 * quantitative parameters, name round-trips, and derived quantities.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "router/config.hh"

namespace mmr
{
namespace
{

TEST(Config, DefaultsAreThePaperDesignPoint)
{
    const RouterConfig cfg;
    EXPECT_EQ(cfg.numPorts, 8u);
    EXPECT_EQ(cfg.vcsPerPort, 256u);
    EXPECT_DOUBLE_EQ(cfg.linkRateBps, 1.24 * kGbps);
    EXPECT_EQ(cfg.flitBits, 128u);
    EXPECT_NEAR(cfg.flitCycleNanos(), 103.2, 0.1);
    EXPECT_EQ(cfg.cyclesPerRound(), 512u); // K=2 x 256 VCs
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, SchedulerNamesRoundTrip)
{
    for (SchedulerKind k :
         {SchedulerKind::BiasedPriority, SchedulerKind::FixedPriority,
          SchedulerKind::AgePriority, SchedulerKind::Autonet,
          SchedulerKind::Islip, SchedulerKind::Perfect}) {
        EXPECT_EQ(schedulerKindFromString(to_string(k)), k);
    }
    EXPECT_EQ(schedulerKindFromString("dec"), SchedulerKind::Autonet);
    EXPECT_EQ(schedulerKindFromString("pim"), SchedulerKind::Autonet);
    EXPECT_THROW(schedulerKindFromString("nonsense"),
                 std::runtime_error);
}

TEST(Config, CrossbarNames)
{
    EXPECT_EQ(to_string(CrossbarOrg::Multiplexed), "multiplexed");
    EXPECT_EQ(to_string(CrossbarOrg::PartiallyDemuxed),
              "partially-demuxed");
    EXPECT_EQ(to_string(CrossbarOrg::FullyDemuxed), "fully-demuxed");
}

/** Every invalid-parameter branch must be fatal (user error). */
TEST(Config, ValidationRejectsNonsense)
{
    auto expect_invalid = [](auto &&mutate) {
        RouterConfig cfg;
        mutate(cfg);
        EXPECT_THROW(cfg.validate(), std::runtime_error);
    };
    expect_invalid([](RouterConfig &c) { c.numPorts = 0; });
    expect_invalid([](RouterConfig &c) { c.numPorts = 2048; });
    expect_invalid([](RouterConfig &c) { c.vcsPerPort = 0; });
    expect_invalid([](RouterConfig &c) { c.linkRateBps = 0.0; });
    expect_invalid([](RouterConfig &c) { c.linkRateBps = -1.0; });
    expect_invalid([](RouterConfig &c) { c.flitBits = 0; });
    expect_invalid([](RouterConfig &c) { c.flitBits = 129; });
    expect_invalid([](RouterConfig &c) { c.phitBits = 0; });
    expect_invalid([](RouterConfig &c) { c.phitBits = 48; });
    expect_invalid([](RouterConfig &c) { c.vcBufferFlits = 0; });
    expect_invalid([](RouterConfig &c) { c.roundFactorK = 0; });
    expect_invalid([](RouterConfig &c) { c.candidates = 0; });
    expect_invalid([](RouterConfig &c) {
        c.candidates = c.vcsPerPort + 1;
    });
    expect_invalid([](RouterConfig &c) { c.concurrencyFactor = 0.5; });
    expect_invalid([](RouterConfig &c) { c.bestEffortReserve = 1.0; });
    expect_invalid([](RouterConfig &c) { c.bestEffortReserve = -0.1; });
    expect_invalid([](RouterConfig &c) { c.memBanks = 0; });
}

TEST(Config, FlitCycleScalesWithLinkAndFlit)
{
    RouterConfig cfg;
    cfg.flitBits = 128;
    cfg.linkRateBps = 2.0 * kGbps;
    EXPECT_NEAR(cfg.flitCycleNanos(), 64.0, 0.01); // §6: 64-128 ns
    cfg.linkRateBps = 1.0 * kGbps;
    EXPECT_NEAR(cfg.flitCycleNanos(), 128.0, 0.01);
}

TEST(Config, AgeSchedulerRunsEndToEnd)
{
    RouterConfig cfg;
    cfg.numPorts = 2;
    cfg.vcsPerPort = 4;
    cfg.scheduler = SchedulerKind::AgePriority;
    EXPECT_NO_THROW(cfg.validate());
}

} // namespace
} // namespace mmr
