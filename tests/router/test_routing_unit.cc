/**
 * @file
 * Unit tests for the Routing and Arbitration Unit (§3.5): VC pools,
 * direct/reverse channel mappings and the EPB history store.
 */

#include <gtest/gtest.h>

#include "router/routing_unit.hh"

namespace mmr
{
namespace
{

TEST(RoutingUnit, AllVcsStartFree)
{
    RoutingUnit r(4, 16);
    for (PortId p = 0; p < 4; ++p) {
        EXPECT_EQ(r.freeInputVcCount(p), 16u);
        EXPECT_EQ(r.freeOutputVcCount(p), 16u);
    }
}

TEST(RoutingUnit, AllocLowestFirstAndExhausts)
{
    RoutingUnit r(1, 3);
    EXPECT_EQ(r.allocInputVc(0), 0u);
    EXPECT_EQ(r.allocInputVc(0), 1u);
    EXPECT_EQ(r.allocInputVc(0), 2u);
    EXPECT_EQ(r.allocInputVc(0), kInvalidVc);
    EXPECT_EQ(r.freeInputVcCount(0), 0u);
}

TEST(RoutingUnit, FreeMakesVcReusable)
{
    RoutingUnit r(1, 2);
    ASSERT_EQ(r.allocOutputVc(0), 0u);
    ASSERT_EQ(r.allocOutputVc(0), 1u);
    r.freeOutputVc(0, 0);
    EXPECT_EQ(r.allocOutputVc(0), 0u) << "lowest free VC is reused";
}

TEST(RoutingUnit, InputAndOutputPoolsAreSeparate)
{
    RoutingUnit r(1, 2);
    ASSERT_EQ(r.allocInputVc(0), 0u);
    EXPECT_EQ(r.allocOutputVc(0), 0u)
        << "input allocation must not consume output VCs";
}

TEST(RoutingUnit, DirectAndReverseMappings)
{
    RoutingUnit r(4, 8);
    const ChannelRef in{1, 3};
    const ChannelRef out{2, 5};
    r.map(in, out);
    EXPECT_TRUE(r.directMap(in) == out);
    EXPECT_TRUE(r.reverseMap(out) == in);
    // Unrelated channels stay unmapped.
    EXPECT_FALSE(r.directMap(ChannelRef{1, 4}).valid());
    EXPECT_FALSE(r.reverseMap(ChannelRef{2, 6}).valid());

    r.unmap(in);
    EXPECT_FALSE(r.directMap(in).valid());
    EXPECT_FALSE(r.reverseMap(out).valid());
}

TEST(RoutingUnit, HistoryStorePerInputChannel)
{
    RoutingUnit r(4, 8);
    BitVector &h = r.history(ChannelRef{0, 1});
    EXPECT_EQ(h.size(), 4u) << "one bit per output link";
    h.set(2);
    EXPECT_TRUE(r.history(ChannelRef{0, 1}).test(2));
    EXPECT_FALSE(r.history(ChannelRef{0, 2}).test(2))
        << "history is per input virtual channel";
    r.clearHistory(ChannelRef{0, 1});
    EXPECT_TRUE(r.history(ChannelRef{0, 1}).none());
}

TEST(RoutingUnitDeath, DoubleMapPanics)
{
    RoutingUnit r(2, 2);
    r.map(ChannelRef{0, 0}, ChannelRef{1, 0});
    EXPECT_DEATH(r.map(ChannelRef{0, 0}, ChannelRef{1, 1}),
                 "already mapped");
    EXPECT_DEATH(r.map(ChannelRef{0, 1}, ChannelRef{1, 0}),
                 "already mapped");
}

TEST(RoutingUnitDeath, DoubleFreePanics)
{
    RoutingUnit r(1, 2);
    const VcId v = r.allocInputVc(0);
    r.freeInputVc(0, v);
    EXPECT_DEATH(r.freeInputVc(0, v), "double free");
}

TEST(RoutingUnitDeath, UnmapUnmappedPanics)
{
    RoutingUnit r(1, 2);
    EXPECT_DEATH(r.unmap(ChannelRef{0, 0}), "no mapping");
}

} // namespace
} // namespace mmr
