/**
 * @file
 * Unit tests for the crossbar organization cost model (§3.3).
 */

#include <gtest/gtest.h>

#include "router/crossbar.hh"

namespace mmr
{
namespace
{

CrossbarModel
model(CrossbarOrg org, unsigned ports = 8, unsigned vcs = 256)
{
    CrossbarModel m;
    m.org = org;
    m.numPorts = ports;
    m.vcsPerPort = vcs;
    m.datapathBits = 128;
    return m;
}

TEST(Crossbar, CrosspointCounts)
{
    EXPECT_EQ(model(CrossbarOrg::Multiplexed).crosspoints(), 64u);
    EXPECT_EQ(model(CrossbarOrg::PartiallyDemuxed).crosspoints(),
              8u * 256u * 8u);
    EXPECT_EQ(model(CrossbarOrg::FullyDemuxed).crosspoints(),
              std::uint64_t{8} * 256 * 8 * 256);
}

TEST(Crossbar, AreaRatiosAreVandVSquared)
{
    // §3.3: the multiplexed crossbar "reduces silicon area by V and
    // V^2, respectively, with respect to a partially multiplexed and a
    // fully de-multiplexed crossbar".
    const double v = 256.0;
    EXPECT_DOUBLE_EQ(
        model(CrossbarOrg::Multiplexed).areaRatioVsMultiplexed(), 1.0);
    EXPECT_DOUBLE_EQ(
        model(CrossbarOrg::PartiallyDemuxed).areaRatioVsMultiplexed(), v);
    EXPECT_DOUBLE_EQ(
        model(CrossbarOrg::FullyDemuxed).areaRatioVsMultiplexed(),
        v * v);
}

TEST(Crossbar, ArbiterFanIn)
{
    EXPECT_EQ(model(CrossbarOrg::Multiplexed).arbiterFanIn(), 8u);
    EXPECT_EQ(model(CrossbarOrg::PartiallyDemuxed).arbiterFanIn(),
              8u * 256u);
    EXPECT_EQ(model(CrossbarOrg::FullyDemuxed).arbiterFanIn(),
              8u * 256u);
}

TEST(Crossbar, ArbitrationDelayIsLogFanIn)
{
    EXPECT_EQ(model(CrossbarOrg::Multiplexed).arbitrationDelayUnits(),
              3u); // log2(8)
    EXPECT_EQ(
        model(CrossbarOrg::PartiallyDemuxed).arbitrationDelayUnits(),
        11u); // log2(2048)
}

TEST(Crossbar, MeetsCycleTimeAtPaperDesignPoint)
{
    // §6: the crossbar must compute settings in 64-128 ns for 1-2 Gb/s
    // links with 128-bit flits.  With ~1 ns gate stages a multiplexed
    // 8x8 arbiter (3 levels) comfortably fits; a de-multiplexed arbiter
    // over 2048 channels (11 levels) burns 11x more of the budget.
    const double flit_cycle = flitCycleNs(128, 1.24 * kGbps); // ~103 ns
    EXPECT_TRUE(model(CrossbarOrg::Multiplexed)
                    .meetsCycleTime(10.0, flit_cycle));
    EXPECT_FALSE(model(CrossbarOrg::FullyDemuxed)
                     .meetsCycleTime(10.0, flit_cycle));
}

TEST(Crossbar, SinglePortEdgeCase)
{
    auto m = model(CrossbarOrg::Multiplexed, 1, 1);
    EXPECT_EQ(m.arbitrationDelayUnits(), 1u);
    EXPECT_EQ(m.crosspoints(), 1u);
}

TEST(ReconfigCounter, CountsChangesOnly)
{
    ReconfigCounter rc;
    rc.note(false); // first configuration
    rc.note(true);  // same matching held
    rc.note(true);
    rc.note(false); // changed
    EXPECT_EQ(rc.cycles(), 4u);
    EXPECT_EQ(rc.reconfigurations(), 2u);
    EXPECT_DOUBLE_EQ(rc.reconfigRate(), 0.5);
}

TEST(ReconfigCounter, EmptyRateIsZero)
{
    ReconfigCounter rc;
    EXPECT_DOUBLE_EQ(rc.reconfigRate(), 0.0);
}

} // namespace
} // namespace mmr
