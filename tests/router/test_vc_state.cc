/**
 * @file
 * Unit tests for per-VC scheduling state (§3.2, §4.3).
 */

#include <gtest/gtest.h>

#include "router/vc_state.hh"

namespace mmr
{
namespace
{

Flit
makeFlit(std::uint32_t seq)
{
    Flit f;
    f.seq = seq;
    return f;
}

TEST(VcState, StartsUnbound)
{
    VcState vc;
    EXPECT_FALSE(vc.bound());
    EXPECT_FALSE(vc.mapped());
    EXPECT_TRUE(vc.empty());
    EXPECT_EQ(vc.pendingGrants(), 0u);
}

TEST(VcState, CbrBindSetsState)
{
    VcState vc;
    vc.bindCbr(7, 12, 100.0);
    EXPECT_TRUE(vc.bound());
    EXPECT_EQ(vc.conn(), 7u);
    EXPECT_EQ(vc.trafficClass(), TrafficClass::CBR);
    EXPECT_EQ(vc.allocCycles(), 12u);
    EXPECT_DOUBLE_EQ(vc.interArrival(), 100.0);
    EXPECT_EQ(vc.quotaThisRound(), 12u);
}

TEST(VcState, VbrBindSetsState)
{
    VcState vc;
    vc.bindVbr(3, 4, 10, 50.0, 2);
    EXPECT_EQ(vc.trafficClass(), TrafficClass::VBR);
    EXPECT_EQ(vc.permCycles(), 4u);
    EXPECT_EQ(vc.peakCycles(), 10u);
    EXPECT_EQ(vc.userPriority(), 2);
    EXPECT_EQ(vc.quotaThisRound(), 10u);
}

TEST(VcState, BestEffortAndControlHaveNoQuota)
{
    VcState be, ctl;
    be.bindBestEffort(1);
    ctl.bindControl(2);
    EXPECT_EQ(be.quotaThisRound(), ~0u);
    EXPECT_EQ(ctl.quotaThisRound(), ~0u);
}

TEST(VcState, FifoOrderPreserved)
{
    VcState vc;
    vc.bindBestEffort(1);
    for (std::uint32_t i = 0; i < 5; ++i)
        vc.push(makeFlit(i));
    EXPECT_EQ(vc.depth(), 5u);
    for (std::uint32_t i = 0; i < 5; ++i) {
        EXPECT_EQ(vc.head().seq, i);
        EXPECT_EQ(vc.pop().seq, i);
    }
    EXPECT_TRUE(vc.empty());
}

TEST(VcState, PendingGrantsTrackUngrantedFlits)
{
    VcState vc;
    vc.bindCbr(1, 4, 10.0);
    vc.push(makeFlit(0));
    EXPECT_TRUE(vc.hasUngrantedFlit());
    EXPECT_EQ(vc.ungrantedHead().seq, 0u);
    vc.noteGrantIssued();
    EXPECT_FALSE(vc.hasUngrantedFlit());
    vc.push(makeFlit(1));
    EXPECT_TRUE(vc.hasUngrantedFlit());
    EXPECT_EQ(vc.ungrantedHead().seq, 1u)
        << "the granted head is no longer offerable";
    vc.pop();
    vc.noteGrantApplied();
    EXPECT_EQ(vc.pendingGrants(), 0u);
    EXPECT_TRUE(vc.hasUngrantedFlit());
}

TEST(VcState, RoundAccounting)
{
    VcState vc;
    vc.bindCbr(1, 2, 10.0);
    vc.noteServiced();
    vc.noteServiced();
    EXPECT_EQ(vc.serviced(), 2u);
    vc.newRound();
    EXPECT_EQ(vc.serviced(), 0u);
}

TEST(VcState, MappingLifecycle)
{
    VcState vc;
    vc.bindCbr(1, 1, 10.0);
    EXPECT_FALSE(vc.mapped());
    vc.setMapping(3, 17);
    EXPECT_TRUE(vc.mapped());
    EXPECT_EQ(vc.outPort(), 3u);
    EXPECT_EQ(vc.outVc(), 17u);
}

TEST(VcState, ReleaseRestoresFreshState)
{
    VcState vc;
    vc.bindVbr(9, 2, 4, 25.0, 1);
    vc.setMapping(1, 2);
    vc.release();
    EXPECT_FALSE(vc.bound());
    EXPECT_FALSE(vc.mapped());
    EXPECT_EQ(vc.permCycles(), 0u);
    EXPECT_EQ(vc.userPriority(), 0);
    // Reusable for a different class.
    vc.bindControl(11);
    EXPECT_EQ(vc.trafficClass(), TrafficClass::Control);
}

TEST(VcState, DynamicUpdates)
{
    VcState vc;
    vc.bindCbr(1, 2, 100.0);
    vc.setCbrAlloc(5);
    vc.setInterArrival(40.0);
    EXPECT_EQ(vc.allocCycles(), 5u);
    EXPECT_DOUBLE_EQ(vc.interArrival(), 40.0);

    VcState vbr;
    vbr.bindVbr(2, 2, 4, 10.0, 0);
    vbr.setVbrAlloc(3, 6);
    vbr.setUserPriority(7);
    EXPECT_EQ(vbr.permCycles(), 3u);
    EXPECT_EQ(vbr.peakCycles(), 6u);
    EXPECT_EQ(vbr.userPriority(), 7);
}

TEST(VcStateDeath, DoubleBindPanics)
{
    VcState vc;
    vc.bindCbr(1, 1, 10.0);
    EXPECT_DEATH(vc.bindCbr(2, 1, 10.0), "already-bound");
}

TEST(VcStateDeath, ReleaseWithFlitsPanics)
{
    VcState vc;
    vc.bindBestEffort(1);
    vc.push(makeFlit(0));
    EXPECT_DEATH(vc.release(), "buffered flits");
}

TEST(VcStateDeath, PopEmptyPanics)
{
    VcState vc;
    vc.bindBestEffort(1);
    EXPECT_DEATH(vc.pop(), "empty");
}

TEST(VcStateDeath, PopUnboundPanics)
{
    VcState vc;
    EXPECT_DEATH(vc.pop(), "unbound");
}

TEST(VcStateDeath, HeadEmptyPanics)
{
    VcState vc;
    vc.bindCbr(1, 1, 10.0);
    EXPECT_DEATH(vc.head(), "empty");
}

TEST(VcStateDeath, HeadUnboundPanics)
{
    VcState vc;
    EXPECT_DEATH(vc.head(), "unbound");
}

TEST(VcStateDeath, PushUnboundPanics)
{
    VcState vc;
    EXPECT_DEATH(vc.push(makeFlit(3)), "unbound");
}

TEST(VcStateDeath, VbrPeakBelowPermPanics)
{
    VcState vc;
    EXPECT_DEATH(vc.bindVbr(1, 10, 5, 1.0, 0), "peak below");
}

} // namespace
} // namespace mmr
