/**
 * @file
 * Integration tests for the complete MMR router: connection
 * lifecycle, the flit-cycle pipeline, per-connection ordering, flow
 * control, the asynchronous control cut-through, and dynamic
 * bandwidth management.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "router/router.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

RouterConfig
smallConfig()
{
    RouterConfig cfg;
    cfg.numPorts = 4;
    cfg.vcsPerPort = 16;
    cfg.vcBufferFlits = 8;
    cfg.roundFactorK = 2;
    cfg.candidates = 4;
    cfg.seed = 3;
    return cfg;
}

struct Delivery
{
    PortId out;
    Flit flit;
    Cycle when;
};

class RouterTest : public ::testing::Test
{
  protected:
    RouterTest() : router(smallConfig(), &metrics)
    {
        router.setSink([this](PortId out, VcId, const Flit &f, Cycle t) {
            deliveries.push_back(Delivery{out, f, t});
        });
        kernel.add(&router, "dut");
    }

    void
    run(Cycle cycles)
    {
        kernel.run(cycles);
    }

    MetricsRecorder metrics;
    MmrRouter router;
    Kernel kernel;
    std::vector<Delivery> deliveries;
};

TEST_F(RouterTest, OpenCbrAllocatesResources)
{
    const ConnId id = router.openCbr(0, 2, 10 * kMbps);
    ASSERT_NE(id, kInvalidConn);
    const SegmentParams *p = router.connection(id);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->in, 0u);
    EXPECT_EQ(p->out, 2u);
    EXPECT_GT(p->allocCycles, 0u);
    EXPECT_GT(router.admission().allocatedCycles(2), 0u);
    EXPECT_EQ(router.routing().freeInputVcCount(0), 15u);
    EXPECT_EQ(router.routing().freeOutputVcCount(2), 15u);
    EXPECT_EQ(router.connectionCount(), 1u);
}

TEST_F(RouterTest, CloseReleasesEverything)
{
    const ConnId id = router.openCbr(0, 2, 10 * kMbps);
    ASSERT_TRUE(router.close(id));
    EXPECT_EQ(router.admission().allocatedCycles(2), 0u);
    EXPECT_EQ(router.routing().freeInputVcCount(0), 16u);
    EXPECT_EQ(router.routing().freeOutputVcCount(2), 16u);
    EXPECT_FALSE(router.close(id)) << "double close reports failure";
}

TEST_F(RouterTest, AdmissionRefusesOverload)
{
    // Fill output 1 to the brim with four ~full-rate connections.
    ASSERT_NE(router.openCbr(0, 1, 0.6 * kGbps), kInvalidConn);
    ASSERT_NE(router.openCbr(1, 1, 0.6 * kGbps), kInvalidConn);
    EXPECT_EQ(router.openCbr(2, 1, 0.2 * kGbps), kInvalidConn)
        << "1.24 Gb/s link cannot carry 1.4 Gb/s";
    // A different output is unaffected.
    EXPECT_NE(router.openCbr(2, 3, 0.2 * kGbps), kInvalidConn);
}

TEST_F(RouterTest, SingleFlitTraversesInOneCycle)
{
    const ConnId id = router.openCbr(0, 2, 10 * kMbps);
    Flit f;
    f.seq = 0;
    f.readyTime = 0;
    ASSERT_TRUE(router.inject(id, f));
    run(3);
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0].out, 2u);
    EXPECT_EQ(deliveries[0].when, 1u)
        << "arbitration overlaps cycle 0; transmission happens in 1";
}

TEST_F(RouterTest, PerConnectionFifoOrder)
{
    const ConnId a = router.openCbr(0, 2, 300 * kMbps);
    const ConnId b = router.openCbr(1, 2, 300 * kMbps);
    std::map<ConnId, std::uint32_t> seq;
    for (std::uint32_t i = 0; i < 8; ++i) {
        const ConnId target = i % 2 ? a : b;
        Flit f;
        f.seq = seq[target]++;
        f.readyTime = 0;
        ASSERT_TRUE(router.inject(target, f));
    }
    run(40);
    std::map<ConnId, std::uint32_t> next;
    for (const Delivery &d : deliveries) {
        EXPECT_EQ(d.flit.seq, next[d.flit.conn]++)
            << "flits of one connection must not reorder";
    }
    EXPECT_EQ(deliveries.size(), 8u);
}

TEST_F(RouterTest, FlitConservation)
{
    // One flit per 5 cycles is 20% of the link: reserve 250 Mb/s so
    // the per-round quota never throttles the test stream.
    const ConnId id = router.openCbr(0, 2, 250 * kMbps);
    unsigned injected = 0;
    for (Cycle t = 0; t < 100; ++t) {
        if (t % 5 == 0) {
            Flit f;
            f.seq = injected++;
            f.readyTime = t;
            ASSERT_TRUE(router.inject(id, f));
        }
        kernel.step();
    }
    run(50); // drain
    EXPECT_EQ(deliveries.size(), injected);
    EXPECT_EQ(router.flitsInjected(), injected);
    EXPECT_EQ(router.flitsForwarded(), injected);
    EXPECT_EQ(router.forwardedByClass(TrafficClass::CBR), injected);
}

TEST_F(RouterTest, InjectionRejectedWhenVcFull)
{
    const ConnId id = router.openCbr(0, 2, 10 * kMbps);
    // Buffer depth is 8; without running the kernel nothing drains.
    for (int i = 0; i < 8; ++i) {
        Flit f;
        ASSERT_TRUE(router.inject(id, f));
    }
    Flit f;
    EXPECT_FALSE(router.inject(id, f));
    EXPECT_EQ(router.injectionRejects(), 1u);
}

TEST_F(RouterTest, TwoInputsShareOneOutputFairly)
{
    const ConnId a = router.openCbr(0, 3, 500 * kMbps);
    const ConnId b = router.openCbr(1, 3, 500 * kMbps);
    // Saturate both VCs, then let the switch arbitrate.
    for (int i = 0; i < 8; ++i) {
        Flit fa, fb;
        fa.seq = fb.seq = static_cast<std::uint32_t>(i);
        ASSERT_TRUE(router.inject(a, fa));
        ASSERT_TRUE(router.inject(b, fb));
    }
    run(80);
    EXPECT_EQ(deliveries.size(), 16u);
    // Only one flit can leave output 3 per cycle.
    std::map<Cycle, unsigned> per_cycle;
    for (const Delivery &d : deliveries)
        per_cycle[d.when]++;
    for (const auto &[t, n] : per_cycle)
        EXPECT_LE(n, 1u) << "output over-subscribed at cycle " << t;
}

TEST_F(RouterTest, ControlCutThroughOnIdleRouter)
{
    Flit f;
    f.conn = 999;
    f.readyTime = 0;
    router.offerControl(1, 3, f);
    run(1);
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0].when, 0u)
        << "idle ports let control packets cut through immediately";
    EXPECT_EQ(router.bypassHits(), 1u);
    EXPECT_EQ(router.bypassMisses(), 0u);
}

TEST_F(RouterTest, BlockedControlFallsBackToScheduling)
{
    // Keep output 3 busy with a saturating stream.
    const ConnId a = router.openCbr(0, 3, 1.0 * kGbps);
    for (int i = 0; i < 8; ++i) {
        Flit f;
        f.seq = static_cast<std::uint32_t>(i);
        ASSERT_TRUE(router.inject(a, f));
    }
    run(2); // stream occupies output 3
    Flit ctl;
    ctl.conn = 999;
    ctl.readyTime = 2;
    router.offerControl(1, 3, ctl);
    run(20);
    EXPECT_GE(router.bypassMisses(), 1u);
    // The control packet still arrives, via the scheduled path, and
    // is not lost.
    bool control_seen = false;
    for (const Delivery &d : deliveries)
        control_seen |= (d.flit.klass == TrafficClass::Control);
    EXPECT_TRUE(control_seen);
    EXPECT_EQ(router.controlDrops(), 0u);
}

TEST_F(RouterTest, ControlPreemptsStreamsInScheduling)
{
    // With a busy router, a buffered control packet must leave ahead
    // of queued stream flits on the same output.
    const ConnId a = router.openCbr(0, 3, 1.0 * kGbps);
    for (int i = 0; i < 8; ++i) {
        Flit f;
        f.seq = static_cast<std::uint32_t>(i);
        ASSERT_TRUE(router.inject(a, f));
    }
    run(1);
    Flit ctl;
    ctl.conn = 999;
    ctl.readyTime = 1;
    router.offerControl(1, 3, ctl);
    run(30);
    // Find the control delivery and check stream flits still queued
    // at its departure were delivered after it.
    Cycle control_at = 0;
    for (const Delivery &d : deliveries)
        if (d.flit.klass == TrafficClass::Control)
            control_at = d.when;
    ASSERT_GT(control_at, 0u);
    EXPECT_LE(control_at, 5u)
        << "control should not wait behind the whole stream backlog";
}

TEST_F(RouterTest, RenegotiateBandwidthUpdatesAllocation)
{
    const ConnId id = router.openCbr(0, 2, 10 * kMbps);
    const unsigned before = router.admission().allocatedCycles(2);
    ASSERT_TRUE(router.renegotiateBandwidth(id, 100 * kMbps));
    EXPECT_GT(router.admission().allocatedCycles(2), before);
    const SegmentParams *p = router.connection(id);
    EXPECT_GT(p->allocCycles, 0u);
    // Infeasible renegotiation fails and leaves state intact.
    ASSERT_NE(router.openCbr(1, 2, 1.1 * kGbps), kInvalidConn);
    const unsigned mid = router.admission().allocatedCycles(2);
    EXPECT_FALSE(router.renegotiateBandwidth(id, 1.0 * kGbps));
    EXPECT_EQ(router.admission().allocatedCycles(2), mid);
}

TEST_F(RouterTest, ControlWordsDriveDynamicManagement)
{
    const ConnId cbr = router.openCbr(0, 2, 10 * kMbps);
    const ConnId vbr = router.openVbr(1, 3, 5 * kMbps, 20 * kMbps, 1);
    ASSERT_NE(vbr, kInvalidConn);

    ControlWord setbw;
    setbw.op = ControlOp::SetBandwidth;
    setbw.conn = cbr;
    setbw.arg = 55.0; // Mb/s
    EXPECT_TRUE(router.applyControlWord(setbw));

    ControlWord setprio;
    setprio.op = ControlOp::SetPriority;
    setprio.conn = vbr;
    setprio.arg = 3.0;
    EXPECT_TRUE(router.applyControlWord(setprio));
    EXPECT_EQ(router.connection(vbr)->priority, 3);

    ControlWord down;
    down.op = ControlOp::Teardown;
    down.conn = cbr;
    EXPECT_TRUE(router.applyControlWord(down));
    EXPECT_EQ(router.connection(cbr), nullptr);

    ControlWord bogus;
    bogus.op = ControlOp::Probe;
    EXPECT_FALSE(router.applyControlWord(bogus));
}

TEST_F(RouterTest, VbrAdmissionUsesConcurrencyFactor)
{
    // concurrencyFactor = 2: peaks can oversubscribe 2x but permanent
    // bandwidth cannot.
    ASSERT_NE(router.openVbr(0, 1, 100 * kMbps, 1.2 * kGbps, 0),
              kInvalidConn);
    EXPECT_NE(router.openVbr(1, 1, 100 * kMbps, 1.2 * kGbps, 0),
              kInvalidConn)
        << "combined peak 2.4G fits 2x concurrency";
    EXPECT_EQ(router.openVbr(2, 1, 100 * kMbps, 0.2 * kGbps, 0),
              kInvalidConn)
        << "third peak exceeds round x concurrency";
}

TEST_F(RouterTest, BestEffortChannelDeliversWithoutReservation)
{
    const ConnId be = router.openBestEffort(1, 2);
    ASSERT_NE(be, kInvalidConn);
    EXPECT_EQ(router.admission().allocatedCycles(2), 0u);
    Flit f;
    ASSERT_TRUE(router.inject(be, f));
    run(5);
    ASSERT_EQ(deliveries.size(), 1u);
    EXPECT_EQ(deliveries[0].flit.klass, TrafficClass::BestEffort);
}

TEST_F(RouterTest, StreamsOutrankBestEffortUnderContention)
{
    const ConnId cbr = router.openCbr(0, 3, 600 * kMbps);
    const ConnId be = router.openBestEffort(1, 3);
    for (int i = 0; i < 6; ++i) {
        Flit fs, fb;
        fs.seq = fb.seq = static_cast<std::uint32_t>(i);
        ASSERT_TRUE(router.inject(cbr, fs));
        ASSERT_TRUE(router.inject(be, fb));
    }
    run(30);
    // The first several departures on output 3 are stream flits.
    ASSERT_GE(deliveries.size(), 12u);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(deliveries[i].flit.klass, TrafficClass::CBR)
            << "guaranteed tier drains before best effort";
}

TEST_F(RouterTest, MatchingSizeAndReconfigStatsAccumulate)
{
    const ConnId id = router.openCbr(0, 2, 100 * kMbps);
    for (int i = 0; i < 4; ++i) {
        Flit f;
        ASSERT_TRUE(router.inject(id, f));
    }
    run(10);
    EXPECT_EQ(router.reconfigs().cycles(), 10u);
    EXPECT_GT(router.matchingSize().count(), 0u);
    EXPECT_GT(router.matchingSize().max(), 0.0);
}

TEST_F(RouterTest, CreditBackpressureStallsForwarding)
{
    router.credits().setInfinite(false);
    const ConnId id = router.openCbr(0, 2, 1.0 * kGbps);
    const SegmentParams *p = router.connection(id);
    for (int i = 0; i < 8; ++i) {
        Flit f;
        f.seq = static_cast<std::uint32_t>(i);
        ASSERT_TRUE(router.inject(id, f));
    }
    // Emulate a congested downstream buffer: only 2 of the 8 credits
    // remain.
    for (int i = 0; i < 6; ++i)
        router.credits().consume(p->out, p->outVc);
    run(30);
    EXPECT_EQ(deliveries.size(), 2u)
        << "forwarding must stall when credits run out";
    // Returning credits resumes transmission exactly credit-for-flit.
    for (unsigned i = 0; i < 3; ++i)
        router.credits().replenish(p->out, p->outVc);
    run(10);
    EXPECT_EQ(deliveries.size(), 5u);
}

TEST_F(RouterTest, DelayMetricsMatchDefinitions)
{
    const ConnId id = router.openCbr(0, 2, 10 * kMbps);
    metrics.startMeasurement(0);
    Flit f;
    f.readyTime = 0;
    ASSERT_TRUE(router.inject(id, f));
    run(3);
    const ConnectionRecorder *rec = metrics.connection(id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->delay().count(), 1u);
    EXPECT_DOUBLE_EQ(rec->delay().mean(), 1.0);
}

TEST_F(RouterTest, VcExhaustionFailsCleanly)
{
    // 16 VCs per port: the 17th connection on the same ports fails
    // and leaks nothing.
    std::vector<ConnId> ids;
    for (int i = 0; i < 16; ++i) {
        const ConnId id = router.openCbr(0, 1, 64 * kKbps);
        ASSERT_NE(id, kInvalidConn);
        ids.push_back(id);
    }
    EXPECT_EQ(router.openCbr(0, 1, 64 * kKbps), kInvalidConn);
    const unsigned alloc = router.admission().allocatedCycles(1);
    // 16 connections of 1 cycle each.
    EXPECT_EQ(alloc, 16u);
    for (ConnId id : ids)
        ASSERT_TRUE(router.close(id));
    EXPECT_EQ(router.admission().allocatedCycles(1), 0u);
}

} // namespace
} // namespace mmr
