/**
 * @file
 * Unit tests for the priority policies and service tiers (§4.4, §5.1).
 */

#include <gtest/gtest.h>

#include "router/priority.hh"

namespace mmr
{
namespace
{

VcState
cbrVc(double inter_arrival, Cycle ready)
{
    VcState vc;
    vc.bindCbr(1, 4, inter_arrival);
    Flit f;
    f.readyTime = ready;
    vc.push(f);
    return vc;
}

TEST(Priority, BiasedGrowsWithWaitingTime)
{
    VcState vc = cbrVc(100.0, 10);
    const double p1 = headPriority(PriorityPolicy::Biased, vc, 20);
    const double p2 = headPriority(PriorityPolicy::Biased, vc, 60);
    EXPECT_DOUBLE_EQ(p1, 0.1);
    EXPECT_DOUBLE_EQ(p2, 0.5);
    EXPECT_GT(p2, p1);
}

TEST(Priority, BiasedScalesWithConnectionSpeed)
{
    // "High speed connections clearly have their priorities grow at a
    // faster rate": same wait, smaller inter-arrival, higher ratio.
    VcState fast = cbrVc(10.0, 0);
    VcState slow = cbrVc(1000.0, 0);
    EXPECT_GT(headPriority(PriorityPolicy::Biased, fast, 50),
              headPriority(PriorityPolicy::Biased, slow, 50));
}

TEST(Priority, FixedIsConstantOverTime)
{
    VcState vc = cbrVc(100.0, 0);
    const double p1 = headPriority(PriorityPolicy::Fixed, vc, 10);
    const double p2 = headPriority(PriorityPolicy::Fixed, vc, 10000);
    EXPECT_DOUBLE_EQ(p1, p2);
    EXPECT_DOUBLE_EQ(p1, 0.01);
}

TEST(Priority, FixedOrdersByRate)
{
    VcState fast = cbrVc(10.0, 0);
    VcState slow = cbrVc(1000.0, 0);
    EXPECT_GT(headPriority(PriorityPolicy::Fixed, fast, 0),
              headPriority(PriorityPolicy::Fixed, slow, 0));
}

TEST(Priority, AgeIsRawWait)
{
    VcState vc = cbrVc(100.0, 5);
    EXPECT_DOUBLE_EQ(headPriority(PriorityPolicy::Age, vc, 25), 20.0);
}

TEST(Priority, ClockBeforeReadyClampsToZero)
{
    VcState vc = cbrVc(100.0, 50);
    EXPECT_DOUBLE_EQ(headPriority(PriorityPolicy::Biased, vc, 10), 0.0);
    EXPECT_DOUBLE_EQ(headPriority(PriorityPolicy::Age, vc, 10), 0.0);
}

TEST(Priority, ZeroInterArrivalFallsBackToAge)
{
    VcState vc;
    vc.bindBestEffort(1);
    Flit f;
    f.readyTime = 0;
    vc.push(f);
    EXPECT_DOUBLE_EQ(headPriority(PriorityPolicy::Biased, vc, 7), 7.0);
    EXPECT_DOUBLE_EQ(headPriority(PriorityPolicy::Fixed, vc, 7), 0.0);
}

TEST(ServiceTier, OrderingMatchesSection43)
{
    VcState ctl, cbr, be;
    ctl.bindControl(1);
    cbr.bindCbr(2, 4, 10.0);
    be.bindBestEffort(3);
    EXPECT_EQ(serviceTier(ctl), ServiceTier::Control);
    EXPECT_EQ(serviceTier(cbr), ServiceTier::Guaranteed);
    EXPECT_EQ(serviceTier(be), ServiceTier::BestEffort);
    EXPECT_GT(static_cast<int>(ServiceTier::Control),
              static_cast<int>(ServiceTier::Guaranteed));
    EXPECT_GT(static_cast<int>(ServiceTier::Guaranteed),
              static_cast<int>(ServiceTier::VbrPermanent))
        << "§4.3: CBR cycles are assigned before VBR permanent bw";
    EXPECT_GT(static_cast<int>(ServiceTier::VbrPermanent),
              static_cast<int>(ServiceTier::VbrExcess));
    EXPECT_GT(static_cast<int>(ServiceTier::VbrExcess),
              static_cast<int>(ServiceTier::BestEffort));
}

TEST(ServiceTier, VbrDemotesToExcessAfterPermanentBandwidth)
{
    VcState vbr;
    vbr.bindVbr(1, 2, 5, 10.0, 0);
    // Within permanent bandwidth: the VBR-permanent tier.
    EXPECT_EQ(serviceTier(vbr), ServiceTier::VbrPermanent);
    vbr.noteServiced();
    EXPECT_EQ(serviceTier(vbr), ServiceTier::VbrPermanent);
    vbr.noteServiced();
    // Permanent exhausted: excess tier up to the peak.
    EXPECT_EQ(serviceTier(vbr), ServiceTier::VbrExcess);
    // A new round restores the permanent tier.
    vbr.newRound();
    EXPECT_EQ(serviceTier(vbr), ServiceTier::VbrPermanent);
}

TEST(ServiceTier, PendingGrantsCountAgainstPermanent)
{
    VcState vbr;
    vbr.bindVbr(1, 1, 5, 10.0, 0);
    vbr.noteGrantIssued();
    EXPECT_EQ(serviceTier(vbr), ServiceTier::VbrExcess)
        << "an in-flight grant already consumes the permanent slot";
}

TEST(Priority, PolicyNames)
{
    EXPECT_EQ(to_string(PriorityPolicy::Biased), "biased");
    EXPECT_EQ(to_string(PriorityPolicy::Fixed), "fixed");
    EXPECT_EQ(to_string(PriorityPolicy::Age), "age");
}

} // namespace
} // namespace mmr
