/**
 * @file
 * Unit tests for credit-based flow control and link control words
 * (§3.1, §4.3).
 */

#include <gtest/gtest.h>

#include "router/flow_control.hh"

namespace mmr
{
namespace
{

TEST(Credits, StartAtInitialValue)
{
    CreditManager cm(2, 4, 3);
    for (PortId p = 0; p < 2; ++p)
        for (VcId v = 0; v < 4; ++v)
            EXPECT_EQ(cm.credits(p, v), 3u);
}

TEST(Credits, ConsumeReplenishCycle)
{
    CreditManager cm(1, 1, 2);
    EXPECT_TRUE(cm.hasCredit(0, 0));
    cm.consume(0, 0);
    cm.consume(0, 0);
    EXPECT_FALSE(cm.hasCredit(0, 0));
    cm.replenish(0, 0);
    EXPECT_TRUE(cm.hasCredit(0, 0));
    EXPECT_EQ(cm.credits(0, 0), 1u);
}

TEST(Credits, VcsAreIndependent)
{
    CreditManager cm(1, 2, 1);
    cm.consume(0, 0);
    EXPECT_FALSE(cm.hasCredit(0, 0));
    EXPECT_TRUE(cm.hasCredit(0, 1));
}

TEST(Credits, InfiniteModeNeverBlocks)
{
    CreditManager cm(1, 1, 1);
    cm.setInfinite(true);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(cm.hasCredit(0, 0));
        cm.consume(0, 0);
    }
    EXPECT_EQ(cm.credits(0, 0), 1u) << "infinite mode leaves counters";
}

TEST(Credits, ResetRestoresInitial)
{
    CreditManager cm(1, 1, 4);
    cm.consume(0, 0);
    cm.consume(0, 0);
    cm.reset(0, 0);
    EXPECT_EQ(cm.credits(0, 0), 4u);
}

TEST(Credits, LedgerCountsConsumeAndReplenish)
{
    CreditManager cm(1, 2, 3);
    cm.consume(0, 0);
    cm.consume(0, 0);
    cm.consume(0, 1);
    cm.replenish(0, 0);
    EXPECT_EQ(cm.consumedCount(), 3u);
    EXPECT_EQ(cm.replenishedCount(), 1u);
    cm.audit(); // outstanding (2) == consumed (3) - replenished (1)
}

TEST(Credits, AuditSurvivesResetReclaim)
{
    CreditManager cm(1, 1, 4);
    cm.consume(0, 0);
    cm.consume(0, 0);
    cm.reset(0, 0); // reclaims the 2 outstanding credits
    cm.audit();     // ledger must account for the reclaim
    cm.consume(0, 0);
    cm.audit();
}

TEST(Credits, AuditWithHonestCensusPasses)
{
    CreditManager cm(2, 2, 3);
    cm.consume(1, 0);
    cm.consume(1, 0);
    cm.audit([](PortId p, VcId v) -> unsigned {
        return (p == 1 && v == 0) ? 2u : 0u;
    });
}

TEST(CreditsDeath, AuditCatchesLyingCensus)
{
    CreditManager cm(1, 1, 3);
    cm.consume(0, 0);
    EXPECT_DEATH(cm.audit([](PortId, VcId) { return 3u; }),
                 "credit-ledger");
}

TEST(CreditsDeath, OverConsumePanics)
{
    CreditManager cm(1, 1, 1);
    cm.consume(0, 0);
    EXPECT_DEATH(cm.consume(0, 0), "credit");
}

TEST(CreditsDeath, OverReplenishPanics)
{
    CreditManager cm(1, 1, 1);
    EXPECT_DEATH(cm.replenish(0, 0), "overflow");
}

TEST(CreditsDeath, OutOfRangePanics)
{
    CreditManager cm(2, 2, 1);
    EXPECT_DEATH(cm.credits(2, 0), "out of range");
    EXPECT_DEATH(cm.credits(0, 2), "out of range");
}

TEST(ControlWord, EncodeDecodeRoundTrip)
{
    for (ControlOp op : {ControlOp::SetBandwidth, ControlOp::SetPriority,
                         ControlOp::Teardown, ControlOp::Probe,
                         ControlOp::Ack}) {
        ControlWord w;
        w.op = op;
        w.conn = 0x123456;
        w.arg = 42.5;
        const ControlWord back = ControlWord::decode(w.encode());
        EXPECT_TRUE(back == w) << "op " << static_cast<int>(op);
    }
}

TEST(ControlWord, NegativeArgRoundTrips)
{
    ControlWord w;
    w.op = ControlOp::SetPriority;
    w.conn = 7;
    w.arg = -3.25;
    EXPECT_TRUE(ControlWord::decode(w.encode()) == w);
}

TEST(ControlWord, FractionalPrecision)
{
    ControlWord w;
    w.op = ControlOp::SetBandwidth;
    w.conn = 1;
    w.arg = 1.54; // Mb/s — must survive 16.16 fixed point
    const ControlWord back = ControlWord::decode(w.encode());
    EXPECT_NEAR(back.arg, 1.54, 1.0 / 65536.0);
}

TEST(ControlWord, ArgClampsToFixedPointRange)
{
    ControlWord w;
    w.op = ControlOp::SetBandwidth;
    w.conn = 1;
    w.arg = 1e9; // out of 16.16 range
    const ControlWord back = ControlWord::decode(w.encode());
    EXPECT_NEAR(back.arg, 32767.0, 1.0);
}

TEST(ControlWord, DistinctEncodings)
{
    ControlWord a, b;
    a.op = b.op = ControlOp::Ack;
    a.conn = 1;
    b.conn = 2;
    EXPECT_NE(a.encode(), b.encode());
}

} // namespace
} // namespace mmr
