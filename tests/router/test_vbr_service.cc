/**
 * @file
 * Behavioral tests for the §4.3 VBR service discipline at router
 * level: excess bandwidth served "completely servicing the excess
 * bandwidth of one connection before moving to the next one" in
 * priority order, and dynamic bandwidth renegotiation taking effect
 * mid-stream.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "router/router.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

RouterConfig
cfg()
{
    RouterConfig c;
    c.numPorts = 2;
    c.vcsPerPort = 8;
    c.vcBufferFlits = 32;
    c.roundFactorK = 8; // round = 64 cycles
    c.candidates = 4;
    c.seed = 2;
    return c;
}

struct Delivery
{
    Flit flit;
    Cycle when;
};

class VbrServiceTest : public ::testing::Test
{
  protected:
    VbrServiceTest() : router(cfg())
    {
        router.setSink([this](PortId, VcId, const Flit &f, Cycle t) {
            deliveries.push_back(Delivery{f, t});
        });
        kernel.add(&router);
    }

    MmrRouter router;
    Kernel kernel;
    std::vector<Delivery> deliveries;
};

TEST_F(VbrServiceTest, ExcessServedOneConnectionAtATime)
{
    // Two VBR connections, both with zero permanent share of the
    // moment (tiny perm, large peak), same input port and output.
    // Fill both queues; the excess service must drain the
    // higher-priority connection's backlog before touching the other.
    const double link = cfg().linkRateBps;
    const ConnId low =
        router.openVbr(0, 1, link / 64.0, link / 2.0, /*prio=*/1);
    const ConnId high =
        router.openVbr(0, 1, link / 64.0, link / 2.0, /*prio=*/5);
    ASSERT_NE(low, kInvalidConn);
    ASSERT_NE(high, kInvalidConn);

    for (int i = 0; i < 10; ++i) {
        Flit fl, fh;
        fl.seq = fh.seq = static_cast<std::uint32_t>(i);
        ASSERT_TRUE(router.inject(low, fl));
        ASSERT_TRUE(router.inject(high, fh));
    }
    kernel.run(64); // one full round

    // Both have 1 permanent cycle; beyond that, priority 5's excess
    // must be fully serviced first: among the first 12 departures at
    // most the single permanent flit belongs to `low` plus possibly
    // one boundary flit.
    ASSERT_GE(deliveries.size(), 12u);
    unsigned low_in_prefix = 0;
    for (int i = 0; i < 11; ++i)
        low_in_prefix += (deliveries[i].flit.conn == low);
    EXPECT_LE(low_in_prefix, 2u)
        << "low priority excess must wait for high priority's backlog";
    // And the high-priority stream's 10 flits all left in the prefix.
    unsigned high_total = 0;
    for (int i = 0; i < 12; ++i)
        high_total += (deliveries[i].flit.conn == high);
    EXPECT_GE(high_total, 9u);
}

TEST_F(VbrServiceTest, PriorityChangeRedirectsExcessService)
{
    const double link = cfg().linkRateBps;
    const ConnId a =
        router.openVbr(0, 1, link / 64.0, link / 2.0, /*prio=*/5);
    const ConnId b =
        router.openVbr(0, 1, link / 64.0, link / 2.0, /*prio=*/1);
    // Swap priorities before traffic flows (a control-word action).
    ASSERT_TRUE(router.setConnectionPriority(a, 1));
    ASSERT_TRUE(router.setConnectionPriority(b, 5));

    for (int i = 0; i < 8; ++i) {
        Flit fa, fb;
        fa.seq = fb.seq = static_cast<std::uint32_t>(i);
        ASSERT_TRUE(router.inject(a, fa));
        ASSERT_TRUE(router.inject(b, fb));
    }
    kernel.run(64);
    ASSERT_GE(deliveries.size(), 10u);
    unsigned b_in_prefix = 0;
    for (int i = 0; i < 9; ++i)
        b_in_prefix += (deliveries[i].flit.conn == b);
    EXPECT_GE(b_in_prefix, 7u)
        << "after the swap, b holds the high priority";
}

TEST_F(VbrServiceTest, RenegotiationChangesServiceRateMidRun)
{
    // A CBR connection with a small reservation gets throttled to it;
    // renegotiating upward mid-run immediately widens the per-round
    // quota.
    const double link = cfg().linkRateBps;
    const unsigned round = cfg().cyclesPerRound(); // 64
    const ConnId id = router.openCbr(0, 1, 4.0 / round * link);
    ASSERT_NE(id, kInvalidConn);
    ASSERT_EQ(router.connection(id)->allocCycles, 4u);

    auto flood = [&] {
        for (int i = 0; i < 32; ++i) {
            Flit f;
            router.inject(id, f); // may hit the buffer limit: flooding
        }
    };

    flood();
    kernel.run(round);
    const std::size_t first_round = deliveries.size();
    EXPECT_LE(first_round, 5u) << "quota of 4/round binds (+pipeline)";

    ASSERT_TRUE(router.renegotiateBandwidth(id, 16.0 / round * link));
    flood();
    const std::size_t before = deliveries.size();
    kernel.run(round);
    const std::size_t second_round = deliveries.size() - before;
    EXPECT_GE(second_round, 14u);
    EXPECT_LE(second_round, 17u);
}

} // namespace
} // namespace mmr
