/**
 * @file
 * Unit tests for the per-input-link scheduler (§4.1, §4.3): candidate
 * eligibility, per-round quota enforcement, service tiering and
 * per-output candidate de-duplication.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "router/link_sched.hh"

namespace mmr
{
namespace
{

class LinkSchedTest : public ::testing::Test
{
  protected:
    LinkSchedTest()
        : mem(16, 8), credits(4, 16, 2),
          sched(0, &mem, 4, PriorityPolicy::Biased, 32, false), rng(9)
    {
        credits.setInfinite(true);
    }

    /** Bind a CBR VC with mapping and one queued flit. */
    void
    cbr(VcId v, PortId out, unsigned alloc, double ia, Cycle ready = 0)
    {
        mem.vc(v).bindCbr(100 + v, alloc, ia);
        mem.vc(v).setMapping(out, v);
        Flit f;
        f.readyTime = ready;
        ASSERT_TRUE(mem.deposit(v, f));
    }

    std::vector<Candidate>
    collect(Cycle now, unsigned max_c)
    {
        std::vector<Candidate> out;
        sched.collectCandidates(now, max_c, credits, rng, out);
        return out;
    }

    VcMemory mem;
    CreditManager credits;
    LinkScheduler sched;
    Rng rng;
};

TEST_F(LinkSchedTest, NoFlitsNoCandidates)
{
    EXPECT_TRUE(collect(0, 8).empty());
}

TEST_F(LinkSchedTest, SingleReadyVcIsOffered)
{
    cbr(3, 2, 4, 50.0);
    const auto c = collect(10, 8);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].in, 0u);
    EXPECT_EQ(c[0].vc, 3u);
    EXPECT_EQ(c[0].out, 2u);
    EXPECT_EQ(c[0].outVc, 3u);
    EXPECT_EQ(c[0].conn, 103u);
    EXPECT_EQ(c[0].tier, static_cast<int>(ServiceTier::Guaranteed));
}

TEST_F(LinkSchedTest, UnmappedOrUnboundVcsAreSkipped)
{
    // A bound but unmapped VC never becomes a candidate.
    mem.vc(1).bindCbr(50, 4, 10.0);
    Flit f;
    ASSERT_TRUE(mem.deposit(1, f));
    EXPECT_TRUE(collect(0, 8).empty());
}

TEST_F(LinkSchedTest, CreditExhaustionMasksChannel)
{
    credits.setInfinite(false);
    cbr(0, 1, 4, 50.0);
    // Drain the credits of the mapped output VC (1, 0).
    credits.consume(1, 0);
    credits.consume(1, 0);
    EXPECT_TRUE(collect(0, 8).empty());
    credits.replenish(1, 0);
    EXPECT_EQ(collect(1, 8).size(), 1u);
}

TEST_F(LinkSchedTest, PerOutputDeduplicationKeepsBest)
{
    // Two VCs bound for output 2; the older (higher-ratio) flit must
    // be the single candidate representing that output.
    cbr(0, 2, 4, 50.0, 20);
    cbr(1, 2, 4, 50.0, 0); // ready earlier -> higher biased priority
    const auto c = collect(30, 8);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0].vc, 1u);
}

TEST_F(LinkSchedTest, DistinctOutputsAllOffered)
{
    cbr(0, 0, 4, 50.0);
    cbr(1, 1, 4, 50.0);
    cbr(2, 2, 4, 50.0);
    cbr(3, 3, 4, 50.0);
    const auto c = collect(5, 8);
    EXPECT_EQ(c.size(), 4u);
}

TEST_F(LinkSchedTest, MaxCandidatesHonored)
{
    cbr(0, 0, 4, 50.0);
    cbr(1, 1, 4, 50.0);
    cbr(2, 2, 4, 50.0);
    cbr(3, 3, 4, 50.0);
    EXPECT_EQ(collect(5, 2).size(), 2u);
    EXPECT_EQ(collect(5, 1).size(), 1u);
}

TEST_F(LinkSchedTest, CandidatesSortedByPriorityWithinTier)
{
    cbr(0, 0, 4, 100.0, 0); // ratio at t=50: 0.5
    cbr(1, 1, 4, 25.0, 0);  // ratio at t=50: 2.0
    const auto c = collect(50, 8);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].vc, 1u) << "higher biased ratio first";
    EXPECT_GT(c[0].prio, c[1].prio);
}

TEST_F(LinkSchedTest, CbrQuotaEnforcedWithinRound)
{
    // Allocation of 2 cycles/round: after two grants the VC must
    // disappear from the candidate set until the round rolls.
    mem.vc(0).bindCbr(7, 2, 10.0);
    mem.vc(0).setMapping(1, 0);
    for (int i = 0; i < 4; ++i) {
        Flit f;
        ASSERT_TRUE(mem.deposit(0, f));
    }
    EXPECT_EQ(collect(0, 8).size(), 1u);
    mem.vc(0).noteServiced();
    mem.markSchedDirty(0); // direct mutation: flag for the mask cache
    EXPECT_EQ(collect(1, 8).size(), 1u);
    mem.vc(0).noteServiced();
    mem.markSchedDirty(0);
    EXPECT_TRUE(collect(2, 8).empty()) << "allocation exhausted";
    // Round length is 32: at cycle 32 the quota resets.
    EXPECT_EQ(collect(32, 8).size(), 1u);
    EXPECT_EQ(sched.roundCount(), 1u);
}

TEST_F(LinkSchedTest, PendingGrantsCountAgainstQuotaAndQueue)
{
    cbr(0, 1, 1, 10.0);
    mem.vc(0).noteGrantIssued();
    mem.markSchedDirty(0); // direct mutation: flag for the mask cache
    EXPECT_TRUE(collect(0, 8).empty())
        << "the only flit is already granted";
}

TEST_F(LinkSchedTest, ControlOutranksStreams)
{
    cbr(0, 1, 4, 10.0, 0);
    mem.vc(5).bindControl(900);
    mem.vc(5).setMapping(2, 5);
    Flit f;
    ASSERT_TRUE(mem.deposit(5, f));
    const auto c = collect(100, 8);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].tier, static_cast<int>(ServiceTier::Control));
    EXPECT_EQ(c[0].vc, 5u);
}

TEST_F(LinkSchedTest, BestEffortRanksLast)
{
    mem.vc(4).bindBestEffort(800);
    mem.vc(4).setMapping(3, 4);
    Flit f;
    f.readyTime = 0;
    ASSERT_TRUE(mem.deposit(4, f));
    cbr(0, 1, 4, 10.0, 90);
    const auto c = collect(100, 8);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[1].tier, static_cast<int>(ServiceTier::BestEffort));
    EXPECT_EQ(c[1].vc, 4u)
        << "a long-waiting BE flit still ranks below guaranteed";
}

TEST_F(LinkSchedTest, VbrExcessServicedInPriorityOrderByConnection)
{
    // Two VBR channels past their permanent bandwidth: the one with
    // the higher user priority must come first, and the ordering key
    // must be stable (connection-based), not aging-based.
    auto add_vbr = [&](VcId v, PortId out, int prio, ConnId conn) {
        mem.vc(v).bindVbr(conn, 0, 8, 10.0, prio);
        mem.vc(v).setMapping(out, v);
        Flit f;
        f.readyTime = 0;
        ASSERT_TRUE(mem.deposit(v, f));
    };
    add_vbr(0, 0, 1, 500);
    add_vbr(1, 1, 3, 501);
    const auto c = collect(50, 8);
    ASSERT_EQ(c.size(), 2u);
    EXPECT_EQ(c[0].conn, 501u) << "priority 3 beats priority 1";
    EXPECT_EQ(c[0].tier, static_cast<int>(ServiceTier::VbrExcess));
}

TEST_F(LinkSchedTest, EligibleMaskMatchesCandidates)
{
    cbr(0, 0, 4, 50.0);
    cbr(2, 1, 4, 50.0);
    mem.vc(5).bindCbr(77, 0, 10.0); // zero allocation: never eligible
    mem.vc(5).setMapping(2, 5);
    Flit f;
    ASSERT_TRUE(mem.deposit(5, f));

    const BitVector mask = sched.eligibleMask(0, credits);
    EXPECT_EQ(mask.setBits(), (std::vector<std::size_t>{0, 2}));
}

TEST_F(LinkSchedTest, RoundRolloverCatchesUpAfterGaps)
{
    cbr(0, 0, 1, 10.0);
    mem.vc(0).noteServiced();
    EXPECT_TRUE(collect(1, 8).empty());
    // Jump several rounds ahead: rollRoundIfNeeded must catch up.
    EXPECT_EQ(collect(100, 8).size(), 1u);
    EXPECT_EQ(sched.roundCount(), 3u); // rounds at 32, 64, 96
}

} // namespace
} // namespace mmr
