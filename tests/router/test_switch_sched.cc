/**
 * @file
 * Unit and property tests for the switch scheduling algorithms (§4.4):
 * matching legality, priority preference, augmentation to maximum
 * matchings, busy-port masks and the perfect-switch semantics.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.hh"
#include "router/switch_sched.hh"

namespace mmr
{
namespace
{

Candidate
cand(PortId in, PortId out, double prio,
     int tier = static_cast<int>(ServiceTier::Guaranteed))
{
    Candidate c;
    c.in = in;
    c.vc = in; // arbitrary distinct vc
    c.out = out;
    c.outVc = 0;
    c.conn = in * 100 + out;
    c.tier = tier;
    c.prio = prio;
    c.tie = 0.5;
    return c;
}

std::vector<std::vector<Candidate>>
perInput(unsigned ports, std::initializer_list<Candidate> cs)
{
    std::vector<std::vector<Candidate>> v(ports);
    for (const Candidate &c : cs)
        v[c.in].push_back(c);
    return v;
}

bool
contains(const Matching &m, PortId in, PortId out)
{
    return std::any_of(m.begin(), m.end(), [&](const Candidate &c) {
        return c.in == in && c.out == out;
    });
}

TEST(GreedyPriority, SimpleConflictGoesToHigherPriority)
{
    GreedyPriorityScheduler s(4);
    PortMasks masks(4);
    Rng rng(1);
    // Both inputs want output 0; input 1 has the higher priority and
    // input 0 has no alternative.
    auto in = perInput(4, {cand(0, 0, 1.0), cand(1, 0, 2.0)});
    const Matching m = s.schedule(in, masks, rng);
    ASSERT_TRUE(SwitchScheduler::validate(m, 4, false));
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0].in, 1u);
}

TEST(GreedyPriority, AugmentationFindsMaximumMatching)
{
    // Input 0 can use outputs {0, 1}; input 1 can only use {0}.
    // Input 0 has the higher priority on output 0 — a purely greedy
    // arbiter would give it output 0 and leave input 1 stranded.  The
    // augmenting arbiter must re-route input 0 to output 1 so both
    // transmit.
    GreedyPriorityScheduler s(2);
    PortMasks masks(2);
    Rng rng(2);
    auto in = perInput(
        2, {cand(0, 0, 9.0), cand(0, 1, 1.0), cand(1, 0, 0.5)});
    const Matching m = s.schedule(in, masks, rng);
    ASSERT_TRUE(SwitchScheduler::validate(m, 2, false));
    EXPECT_EQ(m.size(), 2u);
    EXPECT_TRUE(contains(m, 0, 1));
    EXPECT_TRUE(contains(m, 1, 0));
}

TEST(GreedyPriority, TierBeatsPriority)
{
    GreedyPriorityScheduler s(2);
    PortMasks masks(2);
    Rng rng(3);
    auto in = perInput(
        2, {cand(0, 0, 100.0, static_cast<int>(ServiceTier::BestEffort)),
            cand(1, 0, 0.1, static_cast<int>(ServiceTier::Control))});
    const Matching m = s.schedule(in, masks, rng);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0].in, 1u) << "control outranks any best-effort ratio";
}

TEST(GreedyPriority, BusyMasksExcludePorts)
{
    GreedyPriorityScheduler s(2);
    PortMasks masks(2);
    masks.busyOut.set(0);
    Rng rng(4);
    auto in = perInput(2, {cand(0, 0, 5.0), cand(1, 1, 1.0)});
    const Matching m = s.schedule(in, masks, rng);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0].out, 1u);

    masks.busyOut.clear(0);
    masks.busyIn.set(1);
    const Matching m2 = s.schedule(in, masks, rng);
    ASSERT_EQ(m2.size(), 1u);
    EXPECT_EQ(m2[0].in, 0u);
}

TEST(GreedyPriority, EmptyInput)
{
    GreedyPriorityScheduler s(4);
    PortMasks masks(4);
    Rng rng(5);
    std::vector<std::vector<Candidate>> in(4);
    EXPECT_TRUE(s.schedule(in, masks, rng).empty());
}

TEST(Perfect, SharesOutputs)
{
    PerfectSwitchScheduler s(4);
    PortMasks masks(4);
    Rng rng(6);
    auto in = perInput(4, {cand(0, 2, 1.0), cand(1, 2, 2.0),
                           cand(2, 2, 3.0), cand(3, 2, 4.0)});
    const Matching m = s.schedule(in, masks, rng);
    EXPECT_EQ(m.size(), 4u) << "no output conflicts in a perfect switch";
    EXPECT_TRUE(SwitchScheduler::validate(m, 4, true));
    EXPECT_FALSE(SwitchScheduler::validate(m, 4, false));
}

TEST(Perfect, PicksBestCandidatePerInput)
{
    PerfectSwitchScheduler s(2);
    PortMasks masks(2);
    Rng rng(7);
    auto in = perInput(2, {cand(0, 0, 1.0), cand(0, 1, 5.0)});
    const Matching m = s.schedule(in, masks, rng);
    ASSERT_EQ(m.size(), 1u);
    EXPECT_EQ(m[0].out, 1u);
}

TEST(Validate, RejectsDuplicates)
{
    Matching m{cand(0, 0, 1.0), cand(0, 1, 1.0)};
    EXPECT_FALSE(SwitchScheduler::validate(m, 4, false))
        << "two grants for one input";
    Matching m2{cand(0, 0, 1.0), cand(1, 0, 1.0)};
    EXPECT_FALSE(SwitchScheduler::validate(m2, 4, false));
    EXPECT_TRUE(SwitchScheduler::validate(m2, 4, true));
    Matching m3{cand(0, 9, 1.0)};
    EXPECT_FALSE(SwitchScheduler::validate(m3, 4, true))
        << "port beyond the switch radix";
}

TEST(Factory, CreatesRequestedKind)
{
    RouterConfig cfg;
    cfg.numPorts = 4;
    cfg.vcsPerPort = 8;
    cfg.candidates = 2;
    cfg.scheduler = SchedulerKind::Autonet;
    EXPECT_EQ(SwitchScheduler::create(cfg)->name(), "autonet");
    cfg.scheduler = SchedulerKind::Perfect;
    EXPECT_EQ(SwitchScheduler::create(cfg)->name(), "perfect");
    cfg.scheduler = SchedulerKind::BiasedPriority;
    EXPECT_EQ(SwitchScheduler::create(cfg)->name(), "greedy-priority");
    cfg.scheduler = SchedulerKind::Islip;
    EXPECT_EQ(SwitchScheduler::create(cfg)->name(), "islip");
}

/**
 * Property over random candidate sets: every algorithm returns a legal
 * matching that is maximal (no candidate with both endpoints free is
 * left out), and the augmenting scheduler is at least as large as any
 * other algorithm's matching.
 */
class SwitchSchedProperty : public ::testing::TestWithParam<unsigned>
{
  protected:
    static std::vector<std::vector<Candidate>>
    randomCandidates(Rng &rng, unsigned ports, unsigned max_per_input)
    {
        std::vector<std::vector<Candidate>> per(ports);
        for (PortId in = 0; in < ports; ++in) {
            const auto n = rng.below(max_per_input + 1);
            std::vector<PortId> outs;
            for (PortId o = 0; o < ports; ++o)
                outs.push_back(o);
            rng.shuffle(outs);
            for (std::size_t k = 0; k < n && k < outs.size(); ++k) {
                Candidate c = cand(in, outs[k], rng.uniform());
                c.tie = rng.uniform();
                per[in].push_back(c);
            }
        }
        return per;
    }

    static bool
    isMaximal(const Matching &m,
              const std::vector<std::vector<Candidate>> &per,
              unsigned ports)
    {
        std::vector<bool> in_used(ports, false), out_used(ports, false);
        for (const Candidate &c : m) {
            in_used[c.in] = true;
            out_used[c.out] = true;
        }
        for (const auto &cands : per)
            for (const Candidate &c : cands)
                if (!in_used[c.in] && !out_used[c.out])
                    return false;
        return true;
    }
};

TEST_P(SwitchSchedProperty, AllAlgorithmsProduceLegalMatchings)
{
    const unsigned seed = GetParam();
    Rng rng(seed);
    const unsigned ports = 8;
    GreedyPriorityScheduler greedy(ports);
    OutputDrivenScheduler outdrv(ports, 3);
    AutonetScheduler autonet(ports, 3);
    IslipScheduler islip(ports, 3);
    PerfectSwitchScheduler perfect(ports);
    PortMasks masks(ports);

    for (int round = 0; round < 200; ++round) {
        const auto per = randomCandidates(rng, ports, 8);
        const Matching mg = greedy.schedule(per, masks, rng);
        const Matching mo = outdrv.schedule(per, masks, rng);
        const Matching ma = autonet.schedule(per, masks, rng);
        const Matching mi = islip.schedule(per, masks, rng);
        const Matching mp = perfect.schedule(per, masks, rng);

        ASSERT_TRUE(SwitchScheduler::validate(mg, ports, false));
        ASSERT_TRUE(SwitchScheduler::validate(mo, ports, false));
        ASSERT_TRUE(SwitchScheduler::validate(ma, ports, false));
        ASSERT_TRUE(SwitchScheduler::validate(mi, ports, false));
        ASSERT_TRUE(SwitchScheduler::validate(mp, ports, true));

        // The augmenting scheduler yields a maximum matching, so it
        // can never be beaten on cardinality.
        ASSERT_GE(mg.size(), mo.size());
        ASSERT_GE(mg.size(), ma.size());
        ASSERT_GE(mg.size(), mi.size());
        ASSERT_TRUE(isMaximal(mg, per, ports));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchSchedProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace mmr
