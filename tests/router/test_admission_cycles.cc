/**
 * @file
 * Admission-register drift tests (§4.2): repeated release/re-admit
 * and renegotiation cycles must return the per-link registers to
 * exactly their prior values — any off-by-one would slowly leak or
 * fabricate reservable bandwidth.
 */

#include <gtest/gtest.h>

#include "router/admission.hh"
#include "router/router.hh"
#include "sim/invariant.hh"

namespace mmr
{
namespace
{

TEST(AdmissionCycles, CbrAdmitReleaseRoundTripsExactly)
{
    AdmissionController adm(4, 1000, 2.0, 0.1);
    const unsigned base = adm.allocatedCycles(1);
    const unsigned avail = adm.availableCycles(1);
    for (int round = 0; round < 100; ++round) {
        ASSERT_TRUE(adm.tryAdmitCbr(1, 37));
        ASSERT_TRUE(adm.tryAdmitCbr(1, 5));
        EXPECT_EQ(adm.allocatedCycles(1), base + 42);
        adm.releaseCbr(1, 5);
        adm.releaseCbr(1, 37);
        EXPECT_EQ(adm.allocatedCycles(1), base);
        EXPECT_EQ(adm.availableCycles(1), avail);
        EXPECT_EQ(adm.peakCycles(1), 0u);
    }
}

TEST(AdmissionCycles, VbrAdmitReleaseRoundTripsExactly)
{
    AdmissionController adm(4, 1000, 2.0, 0.1);
    for (int round = 0; round < 100; ++round) {
        ASSERT_TRUE(adm.tryAdmitVbr(2, 10, 60));
        ASSERT_TRUE(adm.tryAdmitVbr(2, 7, 30));
        EXPECT_EQ(adm.allocatedCycles(2), 17u);
        EXPECT_EQ(adm.peakCycles(2), 90u);
        adm.releaseVbr(2, 10, 60);
        adm.releaseVbr(2, 7, 30);
        EXPECT_EQ(adm.allocatedCycles(2), 0u);
        EXPECT_EQ(adm.peakCycles(2), 0u);
    }
}

TEST(AdmissionCycles, RenegotiateUpAndDownIsExact)
{
    AdmissionController adm(2, 1000, 2.0, 0.0);
    ASSERT_TRUE(adm.tryAdmitCbr(0, 100));
    ASSERT_TRUE(adm.renegotiateCbr(0, 100, 250));
    EXPECT_EQ(adm.allocatedCycles(0), 250u);
    ASSERT_TRUE(adm.renegotiateCbr(0, 250, 40));
    EXPECT_EQ(adm.allocatedCycles(0), 40u);
    ASSERT_TRUE(adm.renegotiateCbr(0, 40, 100));
    EXPECT_EQ(adm.allocatedCycles(0), 100u);
    adm.releaseCbr(0, 100);
    EXPECT_EQ(adm.allocatedCycles(0), 0u);
}

TEST(AdmissionCycles, FailedAdmissionLeavesRegistersUntouched)
{
    AdmissionController adm(2, 100, 1.0, 0.0);
    ASSERT_TRUE(adm.tryAdmitCbr(0, 90));
    EXPECT_FALSE(adm.tryAdmitCbr(0, 20));
    EXPECT_EQ(adm.allocatedCycles(0), 90u);
    EXPECT_FALSE(adm.tryAdmitVbr(0, 20, 20));
    EXPECT_EQ(adm.allocatedCycles(0), 90u);
    EXPECT_EQ(adm.peakCycles(0), 0u);
}

/**
 * Whole-router open/close churn: the admission registers, VC pools and
 * credit ledger all have to come back to their pristine state, and the
 * full invariant set must hold after every step.
 */
TEST(AdmissionCycles, RouterOpenCloseChurnLeavesNoDrift)
{
    RouterConfig cfg;
    cfg.numPorts = 4;
    cfg.vcsPerPort = 16;
    MmrRouter router(cfg);
    InvariantChecker chk;
    router.registerInvariants(chk, 1);

    std::vector<unsigned> baseAlloc, basePeak;
    for (PortId o = 0; o < cfg.numPorts; ++o) {
        baseAlloc.push_back(router.admission().allocatedCycles(o));
        basePeak.push_back(router.admission().peakCycles(o));
    }

    for (int round = 0; round < 20; ++round) {
        const ConnId cbr = router.openCbr(0, 1, 20.0 * kMbps);
        const ConnId vbr =
            router.openVbr(2, 1, 10.0 * kMbps, 40.0 * kMbps, 1);
        const ConnId be = router.openBestEffort(3, 2);
        ASSERT_NE(cbr, kInvalidConn);
        ASSERT_NE(vbr, kInvalidConn);
        ASSERT_NE(be, kInvalidConn);
        chk.checkAll(static_cast<Cycle>(round));

        ASSERT_TRUE(router.close(vbr));
        ASSERT_TRUE(router.close(cbr));
        ASSERT_TRUE(router.close(be));
        chk.checkAll(static_cast<Cycle>(round));

        for (PortId o = 0; o < cfg.numPorts; ++o) {
            EXPECT_EQ(router.admission().allocatedCycles(o),
                      baseAlloc[o])
                << "allocated register drifted on port " << o
                << " after round " << round;
            EXPECT_EQ(router.admission().peakCycles(o), basePeak[o])
                << "peak register drifted on port " << o;
        }
        EXPECT_EQ(router.connectionCount(), 0u);
    }
}

/** Renegotiation through the router must keep the ledger invariant. */
TEST(AdmissionCycles, RouterRenegotiateKeepsLedgerConsistent)
{
    RouterConfig cfg;
    cfg.numPorts = 4;
    cfg.vcsPerPort = 16;
    MmrRouter router(cfg);
    InvariantChecker chk;
    router.registerInvariants(chk, 1);

    const ConnId id = router.openCbr(0, 1, 10.0 * kMbps);
    ASSERT_NE(id, kInvalidConn);
    const unsigned before = router.admission().allocatedCycles(1);

    ASSERT_TRUE(router.renegotiateBandwidth(id, 40.0 * kMbps));
    chk.run("admission-ledger", 0);
    ASSERT_TRUE(router.renegotiateBandwidth(id, 10.0 * kMbps));
    chk.run("admission-ledger", 0);
    EXPECT_EQ(router.admission().allocatedCycles(1), before);

    ASSERT_TRUE(router.close(id));
    chk.checkAll(0);
}

} // namespace
} // namespace mmr
