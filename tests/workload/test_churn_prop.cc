/**
 * @file
 * Property-based churn sweep: seed-randomized session populations
 * (Poisson arrivals, flash crowd, exponential holding times, the
 * paper's rate-class mix) run both clean and under a stochastic fault
 * plan, with the full invariant battery force-enabled.  Every run
 * must satisfy the SessionLedger conservation laws, leave zero leaked
 * sessions / pending setups / open churn connections after the drain,
 * and reproduce a bit-identical networkResultDigest from its seed.
 *
 * The seed count scales with MMR_FAULT_PROP_SEEDS (default 10); CI's
 * sanitizer job raises it for a deeper sweep under ASan/TSan.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "harness/network_experiment.hh"
#include "sim/invariant.hh"

namespace mmr
{
namespace
{

unsigned
seedCount()
{
    if (const char *env = std::getenv("MMR_FAULT_PROP_SEEDS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 10;
}

/** One churn configuration per seed; topologies and load rotate. */
NetworkExperimentConfig
churnConfig(unsigned s, bool faulted)
{
    static const char *kTopos[] = {"mesh:3x3", "ring:8",
                                   "irregular:10:4:4"};
    NetworkExperimentConfig c;
    c.topologySpec = kTopos[s % 3];
    c.seed = 1009 + 104729ULL * (s + 1);
    c.net.router.vcsPerPort = 32;
    c.net.router.candidates = 8;
    // Sessions are the only traffic: the static host streams are off.
    c.cbrStreamsPerHost = 0;
    c.beFlowsPerHost = 0;
    c.warmupCycles = 800;
    c.measureCycles = 5000;
    c.drainCycles = 2500;
    c.invariantPeriod = 8;

    c.churn.enabled = true;
    c.churn.maxLiveSessions = 64 + 32 * (s % 4);
    c.churn.workload.arrivalsPer1k = 60.0 + 40.0 * (s % 5);
    c.churn.workload.holdingMeanCycles = 600 + 150 * (s % 3);
    if (s % 2 == 0) {
        c.churn.workload.flash.at = 1500;
        c.churn.workload.flash.rampCycles = 800;
        c.churn.workload.flash.holdCycles = 1000;
        c.churn.workload.flash.peakFactor = 3.0;
    }
    if (s % 3 == 0) {
        c.churn.workload.diurnal.period = 4000;
        c.churn.workload.diurnal.amplitude = 0.4;
    }

    if (faulted) {
        c.faults.linkFailPer10k = 1.0;
        c.faults.meanRepairCycles = 2000;
        c.faults.probeDropRate = 0.02;
    }
    return c;
}

/** Force the invariant battery on for the duration of a test. */
class InvariantGuard
{
  public:
    InvariantGuard() { invariant::setEnabled(true); }
    ~InvariantGuard() { invariant::clearOverride(); }
};

/** The SessionLedger conservation laws, from the reported fields. */
void
expectLedgerConsistent(const NetworkExperimentResult &r)
{
    // Every arrival was decided by the end of the drain.
    EXPECT_EQ(r.sessionsArrived,
              r.sessionsAdmitted + r.sessionsRejected);
    // Every admitted session ran to completion or was abandoned.
    EXPECT_EQ(r.sessionsAdmitted,
              r.sessionsCompleted + r.sessionsAbandoned);
    EXPECT_LE(r.sessionsRejectedBusy, r.sessionsRejected);
    EXPECT_LE(r.sessionPeakLive, r.sessionsAdmitted);
    if (r.sessionsAdmitted + r.sessionsRejected > 0) {
        const double acc =
            static_cast<double>(r.sessionsAdmitted) /
            static_cast<double>(r.sessionsAdmitted +
                                r.sessionsRejected);
        EXPECT_DOUBLE_EQ(r.sessionAcceptance, acc);
    }
    // The <= 64 B per-live-session contract.
    EXPECT_LE(r.sessionLiveBytes, 64u);
}

/** Drain health: nothing leaked — no pool slot, no in-flight probe,
 * no still-open churn connection, no un-retired recorder. */
void
expectLeakFree(const NetworkExperimentResult &r)
{
    EXPECT_EQ(r.sessionsLeakedAtEnd, 0u);
    EXPECT_EQ(r.pendingSetupsAtEnd, 0u);
    EXPECT_EQ(r.openConnsAtEnd, 0u);
    // Recorders are first-touch: only sessions whose flits were
    // measured have one to retire, so this bounds above, it does not
    // reach equality (short sessions can live entirely in warm-up or
    // drain).
    EXPECT_LE(r.retiredConnRecorders, r.sessionsAdmitted);
}

TEST(ChurnProperties, CleanRunsHoldLedgerAndLeakNothing)
{
    InvariantGuard guard;
    const unsigned seeds = seedCount();
    for (unsigned s = 0; s < seeds; ++s) {
        SCOPED_TRACE("seed index " + std::to_string(s));
        const auto r = runNetworkExperiment(churnConfig(s, false));
        EXPECT_GT(r.invariantChecks, 0u);
        EXPECT_GT(r.sessionsArrived, 0u);
        EXPECT_GT(r.sessionsAdmitted, 0u);
        expectLedgerConsistent(r);
        expectLeakFree(r);
        // No faults: nothing to abandon a session.
        EXPECT_EQ(r.sessionsAbandoned, 0u);
        // Admitted sessions injected traffic that arrived.
        EXPECT_GT(r.sessionFlitsInjected, 0u);
        EXPECT_GT(r.flitsDelivered, 0u);
        // Setup latency was measured for every admitted session, and
        // at least one measured session retired its flit recorder.
        EXPECT_EQ(r.sessionSetupLatency.count, r.sessionsAdmitted);
        EXPECT_GE(r.sessionSetupLatency.p50, 1.0);
        EXPECT_GT(r.retiredConnRecorders, 0u);
    }
}

TEST(ChurnProperties, FaultedRunsHoldLedgerAndLeakNothing)
{
    InvariantGuard guard;
    const unsigned seeds = seedCount();
    for (unsigned s = 0; s < seeds; ++s) {
        SCOPED_TRACE("seed index " + std::to_string(s));
        const auto r = runNetworkExperiment(churnConfig(s, true));
        EXPECT_GT(r.invariantChecks, 0u);
        EXPECT_GT(r.sessionsArrived, 0u);
        expectLedgerConsistent(r);
        // Faults may abandon sessions mid-hold, but teardown still
        // releases every slot, probe and PCS entry.
        expectLeakFree(r);
    }
}

TEST(ChurnProperties, DigestReproducibleFromSeed)
{
    InvariantGuard guard;
    const unsigned seeds = std::min(seedCount(), 4u);
    for (unsigned s = 0; s < seeds; ++s) {
        for (const bool faulted : {false, true}) {
            SCOPED_TRACE("seed index " + std::to_string(s) +
                         (faulted ? " faulted" : " clean"));
            const auto cfg = churnConfig(s, faulted);
            const auto a = runNetworkExperiment(cfg);
            const auto b = runNetworkExperiment(cfg);
            EXPECT_EQ(networkResultDigest(a), networkResultDigest(b))
                << "same seed must reproduce the identical run";
        }
    }
}

TEST(ChurnProperties, PoolCapRefusesNotCrashes)
{
    InvariantGuard guard;
    auto c = churnConfig(1, false);
    c.churn.maxLiveSessions = 8; // deliberately starved pool
    c.churn.workload.arrivalsPer1k = 400.0;
    const auto r = runNetworkExperiment(c);
    EXPECT_GT(r.sessionsRejectedBusy, 0u);
    expectLedgerConsistent(r);
    expectLeakFree(r);
    // The pool never grew past its cap.
    EXPECT_LE(r.sessionPeakLive, 8u);
    EXPECT_LE(r.sessionPoolBytes, 8u * 64u);
}

TEST(ChurnProperties, ChurnCoexistsWithStaticStreams)
{
    InvariantGuard guard;
    auto c = churnConfig(2, false);
    c.cbrStreamsPerHost = 1;
    c.cbrRateBps = 5 * kMbps;
    c.beFlowsPerHost = 1;
    c.beRateBps = 1 * kMbps;
    const auto r = runNetworkExperiment(c);
    expectLedgerConsistent(r);
    EXPECT_EQ(r.sessionsLeakedAtEnd, 0u);
    EXPECT_EQ(r.pendingSetupsAtEnd, 0u);
    // Static streams stay alive next to the churning population —
    // they are the only connections still open at the end (every
    // churn session tore its own down).
    EXPECT_EQ(r.streamsAlive, r.streamsAccepted);
    EXPECT_GT(r.streamsAccepted, 0u);
    EXPECT_EQ(r.openConnsAtEnd, r.streamsAlive);
    EXPECT_GT(r.sessionsAdmitted, 0u);
}

} // namespace
} // namespace mmr
