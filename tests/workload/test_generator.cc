/**
 * @file
 * Distribution correctness of the session workload generator: the
 * empirical arrival rate and holding-time mean must match the
 * configured values, the flash-crowd ramp must have its trapezoidal
 * shape in the compiled schedule, and the rate-class mix must come
 * out in its configured proportions.  Plus the spec parsers (rates
 * with k/m/g suffixes, mix entries, flash/diurnal key=value specs).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>

#include "workload/arrival.hh"
#include "workload/generator.hh"

namespace mmr
{
namespace
{

TEST(ArrivalSchedule, EmpiricalRateMatchesBase)
{
    const double base = 0.05; // sessions per cycle
    const Cycle horizon = 200000;
    ArrivalSchedule sched(base, FlashCrowd{}, DiurnalCurve{}, horizon,
                          1234);
    std::uint64_t n = 0;
    for (Cycle t = 0; t < horizon; ++t)
        n += sched.take(t);
    const double expected = base * static_cast<double>(horizon);
    EXPECT_NEAR(static_cast<double>(n), expected, 0.10 * expected)
        << "homogeneous Poisson empirical rate off by > 10%";
    EXPECT_EQ(n, sched.drawn());
}

TEST(ArrivalSchedule, CompiledFlashCrowdShape)
{
    const double base = 0.02;
    FlashCrowd flash;
    flash.at = 10000;
    flash.rampCycles = 4000;
    flash.holdCycles = 4000;
    flash.peakFactor = 5.0;
    ArrivalSchedule sched(base, flash, DiurnalCurve{}, 40000, 7);

    // Left-edge sampling: a mark at t carries exactly lambda(t).
    EXPECT_DOUBLE_EQ(sched.rateAt(0), base);
    EXPECT_DOUBLE_EQ(sched.rateAt(9999), base);
    // Ramp midpoint (12000 is a compiled mark: 4000/16-step grid).
    EXPECT_NEAR(sched.rateAt(12000), base * 3.0, 1e-12);
    // Peak dwell.
    EXPECT_NEAR(sched.rateAt(15000), base * 5.0, 1e-12);
    // Decay midpoint and back to base.
    EXPECT_NEAR(sched.rateAt(20000), base * 3.0, base * 0.6)
        << "decay ramp not near halfway at its midpoint";
    EXPECT_DOUBLE_EQ(sched.rateAt(30000), base);

    // The ramp must rise monotonically across the compiled segments.
    double prev = 0.0;
    for (Cycle t = flash.at; t < flash.at + flash.rampCycles;
         t += 250) {
        EXPECT_GE(sched.rateAt(t), prev - 1e-12);
        prev = sched.rateAt(t);
    }

    // Empirically the peak window sees ~peakFactor x the base window.
    std::uint64_t base_n = 0;
    std::uint64_t peak_n = 0;
    ArrivalSchedule s2(base, flash, DiurnalCurve{}, 40000, 99);
    for (Cycle t = 0; t < 40000; ++t) {
        const unsigned k = s2.take(t);
        if (t < 8000)
            base_n += k;
        else if (t >= 14000 && t < 18000)
            peak_n += k;
    }
    // 8000 base cycles vs 4000 peak cycles: normalize per cycle.
    const double ratio = (static_cast<double>(peak_n) / 4000.0) /
                         (static_cast<double>(base_n) / 8000.0);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 7.0);
}

TEST(ArrivalSchedule, CompiledDiurnalShape)
{
    const double base = 0.04;
    DiurnalCurve d;
    d.period = 8000;
    d.amplitude = 0.5;
    ArrivalSchedule sched(base, FlashCrowd{}, d, 16000, 3);
    // Marks fall on the period/16 grid, so the sine extrema (T/4 and
    // 3T/4) are sampled exactly.
    EXPECT_DOUBLE_EQ(sched.rateAt(0), base);
    EXPECT_NEAR(sched.rateAt(2000), base * 1.5, 1e-12);
    EXPECT_NEAR(sched.rateAt(6000), base * 0.5, 1e-12);
    // Second period repeats.
    EXPECT_NEAR(sched.rateAt(10000), base * 1.5, 1e-12);
}

TEST(ArrivalSchedule, ShutOffStopsArrivals)
{
    ArrivalSchedule sched(0.5, FlashCrowd{}, DiurnalCurve{}, 1000, 11);
    std::uint64_t before = 0;
    for (Cycle t = 0; t < 100; ++t)
        before += sched.take(t);
    ASSERT_GT(before, 0u);
    sched.shutOff();
    std::uint64_t after = 0;
    for (Cycle t = 100; t < 200; ++t)
        after += sched.take(t);
    EXPECT_EQ(after, 0u);
}

TEST(ArrivalSchedule, DeterministicFromSeed)
{
    FlashCrowd flash;
    flash.at = 500;
    flash.rampCycles = 300;
    flash.peakFactor = 3.0;
    ArrivalSchedule a(0.1, flash, DiurnalCurve{}, 5000, 42);
    ArrivalSchedule b(0.1, flash, DiurnalCurve{}, 5000, 42);
    for (Cycle t = 0; t < 5000; ++t)
        ASSERT_EQ(a.take(t), b.take(t)) << "cycle " << t;
}

TEST(SessionGenerator, HoldingTimeMeanMatchesSpec)
{
    SessionWorkloadSpec spec;
    spec.holdingMeanCycles = 2000;
    SessionGenerator gen(spec, 9, 10000, 5);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(gen.draw().holdCycles);
    EXPECT_NEAR(sum / n, 2000.0, 0.05 * 2000.0)
        << "empirical holding-time mean off by > 5%";
}

TEST(SessionGenerator, MixProportionsMatchWeights)
{
    SessionWorkloadSpec spec;
    spec.mix = parseSessionMix("64k=1,1m=3,vbr:5m=1");
    SessionGenerator gen(spec, 9, 10000, 17);
    std::map<double, int> byRate;
    int vbr = 0;
    const int n = 25000;
    for (int i = 0; i < n; ++i) {
        const auto d = gen.draw();
        ++byRate[d.rateBps];
        vbr += d.vbr ? 1 : 0;
    }
    ASSERT_EQ(byRate.size(), 3u);
    const double f64k = static_cast<double>(byRate[64 * kKbps]) / n;
    const double f1m = static_cast<double>(byRate[1 * kMbps]) / n;
    const double f5m = static_cast<double>(byRate[5 * kMbps]) / n;
    EXPECT_NEAR(f64k, 0.2, 0.02);
    EXPECT_NEAR(f1m, 0.6, 0.02);
    EXPECT_NEAR(f5m, 0.2, 0.02);
    // Only the 5m class is VBR.
    EXPECT_EQ(vbr, byRate[5 * kMbps]);
}

TEST(SessionGenerator, EndpointsAreDistinctAndInRange)
{
    SessionWorkloadSpec spec;
    SessionGenerator gen(spec, 7, 1000, 23);
    for (int i = 0; i < 5000; ++i) {
        const auto d = gen.draw();
        EXPECT_LT(d.src, 7u);
        EXPECT_LT(d.dst, 7u);
        EXPECT_NE(d.src, d.dst);
    }
}

TEST(SessionGenerator, DrawsDeterministicFromSeed)
{
    SessionWorkloadSpec spec;
    SessionGenerator a(spec, 16, 1000, 77);
    SessionGenerator b(spec, 16, 1000, 77);
    for (int i = 0; i < 1000; ++i) {
        const auto da = a.draw();
        const auto db = b.draw();
        ASSERT_EQ(da.src, db.src);
        ASSERT_EQ(da.dst, db.dst);
        ASSERT_EQ(da.rateBps, db.rateBps);
        ASSERT_EQ(da.holdCycles, db.holdCycles);
    }
}

TEST(WorkloadParsers, RateSuffixes)
{
    EXPECT_DOUBLE_EQ(parseRateBps("64k"), 64 * kKbps);
    EXPECT_DOUBLE_EQ(parseRateBps("1.54m"), 1.54 * kMbps);
    EXPECT_DOUBLE_EQ(parseRateBps("2g"), 2 * kGbps);
    EXPECT_DOUBLE_EQ(parseRateBps("250000"), 250000.0);
    EXPECT_THROW(parseRateBps("64x"), std::runtime_error);
    EXPECT_THROW(parseRateBps("64k9"), std::runtime_error);
}

TEST(WorkloadParsers, SessionMix)
{
    const auto mix = parseSessionMix("64k=2,vbr:5m=1.5");
    ASSERT_EQ(mix.size(), 2u);
    EXPECT_DOUBLE_EQ(mix[0].rateBps, 64 * kKbps);
    EXPECT_DOUBLE_EQ(mix[0].weight, 2.0);
    EXPECT_FALSE(mix[0].vbr);
    EXPECT_DOUBLE_EQ(mix[1].rateBps, 5 * kMbps);
    EXPECT_TRUE(mix[1].vbr);
    EXPECT_THROW(parseSessionMix(""), std::runtime_error);
    EXPECT_THROW(parseSessionMix("64k"), std::runtime_error);
    EXPECT_THROW(parseSessionMix("64k=-1"), std::runtime_error);
}

TEST(WorkloadParsers, FlashCrowdAndDiurnal)
{
    const FlashCrowd f =
        parseFlashCrowd("at=2000,ramp=1500,hold=3000,peak=4");
    EXPECT_EQ(f.at, 2000u);
    EXPECT_EQ(f.rampCycles, 1500u);
    EXPECT_EQ(f.holdCycles, 3000u);
    EXPECT_DOUBLE_EQ(f.peakFactor, 4.0);
    EXPECT_THROW(parseFlashCrowd("rampp=1"), std::runtime_error);

    const DiurnalCurve d = parseDiurnal("period=8000,amp=0.5");
    EXPECT_EQ(d.period, 8000u);
    EXPECT_DOUBLE_EQ(d.amplitude, 0.5);
    EXPECT_THROW(parseDiurnal("periodx=1"), std::runtime_error);
}

TEST(WorkloadParsers, DefaultMixIsWeightedAndCbrHeavy)
{
    const auto &mix = defaultSessionMix();
    ASSERT_GE(mix.size(), 5u);
    // Voice (lowest rate) carries the largest weight.
    EXPECT_DOUBLE_EQ(mix.front().rateBps, 64 * kKbps);
    for (const auto &e : mix)
        EXPECT_LE(e.weight, mix.front().weight);
}

} // namespace
} // namespace mmr
