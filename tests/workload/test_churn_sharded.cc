/**
 * @file
 * Serial-vs-sharded digest equality for churn workloads: the churn
 * engine runs coordinator-serial between host ticks, and all of its
 * draws live on seed-derived sub-RNGs, so a churning population must
 * produce a bit-identical networkResultDigest at shards {1, 2, 8} —
 * clean and under a fault plan.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/network_experiment.hh"
#include "sim/invariant.hh"

namespace mmr
{
namespace
{

NetworkExperimentConfig
shardedChurnConfig(bool faulted)
{
    NetworkExperimentConfig c;
    c.topologySpec = "mesh:4x4"; // 16 nodes: divisible into 2 and 8
    c.seed = 90001;
    c.net.router.vcsPerPort = 32;
    c.net.router.candidates = 8;
    c.cbrStreamsPerHost = 0;
    c.beFlowsPerHost = 0;
    c.warmupCycles = 600;
    c.measureCycles = 4000;
    c.drainCycles = 2500;
    c.invariantPeriod = 16;

    c.churn.enabled = true;
    c.churn.maxLiveSessions = 256;
    c.churn.workload.arrivalsPer1k = 120.0;
    c.churn.workload.holdingMeanCycles = 700;
    c.churn.workload.flash.at = 1200;
    c.churn.workload.flash.rampCycles = 600;
    c.churn.workload.flash.holdCycles = 800;
    c.churn.workload.flash.peakFactor = 3.0;

    if (faulted) {
        c.faults.linkFailPer10k = 1.0;
        c.faults.meanRepairCycles = 2000;
        c.faults.probeDropRate = 0.02;
    }
    return c;
}

class InvariantGuard
{
  public:
    InvariantGuard() { invariant::setEnabled(true); }
    ~InvariantGuard() { invariant::clearOverride(); }
};

TEST(ChurnSharded, CleanDigestsMatchAcrossShardCounts)
{
    InvariantGuard guard;
    auto cfg = shardedChurnConfig(false);
    cfg.net.shards = 1;
    const auto serial = runNetworkExperiment(cfg);
    ASSERT_GT(serial.sessionsAdmitted, 0u);
    const auto want = networkResultDigest(serial);
    for (const unsigned shards : {2u, 8u}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        cfg.net.shards = shards;
        const auto r = runNetworkExperiment(cfg);
        EXPECT_EQ(networkResultDigest(r), want)
            << "sharded churn run diverged from the serial one";
    }
}

TEST(ChurnSharded, FaultedDigestsMatchAcrossShardCounts)
{
    InvariantGuard guard;
    auto cfg = shardedChurnConfig(true);
    cfg.net.shards = 1;
    const auto serial = runNetworkExperiment(cfg);
    ASSERT_GT(serial.sessionsArrived, 0u);
    const auto want = networkResultDigest(serial);
    for (const unsigned shards : {2u, 8u}) {
        SCOPED_TRACE("shards " + std::to_string(shards));
        cfg.net.shards = shards;
        const auto r = runNetworkExperiment(cfg);
        EXPECT_EQ(networkResultDigest(r), want)
            << "sharded faulted churn run diverged from serial";
    }
}

TEST(ChurnSharded, ShardingPreservesLeakFreedom)
{
    InvariantGuard guard;
    auto cfg = shardedChurnConfig(true);
    cfg.net.shards = 8;
    const auto r = runNetworkExperiment(cfg);
    EXPECT_EQ(r.sessionsLeakedAtEnd, 0u);
    EXPECT_EQ(r.pendingSetupsAtEnd, 0u);
    EXPECT_EQ(r.openConnsAtEnd, 0u);
    EXPECT_EQ(r.sessionsArrived,
              r.sessionsAdmitted + r.sessionsRejected);
    EXPECT_EQ(r.sessionsAdmitted,
              r.sessionsCompleted + r.sessionsAbandoned);
}

} // namespace
} // namespace mmr
