/**
 * @file
 * Unit tests for the streaming statistics substrate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "base/rng.hh"
#include "base/stats.hh"

namespace mmr
{
namespace
{

TEST(StreamStat, EmptyIsZero)
{
    StreamStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(StreamStat, BasicMoments)
{
    StreamStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Sample variance of that classic set is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StreamStat, SingleSampleVarianceZero)
{
    StreamStat s;
    s.add(3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.mean(), 3.5);
}

TEST(StreamStat, MergeMatchesConcatenation)
{
    Rng rng(3);
    StreamStat whole, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(5, 2);
        whole.add(x);
        (i % 3 == 0 ? a : b).add(x);
    }
    StreamStat merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-7);
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
}

TEST(StreamStat, MergeWithEmpty)
{
    StreamStat a, b;
    a.add(1.0);
    a.add(2.0);
    StreamStat c = a;
    c.merge(b); // no-op
    EXPECT_EQ(c.count(), 2u);
    b.merge(a); // adopt
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(StreamStat, ResetForgets)
{
    StreamStat s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinningAndOverflow)
{
    Histogram h(0.0, 1.0, 10);
    h.add(-0.5);  // underflow
    h.add(0.0);   // bin 0
    h.add(0.999); // bin 0
    h.add(5.5);   // bin 5
    h.add(9.999); // bin 9
    h.add(10.0);  // overflow
    h.add(100.0); // overflow
    EXPECT_EQ(h.totalCount(), 7u);
    EXPECT_EQ(h.underflowCount(), 1u);
    EXPECT_EQ(h.overflowCount(), 2u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.binLow(5), 5.0);
}

TEST(Histogram, QuantileUniform)
{
    Histogram h(0.0, 1.0, 100);
    for (int i = 0; i < 10000; ++i)
        h.add((i % 100) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(0.0, 1.0, 4);
    h.add(2.0);
    h.reset();
    EXPECT_EQ(h.totalCount(), 0u);
    EXPECT_EQ(h.binCount(2), 0u);
}

TEST(PercentileSketch, ExactWhenUnderCapacity)
{
    PercentileSketch s(1000);
    for (int i = 100; i >= 1; --i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 0.5);
    EXPECT_NEAR(s.percentile(99), 99.0, 1.0);
}

TEST(PercentileSketch, ReservoirStaysRepresentative)
{
    PercentileSketch s(512);
    Rng rng(9);
    for (int i = 0; i < 100000; ++i)
        s.add(rng.uniform() * 1000.0);
    EXPECT_EQ(s.count(), 100000u);
    EXPECT_NEAR(s.percentile(50), 500.0, 60.0);
    EXPECT_NEAR(s.percentile(90), 900.0, 60.0);
}

TEST(PercentileSketch, EmptyIsZero)
{
    PercentileSketch s;
    EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(RatioStat, Basics)
{
    RatioStat r;
    EXPECT_EQ(r.ratio(), 0.0);
    r.addHit();
    r.addMiss();
    r.addMiss();
    r.addHit(2);
    EXPECT_EQ(r.hitCount(), 3u);
    EXPECT_EQ(r.chanceCount(), 5u);
    EXPECT_DOUBLE_EQ(r.ratio(), 0.6);
    r.reset();
    EXPECT_EQ(r.ratio(), 0.0);
}

} // namespace
} // namespace mmr
