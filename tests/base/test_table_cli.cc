/**
 * @file
 * Unit tests for the table/CSV emitters and the CLI flag parser.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "base/cli.hh"
#include "base/table.hh"

namespace mmr
{
namespace
{

TEST(Table, RendersAlignedAscii)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("+-------+-------+"), std::string::npos);
}

TEST(Table, CsvBlockIsMachineReadable)
{
    Table t({"a", "b", "c"});
    t.addRow({"1", "2", "3"});
    std::ostringstream oss;
    t.printCsv(oss, "my-series");
    EXPECT_EQ(oss.str(), "# begin-csv my-series\n"
                         "a,b,c\n"
                         "1,2,3\n"
                         "# end-csv\n");
}

TEST(Table, CellAccessAndCounts)
{
    Table t({"x"});
    t.addRow({"7"});
    EXPECT_EQ(t.numRows(), 1u);
    EXPECT_EQ(t.numCols(), 1u);
    EXPECT_EQ(t.cell(0, 0), "7");
}

TEST(Table, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Cli, ParsesEqualsAndSpaceForms)
{
    Cli cli;
    cli.flag("load", "0.5", "offered load");
    cli.flag("sched", "biased", "scheduler");
    const char *argv[] = {"prog", "--load=0.9", "--sched", "fixed"};
    ASSERT_TRUE(cli.parse(4, const_cast<char **>(argv)));
    EXPECT_DOUBLE_EQ(cli.real("load"), 0.9);
    EXPECT_EQ(cli.str("sched"), "fixed");
}

TEST(Cli, DefaultsSurviveWhenUnset)
{
    Cli cli;
    cli.flag("n", "42", "count");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, const_cast<char **>(argv)));
    EXPECT_EQ(cli.integer("n"), 42);
}

TEST(Cli, PositionalArguments)
{
    Cli cli;
    cli.flag("x", "1", "x");
    const char *argv[] = {"prog", "pos1", "--x=2", "pos2"};
    ASSERT_TRUE(cli.parse(4, const_cast<char **>(argv)));
    ASSERT_EQ(cli.positional().size(), 2u);
    EXPECT_EQ(cli.positional()[0], "pos1");
    EXPECT_EQ(cli.positional()[1], "pos2");
}

TEST(Cli, BooleanParsing)
{
    Cli cli;
    cli.flag("flag", "false", "a boolean");
    const char *argv[] = {"prog", "--flag=yes"};
    ASSERT_TRUE(cli.parse(2, const_cast<char **>(argv)));
    EXPECT_TRUE(cli.boolean("flag"));
}

TEST(Cli, ListSplitsOnCommas)
{
    Cli cli;
    cli.flag("loads", "0.1,0.2,0.3", "load list");
    const char *argv[] = {"prog"};
    ASSERT_TRUE(cli.parse(1, const_cast<char **>(argv)));
    const auto parts = cli.list("loads");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "0.1");
    EXPECT_EQ(parts[2], "0.3");
}

TEST(Cli, UnknownFlagIsFatal)
{
    Cli cli;
    cli.flag("known", "1", "known flag");
    const char *argv[] = {"prog", "--unknown=3"};
    EXPECT_THROW(cli.parse(2, const_cast<char **>(argv)),
                 std::runtime_error);
}

TEST(Cli, MissingValueIsFatal)
{
    Cli cli;
    cli.flag("x", "1", "x");
    const char *argv[] = {"prog", "--x"};
    EXPECT_THROW(cli.parse(2, const_cast<char **>(argv)),
                 std::runtime_error);
}

TEST(Cli, BadIntegerIsFatal)
{
    Cli cli;
    cli.flag("n", "1", "n");
    const char *argv[] = {"prog", "--n=abc"};
    ASSERT_TRUE(cli.parse(2, const_cast<char **>(argv)));
    EXPECT_THROW(cli.integer("n"), std::runtime_error);
}

TEST(Cli, HelpReturnsFalse)
{
    Cli cli;
    cli.flag("x", "1", "x");
    const char *argv[] = {"prog", "--help"};
    EXPECT_FALSE(cli.parse(2, const_cast<char **>(argv)));
}

} // namespace
} // namespace mmr
