/**
 * @file
 * Unit tests for the deterministic RNG and its distributions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "base/rng.hh"

namespace mmr
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3u);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(77);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 16; ++i)
        first.push_back(a.next());
    a.seed(77);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng r(6);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(3.0, 7.0);
        ASSERT_GE(u, 3.0);
        ASSERT_LT(u, 7.0);
    }
}

TEST(Rng, BelowStaysInBound)
{
    Rng r(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 3000; ++i) {
        const auto v = r.below(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u) << "all residues should appear";
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(8);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(10);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ExponentialMean)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(42.0);
    EXPECT_NEAR(sum / n, 42.0, 0.5);
}

TEST(Rng, NormalMoments)
{
    Rng r(12);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal(10.0, 3.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, LognormalMean)
{
    Rng r(13);
    // E[X] = exp(mu + sigma^2/2).
    const double mu = 1.0, sigma = 0.5;
    double sum = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i)
        sum += r.lognormal(mu, sigma);
    EXPECT_NEAR(sum / n, std::exp(mu + sigma * sigma / 2.0), 0.05);
}

TEST(Rng, PickCoversVector)
{
    Rng r(14);
    const std::vector<int> v{1, 2, 3};
    std::set<int> seen;
    for (int i = 0; i < 200; ++i)
        seen.insert(r.pick(v));
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(15);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto w = v;
    r.shuffle(w);
    auto sorted = w;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleActuallyShuffles)
{
    Rng r(16);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[i] = i;
    auto w = v;
    r.shuffle(w);
    EXPECT_NE(w, v);
}

} // namespace
} // namespace mmr
