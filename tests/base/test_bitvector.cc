/**
 * @file
 * Unit and property tests for the status bit vectors (§4.1).
 */

#include <gtest/gtest.h>

#include "base/bitvector.hh"
#include "base/rng.hh"

namespace mmr
{
namespace
{

TEST(BitVector, StartsAllClear)
{
    BitVector v(100);
    EXPECT_EQ(v.size(), 100u);
    EXPECT_EQ(v.count(), 0u);
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.any());
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_FALSE(v.test(i));
}

TEST(BitVector, SetClearAssign)
{
    BitVector v(70);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(69);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(69));
    EXPECT_EQ(v.count(), 4u);
    v.clear(63);
    EXPECT_FALSE(v.test(63));
    v.assign(5, true);
    EXPECT_TRUE(v.test(5));
    v.assign(5, false);
    EXPECT_FALSE(v.test(5));
}

TEST(BitVector, SetAllRespectsSize)
{
    BitVector v(67);
    v.setAll();
    EXPECT_EQ(v.count(), 67u);
    v.clearAll();
    EXPECT_EQ(v.count(), 0u);
}

TEST(BitVector, FindFirstAcrossWordBoundaries)
{
    BitVector v(200);
    EXPECT_EQ(v.findFirst(), 200u);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(128);
    v.set(199);
    EXPECT_EQ(v.findFirst(), 0u);
    EXPECT_EQ(v.findNext(0), 63u);
    EXPECT_EQ(v.findNext(63), 64u);
    EXPECT_EQ(v.findNext(64), 128u);
    EXPECT_EQ(v.findNext(128), 199u);
    EXPECT_EQ(v.findNext(199), 200u);
    EXPECT_EQ(v.findFirst(65), 128u);
}

TEST(BitVector, SetBitsRoundTrip)
{
    BitVector v(130);
    const std::vector<std::size_t> idx{1, 2, 63, 64, 65, 127, 129};
    for (auto i : idx)
        v.set(i);
    EXPECT_EQ(v.setBits(), idx);
}

TEST(BitVector, BooleanAlgebra)
{
    BitVector a(96), b(96);
    a.set(1);
    a.set(50);
    a.set(90);
    b.set(50);
    b.set(91);

    const BitVector both = a & b;
    EXPECT_EQ(both.setBits(), (std::vector<std::size_t>{50}));

    const BitVector either = a | b;
    EXPECT_EQ(either.setBits(),
              (std::vector<std::size_t>{1, 50, 90, 91}));

    const BitVector diff = a ^ b;
    EXPECT_EQ(diff.setBits(), (std::vector<std::size_t>{1, 90, 91}));

    BitVector anot = a;
    anot.andNot(b);
    EXPECT_EQ(anot.setBits(), (std::vector<std::size_t>{1, 90}));
}

TEST(BitVector, InvertKeepsTailClear)
{
    BitVector v(66);
    v.set(3);
    v.invert();
    EXPECT_FALSE(v.test(3));
    EXPECT_EQ(v.count(), 65u);
    // Inverting twice restores the original.
    v.invert();
    EXPECT_EQ(v.setBits(), (std::vector<std::size_t>{3}));
}

TEST(BitVector, Equality)
{
    BitVector a(40), b(40), c(41);
    a.set(7);
    b.set(7);
    EXPECT_TRUE(a == b);
    b.set(8);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(BitVector, ResizePreservesContent)
{
    BitVector v(10);
    v.set(9);
    v.resize(100);
    EXPECT_TRUE(v.test(9));
    EXPECT_EQ(v.count(), 1u);
    v.set(99);
    v.resize(50);
    EXPECT_TRUE(v.test(9));
    EXPECT_EQ(v.count(), 1u);
}

TEST(BitVector, EmptyVector)
{
    BitVector v;
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.none());
    EXPECT_EQ(v.findFirst(), 0u);
}

TEST(BitVectorDeath, OutOfRangeAccessPanics)
{
    BitVector v(8);
    EXPECT_DEATH(v.set(8), "out of range");
    EXPECT_DEATH(v.test(100), "out of range");
}

TEST(BitVectorDeath, SizeMismatchPanics)
{
    BitVector a(8), b(9);
    EXPECT_DEATH(a &= b, "size mismatch");
}

/** Property: algebra on random vectors matches per-bit evaluation. */
class BitVectorProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BitVectorProperty, AlgebraMatchesPerBitSemantics)
{
    const std::size_t n = GetParam();
    Rng rng(n * 2654435761u + 17);
    BitVector a(n), b(n);
    std::vector<bool> ra(n), rb(n);
    for (std::size_t i = 0; i < n; ++i) {
        ra[i] = rng.chance(0.4);
        rb[i] = rng.chance(0.4);
        a.assign(i, ra[i]);
        b.assign(i, rb[i]);
    }
    const BitVector iand = a & b;
    const BitVector ior = a | b;
    const BitVector ixor = a ^ b;
    std::size_t expect_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(iand.test(i), ra[i] && rb[i]);
        EXPECT_EQ(ior.test(i), ra[i] || rb[i]);
        EXPECT_EQ(ixor.test(i), ra[i] != rb[i]);
        expect_count += ra[i];
    }
    EXPECT_EQ(a.count(), expect_count);

    // findFirst/findNext enumerate exactly the set bits.
    std::vector<std::size_t> enumerated;
    for (std::size_t i = a.findFirst(); i < a.size(); i = a.findNext(i))
        enumerated.push_back(i);
    EXPECT_EQ(enumerated, a.setBits());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorProperty,
                         ::testing::Values(1, 7, 63, 64, 65, 127, 128,
                                           129, 255, 256, 1000));

// ---------------------------------------------------------------------
// Word-boundary behaviour of the word-at-a-time scan paths
// (forEachSet / forEachSetAnd), which the link scheduler's eligibility
// walk depends on.  Sizes straddle the 64-bit word edge on both sides.
// ---------------------------------------------------------------------

class BitVectorWordScan : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(BitVectorWordScan, ForEachSetVisitsExactlyTheSetBits)
{
    const std::size_t n = GetParam();
    BitVector v(n);
    // A pattern that crosses every word boundary: both edges of each
    // word, plus a stride-3 comb.
    std::vector<std::size_t> expect;
    for (std::size_t i = 0; i < n; ++i) {
        const bool edge = (i % 64 == 0) || (i % 64 == 63);
        if (edge || i % 3 == 0) {
            v.set(i);
            expect.push_back(i);
        }
    }
    std::vector<std::size_t> got;
    v.forEachSet([&](std::size_t i) { got.push_back(i); });
    EXPECT_EQ(got, expect);
    EXPECT_EQ(v.count(), expect.size());
}

TEST_P(BitVectorWordScan, ForEachSetAndMatchesPerBitIntersection)
{
    const std::size_t n = GetParam();
    BitVector a(n), b(n);
    // Masks that only overlap across word boundaries: a takes the top
    // two bits of every word, b the bottom two plus every 5th bit.
    std::vector<std::size_t> expect;
    for (std::size_t i = 0; i < n; ++i) {
        const bool ina = (i % 64 >= 62) || (i % 7 == 0);
        const bool inb = (i % 64 <= 1) || (i % 5 == 0);
        if (ina)
            a.set(i);
        if (inb)
            b.set(i);
        if (ina && inb)
            expect.push_back(i);
    }
    std::vector<std::size_t> got;
    a.forEachSetAnd(b, [&](std::size_t i) { got.push_back(i); });
    EXPECT_EQ(got, expect);

    // The materialized intersection agrees with the fused scan.
    const BitVector both = a & b;
    std::vector<std::size_t> viaAnd;
    both.forEachSet([&](std::size_t i) { viaAnd.push_back(i); });
    EXPECT_EQ(viaAnd, expect);
}

TEST_P(BitVectorWordScan, LastBitOfVectorIsReachable)
{
    const std::size_t n = GetParam();
    BitVector v(n);
    v.set(n - 1);
    std::size_t visits = 0, last = 0;
    v.forEachSet([&](std::size_t i) {
        ++visits;
        last = i;
    });
    EXPECT_EQ(visits, 1u);
    EXPECT_EQ(last, n - 1);
    EXPECT_EQ(v.findFirst(), n - 1);
    EXPECT_EQ(v.findNext(n - 1), n);
}

INSTANTIATE_TEST_SUITE_P(WordEdges, BitVectorWordScan,
                         ::testing::Values(63, 64, 65, 256));

} // namespace
} // namespace mmr
