/**
 * @file
 * Tests for the error/status reporting discipline (gem5-style):
 * panic aborts (internal bug), fatal throws a catchable user error,
 * warn counts, and the assertion macro formats its message.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/simclock.hh"

namespace mmr
{
namespace
{

/** Capture everything that reaches the sink, restoring on scope exit. */
class SinkCapture
{
  public:
    SinkCapture()
    {
        prev = log::setSink([this](LogLevel l, const std::string &m) {
            lines.emplace_back(l, m);
        });
        prevLevel = log::level();
    }
    ~SinkCapture()
    {
        log::setSink(std::move(prev));
        log::setLevel(prevLevel);
    }

    std::vector<std::pair<LogLevel, std::string>> lines;

  private:
    log::SinkFn prev;
    LogLevel prevLevel;
};

TEST(Logging, FatalThrowsWithComposedMessage)
{
    try {
        mmr_fatal("bad value ", 42, " for ", "knob");
        FAIL() << "fatal must not return";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bad value 42 for knob"),
                  std::string::npos);
        EXPECT_NE(what.find("fatal:"), std::string::npos);
        EXPECT_NE(what.find("test_logging.cc"), std::string::npos)
            << "the source location helps users report problems";
    }
}

TEST(Logging, WarnIncrementsTheCounter)
{
    const unsigned before = warnCount();
    mmr_warn("something looks off: ", 3.14);
    mmr_warn("again");
    EXPECT_EQ(warnCount(), before + 2);
}

TEST(Logging, InformIsSideEffectFree)
{
    const unsigned before = warnCount();
    mmr_inform("status message ", 7);
    EXPECT_EQ(warnCount(), before);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(mmr_panic("invariant ", "broken"), "invariant broken");
}

TEST(LoggingDeath, AssertFormatsConditionAndMessage)
{
    const int x = 3;
    EXPECT_DEATH(mmr_assert(x == 4, "x was ", x),
                 "assertion 'x == 4' failed: x was 3");
}

TEST(Logging, AssertPassesSilently)
{
    mmr_assert(1 + 1 == 2, "arithmetic holds");
    SUCCEED();
}

TEST(Logging, MessagesRouteThroughTheSink)
{
    SinkCapture cap;
    log::setLevel(LogLevel::Debug);
    mmr_warn("w ", 1);
    mmr_inform("i ", 2);
    mmr_debug("d ", 3);
    ASSERT_EQ(cap.lines.size(), 3u);
    EXPECT_EQ(cap.lines[0].first, LogLevel::Warn);
    EXPECT_EQ(cap.lines[0].second, "w 1");
    EXPECT_EQ(cap.lines[1].first, LogLevel::Info);
    EXPECT_EQ(cap.lines[1].second, "i 2");
    EXPECT_EQ(cap.lines[2].first, LogLevel::Debug);
    EXPECT_EQ(cap.lines[2].second, "d 3");
}

TEST(Logging, LevelFiltersBelowThreshold)
{
    SinkCapture cap;
    log::setLevel(LogLevel::Warn);
    mmr_debug("hidden");
    mmr_inform("hidden too");
    mmr_warn("visible");
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_EQ(cap.lines[0].second, "visible");

    log::setLevel(LogLevel::Silent);
    mmr_warn("swallowed");
    EXPECT_EQ(cap.lines.size(), 1u);
}

TEST(Logging, FilteredWarnStillCounts)
{
    // Tests gate on warnCount(); the level must not hide misbehavior.
    SinkCapture cap;
    log::setLevel(LogLevel::Silent);
    const unsigned before = warnCount();
    mmr_warn("silent but counted");
    EXPECT_EQ(warnCount(), before + 1);
    EXPECT_TRUE(cap.lines.empty());
}

TEST(Logging, EnabledMatchesThreshold)
{
    SinkCapture cap;
    log::setLevel(LogLevel::Info);
    EXPECT_FALSE(log::enabled(LogLevel::Debug));
    EXPECT_TRUE(log::enabled(LogLevel::Info));
    EXPECT_TRUE(log::enabled(LogLevel::Warn));
    log::setLevel(LogLevel::Silent);
    EXPECT_FALSE(log::enabled(LogLevel::Warn));
}

TEST(Logging, SimclockReportsKernelActivity)
{
    // The default sink prefixes "[cycle N]" when a kernel is stepping;
    // the underlying signal is the simclock.
    EXPECT_FALSE(simclock::active());
    simclock::set(1234);
    EXPECT_TRUE(simclock::active());
    EXPECT_EQ(simclock::now(), 1234u);
    simclock::clear();
    EXPECT_FALSE(simclock::active());
}

} // namespace
} // namespace mmr
