/**
 * @file
 * Tests for the error/status reporting discipline (gem5-style):
 * panic aborts (internal bug), fatal throws a catchable user error,
 * warn counts, and the assertion macro formats its message.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "base/logging.hh"

namespace mmr
{
namespace
{

TEST(Logging, FatalThrowsWithComposedMessage)
{
    try {
        mmr_fatal("bad value ", 42, " for ", "knob");
        FAIL() << "fatal must not return";
    } catch (const std::runtime_error &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bad value 42 for knob"),
                  std::string::npos);
        EXPECT_NE(what.find("fatal:"), std::string::npos);
        EXPECT_NE(what.find("test_logging.cc"), std::string::npos)
            << "the source location helps users report problems";
    }
}

TEST(Logging, WarnIncrementsTheCounter)
{
    const unsigned before = warnCount();
    mmr_warn("something looks off: ", 3.14);
    mmr_warn("again");
    EXPECT_EQ(warnCount(), before + 2);
}

TEST(Logging, InformIsSideEffectFree)
{
    const unsigned before = warnCount();
    mmr_inform("status message ", 7);
    EXPECT_EQ(warnCount(), before);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(mmr_panic("invariant ", "broken"), "invariant broken");
}

TEST(LoggingDeath, AssertFormatsConditionAndMessage)
{
    const int x = 3;
    EXPECT_DEATH(mmr_assert(x == 4, "x was ", x),
                 "assertion 'x == 4' failed: x was 3");
}

TEST(Logging, AssertPassesSilently)
{
    mmr_assert(1 + 1 == 2, "arithmetic holds");
    SUCCEED();
}

} // namespace
} // namespace mmr
