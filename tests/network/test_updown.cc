/**
 * @file
 * Tests for up*-down* adaptive routing (§3.5): direction labeling,
 * route legality, reachability and livelock-freedom of the adaptive
 * next-hop choice.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "network/topology.hh"
#include "network/updown.hh"

namespace mmr
{
namespace
{

TEST(UpDown, LevelsComeFromBfs)
{
    const Topology t = Topology::star(4);
    const UpDownRouting ud(t, 0);
    EXPECT_EQ(ud.level(0), 0u);
    for (NodeId n = 1; n <= 4; ++n)
        EXPECT_EQ(ud.level(n), 1u);
}

TEST(UpDown, DirectionIsAntisymmetric)
{
    Rng rng(3);
    const Topology t = Topology::irregular(12, 5, 4, rng);
    const UpDownRouting ud(t);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        for (const auto &p : t.ports(n)) {
            EXPECT_NE(ud.isUp(n, p.neighbor), ud.isUp(p.neighbor, n))
                << "every link has exactly one up direction";
        }
    }
}

TEST(UpDown, RootIsAboveItsNeighbors)
{
    const Topology t = Topology::mesh2d(3, 3);
    const UpDownRouting ud(t, 4); // center as root
    for (const auto &p : t.ports(4))
        EXPECT_TRUE(ud.isUp(p.neighbor, 4));
}

TEST(UpDown, LegalHopsNeverGoUpAfterDown)
{
    Rng rng(4);
    const Topology t = Topology::irregular(14, 6, 4, rng);
    const UpDownRouting ud(t);
    for (NodeId at = 0; at < t.numNodes(); ++at) {
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            if (at == dst)
                continue;
            for (NodeId hop : ud.legalNextHops(at, dst, true))
                EXPECT_FALSE(ud.isUp(at, hop))
                    << "up move offered in the down phase";
        }
    }
}

TEST(UpDown, EveryPairReachableInPhaseZero)
{
    Rng rng(5);
    const Topology t = Topology::irregular(16, 4, 4, rng);
    const UpDownRouting ud(t);
    for (NodeId a = 0; a < t.numNodes(); ++a)
        for (NodeId b = 0; b < t.numNodes(); ++b)
            EXPECT_TRUE(ud.reachable(a, b, false))
                << a << " -> " << b;
}

TEST(UpDown, TreeTopologyFollowsTreePath)
{
    // On a star, any leaf-to-leaf route goes through the hub in
    // exactly two hops: up then down.
    const Topology t = Topology::star(4);
    const UpDownRouting ud(t, 0);
    Rng rng(6);
    const NodeId hop = ud.adaptiveNextHop(1, 3, false, rng);
    EXPECT_EQ(hop, 0u);
    const NodeId hop2 = ud.adaptiveNextHop(0, 3, false, rng);
    EXPECT_EQ(hop2, 3u);
}

/**
 * Livelock freedom: following adaptiveNextHop step by step always
 * reaches the destination within 2 x diameter-ish hops, on random
 * irregular graphs, from every source, in both phases.
 */
class UpDownWalkProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UpDownWalkProperty, AdaptiveWalksTerminate)
{
    Rng rng(GetParam());
    const Topology t = Topology::irregular(18, 8, 5, rng);
    const UpDownRouting ud(t);
    Rng walk_rng(GetParam() * 31 + 1);
    for (NodeId src = 0; src < t.numNodes(); ++src) {
        for (NodeId dst = 0; dst < t.numNodes(); ++dst) {
            if (src == dst)
                continue;
            NodeId at = src;
            bool down = false;
            unsigned hops = 0;
            const unsigned bound = 4 * t.numNodes();
            while (at != dst) {
                const NodeId next =
                    ud.adaptiveNextHop(at, dst, down, walk_rng);
                ASSERT_NE(next, kInvalidNode)
                    << "stuck at " << at << " for " << dst;
                down = down || !ud.isUp(at, next);
                at = next;
                ASSERT_LE(++hops, bound) << "livelock " << src << "->"
                                         << dst;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpDownWalkProperty,
                         ::testing::Values(10, 20, 30, 40, 50));

TEST(UpDown, MeshRoutesAreNearMinimal)
{
    // On a mesh rooted at a corner, adaptive up*-down* paths are within
    // 2x the Manhattan distance (up*-down* can detour via the root
    // region but the phase-automaton distance bounds the walk).
    const Topology t = Topology::mesh2d(4, 4);
    const UpDownRouting ud(t, 0);
    Rng rng(7);
    for (NodeId src = 0; src < 16; ++src) {
        for (NodeId dst = 0; dst < 16; ++dst) {
            if (src == dst)
                continue;
            NodeId at = src;
            bool down = false;
            unsigned hops = 0;
            while (at != dst && hops < 64) {
                const NodeId next = ud.adaptiveNextHop(at, dst, down, rng);
                ASSERT_NE(next, kInvalidNode);
                down = down || !ud.isUp(at, next);
                at = next;
                ++hops;
            }
            EXPECT_LE(hops, 2 * t.distance(src, dst) + 2);
        }
    }
}

} // namespace
} // namespace mmr
