/**
 * @file
 * Tests for the host network interface: stream establishment, source
 * driving, back-pressure backlog and best-effort flows.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "network/interface.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

class InterfaceTest : public ::testing::Test
{
  protected:
    InterfaceTest()
    {
        NetworkConfig cfg;
        cfg.router.vcsPerPort = 16;
        cfg.router.vcBufferFlits = 8;
        cfg.seed = 3;
        net = std::make_unique<Network>(Topology::mesh2d(2, 2), cfg);
        kernel.add(net.get());
    }

    std::unique_ptr<Network> net;
    Kernel kernel;
};

TEST_F(InterfaceTest, CbrStreamFlowsAutomatically)
{
    NetworkInterface ni(*net, 0, 42);
    ASSERT_TRUE(ni.openCbrStream(3, 10 * kMbps));
    EXPECT_EQ(ni.establishedStreams(), 1u);
    EXPECT_EQ(ni.refusedStreams(), 0u);

    net->endToEnd().startMeasurement(0);
    for (Cycle t = 0; t < 5000; ++t) {
        ni.tick(kernel.now());
        kernel.step();
    }
    // 10 Mb/s on a 1.24 Gb/s link: one flit every 124 cycles.
    EXPECT_NEAR(static_cast<double>(net->flitsDelivered()), 40.0, 5.0);
    EXPECT_EQ(ni.backloggedFlits(), 0u);
    EXPECT_GT(ni.injectedFlits(), 0u);
}

TEST_F(InterfaceTest, VbrStreamFlows)
{
    NetworkInterface ni(*net, 1, 43);
    VbrProfile prof;
    prof.meanRateBps = 4 * kMbps;
    // At 25 fps a frame interval is ~390k cycles — too slow for a
    // short test; a 1 kHz frame clock keeps the same machinery busy.
    prof.framesPerSecond = 1000.0;
    ASSERT_TRUE(ni.openVbrStream(2, prof, 1));
    for (Cycle t = 0; t < 60000; ++t) {
        ni.tick(kernel.now());
        kernel.step();
    }
    EXPECT_GT(net->flitsDelivered(), 0u);
}

TEST_F(InterfaceTest, TraceStreamFlows)
{
    // Write a tiny trace and replay it across the network.
    const std::string path = "/tmp/mmr_iface_trace.txt";
    {
        std::ofstream out(path);
        out << "# two-frame loop\n1280\n2560\n";
    }
    NetworkInterface ni(*net, 0, 52);
    ASSERT_TRUE(ni.openTraceStream(3, path, 2000.0, 3.0, 1));
    EXPECT_EQ(ni.establishedStreams(), 1u);
    for (Cycle t = 0; t < 40000; ++t) {
        ni.tick(kernel.now());
        kernel.step();
    }
    std::remove(path.c_str());
    // Mean rate 3.84 Mb/s -> ~120 flits in 40k cycles.
    EXPECT_GT(net->flitsDelivered(), 60u);
}

TEST_F(InterfaceTest, TraceHotterThanTheLinkIsRefused)
{
    const std::string path = "/tmp/mmr_iface_trace2.txt";
    {
        std::ofstream out(path);
        out << "1280000\n"; // 1.28 Mb frames at 1000 fps = 1.28 Gb/s
    }
    NetworkInterface ni(*net, 0, 53);
    EXPECT_FALSE(ni.openTraceStream(3, path, 1000.0, 2.0, 0))
        << "declared peak (2x mean) exceeds the link rate";
    EXPECT_EQ(ni.refusedStreams(), 1u);
    std::remove(path.c_str());
}

TEST_F(InterfaceTest, RefusalIsCounted)
{
    NetworkInterface ni(*net, 0, 44);
    // Demand beyond link capacity is refused by admission control.
    EXPECT_FALSE(ni.openCbrStream(3, 2.0 * kGbps));
    EXPECT_EQ(ni.refusedStreams(), 1u);
    EXPECT_EQ(ni.establishedStreams(), 0u);
}

TEST_F(InterfaceTest, BestEffortFlowsDeliver)
{
    NetworkInterface ni(*net, 0, 45);
    ni.addBestEffortFlow(3, 5 * kMbps);
    ni.addBestEffortFlow(2, 5 * kMbps);
    for (Cycle t = 0; t < 30000; ++t) {
        ni.tick(kernel.now());
        kernel.step();
    }
    EXPECT_GT(net->datagramsSent(), 100u);
    EXPECT_NEAR(static_cast<double>(net->datagramsDelivered()),
                static_cast<double>(net->datagramsSent()), 4.0)
        << "everything sent (minus in-flight tail) arrives";
}

TEST_F(InterfaceTest, BacklogPreservesOrderUnderBackpressure)
{
    NetworkInterface ni(*net, 0, 46);
    // A full-rate stream: the NI will occasionally be pushed back and
    // must queue flits, never drop or reorder them.
    ASSERT_TRUE(ni.openCbrStream(3, 1.0 * kGbps));
    net->endToEnd().startMeasurement(0);
    for (Cycle t = 0; t < 4000; ++t) {
        ni.tick(kernel.now());
        kernel.step();
    }
    const auto conns = ni.connections();
    ASSERT_EQ(conns.size(), 1u);
    const ConnectionRecorder *rec = net->endToEnd().connection(conns[0]);
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->flitCount(), 3000u)
        << "a reserved full-rate stream sustains ~1 flit/cycle";
}

} // namespace
} // namespace mmr
