/**
 * @file
 * Network-level property tests: determinism, resource integrity after
 * arbitrary open/close/datagram churn, EPB termination bounds, and
 * service-class ordering of datagrams.
 */

#include <gtest/gtest.h>

#include <memory>

#include "network/network.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

NetworkConfig
cfg(std::uint64_t seed)
{
    NetworkConfig c;
    c.router.vcsPerPort = 16;
    c.router.candidates = 4;
    c.seed = seed;
    return c;
}

/** One full churn scenario; returns a digest of observable stats. */
std::vector<std::uint64_t>
runChurn(std::uint64_t seed)
{
    Rng rng(seed);
    const Topology topo = Topology::irregular(10, 5, 4, rng);
    Network net(topo, cfg(seed));
    Kernel kernel;
    kernel.add(&net);

    std::vector<ConnId> open;
    std::uint32_t flow = 0x4100;
    for (int step = 0; step < 400; ++step) {
        const auto roll = rng.below(100);
        if (roll < 20) {
            const NodeId src = static_cast<NodeId>(rng.below(10));
            const NodeId dst =
                static_cast<NodeId>((src + 1 + rng.below(9)) % 10);
            const auto o =
                net.openCbr(src, dst, rng.pick(paperRateLadder()));
            if (o.accepted)
                open.push_back(o.id);
        } else if (roll < 30 && !open.empty()) {
            const auto i = rng.below(open.size());
            net.closeConnection(open[i]);
            open.erase(open.begin() + static_cast<std::ptrdiff_t>(i));
        } else if (roll < 60) {
            const NodeId src = static_cast<NodeId>(rng.below(10));
            const NodeId dst = static_cast<NodeId>(rng.below(10));
            if (src != dst)
                net.sendDatagram(src, dst, TrafficClass::BestEffort,
                                 flow++, kernel.now());
        } else if (!open.empty()) {
            Flit f;
            net.inject(open[rng.below(open.size())], f, kernel.now());
        }
        kernel.run(1 + rng.below(4));
    }
    kernel.run(2000); // drain

    return {net.flitsDelivered(), net.datagramsSent(),
            net.datagramsDelivered(), net.datagramDrops(),
            net.openConnectionCount(), net.injectRejects(),
            net.pendingDatagrams()};
}

TEST(NetworkProperty, DeterministicAcrossRuns)
{
    EXPECT_EQ(runChurn(31), runChurn(31));
    EXPECT_NE(runChurn(31), runChurn(32));
}

TEST(NetworkProperty, ChurnNeverLosesDatagrams)
{
    for (std::uint64_t seed : {41u, 42u, 43u}) {
        const auto digest = runChurn(seed);
        EXPECT_EQ(digest[1], digest[2]) << "sent == delivered, seed "
                                        << seed;
        EXPECT_EQ(digest[3], 0u) << "no drops, seed " << seed;
        EXPECT_EQ(digest[6], 0u) << "nothing stuck, seed " << seed;
    }
}

TEST(NetworkProperty, ResourcesDrainToZeroAfterFullTeardown)
{
    Rng rng(7);
    const Topology topo = Topology::irregular(8, 4, 4, rng);
    Network net(topo, cfg(7));
    Kernel kernel;
    kernel.add(&net);

    std::vector<ConnId> ids;
    for (int i = 0; i < 30; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(8));
        const NodeId dst =
            static_cast<NodeId>((src + 1 + rng.below(7)) % 8);
        const auto o = net.openCbr(src, dst, 5 * kMbps);
        if (o.accepted)
            ids.push_back(o.id);
    }
    ASSERT_FALSE(ids.empty());
    for (ConnId id : ids) {
        Flit f;
        net.inject(id, f, kernel.now());
    }
    kernel.run(50);
    for (ConnId id : ids)
        ASSERT_TRUE(net.closeConnection(id));
    kernel.run(500);
    EXPECT_EQ(net.openConnectionCount(), 0u);

    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        MmrRouter &r = net.routerAt(n);
        for (PortId p = 0; p < r.config().numPorts; ++p) {
            EXPECT_EQ(r.admission().allocatedCycles(p), 0u)
                << "node " << n << " port " << p;
            EXPECT_EQ(r.routing().freeOutputVcCount(p), 16u)
                << "node " << n << " port " << p;
            EXPECT_EQ(r.routing().freeInputVcCount(p), 16u)
                << "node " << n << " port " << p;
        }
    }
}

TEST(NetworkProperty, EpbProbeWorkIsBounded)
{
    // EPB never searches a link twice (history store), so the probe
    // walk is bounded by the link count even on a hostile network
    // where everything is saturated.
    Rng rng(9);
    const Topology topo = Topology::irregular(12, 10, 5, rng);
    Network net(topo, cfg(9));
    // Saturate every link's admission so probes must exhaust the
    // search space.
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        MmrRouter &r = net.routerAt(n);
        for (PortId p = 0; p < topo.degree(n); ++p)
            ASSERT_TRUE(r.admission().tryAdmitCbr(
                p, r.admission().reservableCycles()));
    }
    for (int i = 0; i < 20; ++i) {
        const NodeId src = static_cast<NodeId>(rng.below(12));
        const NodeId dst =
            static_cast<NodeId>((src + 1 + rng.below(11)) % 12);
        const auto o = net.openCbr(src, dst, 1 * kMbps);
        EXPECT_FALSE(o.accepted);
        EXPECT_LE(o.forwardSteps + o.backtrackSteps,
                  2 * topo.numLinks() + 2);
    }
}

TEST(NetworkProperty, ControlDatagramsOvertakeBestEffort)
{
    // Saturate a path with best-effort packets, then send one control
    // packet: it must not queue behind the whole backlog.
    NetworkConfig c = cfg(11);
    Topology line(2);
    line.addLink(0, 1);
    Network net(line, c);
    Kernel kernel;
    kernel.add(&net);

    std::uint32_t seq = 0;
    for (int i = 0; i < 12; ++i)
        net.sendDatagram(0, 1, TrafficClass::BestEffort, 0x51,
                         kernel.now(), seq++);
    net.sendDatagram(0, 1, TrafficClass::Control, 0x52, kernel.now());
    kernel.run(200);

    const auto *be = net.endToEnd().connection(0x51);
    const auto *ctl = net.endToEnd().connection(0x52);
    ASSERT_NE(be, nullptr);
    ASSERT_NE(ctl, nullptr);
    EXPECT_LT(ctl->delay().mean(), be->delay().mean())
        << "control tier pre-empts queued best-effort traffic";
}

} // namespace
} // namespace mmr
