/**
 * @file
 * Serial-vs-sharded equivalence: the shard-parallel network core must
 * produce a bit-identical networkResultDigest to the serial path for
 * every topology generator, shard count, and fault schedule — the
 * determinism contract of DESIGN.md §12.  The digests cover every
 * counter, FP accumulation, and latency-histogram percentile of the
 * run, so any reordering of credit returns, corrupt-hook RNG draws or
 * end-to-end deliveries across the shard boundary shows up here.
 *
 * The fault sweep's seed count scales with MMR_SHARD_PROP_SEEDS
 * (default 20, the ISSUE-mandated sweep width).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "harness/network_experiment.hh"
#include "sim/invariant.hh"

namespace mmr
{
namespace
{

unsigned
seedCount()
{
    if (const char *env = std::getenv("MMR_SHARD_PROP_SEEDS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v > 0)
            return static_cast<unsigned>(v);
    }
    return 20;
}

/** The four generator families the digest contract is tested over. */
const char *const kGenerators[] = {
    "mesh:3x3",          // regular
    "irregular:10:4:4",  // random bounded-degree cluster
    "min:2:3",           // multistage interconnection network
    "fattree:4",         // three-tier fat-tree
};

const unsigned kShardCounts[] = {2, 3, 8};

NetworkExperimentConfig
baseConfig(const char *topo, std::uint64_t seed)
{
    NetworkExperimentConfig c;
    c.topologySpec = topo;
    c.seed = seed;
    c.net.router.vcsPerPort = 32;
    c.net.router.candidates = 8;
    c.cbrStreamsPerHost = 1;
    c.cbrRateBps = 10 * kMbps;
    c.beFlowsPerHost = 1;
    c.beRateBps = 2 * kMbps;
    c.warmupCycles = 800;
    c.measureCycles = 2000;
    c.drainCycles = 1000;
    c.invariantPeriod = 8;
    return c;
}

std::uint64_t
digestAtShards(NetworkExperimentConfig cfg, unsigned shards)
{
    cfg.net.shards = shards;
    return networkResultDigest(runNetworkExperiment(cfg));
}

class InvariantGuard
{
  public:
    InvariantGuard() { invariant::setEnabled(true); }
    ~InvariantGuard() { invariant::clearOverride(); }
};

TEST(ShardedNetwork, CleanRunDigestMatchesSerialOnEveryGenerator)
{
    InvariantGuard guard;
    for (const char *topo : kGenerators) {
        SCOPED_TRACE(topo);
        const auto cfg = baseConfig(topo, 12345);
        const std::uint64_t serial = digestAtShards(cfg, 1);
        for (unsigned shards : kShardCounts) {
            SCOPED_TRACE("shards " + std::to_string(shards));
            EXPECT_EQ(serial, digestAtShards(cfg, shards))
                << "sharded run diverged from the serial digest";
        }
    }
}

TEST(ShardedNetwork, LeafSpineAndShardsBeyondNodesStaySerialEquivalent)
{
    InvariantGuard guard;
    // leaf-spine exercises the star-like extreme (every leaf's
    // traffic crosses a shard boundary), and shards > nodes exercises
    // the clamp.
    const auto cfg = baseConfig("leafspine:3:6", 777);
    const std::uint64_t serial = digestAtShards(cfg, 1);
    EXPECT_EQ(serial, digestAtShards(cfg, 4));
    EXPECT_EQ(serial, digestAtShards(cfg, 64));
}

TEST(ShardedNetwork, FaultSweepDigestMatchesSerial)
{
    InvariantGuard guard;
    const unsigned seeds = seedCount();
    for (unsigned s = 0; s < seeds; ++s) {
        SCOPED_TRACE("seed index " + std::to_string(s));
        auto cfg = baseConfig(kGenerators[s % 4],
                              42 + 7919ULL * (s + 1));
        cfg.faults.linkFailPer10k = 1.0;
        cfg.faults.meanRepairCycles = 1500;
        cfg.faults.probeDropRate = 0.02;
        cfg.faults.corruptRate = 2e-4;
        const unsigned shards = kShardCounts[s % 3];
        SCOPED_TRACE("shards " + std::to_string(shards));
        EXPECT_EQ(digestAtShards(cfg, 1), digestAtShards(cfg, shards))
            << "FaultPlan replay diverged between serial and sharded";
    }
}

TEST(ShardedNetwork, ExplicitFaultEventsReplayIdentically)
{
    InvariantGuard guard;
    auto cfg = baseConfig("mesh:3x3", 999);
    cfg.faultEvents = "down@900:0-1;up@1800:0-1;down@2200:4-5";
    const std::uint64_t serial = digestAtShards(cfg, 1);
    for (unsigned shards : kShardCounts)
        EXPECT_EQ(serial, digestAtShards(cfg, shards));
}

TEST(ShardedNetwork, ShardPartitionIsContiguousAndBalanced)
{
    NetworkConfig ncfg;
    ncfg.shards = 3;
    Network net(Topology::mesh2d(4, 4), ncfg);
    ASSERT_EQ(net.shards(), 3u);
    unsigned last = 0;
    std::vector<unsigned> sizes(3, 0);
    for (NodeId n = 0; n < net.numNodes(); ++n) {
        const unsigned s = net.shardOfNode(n);
        EXPECT_GE(s, last) << "partition must be contiguous in id";
        last = s;
        ++sizes[s];
    }
    for (unsigned s = 0; s < 3; ++s)
        EXPECT_NEAR(static_cast<double>(sizes[s]), 16.0 / 3.0, 1.0);
}

} // namespace
} // namespace mmr
