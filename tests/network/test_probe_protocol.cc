/**
 * @file
 * Tests for the timed (distributed) connection-establishment
 * protocol: measured setup latency, consistency with the algorithmic
 * EPB on a quiet network, realistic contention between concurrent
 * probes, backtracking in time, and resource integrity afterwards.
 */

#include <gtest/gtest.h>

#include <memory>

#include "network/network.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

NetworkConfig
smallCfg()
{
    NetworkConfig cfg;
    cfg.router.vcsPerPort = 16;
    cfg.router.candidates = 4;
    cfg.probeHopCycles = 2.0;
    cfg.seed = 17;
    return cfg;
}

class TimedSetupTest : public ::testing::Test
{
  protected:
    void
    build(const Topology &t, NetworkConfig cfg = smallCfg())
    {
        net = std::make_unique<Network>(t, cfg);
        kernel.add(net.get());
    }

    /** Run until the token completes (bounded). */
    const Network::TimedOutcome *
    await(std::uint64_t token, Cycle bound = 10000)
    {
        for (Cycle i = 0; i < bound; ++i) {
            if (const auto *r = net->timedResult(token))
                return r;
            kernel.step();
        }
        return net->timedResult(token);
    }

    std::unique_ptr<Network> net;
    Kernel kernel;
};

TEST_F(TimedSetupTest, EstablishesWithMeasuredLatency)
{
    build(Topology::mesh2d(3, 3));
    const auto token = net->openCbrTimed(0, 8, 10 * kMbps, kernel.now());
    EXPECT_EQ(net->pendingSetups(), 1u);
    const auto *r = await(token);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->accepted);
    EXPECT_EQ(r->pathLength, 5u);
    EXPECT_EQ(r->forwardSteps, 4u);
    EXPECT_EQ(r->backtrackSteps, 0u);
    // Probe: 4 forward hops + destination reserve; ack: 5 hops back.
    // Each action costs hopLatency = 2 cycles.
    EXPECT_GE(r->setupCycles, 2u * (4u + 5u));
    EXPECT_LE(r->setupCycles, 2u * (4u + 5u) + 4u);
    EXPECT_EQ(net->pendingSetups(), 0u);
    EXPECT_EQ(net->openConnectionCount(), 1u);
}

TEST_F(TimedSetupTest, ConnectionIsUsableAfterEstablishment)
{
    build(Topology::ring(4));
    const auto token = net->openCbrTimed(0, 2, 100 * kMbps, kernel.now());
    const auto *r = await(token);
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->accepted);
    net->endToEnd().startMeasurement(0);
    for (int i = 0; i < 5; ++i) {
        Flit f;
        f.seq = static_cast<std::uint32_t>(i);
        f.createTime = kernel.now();
        ASSERT_TRUE(net->inject(r->id, f, kernel.now()));
        kernel.run(13);
    }
    kernel.run(100);
    const auto *rec = net->endToEnd().connection(r->id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->delay().count(), 5u);
}

TEST_F(TimedSetupTest, MatchesAlgorithmicAcceptanceOnQuietNetwork)
{
    // With no concurrency, the timed protocol and the algorithmic
    // search must accept the same demand (same resources consumed).
    Rng rng(5);
    const Topology topo = Topology::irregular(10, 4, 4, rng);

    build(topo);
    unsigned timed_accepted = 0;
    for (unsigned i = 0; i < 40; ++i) {
        const NodeId src = static_cast<NodeId>(i % 10);
        const NodeId dst = static_cast<NodeId>((i + 3) % 10);
        const auto token =
            net->openCbrTimed(src, dst, 20 * kMbps, kernel.now());
        const auto *r = await(token);
        ASSERT_NE(r, nullptr);
        timed_accepted += r->accepted;
    }

    Network net2(topo, smallCfg());
    unsigned algo_accepted = 0;
    for (unsigned i = 0; i < 40; ++i) {
        const NodeId src = static_cast<NodeId>(i % 10);
        const NodeId dst = static_cast<NodeId>((i + 3) % 10);
        algo_accepted += net2.openCbr(src, dst, 20 * kMbps).accepted;
    }
    EXPECT_EQ(timed_accepted, algo_accepted);
}

TEST_F(TimedSetupTest, RefusalReleasesEverything)
{
    Topology line(3);
    line.addLink(0, 1);
    line.addLink(1, 2);
    build(line);
    // Saturate the middle link.
    const PortId p12 = line.portTowards(1, 2);
    MmrRouter &r1 = net->routerAt(1);
    ASSERT_TRUE(r1.admission().tryAdmitCbr(
        p12, r1.admission().reservableCycles()));

    const auto token = net->openCbrTimed(0, 2, 10 * kMbps, kernel.now());
    const auto *r = await(token);
    ASSERT_NE(r, nullptr);
    EXPECT_FALSE(r->accepted);
    EXPECT_GT(r->backtrackSteps, 0u);
    EXPECT_GT(r->setupCycles, 0u);
    // Node 0's resources are fully restored.
    MmrRouter &r0 = net->routerAt(0);
    EXPECT_EQ(r0.admission().allocatedCycles(line.portTowards(0, 1)),
              0u);
    EXPECT_EQ(r0.routing().freeOutputVcCount(line.portTowards(0, 1)),
              16u);
}

TEST_F(TimedSetupTest, ConcurrentProbesContendForTheLastVc)
{
    // A 2-node link with exactly one remaining VC: two simultaneous
    // probes race; exactly one connection is established.
    NetworkConfig cfg = smallCfg();
    cfg.router.vcsPerPort = 2;
    cfg.router.candidates = 2;
    Topology pair(2);
    pair.addLink(0, 1);
    build(pair, cfg);
    // Eat one of the two output VCs on 0 -> 1 and one NI VC at 1, so
    // only one full path remains.
    const PortId p01 = pair.portTowards(0, 1);
    ASSERT_NE(net->routerAt(0).routing().allocOutputVc(p01), kInvalidVc);
    ASSERT_NE(net->routerAt(1).routing().allocOutputVc(net->niPort(1)),
              kInvalidVc);

    const auto t1 = net->openCbrTimed(0, 1, 10 * kMbps, kernel.now());
    const auto t2 = net->openCbrTimed(0, 1, 10 * kMbps, kernel.now());
    const auto *r1 = await(t1);
    const auto *r2 = await(t2);
    ASSERT_NE(r1, nullptr);
    ASSERT_NE(r2, nullptr);
    EXPECT_NE(r1->accepted, r2->accepted)
        << "exactly one of the racing probes can win the last VC";
    EXPECT_EQ(net->openConnectionCount(), 1u);
}

TEST_F(TimedSetupTest, ManyConcurrentSetupsAllComplete)
{
    build(Topology::mesh2d(4, 4));
    std::vector<std::uint64_t> tokens;
    for (NodeId src = 0; src < 16; ++src)
        tokens.push_back(net->openCbrTimed(
            src, static_cast<NodeId>((src + 7) % 16), 5 * kMbps,
            kernel.now()));
    kernel.run(2000);
    EXPECT_EQ(net->pendingSetups(), 0u);
    unsigned accepted = 0;
    for (auto t : tokens) {
        const auto *r = net->timedResult(t);
        ASSERT_NE(r, nullptr);
        ASSERT_TRUE(r->done);
        accepted += r->accepted;
    }
    EXPECT_EQ(accepted, 16u) << "a quiet 4x4 mesh fits all of these";
    EXPECT_EQ(net->openConnectionCount(), 16u);
}

TEST_F(TimedSetupTest, VbrTimedSetupReservesBothRegisters)
{
    build(Topology::ring(4));
    // Rates large enough that perm and peak quantize to different
    // cycle counts (round here is only 32 cycles).
    const auto token = net->openVbrTimed(0, 2, 100 * kMbps,
                                         400 * kMbps, 2, kernel.now());
    const auto *r = await(token);
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->accepted);
    // Every router along the path carries permanent + peak state and
    // the user priority.
    const auto path = net->connectionPath(r->id);
    ASSERT_GE(path.size(), 2u);
    for (std::size_t k = 0; k + 1 < path.size(); ++k) {
        const SegmentParams *seg =
            net->routerAt(path[k]).connection(r->id);
        ASSERT_NE(seg, nullptr);
        EXPECT_EQ(seg->klass, TrafficClass::VBR);
        EXPECT_GT(seg->permCycles, 0u);
        EXPECT_GT(seg->peakCycles, seg->permCycles);
        EXPECT_EQ(seg->priority, 2);
        EXPECT_GT(net->routerAt(path[k]).admission().peakCycles(
                      seg->out),
                  0u);
    }
}

TEST_F(TimedSetupTest, GreedyPolicyCanRefuseWhereEpbBacktracks)
{
    // Diamond with one saturated branch, as in the EPB unit tests —
    // but driven through the timed protocol.
    Topology diamond(4);
    diamond.addLink(0, 1);
    diamond.addLink(0, 2);
    diamond.addLink(1, 3);
    diamond.addLink(2, 3);
    build(diamond);
    MmrRouter &r1 = net->routerAt(1);
    ASSERT_TRUE(r1.admission().tryAdmitCbr(
        diamond.portTowards(1, 3), r1.admission().reservableCycles()));

    unsigned epb_ok = 0, greedy_ok = 0;
    for (int i = 0; i < 8; ++i) {
        const auto te = net->openCbrTimed(0, 3, 1 * kMbps, kernel.now(),
                                          SetupPolicy::Epb);
        const auto *re = await(te);
        ASSERT_NE(re, nullptr);
        if (re->accepted) {
            ++epb_ok;
            net->closeConnection(re->id);
            kernel.run(20);
        }
        const auto tg = net->openCbrTimed(0, 3, 1 * kMbps, kernel.now(),
                                          SetupPolicy::Greedy);
        const auto *rg = await(tg);
        ASSERT_NE(rg, nullptr);
        if (rg->accepted) {
            ++greedy_ok;
            net->closeConnection(rg->id);
            kernel.run(20);
        }
    }
    EXPECT_EQ(epb_ok, 8u);
    EXPECT_LT(greedy_ok, 8u);
}

} // namespace
} // namespace mmr
