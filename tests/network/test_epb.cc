/**
 * @file
 * Tests for connection establishment with Exhaustive Profitable
 * Backtracking (§3.5, §4.2): reservation correctness, backtracking
 * around saturated links, full-rollback on rejection, and the greedy
 * baseline's weaker acceptance.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "network/epb.hh"
#include "network/topology.hh"

namespace mmr
{
namespace
{

/** A bank of routers shaped for a topology, usable by establishPath. */
class EpbTest : public ::testing::Test
{
  protected:
    void
    build(const Topology &t)
    {
        topo = std::make_unique<Topology>(t);
        routers.clear();
        for (NodeId n = 0; n < t.numNodes(); ++n) {
            RouterConfig rc;
            rc.numPorts = t.degree(n) + 1;
            rc.vcsPerPort = 8;
            rc.candidates = 2;
            rc.seed = n + 1;
            routers.push_back(std::make_unique<MmrRouter>(rc));
        }
    }

    SetupResult
    establish(NodeId src, NodeId dst, unsigned cycles,
              SetupPolicy policy = SetupPolicy::Epb,
              std::uint64_t seed = 1)
    {
        SetupRequest req;
        req.src = src;
        req.dst = dst;
        req.klass = TrafficClass::CBR;
        req.allocCycles = cycles;
        Rng rng(seed);
        return establishPath(
            *topo, [this](NodeId n) -> MmrRouter & { return *routers[n]; },
            [this](NodeId n) { return static_cast<PortId>(topo->degree(n)); },
            req, policy, rng);
    }

    void
    releaseAll(const SetupResult &sr, unsigned cycles)
    {
        for (const ReservedHop &hop : sr.hops) {
            routers[hop.node]->routing().freeOutputVc(hop.out, hop.outVc);
            routers[hop.node]->admission().releaseCbr(hop.out, cycles);
        }
    }

    unsigned
    totalAllocated() const
    {
        unsigned total = 0;
        for (NodeId n = 0; n < topo->numNodes(); ++n)
            for (PortId p = 0; p < topo->degree(n) + 1; ++p)
                total += routers[n]->admission().allocatedCycles(p);
        return total;
    }

    std::unique_ptr<Topology> topo;
    std::vector<std::unique_ptr<MmrRouter>> routers;
};

TEST_F(EpbTest, FindsThePathOnALine)
{
    Topology line(3);
    line.addLink(0, 1);
    line.addLink(1, 2);
    build(line);

    const SetupResult sr = establish(0, 2, 10);
    ASSERT_TRUE(sr.accepted);
    // Hops: router 0 -> link to 1, router 1 -> link to 2, router 2 ->
    // NI port.
    ASSERT_EQ(sr.hops.size(), 3u);
    EXPECT_EQ(sr.hops[0].node, 0u);
    EXPECT_EQ(sr.hops[1].node, 1u);
    EXPECT_EQ(sr.hops[2].node, 2u);
    EXPECT_EQ(sr.hops[2].out, topo->degree(2));
    EXPECT_EQ(sr.forwardSteps, 2u);
    EXPECT_EQ(sr.backtrackSteps, 0u);
    // Bandwidth charged on every hop.
    EXPECT_EQ(totalAllocated(), 30u);
}

TEST_F(EpbTest, ProbesStayOnMinimalPaths)
{
    const Topology mesh = Topology::mesh2d(3, 3);
    build(mesh);
    const SetupResult sr = establish(0, 8, 5);
    ASSERT_TRUE(sr.accepted);
    // Minimal path 0 -> 8 has 4 links, plus the destination NI hop.
    EXPECT_EQ(sr.hops.size(), mesh.distance(0, 8) + 1);
}

TEST_F(EpbTest, BacktracksAroundASaturatedLink)
{
    // Diamond: 0 - {1, 2} - 3.  Saturate 1->3; EPB must settle on the
    // 0-2-3 detour after backtracking, greedy may fail if it tries
    // the saturated branch first.
    Topology diamond(4);
    diamond.addLink(0, 1);
    diamond.addLink(0, 2);
    diamond.addLink(1, 3);
    diamond.addLink(2, 3);
    build(diamond);

    // Saturate the 1 -> 3 link completely.
    const PortId p13 = diamond.portTowards(1, 3);
    const unsigned round = routers[1]->config().cyclesPerRound();
    ASSERT_TRUE(routers[1]->admission().tryAdmitCbr(p13, round));

    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const SetupResult sr = establish(0, 3, 4, SetupPolicy::Epb, seed);
        ASSERT_TRUE(sr.accepted) << "EPB must find the detour";
        // Path must go through node 2.
        bool via2 = false;
        for (const ReservedHop &h : sr.hops)
            via2 |= (h.node == 2);
        EXPECT_TRUE(via2);
        releaseAll(sr, 4);
    }
}

TEST_F(EpbTest, GreedyFailsWhereEpbSucceeds)
{
    Topology diamond(4);
    diamond.addLink(0, 1);
    diamond.addLink(0, 2);
    diamond.addLink(1, 3);
    diamond.addLink(2, 3);
    build(diamond);
    const PortId p13 = diamond.portTowards(1, 3);
    const unsigned round = routers[1]->config().cyclesPerRound();
    ASSERT_TRUE(routers[1]->admission().tryAdmitCbr(p13, round));

    unsigned greedy_fail = 0, epb_fail = 0;
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        const SetupResult g =
            establish(0, 3, 4, SetupPolicy::Greedy, seed);
        if (!g.accepted)
            ++greedy_fail;
        else
            releaseAll(g, 4);
        const SetupResult e = establish(0, 3, 4, SetupPolicy::Epb, seed);
        if (!e.accepted)
            ++epb_fail;
        else
            releaseAll(e, 4);
    }
    EXPECT_EQ(epb_fail, 0u);
    EXPECT_GT(greedy_fail, 0u)
        << "greedy dead-ends when it picks the saturated branch";
}

TEST_F(EpbTest, RejectionRollsBackEveryReservation)
{
    Topology line(3);
    line.addLink(0, 1);
    line.addLink(1, 2);
    build(line);
    // Saturate the last link 1 -> 2: no path can exist.
    const PortId p12 = line.portTowards(1, 2);
    const unsigned round = routers[1]->config().cyclesPerRound();
    ASSERT_TRUE(routers[1]->admission().tryAdmitCbr(p12, round));
    const unsigned baseline = totalAllocated();

    const SetupResult sr = establish(0, 2, 4);
    EXPECT_FALSE(sr.accepted);
    EXPECT_TRUE(sr.hops.empty());
    EXPECT_GT(sr.backtrackSteps, 0u);
    EXPECT_EQ(totalAllocated(), baseline)
        << "failed setup must release everything it reserved";
    // And all VCs are free again.
    for (NodeId n = 0; n < 3; ++n)
        for (PortId p = 0; p < line.degree(n) + 1; ++p)
            EXPECT_EQ(routers[n]->routing().freeOutputVcCount(p), 8u);
}

TEST_F(EpbTest, VcExhaustionBlocksTheLink)
{
    Topology line(2);
    line.addLink(0, 1);
    build(line);
    // Eat all 8 output VCs on 0 -> 1.
    const PortId p01 = line.portTowards(0, 1);
    for (int i = 0; i < 8; ++i)
        ASSERT_NE(routers[0]->routing().allocOutputVc(p01), kInvalidVc);
    const SetupResult sr = establish(0, 1, 1);
    EXPECT_FALSE(sr.accepted)
        << "bandwidth alone is not enough: a VC must be free too";
}

TEST_F(EpbTest, VbrReservationsUseBothRegisters)
{
    Topology line(2);
    line.addLink(0, 1);
    build(line);
    SetupRequest req;
    req.src = 0;
    req.dst = 1;
    req.klass = TrafficClass::VBR;
    // Round is K x V = 16 cycles here; peak must fit within round x
    // concurrency factor (16 x 2 = 32).
    req.permCycles = 10;
    req.peakCycles = 20;
    Rng rng(2);
    const SetupResult sr = establishPath(
        *topo, [this](NodeId n) -> MmrRouter & { return *routers[n]; },
        [this](NodeId n) { return static_cast<PortId>(topo->degree(n)); },
        req, SetupPolicy::Epb, rng);
    ASSERT_TRUE(sr.accepted);
    const PortId p01 = topo->portTowards(0, 1);
    EXPECT_EQ(routers[0]->admission().allocatedCycles(p01), 10u);
    EXPECT_EQ(routers[0]->admission().peakCycles(p01), 20u);
}

TEST_F(EpbTest, ManyConnectionsUntilSaturation)
{
    // Keep opening 1-cycle connections across a line until the
    // network refuses; the refusal point must match link capacity.
    Topology line(3);
    line.addLink(0, 1);
    line.addLink(1, 2);
    build(line);
    const unsigned round = routers[0]->config().cyclesPerRound();
    const unsigned vcs = 8;

    unsigned accepted = 0;
    for (unsigned i = 0; i < round + vcs; ++i) {
        const SetupResult sr =
            establish(0, 2, 1, SetupPolicy::Epb, i + 1);
        if (!sr.accepted)
            break;
        ++accepted;
    }
    // The 8-VC limit binds first (round is much larger than 8).
    EXPECT_EQ(accepted, vcs);
}

} // namespace
} // namespace mmr
