/**
 * @file
 * Integration tests for the multi-router network: end-to-end PCS
 * streams, credit back-pressure across links, teardown, dynamic
 * bandwidth management along a path, and VCT datagram delivery.
 */

#include <gtest/gtest.h>

#include <map>

#include "network/network.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

NetworkConfig
smallNetConfig()
{
    NetworkConfig cfg;
    cfg.router.vcsPerPort = 16;
    cfg.router.vcBufferFlits = 8;
    cfg.router.candidates = 4;
    cfg.router.roundFactorK = 2;
    cfg.linkLatency = 1;
    cfg.seed = 13;
    return cfg;
}

class NetworkTest : public ::testing::Test
{
  protected:
    void
    build(const Topology &t)
    {
        net = std::make_unique<Network>(t, smallNetConfig());
        kernel.add(net.get(), "net");
    }

    void
    run(Cycle cycles)
    {
        kernel.run(cycles);
    }

    std::unique_ptr<Network> net;
    Kernel kernel;
};

TEST_F(NetworkTest, CbrStreamDeliversEndToEndInOrder)
{
    build(Topology::mesh2d(3, 3));
    const auto outcome = net->openCbr(0, 8, 100 * kMbps);
    ASSERT_TRUE(outcome.accepted);
    EXPECT_EQ(outcome.pathLength, 5u); // 4 links + destination NI
    EXPECT_GT(outcome.setupLatencyCycles, 0.0);

    net->endToEnd().startMeasurement(0);
    for (std::uint32_t i = 0; i < 10; ++i) {
        Flit f;
        f.seq = i;
        f.createTime = kernel.now();
        ASSERT_TRUE(net->inject(outcome.id, f, kernel.now()));
        run(13); // stay within the allocated rate
    }
    run(100);
    EXPECT_EQ(net->flitsDelivered(), 10u);
    const ConnectionRecorder *rec =
        net->endToEnd().connection(outcome.id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->delay().count(), 10u);
    // Each of the 4 router hops needs >= 1 cycle of switching plus 1
    // cycle of link latency; the NI hop adds one more switch pass.
    EXPECT_GE(rec->delay().min(), 4.0 * 2.0 + 1.0);
}

TEST_F(NetworkTest, SetupRefusedWhenSaturated)
{
    build(Topology::ring(4));
    // EPB performs "an exhaustive search of the minimal paths": for
    // adjacent ring nodes the only minimal path is the direct link,
    // so acceptance stops when its 16 VCs are gone (the longer way
    // around is non-minimal and never probed).
    unsigned accepted = 0;
    for (int i = 0; i < 64; ++i) {
        const auto o = net->openCbr(0, 1, 64 * kKbps);
        if (o.accepted)
            ++accepted;
        else
            break;
    }
    EXPECT_EQ(accepted, 16u);
    EXPECT_EQ(net->openConnectionCount(), 16u);
}

TEST_F(NetworkTest, TeardownDrainsAndReleases)
{
    build(Topology::mesh2d(2, 2));
    const auto o = net->openCbr(0, 3, 200 * kMbps);
    ASSERT_TRUE(o.accepted);
    const auto path = net->connectionPath(o.id);
    ASSERT_GE(path.size(), 3u);

    for (std::uint32_t i = 0; i < 5; ++i) {
        Flit f;
        f.seq = i;
        ASSERT_TRUE(net->inject(o.id, f, kernel.now()));
        run(7);
    }
    ASSERT_TRUE(net->closeConnection(o.id));
    run(200);
    EXPECT_EQ(net->openConnectionCount(), 0u);
    EXPECT_EQ(net->flitsDelivered(), 5u) << "teardown waits for drain";
    // All admission registers across the network are back to zero.
    for (NodeId n = 0; n < 4; ++n) {
        MmrRouter &r = net->routerAt(n);
        for (PortId p = 0; p < r.config().numPorts; ++p)
            EXPECT_EQ(r.admission().allocatedCycles(p), 0u);
    }
}

TEST_F(NetworkTest, RenegotiateAlongWholePath)
{
    build(Topology::mesh2d(2, 2));
    const auto o = net->openCbr(0, 3, 100 * kMbps);
    ASSERT_TRUE(o.accepted);
    ASSERT_TRUE(net->renegotiateBandwidth(o.id, 400 * kMbps));
    // Every router on the path now carries the bigger reservation.
    for (NodeId n : net->connectionPath(o.id)) {
        const SegmentParams *seg = net->routerAt(n).connection(o.id);
        ASSERT_NE(seg, nullptr);
        EXPECT_GT(seg->allocCycles, 3u);
    }
    // An impossible renegotiation fails atomically.
    EXPECT_FALSE(net->renegotiateBandwidth(o.id, 2.0 * kGbps));
    for (NodeId n : net->connectionPath(o.id)) {
        const SegmentParams *seg = net->routerAt(n).connection(o.id);
        const double granted =
            net->routerAt(n).config().linkRateBps / seg->interArrival;
        EXPECT_NEAR(granted, 400 * kMbps, 1.0)
            << "rollback must restore the previous rate";
    }
}

TEST_F(NetworkTest, VbrPriorityPropagates)
{
    build(Topology::mesh2d(2, 2));
    const auto o = net->openVbr(0, 3, 4 * kMbps, 12 * kMbps, 1);
    ASSERT_TRUE(o.accepted);
    ASSERT_TRUE(net->setConnectionPriority(o.id, 5));
    for (NodeId n : net->connectionPath(o.id))
        EXPECT_EQ(net->routerAt(n).connection(o.id)->priority, 5);
}

TEST_F(NetworkTest, DatagramsDeliverAcrossTheNetwork)
{
    build(Topology::mesh2d(3, 3));
    net->endToEnd().startMeasurement(0);
    std::uint32_t seq = 0;
    for (NodeId src = 0; src < 9; ++src) {
        for (NodeId dst = 0; dst < 9; ++dst) {
            if (src == dst)
                continue;
            net->sendDatagram(src, dst, TrafficClass::BestEffort,
                              0x4000 + src, kernel.now(), seq++);
            run(2);
        }
    }
    run(400);
    EXPECT_EQ(net->datagramsSent(), 72u);
    EXPECT_EQ(net->datagramsDelivered(), 72u);
    EXPECT_EQ(net->datagramDrops(), 0u);
    EXPECT_EQ(net->pendingDatagrams(), 0u);
}

TEST_F(NetworkTest, DatagramBurstToOneHotspotAllArrive)
{
    build(Topology::star(5));
    // Everyone floods node 1 simultaneously; VC-per-hop reservation
    // plus retries must deliver every packet eventually.
    std::uint32_t seq = 0;
    for (int wave = 0; wave < 10; ++wave) {
        for (NodeId src = 2; src <= 5; ++src)
            net->sendDatagram(src, 1, TrafficClass::BestEffort,
                              0x5000 + src, kernel.now(), seq++);
        run(1);
    }
    run(600);
    EXPECT_EQ(net->datagramsDelivered(), net->datagramsSent());
    EXPECT_EQ(net->datagramDrops(), 0u);
}

TEST_F(NetworkTest, ControlDatagramsAlsoDeliver)
{
    build(Topology::ring(5));
    net->sendDatagram(0, 2, TrafficClass::Control, 0x6000,
                      kernel.now());
    run(100);
    EXPECT_EQ(net->datagramsDelivered(), 1u);
}

TEST_F(NetworkTest, LocalDatagramShortCircuits)
{
    build(Topology::ring(3));
    net->sendDatagram(1, 1, TrafficClass::BestEffort, 0x7000,
                      kernel.now());
    EXPECT_EQ(net->datagramsDelivered(), 1u);
}

TEST_F(NetworkTest, StreamsAndDatagramsCoexist)
{
    build(Topology::mesh2d(3, 3));
    const auto o = net->openCbr(0, 8, 300 * kMbps);
    ASSERT_TRUE(o.accepted);
    std::uint32_t injected = 0;
    std::uint32_t dg = 0;
    for (Cycle t = 0; t < 600; ++t) {
        if (t % 5 == 0) {
            Flit f;
            f.seq = injected++;
            ASSERT_TRUE(net->inject(o.id, f, kernel.now()));
        }
        if (t % 11 == 0) {
            net->sendDatagram(4, 2, TrafficClass::BestEffort, 0x8000,
                              kernel.now(), dg++);
        }
        run(1);
    }
    run(300);
    EXPECT_EQ(net->datagramsDelivered(), dg);
    const ConnectionRecorder *rec = net->endToEnd().connection(o.id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->flitCount(), injected);
}

TEST_F(NetworkTest, GreedySetupPolicyIsSupported)
{
    build(Topology::mesh2d(3, 3));
    const auto o =
        net->openCbr(0, 8, 100 * kMbps, SetupPolicy::Greedy);
    EXPECT_TRUE(o.accepted) << "greedy works fine on an empty network";
    EXPECT_EQ(o.backtrackSteps, 0u);
}

TEST_F(NetworkTest, CreditBackpressureReachesTheSource)
{
    // Two saturating streams share one ring link; the switch can only
    // carry one flit per cycle, so sources see inject() refusals once
    // buffers fill (flow control reaching the interface, §4.2).
    build(Topology::ring(4));
    const auto a = net->openCbr(0, 2, 1.0 * kGbps);
    ASSERT_TRUE(a.accepted);
    std::uint32_t rejected = 0;
    for (Cycle t = 0; t < 300; ++t) {
        Flit f1, f2;
        if (!net->inject(a.id, f1, kernel.now()))
            ++rejected;
        if (!net->inject(a.id, f2, kernel.now()))
            ++rejected;
        run(1);
    }
    EXPECT_GT(rejected, 0u)
        << "injecting 2 flits/cycle into a 1 flit/cycle path must "
           "back-pressure";
    EXPECT_GT(net->injectRejects(), 0u);
}

} // namespace
} // namespace mmr
