/**
 * @file
 * Unit and property tests for the topology builders and graph queries.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "network/topology.hh"

namespace mmr
{
namespace
{

TEST(Topology, Mesh2dStructure)
{
    const Topology t = Topology::mesh2d(3, 2);
    EXPECT_EQ(t.numNodes(), 6u);
    EXPECT_EQ(t.numLinks(), 7u); // 2*2 horizontal + 3 vertical
    EXPECT_TRUE(t.connected());
    // Corner degree 2, edge degree 3.
    EXPECT_EQ(t.degree(0), 2u);
    EXPECT_EQ(t.degree(1), 3u);
    EXPECT_EQ(t.maxDegree(), 3u);
}

TEST(Topology, Mesh2dDistancesAreManhattan)
{
    const Topology t = Topology::mesh2d(4, 4);
    auto id = [](unsigned x, unsigned y) { return y * 4 + x; };
    EXPECT_EQ(t.distance(id(0, 0), id(3, 3)), 6u);
    EXPECT_EQ(t.distance(id(1, 2), id(2, 0)), 3u);
    EXPECT_EQ(t.distance(id(2, 2), id(2, 2)), 0u);
}

TEST(Topology, Torus2dWrapsAround)
{
    const Topology t = Topology::torus2d(4, 4);
    EXPECT_EQ(t.numNodes(), 16u);
    EXPECT_EQ(t.numLinks(), 32u);
    for (NodeId n = 0; n < 16; ++n)
        EXPECT_EQ(t.degree(n), 4u);
    // Opposite corners are 2 hops away thanks to the wrap links.
    EXPECT_EQ(t.distance(0, 15), 2u);
}

TEST(Topology, RingAndStar)
{
    const Topology ring = Topology::ring(6);
    EXPECT_EQ(ring.numLinks(), 6u);
    EXPECT_EQ(ring.distance(0, 3), 3u);
    EXPECT_EQ(ring.distance(0, 5), 1u);

    const Topology star = Topology::star(5);
    EXPECT_EQ(star.numNodes(), 6u);
    EXPECT_EQ(star.degree(0), 5u);
    EXPECT_EQ(star.distance(1, 5), 2u);
}

TEST(Topology, PortWiringIsConsistent)
{
    const Topology t = Topology::mesh2d(3, 3);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        for (const auto &p : t.ports(n)) {
            EXPECT_EQ(t.neighborAt(n, p.localPort), p.neighbor);
            // The remote side points back through remotePort.
            const auto &back = t.ports(p.neighbor)[p.remotePort];
            EXPECT_EQ(back.neighbor, n);
            EXPECT_EQ(back.remotePort, p.localPort);
            EXPECT_EQ(t.portTowards(n, p.neighbor), p.localPort);
        }
    }
    EXPECT_EQ(t.portTowards(0, 8), kInvalidPort) << "not adjacent";
}

TEST(Topology, DuplicateAndSelfLinksAreFatal)
{
    Topology t(3);
    t.addLink(0, 1);
    EXPECT_THROW(t.addLink(1, 0), std::runtime_error);
    EXPECT_THROW(t.addLink(2, 2), std::runtime_error);
}

class IrregularTopologyProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IrregularTopologyProperty, ConnectedAndDegreeBounded)
{
    Rng rng(GetParam());
    const unsigned n = 16;
    const unsigned max_degree = 4;
    const Topology t = Topology::irregular(n, 6, max_degree, rng);
    EXPECT_EQ(t.numNodes(), n);
    EXPECT_TRUE(t.connected());
    EXPECT_GE(t.numLinks(), n - 1) << "at least a spanning tree";
    for (NodeId i = 0; i < n; ++i)
        EXPECT_LE(t.degree(i), max_degree);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrregularTopologyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Topology, MultistageButterflyShape)
{
    // 2-ary 3-stage butterfly: 4 switches per stage, 12 nodes.
    const Topology t = Topology::multistage(2, 3);
    EXPECT_EQ(t.numNodes(), 12u);
    EXPECT_TRUE(t.connected());
    // End stages have radix links, middle stages 2*radix.
    for (NodeId n = 0; n < 4; ++n) {
        EXPECT_EQ(t.degree(n), 2u) << "stage 0 node " << n;
        EXPECT_EQ(t.degree(8 + n), 2u) << "stage 2 node " << n;
        EXPECT_EQ(t.degree(4 + n), 4u) << "stage 1 node " << n;
    }
    // Stage 0 switch 0 varies the most significant digit: reaches
    // stage-1 switches 0 and 2.
    EXPECT_TRUE(t.hasLink(0, 4));
    EXPECT_TRUE(t.hasLink(0, 6));
    EXPECT_FALSE(t.hasLink(0, 5));
    // No links within a stage or skipping a stage.
    EXPECT_FALSE(t.hasLink(0, 1));
    EXPECT_FALSE(t.hasLink(0, 8));
}

TEST(Topology, MultistageScalesToThousandsOfRouters)
{
    // radix 4, 6 stages: 4^5 = 1024 switches per stage, 6144 total —
    // the >=1024-router regime of the scaling bench.
    const Topology t = Topology::multistage(4, 6);
    EXPECT_EQ(t.numNodes(), 6u * 1024u);
    EXPECT_EQ(t.degree(0), 4u);
    EXPECT_EQ(t.degree(1024), 8u);
    EXPECT_TRUE(t.connected());
}

TEST(Topology, FatTreeShape)
{
    // k=4: 4 cores, 4 pods x (2 agg + 2 edge) = 20 nodes.
    const Topology t = Topology::fatTree(4);
    EXPECT_EQ(t.numNodes(), 20u);
    EXPECT_TRUE(t.connected());
    for (NodeId c = 0; c < 4; ++c)
        EXPECT_EQ(t.degree(c), 4u) << "core " << c << " links to "
                                      "one agg per pod";
    for (unsigned pod = 0; pod < 4; ++pod) {
        for (unsigned j = 0; j < 2; ++j) {
            EXPECT_EQ(t.degree(4 + pod * 4 + j), 4u)
                << "agg " << j << " of pod " << pod;
            EXPECT_EQ(t.degree(4 + pod * 4 + 2 + j), 2u)
                << "edge " << j << " of pod " << pod;
        }
    }
    // Aggregation switch 0 of pod 0 uplinks to cores 0 and 1 only.
    EXPECT_TRUE(t.hasLink(4, 0));
    EXPECT_TRUE(t.hasLink(4, 1));
    EXPECT_FALSE(t.hasLink(4, 2));
}

TEST(Topology, LeafSpineShape)
{
    const Topology t = Topology::leafSpine(3, 6);
    EXPECT_EQ(t.numNodes(), 9u);
    EXPECT_TRUE(t.connected());
    for (NodeId s = 0; s < 3; ++s)
        EXPECT_EQ(t.degree(s), 6u) << "spine " << s;
    for (NodeId l = 3; l < 9; ++l)
        EXPECT_EQ(t.degree(l), 3u) << "leaf " << l;
    EXPECT_FALSE(t.hasLink(0, 1)) << "no spine-spine links";
    EXPECT_FALSE(t.hasLink(3, 4)) << "no leaf-leaf links";
}

} // namespace
} // namespace mmr
