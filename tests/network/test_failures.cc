/**
 * @file
 * Fault-injection tests: link failures must lose only the flits on
 * the dead wire, tear the affected connections down cleanly (all
 * admission and VC state released), reroute datagrams over the
 * surviving up*-down* structure, keep probes away from dead links,
 * and let interfaces re-establish their streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "network/interface.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

NetworkConfig
cfg()
{
    NetworkConfig c;
    c.router.vcsPerPort = 16;
    c.router.candidates = 4;
    c.seed = 23;
    return c;
}

class FailureTest : public ::testing::Test
{
  protected:
    void
    build(const Topology &t)
    {
        net = std::make_unique<Network>(t, cfg());
        kernel.add(net.get());
    }

    std::unique_ptr<Network> net;
    Kernel kernel;
};

TEST_F(FailureTest, FailLinkValidation)
{
    build(Topology::ring(4));
    EXPECT_FALSE(net->failLink(0, 2)) << "not adjacent";
    EXPECT_TRUE(net->failLink(0, 1));
    EXPECT_FALSE(net->failLink(0, 1)) << "already down";
    EXPECT_FALSE(net->linkIsUp(0, 1));
    EXPECT_FALSE(net->linkIsUp(1, 0));
    EXPECT_TRUE(net->linkIsUp(1, 2));
    EXPECT_TRUE(net->repairLink(0, 1));
    EXPECT_TRUE(net->linkIsUp(0, 1));
    EXPECT_FALSE(net->repairLink(0, 1)) << "already up";
}

TEST_F(FailureTest, ConnectionsCrossingTheLinkFail)
{
    build(Topology::ring(4));
    const auto o = net->openCbr(0, 1, 10 * kMbps);
    ASSERT_TRUE(o.accepted);
    const auto other = net->openCbr(2, 3, 10 * kMbps);
    ASSERT_TRUE(other.accepted);

    ASSERT_TRUE(net->failLink(0, 1));
    EXPECT_EQ(net->connectionState(o.id), Network::ConnState::Failed);
    EXPECT_EQ(net->connectionState(other.id), Network::ConnState::Open)
        << "connections elsewhere are untouched";
    EXPECT_EQ(net->connectionsFailed(), 1u);
    EXPECT_FALSE(net->inject(o.id, Flit{}, kernel.now()))
        << "a failed connection refuses new flits";

    // The failed connection drains away completely.
    kernel.run(50);
    EXPECT_EQ(net->connectionState(o.id), Network::ConnState::Gone);
    // Its resources on the surviving side are released.
    MmrRouter &r0 = net->routerAt(0);
    const Topology &t = net->topology();
    EXPECT_EQ(r0.admission().allocatedCycles(t.portTowards(0, 1)), 0u);
    EXPECT_EQ(r0.routing().freeOutputVcCount(t.portTowards(0, 1)), 16u);
}

// Regression: failLink() used to walk the PCS table in unordered_map
// bucket order, so the connection-failure hook fired in an order that
// depended on the standard library's hash layout — and since the
// recovery manager draws backoff jitter from its RNG per hook call,
// the whole recovery schedule (and every digest downstream of it)
// inherited that layout.  The teardown walk must visit crossing
// connections in ascending id order, always.
TEST_F(FailureTest, FailureHookFiresInAscendingIdOrder)
{
    build(Topology::ring(4));
    // Many connections over the same link so several hash layouts
    // would disagree about the visit order.
    std::vector<ConnId> opened;
    for (int i = 0; i < 12; ++i) {
        const auto o = net->openCbr(0, 1, 1 * kMbps);
        ASSERT_TRUE(o.accepted) << "connection " << i;
        opened.push_back(o.id);
    }
    std::vector<ConnId> fired;
    net->setConnectionFailureHook(
        [&fired](ConnId id, NodeId, NodeId, TrafficClass) {
            fired.push_back(id);
        });
    ASSERT_TRUE(net->failLink(0, 1));
    ASSERT_EQ(fired.size(), opened.size());
    for (std::size_t i = 1; i < fired.size(); ++i)
        EXPECT_LT(fired[i - 1], fired[i])
            << "hook order must be ascending by connection id, not "
               "hash-bucket order";
    // And the set is exactly the connections that crossed the link.
    std::sort(opened.begin(), opened.end());
    EXPECT_EQ(fired, opened);
}

TEST_F(FailureTest, InFlightFlitsAreLostNotWedged)
{
    build(Topology::ring(4));
    const auto o = net->openCbr(0, 1, 1.0 * kGbps);
    ASSERT_TRUE(o.accepted);
    // Fill the pipe, then cut the wire mid-stream.
    for (int i = 0; i < 6; ++i) {
        Flit f;
        f.seq = static_cast<std::uint32_t>(i);
        net->inject(o.id, f, kernel.now());
        kernel.step();
    }
    const auto delivered_before = net->flitsDelivered();
    ASSERT_TRUE(net->failLink(0, 1));
    kernel.run(100);
    EXPECT_GT(net->flitsLostToFailures(), 0u);
    // Whatever was not lost was delivered; nothing is stuck.
    EXPECT_EQ(net->connectionState(o.id), Network::ConnState::Gone);
    EXPECT_GE(net->flitsDelivered(), delivered_before);
}

TEST_F(FailureTest, DatagramsRerouteAroundTheFailure)
{
    build(Topology::ring(5));
    ASSERT_TRUE(net->failLink(0, 1));
    // 0 -> 1 must now go the long way round; it still arrives.
    net->sendDatagram(0, 1, TrafficClass::BestEffort, 0x11, kernel.now());
    kernel.run(200);
    EXPECT_EQ(net->datagramsDelivered(), 1u);
    EXPECT_EQ(net->datagramDrops(), 0u);
    const auto *rec = net->endToEnd().connection(0x11);
    ASSERT_NE(rec, nullptr);
    // 4 hops x (switch + link) instead of 1: visibly longer.
    EXPECT_GE(rec->delay().min(), 8.0);
}

TEST_F(FailureTest, PartitionDropsUnroutableDatagrams)
{
    Topology line(3);
    line.addLink(0, 1);
    line.addLink(1, 2);
    build(line);
    ASSERT_TRUE(net->failLink(1, 2));
    net->sendDatagram(0, 2, TrafficClass::BestEffort, 0x12, kernel.now());
    kernel.run(100);
    EXPECT_EQ(net->datagramsDelivered(), 0u);
    EXPECT_EQ(net->datagramDrops(), 1u) << "no route: counted drop";
    // Repair restores connectivity for subsequent traffic.
    ASSERT_TRUE(net->repairLink(1, 2));
    net->sendDatagram(0, 2, TrafficClass::BestEffort, 0x13, kernel.now());
    kernel.run(100);
    EXPECT_EQ(net->datagramsDelivered(), 1u);
}

TEST_F(FailureTest, NewSetupsAvoidDeadLinks)
{
    build(Topology::ring(4));
    ASSERT_TRUE(net->failLink(0, 1));
    // Algorithmic setup: the minimal path over the dead link is gone;
    // the long way round (0-3-2-1) is now the only minimal surviving
    // path.
    const auto o = net->openCbr(0, 1, 10 * kMbps);
    ASSERT_TRUE(o.accepted);
    const auto path = net->connectionPath(o.id);
    ASSERT_EQ(path.size(), 4u); // 0, 3, 2, 1
    EXPECT_EQ(path[1], 3u);

    // Timed probe: same avoidance.
    const auto token = net->openCbrTimed(0, 1, 10 * kMbps, kernel.now());
    kernel.run(200);
    const auto *r = net->timedResult(token);
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->accepted);
    EXPECT_EQ(r->pathLength, 4u);
}

TEST_F(FailureTest, SetupRefusedAcrossAPartition)
{
    Topology line(2);
    line.addLink(0, 1);
    build(line);
    ASSERT_TRUE(net->failLink(0, 1));
    EXPECT_FALSE(net->openCbr(0, 1, 10 * kMbps).accepted);
    const auto token = net->openCbrTimed(0, 1, 10 * kMbps, kernel.now());
    kernel.run(50);
    const auto *r = net->timedResult(token);
    ASSERT_NE(r, nullptr);
    EXPECT_FALSE(r->accepted);
}

TEST_F(FailureTest, InterfaceReestablishesItsStreams)
{
    build(Topology::ring(4));
    NetworkInterface ni(*net, 0, 99);
    ni.setAutoReestablish(true);
    ASSERT_TRUE(ni.openCbrStream(1, 10 * kMbps));

    for (Cycle t = 0; t < 500; ++t) {
        ni.tick(kernel.now());
        kernel.step();
    }
    ASSERT_TRUE(net->failLink(0, 1));
    for (Cycle t = 0; t < 2000; ++t) {
        ni.tick(kernel.now());
        kernel.step();
    }
    EXPECT_EQ(ni.lostStreams(), 1u);
    EXPECT_EQ(ni.reestablishedStreams(), 1u);
    EXPECT_EQ(ni.establishedStreams(), 1u);
    // The replacement connection flows over the surviving path.
    const auto conns = ni.connections();
    ASSERT_EQ(conns.size(), 1u);
    EXPECT_EQ(net->connectionState(conns[0]),
              Network::ConnState::Open);
    const auto path = net->connectionPath(conns[0]);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path[1], 3u) << "rerouted the long way round";
}

TEST_F(FailureTest, WithoutAutoReestablishStreamsAreRetired)
{
    build(Topology::ring(4));
    NetworkInterface ni(*net, 0, 100);
    ASSERT_TRUE(ni.openCbrStream(1, 10 * kMbps));
    ASSERT_TRUE(net->failLink(0, 1));
    for (Cycle t = 0; t < 100; ++t) {
        ni.tick(kernel.now());
        kernel.step();
    }
    EXPECT_EQ(ni.lostStreams(), 1u);
    EXPECT_EQ(ni.reestablishedStreams(), 0u);
    EXPECT_EQ(ni.establishedStreams(), 0u);
}

TEST_F(FailureTest, SurvivingTrafficKeepsFlowing)
{
    build(Topology::mesh2d(3, 3));
    const auto keep = net->openCbr(6, 8, 100 * kMbps);
    ASSERT_TRUE(keep.accepted);
    ASSERT_TRUE(net->failLink(0, 1));
    net->endToEnd().startMeasurement(0);
    for (std::uint32_t i = 0; i < 10; ++i) {
        Flit f;
        f.seq = i;
        ASSERT_TRUE(net->inject(keep.id, f, kernel.now()));
        kernel.run(13);
    }
    kernel.run(100);
    const auto *rec = net->endToEnd().connection(keep.id);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->delay().count(), 10u);
}

} // namespace
} // namespace mmr
