/**
 * @file
 * Tests for the steady-state detector (§5 methodology) and its use by
 * the experiment harness for automatic warm-up sizing.
 */

#include <gtest/gtest.h>

#include "harness/single_router.hh"
#include "metrics/steady_state.hh"

namespace mmr
{
namespace
{

TEST(SteadyState, DeclaresAfterConsecutiveAgreement)
{
    SteadyStateDetector det(1000, 0.10, 3);
    // Ramp-up: large jumps keep it unsteady.
    det.addWindow(10.0);
    det.addWindow(20.0);
    det.addWindow(35.0);
    EXPECT_FALSE(det.steady());
    // Plateau: three agreeing transitions declare steadiness.
    det.addWindow(36.0);
    det.addWindow(36.5);
    EXPECT_FALSE(det.steady());
    det.addWindow(36.2);
    EXPECT_TRUE(det.steady());
    EXPECT_EQ(det.steadyAtWindow(), 5u);
    EXPECT_EQ(det.steadyAtCycle(), 6000u);
}

TEST(SteadyState, DisagreementResetsTheStreak)
{
    SteadyStateDetector det(100, 0.05, 2);
    det.addWindow(10.0);
    det.addWindow(10.1); // agree (1)
    det.addWindow(20.0); // jump: reset
    det.addWindow(20.1); // agree (1)
    EXPECT_FALSE(det.steady());
    det.addWindow(20.0); // agree (2)
    EXPECT_TRUE(det.steady());
}

TEST(SteadyState, HandlesZeroesGracefully)
{
    SteadyStateDetector det(100, 0.10, 2);
    det.addWindow(0.0);
    det.addWindow(0.0);
    det.addWindow(0.0);
    EXPECT_TRUE(det.steady()) << "an idle system is trivially steady";
}

TEST(SteadyState, StaysSteadyOnceDeclared)
{
    SteadyStateDetector det(100, 0.10, 1);
    det.addWindow(5.0);
    det.addWindow(5.1);
    ASSERT_TRUE(det.steady());
    const auto at = det.steadyAtWindow();
    det.addWindow(500.0); // later turbulence does not un-declare
    EXPECT_TRUE(det.steady());
    EXPECT_EQ(det.steadyAtWindow(), at);
}

TEST(SteadyState, NeverSteadyStreamNeverDeclares)
{
    // An oscillating metric (e.g. a bistable queue) must not be
    // declared steady no matter how long it runs.
    SteadyStateDetector det(1000, 0.10, 3);
    for (int i = 0; i < 500; ++i)
        det.addWindow(i % 2 ? 100.0 : 10.0);
    EXPECT_FALSE(det.steady());
    EXPECT_EQ(det.windowsSeen(), 500u);
}

TEST(SteadyState, ToleranceBoundaryCountsAsAgreement)
{
    // |100 - 90| / max(100, 90) == 0.10 exactly: agreement is <=.
    SteadyStateDetector det(100, 0.10, 2);
    det.addWindow(90.0);
    det.addWindow(100.0); // exactly on the boundary: agree (1)
    det.addWindow(90.0);  // boundary again: agree (2)
    EXPECT_TRUE(det.steady());
}

TEST(SteadyState, JustBeyondToleranceResets)
{
    SteadyStateDetector det(100, 0.10, 1);
    det.addWindow(89.0);
    det.addWindow(100.0); // 11/100 = 0.11 > 0.10: disagree
    EXPECT_FALSE(det.steady());
}

TEST(SteadyState, NegativeValuesUseAbsoluteScale)
{
    // Metrics can legitimately go negative (e.g. a drift estimate);
    // the relative-agreement scale uses magnitudes.
    SteadyStateDetector det(100, 0.10, 2);
    det.addWindow(-50.0);
    det.addWindow(-52.0);
    det.addWindow(-51.0);
    EXPECT_TRUE(det.steady());

    SteadyStateDetector flip(100, 0.10, 1);
    flip.addWindow(-50.0);
    flip.addWindow(50.0); // sign flip: 100/50 = 2.0 >> tol
    EXPECT_FALSE(flip.steady());
}

TEST(SteadyState, ZeroThenNonzeroDisagrees)
{
    // From exactly 0 to any nonzero value, the relative change is
    // ~1.0 regardless of magnitude: never a silent pass.
    SteadyStateDetector det(100, 0.10, 1);
    det.addWindow(0.0);
    det.addWindow(1e-6);
    EXPECT_FALSE(det.steady());
}

TEST(SteadyState, SteadyAtCycleArithmetic)
{
    // steadyAtCycle() = (index of the declaring window + 1) x window
    // length: the cycle count *consumed* when steadiness appeared.
    SteadyStateDetector det(250, 0.10, 1);
    det.addWindow(7.0);
    EXPECT_FALSE(det.steady()) << "one window can never be steady";
    det.addWindow(7.1);
    ASSERT_TRUE(det.steady());
    EXPECT_EQ(det.steadyAtWindow(), 1u);
    EXPECT_EQ(det.steadyAtCycle(), 500u);

    // With a longer requirement the declaring window moves out.
    SteadyStateDetector det3(250, 0.10, 3);
    for (double v : {7.0, 7.1, 7.0, 7.1})
        det3.addWindow(v);
    ASSERT_TRUE(det3.steady());
    EXPECT_EQ(det3.steadyAtWindow(), 3u);
    EXPECT_EQ(det3.steadyAtCycle(), 1000u);
}

TEST(SteadyState, RejectsDegenerateWindowParameters)
{
    // Cycle is unsigned, so "negative" lengths arrive as zero or as a
    // huge wrapped value; zero must be refused outright, as must
    // non-positive tolerances and a zero stable-window requirement.
    EXPECT_DEATH(SteadyStateDetector(0, 0.10, 3), "window length");
    EXPECT_DEATH(SteadyStateDetector(100, 0.0, 3), "tolerance");
    EXPECT_DEATH(SteadyStateDetector(100, -0.5, 3), "tolerance");
    EXPECT_DEATH(SteadyStateDetector(100, 0.10, 0), "stable window");
}

TEST(SteadyStateHarness, AutoWarmupProducesSaneResults)
{
    ExperimentConfig cfg;
    cfg.router.numPorts = 4;
    cfg.router.vcsPerPort = 32;
    cfg.offeredLoad = 0.6;
    cfg.autoWarmup = true;
    cfg.warmupWindow = 1000;
    cfg.maxWarmupCycles = 50000;
    cfg.measureCycles = 10000;
    cfg.seed = 3;
    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_GT(r.warmupUsed, 0u);
    EXPECT_LE(r.warmupUsed, 50000u);
    EXPECT_LT(r.warmupUsed, 50000u)
        << "a 60% load settles well before the cap";
    EXPECT_GT(r.flitsDelivered, 0u);
    EXPECT_NEAR(r.utilization, r.achievedLoad, 0.06);
}

TEST(SteadyStateHarness, FixedWarmupStillWorks)
{
    ExperimentConfig cfg;
    cfg.router.numPorts = 4;
    cfg.router.vcsPerPort = 32;
    cfg.offeredLoad = 0.5;
    cfg.warmupCycles = 3000;
    cfg.measureCycles = 5000;
    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_EQ(r.warmupUsed, 3000u);
}

} // namespace
} // namespace mmr
