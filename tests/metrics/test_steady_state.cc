/**
 * @file
 * Tests for the steady-state detector (§5 methodology) and its use by
 * the experiment harness for automatic warm-up sizing.
 */

#include <gtest/gtest.h>

#include "harness/single_router.hh"
#include "metrics/steady_state.hh"

namespace mmr
{
namespace
{

TEST(SteadyState, DeclaresAfterConsecutiveAgreement)
{
    SteadyStateDetector det(1000, 0.10, 3);
    // Ramp-up: large jumps keep it unsteady.
    det.addWindow(10.0);
    det.addWindow(20.0);
    det.addWindow(35.0);
    EXPECT_FALSE(det.steady());
    // Plateau: three agreeing transitions declare steadiness.
    det.addWindow(36.0);
    det.addWindow(36.5);
    EXPECT_FALSE(det.steady());
    det.addWindow(36.2);
    EXPECT_TRUE(det.steady());
    EXPECT_EQ(det.steadyAtWindow(), 5u);
    EXPECT_EQ(det.steadyAtCycle(), 6000u);
}

TEST(SteadyState, DisagreementResetsTheStreak)
{
    SteadyStateDetector det(100, 0.05, 2);
    det.addWindow(10.0);
    det.addWindow(10.1); // agree (1)
    det.addWindow(20.0); // jump: reset
    det.addWindow(20.1); // agree (1)
    EXPECT_FALSE(det.steady());
    det.addWindow(20.0); // agree (2)
    EXPECT_TRUE(det.steady());
}

TEST(SteadyState, HandlesZeroesGracefully)
{
    SteadyStateDetector det(100, 0.10, 2);
    det.addWindow(0.0);
    det.addWindow(0.0);
    det.addWindow(0.0);
    EXPECT_TRUE(det.steady()) << "an idle system is trivially steady";
}

TEST(SteadyState, StaysSteadyOnceDeclared)
{
    SteadyStateDetector det(100, 0.10, 1);
    det.addWindow(5.0);
    det.addWindow(5.1);
    ASSERT_TRUE(det.steady());
    const auto at = det.steadyAtWindow();
    det.addWindow(500.0); // later turbulence does not un-declare
    EXPECT_TRUE(det.steady());
    EXPECT_EQ(det.steadyAtWindow(), at);
}

TEST(SteadyStateHarness, AutoWarmupProducesSaneResults)
{
    ExperimentConfig cfg;
    cfg.router.numPorts = 4;
    cfg.router.vcsPerPort = 32;
    cfg.offeredLoad = 0.6;
    cfg.autoWarmup = true;
    cfg.warmupWindow = 1000;
    cfg.maxWarmupCycles = 50000;
    cfg.measureCycles = 10000;
    cfg.seed = 3;
    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_GT(r.warmupUsed, 0u);
    EXPECT_LE(r.warmupUsed, 50000u);
    EXPECT_LT(r.warmupUsed, 50000u)
        << "a 60% load settles well before the cap";
    EXPECT_GT(r.flitsDelivered, 0u);
    EXPECT_NEAR(r.utilization, r.achievedLoad, 0.06);
}

TEST(SteadyStateHarness, FixedWarmupStillWorks)
{
    ExperimentConfig cfg;
    cfg.router.numPorts = 4;
    cfg.router.vcsPerPort = 32;
    cfg.offeredLoad = 0.5;
    cfg.warmupCycles = 3000;
    cfg.measureCycles = 5000;
    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_EQ(r.warmupUsed, 3000u);
}

} // namespace
} // namespace mmr
