/**
 * @file
 * Tests for the §5 measurement definitions: delay, jitter as the
 * difference in delays of successive flits, utilization, and the
 * warm-up gate.
 */

#include <gtest/gtest.h>

#include "metrics/recorder.hh"

namespace mmr
{
namespace
{

TEST(ConnectionRecorder, DelayAndJitterDefinitions)
{
    ConnectionRecorder rec;
    rec.record(4.0, true);
    rec.record(6.0, true);  // jitter |6-4| = 2
    rec.record(3.0, true);  // jitter |3-6| = 3
    EXPECT_EQ(rec.flitCount(), 3u);
    EXPECT_EQ(rec.delay().count(), 3u);
    EXPECT_NEAR(rec.delay().mean(), 13.0 / 3.0, 1e-12);
    EXPECT_EQ(rec.jitter().count(), 2u);
    EXPECT_DOUBLE_EQ(rec.jitter().mean(), 2.5);
}

TEST(ConnectionRecorder, WarmupSeedsJitterReference)
{
    ConnectionRecorder rec;
    rec.record(10.0, false); // warm-up flit: not measured...
    rec.record(12.0, true);  // ...but its delay seeds the jitter pair
    EXPECT_EQ(rec.delay().count(), 1u);
    EXPECT_EQ(rec.jitter().count(), 1u);
    EXPECT_DOUBLE_EQ(rec.jitter().mean(), 2.0);
}

TEST(MetricsRecorder, GatesOnMeasurementStart)
{
    MetricsRecorder m;
    m.startMeasurement(100);
    EXPECT_FALSE(m.measuring(99));
    EXPECT_TRUE(m.measuring(100));
    m.recordDeparture(1, 50, 5.0);
    EXPECT_EQ(m.measuredFlits(), 0u);
    m.recordDeparture(1, 150, 7.0);
    EXPECT_EQ(m.measuredFlits(), 1u);
    EXPECT_DOUBLE_EQ(m.meanDelayCycles(), 7.0);
}

TEST(MetricsRecorder, AggregatesAcrossConnections)
{
    MetricsRecorder m;
    m.startMeasurement(0);
    m.recordDeparture(1, 1, 2.0);
    m.recordDeparture(2, 1, 6.0);
    m.recordDeparture(1, 2, 4.0); // conn 1 jitter 2
    m.recordDeparture(2, 2, 6.0); // conn 2 jitter 0
    EXPECT_DOUBLE_EQ(m.meanDelayCycles(), 4.5);
    EXPECT_DOUBLE_EQ(m.meanJitterCycles(), 1.0);
    EXPECT_EQ(m.measuredFlits(), 4u);
    EXPECT_EQ(m.connections().size(), 2u);
    ASSERT_NE(m.connection(1), nullptr);
    EXPECT_EQ(m.connection(1)->flitCount(), 2u);
    EXPECT_EQ(m.connection(99), nullptr);
}

TEST(MetricsRecorder, UtilizationFromSlots)
{
    MetricsRecorder m;
    m.startMeasurement(0);
    m.recordOutputSlot(true, 0);
    m.recordOutputSlot(false, 0);
    EXPECT_DOUBLE_EQ(m.switchUtilization(), 0.5);
    m.recordOutputSlots(3, 4, 1);
    // hits 1+3 = 4, chances 2+4 = 6.
    EXPECT_NEAR(m.switchUtilization(), 4.0 / 6.0, 1e-12);
    // Pre-measurement slots are ignored.
    MetricsRecorder gated;
    gated.startMeasurement(10);
    gated.recordOutputSlot(true, 5);
    EXPECT_DOUBLE_EQ(gated.switchUtilization(), 0.0);
}

TEST(MetricsRecorder, DelayPercentiles)
{
    MetricsRecorder m;
    m.startMeasurement(0);
    for (int i = 1; i <= 100; ++i)
        m.recordDeparture(1, 1, static_cast<double>(i));
    EXPECT_NEAR(m.delayPercentile(50), 50.0, 1.5);
    EXPECT_NEAR(m.delayPercentile(99), 99.0, 1.5);
}

} // namespace
} // namespace mmr
