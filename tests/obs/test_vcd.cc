/**
 * @file
 * Tests for the VCD waveform writer: scope nesting from dotted paths,
 * lazy header/timestamp emission, value deduplication, and wire
 * bit-vector rendering.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/vcd.hh"

namespace mmr
{
namespace
{

TEST(VcdWriter, DottedPathsBecomeNestedScopes)
{
    std::ostringstream os;
    VcdWriter vcd(os);
    vcd.addReal("router0.in0.occupancy");
    vcd.addReal("router0.in1.occupancy");
    vcd.addReal("net.delivered");
    vcd.tick(0); // forces the header out

    const std::string s = os.str();
    EXPECT_NE(s.find("$timescale 1 ns $end"), std::string::npos);
    // Adjacent signals share the open "router0" scope; in0 closes
    // before in1 opens, and net opens at top level afterwards.
    const auto r0 = s.find("$scope module router0 $end");
    const auto in0 = s.find("$scope module in0 $end");
    const auto in1 = s.find("$scope module in1 $end");
    const auto net = s.find("$scope module net $end");
    ASSERT_NE(r0, std::string::npos);
    ASSERT_NE(in0, std::string::npos);
    ASSERT_NE(in1, std::string::npos);
    ASSERT_NE(net, std::string::npos);
    EXPECT_LT(r0, in0);
    EXPECT_LT(in0, in1);
    EXPECT_LT(in1, net);
    // "router0" is opened once, not once per signal.
    EXPECT_EQ(s.find("$scope module router0 $end", r0 + 1),
              std::string::npos);
    EXPECT_NE(s.find("$var real 64 ! occupancy $end"),
              std::string::npos);
    EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdWriter, UnchangedValuesAreDeduplicated)
{
    std::ostringstream os;
    VcdWriter vcd(os);
    const auto id = vcd.addReal("occ");

    vcd.tick(0);
    vcd.set(id, 1.5);
    vcd.tick(10);
    vcd.set(id, 1.5); // unchanged: no record, no "#10" timestamp
    vcd.tick(20);
    vcd.set(id, 2.0);

    const std::string s = os.str();
    EXPECT_NE(s.find("#0\nr1.5 !"), std::string::npos) << s;
    EXPECT_EQ(s.find("#10"), std::string::npos)
        << "a tick with no changes must not emit a timestamp: " << s;
    EXPECT_NE(s.find("#20\nr2 !"), std::string::npos) << s;
}

TEST(VcdWriter, WiresRenderAsBitVectors)
{
    std::ostringstream os;
    VcdWriter vcd(os);
    const auto id = vcd.addWire("flags", 4);
    vcd.tick(3);
    vcd.set(id, std::uint64_t{0b1010});
    EXPECT_NE(os.str().find("#3\nb1010 !"), std::string::npos)
        << os.str();
}

TEST(VcdWriter, SignalCodesStayInThePrintableRange)
{
    std::ostringstream os;
    VcdWriter vcd(os);
    // 100 signals exercises the base-94 rollover ('!'..'~', then two
    // characters).
    for (int i = 0; i < 100; ++i)
        vcd.addReal("s" + std::to_string(i));
    EXPECT_EQ(vcd.signalCount(), 100u);
    vcd.tick(0);
    const std::string s = os.str();
    for (char c : s)
        EXPECT_TRUE(c == '\n' || (c >= ' ' && c <= '~'))
            << "non-printable byte " << int(c);
    // Signal 94 wraps to a two-character code "!\"".
    EXPECT_NE(s.find("$var real 64 !\" s94 $end"), std::string::npos);
}

TEST(VcdWriterDeath, LateRegistrationIsABug)
{
    std::ostringstream os;
    VcdWriter vcd(os);
    vcd.addReal("a");
    vcd.tick(0);
    EXPECT_DEATH(vcd.addReal("b"), "before the first tick");
}

TEST(VcdWriterDeath, TimeMustNotGoBackwards)
{
    std::ostringstream os;
    VcdWriter vcd(os);
    vcd.addReal("a");
    vcd.tick(10);
    EXPECT_DEATH(vcd.tick(5), "backwards");
}

} // namespace
} // namespace mmr
