/**
 * @file
 * Tests for simulator self-profiling: wall-clock attribution through
 * the kernel, the throughput arithmetic every ExperimentResult
 * carries, and the JSON the perf-baseline script consumes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "obs/profiler.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

class Spinner : public Clocked
{
  public:
    void evaluate(Cycle now) override { (void)now; }
    void advance(Cycle now) override
    {
        (void)now;
        // A little real work so the profiled time is nonzero.
        for (int i = 0; i < 1000; ++i)
            sink = sink * 31 + i;
    }
    volatile unsigned sink = 1;
};

TEST(SimProfile, ThroughputArithmetic)
{
    SimProfile p;
    p.wallSeconds = 2.0;
    p.cycles = 1000;
    p.events = 500;
    EXPECT_DOUBLE_EQ(p.cyclesPerSec(), 500.0);
    EXPECT_DOUBLE_EQ(p.eventsPerSec(), 250.0);

    // A zero wall clock (too fast to measure) must not divide by
    // zero: the denominator clamps, so the rate stays finite instead
    // of reporting 0 or inf for a run that clearly did work.
    p.wallSeconds = 0.0;
    EXPECT_TRUE(std::isfinite(p.cyclesPerSec()));
    EXPECT_TRUE(std::isfinite(p.eventsPerSec()));
    EXPECT_GT(p.cyclesPerSec(), 0.0);
    EXPECT_DOUBLE_EQ(p.cyclesPerSec(),
                     1000.0 / SimProfile::kMinWallSeconds);

    // Denormal wall time used to blow straight past the > 0.0 guard
    // and report inf; the clamp covers it too.
    p.wallSeconds = 1e-312;
    EXPECT_TRUE(std::isfinite(p.cyclesPerSec()));
    EXPECT_TRUE(std::isfinite(p.eventsPerSec()));
}

TEST(SimProfile, ZeroWorkReportsZeroThroughput)
{
    // Zero cycles (a run that never stepped) is honest zero whatever
    // the wall clock says — never 0/0 or a clamped junk rate.
    SimProfile p;
    EXPECT_EQ(p.cyclesPerSec(), 0.0);
    EXPECT_EQ(p.eventsPerSec(), 0.0);
    p.wallSeconds = 2.5;
    EXPECT_EQ(p.cyclesPerSec(), 0.0);
    EXPECT_EQ(p.eventsPerSec(), 0.0);
}

TEST(Profiler, CollectWithoutProfilingSkipsAttribution)
{
    Kernel kernel;
    Spinner s;
    kernel.add(&s, "spinner");
    kernel.run(10);

    const SimProfile p = collectProfile(kernel, 0.5, 42);
    EXPECT_EQ(p.cycles, 10u);
    EXPECT_EQ(p.events, 42u);
    EXPECT_DOUBLE_EQ(p.wallSeconds, 0.5);
    EXPECT_TRUE(p.componentSeconds.empty())
        << "attribution is opt-in (it adds clock reads per phase)";
}

TEST(Profiler, EnabledProfilingAttributesWallTime)
{
    Kernel kernel;
    Spinner busy, unnamed;
    kernel.add(&busy, "busy");
    kernel.add(&unnamed); // unnamed: gets a positional name
    kernel.enableProfiling(true);
    kernel.run(50);

    const SimProfile p = collectProfile(kernel, 1.0, 0);
    ASSERT_EQ(p.componentSeconds.size(), 2u);
    EXPECT_EQ(p.componentSeconds[0].first, "busy");
    EXPECT_EQ(p.componentSeconds[1].first, "component1");
    EXPECT_GT(p.componentSeconds[0].second, 0.0);
}

TEST(Profiler, JsonCarriesEveryBaselineField)
{
    SimProfile p;
    p.wallSeconds = 0.25;
    p.cycles = 1000;
    p.events = 250;
    p.componentSeconds = {{"router", 0.2}, {"workload", 0.05}};

    std::ostringstream os;
    writeProfileJson(os, p);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"wall_seconds\": 0.25"), std::string::npos) << s;
    EXPECT_NE(s.find("\"cycles\": 1000"), std::string::npos);
    EXPECT_NE(s.find("\"events\": 250"), std::string::npos);
    EXPECT_NE(s.find("\"cycles_per_sec\": 4000"), std::string::npos);
    EXPECT_NE(s.find("\"events_per_sec\": 1000"), std::string::npos);
    EXPECT_NE(s.find("\"router\": 0.2"), std::string::npos);
    EXPECT_NE(s.find("\"workload\": 0.05"), std::string::npos);
}

TEST(Profiler, JsonWithNoComponentsIsWellFormed)
{
    SimProfile p;
    std::ostringstream os;
    writeProfileJson(os, p);
    EXPECT_NE(os.str().find("\"components\": {}"), std::string::npos)
        << os.str();
}

TEST(Profiler, HumanSummaryMentionsThroughput)
{
    SimProfile p;
    p.wallSeconds = 1.0;
    p.cycles = 2000000;
    p.events = 1000000;
    p.componentSeconds = {{"router", 0.75}, {"workload", 0.25}};

    std::ostringstream os;
    printProfile(os, p);
    const std::string s = os.str();
    EXPECT_NE(s.find("2 Mcycles/s"), std::string::npos) << s;
    EXPECT_NE(s.find("1 Mevents/s"), std::string::npos);
    EXPECT_NE(s.find("router: 0.75 s (75% of attributed time)"),
              std::string::npos)
        << s;
}

} // namespace
} // namespace mmr
