/**
 * @file
 * Tests for the log-bucketed latency histogram: bucket geometry at
 * the exact/logarithmic boundary, percentile semantics, and the
 * merge algebra the parallel sweep's determinism audit leans on
 * (element-wise integer sums are exactly associative and
 * commutative, unlike StreamStat's floating-point merge).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <vector>

#include "base/rng.hh"
#include "obs/histogram.hh"

namespace mmr
{
namespace
{

TEST(LatencyHistogram, EmptyHistogramIsInert)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_EQ(h.percentile(50.0), 0u);
    EXPECT_EQ(h.percentile(99.9), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, SingleSampleIsEveryPercentile)
{
    LatencyHistogram h;
    h.record(7);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.minValue(), 7u);
    EXPECT_EQ(h.maxValue(), 7u);
    EXPECT_EQ(h.percentile(0.0), 7u);
    EXPECT_EQ(h.percentile(50.0), 7u);
    EXPECT_EQ(h.percentile(100.0), 7u);
    EXPECT_DOUBLE_EQ(h.mean(), 7.0);
}

TEST(LatencyHistogram, LowRangeIsExact)
{
    // Values below kSubBuckets each own a bucket: no quantization.
    for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketIndex(v), v);
        EXPECT_EQ(LatencyHistogram::bucketLowerBound(v), v);
    }
}

TEST(LatencyHistogram, BucketBoundariesRoundTrip)
{
    // The lower bound of every bucket must map back to that bucket,
    // and the value just below it to an earlier one.
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
        const std::uint64_t lo = LatencyHistogram::bucketLowerBound(i);
        if (LatencyHistogram::bucketIndex(lo) != i) {
            // Top-of-range buckets whose lower bound overflows fold
            // into the final representable bucket; skip those.
            ASSERT_GE(lo, 1ull << 60);
            continue;
        }
        EXPECT_EQ(LatencyHistogram::bucketIndex(lo), i);
        if (lo > 0) {
            EXPECT_LT(LatencyHistogram::bucketIndex(lo - 1), i);
        }
    }
}

TEST(LatencyHistogram, PowerOfTwoEdgesLandInDistinctBuckets)
{
    // Around each power of two the index must be monotone: v-1, v,
    // v+stride never share a bucket with quantization error > 1/16.
    for (unsigned bit = 4; bit < 63; ++bit) {
        const std::uint64_t v = 1ull << bit;
        EXPECT_LT(LatencyHistogram::bucketIndex(v - 1),
                  LatencyHistogram::bucketIndex(v))
            << "at 2^" << bit;
        EXPECT_EQ(LatencyHistogram::bucketLowerBound(
                      LatencyHistogram::bucketIndex(v)),
                  v)
            << "a power of two starts its major bucket";
    }
}

TEST(LatencyHistogram, RelativeErrorStaysUnderSubBucketWidth)
{
    Rng rng(1234);
    for (int i = 0; i < 20000; ++i) {
        const auto v = static_cast<std::uint64_t>(
            rng.range(1, 1000000000));
        const std::uint64_t lo = LatencyHistogram::bucketLowerBound(
            LatencyHistogram::bucketIndex(v));
        ASSERT_LE(lo, v);
        // Lower bound under-states by at most 1/16 of the value.
        EXPECT_LE(v - lo, v / LatencyHistogram::kSubBuckets + 1);
    }
}

TEST(LatencyHistogram, PercentilesNeverOverstate)
{
    LatencyHistogram h;
    std::vector<std::uint64_t> vals;
    Rng rng(99);
    for (int i = 0; i < 5000; ++i) {
        const auto v =
            static_cast<std::uint64_t>(rng.range(0, 100000));
        vals.push_back(v);
        h.record(v);
    }
    std::sort(vals.begin(), vals.end());
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        const std::uint64_t approx = h.percentile(p);
        const std::size_t rank = static_cast<std::size_t>(
            p / 100.0 * static_cast<double>(vals.size()));
        const std::uint64_t exact =
            vals[std::min(rank, vals.size() - 1)];
        EXPECT_LE(approx, exact + 1) << "p" << p;
        // ...and within one sub-bucket below it.
        EXPECT_GE(approx + approx / LatencyHistogram::kSubBuckets + 1,
                  exact)
            << "p" << p;
    }
    EXPECT_EQ(h.percentile(100.0), vals.back());
}

TEST(LatencyHistogram, MergeIsAssociativeAndCommutative)
{
    Rng rng(7);
    LatencyHistogram a, b, c;
    for (int i = 0; i < 3000; ++i) {
        const auto v =
            static_cast<std::uint64_t>(rng.range(0, 1 << 20));
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).record(v);
    }

    // (a + b) + c
    LatencyHistogram abc1 = a;
    abc1.merge(b);
    abc1.merge(c);
    // a + (b + c)
    LatencyHistogram bc = b;
    bc.merge(c);
    LatencyHistogram abc2 = a;
    abc2.merge(bc);
    // c + b + a
    LatencyHistogram abc3 = c;
    abc3.merge(b);
    abc3.merge(a);

    EXPECT_TRUE(abc1.identical(abc2));
    EXPECT_TRUE(abc1.identical(abc3));
    EXPECT_EQ(abc1.count(), a.count() + b.count() + c.count());
    EXPECT_EQ(abc1.maxValue(),
              std::max({a.maxValue(), b.maxValue(), c.maxValue()}));
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity)
{
    LatencyHistogram h, empty;
    h.record(42);
    h.record(4200);
    LatencyHistogram merged = h;
    merged.merge(empty);
    EXPECT_TRUE(merged.identical(h));

    LatencyHistogram other = empty;
    other.merge(h);
    EXPECT_TRUE(other.identical(h));
    EXPECT_EQ(other.minValue(), 42u);
}

TEST(LatencyHistogram, ResetClearsEverything)
{
    LatencyHistogram h;
    h.record(5);
    h.record(500000);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_TRUE(h.identical(LatencyHistogram{}));
}

TEST(LatencyHistogram, JsonCarriesCountsAndPercentiles)
{
    LatencyHistogram h;
    for (int i = 0; i < 100; ++i)
        h.record(10);
    h.record(100000);

    std::ostringstream os;
    h.writeJson(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"count\":101"), std::string::npos) << s;
    EXPECT_NE(s.find("\"min\":10"), std::string::npos);
    EXPECT_NE(s.find("\"max\":100000"), std::string::npos);
    EXPECT_NE(s.find("\"p50\":10"), std::string::npos);
    EXPECT_NE(s.find("\"p999\":"), std::string::npos);
    EXPECT_NE(s.find("\"buckets\":[[10,100],"), std::string::npos);
}

TEST(LatencyStage, NamesAreStable)
{
    // Stage names feed stats-registry keys and JSON schemas; renames
    // are format breaks, not refactors.
    EXPECT_STREQ(to_string(LatencyStage::SourceQueue), "source_queue");
    EXPECT_STREQ(to_string(LatencyStage::VcResidency), "vc_residency");
    EXPECT_STREQ(to_string(LatencyStage::ArbWait), "arb_wait");
    EXPECT_STREQ(to_string(LatencyStage::SwitchTraversal),
                 "switch_traversal");
    EXPECT_STREQ(to_string(LatencyStage::LinkTransit), "link_transit");
}

} // namespace
} // namespace mmr
