/**
 * @file
 * Tests for the time-series stats sampler: kernel-driven periodic
 * snapshots, ring-buffer eviction, selection, and the deterministic
 * CSV/JSON dumps.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "obs/sampler.hh"
#include "obs/stats_registry.hh"
#include "sim/kernel.hh"

namespace mmr
{
namespace
{

/** Minimal component: one event per cycle. */
class Ticker : public Clocked
{
  public:
    void evaluate(Cycle now) override { (void)now; }
    void advance(Cycle now) override
    {
        (void)now;
        ++count;
    }
    std::uint64_t count = 0;
};

TEST(StatsSampler, SamplesEveryPeriodThroughTheKernel)
{
    StatsRegistry reg;
    Ticker ticker;
    reg.addCounter("tick.count", &ticker.count);

    Kernel kernel;
    // Sampler registered after the component it watches, so a sample
    // sees that cycle's committed state.
    kernel.add(&ticker, "ticker");
    StatsSampler sampler(reg, 10);
    kernel.add(&sampler, "sampler");

    kernel.run(25); // cycles 0..24 -> samples at 0, 10, 20
    ASSERT_EQ(sampler.storedSamples(), 3u);
    EXPECT_EQ(sampler.totalSamples(), 3u);
    EXPECT_EQ(sampler.droppedSamples(), 0u);
    EXPECT_EQ(sampler.sampleCycle(0), 0u);
    EXPECT_EQ(sampler.sampleCycle(1), 10u);
    EXPECT_EQ(sampler.sampleCycle(2), 20u);
    // The ticker advanced before the sampler in each cycle.
    EXPECT_EQ(sampler.value(0, 0), 1.0);
    EXPECT_EQ(sampler.value(1, 0), 11.0);
    EXPECT_EQ(sampler.value(2, 0), 21.0);
}

TEST(StatsSampler, RingBufferEvictsOldestRows)
{
    StatsRegistry reg;
    std::uint64_t n = 0;
    reg.addCounter("n", &n);

    StatsSampler sampler(reg, 1, {}, /*capacity=*/4);
    for (Cycle c = 0; c < 10; ++c) {
        n = c * 100;
        sampler.sampleNow(c);
    }
    EXPECT_EQ(sampler.storedSamples(), 4u);
    EXPECT_EQ(sampler.totalSamples(), 10u);
    EXPECT_EQ(sampler.droppedSamples(), 6u);
    // Oldest retained row is sample 6; newest is sample 9.
    EXPECT_EQ(sampler.sampleCycle(0), 6u);
    EXPECT_EQ(sampler.value(0, 0), 600.0);
    EXPECT_EQ(sampler.sampleCycle(3), 9u);
    EXPECT_EQ(sampler.value(3, 0), 900.0);
}

TEST(StatsSampler, SelectionRestrictsColumns)
{
    StatsRegistry reg;
    std::uint64_t a = 0, b = 0;
    reg.addCounter("keep.a", &a);
    reg.addCounter("drop.b", &b);
    reg.addGauge("keep.g", [] { return 2.5; });

    StatsSampler sampler(reg, 1, {"keep."});
    ASSERT_EQ(sampler.columns().size(), 2u);
    EXPECT_EQ(sampler.columns()[0], "keep.a");
    EXPECT_EQ(sampler.columns()[1], "keep.g");
}

TEST(StatsSampler, CsvDumpIsExact)
{
    StatsRegistry reg;
    std::uint64_t flits = 0;
    reg.addCounter("flits", &flits);
    reg.addGauge("occ", [&] { return flits * 0.5; });

    StatsSampler sampler(reg, 5);
    flits = 4;
    sampler.sampleNow(5);
    flits = 9;
    sampler.sampleNow(10);

    std::ostringstream os;
    sampler.dumpCsv(os);
    EXPECT_EQ(os.str(), "cycle,flits,occ\n"
                        "5,4,2\n"
                        "10,9,4.5\n");
}

TEST(StatsSampler, JsonDumpCarriesSchemaAndRows)
{
    StatsRegistry reg;
    std::uint64_t flits = 3;
    reg.addCounter("flits", &flits);
    reg.addGauge("occ", [] { return 1.25; });

    StatsSampler sampler(reg, 7);
    sampler.sampleNow(7);

    std::ostringstream os;
    sampler.dumpJson(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"period\": 7"), std::string::npos) << s;
    EXPECT_NE(s.find("\"columns\": [\"flits\", \"occ\"]"),
              std::string::npos)
        << s;
    EXPECT_NE(s.find("\"kinds\": [\"counter\", \"gauge\"]"),
              std::string::npos)
        << s;
    EXPECT_NE(s.find("\"dropped_samples\": 0"), std::string::npos) << s;
    EXPECT_NE(s.find("[7, 3, 1.25]"), std::string::npos) << s;
}

TEST(StatsSamplerDeath, RejectsDegenerateParameters)
{
    StatsRegistry reg;
    EXPECT_DEATH(StatsSampler(reg, 0), "sample period");
    EXPECT_DEATH(StatsSampler(reg, 10, {}, 0), "capacity");
}

} // namespace
} // namespace mmr
