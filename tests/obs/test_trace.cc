/**
 * @file
 * Tests for the event tracer: category mask parsing, the global
 * activation protocol the MMR_TRACE_* macros rely on, cycle-range and
 * overflow behavior, and the Chrome trace-event JSON shape Perfetto
 * loads.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "base/types.hh"
#include "obs/trace.hh"

namespace mmr
{
namespace
{

TEST(TraceCatMask, ParsesListsAndAll)
{
    const std::uint32_t all =
        (1u << static_cast<unsigned>(TraceCat::NumCats)) - 1;
    EXPECT_EQ(traceCatMaskFromString(""), all);
    EXPECT_EQ(traceCatMaskFromString("all"), all);

    const std::uint32_t fs = traceCatMaskFromString("flit,sched");
    EXPECT_EQ(fs, (1u << static_cast<unsigned>(TraceCat::Flit)) |
                      (1u << static_cast<unsigned>(TraceCat::Sched)));

    EXPECT_EQ(traceCatMaskFromString("credit"),
              1u << static_cast<unsigned>(TraceCat::Credit));
}

TEST(TraceCatMask, UnknownCategoryIsAUserError)
{
    // mmr_fatal: a typo in --trace-cats must fail loudly, not trace
    // nothing.
    EXPECT_THROW(traceCatMaskFromString("flit,shced"),
                 std::runtime_error);
}

TEST(Tracer, MacrosAreInertWithoutAnActiveTracer)
{
    ASSERT_EQ(Tracer::active(), nullptr);
    EXPECT_FALSE(Tracer::wants(TraceCat::Flit));
    // The disabled fast path: these must be safe no-ops.
    MMR_TRACE_INSTANT(TraceCat::Flit, "inject", 1, 0, kInvalidConn);
    MMR_TRACE_COUNTER(TraceCat::Sched, "matching", 1, 3.0);
    SUCCEED();
}

TEST(Tracer, ActivationScopesTheGlobalPointer)
{
    {
        Tracer t;
        t.activate();
        EXPECT_EQ(Tracer::active(), &t);
        EXPECT_TRUE(Tracer::wants(TraceCat::Flit));
        // The destructor deactivates.
    }
    EXPECT_EQ(Tracer::active(), nullptr);
}

TEST(Tracer, CategoryMaskGatesTheMacros)
{
    Tracer t;
    t.setCategoryMask(traceCatMaskFromString("sched"));
    t.activate();
    EXPECT_FALSE(Tracer::wants(TraceCat::Flit));
    EXPECT_TRUE(Tracer::wants(TraceCat::Sched));

    MMR_TRACE_INSTANT(TraceCat::Flit, "inject", 1, 0, kInvalidConn);
    EXPECT_EQ(t.eventCount(), 0u);
    MMR_TRACE_INSTANT(TraceCat::Sched, "grant", 1, 0, kInvalidConn);
    // With -DMMR_TRACING=OFF the sites vanish and nothing records.
    EXPECT_EQ(t.eventCount(), MMR_TRACING_ENABLED ? 1u : 0u);
}

TEST(Tracer, CycleRangeFiltersRecords)
{
    Tracer t;
    t.setCycleRange(10, 20);
    t.instant(TraceCat::Flit, "early", 9, 0, kInvalidConn);
    t.instant(TraceCat::Flit, "in", 10, 0, kInvalidConn);
    t.instant(TraceCat::Flit, "in", 20, 0, kInvalidConn);
    t.instant(TraceCat::Flit, "late", 21, 0, kInvalidConn);
    t.counter(TraceCat::Sched, "c", 25, 1.0);
    EXPECT_EQ(t.eventCount(), 2u);
}

TEST(Tracer, OverflowDropsAndCounts)
{
    Tracer t(/*max_events=*/2);
    for (Cycle c = 0; c < 5; ++c)
        t.instant(TraceCat::Flit, "e", c, 0, kInvalidConn);
    EXPECT_EQ(t.eventCount(), 2u);
    EXPECT_EQ(t.droppedEvents(), 3u);

    std::ostringstream os;
    t.writeChromeJson(os);
    EXPECT_NE(os.str().find("\"dropped_events\": 3"), std::string::npos);
}

TEST(Tracer, ChromeJsonShape)
{
    Tracer t;
    t.instant(TraceCat::Flit, "inject", 42, 3, 7, 5);
    t.instant(TraceCat::Setup, "probe", 50, 1, kInvalidConn);
    t.counter(TraceCat::Sched, "sched.matching_size", 60, 2.5);

    std::ostringstream os;
    t.writeChromeJson(os);
    const std::string s = os.str();

    EXPECT_NE(s.find("\"displayTimeUnit\": \"ns\""), std::string::npos);
    // Instant event: ts = cycle, tid = lane, scoped to the thread,
    // conn + a0 in args.
    EXPECT_NE(s.find("{\"name\": \"inject\", \"cat\": \"flit\", "
                     "\"ph\": \"i\", \"ts\": 42, \"pid\": 0, "
                     "\"tid\": 3, \"s\": \"t\", "
                     "\"args\": {\"conn\": 7, \"a0\": 5}}"),
              std::string::npos)
        << s;
    // kInvalidConn and negative args are omitted entirely.
    EXPECT_NE(s.find("{\"name\": \"probe\", \"cat\": \"setup\", "
                     "\"ph\": \"i\", \"ts\": 50, \"pid\": 0, "
                     "\"tid\": 1, \"s\": \"t\", \"args\": {}}"),
              std::string::npos)
        << s;
    // Counter event renders as a graph track.
    EXPECT_NE(s.find("{\"name\": \"sched.matching_size\", "
                     "\"cat\": \"sched\", \"ph\": \"C\", \"ts\": 60, "
                     "\"pid\": 0, \"tid\": 0, "
                     "\"args\": {\"value\": 2.5}}"),
              std::string::npos)
        << s;
}

TEST(Tracer, EmptyTraceIsStillValidJson)
{
    Tracer t;
    std::ostringstream os;
    t.writeChromeJson(os);
    EXPECT_EQ(os.str(),
              "{\"displayTimeUnit\": \"ns\", \"otherData\": "
              "{\"dropped_events\": 0},\n\"traceEvents\": [\n]}\n");
}

TEST(TracerDeath, SecondActiveTracerIsABug)
{
    Tracer first;
    first.activate();
    Tracer second;
    EXPECT_DEATH(second.activate(), "already active");
}

TEST(TracerDeath, InvertedCycleRangeIsABug)
{
    Tracer t;
    EXPECT_DEATH(t.setCycleRange(20, 10), "inverted");
}

} // namespace
} // namespace mmr
