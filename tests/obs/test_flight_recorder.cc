/**
 * @file
 * Tests for the crash flight recorder: ring retention and wrap
 * behaviour, the Chrome-trace dump format, the MMR_OBS_EVENT
 * dual-sink macro, and the panic hook that turns an mmr_assert deep
 * in a run into a post-mortem artifact.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "base/logging.hh"
#include "obs/flight_recorder.hh"

namespace mmr
{
namespace
{

/** RAII activation so a failing EXPECT cannot leak a thread-local
 * recorder into the next test. */
struct Scoped
{
    explicit Scoped(FlightRecorder &fr) : rec(fr) { rec.activate(); }
    ~Scoped() { rec.deactivate(); }
    FlightRecorder &rec;
};

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo)
{
    FlightRecorder fr(100);
    EXPECT_EQ(fr.capacity(), 128u);
    FlightRecorder tiny(0);
    EXPECT_EQ(tiny.capacity(), 2u);
    FlightRecorder exact(64);
    EXPECT_EQ(exact.capacity(), 64u);
}

TEST(FlightRecorder, RingKeepsTheMostRecentEvents)
{
    FlightRecorder fr(4);
    for (int i = 0; i < 10; ++i)
        fr.note(TraceCat::Sched, "grant", static_cast<Cycle>(i), 0,
                kInvalidConn);
    EXPECT_EQ(fr.recorded(), 10u);
    EXPECT_EQ(fr.stored(), 4u);
    // Events 6..9 survive; 0..5 were overwritten.
    EXPECT_EQ(fr.oldest().cycle, 6u);
}

TEST(FlightRecorder, InactiveByDefault)
{
    EXPECT_FALSE(FlightRecorder::wants());
    EXPECT_EQ(FlightRecorder::active(), nullptr);
    EXPECT_FALSE(FlightRecorder::dumpActive("test"));
}

TEST(FlightRecorder, ActivateInstallsThreadLocal)
{
    FlightRecorder fr;
    {
        Scoped s(fr);
        EXPECT_TRUE(FlightRecorder::wants());
        EXPECT_EQ(FlightRecorder::active(), &fr);
    }
    EXPECT_FALSE(FlightRecorder::wants());
}

TEST(FlightRecorder, ObsEventMacroFeedsTheActiveRecorder)
{
    FlightRecorder fr;
    Scoped s(fr);
    MMR_OBS_EVENT(TraceCat::Flit, "xmit", Cycle{42}, 3u, ConnId{7}, 1,
                  2);
    ASSERT_EQ(fr.stored(), 1u);
    EXPECT_EQ(fr.oldest().cycle, 42u);
    EXPECT_EQ(fr.oldest().conn, 7u);
    EXPECT_EQ(fr.oldest().a0, 1);
    EXPECT_EQ(fr.oldest().a1, 2);
    EXPECT_EQ(fr.oldest().lane, 3u);
    EXPECT_STREQ(fr.oldest().name, "xmit");
}

TEST(FlightRecorder, ChromeJsonIsOldestFirstWithReason)
{
    FlightRecorder fr(4);
    for (int i = 0; i < 6; ++i)
        fr.note(TraceCat::Credit, "credit", static_cast<Cycle>(i * 10),
                1, ConnId{5}, i);
    std::ostringstream os;
    fr.writeChromeJson(os, "unit_test");
    const std::string s = os.str();
    EXPECT_NE(s.find("\"reason\":\"unit_test\""), std::string::npos)
        << s;
    EXPECT_NE(s.find("\"recorded\":6"), std::string::npos);
    EXPECT_NE(s.find("\"retained\":4"), std::string::npos);
    // Oldest retained first (cycle 20), newest (cycle 50) last.
    const auto first = s.find("\"ts\":20");
    const auto last = s.find("\"ts\":50");
    EXPECT_NE(first, std::string::npos);
    EXPECT_NE(last, std::string::npos);
    EXPECT_LT(first, last);
    EXPECT_EQ(s.find("\"ts\":10"), std::string::npos)
        << "overwritten events must not leak into the dump";
    EXPECT_NE(s.find("\"cat\":\"credit\""), std::string::npos);
}

TEST(FlightRecorder, DumpToWritesAFile)
{
    const std::string path =
        testing::TempDir() + "mmr_flight_dump_test.json";
    FlightRecorder fr;
    fr.note(TraceCat::Fault, "link_down", 99, 2, kInvalidConn, 4);
    ASSERT_TRUE(fr.dumpTo(path, "explicit"));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(buf.str().find("link_down"), std::string::npos);
    std::remove(path.c_str());
}

TEST(FlightRecorderDeath, PanicDumpsTheBlackBox)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    const std::string path =
        testing::TempDir() + "mmr_flight_panic_test.json";
    std::remove(path.c_str());

    // The child inherits nothing: build the recorder inside.
    EXPECT_DEATH(
        {
            FlightRecorder fr(16);
            fr.setDumpPath(path);
            fr.activate();
            for (int i = 0; i < 20; ++i)
                fr.note(TraceCat::Sched, "grant",
                        static_cast<Cycle>(i), 0, kInvalidConn);
            mmr_assert(false, "forced failure for the flight "
                              "recorder death test");
        },
        "forced failure");

    // The hook ran before abort: the dump exists and says why.
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "panic produced no flight dump at "
                           << path;
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_NE(buf.str().find("\"reason\":\"panic\""),
              std::string::npos)
        << buf.str();
    EXPECT_NE(buf.str().find("\"retained\":16"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace mmr
