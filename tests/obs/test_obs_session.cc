/**
 * @file
 * End-to-end tests of the observability session through the §5
 * experiment harness: the sampler/registry outputs must reproduce the
 * MetricsRecorder aggregates, same-seed runs must produce bit-identical
 * trace/stats files, and per-run output paths must not collide.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "harness/single_router.hh"
#include "obs/obs_config.hh"

namespace mmr
{
namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing output file " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

ExperimentConfig
smallConfig()
{
    ExperimentConfig cfg;
    cfg.router.numPorts = 4;
    cfg.router.vcsPerPort = 32;
    cfg.offeredLoad = 0.6;
    cfg.warmupCycles = 2000;
    cfg.measureCycles = 4000;
    cfg.seed = 7;
    return cfg;
}

TEST(ObsSession, StatsFileReproducesRecorderAggregates)
{
    const std::string dir = ::testing::TempDir();
    ExperimentConfig cfg = smallConfig();
    cfg.obs.statsJsonPath = dir + "obs_xcheck.json";
    cfg.obs.samplePeriod = 500;

    const ExperimentResult r = runSingleRouter(cfg);
    const std::string s = slurp(cfg.obs.statsJsonPath);

    // The harness registers its recorder aggregates as gauges; the
    // final registry dump must agree exactly with the returned result.
    const std::string flits =
        "\"harness.measured_flits\": {\"kind\": \"gauge\", \"value\": " +
        obs::formatNumber(static_cast<double>(r.flitsDelivered)) + "}";
    EXPECT_NE(s.find(flits), std::string::npos)
        << "wanted: " << flits << "\nin:\n" << s.substr(0, 2000);

    const std::string delay =
        "\"harness.mean_delay_cycles\": {\"kind\": \"gauge\", "
        "\"value\": " +
        obs::formatNumber(r.meanDelayCycles) + "}";
    EXPECT_NE(s.find(delay), std::string::npos) << "wanted: " << delay;

    // The sampled series rides in the same file.
    EXPECT_NE(s.find("\"period\": 500"), std::string::npos);
    EXPECT_NE(s.find("router0.flits.injected"), std::string::npos);
}

#if MMR_TRACING_ENABLED
TEST(ObsSession, TraceCoversTheFlitLifecycle)
{
    const std::string dir = ::testing::TempDir();
    ExperimentConfig cfg = smallConfig();
    cfg.obs.tracePath = dir + "obs_lifecycle.json";

    runSingleRouter(cfg);
    const std::string s = slurp(cfg.obs.tracePath);

    // ISSUE acceptance: flit lifecycle + scheduler grants + admission
    // decisions all present in one Perfetto-loadable file.
    for (const char *name : {"\"name\": \"inject\"",
                             "\"name\": \"vc_alloc\"",
                             "\"name\": \"grant\"",
                             "\"name\": \"xmit\"",
                             "\"name\": \"admit_cbr\"",
                             "\"name\": \"sched.matching_size\""})
        EXPECT_NE(s.find(name), std::string::npos) << name;
    EXPECT_NE(s.find("\"traceEvents\": ["), std::string::npos);
}

TEST(ObsSession, CategoryFilterNarrowsTheTrace)
{
    const std::string dir = ::testing::TempDir();
    ExperimentConfig cfg = smallConfig();
    cfg.obs.tracePath = dir + "obs_filtered.json";
    cfg.obs.traceCats = "admission,setup";

    runSingleRouter(cfg);
    const std::string s = slurp(cfg.obs.tracePath);
    EXPECT_NE(s.find("\"name\": \"admit_cbr\""), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"vc_alloc\""), std::string::npos);
    EXPECT_EQ(s.find("\"name\": \"inject\""), std::string::npos)
        << "flit events must be filtered out";
    EXPECT_EQ(s.find("\"name\": \"grant\""), std::string::npos);
}
#endif // MMR_TRACING_ENABLED

TEST(ObsSession, SameSeedRunsProduceBitIdenticalFiles)
{
    const std::string dir = ::testing::TempDir();

    ExperimentConfig a = smallConfig();
    a.obs.tracePath = dir + "obs_det_a.trace.json";
    a.obs.statsJsonPath = dir + "obs_det_a.stats.json";
    a.obs.samplePeriod = 500;
    runSingleRouter(a);

    ExperimentConfig b = smallConfig();
    b.obs.tracePath = dir + "obs_det_b.trace.json";
    b.obs.statsJsonPath = dir + "obs_det_b.stats.json";
    b.obs.samplePeriod = 500;
    runSingleRouter(b);

    EXPECT_EQ(slurp(a.obs.tracePath), slurp(b.obs.tracePath))
        << "trace files must be byte-identical for same-seed runs";
    EXPECT_EQ(slurp(a.obs.statsJsonPath), slurp(b.obs.statsJsonPath))
        << "stats files must be byte-identical for same-seed runs";
}

TEST(ObsSession, ResultCarriesThroughputProfile)
{
    ExperimentConfig cfg = smallConfig();
    const ExperimentResult r = runSingleRouter(cfg);
    EXPECT_GT(r.profile.cycles, 0u);
    EXPECT_GT(r.profile.events, 0u);
    EXPECT_GT(r.profile.wallSeconds, 0.0);
    EXPECT_GT(r.profile.cyclesPerSec(), 0.0);
    EXPECT_TRUE(r.profile.componentSeconds.empty())
        << "attribution stays off unless obs.profileComponents";
}

TEST(ObsSession, ComponentProfilingAttributesTime)
{
    ExperimentConfig cfg = smallConfig();
    cfg.obs.profileComponents = true;
    const ExperimentResult r = runSingleRouter(cfg);
    ASSERT_FALSE(r.profile.componentSeconds.empty());
    bool sawRouter = false;
    for (const auto &[name, secs] : r.profile.componentSeconds)
        sawRouter = sawRouter || name == "router";
    EXPECT_TRUE(sawRouter) << "the router must appear in attribution";
}

TEST(ObsPath, SuffixInsertsBeforeTheExtension)
{
    EXPECT_EQ(obsPathWithSuffix("out/trace.json", "biased_2c-0.70"),
              "out/trace-biased_2c-0.70.json");
    EXPECT_EQ(obsPathWithSuffix("trace", "x"), "trace-x");
    EXPECT_EQ(obsPathWithSuffix("a.b/trace", "x"), "a.b/trace-x")
        << "a dot in a directory name is not an extension";
    EXPECT_EQ(obsPathWithSuffix("", "x"), "");
    EXPECT_EQ(obsPathWithSuffix("trace.json", ""), "trace.json");
}

} // namespace
} // namespace mmr
