/**
 * @file
 * Tests for the hierarchical stats registry: probe registration,
 * selection patterns, deterministic JSON dumps and the round-trip
 * number formatter every observability output shares.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "obs/stats_registry.hh"

namespace mmr
{
namespace
{

TEST(FormatNumber, IntegersPrintWithoutFraction)
{
    EXPECT_EQ(obs::formatNumber(0.0), "0");
    EXPECT_EQ(obs::formatNumber(42.0), "42");
    EXPECT_EQ(obs::formatNumber(-7.0), "-7");
    // A counter past 2^32 still prints exactly.
    EXPECT_EQ(obs::formatNumber(68719476736.0), "68719476736");
}

TEST(FormatNumber, NonIntegersRoundTrip)
{
    const double v = 0.1 + 0.2; // classic non-representable sum
    const std::string s = obs::formatNumber(v);
    EXPECT_EQ(std::stod(s), v) << "parse(print(v)) must equal v";
}

TEST(FormatNumber, NonFiniteClampsToZero)
{
    // JSON has no inf/nan tokens; a defensive probe bug must not
    // produce an unparseable stats file.
    EXPECT_EQ(obs::formatNumber(1.0 / 0.0), "0");
    EXPECT_EQ(obs::formatNumber(0.0 / 0.0), "0");
}

TEST(StatsRegistry, ProbesReadLiveValues)
{
    StatsRegistry reg;
    std::uint64_t counter = 0;
    double level = 1.5;
    reg.addCounter("a.count", &counter);
    reg.addGauge("a.level", [&] { return level; });

    EXPECT_EQ(reg.value("a.count"), 0.0);
    counter = 7;
    level = -2.0;
    EXPECT_EQ(reg.value("a.count"), 7.0);
    EXPECT_EQ(reg.value("a.level"), -2.0);
    EXPECT_TRUE(reg.has("a.count"));
    EXPECT_FALSE(reg.has("a.miss"));
}

TEST(StatsRegistry, NamesAreSorted)
{
    StatsRegistry reg;
    reg.addGauge("z.last", [] { return 0.0; });
    reg.addGauge("a.first", [] { return 0.0; });
    reg.addGauge("m.middle", [] { return 0.0; });
    const auto names = reg.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a.first");
    EXPECT_EQ(names[1], "m.middle");
    EXPECT_EQ(names[2], "z.last");
}

TEST(StatsRegistry, SelectionPatterns)
{
    StatsRegistry reg;
    reg.addGauge("router0.in0.occupancy", [] { return 0.0; });
    reg.addGauge("router0.in1.occupancy", [] { return 0.0; });
    reg.addGauge("router0.flits.forwarded", [] { return 0.0; });
    reg.addGauge("net.delivered", [] { return 0.0; });

    // Empty selection = everything.
    EXPECT_EQ(reg.select({}).size(), 4u);
    EXPECT_EQ(reg.select({"*"}).size(), 4u);

    // Prefix glob and subtree-dot forms.
    EXPECT_EQ(reg.select({"router0.in*"}).size(), 2u);
    EXPECT_EQ(reg.select({"router0."}).size(), 3u);

    // Exact names select one; patterns merge without duplicates.
    const auto both =
        reg.select({"net.delivered", "router0.in0.occupancy"});
    ASSERT_EQ(both.size(), 2u);
    EXPECT_EQ(reg.entry(both[0]).name, "net.delivered");
    EXPECT_EQ(reg.entry(both[1]).name, "router0.in0.occupancy");

    const auto merged = reg.select({"router0.in*", "router0."});
    EXPECT_EQ(merged.size(), 3u);
}

TEST(StatsRegistryDeath, UnknownExactNamePanics)
{
    StatsRegistry reg;
    reg.addGauge("real.stat", [] { return 0.0; });
    // A typo must not silently sample nothing.
    EXPECT_DEATH(reg.select({"reel.stat"}), "unknown statistic");
    EXPECT_DEATH(reg.value("reel.stat"), "unknown statistic");
}

TEST(StatsRegistryDeath, DuplicateRegistrationPanics)
{
    StatsRegistry reg;
    reg.addGauge("dup", [] { return 0.0; });
    EXPECT_DEATH(reg.addCounter("dup", [] { return 0.0; }),
                 "registered twice");
}

TEST(StatsRegistry, JsonDumpIsSortedAndTyped)
{
    StatsRegistry reg;
    std::uint64_t n = 3;
    reg.addCounter("b.count", &n);
    reg.addGauge("a.level", [] { return 0.5; });

    std::ostringstream os;
    reg.dumpJson(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"a.level\": {\"kind\": \"gauge\", "
                     "\"value\": 0.5}"),
              std::string::npos)
        << s;
    EXPECT_NE(s.find("\"b.count\": {\"kind\": \"counter\", "
                     "\"value\": 3}"),
              std::string::npos)
        << s;
    EXPECT_LT(s.find("a.level"), s.find("b.count"))
        << "dump must be name-sorted for deterministic files";
}

} // namespace
} // namespace mmr
