/**
 * @file
 * Deterministic fault schedules for the MMR network.
 *
 * The paper's machinery — PCS setup with EPB backtracking, up*-down*
 * routing (born in Autonet, a network that reconfigures around
 * faults), credit-based flow control — exists to survive an imperfect
 * LAN.  A FaultPlan makes that imperfection reproducible: it is a
 * fully precomputed, seed-derived schedule of link down/up events
 * plus stochastic-rate models for probe/ack message loss and on-wire
 * flit corruption.  Two runs with the same topology, seed and model
 * produce bit-identical schedules, so every randomized fault run is
 * replayable from its seed alone — the property the randomized fault
 * suite and the resultDigest reproducibility audit rely on.
 *
 * Plans come from two sources: FaultPlan::random() draws failure and
 * repair times from per-link exponential processes (optionally
 * refusing failures that would partition the surviving graph), and
 * FaultPlan::fromEvents() parses an explicit "down@500:2-3;up@900:2-3"
 * event list for directed tests and CLI reproduction of a specific
 * scenario.
 */

#ifndef MMR_FAULT_FAULT_PLAN_HH
#define MMR_FAULT_FAULT_PLAN_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"
#include "network/topology.hh"

namespace mmr
{

/** Stochastic fault model, the knobs behind a random FaultPlan. */
struct FaultModel
{
    /**
     * Expected link failures per link per 10,000 cycles (the bench's
     * "link-failure rate": 0.01 = 1%).  0 disables link failures.
     */
    double linkFailPer10k = 0.0;

    /** Mean cycles until a failed link is repaired (exponential);
     * 0 = links stay down forever. */
    Cycle meanRepairCycles = 4000;

    /** Probability of losing each setup-protocol message (probe,
     * backtrack or ack hop) on the wire. */
    double probeDropRate = 0.0;

    /** Probability of corrupting each flit entering an inter-router
     * link (discarded by the downstream CRC check). */
    double corruptRate = 0.0;

    /** Schedule events in [0, horizon). */
    Cycle horizon = 0;

    /** Allow failures that disconnect the surviving graph.  Off by
     * default: QoS benches need every endpoint reachable; stress
     * tests switch it on to exercise clean setup failure. */
    bool allowPartition = false;
};

/**
 * Parse "fail=0.01,repair=4000,drop=0.02,corrupt=1e-4,partition=1"
 * into a FaultModel (the --faults CLI syntax; keys may appear in any
 * order, missing keys keep their defaults).  Panics on unknown keys.
 */
FaultModel parseFaultModel(const std::string &spec);

/** One scheduled topology event. */
struct FaultEvent
{
    Cycle at = 0;
    enum class Kind
    {
        LinkDown,
        LinkUp
    } kind = Kind::LinkDown;
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
};

class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Draw a schedule from @p model over @p topo: each link fails as
     * an independent exponential process at rate linkFailPer10k and
     * repairs after an exponential delay.  With allowPartition off,
     * failures that would disconnect the then-surviving graph are
     * dropped (with their repairs) and counted in partitionSkips().
     * Deterministic in (topo, model, seed).
     */
    static FaultPlan random(const Topology &topo, const FaultModel &model,
                            std::uint64_t seed);

    /**
     * Parse an explicit ';'-separated event list:
     * "down@500:2-3;up@900:2-3" fails then repairs link 2-3.  The
     * model's stochastic rates stay zero.  Panics on malformed specs
     * or non-adjacent node pairs.
     */
    static FaultPlan fromEvents(const std::string &spec,
                                const Topology &topo);

    /** Events in nondecreasing cycle order. */
    const std::vector<FaultEvent> &events() const { return schedule; }

    const FaultModel &model() const { return mdl; }

    /** Override the stochastic model, e.g. to add probe-drop or
     * corruption rates to an explicit fromEvents() plan. */
    void setModel(const FaultModel &m) { mdl = m; }

    /** Failure events suppressed to keep the graph connected. */
    unsigned partitionSkips() const { return skips; }

    bool empty() const
    {
        return schedule.empty() && mdl.probeDropRate == 0.0 &&
               mdl.corruptRate == 0.0;
    }

    /** The fromEvents() syntax for this plan's event list. */
    std::string toSpec() const;

    /** Machine-readable dump: {"model": {...}, "events": [...]} . */
    void printJson(std::ostream &os) const;

  private:
    FaultModel mdl;
    std::vector<FaultEvent> schedule;
    unsigned skips = 0;
};

} // namespace mmr

#endif // MMR_FAULT_FAULT_PLAN_HH
