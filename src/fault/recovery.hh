/**
 * @file
 * Connection recovery after link failures.
 *
 * When a link dies, Network::failLink() marks every PCS connection
 * crossing it failed and fires the connection-failure hook.  The
 * RecoveryManager subscribes to that hook and re-establishes adopted
 * connections end to end: it re-runs the timed probe/ack setup (EPB by
 * default) over the surviving topology — so the replacement path is
 * found by the same distributed protocol as the original, contending
 * with live traffic and other recoveries in simulated time — under a
 * bounded exponential-backoff retry schedule with jitter, and abandons
 * the connection once the retry budget is spent (e.g. the destination
 * became unreachable).
 *
 * The recovery state machine per failed connection:
 *
 *     failure hook ──▶ Recovering ──(setup accepted)──▶ Recovered(new)
 *                          │  ▲
 *                 (refused)│  │ backoff: min(base·2^k, max) ± jitter
 *                          ▼  │
 *                       waiting ──(retries exhausted)──▶ Abandoned
 *
 * Refusals cost nothing durable: a refused or timed-out probe has
 * already released every hop reservation, so the admission ledger
 * stays exact throughout (audited by the admission-ledger invariant).
 * All randomness (jitter) comes from a seed-derived Rng, keeping
 * recovery fully deterministic.
 */

#ifndef MMR_FAULT_RECOVERY_HH
#define MMR_FAULT_RECOVERY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

namespace mmr
{

class InvariantChecker;
class StatsRegistry;

struct RecoveryConfig
{
    /** Construct-but-disable convenience for sweeps contrasting
     * recovery on/off; a disabled manager installs no hook. */
    bool enabled = true;

    /** Re-setup attempts per failure before abandoning. */
    unsigned maxRetries = 8;

    /** First retry fires this many cycles after the failure. */
    Cycle baseBackoffCycles = 64;

    /** Exponential backoff ceiling. */
    Cycle maxBackoffCycles = 8192;

    /**
     * Installed as the probe protocol's source-side setup timer (0
     * keeps the network's current setting).  Bounds how long one
     * re-setup attempt can hold reservations.
     */
    Cycle setupTimeoutCycles = 2048;

    /** Backoff randomization: delay is scaled by 1 ± U(0,jitter) so
     * simultaneous failures don't retry in lockstep. */
    double jitter = 0.25;

    SetupPolicy policy = SetupPolicy::Epb;
};

/** What to re-request when an adopted connection fails. */
struct RecoverySpec
{
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    TrafficClass klass = TrafficClass::CBR;
    double rateOrMeanBps = 0.0; ///< CBR rate / VBR mean
    double peakBps = 0.0;       ///< VBR only
    int priority = 0;           ///< VBR only
};

enum class RecoveryState
{
    Recovering, ///< retries in progress
    Recovered,  ///< replacement connection established
    Abandoned   ///< retry budget exhausted
};

struct RecoveryStatus
{
    RecoveryState state = RecoveryState::Recovering;
    ConnId replacement = kInvalidConn; ///< valid once Recovered
    unsigned attempts = 0;             ///< setups launched so far
};

class RecoveryManager : public Clocked
{
  public:
    /**
     * Subscribe to @p net's connection-failure hook (when enabled) and
     * install the configured setup timeout.  @p seed drives backoff
     * jitter.
     */
    RecoveryManager(Network &net, RecoveryConfig cfg,
                    std::uint64_t seed);

    /** Unhooks from the network. */
    ~RecoveryManager() override;

    RecoveryManager(const RecoveryManager &) = delete;
    RecoveryManager &operator=(const RecoveryManager &) = delete;

    /**
     * Register a connection for recovery.  Unadopted connections fail
     * without recovery (the pre-fault behavior).  On successful
     * recovery the replacement is adopted automatically with the same
     * spec, so repeated failures keep being repaired.
     */
    void adopt(ConnId id, const RecoverySpec &spec);

    /** Drop a connection from recovery (e.g. host closed it). */
    void forget(ConnId id);

    bool adopted(ConnId id) const { return specs.count(id) != 0; }

    /**
     * Recovery status keyed by the *failed* connection id; nullptr if
     * that id never failed while adopted.  Survives completion, so a
     * host can discover its replacement id any number of cycles later.
     */
    const RecoveryStatus *status(ConnId failed_id) const;

    void evaluate(Cycle now) override;
    void advance(Cycle) override {}

    const RecoveryConfig &config() const { return cfg; }

    std::uint64_t failuresSeen() const { return statFailures; }
    std::uint64_t retriesLaunched() const { return statRetries; }
    std::uint64_t connectionsRecovered() const { return statRecovered; }
    std::uint64_t connectionsAbandoned() const { return statAbandoned; }
    std::size_t activeRecoveries() const { return active.size(); }

    /** Register recovery counters under @p prefix ("recovery."). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix = "recovery.");

    /**
     * Register the recovery ledger self-checks: every active attempt
     * is well-formed (valid failed id, launch count within the retry
     * budget, a Recovering status entry), and completed + active
     * recoveries always account for every failure seen.
     */
    void registerInvariants(InvariantChecker &chk,
                            unsigned period = 1) const;

  private:
    struct Attempt
    {
        ConnId origId = kInvalidConn;
        RecoverySpec spec;
        unsigned attempt = 0; ///< setups launched
        Cycle nextTryAt = 0;
        std::uint64_t token = 0;
        bool haveToken = false;
    };

    void onFailure(ConnId id, NodeId src, NodeId dst,
                   TrafficClass klass, Cycle now);

    /** Backoff before launch number @p attempt (1-based), jittered. */
    Cycle backoffFor(unsigned attempt);

    Network &net;
    RecoveryConfig cfg;
    Rng rng;
    std::unordered_map<ConnId, RecoverySpec> specs;
    std::unordered_map<ConnId, RecoveryStatus> results;
    std::vector<Attempt> active;
    std::uint64_t statFailures = 0;
    std::uint64_t statRetries = 0;
    std::uint64_t statRecovered = 0;
    std::uint64_t statAbandoned = 0;
};

} // namespace mmr

#endif // MMR_FAULT_RECOVERY_HH
