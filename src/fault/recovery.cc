#include "fault/recovery.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/simclock.hh"
#include "obs/flight_recorder.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "sim/invariant.hh"

namespace mmr
{

RecoveryManager::RecoveryManager(Network &net_, RecoveryConfig cfg_,
                                 std::uint64_t seed)
    : net(net_), cfg(cfg_), rng(seed ^ 0x8ecf0e11ab1e5eedULL)
{
    if (!cfg.enabled)
        return;
    if (cfg.setupTimeoutCycles != 0)
        net.probes().setSetupTimeout(cfg.setupTimeoutCycles);
    net.setConnectionFailureHook(
        [this](ConnId id, NodeId src, NodeId dst, TrafficClass klass) {
            onFailure(id, src, dst, klass, simclock::now());
        });
}

RecoveryManager::~RecoveryManager()
{
    if (cfg.enabled)
        net.setConnectionFailureHook(nullptr);
}

void
RecoveryManager::adopt(ConnId id, const RecoverySpec &spec)
{
    mmr_assert(id != kInvalidConn, "cannot adopt an invalid connection");
    mmr_assert(spec.klass == TrafficClass::CBR ||
                   spec.klass == TrafficClass::VBR,
               "recovery adopts CBR/VBR connections only");
    specs[id] = spec;
}

void
RecoveryManager::forget(ConnId id)
{
    specs.erase(id);
}

const RecoveryStatus *
RecoveryManager::status(ConnId failed_id) const
{
    const auto it = results.find(failed_id);
    return it == results.end() ? nullptr : &it->second;
}

void
RecoveryManager::onFailure(ConnId id, NodeId, NodeId, TrafficClass,
                           Cycle now)
{
    const auto it = specs.find(id);
    if (it == specs.end())
        return; // not adopted: fails like the pre-recovery network
    ++statFailures;
    Attempt a;
    a.origId = id;
    a.spec = it->second;
    a.nextTryAt = now + backoffFor(1);
    specs.erase(it); // the failed id is dead; replacement re-adopted
    results[id] = RecoveryStatus{};
    active.push_back(a);
    MMR_OBS_EVENT(TraceCat::Fault, "recovery_start", now,
                  a.spec.src, id,
                  static_cast<std::int32_t>(a.spec.dst));
}

Cycle
RecoveryManager::backoffFor(unsigned attempt)
{
    mmr_assert(attempt >= 1, "backoff is for launch numbers >= 1");
    const unsigned shift = std::min(attempt - 1, 32u);
    Cycle delay = cfg.baseBackoffCycles << shift;
    if (delay > cfg.maxBackoffCycles || delay < cfg.baseBackoffCycles)
        delay = cfg.maxBackoffCycles; // cap (also catches overflow)
    if (cfg.jitter > 0.0) {
        const double f =
            1.0 + cfg.jitter * (rng.uniform() * 2.0 - 1.0);
        delay = static_cast<Cycle>(static_cast<double>(delay) * f);
    }
    return std::max<Cycle>(delay, 1);
}

void
RecoveryManager::evaluate(Cycle now)
{
    for (std::size_t i = 0; i < active.size();) {
        Attempt &a = active[i];
        if (a.haveToken) {
            const Network::TimedOutcome *r = net.timedResult(a.token);
            if (!r) {
                ++i; // probe still in flight
                continue;
            }
            a.haveToken = false;
            if (r->accepted) {
                RecoveryStatus &st = results[a.origId];
                st.state = RecoveryState::Recovered;
                st.replacement = r->id;
                st.attempts = a.attempt;
                ++statRecovered;
                // Keep the replacement covered against later faults.
                specs[r->id] = a.spec;
                MMR_OBS_EVENT(TraceCat::Fault,
                              "recovery_rerouted", now, a.spec.src,
                              a.origId,
                              static_cast<std::int32_t>(r->id));
                active.erase(active.begin() +
                             static_cast<std::ptrdiff_t>(i));
                continue;
            }
            if (a.attempt >= cfg.maxRetries) {
                RecoveryStatus &st = results[a.origId];
                st.state = RecoveryState::Abandoned;
                st.attempts = a.attempt;
                ++statAbandoned;
                MMR_OBS_EVENT(TraceCat::Fault, "recovery_abandoned",
                              now, a.spec.src, a.origId,
                              static_cast<std::int32_t>(a.attempt));
                // Black-box snapshot: an abandonment is the fault
                // subsystem's terminal failure — dump the events that
                // led here while they are still in the ring.
                FlightRecorder::dumpActive("recovery_abandoned");
                active.erase(active.begin() +
                             static_cast<std::ptrdiff_t>(i));
                continue;
            }
            a.nextTryAt = now + backoffFor(a.attempt + 1);
        } else if (now >= a.nextTryAt) {
            ++a.attempt;
            ++statRetries;
            const RecoverySpec &s = a.spec;
            a.token =
                s.klass == TrafficClass::CBR
                    ? net.openCbrTimed(s.src, s.dst, s.rateOrMeanBps,
                                       now, cfg.policy)
                    : net.openVbrTimed(s.src, s.dst, s.rateOrMeanBps,
                                       s.peakBps, s.priority, now,
                                       cfg.policy);
            a.haveToken = true;
            MMR_TRACE_INSTANT(TraceCat::Fault, "recovery_retry", now,
                              s.src, a.origId,
                              static_cast<std::int32_t>(a.attempt));
        }
        ++i;
    }
}

void
RecoveryManager::registerStats(StatsRegistry &reg,
                               const std::string &prefix)
{
    reg.addCounter(prefix + "failures", &statFailures);
    reg.addCounter(prefix + "retries", &statRetries);
    reg.addCounter(prefix + "recovered", &statRecovered);
    reg.addCounter(prefix + "abandoned", &statAbandoned);
    reg.addGauge(prefix + "active", [this] {
        return static_cast<double>(active.size());
    });
}

void
RecoveryManager::registerInvariants(InvariantChecker &chk,
                                    unsigned period) const
{
    chk.add(
        "recovery-attempts",
        [this](Cycle) {
            for (const Attempt &a : active) {
                if (a.origId == kInvalidConn) {
                    mmr_invariant_violated(
                        "recovery-attempts",
                        "active attempt with invalid failed id");
                }
                if (a.attempt > cfg.maxRetries) {
                    mmr_invariant_violated(
                        "recovery-attempts", "conn ", a.origId,
                        " launched ", a.attempt,
                        " setups, budget is ", cfg.maxRetries);
                }
                const auto it = results.find(a.origId);
                if (it == results.end() ||
                    it->second.state != RecoveryState::Recovering) {
                    mmr_invariant_violated(
                        "recovery-attempts", "conn ", a.origId,
                        " active without a Recovering status entry");
                }
            }
        },
        period);
    chk.add(
        "recovery-ledger",
        [this](Cycle) {
            if (statRecovered + statAbandoned + active.size() !=
                statFailures) {
                mmr_invariant_violated(
                    "recovery-ledger", "recovered ", statRecovered,
                    " + abandoned ", statAbandoned, " + active ",
                    active.size(), " != failures seen ", statFailures);
            }
        },
        period);
}

} // namespace mmr
