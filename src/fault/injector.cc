#include "fault/injector.hh"

#include "base/logging.hh"
#include "obs/stats_registry.hh"
#include "sim/invariant.hh"

namespace mmr
{

FaultInjector::FaultInjector(Network &net_, FaultPlan plan,
                             std::uint64_t seed)
    : net(net_), thePlan(std::move(plan)),
      corruptRng(seed ^ 0xc0ffee0ddfaded11ULL),
      dropRng(seed ^ 0x9d70bab1e5e7d09fULL)
{
    const FaultModel &m = thePlan.model();
    if (m.corruptRate > 0.0) {
        net.setLinkCorruptHook(
            [this, rate = m.corruptRate](NodeId, PortId, const Flit &) {
                if (!corruptRng.chance(rate))
                    return false;
                ++statCorrupted;
                return true;
            });
    }
    if (m.probeDropRate > 0.0) {
        if (net.probes().setupTimeout() == 0)
            net.probes().setSetupTimeout(kDefaultSetupTimeout);
        net.probes().setMessageLoss(
            [this, rate = m.probeDropRate](const TimedSetup &) {
                if (!dropRng.chance(rate))
                    return false;
                ++statDropped;
                return true;
            });
    }
}

FaultInjector::~FaultInjector()
{
    if (thePlan.model().corruptRate > 0.0)
        net.setLinkCorruptHook(nullptr);
    if (thePlan.model().probeDropRate > 0.0)
        net.probes().setMessageLoss(nullptr);
}

void
FaultInjector::evaluate(Cycle now)
{
    const auto &events = thePlan.events();
    while (nextEvent < events.size() && events[nextEvent].at <= now) {
        const FaultEvent &ev = events[nextEvent++];
        if (ev.kind == FaultEvent::Kind::LinkDown) {
            if (net.failLink(ev.a, ev.b))
                ++statDowns;
            else
                ++statSkipped;
        } else {
            if (net.repairLink(ev.a, ev.b))
                ++statUps;
            else
                ++statSkipped;
        }
    }
}

void
FaultInjector::registerStats(StatsRegistry &reg,
                             const std::string &prefix)
{
    reg.addCounter(prefix + "link_downs", &statDowns);
    reg.addCounter(prefix + "link_ups", &statUps);
    reg.addCounter(prefix + "events_skipped", &statSkipped);
    reg.addCounter(prefix + "flits_corrupted", &statCorrupted);
    reg.addCounter(prefix + "probe_msgs_dropped", &statDropped);
}

void
FaultInjector::registerInvariants(InvariantChecker &chk,
                                  unsigned period) const
{
    chk.add(
        "fault-event-cursor",
        [this](Cycle now) {
            const auto &events = thePlan.events();
            if (nextEvent > events.size()) {
                mmr_invariant_violated(
                    "fault-event-cursor", "cursor ", nextEvent,
                    " past plan end ", events.size());
            }
            // The injector ticks before the checker, so by audit time
            // every event due at `now` must have been applied.
            if (nextEvent < events.size() &&
                events[nextEvent].at <= now) {
                mmr_invariant_violated(
                    "fault-event-cursor", "event ", nextEvent,
                    " due at cycle ", events[nextEvent].at,
                    " still unapplied at cycle ", now);
            }
        },
        period);
    chk.add(
        "fault-event-ledger",
        [this](Cycle) {
            if (statDowns + statUps + statSkipped != nextEvent) {
                mmr_invariant_violated(
                    "fault-event-ledger", "applied ", statDowns, "+",
                    statUps, "+", statSkipped,
                    " events but cursor is at ", nextEvent);
            }
        },
        period);
}

} // namespace mmr
