/**
 * @file
 * Applies a FaultPlan to a live Network.
 *
 * The injector is a Clocked component registered ahead of the network:
 * each cycle it applies the plan's due link down/up events through
 * Network::failLink()/repairLink() (which tear down crossing
 * connections, recompute up*-down* routing and fire the failure hook),
 * and it owns the two stochastic fault hooks — flit corruption on
 * inter-router links and setup-message loss in the probe protocol —
 * each driven by its own seed-derived Rng so fault draws never perturb
 * the traffic models' random streams.
 */

#ifndef MMR_FAULT_INJECTOR_HH
#define MMR_FAULT_INJECTOR_HH

#include <cstdint>

#include "base/rng.hh"
#include "fault/fault_plan.hh"
#include "network/network.hh"
#include "sim/kernel.hh"

namespace mmr
{

class InvariantChecker;
class StatsRegistry;

class FaultInjector : public Clocked
{
  public:
    /**
     * Install the plan's stochastic hooks on @p net and prepare to
     * replay its events.  If the plan drops setup messages and the
     * probe manager has no setup timeout yet, a default timeout is
     * installed (a lost probe's reservations must be reclaimable).
     * @p seed feeds the corruption and probe-drop Rngs.
     */
    FaultInjector(Network &net, FaultPlan plan, std::uint64_t seed);

    /** Uninstalls the hooks this injector placed on the network. */
    ~FaultInjector() override;

    FaultInjector(const FaultInjector &) = delete;
    FaultInjector &operator=(const FaultInjector &) = delete;

    /** Apply every plan event whose cycle has arrived. */
    void evaluate(Cycle now) override;
    void advance(Cycle) override {}

    const FaultPlan &plan() const { return thePlan; }

    /** All scheduled events applied? */
    bool done() const { return nextEvent >= thePlan.events().size(); }

    std::uint64_t linkDownsApplied() const { return statDowns; }
    std::uint64_t linkUpsApplied() const { return statUps; }
    /** Events Network rejected (link already in that state). */
    std::uint64_t eventsSkipped() const { return statSkipped; }
    std::uint64_t flitsCorrupted() const { return statCorrupted; }
    std::uint64_t probeMessagesDropped() const { return statDropped; }

    /** Fall-back probe-protocol timeout installed when the plan drops
     * messages and nobody configured one. */
    static constexpr Cycle kDefaultSetupTimeout = 4096;

    /** Register fault counters under @p prefix ("fault."). */
    void registerStats(StatsRegistry &reg,
                       const std::string &prefix = "fault.");

    /**
     * Register the injector's self-checks: the event cursor never
     * passes the plan's end, every due event has been applied by the
     * end of its cycle, and the applied/skipped ledger matches the
     * cursor.  The checker must tick after the injector.
     */
    void registerInvariants(InvariantChecker &chk,
                            unsigned period = 1) const;

  private:
    Network &net;
    FaultPlan thePlan;
    std::size_t nextEvent = 0;
    Rng corruptRng;
    Rng dropRng;
    std::uint64_t statDowns = 0;
    std::uint64_t statUps = 0;
    std::uint64_t statSkipped = 0;
    std::uint64_t statCorrupted = 0;
    std::uint64_t statDropped = 0;
};

} // namespace mmr

#endif // MMR_FAULT_INJECTOR_HH
