#include "fault/fault_plan.hh"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <unordered_set>

#include "base/logging.hh"
#include "base/rng.hh"

namespace mmr
{

namespace
{

/** Canonical undirected-link key (low node in the high half so keys
 * sort like (min, max) pairs). */
std::uint64_t
linkKey(NodeId a, NodeId b)
{
    const NodeId lo = std::min(a, b);
    const NodeId hi = std::max(a, b);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/** All undirected links as (low, high) node pairs, in the topology's
 * deterministic edge-insertion order. */
std::vector<std::pair<NodeId, NodeId>>
enumerateLinks(const Topology &topo)
{
    std::vector<std::pair<NodeId, NodeId>> out;
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        for (const auto &port : topo.ports(n))
            if (n < port.neighbor)
                out.emplace_back(n, port.neighbor);
    return out;
}

/** Is the graph minus @p down (plus, optionally, one extra link) still
 * connected? */
bool
connectedWithout(const Topology &topo,
                 const std::unordered_set<std::uint64_t> &down,
                 std::uint64_t extra_down)
{
    const unsigned n = topo.numNodes();
    if (n <= 1)
        return true;
    std::vector<bool> seen(n, false);
    std::vector<NodeId> stack{0};
    seen[0] = true;
    unsigned reached = 1;
    while (!stack.empty()) {
        const NodeId at = stack.back();
        stack.pop_back();
        for (const auto &port : topo.ports(at)) {
            const std::uint64_t key = linkKey(at, port.neighbor);
            if (key == extra_down || down.count(key))
                continue;
            if (!seen[port.neighbor]) {
                seen[port.neighbor] = true;
                ++reached;
                stack.push_back(port.neighbor);
            }
        }
    }
    return reached == n;
}

std::vector<std::string>
splitList(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string item;
    std::istringstream iss(s);
    while (std::getline(iss, item, sep))
        if (!item.empty())
            out.push_back(item);
    return out;
}

double
parseNumber(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    const double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0')
        mmr_fatal("bad value '", val, "' for fault-model key '", key,
                  "'");
    return v;
}

} // namespace

FaultModel
parseFaultModel(const std::string &spec)
{
    FaultModel m;
    for (const std::string &kv : splitList(spec, ',')) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos)
            mmr_fatal("fault-model entry '", kv, "' is not key=value");
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "fail")
            m.linkFailPer10k = parseNumber(key, val);
        else if (key == "repair")
            m.meanRepairCycles =
                static_cast<Cycle>(parseNumber(key, val));
        else if (key == "drop")
            m.probeDropRate = parseNumber(key, val);
        else if (key == "corrupt")
            m.corruptRate = parseNumber(key, val);
        else if (key == "horizon")
            m.horizon = static_cast<Cycle>(parseNumber(key, val));
        else if (key == "partition")
            m.allowPartition = parseNumber(key, val) != 0.0;
        else
            mmr_fatal("unknown fault-model key '", key,
                      "' (expect fail/repair/drop/corrupt/horizon/"
                      "partition)");
    }
    if (m.linkFailPer10k < 0 || m.probeDropRate < 0 ||
        m.probeDropRate > 1 || m.corruptRate < 0 || m.corruptRate > 1)
        mmr_fatal("fault-model rates out of range in '", spec, "'");
    return m;
}

FaultPlan
FaultPlan::random(const Topology &topo, const FaultModel &model,
                  std::uint64_t seed)
{
    FaultPlan plan;
    plan.mdl = model;
    if (model.linkFailPer10k <= 0.0 || model.horizon == 0)
        return plan;

    // Candidate failure windows from independent per-link exponential
    // walks; a pairId ties each repair to its failure so suppressing
    // one suppresses both.
    struct Candidate
    {
        Cycle at;
        FaultEvent::Kind kind;
        NodeId a, b;
        unsigned pairId;
    };
    std::vector<Candidate> cands;
    Rng rng(seed);
    const double mean_gap = 10000.0 / model.linkFailPer10k;
    unsigned pair_id = 0;
    for (const auto &[a, b] : enumerateLinks(topo)) {
        Cycle t = static_cast<Cycle>(rng.exponential(mean_gap));
        while (t < model.horizon) {
            cands.push_back(
                {t, FaultEvent::Kind::LinkDown, a, b, pair_id});
            if (model.meanRepairCycles == 0) {
                ++pair_id;
                break; // no repair: the link stays down forever
            }
            const Cycle up =
                t + 1 +
                static_cast<Cycle>(
                    rng.exponential(double(model.meanRepairCycles)));
            if (up < model.horizon)
                cands.push_back(
                    {up, FaultEvent::Kind::LinkUp, a, b, pair_id});
            ++pair_id;
            t = up + 1 + static_cast<Cycle>(rng.exponential(mean_gap));
        }
    }

    // Chronological replay.  Repairs sort before failures at equal
    // cycles so a failure is judged against the freshest topology.
    std::sort(cands.begin(), cands.end(),
              [](const Candidate &x, const Candidate &y) {
                  if (x.at != y.at)
                      return x.at < y.at;
                  if (x.kind != y.kind)
                      return x.kind == FaultEvent::Kind::LinkUp;
                  return x.pairId < y.pairId;
              });
    std::unordered_set<std::uint64_t> down;
    std::unordered_set<unsigned> skipped;
    for (const Candidate &c : cands) {
        const std::uint64_t key = linkKey(c.a, c.b);
        if (c.kind == FaultEvent::Kind::LinkUp) {
            if (skipped.count(c.pairId))
                continue;
            down.erase(key);
        } else {
            if (!model.allowPartition &&
                !connectedWithout(topo, down, key)) {
                ++plan.skips;
                skipped.insert(c.pairId);
                continue;
            }
            down.insert(key);
        }
        plan.schedule.push_back({c.at, c.kind, c.a, c.b});
    }
    return plan;
}

FaultPlan
FaultPlan::fromEvents(const std::string &spec, const Topology &topo)
{
    FaultPlan plan;
    for (const std::string &tok : splitList(spec, ';')) {
        const auto at_pos = tok.find('@');
        const auto colon = tok.find(':', at_pos);
        const auto dash = tok.find('-', colon);
        if (at_pos == std::string::npos || colon == std::string::npos ||
            dash == std::string::npos)
            mmr_fatal("bad fault event '", tok,
                      "' (expect down@CYCLE:A-B or up@CYCLE:A-B)");
        const std::string kind = tok.substr(0, at_pos);
        FaultEvent ev;
        if (kind == "down")
            ev.kind = FaultEvent::Kind::LinkDown;
        else if (kind == "up")
            ev.kind = FaultEvent::Kind::LinkUp;
        else
            mmr_fatal("bad fault event kind '", kind, "' in '", tok,
                      "'");
        ev.at = static_cast<Cycle>(parseNumber(
            "cycle", tok.substr(at_pos + 1, colon - at_pos - 1)));
        ev.a = static_cast<NodeId>(parseNumber(
            "node", tok.substr(colon + 1, dash - colon - 1)));
        ev.b =
            static_cast<NodeId>(parseNumber("node",
                                            tok.substr(dash + 1)));
        if (ev.a >= topo.numNodes() || ev.b >= topo.numNodes() ||
            !topo.hasLink(ev.a, ev.b))
            mmr_fatal("fault event '", tok,
                      "' names a link the topology does not have");
        plan.schedule.push_back(ev);
    }
    std::stable_sort(plan.schedule.begin(), plan.schedule.end(),
                     [](const FaultEvent &x, const FaultEvent &y) {
                         return x.at < y.at;
                     });
    return plan;
}

std::string
FaultPlan::toSpec() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const FaultEvent &ev = schedule[i];
        if (i)
            oss << ';';
        oss << (ev.kind == FaultEvent::Kind::LinkDown ? "down" : "up")
            << '@' << ev.at << ':' << ev.a << '-' << ev.b;
    }
    return oss.str();
}

void
FaultPlan::printJson(std::ostream &os) const
{
    os << "{\"model\":{\"fail_per_10k\":" << mdl.linkFailPer10k
       << ",\"mean_repair_cycles\":" << mdl.meanRepairCycles
       << ",\"probe_drop_rate\":" << mdl.probeDropRate
       << ",\"corrupt_rate\":" << mdl.corruptRate
       << ",\"horizon\":" << mdl.horizon
       << ",\"allow_partition\":" << (mdl.allowPartition ? 1 : 0)
       << "},\"partition_skips\":" << skips << ",\"events\":[";
    for (std::size_t i = 0; i < schedule.size(); ++i) {
        const FaultEvent &ev = schedule[i];
        if (i)
            os << ',';
        os << "{\"at\":" << ev.at << ",\"kind\":\""
           << (ev.kind == FaultEvent::Kind::LinkDown ? "down" : "up")
           << "\",\"a\":" << ev.a << ",\"b\":" << ev.b << '}';
    }
    os << "]}";
}

} // namespace mmr
