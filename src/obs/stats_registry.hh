/**
 * @file
 * Hierarchical registry of named simulation statistics.
 *
 * Every observable quantity in the router gets a dotted name
 * (`router0.in2.vc5.occupancy`, `sched.matching_size.mean`,
 * `admission.out1.allocated_cycles`) bound to a probe callback that
 * reads the live value on demand.  Registration is cheap and carries
 * no per-cycle cost: nothing is evaluated until a sampler, a dump, or
 * a VCD writer asks.  Two kinds are distinguished so consumers can
 * integrate correctly:
 *
 *  - Counter: monotonically non-decreasing event count (flits
 *    forwarded, credits consumed); rates come from deltas;
 *  - Gauge: instantaneous level (VC occupancy, allocated bandwidth).
 *
 * Output (JSON dump, sampler columns) is ordered lexicographically by
 * name so files are bit-identical across same-seed runs regardless of
 * registration order.
 */

#ifndef MMR_OBS_STATS_REGISTRY_HH
#define MMR_OBS_STATS_REGISTRY_HH

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

namespace mmr
{

enum class StatKind
{
    Counter, ///< monotonic event count
    Gauge    ///< instantaneous level
};

namespace obs
{

/**
 * Render a double for machine-readable output: integers (the common
 * case for counters) print without a fraction, everything else with
 * round-trip precision ("%.17g").  Deterministic for equal inputs, so
 * same-seed runs produce bit-identical stats/trace files.
 */
std::string formatNumber(double v);

} // namespace obs

class StatsRegistry
{
  public:
    /** Probe callback: reads the statistic's current value. */
    using ProbeFn = std::function<double()>;

    struct Entry
    {
        std::string name;
        StatKind kind;
        ProbeFn probe;
    };

    /** Register a monotonic counter probe; duplicate names panic. */
    void addCounter(const std::string &name, ProbeFn probe);

    /** Register an instantaneous gauge probe; duplicate names panic. */
    void addGauge(const std::string &name, ProbeFn probe);

    /** Convenience: bind a counter directly to an integer variable
     * that outlives the registry. */
    void addCounter(const std::string &name, const std::uint64_t *v);

    std::size_t size() const { return entries.size(); }
    bool has(const std::string &name) const;

    /** Read one statistic by name; panics on unknown names. */
    double value(const std::string &name) const;

    const Entry &entry(std::size_t i) const;

    /** All names, lexicographically sorted (deterministic). */
    std::vector<std::string> names() const;

    /**
     * Resolve selection patterns to entry indices, sorted by name.
     * A pattern is an exact name, a subtree prefix ending in ".", or
     * a prefix glob ending in "*" ("router0.in2.*"); "*" and an empty
     * pattern list select everything.  Unknown exact names panic so
     * typos do not silently sample nothing.
     */
    std::vector<std::size_t>
    select(const std::vector<std::string> &patterns) const;

    /**
     * Dump every statistic's current value as one JSON object
     * (sorted by name): {"name": {"kind": "counter", "value": v}, ...}
     */
    void dumpJson(std::ostream &os) const;

  private:
    void add(const std::string &name, StatKind kind, ProbeFn probe);

    /** Indices of all entries, sorted by name. */
    std::vector<std::size_t> sortedIndices() const;

    std::vector<Entry> entries;
    std::unordered_map<std::string, std::size_t> index;
};

} // namespace mmr

#endif // MMR_OBS_STATS_REGISTRY_HH
