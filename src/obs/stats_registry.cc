#include "obs/stats_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "base/logging.hh"

namespace mmr
{

namespace obs
{

std::string
formatNumber(double v)
{
    if (!std::isfinite(v))
        return "0"; // JSON has no inf/nan; clamp defensively
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace obs

void
StatsRegistry::add(const std::string &name, StatKind kind, ProbeFn probe)
{
    mmr_assert(!name.empty(), "statistic needs a name");
    mmr_assert(probe != nullptr, "statistic '", name, "' needs a probe");
    if (index.count(name))
        mmr_panic("statistic '", name, "' registered twice");
    index.emplace(name, entries.size());
    entries.push_back(Entry{name, kind, std::move(probe)});
}

void
StatsRegistry::addCounter(const std::string &name, ProbeFn probe)
{
    add(name, StatKind::Counter, std::move(probe));
}

void
StatsRegistry::addGauge(const std::string &name, ProbeFn probe)
{
    add(name, StatKind::Gauge, std::move(probe));
}

void
StatsRegistry::addCounter(const std::string &name, const std::uint64_t *v)
{
    mmr_assert(v != nullptr, "counter '", name, "' bound to null");
    add(name, StatKind::Counter,
        [v] { return static_cast<double>(*v); });
}

bool
StatsRegistry::has(const std::string &name) const
{
    return index.count(name) != 0;
}

double
StatsRegistry::value(const std::string &name) const
{
    auto it = index.find(name);
    if (it == index.end())
        mmr_panic("unknown statistic '", name, "'");
    return entries[it->second].probe();
}

const StatsRegistry::Entry &
StatsRegistry::entry(std::size_t i) const
{
    mmr_assert(i < entries.size(), "statistic index out of range");
    return entries[i];
}

std::vector<std::size_t>
StatsRegistry::sortedIndices() const
{
    std::vector<std::size_t> idx(entries.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [this](std::size_t a, std::size_t b) {
                  return entries[a].name < entries[b].name;
              });
    return idx;
}

std::vector<std::string>
StatsRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (std::size_t i : sortedIndices())
        out.push_back(entries[i].name);
    return out;
}

std::vector<std::size_t>
StatsRegistry::select(const std::vector<std::string> &patterns) const
{
    std::vector<bool> picked(entries.size(), false);
    if (patterns.empty()) {
        picked.assign(entries.size(), true);
    }
    for (const std::string &pat : patterns) {
        if (pat == "*" || pat.empty()) {
            picked.assign(entries.size(), true);
            continue;
        }
        if (!pat.empty() && (pat.back() == '*' || pat.back() == '.')) {
            const std::string prefix =
                pat.back() == '*' ? pat.substr(0, pat.size() - 1) : pat;
            bool any = false;
            for (std::size_t i = 0; i < entries.size(); ++i) {
                if (entries[i].name.rfind(prefix, 0) == 0) {
                    picked[i] = true;
                    any = true;
                }
            }
            if (!any)
                mmr_warn("stat pattern '", pat, "' matched nothing");
            continue;
        }
        auto it = index.find(pat);
        if (it == index.end())
            mmr_panic("unknown statistic '", pat,
                      "' in selection (use a trailing '*' for a "
                      "prefix match)");
        picked[it->second] = true;
    }
    std::vector<std::size_t> out;
    for (std::size_t i : sortedIndices())
        if (picked[i])
            out.push_back(i);
    return out;
}

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    os << "{";
    bool first = true;
    for (std::size_t i : sortedIndices()) {
        const Entry &e = entries[i];
        os << (first ? "" : ",") << "\n  \"" << e.name << "\": {\"kind\": \""
           << (e.kind == StatKind::Counter ? "counter" : "gauge")
           << "\", \"value\": " << obs::formatNumber(e.probe()) << "}";
        first = false;
    }
    os << "\n}\n";
}

} // namespace mmr
