#include "obs/vcd.hh"

#include <cstdio>
#include <ostream>

#include "base/logging.hh"

namespace mmr
{

VcdWriter::VcdWriter(std::ostream &os, std::string timescale_)
    : out(os), timescale(std::move(timescale_))
{
}

VcdWriter::~VcdWriter()
{
    finish();
}

std::string
VcdWriter::freshCode()
{
    // Printable identifier characters per the VCD grammar: '!'..'~'.
    std::string code;
    std::size_t n = nextCode++;
    do {
        code.push_back(static_cast<char>('!' + n % 94));
        n /= 94;
    } while (n > 0);
    return code;
}

VcdWriter::SignalId
VcdWriter::addReal(const std::string &dotted_path)
{
    mmr_assert(!headerWritten,
               "VCD signals must be added before the first tick");
    Signal s;
    s.path = dotted_path;
    s.code = freshCode();
    s.real = true;
    s.width = 64;
    signals.push_back(std::move(s));
    return signals.size() - 1;
}

VcdWriter::SignalId
VcdWriter::addWire(const std::string &dotted_path, unsigned width)
{
    mmr_assert(!headerWritten,
               "VCD signals must be added before the first tick");
    mmr_assert(width >= 1 && width <= 64, "wire width out of range");
    Signal s;
    s.path = dotted_path;
    s.code = freshCode();
    s.real = false;
    s.width = width;
    signals.push_back(std::move(s));
    return signals.size() - 1;
}

namespace
{

/** Split "a.b.c" into {"a","b"} scopes and the leaf name "c". */
std::vector<std::string>
splitPath(const std::string &path)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t dot = path.find('.', start);
        if (dot == std::string::npos) {
            parts.push_back(path.substr(start));
            break;
        }
        parts.push_back(path.substr(start, dot - start));
        start = dot + 1;
    }
    return parts;
}

} // namespace

void
VcdWriter::writeHeader()
{
    out << "$version mmr observability layer $end\n";
    out << "$timescale " << timescale << " $end\n";

    // Emit $scope blocks for the dotted hierarchy.  Signals were
    // registered in caller order; sort-free emission tracks the open
    // scope stack and reuses it between adjacent signals.
    std::vector<std::string> open;
    for (Signal &s : signals) {
        std::vector<std::string> parts = splitPath(s.path);
        const std::string leaf = parts.back();
        parts.pop_back();
        // Close scopes that no longer match.
        std::size_t common = 0;
        while (common < open.size() && common < parts.size() &&
               open[common] == parts[common])
            ++common;
        while (open.size() > common) {
            out << "$upscope $end\n";
            open.pop_back();
        }
        for (std::size_t i = common; i < parts.size(); ++i) {
            out << "$scope module " << parts[i] << " $end\n";
            open.push_back(parts[i]);
        }
        if (s.real) {
            out << "$var real 64 " << s.code << ' ' << leaf << " $end\n";
        } else {
            out << "$var wire " << s.width << ' ' << s.code << ' '
                << leaf << " $end\n";
        }
    }
    while (!open.empty()) {
        out << "$upscope $end\n";
        open.pop_back();
    }
    out << "$enddefinitions $end\n";
    headerWritten = true;
}

void
VcdWriter::tick(Cycle now)
{
    if (!headerWritten)
        writeHeader();
    mmr_assert(!timeDirty || now >= pendingTime,
               "VCD time must not go backwards");
    pendingTime = now;
    timeDirty = true;
}

void
VcdWriter::emitTimestamp()
{
    if (timeDirty) {
        out << '#' << pendingTime << '\n';
        timeDirty = false;
    }
}

void
VcdWriter::writeValue(Signal &s)
{
    emitTimestamp();
    if (s.real) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "r%.16g %s", s.lastReal,
                      s.code.c_str());
        out << buf << '\n';
    } else {
        out << 'b';
        for (unsigned bit = s.width; bit-- > 0;)
            out << (((s.lastBits >> bit) & 1u) ? '1' : '0');
        out << ' ' << s.code << '\n';
    }
}

void
VcdWriter::set(SignalId id, double value)
{
    mmr_assert(id < signals.size(), "VCD signal out of range");
    mmr_assert(headerWritten, "VCD set() before the first tick");
    Signal &s = signals[id];
    mmr_assert(s.real, "real value on a wire signal");
    if (s.hasLast && s.lastReal == value)
        return;
    s.lastReal = value;
    s.hasLast = true;
    writeValue(s);
}

void
VcdWriter::set(SignalId id, std::uint64_t value)
{
    mmr_assert(id < signals.size(), "VCD signal out of range");
    mmr_assert(headerWritten, "VCD set() before the first tick");
    Signal &s = signals[id];
    mmr_assert(!s.real, "integer value on a real signal");
    if (s.hasLast && s.lastBits == value)
        return;
    s.lastBits = value;
    s.hasLast = true;
    writeValue(s);
}

void
VcdWriter::finish()
{
    out.flush();
}

} // namespace mmr
