#include "obs/histogram.hh"

#include <cmath>
#include <ostream>

namespace mmr
{

const char *
to_string(LatencyStage s)
{
    switch (s) {
      case LatencyStage::SourceQueue:
        return "source_queue";
      case LatencyStage::VcResidency:
        return "vc_residency";
      case LatencyStage::ArbWait:
        return "arb_wait";
      case LatencyStage::SwitchTraversal:
        return "switch_traversal";
      case LatencyStage::LinkTransit:
        return "link_transit";
      case LatencyStage::NumStages:
        break;
    }
    return "?";
}

std::uint64_t
LatencyHistogram::bucketLowerBound(std::size_t index)
{
    if (index < kSubBuckets)
        return index;
    const auto major = static_cast<unsigned>(index / kSubBuckets);
    const auto sub = static_cast<unsigned>(index % kSubBuckets);
    // Inverse of bucketIndex: major m >= 1 covers values with msb
    // (m + kSubBits - 1); the sub-bucket supplies the next kSubBits.
    const unsigned msb = major + kSubBits - 1;
    return (1ULL << msb) |
           (static_cast<std::uint64_t>(sub) << (msb - kSubBits));
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts[i] += other.counts[i];
    total += other.total;
    if (other.total) {
        if (other.maxSeen > maxSeen)
            maxSeen = other.maxSeen;
        if (other.minSeen < minSeen)
            minSeen = other.minSeen;
    }
}

void
LatencyHistogram::reset()
{
    for (std::uint64_t &c : counts)
        c = 0;
    total = 0;
    maxSeen = 0;
    minSeen = ~0ULL;
}

std::uint64_t
LatencyHistogram::percentile(double p) const
{
    if (total == 0)
        return 0;
    if (p >= 100.0)
        return maxSeen;
    if (p < 0.0)
        p = 0.0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(total)));
    const std::uint64_t want = target == 0 ? 1 : target;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        cum += counts[i];
        if (cum >= want) {
            // Never report a tail beyond the recorded maximum.
            const std::uint64_t low = bucketLowerBound(i);
            return low > maxSeen ? maxSeen : low;
        }
    }
    return maxSeen;
}

double
LatencyHistogram::mean() const
{
    if (total == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < kBuckets; ++i)
        if (counts[i])
            sum += static_cast<double>(counts[i]) *
                   static_cast<double>(bucketLowerBound(i));
    return sum / static_cast<double>(total);
}

LatencySummary
LatencyHistogram::summarize() const
{
    LatencySummary s;
    s.count = total;
    s.p50 = percentile(50.0);
    s.p90 = percentile(90.0);
    s.p99 = percentile(99.0);
    s.p999 = percentile(99.9);
    s.maxCycles = maxValue();
    return s;
}

bool
LatencyHistogram::identical(const LatencyHistogram &other) const
{
    if (total != other.total || maxSeen != other.maxSeen ||
        minSeen != other.minSeen)
        return false;
    for (std::size_t i = 0; i < kBuckets; ++i)
        if (counts[i] != other.counts[i])
            return false;
    return true;
}

void
LatencyHistogram::writeJson(std::ostream &os) const
{
    os << "{\"count\":" << total << ",\"min\":" << minValue()
       << ",\"max\":" << maxValue() << ",\"p50\":" << percentile(50.0)
       << ",\"p90\":" << percentile(90.0)
       << ",\"p99\":" << percentile(99.0)
       << ",\"p999\":" << percentile(99.9) << ",\"buckets\":[";
    bool first = true;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        if (counts[i] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "[" << bucketLowerBound(i) << "," << counts[i] << "]";
    }
    os << "]}";
}

} // namespace mmr
