#include "obs/trace.hh"

#include <ostream>

#include "base/logging.hh"
#include "obs/stats_registry.hh"

namespace mmr
{

thread_local Tracer *Tracer::current = nullptr;

const char *
to_string(TraceCat c)
{
    switch (c) {
      case TraceCat::Flit:
        return "flit";
      case TraceCat::Sched:
        return "sched";
      case TraceCat::Admission:
        return "admission";
      case TraceCat::Credit:
        return "credit";
      case TraceCat::Setup:
        return "setup";
      case TraceCat::Control:
        return "control";
      case TraceCat::Fault:
        return "fault";
      default:
        return "?";
    }
}

std::uint32_t
traceCatMaskFromString(const std::string &spec)
{
    constexpr std::uint32_t all =
        (1u << static_cast<unsigned>(TraceCat::NumCats)) - 1;
    if (spec.empty() || spec == "all")
        return all;
    std::uint32_t mask = 0;
    std::size_t start = 0;
    while (start <= spec.size()) {
        std::size_t comma = spec.find(',', start);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string part = spec.substr(start, comma - start);
        start = comma + 1;
        if (part.empty())
            continue;
        bool known = false;
        for (unsigned c = 0;
             c < static_cast<unsigned>(TraceCat::NumCats); ++c) {
            if (part == to_string(static_cast<TraceCat>(c))) {
                mask |= 1u << c;
                known = true;
                break;
            }
        }
        if (!known)
            mmr_fatal("unknown trace category '", part,
                      "' (want flit|sched|admission|credit|setup|"
                      "control|all)");
    }
    return mask;
}

Tracer::Tracer(std::size_t max_events)
    : catMask((1u << static_cast<unsigned>(TraceCat::NumCats)) - 1),
      maxEvents(max_events)
{
    mmr_assert(maxEvents >= 1, "tracer needs room for events");
}

Tracer::~Tracer()
{
    deactivate();
}

void
Tracer::activate()
{
    mmr_assert(current == nullptr || current == this,
               "another tracer is already active");
    current = this;
}

void
Tracer::deactivate()
{
    if (current == this)
        current = nullptr;
}

void
Tracer::setCycleRange(Cycle from, Cycle to)
{
    mmr_assert(from <= to, "trace cycle range is inverted");
    fromCycle = from;
    toCycle = to;
}

bool
Tracer::push(const Event &e)
{
    if (events.size() >= maxEvents) {
        ++dropped;
        return false;
    }
    events.push_back(e);
    return true;
}

void
Tracer::instant(TraceCat cat, const char *name, Cycle now,
                std::uint32_t lane, ConnId conn, std::int32_t a0,
                std::int32_t a1)
{
    if (!inRange(now))
        return;
    push(Event{now, name, 0.0, conn, a0, a1, lane, cat, 'i'});
}

void
Tracer::counter(TraceCat cat, const char *name, Cycle now, double value)
{
    if (!inRange(now))
        return;
    push(Event{now, name, value, kInvalidConn, -1, -1, 0, cat, 'C'});
}

void
Tracer::writeChromeJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\": \"ns\", \"otherData\": "
          "{\"dropped_events\": "
       << dropped << "},\n\"traceEvents\": [";
    bool first = true;
    for (const Event &e : events) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "{\"name\": \"" << e.name << "\", \"cat\": \""
           << to_string(e.cat) << "\", \"ph\": \"" << e.phase
           << "\", \"ts\": " << e.cycle << ", \"pid\": 0, \"tid\": "
           << e.lane;
        if (e.phase == 'C') {
            os << ", \"args\": {\"value\": "
               << obs::formatNumber(e.value) << "}";
        } else {
            os << ", \"s\": \"t\", \"args\": {";
            bool farg = true;
            if (e.conn != kInvalidConn) {
                os << "\"conn\": " << e.conn;
                farg = false;
            }
            if (e.a0 >= 0) {
                os << (farg ? "" : ", ") << "\"a0\": " << e.a0;
                farg = false;
            }
            if (e.a1 >= 0)
                os << (farg ? "" : ", ") << "\"a1\": " << e.a1;
            os << "}";
        }
        os << "}";
    }
    os << "\n]}\n";
}

} // namespace mmr
