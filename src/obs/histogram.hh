/**
 * @file
 * Log-bucketed latency histograms (HDR-histogram style) for the
 * per-flit stage decomposition and per-class delay distributions.
 *
 * The paper's QoS argument is about *tails*: a router can report a
 * healthy mean while its p99.9 blows every CBR deadline.  StreamStat
 * keeps moments only and PercentileSketch subsamples, so neither can
 * answer "what is the p99.9 switch delay, exactly, for every flit?"
 * without unbounded memory.  LatencyHistogram answers it with a fixed
 * 8 KiB footprint: 64 power-of-two major buckets split into 16
 * logarithmic sub-buckets each, giving <= 6.25% relative error over
 * the full Cycle range and exact counts for values below 16 cycles
 * (where most switch delays land).
 *
 * Everything is integer arithmetic: record() is a few bit operations
 * plus one increment (safe under MMR_HOT_PATH), and merge() is an
 * element-wise count sum — exactly associative and commutative, so
 * sweep shards can be merged in any order with bit-identical results
 * (unlike StreamStat's floating-point merge).
 */

#ifndef MMR_OBS_HISTOGRAM_HH
#define MMR_OBS_HISTOGRAM_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "base/types.hh"

namespace mmr
{

/**
 * The stations a flit visits between creation and switch egress; each
 * gets its own histogram in the MetricsRecorder (§5 reports only the
 * total — the decomposition attributes it).
 */
enum class LatencyStage : std::uint8_t
{
    SourceQueue,     ///< created -> deposited into the input VC
    VcResidency,     ///< deposited -> head of the VC (behind siblings)
    ArbWait,         ///< head of the VC -> switch grant issued
    SwitchTraversal, ///< grant issued -> flit leaves the switch
    LinkTransit,     ///< on the wire between routers (network mode)
    NumStages
};

// mmr-lint: allow(cycle-type) enumerator count, not a duration
constexpr std::size_t kNumLatencyStages =
    static_cast<std::size_t>(LatencyStage::NumStages);

const char *to_string(LatencyStage s);

/** Per-flit stage durations handed to MetricsRecorder::recordDeparture
 * by the router's apply path (all in flit cycles). */
struct StageSample
{
    Cycle sourceQueue = 0;
    Cycle vcResidency = 0;
    Cycle arbWait = 0;
    Cycle switchTraversal = 0;
};

/** Percentile digest of one histogram, as carried by
 * ExperimentResult (plain numbers: digestable, printable, mergeable
 * only via the histogram it came from). */
struct LatencySummary
{
    std::uint64_t count = 0;
    Cycle p50 = 0;
    Cycle p90 = 0;
    Cycle p99 = 0;
    Cycle p999 = 0;
    Cycle maxCycles = 0;
};

class LatencyHistogram
{
  public:
    /** Sub-bucket resolution: 2^4 = 16 logarithmic slices per
     * power-of-two major bucket (<= 1/16 relative error). */
    static constexpr unsigned kSubBits = 4;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;
    /** One major bucket per value bit — the layout covers all 64. */
    static constexpr unsigned kMajorBuckets = 64;
    /** Majors 0..kSubBits collapse into the exact low range, so the
     * flat array holds (64 - 4 + 1) * 16 counters. */
    static constexpr std::size_t kBuckets =
        static_cast<std::size_t>(kMajorBuckets - kSubBits + 1) *
        kSubBuckets;

    /** Flat index of the bucket holding @p v. */
    static std::size_t
    bucketIndex(std::uint64_t v)
    {
        if (v < kSubBuckets)
            return static_cast<std::size_t>(v); // exact low range
        const unsigned msb =
            63u - static_cast<unsigned>(std::countl_zero(v));
        const unsigned major = msb - kSubBits + 1;
        const auto sub = static_cast<unsigned>(
            (v >> (msb - kSubBits)) & (kSubBuckets - 1));
        return static_cast<std::size_t>(major) * kSubBuckets + sub;
    }

    /** Smallest value mapping to bucket @p index (its reported
     * representative: percentiles never over-state a latency). */
    static std::uint64_t bucketLowerBound(std::size_t index);

    /** O(1), allocation-free: bit ops + two increments. */
    MMR_HOT_PATH void
    record(std::uint64_t v)
    {
        ++counts[bucketIndex(v)];
        ++total;
        if (v > maxSeen)
            maxSeen = v;
        if (v < minSeen)
            minSeen = v;
    }

    /** Element-wise count sum: exactly associative and commutative,
     * so shard merge order can never change the result. */
    void merge(const LatencyHistogram &other);

    void reset();

    std::uint64_t count() const { return total; }
    std::uint64_t maxValue() const { return total ? maxSeen : 0; }
    std::uint64_t minValue() const { return total ? minSeen : 0; }
    std::uint64_t bucketCount(std::size_t index) const
    {
        return counts[index];
    }

    /**
     * Value at percentile @p p in [0, 100]: the lower bound of the
     * first bucket whose cumulative count reaches ceil(p/100 * n).
     * Returns 0 with no samples; p >= 100 returns the exact max.
     */
    std::uint64_t percentile(double p) const;

    /** Mean over bucket lower bounds (exact below 16 cycles). */
    double mean() const;

    /** The fixed percentile set every result row reports. */
    LatencySummary summarize() const;

    /** True when every bucket is bit-identical to @p other (used by
     * the serial-vs-parallel sweep merge audit). */
    bool identical(const LatencyHistogram &other) const;

    /**
     * Sparse JSON dump: {"count":N,"min":m,"max":M,"p50":...,
     * "buckets":[[lower_bound,count],...]}.  Deterministic: integer
     * fields only, ascending bucket order.
     */
    void writeJson(std::ostream &os) const;

  private:
    std::uint64_t counts[kBuckets] = {};
    std::uint64_t total = 0;
    std::uint64_t maxSeen = 0;
    std::uint64_t minSeen = ~0ULL;
};

} // namespace mmr

#endif // MMR_OBS_HISTOGRAM_HH
