/**
 * @file
 * Time-series sampler over the stats registry.
 *
 * A StatsSampler is a Clocked kernel component: every N cycles it
 * snapshots a selected set of registry statistics into a ring buffer,
 * answering questions the end-of-run aggregates cannot ("what was
 * port 3's VC occupancy when jitter spiked at cycle 40k?").  Register
 * it with the kernel *after* the components it watches so a sample
 * reflects that cycle's committed state.
 *
 * The ring buffer holds the most recent `capacity` samples; when a
 * run outgrows it the oldest rows are dropped (and counted), keeping
 * memory bounded on arbitrarily long runs.  dumpCsv()/dumpJson()
 * produce deterministic, bit-identical output for same-seed runs.
 * An optional VcdWriter mirrors every sample into a VCD waveform.
 */

#ifndef MMR_OBS_SAMPLER_HH
#define MMR_OBS_SAMPLER_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"
#include "obs/stats_registry.hh"
#include "sim/kernel.hh"

namespace mmr
{

class VcdWriter;

// mmr-lint: allow(clocked-invariants) pure observer: samples registry
// values into a ring buffer and holds no simulation state to audit.
class StatsSampler : public Clocked
{
  public:
    /**
     * @param reg registry to sample (must outlive the sampler)
     * @param period sample every this many cycles (>= 1)
     * @param patterns stat selection (see StatsRegistry::select);
     *        empty selects every registered statistic
     * @param capacity ring-buffer depth in samples
     */
    StatsSampler(const StatsRegistry &reg, Cycle period,
                 const std::vector<std::string> &patterns = {},
                 std::size_t capacity = 65536);

    // Clocked: sample after state commit.
    void evaluate(Cycle now) override { (void)now; }
    void advance(Cycle now) override;

    /** Take one sample immediately (also used by the period tick). */
    void sampleNow(Cycle now);

    /** Columns captured per sample, in output (sorted-name) order. */
    const std::vector<std::string> &columns() const { return colNames; }

    /** Samples currently retained (<= capacity). */
    std::size_t storedSamples() const { return rows.size(); }

    /** Samples taken over the whole run, including evicted ones. */
    std::size_t totalSamples() const { return taken; }

    /** Samples evicted by the ring buffer. */
    std::size_t droppedSamples() const { return dropped; }

    /** Cycle stamp of retained sample @p r (0 = oldest retained). */
    Cycle sampleCycle(std::size_t r) const;

    /** Value of column @p c in retained sample @p r. */
    double value(std::size_t r, std::size_t c) const;

    /**
     * CSV dump: header "cycle,<col>,...", one row per retained
     * sample, oldest first.
     */
    void dumpCsv(std::ostream &os) const;

    /**
     * JSON dump:
     * {"period": N, "columns": [...], "kinds": [...],
     *  "dropped_samples": D, "samples": [[cycle, v...], ...]}
     */
    void dumpJson(std::ostream &os) const;

    /**
     * Mirror every sample into a VCD waveform as real-valued signals
     * (one per column).  The writer must outlive the sampler and must
     * not have been written to yet.
     */
    void attachVcd(VcdWriter *vcd);

  private:
    const StatsRegistry &registry;
    Cycle period;
    std::size_t cap;
    std::vector<std::size_t> selected; ///< registry entry indices
    std::vector<std::string> colNames;

    std::vector<Cycle> cycles; ///< parallel to rows
    std::vector<std::vector<double>> rows;
    std::size_t head = 0; ///< index of the oldest retained row
    std::size_t taken = 0;
    std::size_t dropped = 0;

    VcdWriter *vcdOut = nullptr;
    std::vector<std::size_t> vcdIds;
};

} // namespace mmr

#endif // MMR_OBS_SAMPLER_HH
