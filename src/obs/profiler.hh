/**
 * @file
 * Simulator self-profiling: where does the wall clock go, and how
 * fast is the simulation?
 *
 * The kernel attributes wall time to each registered component when
 * profiling is enabled (Kernel::enableProfiling); this module turns
 * that raw attribution plus run totals into the summary every
 * ExperimentResult carries — cycles/second and events/second — so a
 * perf PR can prove itself against a recorded baseline
 * (BENCH_throughput.json).
 *
 * Wall-clock numbers are inherently nondeterministic; they are kept
 * out of resultDigest() and out of every trace/stats file that the
 * determinism audit covers.
 */

#ifndef MMR_OBS_PROFILER_HH
#define MMR_OBS_PROFILER_HH

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace mmr
{

class Kernel;

/** Throughput summary of one simulation run. */
struct SimProfile
{
    double wallSeconds = 0.0;   ///< measured around the run loop
    Cycle cycles = 0;           ///< simulated flit cycles
    std::uint64_t events = 0;   ///< simulation events (see collect)

    /** Per-component seconds, kernel registration order; filled only
     * when Kernel::enableProfiling(true) was set for the run. */
    std::vector<std::pair<std::string, double>> componentSeconds;

    /** Shortest wall time a rate is computed over.  A run can finish
     * inside one clock tick (wallSeconds == 0, or a denormal); naive
     * division then reports 0 or inf cycles/s, and either poisons the
     * perf-baseline comparison.  Clamping the denominator keeps the
     * rate finite; zero work still reports an honest 0. */
    static constexpr double kMinWallSeconds = 1e-9;

    double cyclesPerSec() const
    {
        if (cycles == 0)
            return 0.0;
        return static_cast<double>(cycles) /
               std::max(wallSeconds, kMinWallSeconds);
    }

    double eventsPerSec() const
    {
        if (events == 0)
            return 0.0;
        return static_cast<double>(events) /
               std::max(wallSeconds, kMinWallSeconds);
    }
};

/**
 * Assemble a SimProfile from a finished kernel.
 *
 * @param wall_seconds wall time measured around the caller's run loop
 * @param events what "events/sec" counts for this run; the harness
 *        passes flits injected + flits forwarded
 */
SimProfile collectProfile(const Kernel &kernel, double wall_seconds,
                          std::uint64_t events);

/** Machine-readable form (consumed by scripts/perf_baseline.py). */
void writeProfileJson(std::ostream &os, const SimProfile &p);

/** Human-readable one-block summary for bench/example stderr. */
void printProfile(std::ostream &os, const SimProfile &p);

} // namespace mmr

#endif // MMR_OBS_PROFILER_HH
