/**
 * @file
 * Crash flight recorder: a fixed-size ring of the most recent
 * scheduler / flit / credit / fault events, always on, that dumps a
 * Chrome trace-event snapshot when the simulator dies.
 *
 * The Tracer answers "what happened during this run I chose to
 * instrument"; the flight recorder answers "what were the last few
 * thousand events before the panic I did not see coming".  PR 4's
 * fault subsystem can abandon a recovery or trip an invariant deep
 * into a randomized schedule — without a black box the post-mortem
 * starts from a stack trace and a seed.  With one, the dump shows the
 * grants, credits and fault events leading up to the failure, in
 * Perfetto, with no re-run needed.
 *
 * Design constraints, in order: (1) the push must be legal under
 * MMR_HOT_PATH — the ring is preallocated at construction and note()
 * is a masked store plus an increment, no branches beyond the
 * is-active check shared with the Tracer macros; (2) dumping must
 * work from a panic handler — writeChromeJson touches only the ring
 * and a FILE*, never the allocator-heavy Tracer path; (3) recorders
 * are thread-local like Tracer::current, so parallel sweep workers
 * each keep their own black box.
 *
 * Dump triggers: mmr_panic (and therefore mmr_invariant_violated and
 * mmr_assert) via the log::setPanicHook hook installed on first
 * activate(), RecoveryManager abandonment, and an explicit
 * --flight-recorder-dump=PATH end-of-run dump.
 */

#ifndef MMR_OBS_FLIGHT_RECORDER_HH
#define MMR_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "base/types.hh"
#include "obs/trace.hh"

namespace mmr
{

class FlightRecorder
{
  public:
    /** One recorded event; mirrors Tracer's record so both can be fed
     * from the same instrumentation site.  Packed to 32 bytes: the
     * ring is written ~20 times per simulated cycle, so its footprint
     * competes directly with the VC arrays for L2 (lane is a port
     * index, never near 2^16).  */
    struct alignas(32) Event
    {
        Cycle cycle;
        const char *name; ///< static string, not copied
        ConnId conn;
        std::int32_t a0;
        std::int32_t a1;
        std::uint16_t lane;
        TraceCat cat;
    };
    static_assert(sizeof(Event) == 32,
                  "flight-recorder events must stay cache-compact");

    /** One cache line of events: the ring's storage granule, and the
     * staging buffer note() fills before committing a whole line. */
    struct alignas(64) EventPair
    {
        Event e[2];
    };

    /** Default ring depth.  2048 events (~64KB) still spans the last
     * ~100 cycles of an 8-port run while leaving L2 to the simulator
     * proper; a deeper post-mortem window is one CLI flag away
     * (--flight-recorder-depth). */
    static constexpr std::size_t kDefaultCapacity = 1u << 11;

    /** @param capacity ring depth; rounded up to a power of two. */
    explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /** The calling thread's installed recorder; nullptr = none. */
    static FlightRecorder *active() { return current; }

    /** Fast-path test used by MMR_OBS_EVENT. */
    static bool wants() { return current != nullptr; }

    /** wants() plus the active recorder's category filter. */
    static bool
    wantsCat(TraceCat c)
    {
        return current != nullptr &&
               ((current->catMask >> static_cast<unsigned>(c)) & 1u) !=
                   0;
    }

    /** Restrict recording to the categories in @p mask (bit index =
     * TraceCat value).  A fresh recorder accepts everything; the CLI
     * session narrows this to the low-volume forensic categories. */
    void setCategoryMask(std::uint32_t mask) { catMask = mask; }
    std::uint32_t categoryMask() const { return catMask; }

    /** Install as this thread's recorder and hook mmr_panic so a
     * crash dumps the ring (at most one active per thread). */
    void activate();

    /** Uninstall (also done by the destructor). */
    void deactivate();

    /** Where crash dumps land; default "mmr-flight.json" in cwd. */
    void setDumpPath(const std::string &path) { dumpFile = path; }
    const std::string &dumpPath() const { return dumpFile; }

    /**
     * Allocation-free ring push: a store into the always-hot staging
     * line plus, every second event, one full-cache-line commit into
     * the ring.  The ring is write-only until a post-mortem dump, so
     * on x86 the commit uses non-temporal stores — a complete 64-byte
     * line written back-to-back drains the write-combining buffer in
     * a single burst, costing the simulator no L1/L2 residency and no
     * read-for-ownership traffic.  (Streaming each 32-byte event on
     * its own would flush the WC buffer half-full every time and is
     * slower than plain stores; the pairwise staging is what makes
     * the always-on recorder affordable.)
     */
    MMR_HOT_PATH void
    note(TraceCat cat, const char *name, Cycle now, std::uint32_t lane,
         ConnId conn, std::int32_t a0 = -1, std::int32_t a1 = -1)
    {
        Event &e = staged.e[static_cast<std::size_t>(head) & 1];
        e.cycle = now;
        e.name = name;
        e.conn = conn;
        e.a0 = a0;
        e.a1 = a1;
        e.lane = static_cast<std::uint16_t>(lane);
        e.cat = cat;
        if (head & 1) {
            EventPair &line =
                ring[(static_cast<std::size_t>(head) & mask) >> 1];
#if defined(__SSE2__)
            const auto *src =
                reinterpret_cast<const __m128i *>(&staged);
            auto *dst = reinterpret_cast<__m128i *>(&line);
            _mm_stream_si128(dst + 0, _mm_load_si128(src + 0));
            _mm_stream_si128(dst + 1, _mm_load_si128(src + 1));
            _mm_stream_si128(dst + 2, _mm_load_si128(src + 2));
            _mm_stream_si128(dst + 3, _mm_load_si128(src + 3));
#else
            line = staged;
#endif
        }
        ++head;
    }

    /** Events ever pushed (>= stored() once the ring wraps). */
    std::uint64_t recorded() const { return head; }

    /** Events currently held (min(recorded, capacity)). */
    std::size_t stored() const;

    std::size_t capacity() const { return ring.size() * 2; }

    /** Oldest retained event (valid when stored() > 0). */
    const Event &oldest() const;

    /**
     * Serialize the retained window, oldest first, as Chrome
     * trace-event JSON.  @p reason lands in the metadata so a dump
     * says why it exists ("panic", "recovery_abandoned", ...).
     */
    void writeChromeJson(std::ostream &os, const char *reason) const;

    /** writeChromeJson to @p path; false (with a warning) on I/O
     * failure.  Safe to call from the panic path. */
    bool dumpTo(const std::string &path, const char *reason) const;

    /**
     * Dump the calling thread's active recorder to its dump path.
     * No-op (returns false) when no recorder is active; used by the
     * panic hook and the RecoveryManager abandonment path.
     */
    static bool dumpActive(const char *reason);

  private:
    /** Event @p idx (< head), wherever it currently lives: the most
     * recent event sits in the staging line until its pair-mate
     * completes the cache line and both are committed to the ring. */
    const Event &
    eventAt(std::uint64_t idx) const
    {
        if ((head & 1) != 0 && idx == head - 1)
            return staged.e[0];
        const std::size_t slot = static_cast<std::size_t>(idx) & mask;
        return ring[slot >> 1].e[slot & 1];
    }

    static thread_local FlightRecorder *current;

    std::vector<EventPair> ring; ///< preallocated, power-of-two lines
    std::size_t mask;            ///< event-index mask (capacity - 1)
    std::uint32_t catMask = ~0u; ///< accepted TraceCat bits
    std::uint64_t head = 0;
    EventPair staged{};          ///< L1-hot line under construction
    std::string dumpFile = "mmr-flight.json";
};

} // namespace mmr

// ---------------------------------------------------------------------
// Combined instrumentation: one is-active branch per layer.  Hot sites
// that should survive into a crash dump use MMR_OBS_EVENT instead of
// MMR_TRACE_INSTANT; the tracer half still compiles out under
// -DMMR_TRACING_ENABLED=0 while the flight recorder stays available.
// ---------------------------------------------------------------------

#define MMR_OBS_EVENT(cat, name, now, lane, conn, ...) \
    do { \
        if (::mmr::FlightRecorder::wantsCat(cat)) { \
            ::mmr::FlightRecorder::active()->note( \
                cat, name, now, lane, conn, ##__VA_ARGS__); \
        } \
        MMR_TRACE_INSTANT(cat, name, now, lane, conn, ##__VA_ARGS__); \
    } while (0)

#endif // MMR_OBS_FLIGHT_RECORDER_HH
