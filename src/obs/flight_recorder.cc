#include "obs/flight_recorder.hh"

#include <bit>
#include <fstream>
#include <ostream>

#include "base/logging.hh"

namespace mmr
{

thread_local FlightRecorder *FlightRecorder::current = nullptr;

namespace
{

/** mmr_panic hook: dump the panicking thread's black box before the
 * abort.  Installed once, on the first activate(); reads only
 * thread-local state, so concurrent sweep workers dump their own
 * rings. */
void
panicDumpHook(const char *)
{
    FlightRecorder::dumpActive("panic");
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
{
    if (capacity < 2)
        capacity = 2;
    ring.resize(std::bit_ceil(capacity) / 2);
    mask = ring.size() * 2 - 1;
}

FlightRecorder::~FlightRecorder()
{
    deactivate();
}

void
FlightRecorder::activate()
{
    mmr_assert(current == nullptr || current == this,
               "another flight recorder is already active "
               "on this thread");
    current = this;
    log::setPanicHook(&panicDumpHook);
}

void
FlightRecorder::deactivate()
{
    if (current == this)
        current = nullptr;
}

std::size_t
FlightRecorder::stored() const
{
    return head < capacity() ? static_cast<std::size_t>(head)
                             : capacity();
}

const FlightRecorder::Event &
FlightRecorder::oldest() const
{
    mmr_assert(head > 0, "flight recorder is empty");
    const std::uint64_t first =
        head <= capacity() ? 0 : head - capacity();
    return eventAt(first);
}

void
FlightRecorder::writeChromeJson(std::ostream &os,
                                const char *reason) const
{
    const std::uint64_t kept = stored();
    const std::uint64_t first = head - kept;
    os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{"
       << "\"reason\":\"" << (reason ? reason : "unknown")
       << "\",\"recorded\":" << head << ",\"retained\":" << kept
       << "},\"traceEvents\":[";
    for (std::uint64_t i = first; i < head; ++i) {
        const Event &e = eventAt(i);
        if (i != first)
            os << ",\n";
        os << "{\"name\":\"" << e.name << "\",\"ph\":\"i\",\"ts\":"
           << e.cycle << ",\"pid\":1,\"tid\":" << e.lane
           << ",\"s\":\"t\",\"cat\":\"" << to_string(e.cat)
           << "\",\"args\":{";
        bool sep = false;
        if (e.conn != kInvalidConn) {
            os << "\"conn\":" << e.conn;
            sep = true;
        }
        if (e.a0 >= 0) {
            os << (sep ? "," : "") << "\"a0\":" << e.a0;
            sep = true;
        }
        if (e.a1 >= 0)
            os << (sep ? "," : "") << "\"a1\":" << e.a1;
        os << "}}";
    }
    os << "]}\n";
}

bool
FlightRecorder::dumpTo(const std::string &path,
                       const char *reason) const
{
    std::ofstream os(path);
    if (!os) {
        mmr_warn("flight recorder: cannot write '", path, "'");
        return false;
    }
    writeChromeJson(os, reason);
    return os.good();
}

bool
FlightRecorder::dumpActive(const char *reason)
{
    FlightRecorder *fr = current;
    if (fr == nullptr)
        return false;
    return fr->dumpTo(fr->dumpFile, reason);
}

} // namespace mmr
