/**
 * @file
 * Value Change Dump (IEEE 1364 §18) waveform writer.
 *
 * Streams selected statistics as VCD signals so a run can be opened
 * in GTKWave next to a hardware trace (the hornet NoC simulator ships
 * the same facility for exactly this purpose).  Dotted stat names
 * ("router0.in2.occupancy") become nested $scope modules; signals are
 * real-valued by default with an integer wire form for flags.
 *
 * Usage: add signals, then tick(cycle) + set(id, value) per sample;
 * the header is written lazily on the first tick, and unchanged
 * values are deduplicated as VCD semantics expect.  Output depends
 * only on simulated values, so same-seed runs produce bit-identical
 * files.
 */

#ifndef MMR_OBS_VCD_HH
#define MMR_OBS_VCD_HH

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/types.hh"

namespace mmr
{

class VcdWriter
{
  public:
    using SignalId = std::size_t;

    /**
     * @param os stream the waveform is written to (must outlive the
     *        writer)
     * @param timescale VCD $timescale body; the default calls one
     *        simulated flit cycle 1 ns
     */
    explicit VcdWriter(std::ostream &os,
                       std::string timescale = "1 ns");

    /** Register a real-valued signal; must precede the first tick. */
    SignalId addReal(const std::string &dotted_path);

    /** Register an integer wire of @p width bits. */
    SignalId addWire(const std::string &dotted_path, unsigned width);

    std::size_t signalCount() const { return signals.size(); }

    /**
     * Enter simulated time @p now (monotonically non-decreasing).
     * Writes the header on the first call.  The "#<time>" record is
     * emitted lazily, only if some value actually changes.
     */
    void tick(Cycle now);

    void set(SignalId id, double value);
    void set(SignalId id, std::uint64_t value);

    /** Flush pending output (called automatically on destruction). */
    void finish();

    ~VcdWriter();

  private:
    struct Signal
    {
        std::string path;
        std::string code; ///< short VCD identifier
        bool real;
        unsigned width;
        double lastReal = 0.0;
        std::uint64_t lastBits = 0;
        bool hasLast = false;
    };

    std::string freshCode();
    void writeHeader();
    void emitTimestamp();
    void writeValue(Signal &s);

    std::ostream &out;
    std::string timescale;
    std::vector<Signal> signals;
    bool headerWritten = false;
    Cycle pendingTime = 0;
    bool timeDirty = false; ///< "#time" not yet emitted for pendingTime
    std::size_t nextCode = 0;
};

} // namespace mmr

#endif // MMR_OBS_VCD_HH
