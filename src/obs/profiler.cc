#include "obs/profiler.hh"

#include <ostream>

#include "obs/stats_registry.hh"
#include "sim/kernel.hh"

namespace mmr
{

SimProfile
collectProfile(const Kernel &kernel, double wall_seconds,
               std::uint64_t events)
{
    SimProfile p;
    p.wallSeconds = wall_seconds;
    p.cycles = kernel.cyclesRun();
    p.events = events;
    if (kernel.profilingEnabled()) {
        const auto names = kernel.componentNames();
        const auto &secs = kernel.componentSeconds();
        for (std::size_t i = 0; i < names.size(); ++i) {
            p.componentSeconds.emplace_back(
                names[i].empty() ? ("component" + std::to_string(i))
                                 : names[i],
                secs[i]);
        }
    }
    return p;
}

void
writeProfileJson(std::ostream &os, const SimProfile &p)
{
    os << "{\n  \"wall_seconds\": " << obs::formatNumber(p.wallSeconds)
       << ",\n  \"cycles\": " << p.cycles
       << ",\n  \"events\": " << p.events
       << ",\n  \"cycles_per_sec\": "
       << obs::formatNumber(p.cyclesPerSec())
       << ",\n  \"events_per_sec\": "
       << obs::formatNumber(p.eventsPerSec())
       << ",\n  \"components\": {";
    bool first = true;
    for (const auto &[name, secs] : p.componentSeconds) {
        os << (first ? "" : ",") << "\n    \"" << name
           << "\": " << obs::formatNumber(secs);
        first = false;
    }
    os << (first ? "}" : "\n  }") << "\n}\n";
}

void
printProfile(std::ostream &os, const SimProfile &p)
{
    os << "sim-profile: " << p.cycles << " cycles in "
       << obs::formatNumber(p.wallSeconds) << " s  ("
       << obs::formatNumber(p.cyclesPerSec() / 1e6) << " Mcycles/s, "
       << obs::formatNumber(p.eventsPerSec() / 1e6) << " Mevents/s)\n";
    double total = 0.0;
    for (const auto &[name, secs] : p.componentSeconds)
        total += secs;
    for (const auto &[name, secs] : p.componentSeconds) {
        os << "  " << name << ": " << obs::formatNumber(secs) << " s";
        if (total > 0.0)
            os << " (" << obs::formatNumber(100.0 * secs / total)
               << "% of attributed time)";
        os << "\n";
    }
}

} // namespace mmr
