#include "obs/obs_config.hh"

#include "base/cli.hh"
#include "base/logging.hh"
#include "sim/kernel.hh"

namespace mmr
{

ObsSession::ObsSession(const ObsConfig &c) : cfg(c)
{
    // The flight recorder is always on — the runs that crash are the
    // runs nobody thought to instrument.  A nested session (a harness
    // run inside a front end that already activated one) records into
    // the outer black box instead of fighting over the thread slot.
    flight = std::make_unique<FlightRecorder>(cfg.flightRecorderDepth);
    flight->setCategoryMask(
        traceCatMaskFromString(cfg.flightRecorderCats));
    if (!cfg.flightRecorderPath.empty())
        flight->setDumpPath(cfg.flightRecorderPath);
    if (FlightRecorder::active() == nullptr) {
        flight->activate();
        ownsFlightActivation = true;
    }
}

ObsSession::~ObsSession()
{
    // Deliberately no auto-finish: writing files is an explicit act
    // (the caller knows the final cycle); the tracer detaches itself
    // and the flight recorder deactivates with its destructor.
}

void
ObsSession::attach(Kernel &kernel)
{
    mmr_assert(!attached, "observability session attached twice");
    attached = true;
    if (!cfg.enabled())
        return;

    if (cfg.wantsSampler()) {
        const Cycle period =
            cfg.samplePeriod > 0 ? cfg.samplePeriod : 1000;
        sampl = std::make_unique<StatsSampler>(stats, period,
                                               cfg.sampleStats);
        if (!cfg.vcdPath.empty()) {
            vcdStream = std::make_unique<std::ofstream>(cfg.vcdPath);
            if (!*vcdStream)
                mmr_fatal("cannot open VCD output '", cfg.vcdPath, "'");
            vcd = std::make_unique<VcdWriter>(*vcdStream);
            sampl->attachVcd(vcd.get());
        }
        kernel.add(sampl.get(), "obs-sampler");
    }

    if (cfg.wantsTrace()) {
        trace = std::make_unique<Tracer>(cfg.traceMaxEvents);
        trace->setCategoryMask(traceCatMaskFromString(cfg.traceCats));
        trace->setCycleRange(cfg.traceFrom, cfg.traceTo);
        trace->activate();
    }

    if (cfg.profileComponents)
        kernel.enableProfiling(true);
}

void
ObsSession::finish(Cycle now)
{
    if (finished)
        return;
    finished = true;

    if (ownsFlightActivation) {
        if (!cfg.flightRecorderPath.empty())
            flight->dumpTo(cfg.flightRecorderPath, "end_of_run");
        flight->deactivate();
    }

    if (!cfg.enabled())
        return;

    if (sampl != nullptr) {
        // Cover the tail: the last sample may predate the final cycle.
        if (sampl->totalSamples() == 0 ||
            sampl->sampleCycle(sampl->storedSamples() - 1) != now)
            sampl->sampleNow(now);
    }

    if (trace != nullptr) {
        trace->deactivate();
        std::ofstream os(cfg.tracePath);
        if (!os)
            mmr_fatal("cannot open trace output '", cfg.tracePath, "'");
        trace->writeChromeJson(os);
    }

    if (!cfg.statsJsonPath.empty()) {
        std::ofstream os(cfg.statsJsonPath);
        if (!os)
            mmr_fatal("cannot open stats output '", cfg.statsJsonPath,
                      "'");
        os << "{\n\"final\": ";
        stats.dumpJson(os);
        os << ",\n\"histograms\": ";
        if (histDump)
            histDump(os);
        else
            os << "null";
        os << ",\n\"series\": ";
        if (sampl != nullptr)
            sampl->dumpJson(os);
        else
            os << "null\n";
        os << "}\n";
    }

    if (!cfg.statsCsvPath.empty()) {
        mmr_assert(sampl != nullptr, "stats CSV requires the sampler");
        std::ofstream os(cfg.statsCsvPath);
        if (!os)
            mmr_fatal("cannot open stats output '", cfg.statsCsvPath,
                      "'");
        sampl->dumpCsv(os);
    }

    if (vcd != nullptr)
        vcd->finish();
    if (vcdStream != nullptr)
        vcdStream->close();
}

void
addObsFlags(Cli &cli)
{
    cli.flag("trace", "", "Chrome trace-event JSON output file");
    cli.flag("trace-cats", "",
             "trace categories (flit,sched,admission,credit,setup,"
             "control; default all)");
    cli.flag("trace-from", "0", "first cycle to trace");
    cli.flag("trace-to", "0", "last cycle to trace (0 = unbounded)");
    cli.flag("stats-json", "", "stats registry + series JSON output");
    cli.flag("stats-csv", "", "sampled stats CSV output");
    cli.flag("vcd", "", "sampled stats as VCD waveforms");
    cli.flag("sample-every", "0",
             "sample the stats registry every N cycles (0 = only when "
             "a stats/VCD output needs it)");
    cli.flag("sample-stats", "",
             "stat selection patterns for the sampler (prefix. or "
             "prefix*; default all)");
    cli.flag("stats-per-vc", "0",
             "register per-VC occupancy gauges (wide output)");
    cli.flag("profile", "0",
             "attribute wall time to kernel components");
    cli.flag("flight-recorder-dump", "",
             "also dump the crash flight recorder at end of run "
             "(crash dumps are always on)");
    cli.flag("flight-recorder-depth", "2048",
             "flight-recorder ring depth in events (power of two)");
    cli.flag("flight-recorder-cats",
             "sched,admission,setup,control,fault",
             "categories the crash recorder keeps ('all' adds the "
             "high-volume flit/credit streams)");
}

ObsConfig
obsConfigFromCli(const Cli &cli)
{
    ObsConfig c;
    c.tracePath = cli.str("trace");
    c.traceCats = cli.str("trace-cats");
    c.traceFrom = static_cast<Cycle>(cli.integer("trace-from"));
    const auto to = static_cast<Cycle>(cli.integer("trace-to"));
    if (to > 0)
        c.traceTo = to;
    c.statsJsonPath = cli.str("stats-json");
    c.statsCsvPath = cli.str("stats-csv");
    c.vcdPath = cli.str("vcd");
    c.samplePeriod = static_cast<Cycle>(cli.integer("sample-every"));
    c.sampleStats = cli.list("sample-stats");
    c.perVcStats = cli.boolean("stats-per-vc");
    c.profileComponents = cli.boolean("profile");
    c.flightRecorderPath = cli.str("flight-recorder-dump");
    const auto depth = cli.integer("flight-recorder-depth");
    if (depth > 0)
        c.flightRecorderDepth = static_cast<std::size_t>(depth);
    c.flightRecorderCats = cli.str("flight-recorder-cats");
    return c;
}

std::string
obsPathWithSuffix(const std::string &path, const std::string &suffix)
{
    if (path.empty() || suffix.empty())
        return path;
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "-" + suffix;
    return path.substr(0, dot) + "-" + suffix + path.substr(dot);
}

} // namespace mmr
