#include "obs/sampler.hh"

#include <ostream>

#include "base/logging.hh"
#include "obs/vcd.hh"

namespace mmr
{

StatsSampler::StatsSampler(const StatsRegistry &reg, Cycle period_,
                           const std::vector<std::string> &patterns,
                           std::size_t capacity)
    : registry(reg), period(period_), cap(capacity)
{
    mmr_assert(period >= 1, "sample period must be >= 1 cycle");
    mmr_assert(cap >= 1, "sampler needs capacity for at least one row");
    selected = registry.select(patterns);
    colNames.reserve(selected.size());
    for (std::size_t i : selected)
        colNames.push_back(registry.entry(i).name);
}

void
StatsSampler::attachVcd(VcdWriter *vcd)
{
    mmr_assert(vcd != nullptr, "attaching a null VCD writer");
    vcdOut = vcd;
    vcdIds.clear();
    vcdIds.reserve(colNames.size());
    for (const std::string &name : colNames)
        vcdIds.push_back(vcd->addReal(name));
}

void
StatsSampler::sampleNow(Cycle now)
{
    std::vector<double> row;
    row.reserve(selected.size());
    for (std::size_t i : selected)
        row.push_back(registry.entry(i).probe());

    if (vcdOut != nullptr) {
        vcdOut->tick(now);
        for (std::size_t c = 0; c < vcdIds.size(); ++c)
            vcdOut->set(vcdIds[c], row[c]);
    }

    if (rows.size() < cap) {
        cycles.push_back(now);
        rows.push_back(std::move(row));
    } else {
        cycles[head] = now;
        rows[head] = std::move(row);
        head = (head + 1) % cap;
        ++dropped;
    }
    ++taken;
}

void
StatsSampler::advance(Cycle now)
{
    if (now % period == 0)
        sampleNow(now);
}

Cycle
StatsSampler::sampleCycle(std::size_t r) const
{
    mmr_assert(r < rows.size(), "sample row out of range");
    return cycles[(head + r) % rows.size()];
}

double
StatsSampler::value(std::size_t r, std::size_t c) const
{
    mmr_assert(r < rows.size(), "sample row out of range");
    mmr_assert(c < colNames.size(), "sample column out of range");
    return rows[(head + r) % rows.size()][c];
}

void
StatsSampler::dumpCsv(std::ostream &os) const
{
    os << "cycle";
    for (const std::string &c : colNames)
        os << ',' << c;
    os << '\n';
    for (std::size_t r = 0; r < rows.size(); ++r) {
        os << sampleCycle(r);
        for (std::size_t c = 0; c < colNames.size(); ++c)
            os << ',' << obs::formatNumber(value(r, c));
        os << '\n';
    }
}

void
StatsSampler::dumpJson(std::ostream &os) const
{
    os << "{\n  \"period\": " << period << ",\n  \"columns\": [";
    for (std::size_t c = 0; c < colNames.size(); ++c)
        os << (c ? ", " : "") << '"' << colNames[c] << '"';
    os << "],\n  \"kinds\": [";
    for (std::size_t c = 0; c < selected.size(); ++c) {
        os << (c ? ", " : "") << '"'
           << (registry.entry(selected[c]).kind == StatKind::Counter
                   ? "counter"
                   : "gauge")
           << '"';
    }
    os << "],\n  \"dropped_samples\": " << dropped
       << ",\n  \"samples\": [";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        os << (r ? ",\n    " : "\n    ") << '[' << sampleCycle(r);
        for (std::size_t c = 0; c < colNames.size(); ++c)
            os << ", " << obs::formatNumber(value(r, c));
        os << ']';
    }
    os << "\n  ]\n}\n";
}

} // namespace mmr
