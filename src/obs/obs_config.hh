/**
 * @file
 * One-stop configuration + lifetime management for the observability
 * layer, shared by the experiment harness, the bench binaries and the
 * example front ends.
 *
 * ObsConfig is plain data filled from CLI flags (--trace=,
 * --stats-json=, --sample-every=, --vcd=, ...).  ObsSession owns the
 * live objects the config asks for — stats registry, sampler, tracer,
 * VCD stream — wires the sampler into a kernel, and writes every
 * requested file in finish().  A default-constructed ObsConfig makes
 * ObsSession a no-op: nothing is allocated, no tracer is installed,
 * and the simulation fast path stays untouched.
 */

#ifndef MMR_OBS_OBS_CONFIG_HH
#define MMR_OBS_OBS_CONFIG_HH

#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hh"
#include "obs/flight_recorder.hh"
#include "obs/sampler.hh"
#include "obs/stats_registry.hh"
#include "obs/trace.hh"
#include "obs/vcd.hh"

namespace mmr
{

class Cli;
class Kernel;

struct ObsConfig
{
    std::string tracePath;     ///< Chrome trace-event JSON output
    std::string statsJsonPath; ///< registry dump + sampler series
    std::string statsCsvPath;  ///< sampler series as CSV
    std::string vcdPath;       ///< sampled stats as VCD waveforms

    /** Sample the registry every N cycles; 0 = only if another
     * output (stats file, VCD) needs the sampler, then every 1000. */
    Cycle samplePeriod = 0;

    /** Stat selection patterns for the sampler (empty = all). */
    std::vector<std::string> sampleStats;

    /** Trace category list ("flit,sched"); empty/"all" = everything. */
    std::string traceCats;

    Cycle traceFrom = 0;
    Cycle traceTo = std::numeric_limits<Cycle>::max();
    std::size_t traceMaxEvents = 1u << 22;

    /** Attribute wall time to kernel components (slows the run). */
    bool profileComponents = false;

    /** Register per-VC occupancy gauges (256 VCs x 8 ports makes for
     * wide CSVs; off by default). */
    bool perVcStats = false;

    /**
     * End-of-run flight-recorder dump path.  The recorder itself is
     * always on (crash forensics matter most on the runs nobody
     * thought to instrument) and dumps to its default path on panic;
     * this adds an unconditional dump at finish() for inspection of
     * healthy runs.
     */
    std::string flightRecorderPath;

    /** Flight-recorder ring depth in events (rounded up to a power
     * of two). */
    std::size_t flightRecorderDepth = FlightRecorder::kDefaultCapacity;

    /**
     * Categories the always-on recorder keeps.  Defaults to the
     * low-volume forensic set: scheduler grants already record one
     * event per moved flit (input port, VC, conn, output port), so
     * the per-flit `flit`/`credit` streams triple the event rate for
     * little post-mortem signal — recording them measurably slows
     * the simulator.  "all" restores every category.
     */
    std::string flightRecorderCats =
        "sched,admission,setup,control,fault";

    bool wantsTrace() const { return !tracePath.empty(); }
    bool wantsSampler() const
    {
        return samplePeriod > 0 || !statsJsonPath.empty() ||
               !statsCsvPath.empty() || !vcdPath.empty();
    }
    bool enabled() const
    {
        return wantsTrace() || wantsSampler() || profileComponents;
    }
};

class ObsSession
{
  public:
    explicit ObsSession(const ObsConfig &cfg);
    ~ObsSession();

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

    const ObsConfig &config() const { return cfg; }

    /** Registry to populate before attach() (components register
     * their stats into it). Valid whenever the session is enabled. */
    StatsRegistry &registry() { return stats; }

    /**
     * Create the sampler/tracer/VCD objects the config asks for and
     * add the sampler to @p kernel (call after every registerStats).
     * Also enables component profiling on the kernel if requested.
     * No-op when the config is empty.
     */
    void attach(Kernel &kernel);

    /** The live tracer, or nullptr when tracing is off. */
    Tracer *tracer() { return trace.get(); }

    /** The live sampler, or nullptr when sampling is off. */
    StatsSampler *sampler() { return sampl.get(); }

    /** The session's black box (always constructed; installed as the
     * thread's recorder unless an outer session already owns it). */
    FlightRecorder *flightRecorder() { return flight.get(); }

    /**
     * Hook writing a JSON value (the latency-histogram object) into
     * the --stats-json payload under the "histograms" key; unset
     * sessions emit null.  The harness registers one reading its
     * MetricsRecorder at finish() time.
     */
    void setHistogramDump(std::function<void(std::ostream &)> fn)
    {
        histDump = std::move(fn);
    }

    /**
     * Take a final sample (so the last partial period is covered) and
     * write every requested output file.  Idempotent.
     */
    void finish(Cycle now);

  private:
    ObsConfig cfg;
    StatsRegistry stats;
    std::unique_ptr<StatsSampler> sampl;
    std::unique_ptr<Tracer> trace;
    std::unique_ptr<std::ofstream> vcdStream;
    std::unique_ptr<VcdWriter> vcd;
    std::unique_ptr<FlightRecorder> flight;
    std::function<void(std::ostream &)> histDump;
    bool ownsFlightActivation = false;
    bool attached = false;
    bool finished = false;
};

/**
 * Declare the standard observability flags (--trace=, --trace-cats=,
 * --trace-from/-to=, --stats-json=, --stats-csv=, --vcd=,
 * --sample-every=, --sample-stats=, --stats-per-vc, --profile) on a
 * Cli, all defaulting to "off".
 */
void addObsFlags(Cli &cli);

/** Build an ObsConfig from flags declared by addObsFlags. */
ObsConfig obsConfigFromCli(const Cli &cli);

/**
 * Derive a per-run output path from a shared flag value: inserts
 * "-<suffix>" before the extension ("out/trace.json" + "biased_2c-0.70"
 * -> "out/trace-biased_2c-0.70.json").  Used by sweep benches where
 * one --trace flag covers many runs.
 */
std::string obsPathWithSuffix(const std::string &path,
                              const std::string &suffix);

} // namespace mmr

#endif // MMR_OBS_OBS_CONFIG_HH
