/**
 * @file
 * Event tracing: per-cycle flit-lifecycle, scheduler and admission
 * events, exported as Chrome trace-event JSON (loadable in Perfetto
 * or chrome://tracing).
 *
 * Instrumentation sites use the MMR_TRACE_* macros, which compile to
 * a single predicted-not-taken branch on a global pointer when no
 * tracer is installed — the "tracing disabled" fast path adds no
 * measurable cost to the simulation.  Building with
 * -DMMR_TRACING_ENABLED=0 removes the sites entirely.
 *
 * A Tracer filters by category (flit / sched / admission / credit /
 * setup / control) and by cycle range, buffers fixed-size event
 * records in memory (bounded; overflow is counted, never reallocates
 * mid-run into pathological sizes), and serializes once at the end of
 * the run.  Event timestamps are flit cycles; the "tid" lane is the
 * router port the event concerns, so Perfetto renders one swim lane
 * per port.  Output depends only on simulated state: same-seed runs
 * produce bit-identical trace files.
 */

#ifndef MMR_OBS_TRACE_HH
#define MMR_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "base/types.hh"

#ifndef MMR_TRACING_ENABLED
#define MMR_TRACING_ENABLED 1
#endif

namespace mmr
{

/** Event categories, each independently switchable. */
enum class TraceCat : std::uint8_t
{
    Flit,      ///< inject / VC alloc / switch transmit
    Sched,     ///< switch-scheduler grants and matching size
    Admission, ///< bandwidth admission accept/reject
    Credit,    ///< credit consume/replenish (high volume)
    Setup,     ///< probe/EPB connection establishment phases
    Control,   ///< VCT cut-throughs, control-word application
    Fault,     ///< link fail/repair, corruption, recovery retries
    NumCats
};

const char *to_string(TraceCat c);

/** Parse "flit,sched,admission" style lists; panics on unknown names. */
std::uint32_t traceCatMaskFromString(const std::string &spec);

class Tracer
{
  public:
    /**
     * @param max_events in-memory event cap; further events are
     *        dropped and counted (the JSON records the drop count)
     */
    explicit Tracer(std::size_t max_events = 1u << 22);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The globally installed tracer; nullptr = tracing disabled. */
    static Tracer *active() { return current; }

    /** Install this tracer as the global one (at most one at a time). */
    void activate();

    /** Uninstall (also done by the destructor). */
    void deactivate();

    /** Enable only the categories in @p mask (bit = TraceCat value). */
    void setCategoryMask(std::uint32_t mask) { catMask = mask; }
    std::uint32_t categoryMask() const { return catMask; }
    bool categoryEnabled(TraceCat c) const
    {
        return (catMask >> static_cast<unsigned>(c)) & 1u;
    }

    /** Record only events with cycle in [from, to]. */
    void setCycleRange(Cycle from, Cycle to);

    /** Fast-path test used by the MMR_TRACE_* macros. */
    static bool wants(TraceCat c)
    {
        return current != nullptr && current->categoryEnabled(c);
    }

    /**
     * Record an instant event.
     * @param name static string (not copied)
     * @param lane rendering lane, normally the port concerned
     * @param conn connection id or kInvalidConn
     * @param a0,a1 small integer args (VC ids, cycle counts, ...);
     *        negative = absent
     */
    void instant(TraceCat cat, const char *name, Cycle now,
                 std::uint32_t lane, ConnId conn, std::int32_t a0 = -1,
                 std::int32_t a1 = -1);

    /** Record a counter track sample (renders as a graph). */
    void counter(TraceCat cat, const char *name, Cycle now,
                 double value);

    std::size_t eventCount() const { return events.size(); }
    std::uint64_t droppedEvents() const { return dropped; }

    /** Serialize everything as Chrome trace-event JSON. */
    void writeChromeJson(std::ostream &os) const;

  private:
    struct Event
    {
        Cycle cycle;
        const char *name;
        double value;   ///< counter events only
        ConnId conn;
        std::int32_t a0;
        std::int32_t a1;
        std::uint32_t lane;
        TraceCat cat;
        char phase;     ///< 'i' instant, 'C' counter
    };

    bool inRange(Cycle now) const
    {
        return now >= fromCycle && now <= toCycle;
    }
    bool push(const Event &e);

    // Thread-local so concurrent sweep workers can each run a tracer
    // (or none) without racing on one installed pointer.
    static thread_local Tracer *current;

    std::uint32_t catMask;
    Cycle fromCycle = 0;
    Cycle toCycle = std::numeric_limits<Cycle>::max();
    std::size_t maxEvents;
    std::vector<Event> events;
    std::uint64_t dropped = 0;
};

} // namespace mmr

// ---------------------------------------------------------------------
// Instrumentation macros: zero-cost when compiled out, one branch on a
// global when no tracer is active.
// ---------------------------------------------------------------------

#if MMR_TRACING_ENABLED
#define MMR_TRACE_INSTANT(cat, name, now, lane, conn, ...) \
    do { \
        if (::mmr::Tracer::wants(cat)) { \
            ::mmr::Tracer::active()->instant( \
                cat, name, now, lane, conn, ##__VA_ARGS__); \
        } \
    } while (0)
#define MMR_TRACE_COUNTER(cat, name, now, value) \
    do { \
        if (::mmr::Tracer::wants(cat)) { \
            ::mmr::Tracer::active()->counter(cat, name, now, value); \
        } \
    } while (0)
#else
#define MMR_TRACE_INSTANT(cat, name, now, lane, conn, ...) \
    do { \
    } while (0)
#define MMR_TRACE_COUNTER(cat, name, now, value) \
    do { \
    } while (0)
#endif

#endif // MMR_OBS_TRACE_HH
