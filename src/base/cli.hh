/**
 * @file
 * Minimal command-line flag parser for the bench and example binaries.
 *
 * Flags take the form --name=value or --name value; anything else is a
 * positional argument.  Unknown flags are fatal so typos do not
 * silently run the wrong experiment.
 */

#ifndef MMR_BASE_CLI_HH
#define MMR_BASE_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mmr
{

class Cli
{
  public:
    /** Declare a flag with a default value and a help string. */
    void flag(const std::string &name, const std::string &def,
              const std::string &help);

    /**
     * Parse argv.  Handles --help by printing usage and returning
     * false (caller should exit 0).  Throws via mmr_fatal on unknown
     * flags or missing values.
     */
    bool parse(int argc, char **argv);

    std::string str(const std::string &name) const;
    std::int64_t integer(const std::string &name) const;
    double real(const std::string &name) const;
    bool boolean(const std::string &name) const;

    /** Split a comma-separated flag value into parts. */
    std::vector<std::string> list(const std::string &name) const;

    const std::vector<std::string> &positional() const { return args; }

    void printUsage(const std::string &prog) const;

  private:
    struct Spec
    {
        std::string value;
        std::string help;
    };

    std::map<std::string, Spec> specs;
    std::vector<std::string> args;
};

} // namespace mmr

#endif // MMR_BASE_CLI_HH
