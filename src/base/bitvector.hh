/**
 * @file
 * Status bit vectors (paper §4.1).
 *
 * The MMR trades silicon for scheduling speed by keeping one bit per
 * virtual channel in vectors such as flits_available,
 * credits_available, CBR_service_requested, CBR_bandwidth_serviced.
 * Link schedulers combine these with wide AND/OR operations to obtain
 * candidate sets in a few "gate delays".  This class is that hardware
 * structure: a packed dynamic bit vector with fast word-parallel
 * boolean algebra and set-bit iteration.
 *
 * Everything the per-cycle scheduling loop touches — set/clear/test,
 * findFirst, forEachSet — is defined inline here so the hot path
 * compiles down to the word-level bit twiddling (countr_zero over
 * 64-bit words) with no call overhead.
 */

#ifndef MMR_BASE_BITVECTOR_HH
#define MMR_BASE_BITVECTOR_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace mmr
{

class BitVector
{
  public:
    /** Bits per storage word (the unit of word-parallel operations). */
    static constexpr std::size_t kWordBits = 64;

    BitVector() = default;

    /** Create a vector of @p nbits bits, all clear. */
    explicit BitVector(std::size_t nbits)
        : numBits(nbits), words((nbits + kWordBits - 1) / kWordBits, 0)
    {
    }

    /** Number of bits tracked. */
    std::size_t size() const { return numBits; }

    /** Resize (new bits are clear; content preserved). */
    void resize(std::size_t nbits);

    void
    set(std::size_t i)
    {
        mmr_assert(i < numBits, "bit index ", i, " out of range ",
                   numBits);
        words[i / kWordBits] |= (std::uint64_t{1} << (i % kWordBits));
    }

    void
    clear(std::size_t i)
    {
        mmr_assert(i < numBits, "bit index ", i, " out of range ",
                   numBits);
        words[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
    }

    void
    assign(std::size_t i, bool v)
    {
        if (v)
            set(i);
        else
            clear(i);
    }

    bool
    test(std::size_t i) const
    {
        mmr_assert(i < numBits, "bit index ", i, " out of range ",
                   numBits);
        return (words[i / kWordBits] >> (i % kWordBits)) & 1;
    }

    /** Set/clear every bit. */
    void setAll();

    void
    clearAll()
    {
        for (auto &w : words)
            w = 0;
    }

    /** Population count. */
    std::size_t
    count() const
    {
        std::size_t n = 0;
        for (auto w : words)
            n += static_cast<std::size_t>(std::popcount(w));
        return n;
    }

    /** True when no bit is set. */
    bool
    none() const
    {
        for (auto w : words)
            if (w)
                return false;
        return true;
    }

    /** True when at least one bit is set. */
    bool any() const { return !none(); }

    /**
     * Index of the first set bit at or after @p from, or size() when
     * there is none.  Enables "for (i = v.findFirst(); i < v.size();
     * i = v.findNext(i))" iteration over candidate sets.
     */
    std::size_t
    findFirst(std::size_t from = 0) const
    {
        if (from >= numBits)
            return numBits;
        std::size_t wi = from / kWordBits;
        std::uint64_t w =
            words[wi] & (~std::uint64_t{0} << (from % kWordBits));
        for (;;) {
            if (w) {
                return wi * kWordBits +
                       static_cast<std::size_t>(std::countr_zero(w));
            }
            if (++wi >= words.size())
                return numBits;
            w = words[wi];
        }
    }

    /** Index of the first set bit strictly after @p i, or size(). */
    std::size_t findNext(std::size_t i) const { return findFirst(i + 1); }

    /**
     * Visit every set bit in ascending order: one word load per 64
     * channels, then countr_zero + clear-lowest-set-bit per member —
     * the software form of the §4.1 parallel candidate extraction.
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words.size(); ++wi) {
            std::uint64_t w = words[wi];
            while (w) {
                fn(wi * kWordBits +
                   static_cast<std::size_t>(std::countr_zero(w)));
                w &= w - 1;
            }
        }
    }

    /**
     * Word-parallel form of forEachSet: visit every non-zero word as
     * (word_index, word) instead of one call per set bit.  Consumers
     * that can combine a whole word with other status vectors (mask
     * algebra, wholesale clears) process 64 channels per call — the
     * word-level counterpart of the §4.1 parallel candidate
     * extraction.  Bit i of the delivered word is channel
     * word_index * kWordBits + i.
     */
    template <typename Fn>
    void
    forEachSetWord(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words.size(); ++wi) {
            if (words[wi])
                fn(wi, words[wi]);
        }
    }

    /** Clear every bit of word @p wi that is set in @p mask. */
    void
    clearWordBits(std::size_t wi, std::uint64_t mask)
    {
        mmr_assert(wi < words.size(), "word index ", wi,
                   " out of range ", words.size());
        words[wi] &= ~mask;
    }

    /**
     * Visit every bit set in both this vector and @p o (ascending),
     * without materializing the intersection: the word-at-a-time AND
     * scan used by the link scheduler's eligibility walk.
     */
    template <typename Fn>
    void
    forEachSetAnd(const BitVector &o, Fn &&fn) const
    {
        mmr_assert(numBits == o.numBits, "bit vector size mismatch");
        for (std::size_t wi = 0; wi < words.size(); ++wi) {
            std::uint64_t w = words[wi] & o.words[wi];
            while (w) {
                fn(wi * kWordBits +
                   static_cast<std::size_t>(std::countr_zero(w)));
                w &= w - 1;
            }
        }
    }

    /** Collect the indices of all set bits (ascending). */
    std::vector<std::size_t> setBits() const;

    /** Raw word access (tests, word-level consumers). */
    std::size_t wordCount() const { return words.size(); }

    std::uint64_t
    word(std::size_t wi) const
    {
        mmr_assert(wi < words.size(), "word index ", wi,
                   " out of range ", words.size());
        return words[wi];
    }

    /** Word-parallel boolean algebra (operands must match in size). */
    BitVector &
    operator&=(const BitVector &o)
    {
        mmr_assert(numBits == o.numBits, "bit vector size mismatch");
        for (std::size_t i = 0; i < words.size(); ++i)
            words[i] &= o.words[i];
        return *this;
    }

    BitVector &
    operator|=(const BitVector &o)
    {
        mmr_assert(numBits == o.numBits, "bit vector size mismatch");
        for (std::size_t i = 0; i < words.size(); ++i)
            words[i] |= o.words[i];
        return *this;
    }

    BitVector &
    operator^=(const BitVector &o)
    {
        mmr_assert(numBits == o.numBits, "bit vector size mismatch");
        for (std::size_t i = 0; i < words.size(); ++i)
            words[i] ^= o.words[i];
        return *this;
    }

    /** a &= ~b, the "exclude already-serviced channels" operation. */
    BitVector &
    andNot(const BitVector &o)
    {
        mmr_assert(numBits == o.numBits, "bit vector size mismatch");
        for (std::size_t i = 0; i < words.size(); ++i)
            words[i] &= ~o.words[i];
        return *this;
    }

    /** Flip every bit (tail bits beyond size() stay clear). */
    void invert();

    friend BitVector operator&(BitVector a, const BitVector &b);
    friend BitVector operator|(BitVector a, const BitVector &b);
    friend BitVector operator^(BitVector a, const BitVector &b);

    bool operator==(const BitVector &o) const;

  private:
    /** Clear the unused bits of the last word. */
    void trimTail();

    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace mmr

#endif // MMR_BASE_BITVECTOR_HH
