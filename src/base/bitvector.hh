/**
 * @file
 * Status bit vectors (paper §4.1).
 *
 * The MMR trades silicon for scheduling speed by keeping one bit per
 * virtual channel in vectors such as flits_available,
 * credits_available, CBR_service_requested, CBR_bandwidth_serviced.
 * Link schedulers combine these with wide AND/OR operations to obtain
 * candidate sets in a few "gate delays".  This class is that hardware
 * structure: a packed dynamic bit vector with fast word-parallel
 * boolean algebra and set-bit iteration.
 */

#ifndef MMR_BASE_BITVECTOR_HH
#define MMR_BASE_BITVECTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmr
{

class BitVector
{
  public:
    BitVector() = default;

    /** Create a vector of @p nbits bits, all clear. */
    explicit BitVector(std::size_t nbits);

    /** Number of bits tracked. */
    std::size_t size() const { return numBits; }

    /** Resize (new bits are clear; content preserved). */
    void resize(std::size_t nbits);

    void set(std::size_t i);
    void clear(std::size_t i);
    void assign(std::size_t i, bool v);
    bool test(std::size_t i) const;

    /** Set/clear every bit. */
    void setAll();
    void clearAll();

    /** Population count. */
    std::size_t count() const;

    /** True when no bit is set. */
    bool none() const;

    /** True when at least one bit is set. */
    bool any() const { return !none(); }

    /**
     * Index of the first set bit at or after @p from, or size() when
     * there is none.  Enables "for (i = v.findFirst(); i < v.size();
     * i = v.findNext(i))" iteration over candidate sets.
     */
    std::size_t findFirst(std::size_t from = 0) const;

    /** Index of the first set bit strictly after @p i, or size(). */
    std::size_t findNext(std::size_t i) const { return findFirst(i + 1); }

    /** Collect the indices of all set bits (ascending). */
    std::vector<std::size_t> setBits() const;

    /** Word-parallel boolean algebra (operands must match in size). */
    BitVector &operator&=(const BitVector &o);
    BitVector &operator|=(const BitVector &o);
    BitVector &operator^=(const BitVector &o);

    /** a &= ~b, the "exclude already-serviced channels" operation. */
    BitVector &andNot(const BitVector &o);

    /** Flip every bit (tail bits beyond size() stay clear). */
    void invert();

    friend BitVector operator&(BitVector a, const BitVector &b);
    friend BitVector operator|(BitVector a, const BitVector &b);
    friend BitVector operator^(BitVector a, const BitVector &b);

    bool operator==(const BitVector &o) const;

  private:
    /** Clear the unused bits of the last word. */
    void trimTail();

    static constexpr std::size_t kWordBits = 64;

    std::size_t numBits = 0;
    std::vector<std::uint64_t> words;
};

} // namespace mmr

#endif // MMR_BASE_BITVECTOR_HH
