/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()/inform()/debug() — leveled status output routed through a
 *            replaceable sink.
 *
 * Messages carry a severity (LogLevel) and are filtered against
 * log::level() before formatting reaches the sink; the threshold
 * defaults to Info and can be overridden with the MMR_LOG_LEVEL
 * environment variable (debug | info | warn | silent).  When a
 * simulation kernel is running, the default sink timestamps each line
 * with the current flit cycle ("[cycle 1234] warn: ...") so log output
 * can be correlated with trace events.
 */

#ifndef MMR_BASE_LOGGING_HH
#define MMR_BASE_LOGGING_HH

#include <functional>
#include <sstream>
#include <string>

namespace mmr
{

/** Message severities, in increasing order of importance. */
enum class LogLevel
{
    Debug,  ///< high-volume diagnostics (off by default)
    Info,   ///< inform(): normal status output
    Warn,   ///< warn(): suspicious but recoverable
    Silent  ///< threshold-only value: suppress everything
};

const char *to_string(LogLevel l);

namespace log
{

/** Receives every message that passes the level filter. */
using SinkFn = std::function<void(LogLevel, const std::string &)>;

/**
 * Current threshold: messages below it are discarded before
 * formatting hits the sink.  Initialized from MMR_LOG_LEVEL (debug |
 * info | warn | silent, case-insensitive) on first use, default Info.
 */
LogLevel level();

/** Override the threshold (wins over MMR_LOG_LEVEL). */
void setLevel(LogLevel l);

bool enabled(LogLevel l);

/**
 * Replace the output sink (nullptr restores the default stderr
 * sink, which prefixes the severity and — when a kernel is running —
 * the current flit cycle).  Returns the previous sink so tests can
 * restore it.
 */
SinkFn setSink(SinkFn sink);

/**
 * Last-gasp callback invoked by mmr_panic (and therefore mmr_assert
 * and mmr_invariant_violated) after the message prints but before the
 * abort — the flight recorder uses it to dump its event ring.  A
 * plain function pointer, not std::function: the panic path must not
 * allocate.  Re-entrant panics skip the hook.  Returns the previous
 * hook.
 */
using PanicHookFn = void (*)(const char *msg);
PanicHookFn setPanicHook(PanicHookFn hook);

} // namespace log

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Number of warnings emitted so far (exposed for tests).  Counts
 * every warn() call, including those filtered by the level. */
unsigned warnCount();

} // namespace mmr

#define mmr_panic(...) \
    ::mmr::detail::panicImpl(__FILE__, __LINE__, \
                             ::mmr::detail::concat(__VA_ARGS__))

#define mmr_fatal(...) \
    ::mmr::detail::fatalImpl(__FILE__, __LINE__, \
                             ::mmr::detail::concat(__VA_ARGS__))

#define mmr_warn(...) \
    ::mmr::detail::warnImpl(::mmr::detail::concat(__VA_ARGS__))

#define mmr_inform(...) \
    do { \
        if (::mmr::log::enabled(::mmr::LogLevel::Info)) { \
            ::mmr::detail::informImpl( \
                ::mmr::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Level-gated before formatting: free when Debug is filtered. */
#define mmr_debug(...) \
    do { \
        if (::mmr::log::enabled(::mmr::LogLevel::Debug)) { \
            ::mmr::detail::debugImpl( \
                ::mmr::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** panic() unless the stated internal invariant holds. */
#define mmr_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::mmr::detail::panicImpl(__FILE__, __LINE__, \
                ::mmr::detail::concat("assertion '", #cond, \
                                      "' failed: ", ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // MMR_BASE_LOGGING_HH
