/**
 * @file
 * Error and status reporting in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the user asked for something impossible (bad configuration);
 *            exits with an error code.
 * warn()/inform() — non-fatal status output.
 */

#ifndef MMR_BASE_LOGGING_HH
#define MMR_BASE_LOGGING_HH

#include <sstream>
#include <string>

namespace mmr
{

namespace detail
{

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/** Number of warnings emitted so far (exposed for tests). */
unsigned warnCount();

} // namespace mmr

#define mmr_panic(...) \
    ::mmr::detail::panicImpl(__FILE__, __LINE__, \
                             ::mmr::detail::concat(__VA_ARGS__))

#define mmr_fatal(...) \
    ::mmr::detail::fatalImpl(__FILE__, __LINE__, \
                             ::mmr::detail::concat(__VA_ARGS__))

#define mmr_warn(...) \
    ::mmr::detail::warnImpl(::mmr::detail::concat(__VA_ARGS__))

#define mmr_inform(...) \
    ::mmr::detail::informImpl(::mmr::detail::concat(__VA_ARGS__))

/** panic() unless the stated internal invariant holds. */
#define mmr_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::mmr::detail::panicImpl(__FILE__, __LINE__, \
                ::mmr::detail::concat("assertion '", #cond, \
                                      "' failed: ", ##__VA_ARGS__)); \
        } \
    } while (0)

#endif // MMR_BASE_LOGGING_HH
