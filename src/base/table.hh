/**
 * @file
 * Result presentation: aligned ASCII tables and CSV blocks.
 *
 * Every bench binary prints the series a paper figure plots as (a) a
 * human-readable table and (b) a machine-readable CSV block delimited
 * by "# begin-csv <name>" / "# end-csv" markers, so plots can be
 * regenerated directly from bench output.
 */

#ifndef MMR_BASE_TABLE_HH
#define MMR_BASE_TABLE_HH

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mmr
{

class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 4);

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as a named CSV block. */
    void printCsv(std::ostream &os, const std::string &name) const;

    /**
     * Render as a named JSON block ("# begin-json <name>" / "#
     * end-json" markers): a list of row objects keyed by column
     * header.  Cells that parse as numbers are emitted as numbers,
     * everything else as strings; scripts/extract_csv.py understands
     * both block formats.
     */
    void printJson(std::ostream &os, const std::string &name) const;

    std::size_t numRows() const { return rows.size(); }
    std::size_t numCols() const { return cols.size(); }
    const std::string &cell(std::size_t r, std::size_t c) const;

  private:
    std::vector<std::string> cols;
    std::vector<std::vector<std::string>> rows;
};

} // namespace mmr

#endif // MMR_BASE_TABLE_HH
