/**
 * @file
 * Global "what cycle is it" hook.
 *
 * Several cross-cutting services want the current simulated cycle
 * without threading it through every call site: the leveled logger
 * stamps messages with the cycle they were emitted at, and the event
 * tracer timestamps management-plane events (connection setup,
 * admission decisions) that happen outside the Clocked tick.  The
 * kernel publishes its cycle counter here each step; anything may
 * read it.  Purely simulation-deterministic (no wall clock involved).
 */

#ifndef MMR_BASE_SIMCLOCK_HH
#define MMR_BASE_SIMCLOCK_HH

#include "base/types.hh"

namespace mmr::simclock
{

/** Publish the current cycle (called by the kernel every step). */
void set(Cycle now);

/** Forget the published cycle (kernel destroyed / tests). */
void clear();

/** True once a kernel has published at least one cycle. */
bool active();

/** Last published cycle; 0 when no kernel is active. */
Cycle now();

} // namespace mmr::simclock

#endif // MMR_BASE_SIMCLOCK_HH
