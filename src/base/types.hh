/**
 * @file
 * Fundamental scalar types and unit helpers shared by every MMR module.
 *
 * The router core is simulated at flit-cycle granularity (paper §3.4):
 * a Cycle counts flit cycles, and the physical duration of one flit
 * cycle is derived from the flit size and the link rate.
 */

#ifndef MMR_BASE_TYPES_HH
#define MMR_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace mmr
{

/** Simulated time in flit cycles. */
using Cycle = std::uint64_t;

/**
 * Marks a function as part of the per-cycle hot path.
 *
 * Annotated functions (and everything they call within the project)
 * must stay heap-free in steady state: mmr-lint's hot-path-alloc rule
 * walks the transitive call closure from every MMR_HOT_PATH root and
 * rejects new/malloc and reallocating container operations, and
 * test_zero_alloc verifies the same property dynamically.  On clang
 * the annotate attribute makes the marking visible to AST tooling; on
 * both compilers the hot attribute aids code placement.
 */
#if defined(__clang__)
#define MMR_HOT_PATH __attribute__((hot, annotate("mmr::hot_path")))
#elif defined(__GNUC__)
#define MMR_HOT_PATH __attribute__((hot))
#else
#define MMR_HOT_PATH
#endif

/** Physical port index on a router (input or output side). */
using PortId = std::uint16_t;

/** Virtual channel index within one physical port. */
using VcId = std::uint16_t;

/** Globally unique connection identifier. */
using ConnId = std::uint32_t;

/** Node (router or host) identifier at the network level. */
using NodeId = std::uint32_t;

/** Sentinel values for "not assigned". */
constexpr PortId kInvalidPort = std::numeric_limits<PortId>::max();
constexpr VcId kInvalidVc = std::numeric_limits<VcId>::max();
constexpr ConnId kInvalidConn = std::numeric_limits<ConnId>::max();
constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/** Bit-rate helpers (paper quotes rates in Kb/s, Mb/s and Gb/s). */
constexpr double kKbps = 1e3;
constexpr double kMbps = 1e6;
constexpr double kGbps = 1e9;

/**
 * Duration of one flit cycle in nanoseconds.
 *
 * With 128-bit flits on a 1.24 Gb/s link this is ~103.2 ns, which is the
 * paper's "router cycle" used on the jitter axes of Figures 3 and 5.
 *
 * @param flit_bits flit size in bits
 * @param link_rate_bps physical link rate in bits/second
 */
constexpr double
flitCycleNs(unsigned flit_bits, double link_rate_bps)
{
    return 1e9 * static_cast<double>(flit_bits) / link_rate_bps;
}

/**
 * Constant flit inter-arrival time of a CBR connection, in flit cycles.
 *
 * A connection of rate r on a link of rate R produces one flit every
 * R/r flit cycles (paper §5: admission control keeps inter-arrival
 * constant on CBR connections).
 */
constexpr double
interArrivalCycles(double conn_rate_bps, double link_rate_bps)
{
    return link_rate_bps / conn_rate_bps;
}

} // namespace mmr

#endif // MMR_BASE_TYPES_HH
