#include "base/cli.hh"

#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"

namespace mmr
{

void
Cli::flag(const std::string &name, const std::string &def,
          const std::string &help)
{
    specs[name] = Spec{def, help};
}

bool
Cli::parse(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            printUsage(argv[0]);
            return false;
        }
        if (a.rfind("--", 0) != 0) {
            args.push_back(std::move(a));
            continue;
        }
        std::string name, value;
        const auto eq = a.find('=');
        if (eq != std::string::npos) {
            name = a.substr(2, eq - 2);
            value = a.substr(eq + 1);
        } else {
            name = a.substr(2);
            if (i + 1 >= argc)
                mmr_fatal("flag --", name, " is missing a value");
            value = argv[++i];
        }
        auto it = specs.find(name);
        if (it == specs.end())
            mmr_fatal("unknown flag --", name, " (see --help)");
        it->second.value = std::move(value);
    }
    return true;
}

std::string
Cli::str(const std::string &name) const
{
    auto it = specs.find(name);
    mmr_assert(it != specs.end(), "flag --", name, " was never declared");
    return it->second.value;
}

std::int64_t
Cli::integer(const std::string &name) const
{
    const std::string v = str(name);
    char *end = nullptr;
    const long long x = std::strtoll(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        mmr_fatal("flag --", name, " expects an integer, got '", v, "'");
    return x;
}

double
Cli::real(const std::string &name) const
{
    const std::string v = str(name);
    char *end = nullptr;
    const double x = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        mmr_fatal("flag --", name, " expects a number, got '", v, "'");
    return x;
}

bool
Cli::boolean(const std::string &name) const
{
    const std::string v = str(name);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    mmr_fatal("flag --", name, " expects a boolean, got '", v, "'");
}

std::vector<std::string>
Cli::list(const std::string &name) const
{
    std::vector<std::string> parts;
    const std::string v = str(name);
    std::size_t start = 0;
    while (start <= v.size()) {
        const auto comma = v.find(',', start);
        if (comma == std::string::npos) {
            if (start < v.size())
                parts.push_back(v.substr(start));
            break;
        }
        if (comma > start)
            parts.push_back(v.substr(start, comma - start));
        start = comma + 1;
    }
    return parts;
}

void
Cli::printUsage(const std::string &prog) const
{
    std::printf("usage: %s [flags]\n", prog.c_str());
    for (const auto &[name, spec] : specs) {
        std::printf("  --%-24s %s (default: %s)\n", name.c_str(),
                    spec.help.c_str(), spec.value.c_str());
    }
}

} // namespace mmr
