#include "base/table.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace mmr
{

Table::Table(std::vector<std::string> headers) : cols(std::move(headers))
{
    mmr_assert(!cols.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    mmr_assert(cells.size() == cols.size(), "row width ", cells.size(),
               " != header width ", cols.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(cols.size());
    for (std::size_t c = 0; c < cols.size(); ++c)
        width[c] = cols[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < cols.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto rule = [&] {
        for (std::size_t c = 0; c < cols.size(); ++c) {
            os << '+' << std::string(width[c] + 2, '-');
        }
        os << "+\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cols.size(); ++c) {
            os << "| " << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c] << ' ';
        }
        os << "|\n";
    };

    rule();
    line(cols);
    rule();
    for (const auto &row : rows)
        line(row);
    rule();
}

void
Table::printCsv(std::ostream &os, const std::string &name) const
{
    os << "# begin-csv " << name << "\n";
    for (std::size_t c = 0; c < cols.size(); ++c)
        os << cols[c] << (c + 1 < cols.size() ? "," : "\n");
    for (const auto &row : rows)
        for (std::size_t c = 0; c < cols.size(); ++c)
            os << row[c] << (c + 1 < cols.size() ? "," : "\n");
    os << "# end-csv\n";
}

const std::string &
Table::cell(std::size_t r, std::size_t c) const
{
    mmr_assert(r < rows.size() && c < cols.size(), "cell out of range");
    return rows[r][c];
}

} // namespace mmr
