#include "base/table.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace mmr
{

Table::Table(std::vector<std::string> headers) : cols(std::move(headers))
{
    mmr_assert(!cols.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    mmr_assert(cells.size() == cols.size(), "row width ", cells.size(),
               " != header width ", cols.size());
    rows.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(cols.size());
    for (std::size_t c = 0; c < cols.size(); ++c)
        width[c] = cols[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < cols.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto rule = [&] {
        for (std::size_t c = 0; c < cols.size(); ++c) {
            os << '+' << std::string(width[c] + 2, '-');
        }
        os << "+\n";
    };
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cols.size(); ++c) {
            os << "| " << std::left << std::setw(static_cast<int>(width[c]))
               << cells[c] << ' ';
        }
        os << "|\n";
    };

    rule();
    line(cols);
    rule();
    for (const auto &row : rows)
        line(row);
    rule();
}

void
Table::printCsv(std::ostream &os, const std::string &name) const
{
    os << "# begin-csv " << name << "\n";
    for (std::size_t c = 0; c < cols.size(); ++c)
        os << cols[c] << (c + 1 < cols.size() ? "," : "\n");
    for (const auto &row : rows)
        for (std::size_t c = 0; c < cols.size(); ++c)
            os << row[c] << (c + 1 < cols.size() ? "," : "\n");
    os << "# end-csv\n";
}

namespace
{

/** True when the whole cell parses as a finite JSON-legal number. */
bool
isNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end != s.c_str() + s.size())
        return false;
    return v == v && v != std::numeric_limits<double>::infinity() &&
           v != -std::numeric_limits<double>::infinity();
}

void
jsonEscape(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char ch : s) {
        switch (ch) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(ch));
                os << buf;
            } else {
                os << ch;
            }
        }
    }
    os << '"';
}

} // namespace

void
Table::printJson(std::ostream &os, const std::string &name) const
{
    os << "# begin-json " << name << "\n[\n";
    for (std::size_t r = 0; r < rows.size(); ++r) {
        os << "  {";
        for (std::size_t c = 0; c < cols.size(); ++c) {
            jsonEscape(os, cols[c]);
            os << ": ";
            if (isNumeric(rows[r][c]))
                os << rows[r][c];
            else
                jsonEscape(os, rows[r][c]);
            if (c + 1 < cols.size())
                os << ", ";
        }
        os << (r + 1 < rows.size() ? "},\n" : "}\n");
    }
    os << "]\n# end-json\n";
}

const std::string &
Table::cell(std::size_t r, std::size_t c) const
{
    mmr_assert(r < rows.size() && c < cols.size(), "cell out of range");
    return rows[r][c];
}

} // namespace mmr
