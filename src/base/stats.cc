#include "base/stats.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mmr
{

void
StreamStat::add(double x)
{
    ++n;
    total += x;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
}

void
StreamStat::merge(const StreamStat &o)
{
    if (o.n == 0)
        return;
    if (n == 0) {
        *this = o;
        return;
    }
    const double delta = o.mu - mu;
    const double nn = static_cast<double>(n + o.n);
    m2 += o.m2 + delta * delta * static_cast<double>(n) *
                     static_cast<double>(o.n) / nn;
    mu = (mu * static_cast<double>(n) + o.mu * static_cast<double>(o.n)) /
         nn;
    n += o.n;
    total += o.total;
    lo = std::min(lo, o.lo);
    hi = std::max(hi, o.hi);
}

void
StreamStat::reset()
{
    *this = StreamStat{};
}

double
StreamStat::variance() const
{
    return n > 1 ? m2 / static_cast<double>(n - 1) : 0.0;
}

double
StreamStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double width, std::size_t nbins)
    : lowEdge(lo), binWidth(width), bins(nbins, 0)
{
    mmr_assert(width > 0.0, "histogram bin width must be positive");
    mmr_assert(nbins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++n;
    if (x < lowEdge) {
        ++underflow;
        return;
    }
    const auto b = static_cast<std::size_t>((x - lowEdge) / binWidth);
    if (b >= bins.size())
        ++overflow;
    else
        ++bins[b];
}

void
Histogram::reset()
{
    std::fill(bins.begin(), bins.end(), 0);
    underflow = overflow = n = 0;
}

double
Histogram::quantile(double q) const
{
    mmr_assert(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
    if (n == 0)
        return 0.0;
    const double target = q * static_cast<double>(n);
    double cum = static_cast<double>(underflow);
    if (target <= cum)
        return lowEdge;
    for (std::size_t b = 0; b < bins.size(); ++b) {
        const double next = cum + static_cast<double>(bins[b]);
        if (target <= next && bins[b] > 0) {
            const double frac =
                (target - cum) / static_cast<double>(bins[b]);
            return binLow(b) + frac * binWidth;
        }
        cum = next;
    }
    return lowEdge + binWidth * static_cast<double>(bins.size());
}

PercentileSketch::PercentileSketch(std::size_t capacity) : cap(capacity)
{
    mmr_assert(cap > 0, "sketch capacity must be positive");
    // Reserve the full capacity up front: the sketch sits on the
    // per-delivered-flit path, and growth reallocations there are the
    // kind of steady-state heap traffic the zero-allocation audit
    // forbids.
    samples.reserve(cap);
}

void
PercentileSketch::add(double x)
{
    ++n;
    dirty = true;
    if (samples.size() < cap) {
        samples.push_back(x);
        return;
    }
    // Reservoir sampling: keep each of the n samples with prob cap/n.
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const std::uint64_t slot = (lcg >> 11) % n;
    if (slot < cap)
        samples[slot] = x;
}

void
PercentileSketch::reset()
{
    samples.clear();
    n = 0;
    dirty = false;
}

double
PercentileSketch::percentile(double p) const
{
    mmr_assert(p >= 0.0 && p <= 100.0, "percentile out of [0,100]");
    if (samples.empty())
        return 0.0;
    if (dirty) {
        std::sort(samples.begin(), samples.end());
        dirty = false;
    }
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto i = static_cast<std::size_t>(rank);
    if (i + 1 >= samples.size())
        return samples.back();
    const double frac = rank - static_cast<double>(i);
    return samples[i] * (1.0 - frac) + samples[i + 1] * frac;
}

double
RatioStat::ratio() const
{
    return chances ? static_cast<double>(hits) /
                         static_cast<double>(chances)
                   : 0.0;
}

} // namespace mmr
