#include "base/logging.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "base/simclock.hh"

namespace mmr
{

const char *
to_string(LogLevel l)
{
    switch (l) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Silent:
        return "silent";
    }
    return "?";
}

namespace
{

std::atomic<unsigned> warn_counter{0};

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("MMR_LOG_LEVEL");
    if (env == nullptr || *env == '\0')
        return LogLevel::Info;
    std::string s;
    for (const char *p = env; *p; ++p)
        s.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(*p))));
    if (s == "debug")
        return LogLevel::Debug;
    if (s == "info")
        return LogLevel::Info;
    if (s == "warn" || s == "warning")
        return LogLevel::Warn;
    if (s == "silent" || s == "none" || s == "off")
        return LogLevel::Silent;
    std::fprintf(stderr,
                 "warn: unknown MMR_LOG_LEVEL '%s' "
                 "(want debug|info|warn|silent); using info\n",
                 env);
    return LogLevel::Info;
}

/** stderr, prefixed with the severity and — when a simulation kernel
 * is stepping — the current flit cycle. */
void
defaultSink(LogLevel l, const std::string &msg)
{
    if (simclock::active()) {
        std::fprintf(stderr, "[cycle %llu] %s: %s\n",
                     static_cast<unsigned long long>(simclock::now()),
                     to_string(l), msg.c_str());
    } else {
        std::fprintf(stderr, "%s: %s\n", to_string(l), msg.c_str());
    }
}

LogLevel threshold = levelFromEnv();
log::SinkFn sink; ///< empty = defaultSink
log::PanicHookFn panicHook = nullptr;

void
emit(LogLevel l, const std::string &msg)
{
    if (sink)
        sink(l, msg);
    else
        defaultSink(l, msg);
}

} // namespace

unsigned
warnCount()
{
    return warn_counter.load();
}

namespace log
{

LogLevel
level()
{
    return threshold;
}

void
setLevel(LogLevel l)
{
    threshold = l;
}

bool
enabled(LogLevel l)
{
    return l >= threshold && threshold != LogLevel::Silent;
}

SinkFn
setSink(SinkFn s)
{
    SinkFn prev = std::move(sink);
    sink = std::move(s);
    return prev;
}

PanicHookFn
setPanicHook(PanicHookFn hook)
{
    PanicHookFn prev = panicHook;
    panicHook = hook;
    return prev;
}

} // namespace log

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    // Give the flight recorder its last gasp, guarding against a
    // panic raised from inside the hook itself.
    static thread_local bool inHook = false;
    if (panicHook != nullptr && !inHook) {
        inHook = true;
        panicHook(msg.c_str());
        inHook = false;
    }
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Thrown (rather than exit(1)) so the condition is testable; main()
    // wrappers in benches/examples convert it to a clean error exit.
    throw std::runtime_error(std::string("fatal: ") + msg + " (" + file +
                             ":" + std::to_string(line) + ")");
}

void
warnImpl(const std::string &msg)
{
    warn_counter.fetch_add(1);
    if (log::enabled(LogLevel::Warn))
        emit(LogLevel::Warn, msg);
}

void
informImpl(const std::string &msg)
{
    if (log::enabled(LogLevel::Info))
        emit(LogLevel::Info, msg);
}

void
debugImpl(const std::string &msg)
{
    if (log::enabled(LogLevel::Debug))
        emit(LogLevel::Debug, msg);
}

} // namespace detail
} // namespace mmr
