#include "base/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mmr
{

namespace
{
std::atomic<unsigned> warn_counter{0};
} // namespace

unsigned
warnCount()
{
    return warn_counter.load();
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::fflush(stderr);
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Thrown (rather than exit(1)) so the condition is testable; main()
    // wrappers in benches/examples convert it to a clean error exit.
    throw std::runtime_error(std::string("fatal: ") + msg + " (" + file +
                             ":" + std::to_string(line) + ")");
}

void
warnImpl(const std::string &msg)
{
    warn_counter.fetch_add(1);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace mmr
