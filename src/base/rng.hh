/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * A thin, fully reproducible xoshiro256** generator plus the
 * distributions the traffic models need (uniform, exponential, normal,
 * lognormal, geometric picks).  std::mt19937 is avoided so that results
 * are bit-identical across standard-library implementations.
 */

#ifndef MMR_BASE_RNG_HH
#define MMR_BASE_RNG_HH

#include <cstdint>
#include <vector>

#include "base/logging.hh"

namespace mmr
{

/** xoshiro256** with a SplitMix64-seeded state. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Re-seed the generator deterministically. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) with rejection (unbiased). */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Exponential variate with the given mean. */
    double exponential(double mean);

    /** Standard-normal variate (Box-Muller, cached pair). */
    double normal();

    /** Normal variate with mean/stddev. */
    double normal(double mean, double stddev);

    /** Lognormal variate parameterized by the mean/stddev of log(X). */
    double lognormal(double mu, double sigma);

    /** Pick a uniformly random element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        mmr_assert(!v.empty(), "pick() from empty vector");
        return v[below(v.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = below(i);
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t state_[4];
    bool haveCachedNormal = false;
    double cachedNormal = 0.0;
};

} // namespace mmr

#endif // MMR_BASE_RNG_HH
