#include "base/rng.hh"

#include <cmath>

namespace mmr
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t s)
{
    seed(s);
}

void
Rng::seed(std::uint64_t s)
{
    for (auto &w : state_)
        w = splitmix64(s);
    haveCachedNormal = false;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    mmr_assert(lo <= hi, "uniform() with inverted bounds");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    mmr_assert(bound > 0, "below(0) is undefined");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    mmr_assert(lo <= hi, "range() with inverted bounds");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

double
Rng::exponential(double mean)
{
    mmr_assert(mean > 0.0, "exponential() needs positive mean");
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::normal()
{
    if (haveCachedNormal) {
        haveCachedNormal = false;
        return cachedNormal;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    haveCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

} // namespace mmr
