#include "base/bitvector.hh"

#include <bit>

#include "base/logging.hh"

namespace mmr
{

BitVector::BitVector(std::size_t nbits)
    : numBits(nbits), words((nbits + kWordBits - 1) / kWordBits, 0)
{
}

void
BitVector::resize(std::size_t nbits)
{
    numBits = nbits;
    words.resize((nbits + kWordBits - 1) / kWordBits, 0);
    trimTail();
}

void
BitVector::set(std::size_t i)
{
    mmr_assert(i < numBits, "bit index ", i, " out of range ", numBits);
    words[i / kWordBits] |= (std::uint64_t{1} << (i % kWordBits));
}

void
BitVector::clear(std::size_t i)
{
    mmr_assert(i < numBits, "bit index ", i, " out of range ", numBits);
    words[i / kWordBits] &= ~(std::uint64_t{1} << (i % kWordBits));
}

void
BitVector::assign(std::size_t i, bool v)
{
    if (v)
        set(i);
    else
        clear(i);
}

bool
BitVector::test(std::size_t i) const
{
    mmr_assert(i < numBits, "bit index ", i, " out of range ", numBits);
    return (words[i / kWordBits] >> (i % kWordBits)) & 1;
}

void
BitVector::setAll()
{
    for (auto &w : words)
        w = ~std::uint64_t{0};
    trimTail();
}

void
BitVector::clearAll()
{
    for (auto &w : words)
        w = 0;
}

std::size_t
BitVector::count() const
{
    std::size_t n = 0;
    for (auto w : words)
        n += std::popcount(w);
    return n;
}

bool
BitVector::none() const
{
    for (auto w : words)
        if (w)
            return false;
    return true;
}

std::size_t
BitVector::findFirst(std::size_t from) const
{
    if (from >= numBits)
        return numBits;
    std::size_t wi = from / kWordBits;
    std::uint64_t w = words[wi] & (~std::uint64_t{0} << (from % kWordBits));
    for (;;) {
        if (w)
            return wi * kWordBits + std::countr_zero(w);
        if (++wi >= words.size())
            return numBits;
        w = words[wi];
    }
}

std::vector<std::size_t>
BitVector::setBits() const
{
    std::vector<std::size_t> out;
    out.reserve(count());
    for (std::size_t i = findFirst(); i < numBits; i = findNext(i))
        out.push_back(i);
    return out;
}

BitVector &
BitVector::operator&=(const BitVector &o)
{
    mmr_assert(numBits == o.numBits, "bit vector size mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] &= o.words[i];
    return *this;
}

BitVector &
BitVector::operator|=(const BitVector &o)
{
    mmr_assert(numBits == o.numBits, "bit vector size mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] |= o.words[i];
    return *this;
}

BitVector &
BitVector::operator^=(const BitVector &o)
{
    mmr_assert(numBits == o.numBits, "bit vector size mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] ^= o.words[i];
    return *this;
}

BitVector &
BitVector::andNot(const BitVector &o)
{
    mmr_assert(numBits == o.numBits, "bit vector size mismatch");
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] &= ~o.words[i];
    return *this;
}

void
BitVector::invert()
{
    for (auto &w : words)
        w = ~w;
    trimTail();
}

BitVector
operator&(BitVector a, const BitVector &b)
{
    a &= b;
    return a;
}

BitVector
operator|(BitVector a, const BitVector &b)
{
    a |= b;
    return a;
}

BitVector
operator^(BitVector a, const BitVector &b)
{
    a ^= b;
    return a;
}

bool
BitVector::operator==(const BitVector &o) const
{
    return numBits == o.numBits && words == o.words;
}

void
BitVector::trimTail()
{
    const std::size_t tail = numBits % kWordBits;
    if (tail != 0 && !words.empty())
        words.back() &= (std::uint64_t{1} << tail) - 1;
}

} // namespace mmr
