#include "base/bitvector.hh"

namespace mmr
{

void
BitVector::resize(std::size_t nbits)
{
    numBits = nbits;
    words.resize((nbits + kWordBits - 1) / kWordBits, 0);
    trimTail();
}

void
BitVector::setAll()
{
    for (auto &w : words)
        w = ~std::uint64_t{0};
    trimTail();
}

std::vector<std::size_t>
BitVector::setBits() const
{
    std::vector<std::size_t> out;
    out.reserve(count());
    forEachSet([&out](std::size_t i) { out.push_back(i); });
    return out;
}

void
BitVector::invert()
{
    for (auto &w : words)
        w = ~w;
    trimTail();
}

BitVector
operator&(BitVector a, const BitVector &b)
{
    a &= b;
    return a;
}

BitVector
operator|(BitVector a, const BitVector &b)
{
    a |= b;
    return a;
}

BitVector
operator^(BitVector a, const BitVector &b)
{
    a ^= b;
    return a;
}

bool
BitVector::operator==(const BitVector &o) const
{
    return numBits == o.numBits && words == o.words;
}

void
BitVector::trimTail()
{
    const std::size_t tail = numBits % kWordBits;
    if (tail != 0 && !words.empty())
        words.back() &= (std::uint64_t{1} << tail) - 1;
}

} // namespace mmr
