/**
 * @file
 * Streaming statistics used by the measurement substrate.
 *
 * The paper reports average delay (microseconds), average jitter (flit
 * cycles) and switch utilization, each averaged over a ~100,000-cycle
 * steady-state window.  These helpers compute streaming moments without
 * retaining samples, plus an optional histogram / percentile sketch for
 * the extended analyses in bench/.
 */

#ifndef MMR_BASE_STATS_HH
#define MMR_BASE_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace mmr
{

/** Welford-style streaming mean / variance / extrema. */
class StreamStat
{
  public:
    void add(double x);

    /** Merge another stat into this one (parallel composition). */
    void merge(const StreamStat &o);

    /** Forget all samples. */
    void reset();

    std::uint64_t count() const { return n; }
    double mean() const { return n ? mu : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double sum() const { return total; }

  private:
    std::uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    double total = 0.0;
};

/** Fixed-width linear histogram with overflow bucket. */
class Histogram
{
  public:
    /**
     * @param lo lower edge of the first bin
     * @param width bin width (> 0)
     * @param nbins number of regular bins; samples beyond the last bin
     *              land in the overflow bucket
     */
    Histogram(double lo, double width, std::size_t nbins);

    void add(double x);
    void reset();

    std::uint64_t totalCount() const { return n; }
    std::uint64_t binCount(std::size_t b) const { return bins.at(b); }
    std::uint64_t overflowCount() const { return overflow; }
    std::uint64_t underflowCount() const { return underflow; }
    std::size_t numBins() const { return bins.size(); }
    double binLow(std::size_t b) const { return lowEdge + b * binWidth; }

    /**
     * Approximate quantile (q in [0,1]) assuming uniform density
     * within a bin.  Overflow samples clamp to the top edge.
     */
    double quantile(double q) const;

  private:
    double lowEdge;
    double binWidth;
    std::vector<std::uint64_t> bins;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t n = 0;
};

/**
 * Exact percentile sketch: retains up to a capacity of samples, then
 * switches to uniform reservoir sampling.  Deterministic given the
 * insertion order (uses an internal LCG, no global RNG dependency).
 */
class PercentileSketch
{
  public:
    explicit PercentileSketch(std::size_t capacity = 65536);

    void add(double x);
    void reset();

    std::uint64_t count() const { return n; }

    /** Percentile in [0, 100]; returns 0 with no samples. */
    double percentile(double p) const;

  private:
    std::size_t cap;
    std::uint64_t n = 0;
    std::uint64_t lcg = 0x2545f4914f6cdd1dULL;
    mutable bool dirty = false;
    mutable std::vector<double> samples;
};

/**
 * Ratio counter for utilization-style metrics: events that happened /
 * opportunities for them to happen.
 */
class RatioStat
{
  public:
    void addHit(std::uint64_t k = 1) { hits += k; chances += k; }
    void addMiss(std::uint64_t k = 1) { chances += k; }
    void reset() { hits = 0; chances = 0; }

    std::uint64_t hitCount() const { return hits; }
    std::uint64_t chanceCount() const { return chances; }
    double ratio() const;

  private:
    std::uint64_t hits = 0;
    std::uint64_t chances = 0;
};

} // namespace mmr

#endif // MMR_BASE_STATS_HH
