#include "base/simclock.hh"

namespace mmr::simclock
{

namespace
{
Cycle current = 0;
bool isActive = false;
} // namespace

void
set(Cycle now_)
{
    current = now_;
    isActive = true;
}

void
clear()
{
    current = 0;
    isActive = false;
}

bool
active()
{
    return isActive;
}

Cycle
now()
{
    return current;
}

} // namespace mmr::simclock
