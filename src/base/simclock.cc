#include "base/simclock.hh"

namespace mmr::simclock
{

namespace
{
// Thread-local so concurrent kernels (the parallel sweep runner gives
// each experiment its own worker thread) publish their cycle counters
// independently instead of racing on one global.
thread_local Cycle current = 0;
thread_local bool isActive = false;
} // namespace

void
set(Cycle now_)
{
    current = now_;
    isActive = true;
}

void
clear()
{
    current = 0;
    isActive = false;
}

bool
active()
{
    return isActive;
}

Cycle
now()
{
    return current;
}

} // namespace mmr::simclock
