#include "workload/churn.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mmr
{

ChurnEngine::ChurnEngine(Network &network, const ChurnConfig &config,
                         Cycle horizon, std::uint64_t seed)
    : net(network),
      cfg(config),
      gen(cfg.workload, net.numNodes(), horizon, seed),
      linkRateBps(net.routerAt(0).config().linkRateBps),
      wheel(kWheelSlots, kNil)
{
    mmr_assert(cfg.maxLiveSessions > 0,
               "churn needs room for at least one live session");
    // Pending setups must always resolve, or drain never finishes:
    // arm the probe timeout unless recovery (or the caller) already
    // configured one.
    if (net.probes().setupTimeout() == 0 && cfg.setupTimeoutCycles > 0)
        net.probes().setSetupTimeout(cfg.setupTimeoutCycles);
}

std::uint32_t
ChurnEngine::acquireSlot()
{
    std::uint32_t idx;
    if (freeHead != kNil) {
        idx = freeHead;
        freeHead = slots[idx].next;
    } else if (slots.size() < cfg.maxLiveSessions) {
        idx = static_cast<std::uint32_t>(slots.size());
        // mmr-lint: allow(hot-path-alloc) grows only to a new peak
        // population; steady-state churn recycles the free list.
        slots.emplace_back();
    } else {
        return kNil;
    }
    ++used;
    peak = std::max(peak, used);
    return idx;
}

void
ChurnEngine::freeSlot(std::uint32_t idx)
{
    Session &s = slots[idx];
    s.state = Free;
    s.conn = kInvalidConn;
    s.next = freeHead;
    freeHead = idx;
    --used;
}

void
ChurnEngine::wheelInsert(std::uint32_t idx)
{
    Session &s = slots[idx];
    const auto slot =
        static_cast<std::uint32_t>(s.departAt) & (kWheelSlots - 1);
    s.next = wheel[slot];
    wheel[slot] = idx;
}

void
ChurnEngine::retire(std::uint32_t idx, bool completed_hold)
{
    Session &s = slots[idx];
    net.closeConnection(s.conn); // false when a fault already tore it
    if (completed_hold)
        ++led.completed;
    s.state = Reaping;
    s.next = reapHead;
    reapHead = idx;
}

void
ChurnEngine::tick(Cycle now)
{
    reap(now);
    pollSetups(now);
    admitArrivals(now);
    departures(now);
    injectActive(now);
}

void
ChurnEngine::reap(Cycle now)
{
    (void)now;
    std::uint32_t idx = reapHead;
    std::uint32_t prev = kNil;
    while (idx != kNil) {
        Session &s = slots[idx];
        const std::uint32_t nxt = s.next;
        if (net.connectionState(s.conn) == Network::ConnState::Gone) {
            // Fully torn down: fold the connection's delay/jitter into
            // the recorder's retired aggregates and recycle the slot —
            // neither side keeps per-session state afterwards.
            net.endToEnd().releaseConnection(s.conn);
            if (prev == kNil)
                reapHead = nxt;
            else
                slots[prev].next = nxt;
            freeSlot(idx);
        } else {
            prev = idx;
        }
        idx = nxt;
    }
}

void
ChurnEngine::pollSetups(Cycle now)
{
    std::uint32_t idx = pendHead;
    std::uint32_t prev = kNil;
    while (idx != kNil) {
        Session &s = slots[idx];
        const std::uint32_t nxt = s.next;
        Network::TimedOutcome out;
        if (!net.takeTimedResult(s.token, out)) {
            prev = idx;
            idx = nxt;
            continue;
        }
        // Resolved: unlink from the pending chain first; `next` is
        // about to thread a different list.
        if (prev == kNil)
            pendHead = nxt;
        else
            slots[prev].next = nxt;

        if (out.accepted) {
            ++led.admitted;
            setupHist.record(out.setupCycles);
            s.conn = out.id;
            if (draining) {
                // Admitted after the run ended: close immediately.
                retire(idx, true);
            } else {
                s.state = Active;
                s.departAt = now + s.departAt; // rebase drawn hold
                wheelInsert(idx);
                s.activeNext = activeHead;
                activeHead = idx;
            }
        } else {
            ++led.rejected;
            freeSlot(idx);
        }
        idx = nxt;
    }
}

void
ChurnEngine::admitArrivals(Cycle now)
{
    const unsigned n = gen.arrivals(now);
    for (unsigned i = 0; i < n; ++i) {
        // Draw unconditionally so the generator's sub-RNG streams
        // advance identically whether or not the pool has room.
        const SessionGenerator::Draw d = gen.draw();
        ++led.arrived;
        const std::uint32_t idx = acquireSlot();
        if (idx == kNil) {
            ++led.rejected;
            ++led.rejectedBusy;
            continue;
        }
        Session &s = slots[idx];
        s.src = d.src;
        s.dst = d.dst;
        s.vbr = d.vbr;
        s.departAt = d.holdCycles; // absolute once admitted
        s.rateFlitsPerCycle =
            static_cast<float>(d.rateBps / linkRateBps);
        s.credit = 0.0f;
        s.seq = 0;
        s.conn = kInvalidConn;
        s.activeNext = kNil;
        s.state = Pending;
        s.token =
            d.vbr ? net.openVbrTimed(d.src, d.dst, d.rateBps,
                                     d.rateBps * cfg.workload.peakToMean,
                                     cfg.workload.vbrPriority, now)
                  : net.openCbrTimed(d.src, d.dst, d.rateBps, now);
        s.next = pendHead;
        pendHead = idx;
    }
}

void
ChurnEngine::departures(Cycle now)
{
    const auto slot =
        static_cast<std::uint32_t>(now) & (kWheelSlots - 1);
    std::uint32_t idx = wheel[slot];
    wheel[slot] = kNil;
    std::uint32_t keep = kNil; // sessions riding another revolution
    while (idx != kNil) {
        Session &s = slots[idx];
        const std::uint32_t nxt = s.next;
        if (s.departAt <= now) {
            // Zombies already counted abandoned; Active holds count
            // completed.  Either way the connection closes here and
            // the reaper frees the slot once teardown drains.
            retire(idx, s.state == Active);
        } else {
            s.next = keep;
            keep = idx;
        }
        idx = nxt;
    }
    wheel[slot] = keep;
}

void
ChurnEngine::injectActive(Cycle now)
{
    std::uint32_t idx = activeHead;
    std::uint32_t prev = kNil;
    while (idx != kNil) {
        Session &s = slots[idx];
        const std::uint32_t nxt = s.activeNext;
        if (s.state != Active) {
            // Departed this cycle: drop it from the scan chain.
            if (prev == kNil)
                activeHead = nxt;
            else
                slots[prev].activeNext = nxt;
            idx = nxt;
            continue;
        }
        Network::InjectHandle h = net.resolveInject(s.conn);
        if (!h.valid()) {
            // A link fault tore the connection down mid-hold.  The
            // session stays in the wheel as a zombie so its slot
            // reuse waits for its (already chained) departure pop.
            ++led.abandoned;
            s.state = Zombie;
            if (prev == kNil)
                activeHead = nxt;
            else
                slots[prev].activeNext = nxt;
            idx = nxt;
            continue;
        }
        s.credit += s.rateFlitsPerCycle;
        while (s.credit >= 1.0f) {
            s.credit -= 1.0f;
            Flit f;
            f.seq = s.seq++;
            f.createTime = now;
            if (h.push(f, now)) {
                ++statInjected;
            } else {
                // Back-pressure: CBR sources keep their cadence — the
                // rest of this cycle's quota is dropped, not queued.
                const auto rest = static_cast<std::uint32_t>(s.credit);
                statDropped += 1 + rest;
                s.credit -= static_cast<float>(rest);
                break;
            }
        }
        prev = idx;
        idx = nxt;
    }
}

void
ChurnEngine::beginDrain(Cycle now)
{
    (void)now;
    draining = true;
    gen.shutOff();

    // Force every admitted session out: the wheel and active chains
    // are dissolved wholesale (their `next` links get rewritten into
    // the reaper chain below), pending setups keep resolving under
    // tick() until the probe timeout clears the stragglers.
    std::fill(wheel.begin(), wheel.end(), kNil);
    activeHead = kNil;
    std::uint32_t reaping = kNil;
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(slots.size()); ++i) {
        Session &s = slots[i];
        switch (s.state) {
          case Active:
            net.closeConnection(s.conn);
            ++led.completed; // hold cut short by end of run
            break;
          case Zombie:
            net.closeConnection(s.conn); // usually already gone
            break;
          case Reaping:
            break;
          default:
            continue;
        }
        s.state = Reaping;
        s.next = reaping;
        reaping = i;
    }
    reapHead = reaping;
}

void
ChurnEngine::auditLedger(Cycle now) const
{
    std::uint64_t nFree = 0;
    std::uint64_t nPend = 0;
    std::uint64_t nAct = 0;
    std::uint64_t nZom = 0;
    std::uint64_t nReap = 0;
    for (const Session &s : slots) {
        switch (s.state) {
          case Free:
            ++nFree;
            break;
          case Pending:
            ++nPend;
            break;
          case Active:
            ++nAct;
            break;
          case Zombie:
            ++nZom;
            break;
          case Reaping:
            ++nReap;
            break;
          default:
            mmr_invariant_violated("workload.session-ledger",
                                   "unknown session state ",
                                   unsigned(s.state), " @", now);
        }
    }
    const std::uint64_t occupied = nPend + nAct + nZom + nReap;
    if (occupied != used || occupied + nFree != slots.size())
        mmr_invariant_violated(
            "workload.session-ledger", "pool accounting: used=", used,
            " but pending=", nPend, " active=", nAct, " zombie=", nZom,
            " reaping=", nReap, " free=", nFree,
            " slots=", slots.size(), " @", now);
    if (led.arrived != nPend + led.admitted + led.rejected)
        mmr_invariant_violated(
            "workload.session-ledger", "arrivals: arrived=",
            led.arrived, " != pending=", nPend,
            " + admitted=", led.admitted, " + rejected=", led.rejected,
            " @", now);
    // Zombie and reaping sessions are already inside completed /
    // abandoned (counted at the transition), so only Active sessions
    // are still "outstanding" against the admitted total.
    if (led.admitted != nAct + led.completed + led.abandoned)
        mmr_invariant_violated(
            "workload.session-ledger", "admissions: admitted=",
            led.admitted, " != active=", nAct,
            " + completed=", led.completed,
            " + abandoned=", led.abandoned, " @", now);
    if (led.rejectedBusy > led.rejected)
        mmr_invariant_violated("workload.session-ledger",
                               "rejectedBusy=", led.rejectedBusy,
                               " exceeds rejected=", led.rejected, " @",
                               now);
    if (peak > cfg.maxLiveSessions)
        mmr_invariant_violated("workload.session-ledger",
                               "peak live ", peak,
                               " exceeds configured cap ",
                               cfg.maxLiveSessions, " @", now);
}

void
ChurnEngine::registerInvariants(InvariantChecker &chk, unsigned period)
{
    chk.add(
        "workload.session-ledger",
        [this](Cycle now) { auditLedger(now); }, period);
}

} // namespace mmr
