/**
 * @file
 * Session-level workload generator: who arrives, how big, how long.
 *
 * One SessionGenerator owns every random draw of the churn workload —
 * arrival times (ArrivalSchedule), rate class, endpoints and holding
 * time — each on its own seed-derived sub-RNG so that draw streams
 * never interleave: adding a mix class cannot shift the holding-time
 * sequence, and none of it shares state with network or fault RNGs.
 * That independence is what makes churn runs digest-identical between
 * the serial and the sharded network core.
 *
 * The rate-class mix defaults to a media-like weighting of the paper's
 * §5 rate ladder (64 Kb/s voice up to 20 Mb/s video); entries may be
 * flagged VBR, in which case the session declares peak = peakToMean x
 * mean through the EPB admission path.
 */

#ifndef MMR_WORKLOAD_GENERATOR_HH
#define MMR_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"
#include "workload/arrival.hh"

namespace mmr
{

/** One rate class of the session mix. */
struct MixEntry
{
    double rateBps = 0.0; ///< CBR rate / VBR permanent (mean) rate
    double weight = 1.0;  ///< relative share of arrivals
    bool vbr = false;     ///< VBR session: declares peakToMean x mean
};

/** Generator half of the churn configuration (everything a
 * SessionGenerator needs; the engine adds pool and timeout knobs). */
struct SessionWorkloadSpec
{
    /** Base session arrival rate, sessions per 1000 flit cycles. */
    double arrivalsPer1k = 50.0;

    /** Mean session holding time (exponential), in flit cycles. */
    Cycle holdingMeanCycles = 2000;

    FlashCrowd flash;
    DiurnalCurve diurnal;

    /** Rate-class mix; empty selects defaultSessionMix(). */
    std::vector<MixEntry> mix;

    /** Declared peak/mean ratio for VBR mix entries (§4.2). */
    double peakToMean = 2.0;
    /** Priority handed to VBR sessions at setup. */
    int vbrPriority = 1;
};

/** The default mix: a media-weighted subset of paperRateLadder()
 * (voice-heavy low end, a few video rates). */
const std::vector<MixEntry> &defaultSessionMix();

/**
 * Parse "64k=2,1.54m=1,vbr:5m=1" into mix entries: RATE=WEIGHT pairs,
 * rates with k/m/g suffixes, "vbr:" prefix flags a VBR class.  Panics
 * on malformed specs.
 */
std::vector<MixEntry> parseSessionMix(const std::string &spec);

/** Parse "64k" / "1.54m" / "2g" / "250000" into bits per second. */
double parseRateBps(const std::string &token);

/** Parse "at=10000,ramp=2000,hold=4000,peak=3" (missing keys keep
 * defaults; panics on unknown keys). */
FlashCrowd parseFlashCrowd(const std::string &spec);

/** Parse "period=20000,amp=0.5". */
DiurnalCurve parseDiurnal(const std::string &spec);

class SessionGenerator
{
  public:
    /** Everything known about a session at its arrival instant. */
    struct Draw
    {
        NodeId src = 0;
        NodeId dst = 0;
        double rateBps = 0.0;
        bool vbr = false;
        Cycle holdCycles = 1;
    };

    SessionGenerator(const SessionWorkloadSpec &spec, unsigned nodes,
                     Cycle horizon, std::uint64_t seed);

    /** Sessions arriving during cycle @p now (consume in order). */
    unsigned arrivals(Cycle now) { return schedule.take(now); }

    /** Stop producing arrivals (drain phase). */
    void shutOff() { schedule.shutOff(); }

    /** Class, endpoints and holding time of the next arrival. */
    Draw draw();

    const ArrivalSchedule &arrivalSchedule() const { return schedule; }
    const std::vector<MixEntry> &mix() const { return classes; }

  private:
    std::vector<MixEntry> classes;
    std::vector<double> cumWeight; ///< prefix sums for the class pick
    double totalWeight = 0.0;
    double meanHold;
    unsigned numNodes;
    ArrivalSchedule schedule;
    Rng mixRng;     ///< rate-class picks
    Rng holdRng;    ///< holding-time draws
    Rng placeRng;   ///< endpoint picks
};

} // namespace mmr

#endif // MMR_WORKLOAD_GENERATOR_HH
