/**
 * @file
 * Session-churn engine: a population of sessions arriving, holding
 * and departing over the live network.
 *
 * The paper evaluates the MMR under steady sources; its admission-
 * control story (EPB probes, per-class QoS) only matters under
 * *populations*.  The ChurnEngine turns the SessionGenerator's draws
 * into real connection lifecycles: each arrival launches a timed EPB
 * setup (openCbrTimed / openVbrTimed), an admitted session injects
 * CBR/VBR flits through the batched InjectHandle path for its holding
 * time, and departure tears the connection down through the normal
 * close path.  Acceptance ratio, measured setup-latency percentiles
 * and the QoS-violation rate fall out as the figures of merit.
 *
 * Scale discipline — millions of cumulative sessions in one process:
 *
 *  - per-session state is one pooled Session record (<= 64 bytes,
 *    enforced by static_assert), recycled through an intrusive free
 *    list the moment the session's connection is fully gone;
 *  - all bookkeeping lists (pending setups, active scan, departure
 *    timing wheel, reaper) are intrusive u32 chains through the pool —
 *    the engine performs no steady-state heap allocation;
 *  - completed sessions release their MetricsRecorder entry
 *    (releaseConnection folds the stats into retired aggregates), and
 *    setup outcomes are consumed destructively (takeTimedResult), so
 *    neither side table grows with cumulative session count.
 *
 * Bookkeeping is audited by the named invariant
 * "workload.session-ledger", a conservation law over the whole
 * population:
 *
 *     arrived  == pending + admitted + rejected
 *     admitted == active  + completed + abandoned
 *     pool-in-use == pending + active + zombie + reaping
 *
 * where "abandoned" counts sessions whose connection a link fault
 * tore down mid-hold (the fault x churn composition), and "zombie" /
 * "reaping" are the in-between teardown states.
 *
 * Determinism: every random draw lives in the SessionGenerator's
 * seed-derived sub-RNGs, and the engine runs coordinator-serial
 * between network ticks (like the host interfaces), so churn results
 * are digest-identical serial vs --shards=N.
 */

#ifndef MMR_WORKLOAD_CHURN_HH
#define MMR_WORKLOAD_CHURN_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "network/network.hh"
#include "obs/histogram.hh"
#include "sim/invariant.hh"
#include "workload/generator.hh"

namespace mmr
{

/** Engine half of the churn configuration (the generator half lives
 * in SessionWorkloadSpec). */
struct ChurnConfig
{
    bool enabled = false;

    SessionWorkloadSpec workload;

    /** Hard cap on concurrently live sessions (pending + active +
     * draining); arrivals beyond it are refused locally and counted
     * rejectedBusy.  Bounds pool memory at maxLiveSessions x 64 B. */
    std::uint32_t maxLiveSessions = 4096;

    /** Probe setup timeout armed if none is configured yet (0 keeps
     * whatever the network/recovery layer already set). */
    Cycle setupTimeoutCycles = 512;
};

/** Conservation counters of the session population (see file header
 * for the invariant the checker enforces over them). */
struct SessionLedger
{
    std::uint64_t arrived = 0;   ///< generator arrivals offered
    std::uint64_t admitted = 0;  ///< setups accepted by the network
    std::uint64_t rejected = 0;  ///< refused (admission, timeout, busy)
    std::uint64_t rejectedBusy = 0; ///< subset of rejected: pool full
    std::uint64_t completed = 0; ///< held to term, closed cleanly
    std::uint64_t abandoned = 0; ///< torn down mid-hold by a fault

    /** Sessions decided by the network's admission control. */
    std::uint64_t decided() const { return admitted + rejected; }

    /** Fraction of decided sessions that were admitted. */
    double
    acceptanceRatio() const
    {
        return decided() ? static_cast<double>(admitted) /
                               static_cast<double>(decided())
                         : 0.0;
    }
};

/**
 * Drives session setup/teardown and per-session flit injection over
 * a Network.  Not Clocked: the harness ticks it between host ticks
 * and the network step, exactly like the NetworkInterface hosts, so
 * all its network calls run coordinator-serial.
 */
class ChurnEngine
{
  public:
    /** Null link of the intrusive session chains. */
    static constexpr std::uint32_t kNil = 0xffffffffu;

    /** Departure timing-wheel size (power of two; longer holds ride
     * the wheel for multiple revolutions). */
    static constexpr std::uint32_t kWheelSlots = 4096;

    /**
     * @param horizon cycles of arrival schedule to compile (warmup +
     *                measurement; arrivals stop at beginDrain anyway)
     * @param seed    root seed; every draw stream derives from it
     */
    ChurnEngine(Network &net, const ChurnConfig &cfg, Cycle horizon,
                std::uint64_t seed);

    /** One engine step: reap finished teardowns, poll pending setups,
     * admit this cycle's arrivals, pop due departures, inject flits
     * for every active session.  Call once per cycle, before the
     * network's step. */
    void tick(Cycle now);

    /** Enter the drain phase: shut off arrivals, close every active
     * session now; pending setups resolve (or time out) under
     * continued tick()s. */
    void beginDrain(Cycle now);

    /** Register the "workload.session-ledger" invariant. */
    void registerInvariants(InvariantChecker &chk, unsigned period = 64);

    /** Run the ledger audit directly (tests). */
    void auditLedger(Cycle now) const;

    const SessionLedger &ledger() const { return led; }

    /** Measured probe+ack setup latency of admitted sessions. */
    const LatencyHistogram &setupLatency() const { return setupHist; }

    const SessionGenerator &generator() const { return gen; }

    /** Sessions currently occupying pool slots. */
    std::uint32_t liveSessions() const { return used; }
    std::uint32_t peakLiveSessions() const { return peak; }

    /** True once every session fully unwound (drain complete). */
    bool drained() const { return used == 0; }

    /** Resident pool bytes backing session state. */
    std::uint64_t
    poolBytes() const
    {
        return slots.capacity() * sizeof(Session);
    }

    /** Per-live-session record size (the <= 64 B contract). */
    static constexpr std::uint32_t liveSessionBytes();

    std::uint64_t flitsInjected() const { return statInjected; }
    std::uint64_t flitsDroppedBackpressure() const { return statDropped; }

  private:
    /** One pooled session record.  `next` threads whichever intrusive
     * chain the state implies (pending list, wheel slot, reaper);
     * `activeNext` threads the injection-scan list, used only while
     * Active.  While Pending, departAt temporarily holds the drawn
     * holding time (rebased to an absolute cycle at admission). */
    struct Session
    {
        std::uint64_t token = 0; ///< timed-setup token (Pending)
        Cycle departAt = 0;
        ConnId conn = kInvalidConn;
        std::uint32_t next = kNil;
        std::uint32_t activeNext = kNil;
        NodeId src = 0;
        NodeId dst = 0;
        float rateFlitsPerCycle = 0.0f;
        float credit = 0.0f;       ///< fractional-rate accumulator
        std::uint32_t seq = 0;
        std::uint8_t state = 0;    ///< State enum
        bool vbr = false;
    };
    static_assert(sizeof(Session) <= 64,
                  "session records must stay within the 64-byte "
                  "per-live-session budget");

    enum State : std::uint8_t
    {
        Free = 0,
        Pending, ///< timed setup in flight
        Active,  ///< admitted; injecting until departAt
        Zombie,  ///< fault killed the connection; waits out the wheel
        Reaping  ///< closed; waiting for the network to finish teardown
    };

    std::uint32_t acquireSlot();
    void freeSlot(std::uint32_t idx);
    void wheelInsert(std::uint32_t idx);

    void reap(Cycle now);
    void pollSetups(Cycle now);
    void admitArrivals(Cycle now);
    void departures(Cycle now);
    void injectActive(Cycle now);

    /** Close (or abandon) one admitted session and queue it for the
     * reaper. */
    void retire(std::uint32_t idx, bool completedHold);

    Network &net;
    ChurnConfig cfg;
    SessionGenerator gen;
    double linkRateBps;
    bool draining = false;

    std::vector<Session> slots;
    std::uint32_t freeHead = kNil;
    std::uint32_t pendHead = kNil;   ///< Pending chain (via next)
    std::uint32_t activeHead = kNil; ///< Active chain (via activeNext)
    std::uint32_t reapHead = kNil;   ///< Reaping chain (via next)
    std::vector<std::uint32_t> wheel; ///< kWheelSlots chain heads

    SessionLedger led;
    LatencyHistogram setupHist;
    std::uint32_t used = 0;
    std::uint32_t peak = 0;
    std::uint64_t statInjected = 0;
    std::uint64_t statDropped = 0;
};

constexpr std::uint32_t
ChurnEngine::liveSessionBytes()
{
    return static_cast<std::uint32_t>(sizeof(Session));
}

} // namespace mmr

#endif // MMR_WORKLOAD_CHURN_HH
