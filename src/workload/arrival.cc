#include "workload/arrival.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mmr
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Flash-crowd multiplier at cycle @p t. */
double
flashFactor(const FlashCrowd &f, double t)
{
    if (f.rampCycles == 0 || f.peakFactor <= 1.0)
        return 1.0;
    const double up0 = static_cast<double>(f.at);
    const double up1 = up0 + static_cast<double>(f.rampCycles);
    const double dn0 = up1 + static_cast<double>(f.holdCycles);
    const double dn1 = dn0 + static_cast<double>(f.rampCycles);
    if (t <= up0 || t >= dn1)
        return 1.0;
    const double gain = f.peakFactor - 1.0;
    if (t < up1)
        return 1.0 + gain * (t - up0) / (up1 - up0);
    if (t < dn0)
        return f.peakFactor;
    return 1.0 + gain * (dn1 - t) / (dn1 - dn0);
}

double
diurnalFactor(const DiurnalCurve &d, double t)
{
    if (d.period == 0 || d.amplitude == 0.0)
        return 1.0;
    return 1.0 + d.amplitude *
                     std::sin(2.0 * kPi * t /
                              static_cast<double>(d.period));
}

} // namespace

ArrivalSchedule::ArrivalSchedule(double base_per_cycle,
                                 const FlashCrowd &flash,
                                 const DiurnalCurve &diurnal,
                                 Cycle horizon, std::uint64_t seed,
                                 unsigned steps)
    : rng(seed)
{
    mmr_assert(base_per_cycle >= 0.0, "negative arrival rate");
    mmr_assert(diurnal.amplitude >= 0.0 && diurnal.amplitude < 1.0,
               "diurnal amplitude must be in [0, 1)");
    if (steps == 0)
        steps = 1;
    if (horizon == 0)
        horizon = 1;

    // Breakpoints: every feature contributes its step boundaries; the
    // compiled schedule is the sorted union, one constant-rate segment
    // between consecutive points.
    std::vector<Cycle> marks{0};
    if (flash.rampCycles > 0 && flash.peakFactor > 1.0) {
        const Cycle step =
            std::max<Cycle>(1, flash.rampCycles / steps);
        for (Cycle t = flash.at;
             t <= flash.at + flash.rampCycles && t < horizon;
             t += step)
            marks.push_back(t);
        const Cycle dn0 = flash.at + flash.rampCycles + flash.holdCycles;
        for (Cycle t = dn0;
             t <= dn0 + flash.rampCycles && t < horizon; t += step)
            marks.push_back(t);
    }
    if (diurnal.period > 0 && diurnal.amplitude > 0.0) {
        const Cycle step = std::max<Cycle>(1, diurnal.period / steps);
        for (Cycle t = 0; t < horizon; t += step)
            marks.push_back(t);
    }
    std::sort(marks.begin(), marks.end());
    marks.erase(std::unique(marks.begin(), marks.end()), marks.end());

    starts.reserve(marks.size());
    rates.reserve(marks.size());
    for (const Cycle t : marks) {
        // Sample each factor at the segment midpoint-free left edge:
        // the left-edge value is held constant over the segment, so
        // tests can reconstruct λ(t) exactly from the compiled table.
        const auto td = static_cast<double>(t);
        starts.push_back(t);
        rates.push_back(base_per_cycle * flashFactor(flash, td) *
                        diurnalFactor(diurnal, td));
    }
    drawNext();
}

std::size_t
ArrivalSchedule::segmentOf(double t) const
{
    // Segments are few (tens); upper_bound keeps this O(log n).
    const auto c = t < 0.0 ? 0 : static_cast<Cycle>(t);
    const auto it =
        std::upper_bound(starts.begin(), starts.end(), c);
    return static_cast<std::size_t>(it - starts.begin()) - 1;
}

double
ArrivalSchedule::rateAt(Cycle t) const
{
    return rates[segmentOf(static_cast<double>(t))];
}

void
ArrivalSchedule::drawNext()
{
    // Exact inversion for a piecewise-constant intensity: draw a
    // unit-exponential work amount w and walk segments forward,
    // spending rate x duration of each until w is exhausted.  A
    // zero-rate segment absorbs no work, so arrivals simply skip it.
    double w = rng.exponential(1.0);
    double t = nextAt;
    std::size_t seg = segmentOf(t);
    for (;;) {
        const double rate = rates[seg];
        const bool last = seg + 1 == starts.size();
        const double segEnd =
            last ? std::numeric_limits<double>::infinity()
                 : static_cast<double>(starts[seg + 1]);
        if (rate > 0.0) {
            const double span = (segEnd - t) * rate;
            if (span >= w) {
                nextAt = t + w / rate;
                return;
            }
            w -= span;
        } else if (last) {
            // Rate is zero forever: no further arrivals.
            nextAt = std::numeric_limits<double>::infinity();
            return;
        }
        t = segEnd;
        ++seg;
    }
}

unsigned
ArrivalSchedule::take(Cycle now)
{
    if (off)
        return 0;
    unsigned n = 0;
    const double end = static_cast<double>(now) + 1.0;
    while (nextAt < end) {
        ++n;
        ++count;
        drawNext();
    }
    return n;
}

} // namespace mmr
