#include "workload/generator.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "base/logging.hh"
#include "traffic/rates.hh"

namespace mmr
{

namespace
{

/** Split "k=v,k=v" into pairs; panics on entries without '='. */
std::vector<std::pair<std::string, std::string>>
splitKeyValues(const std::string &spec, const char *what)
{
    std::vector<std::pair<std::string, std::string>> out;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string item = spec.substr(pos, comma - pos);
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            mmr_fatal("bad ", what, " entry '", item, "' in '", spec,
                      "' (expected key=value)");
        out.emplace_back(item.substr(0, eq), item.substr(eq + 1));
        pos = comma + 1;
    }
    return out;
}

double
parseNumber(const std::string &s, const char *what)
{
    char *end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str())
        mmr_fatal("bad number '", s, "' in ", what, " spec");
    return v;
}

} // namespace

double
parseRateBps(const std::string &token)
{
    mmr_assert(!token.empty(), "empty rate token");
    char *end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || v <= 0.0)
        mmr_fatal("bad rate '", token, "'");
    double scale = 1.0;
    if (*end != '\0') {
        switch (*end) {
          case 'k':
          case 'K':
            scale = kKbps;
            break;
          case 'm':
          case 'M':
            scale = kMbps;
            break;
          case 'g':
          case 'G':
            scale = kGbps;
            break;
          default:
            mmr_fatal("bad rate suffix in '", token,
                      "' (use k/m/g or plain bits/s)");
        }
        if (*(end + 1) != '\0')
            mmr_fatal("trailing junk in rate '", token, "'");
    }
    return v * scale;
}

const std::vector<MixEntry> &
defaultSessionMix()
{
    // Media-weighted subset of the §5 rate ladder: voice (64/128 Kb/s)
    // dominates session counts, T1 and compressed video fill the
    // middle, a thin tail of 20 Mb/s streams stresses admission.
    static const std::vector<MixEntry> kMix = {
        {64 * kKbps, 4.0, false},  {128 * kKbps, 3.0, false},
        {1.54 * kMbps, 2.0, false}, {2 * kMbps, 2.0, false},
        {5 * kMbps, 1.5, false},   {10 * kMbps, 1.0, false},
        {20 * kMbps, 0.5, false},
    };
    return kMix;
}

std::vector<MixEntry>
parseSessionMix(const std::string &spec)
{
    std::vector<MixEntry> mix;
    for (auto &[key, value] : splitKeyValues(spec, "mix")) {
        MixEntry e;
        std::string rate = key;
        if (rate.rfind("vbr:", 0) == 0) {
            e.vbr = true;
            rate = rate.substr(4);
        }
        e.rateBps = parseRateBps(rate);
        e.weight = parseNumber(value, "mix weight");
        if (e.weight <= 0.0)
            mmr_fatal("mix weight for '", key, "' must be positive");
        mix.push_back(e);
    }
    if (mix.empty())
        mmr_fatal("empty mix spec");
    return mix;
}

FlashCrowd
parseFlashCrowd(const std::string &spec)
{
    FlashCrowd f;
    for (auto &[key, value] : splitKeyValues(spec, "flash-crowd")) {
        if (key == "at")
            f.at = static_cast<Cycle>(parseNumber(value, key.c_str()));
        else if (key == "ramp")
            f.rampCycles =
                static_cast<Cycle>(parseNumber(value, key.c_str()));
        else if (key == "hold")
            f.holdCycles =
                static_cast<Cycle>(parseNumber(value, key.c_str()));
        else if (key == "peak")
            f.peakFactor = parseNumber(value, key.c_str());
        else
            mmr_fatal("unknown flash-crowd key '", key,
                      "' (at/ramp/hold/peak)");
    }
    return f;
}

DiurnalCurve
parseDiurnal(const std::string &spec)
{
    DiurnalCurve d;
    for (auto &[key, value] : splitKeyValues(spec, "diurnal")) {
        if (key == "period")
            d.period =
                static_cast<Cycle>(parseNumber(value, key.c_str()));
        else if (key == "amp")
            d.amplitude = parseNumber(value, key.c_str());
        else
            mmr_fatal("unknown diurnal key '", key, "' (period/amp)");
    }
    return d;
}

SessionGenerator::SessionGenerator(const SessionWorkloadSpec &spec,
                                   unsigned nodes, Cycle horizon,
                                   std::uint64_t seed)
    : classes(spec.mix.empty() ? defaultSessionMix() : spec.mix),
      meanHold(static_cast<double>(
          std::max<Cycle>(1, spec.holdingMeanCycles))),
      numNodes(nodes),
      // Sub-RNG seeds: one fixed tweak per draw stream, so streams
      // are independent and adding draws to one never shifts another.
      schedule(spec.arrivalsPer1k / 1000.0, spec.flash, spec.diurnal,
               horizon, seed ^ 0xa221e5c4ed01eULL),
      mixRng(seed ^ 0xc1a55e5a7e0adULL),
      holdRng(seed ^ 0x401d7191e5a1eULL),
      placeRng(seed ^ 0x91ace3e2d0175ULL)
{
    mmr_assert(nodes >= 2, "session workload needs >= 2 nodes");
    cumWeight.reserve(classes.size());
    for (const MixEntry &e : classes) {
        totalWeight += e.weight;
        cumWeight.push_back(totalWeight);
    }
}

SessionGenerator::Draw
SessionGenerator::draw()
{
    Draw d;
    const double pick = mixRng.uniform(0.0, totalWeight);
    const auto it =
        std::upper_bound(cumWeight.begin(), cumWeight.end(), pick);
    const auto cls = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - cumWeight.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     classes.size() - 1)));
    d.rateBps = classes[cls].rateBps;
    d.vbr = classes[cls].vbr;

    const double hold = holdRng.exponential(meanHold);
    d.holdCycles = std::max<Cycle>(1, static_cast<Cycle>(hold));

    d.src = static_cast<NodeId>(placeRng.below(numNodes));
    d.dst = static_cast<NodeId>(placeRng.below(numNodes - 1));
    if (d.dst >= d.src)
        ++d.dst;
    return d;
}

} // namespace mmr
