/**
 * @file
 * Session arrival process: non-homogeneous Poisson with a piecewise-
 * constant rate schedule.
 *
 * The MMR paper evaluates the router under steady sources; production
 * routers see *populations* — sessions arriving, holding and
 * departing.  The arrival side of that population model is a Poisson
 * process whose rate λ(t) is shaped by two standard load patterns:
 *
 *  - a flash crowd: λ ramps linearly to peakFactor x base over
 *    rampCycles, holds, and decays back (news event, mass call-in);
 *  - a diurnal curve: λ modulated by 1 + amplitude * sin(2πt/period)
 *    (day-night load swing).
 *
 * Both are compiled into one piecewise-constant schedule, and arrivals
 * are drawn by exact inversion: each unit-exponential "work" draw is
 * integrated through λ(t) segment by segment, so the process is
 * exact for the compiled schedule (no per-cycle thinning loop) and
 * deterministic in the seed alone — the draws live on their own
 * seed-derived sub-RNG, never shared with network or fault RNGs, so
 * churn runs digest-identically serial and sharded.
 */

#ifndef MMR_WORKLOAD_ARRIVAL_HH
#define MMR_WORKLOAD_ARRIVAL_HH

#include <cstdint>
#include <vector>

#include "base/rng.hh"
#include "base/types.hh"

namespace mmr
{

/** Flash-crowd overlay on the base arrival rate (inactive at ramp 0
 * or peakFactor <= 1). */
struct FlashCrowd
{
    Cycle at = 0;            ///< ramp start cycle
    Cycle rampCycles = 0;    ///< linear rise (and fall) duration
    Cycle holdCycles = 0;    ///< dwell at the peak
    double peakFactor = 1.0; ///< λ multiplier at the peak
};

/** Sinusoidal day-night modulation (inactive at period 0). */
struct DiurnalCurve
{
    Cycle period = 0;       ///< cycles per full day-night swing
    double amplitude = 0.0; ///< in [0, 1): λ x (1 + a sin(2πt/T))
};

class ArrivalSchedule
{
  public:
    /**
     * Compile λ(t) = base x flash(t) x diurnal(t) into a piecewise-
     * constant schedule over [0, horizon); the last segment's rate
     * persists beyond the horizon.  The flash ramp and the diurnal
     * sine are stepped at @p steps points per feature (ramp / period)
     * — piecewise-constant approximation, exact sampling within it.
     *
     * @param base_per_cycle base arrival rate in sessions per cycle
     */
    ArrivalSchedule(double base_per_cycle, const FlashCrowd &flash,
                    const DiurnalCurve &diurnal, Cycle horizon,
                    std::uint64_t seed, unsigned steps = 16);

    /** Arrivals due during cycle @p now (i.e. in [now, now+1)).
     * Cycles must be consumed in nondecreasing order. */
    unsigned take(Cycle now);

    /** Stop producing arrivals (drain phase). */
    void shutOff() { off = true; }

    /** Compiled rate at cycle @p t (sessions/cycle) — for tests and
     * schedule dumps. */
    double rateAt(Cycle t) const;

    /** Total arrivals drawn so far. */
    std::uint64_t drawn() const { return count; }

    /** Compiled segment boundaries (testing / introspection). */
    const std::vector<Cycle> &segmentStarts() const { return starts; }

  private:
    /** Advance nextAt past the current arrival: integrate λ forward
     * until the next unit-exponential work amount is exhausted. */
    void drawNext();

    /** Index of the segment containing time @p t. */
    std::size_t segmentOf(double t) const;

    std::vector<Cycle> starts; ///< segment start cycles (starts[0]==0)
    std::vector<double> rates; ///< sessions/cycle per segment
    Rng rng;
    double nextAt = 0.0; ///< arrival time being offered (cycles)
    bool off = false;
    std::uint64_t count = 0;
};

} // namespace mmr

#endif // MMR_WORKLOAD_ARRIVAL_HH
