#include "router/config.hh"

#include "base/logging.hh"

namespace mmr
{

std::string
to_string(SchedulerKind k)
{
    switch (k) {
      case SchedulerKind::BiasedPriority:
        return "biased";
      case SchedulerKind::FixedPriority:
        return "fixed";
      case SchedulerKind::AgePriority:
        return "age";
      case SchedulerKind::OutputDriven:
        return "output-driven";
      case SchedulerKind::Autonet:
        return "autonet";
      case SchedulerKind::Islip:
        return "islip";
      case SchedulerKind::Perfect:
        return "perfect";
    }
    return "?";
}

SchedulerKind
schedulerKindFromString(const std::string &s)
{
    if (s == "biased")
        return SchedulerKind::BiasedPriority;
    if (s == "fixed")
        return SchedulerKind::FixedPriority;
    if (s == "age")
        return SchedulerKind::AgePriority;
    if (s == "output-driven" || s == "output")
        return SchedulerKind::OutputDriven;
    if (s == "autonet" || s == "dec" || s == "pim")
        return SchedulerKind::Autonet;
    if (s == "islip")
        return SchedulerKind::Islip;
    if (s == "perfect")
        return SchedulerKind::Perfect;
    mmr_fatal("unknown scheduler kind '", s,
              "' (want biased|fixed|age|output-driven|autonet|islip|"
              "perfect)");
}

std::string
to_string(CrossbarOrg o)
{
    switch (o) {
      case CrossbarOrg::Multiplexed:
        return "multiplexed";
      case CrossbarOrg::PartiallyDemuxed:
        return "partially-demuxed";
      case CrossbarOrg::FullyDemuxed:
        return "fully-demuxed";
    }
    return "?";
}

void
RouterConfig::validate() const
{
    if (numPorts == 0 || numPorts > 1024)
        mmr_fatal("numPorts must be in [1, 1024], got ", numPorts);
    if (vcsPerPort == 0)
        mmr_fatal("vcsPerPort must be positive");
    if (linkRateBps <= 0.0)
        mmr_fatal("linkRateBps must be positive");
    if (flitBits == 0 || flitBits % 8 != 0)
        mmr_fatal("flitBits must be a positive multiple of 8");
    if (phitBits == 0 || flitBits % phitBits != 0)
        mmr_fatal("flitBits must be a multiple of phitBits");
    if (vcBufferFlits == 0)
        mmr_fatal("vcBufferFlits must be positive");
    if (roundFactorK < 1)
        mmr_fatal("roundFactorK must be >= 1 (paper: K > 1 preferred)");
    if (candidates < 1 || candidates > vcsPerPort)
        mmr_fatal("candidates must be in [1, vcsPerPort]");
    if (concurrencyFactor < 1.0)
        mmr_fatal("concurrencyFactor must be >= 1");
    if (bestEffortReserve < 0.0 || bestEffortReserve >= 1.0)
        mmr_fatal("bestEffortReserve must be in [0, 1)");
    if (memBanks == 0)
        mmr_fatal("memBanks must be positive");
}

} // namespace mmr
