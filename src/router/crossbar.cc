#include "router/crossbar.hh"

#include <cmath>

#include "base/logging.hh"

namespace mmr
{

std::uint64_t
CrossbarModel::crosspoints() const
{
    const std::uint64_t p = numPorts;
    const std::uint64_t v = vcsPerPort;
    switch (org) {
      case CrossbarOrg::Multiplexed:
        return p * p;
      case CrossbarOrg::PartiallyDemuxed:
        return p * v * p;
      case CrossbarOrg::FullyDemuxed:
        return p * v * p * v;
    }
    mmr_panic("unhandled crossbar organization");
}

double
CrossbarModel::areaUnits() const
{
    return static_cast<double>(crosspoints()) *
           static_cast<double>(datapathBits);
}

double
CrossbarModel::areaRatioVsMultiplexed() const
{
    CrossbarModel base = *this;
    base.org = CrossbarOrg::Multiplexed;
    return areaUnits() / base.areaUnits();
}

unsigned
CrossbarModel::arbiterFanIn() const
{
    switch (org) {
      case CrossbarOrg::Multiplexed:
        return numPorts;
      case CrossbarOrg::PartiallyDemuxed:
      case CrossbarOrg::FullyDemuxed:
        return numPorts * vcsPerPort;
    }
    mmr_panic("unhandled crossbar organization");
}

unsigned
CrossbarModel::arbitrationDelayUnits() const
{
    const unsigned fanin = arbiterFanIn();
    if (fanin <= 1)
        return 1;
    return static_cast<unsigned>(
        std::ceil(std::log2(static_cast<double>(fanin))));
}

bool
CrossbarModel::meetsCycleTime(double gate_delay_ns,
                              double flit_cycle_ns) const
{
    return static_cast<double>(arbitrationDelayUnits()) * gate_delay_ns <=
           flit_cycle_ns;
}

void
ReconfigCounter::note(bool same)
{
    ++total;
    if (!same)
        ++changes;
}

double
ReconfigCounter::reconfigRate()
 const
{
    return total ? static_cast<double>(changes) /
                       static_cast<double>(total)
                 : 0.0;
}

} // namespace mmr
