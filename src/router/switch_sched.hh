/**
 * @file
 * Switch scheduling (§4.4, §5.1).
 *
 * Input-driven schemes: each link scheduler offers a candidate set,
 * and the switch scheduler resolves output-port conflicts to compute
 * the input/output matching applied in the next flit cycle.  Four
 * algorithms from the paper plus one extension:
 *
 *  - GreedyPriority: global arbitration by (service tier, priority),
 *    used with biased or fixed priorities — the MMR scheme and the
 *    fixed-priority baseline of §5.1;
 *  - Autonet: Anderson et al.'s random iterative matching (the DEC
 *    comparison point);
 *  - Islip: round-robin iterative matching (extension baseline,
 *    cf. ref [21] Mekkittikul & McKeown);
 *  - Perfect: N-times-speedup switch with no port conflicts, the
 *    delay/jitter lower bound of §5.1.
 *
 * The per-cycle entry point is scheduleInto(), which writes the
 * matching into a caller-owned vector so the router can reuse one
 * Matching across cycles; every implementation likewise keeps its
 * working arrays as members, so a steady-state schedule computes no
 * heap allocation at all.  schedule() remains as a convenience
 * wrapper returning the matching by value.
 */

#ifndef MMR_ROUTER_SWITCH_SCHED_HH
#define MMR_ROUTER_SWITCH_SCHED_HH

#include <memory>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "router/config.hh"
#include "router/link_sched.hh"

namespace mmr
{

/** The computed input/output assignment for one flit cycle. */
using Matching = std::vector<Candidate>;

/**
 * Port-busy masks: ports consumed outside the synchronous matching
 * (asynchronous VCT cut-throughs of control packets, §3.4).
 */
struct PortMasks
{
    BitVector busyIn;
    BitVector busyOut;

    explicit PortMasks(unsigned num_ports)
        : busyIn(num_ports), busyOut(num_ports)
    {
    }
};

class SwitchScheduler
{
  public:
    virtual ~SwitchScheduler() = default;

    /**
     * Compute the matching for the next flit cycle into @p out
     * (cleared first).  The caller owns @p out and is expected to
     * reuse it across cycles so its capacity persists.
     *
     * @param per_input candidate sets, indexed by input port
     * @param masks ports already claimed this cycle
     * @param rng arbitration randomness
     * @param out receives the matching
     */
    MMR_HOT_PATH virtual void scheduleInto(
        const std::vector<std::vector<Candidate>> &per_input,
        const PortMasks &masks, Rng &rng, Matching &out) = 0;

    /** Convenience wrapper returning the matching by value. */
    Matching
    schedule(const std::vector<std::vector<Candidate>> &per_input,
             const PortMasks &masks, Rng &rng)
    {
        Matching m;
        scheduleInto(per_input, masks, rng, m);
        return m;
    }

    /** Whether output ports may be granted to several inputs. */
    virtual bool allowsOutputSharing() const { return false; }

    virtual std::string name() const = 0;

    /**
     * Check matching legality: at most one grant per input, and at
     * most one per output unless sharing is allowed.
     */
    static bool validate(const Matching &m, unsigned num_ports,
                         bool allow_output_sharing);

    /**
     * Panic variant of validate(): reports the offending grant through
     * the 'matching-validity' invariant.  Used by the runtime invariant
     * auditor on the matching applied each flit cycle.
     */
    static void auditMatching(const Matching &m, unsigned num_ports,
                              bool allow_output_sharing);

    /** Instantiate the scheduler selected by the configuration. */
    static std::unique_ptr<SwitchScheduler> create(
        const RouterConfig &cfg);
};

/** Global (tier, priority) arbitration: MMR biased/fixed schemes. */
class GreedyPriorityScheduler : public SwitchScheduler
{
  public:
    explicit GreedyPriorityScheduler(unsigned num_ports);

    void scheduleInto(const std::vector<std::vector<Candidate>> &per_input,
                      const PortMasks &masks, Rng &rng,
                      Matching &out) override;
    std::string name() const override { return "greedy-priority"; }

  private:
    /**
     * Fast path for router-shaped inputs: every per-input list is
     * already sorted by (tier, prio, tie) — the link scheduler emits
     * exactly this order — so the global sort collapses to walking
     * per-input tier runs and ordering at most one head candidate per
     * input.  Results are identical to the flat sort (same augmenting
     * order, same grants); only the work to derive the order shrinks.
     */
    void scheduleMerge(
        const std::vector<std::vector<Candidate>> &per_input,
        Matching &out);

    /** General path: arbitrary candidate lists (tests, adapters). */
    void scheduleFlat(
        const std::vector<std::vector<Candidate>> &per_input,
        Matching &out);

    unsigned numPorts;

    // Per-cycle scratch, reused so steady state allocates nothing.
    // flat holds pointers into the caller's candidate lists: sorting
    // 8-byte pointers moves far less data per cycle than sorting the
    // 40-byte Candidate values themselves.
    std::vector<const Candidate *> flat;
    std::vector<std::vector<const Candidate *>> req; ///< per input
    std::vector<unsigned> holder;
    std::vector<const Candidate *> choice;
    std::vector<bool> tried;
    std::vector<bool> visited;
    std::vector<bool> inTaken;
    std::vector<bool> outTaken;

    // Merge-path scratch: per-input cursors and the bounds of the
    // current tier's run inside each (pre-sorted) candidate list.
    std::vector<std::uint32_t> segPos;
    std::vector<std::uint32_t> segBegin;
    std::vector<std::uint32_t> segEnd;
    std::vector<unsigned> attemptOrder;
};

/**
 * Output-driven arbitration (§4.4): "output-driven schemes consider
 * the set of input virtual channels requesting a given output link" —
 * each output grants its best requester, each input accepts its best
 * grant, iterated.  The paper argues this is superior for fully
 * de-multiplexed switches but unclear for multiplexed ones; the
 * input_vs_output_driven bench quantifies the comparison.
 */
class OutputDrivenScheduler : public SwitchScheduler
{
  public:
    OutputDrivenScheduler(unsigned num_ports, unsigned iterations);

    void scheduleInto(const std::vector<std::vector<Candidate>> &per_input,
                      const PortMasks &masks, Rng &rng,
                      Matching &out) override;
    std::string name() const override { return "output-driven"; }

  private:
    unsigned numPorts;
    unsigned iters;

    std::vector<const Candidate *> grant;  ///< scratch, per output
    std::vector<const Candidate *> accept; ///< scratch, per input
    std::vector<bool> inUsed;
    std::vector<bool> outUsed;
};

/** Random request/grant/accept iterative matching (Autonet / PIM). */
class AutonetScheduler : public SwitchScheduler
{
  public:
    AutonetScheduler(unsigned num_ports, unsigned iterations);

    void scheduleInto(const std::vector<std::vector<Candidate>> &per_input,
                      const PortMasks &masks, Rng &rng,
                      Matching &out) override;
    std::string name() const override { return "autonet"; }

  private:
    unsigned numPorts;
    unsigned iters;

    std::vector<std::vector<const Candidate *>> requests; ///< per out
    std::vector<const Candidate *> grants;
    std::vector<std::vector<const Candidate *>> offers; ///< per input
    std::vector<bool> inUsed;
    std::vector<bool> outUsed;
};

/** Round-robin iterative matching (iSLIP-style extension baseline). */
class IslipScheduler : public SwitchScheduler
{
  public:
    IslipScheduler(unsigned num_ports, unsigned iterations);

    void scheduleInto(const std::vector<std::vector<Candidate>> &per_input,
                      const PortMasks &masks, Rng &rng,
                      Matching &out) override;
    std::string name() const override { return "islip"; }

  private:
    unsigned numPorts;
    unsigned iters;
    std::vector<unsigned> grantPtr;  ///< per output, over inputs
    std::vector<unsigned> acceptPtr; ///< per input, over outputs

    std::vector<const Candidate *> req; ///< out×in matrix, flattened
    std::vector<const Candidate *> grant;
    std::vector<bool> inUsed;
    std::vector<bool> outUsed;
};

/** N-times speedup switch: every input's best candidate is granted. */
class PerfectSwitchScheduler : public SwitchScheduler
{
  public:
    explicit PerfectSwitchScheduler(unsigned num_ports);

    void scheduleInto(const std::vector<std::vector<Candidate>> &per_input,
                      const PortMasks &masks, Rng &rng,
                      Matching &out) override;
    bool allowsOutputSharing() const override { return true; }
    std::string name() const override { return "perfect"; }

  private:
    unsigned numPorts;
};

} // namespace mmr

#endif // MMR_ROUTER_SWITCH_SCHED_HH
