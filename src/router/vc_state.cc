#include "router/vc_state.hh"

#include "base/logging.hh"

namespace mmr
{

void
VcState::release()
{
    mmr_assert(fifo.empty(), "releasing VC with ", fifo.size(),
               " buffered flits");
    mmr_assert(grantsPending == 0, "releasing VC with pending grants");
    connId = kInvalidConn;
    klass = TrafficClass::BestEffort;
    outputPort = kInvalidPort;
    outputVc = kInvalidVc;
    cbrAlloc = vbrPerm = vbrPeak = 0;
    interArrivalCycles_ = 0.0;
    priority = 0;
    servicedThisRound = 0;
    headEligibleAt = 0;
}

void
VcState::bindCbr(ConnId conn_, unsigned alloc_cycles,
                 double inter_arrival)
{
    mmr_assert(!bound(), "binding an already-bound VC");
    connId = conn_;
    klass = TrafficClass::CBR;
    cbrAlloc = alloc_cycles;
    interArrivalCycles_ = inter_arrival;
}

void
VcState::bindVbr(ConnId conn_, unsigned perm_cycles, unsigned peak_cycles,
                 double inter_arrival, int user_priority)
{
    mmr_assert(!bound(), "binding an already-bound VC");
    mmr_assert(peak_cycles >= perm_cycles,
               "VBR peak below permanent bandwidth");
    connId = conn_;
    klass = TrafficClass::VBR;
    vbrPerm = perm_cycles;
    vbrPeak = peak_cycles;
    interArrivalCycles_ = inter_arrival;
    priority = user_priority;
}

void
VcState::bindBestEffort(ConnId conn_)
{
    mmr_assert(!bound(), "binding an already-bound VC");
    connId = conn_;
    klass = TrafficClass::BestEffort;
}

void
VcState::bindControl(ConnId conn_)
{
    mmr_assert(!bound(), "binding an already-bound VC");
    connId = conn_;
    klass = TrafficClass::Control;
}

void
VcState::setMapping(PortId out_port, VcId out_vc)
{
    outputPort = out_port;
    outputVc = out_vc;
}

void
VcState::setVbrAlloc(unsigned perm, unsigned peak)
{
    mmr_assert(peak >= perm, "VBR peak below permanent bandwidth");
    vbrPerm = perm;
    vbrPeak = peak;
}

} // namespace mmr
