/**
 * @file
 * Per-virtual-channel state (§3.2, §4.3).
 *
 * "There is also some state information stored with each virtual
 * channel that is used for scheduling": the connection it belongs to,
 * its service class, the bandwidth allocated in flit cycles per round
 * (CBR), the permanent and peak bandwidth (VBR), the dynamic user
 * priority, and the per-round serviced counter the link scheduler uses
 * to enforce allocations.  The flit queue itself lives in the
 * VirtualChannelMemory; this class tracks the logical FIFO.
 */

#ifndef MMR_ROUTER_VC_STATE_HH
#define MMR_ROUTER_VC_STATE_HH

#include <deque>

#include "base/types.hh"
#include "router/flit.hh"

namespace mmr
{

class VcState
{
  public:
    /** Reset to the unbound (free) state. */
    void release();

    /** Bind this VC to a connection. */
    void bindCbr(ConnId conn, unsigned alloc_cycles,
                 double inter_arrival);
    void bindVbr(ConnId conn, unsigned perm_cycles, unsigned peak_cycles,
                 double inter_arrival, int user_priority);
    void bindBestEffort(ConnId conn);
    void bindControl(ConnId conn);

    bool bound() const { return connId != kInvalidConn; }
    ConnId conn() const { return connId; }
    TrafficClass trafficClass() const { return klass; }

    /** FIFO interface backed by the VC memory.  Push/pop/head on an
     * unbound VC, or pop/head on an empty one, panic: silently
     * buffering into (or reading from) a free channel would corrupt
     * the flit-conservation ledger. */
    void push(const Flit &f);
    Flit pop();
    const Flit &head() const;
    bool empty() const { return fifo.empty(); }
    std::size_t depth() const { return fifo.size(); }

    /** Output mapping set up by the routing and arbitration unit. */
    void setMapping(PortId out_port, VcId out_vc);
    PortId outPort() const { return outputPort; }
    VcId outVc() const { return outputVc; }
    bool mapped() const { return outputPort != kInvalidPort; }

    /** Round bookkeeping (§4.1). */
    unsigned serviced() const { return servicedThisRound; }
    void noteServiced() { ++servicedThisRound; }
    void newRound() { servicedThisRound = 0; }

    /** Grants issued but not yet applied (pipelined arbitration). */
    unsigned pendingGrants() const { return grantsPending; }
    void noteGrantIssued() { ++grantsPending; }
    void noteGrantApplied();

    /** Flits available beyond those already granted. */
    bool hasUngrantedFlit() const { return fifo.size() > grantsPending; }

    /** Head flit not yet covered by a pending grant. */
    const Flit &ungrantedHead() const;

    unsigned allocCycles() const { return cbrAlloc; }
    unsigned permCycles() const { return vbrPerm; }
    unsigned peakCycles() const { return vbrPeak; }
    double interArrival() const { return interArrivalCycles_; }
    int userPriority() const { return priority; }
    void setUserPriority(int p) { priority = p; }

    /** Dynamic bandwidth renegotiation (§4.3 control words). */
    void setCbrAlloc(unsigned cycles) { cbrAlloc = cycles; }
    void setVbrAlloc(unsigned perm, unsigned peak);
    void setInterArrival(double cycles) { interArrivalCycles_ = cycles; }

    /** Remaining quota this round given the service class (§4.3). */
    unsigned quotaThisRound() const;

    /**
     * Stable arbitration tie-break, drawn once when the VC is bound.
     * A per-cycle random tie would scramble the service order of
     * equal-priority channels every cycle and destroy the periodic
     * service pattern that keeps CBR jitter low; a persistent value
     * keeps arbitration fair across connections yet stable in time.
     */
    double tieBreak() const { return tie; }
    void setTieBreak(double t) { tie = t; }

  private:
    ConnId connId = kInvalidConn;
    TrafficClass klass = TrafficClass::BestEffort;
    std::deque<Flit> fifo;

    PortId outputPort = kInvalidPort;
    VcId outputVc = kInvalidVc;

    unsigned cbrAlloc = 0;   ///< CBR flit cycles/round
    unsigned vbrPerm = 0;    ///< VBR permanent cycles/round
    unsigned vbrPeak = 0;    ///< VBR peak cycles/round
    double interArrivalCycles_ = 0.0;
    int priority = 0;        ///< VBR user priority (dynamic)

    unsigned servicedThisRound = 0;
    unsigned grantsPending = 0;
    double tie = 0.0;
};

} // namespace mmr

#endif // MMR_ROUTER_VC_STATE_HH
