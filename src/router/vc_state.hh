/**
 * @file
 * Per-virtual-channel state (§3.2, §4.3).
 *
 * "There is also some state information stored with each virtual
 * channel that is used for scheduling": the connection it belongs to,
 * its service class, the bandwidth allocated in flit cycles per round
 * (CBR), the permanent and peak bandwidth (VBR), the dynamic user
 * priority, and the per-round serviced counter the link scheduler uses
 * to enforce allocations.  The flit queue itself lives in the
 * VirtualChannelMemory; this class tracks the logical FIFO.
 */

#ifndef MMR_ROUTER_VC_STATE_HH
#define MMR_ROUTER_VC_STATE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "router/flit.hh"

namespace mmr
{

/**
 * Fixed-layout flit FIFO: a power-of-two ring over a flat vector.
 * Unlike std::deque it never allocates once grown to its working
 * depth, so the per-cycle evaluate/advance path stays heap-free in
 * steady state (capacity persists across empty/non-empty transitions).
 */
class FlitFifo
{
  public:
    bool empty() const { return used == 0; }
    std::size_t size() const { return used; }

    void
    push_back(const Flit &f)
    {
        if (used == buf.size())
            grow();
        buf[(head + used) & (buf.size() - 1)] = f;
        ++used;
    }

    void
    pop_front()
    {
        head = (head + 1) & (buf.size() - 1);
        --used;
    }

    const Flit &front() const { return buf[head]; }

    /** @p i counted from the front (0 = head). */
    const Flit &
    operator[](std::size_t i) const
    {
        return buf[(head + i) & (buf.size() - 1)];
    }

  private:
    void
    grow()
    {
        const std::size_t cap = buf.empty() ? 4 : buf.size() * 2;
        std::vector<Flit> next(cap);
        for (std::size_t i = 0; i < used; ++i)
            next[i] = buf[(head + i) & (buf.size() - 1)];
        buf.swap(next);
        head = 0;
    }

    std::vector<Flit> buf; ///< size is always zero or a power of two
    std::size_t head = 0;
    std::size_t used = 0;
};

class VcState
{
  public:
    /**
     * Stage-latency stamps for one pipelined grant, filled at issue
     * time and consumed at apply time.  Deliberately NOT stored in
     * VcState: the router keeps the stamps of a matching in a small
     * vector parallel to the matching itself (issue order equals
     * apply order), so the per-cycle VC scans never drag stamp bytes
     * through the cache and VcState stays at its pre-decomposition
     * size.
     *
     * grantCycle holds the low 32 bits of the issue cycle; the apply
     * path recovers the traversal delay with wrap-around u32
     * subtraction, exact for any pipeline latency below 2^32 cycles.
     * The waits saturate at ~4G cycles, far beyond any simulated gap.
     */
    struct GrantStamp
    {
        std::uint32_t grantCycle = 0; ///< low bits of the issue cycle
        std::uint32_t vcWait = 0;     ///< arrival -> head of the VC
        std::uint32_t arbWait = 0;    ///< head of VC -> grant issued
    };

    /** Reset to the unbound (free) state. */
    void release();

    /** Bind this VC to a connection. */
    void bindCbr(ConnId conn, unsigned alloc_cycles,
                 double inter_arrival);
    void bindVbr(ConnId conn, unsigned perm_cycles, unsigned peak_cycles,
                 double inter_arrival, int user_priority);
    void bindBestEffort(ConnId conn);
    void bindControl(ConnId conn);

    bool bound() const { return connId != kInvalidConn; }
    ConnId conn() const { return connId; }
    TrafficClass trafficClass() const { return klass; }

    /** FIFO interface backed by the VC memory.  Push/pop/head on an
     * unbound VC, or pop/head on an empty one, panic: silently
     * buffering into (or reading from) a free channel would corrupt
     * the flit-conservation ledger. */
    void
    push(const Flit &f)
    {
        if (!bound())
            mmr_panic("push() on unbound VC (flit seq ", f.seq, ")");
        // A flit landing in a VC with no other ungranted flit becomes
        // arbitration-eligible immediately: start its head-wait clock.
        if (!hasUngrantedFlit())
            headEligibleAt = f.readyTime;
        fifo.push_back(f);
    }

    Flit
    pop()
    {
        if (!bound())
            mmr_panic("pop() from unbound VC");
        if (fifo.empty())
            mmr_panic("pop() from empty VC");
        Flit f = fifo.front();
        fifo.pop_front();
        return f;
    }

    const Flit &
    head() const
    {
        if (!bound())
            mmr_panic("head() of unbound VC");
        if (fifo.empty())
            mmr_panic("head() of empty VC");
        return fifo.front();
    }

    bool empty() const { return fifo.empty(); }
    std::size_t depth() const { return fifo.size(); }

    /** Output mapping set up by the routing and arbitration unit. */
    void setMapping(PortId out_port, VcId out_vc);
    PortId outPort() const { return outputPort; }
    VcId outVc() const { return outputVc; }
    bool mapped() const { return outputPort != kInvalidPort; }

    /** Round bookkeeping (§4.1). */
    unsigned serviced() const { return servicedThisRound; }
    void noteServiced() { ++servicedThisRound; }
    void newRound() { servicedThisRound = 0; }

    /** Grants issued but not yet applied (pipelined arbitration). */
    unsigned pendingGrants() const { return grantsPending; }

    /**
     * Record a switch grant for the current ungranted head.  Stamps
     * the head's stage waits (VC residency, arbitration wait) into
     * @p s so the apply path can attribute them to the flit it pops;
     * the next flit in line — if any — becomes the eligible head at
     * @p now.
     */
    void
    noteGrantIssued(Cycle now, GrantStamp &s)
    {
        s.grantCycle = static_cast<std::uint32_t>(now);
        s.arbWait = clampWait(now > headEligibleAt
                                  ? now - headEligibleAt
                                  : 0);
        s.vcWait = 0;
        if (hasUngrantedFlit()) {
            const Flit &h = fifo[grantsPending]; // flit being granted
            s.vcWait = clampWait(headEligibleAt > h.readyTime
                                     ? headEligibleAt - h.readyTime
                                     : 0);
        }
        ++grantsPending;
        if (hasUngrantedFlit())
            headEligibleAt = now;
    }

    /** Grant-accounting-only form for callers that do not keep the
     * stage decomposition (unit tests, bypass paths). */
    void
    noteGrantIssued(Cycle now = 0)
    {
        GrantStamp scratch;
        noteGrantIssued(now, scratch);
    }

    /** Consume the oldest pending grant (the one applied to the flit
     * just popped); its stamps live in the router's matching-parallel
     * stamp vector. */
    void
    noteGrantApplied()
    {
        mmr_assert(grantsPending > 0, "applying a grant never issued");
        --grantsPending;
    }

    /** Flits available beyond those already granted. */
    bool hasUngrantedFlit() const { return fifo.size() > grantsPending; }

    /** Head flit not yet covered by a pending grant. */
    const Flit &
    ungrantedHead() const
    {
        mmr_assert(hasUngrantedFlit(), "no ungranted flit in VC");
        return fifo[grantsPending];
    }

    unsigned allocCycles() const { return cbrAlloc; }
    unsigned permCycles() const { return vbrPerm; }
    unsigned peakCycles() const { return vbrPeak; }
    double interArrival() const { return interArrivalCycles_; }
    int userPriority() const { return priority; }
    void setUserPriority(int p) { priority = p; }

    /** Dynamic bandwidth renegotiation (§4.3 control words). */
    void setCbrAlloc(unsigned alloc_cycles) { cbrAlloc = alloc_cycles; }
    void setVbrAlloc(unsigned perm, unsigned peak);
    void setInterArrival(double cycles) { interArrivalCycles_ = cycles; }

    /** Remaining quota this round given the service class (§4.3). */
    unsigned
    quotaThisRound() const
    {
        switch (klass) {
          case TrafficClass::CBR:
            return cbrAlloc;
          case TrafficClass::VBR:
            return vbrPeak;
          case TrafficClass::BestEffort:
          case TrafficClass::Control:
            // No reservation: bounded only by the round itself.
            return ~0u;
        }
        return 0;
    }

    /**
     * Stable arbitration tie-break, drawn once when the VC is bound.
     * A per-cycle random tie would scramble the service order of
     * equal-priority channels every cycle and destroy the periodic
     * service pattern that keeps CBR jitter low; a persistent value
     * keeps arbitration fair across connections yet stable in time.
     */
    double tieBreak() const { return tie; }
    void setTieBreak(double t) { tie = t; }

  private:
    ConnId connId = kInvalidConn;
    TrafficClass klass = TrafficClass::BestEffort;
    FlitFifo fifo;

    PortId outputPort = kInvalidPort;
    VcId outputVc = kInvalidVc;

    unsigned cbrAlloc = 0;   ///< CBR flit cycles/round
    unsigned vbrPerm = 0;    ///< VBR permanent cycles/round
    unsigned vbrPeak = 0;    ///< VBR peak cycles/round
    double interArrivalCycles_ = 0.0;
    int priority = 0;        ///< VBR user priority (dynamic)

    unsigned servicedThisRound = 0;
    unsigned grantsPending = 0;
    double tie = 0.0;

    /** Saturate a cycle delta into a 32-bit stamp field. */
    static std::uint32_t
    clampWait(Cycle delta)
    {
        return delta > 0xffffffff
                   ? 0xffffffffu
                   : static_cast<std::uint32_t>(delta);
    }

    /** Cycle the current ungranted head became eligible (deposited
     * into an otherwise-drained VC, or promoted when the flit ahead
     * was granted). */
    Cycle headEligibleAt = 0;
};

} // namespace mmr

#endif // MMR_ROUTER_VC_STATE_HH
