/**
 * @file
 * The unit of flow control (§3.1, §3.4).
 *
 * PCS data streams are sequences of flits on an established
 * connection; control and best-effort messages are single-flit packets
 * (packet size equals flit size), so one struct covers both.  Probes
 * and acknowledgments for connection establishment are control flits
 * with a ControlOp payload.
 */

#ifndef MMR_ROUTER_FLIT_HH
#define MMR_ROUTER_FLIT_HH

#include <cstdint>

#include "base/types.hh"
#include "traffic/rates.hh"

namespace mmr
{

/** Operations carried by control words / control packets (§4.3). */
enum class ControlOp : std::uint8_t
{
    None,         ///< plain data or best-effort payload
    Probe,        ///< EPB routing probe (connection setup)
    ProbeBack,    ///< backtracking probe
    Ack,          ///< connection-established acknowledgment
    Nack,         ///< connection refused / torn down
    SetBandwidth, ///< dynamic bandwidth renegotiation
    SetPriority,  ///< dynamic priority change for a VBR connection
    AbortFrame,   ///< drop the rest of a late video frame
    Teardown      ///< release an established connection
};

struct Flit
{
    ConnId conn = kInvalidConn;
    TrafficClass klass = TrafficClass::CBR;
    ControlOp op = ControlOp::None;

    std::uint32_t seq = 0;    ///< per-connection sequence number

    Cycle createTime = 0;     ///< generation time at the source
    Cycle readyTime = 0;      ///< ready at the current switch input

    NodeId src = kInvalidNode; ///< network-level source node
    NodeId dst = kInvalidNode; ///< network-level destination node

    /** Payload for control operations (rate, priority, ...). */
    double arg = 0.0;

    std::uint16_t hops = 0;   ///< routers traversed so far
    bool downPhase = false;   ///< up*-down* state for adaptive VCT

    /** Payload damaged on the wire (fault injection); the receiving
     * router's CRC check discards such flits with accounting. */
    bool corrupted = false;

    bool isControl() const { return klass == TrafficClass::Control; }
    bool isStream() const
    {
        return klass == TrafficClass::CBR || klass == TrafficClass::VBR;
    }
};

} // namespace mmr

#endif // MMR_ROUTER_FLIT_HH
