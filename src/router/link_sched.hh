/**
 * @file
 * Per-input-link scheduler (§4.1, §4.3, Figure 1 "LS").
 *
 * Each physical input link has its own scheduler that, every flit
 * cycle, derives the set of virtual channels eligible to transmit
 * (status bit-vector algebra: flits_available AND credits_available
 * AND not over quota) and offers the switch scheduler a small set of
 * candidates (1-8).  Bandwidth is accounted per round (K x V flit
 * cycles): CBR connections may not exceed their allocation, VBR
 * connections get their permanent bandwidth at the guaranteed tier and
 * compete for excess up to their peak by user priority, best-effort
 * uses whatever is left.
 */

#ifndef MMR_ROUTER_LINK_SCHED_HH
#define MMR_ROUTER_LINK_SCHED_HH

#include <vector>

#include "base/bitvector.hh"
#include "base/rng.hh"
#include "base/types.hh"
#include "router/flow_control.hh"
#include "router/priority.hh"
#include "router/vc_memory.hh"

namespace mmr
{

/** One scheduling candidate offered to the switch scheduler. */
struct Candidate
{
    PortId in = kInvalidPort;
    VcId vc = kInvalidVc;
    PortId out = kInvalidPort;
    VcId outVc = kInvalidVc;
    ConnId conn = kInvalidConn;
    int tier = 0;       ///< ServiceTier as int, larger served first
    double prio = 0.0;  ///< priority within the tier
    double tie = 0.0;   ///< random tie-break drawn per cycle
};

class LinkScheduler
{
  public:
    /**
     * @param port input port this scheduler serves
     * @param memory the port's virtual channel memory
     * @param num_ports router port count (output-port id range)
     * @param policy head-flit priority policy
     * @param cycles_per_round round length (K x V)
     * @param random_candidates pick candidates uniformly among the
     *        eligible VCs instead of by priority (Autonet mode)
     */
    LinkScheduler(PortId port, VcMemory *memory, unsigned num_ports,
                  PriorityPolicy policy, unsigned cycles_per_round,
                  bool random_candidates);

    /**
     * Reset per-round serviced counters at round boundaries.  Rounds
     * are aligned across the router (synchronous link operation).
     * Returns true when at least one round boundary was crossed (the
     * serviced counters were reset, so every cached eligibility bit
     * is stale).
     */
    bool rollRoundIfNeeded(Cycle now);

    /**
     * Collect up to @p max_candidates eligible candidates at cycle
     * @p now, appending to @p out.
     *
     * @param credits downstream credit state (credits_available)
     * @param rng tie-break randomness
     */
    MMR_HOT_PATH void collectCandidates(Cycle now,
                                        unsigned max_candidates,
                                        const CreditManager &credits,
                                        Rng &rng,
                                        std::vector<Candidate> &out);

    /**
     * The eligibility mask as a bit vector — the §4.1 status-vector
     * AND, exposed for tests and the micro bench.
     */
    BitVector eligibleMask(Cycle now, const CreditManager &credits) const;

    PriorityPolicy policy() const { return prioPolicy; }
    void setPolicy(PriorityPolicy p) { prioPolicy = p; }

    /** Rounds completed so far. */
    std::uint64_t roundCount() const { return rounds; }

    /** Cache-refresh statistics (perf accounting, tests). */
    std::uint64_t maskFullRebuilds() const { return fullRebuilds; }
    std::uint64_t maskIncrementalRefreshes() const
    {
        return incrementalRefreshes;
    }

  private:
    bool eligible(const VcState &vc, const CreditManager &credits) const;

    /**
     * Bring the cached eligibility mask up to date (§4.1 status-vector
     * AND).  Full rebuild when forced (round roll), when any
     * credits_available bit may have moved (credit version advanced),
     * or when the memory flagged a wholesale change; otherwise only
     * the VCs in the memory's dirty set are re-evaluated.
     */
    void refreshEligMask(const CreditManager &credits, bool force);

    PortId inPort;
    VcMemory *mem;
    unsigned numOutPorts; ///< sizes the per-output dedup table
    PriorityPolicy prioPolicy;
    unsigned roundLen;
    bool randomCandidates;
    Cycle nextRoundStart;
    std::uint64_t rounds = 0;

    /** Cached eligibility mask + the versions it was computed from. */
    BitVector eligMask;
    std::uint64_t seenCreditVersion = 0;
    bool eligValid = false;
    std::uint64_t fullRebuilds = 0;
    std::uint64_t incrementalRefreshes = 0;

    /** Scratch space reused across cycles to avoid allocation. */
    std::vector<Candidate> scratch;
    std::vector<VcId> bestPerOutput;        ///< per-output dedup slots
    std::vector<std::size_t> touchedOutputs; ///< slots to reset
};

} // namespace mmr

#endif // MMR_ROUTER_LINK_SCHED_HH
