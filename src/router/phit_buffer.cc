#include "router/phit_buffer.hh"

#include "base/logging.hh"

namespace mmr
{

PhitBuffer::PhitBuffer(unsigned depth_phits, unsigned phits_per_flit)
    : depthPhits(depth_phits), phitsPerFlit(phits_per_flit)
{
    mmr_assert(phits_per_flit > 0, "phits per flit must be positive");
    mmr_assert(depth_phits >= phits_per_flit,
               "phit buffer smaller than one flit");
}

bool
PhitBuffer::push(const Flit &f)
{
    if (full())
        return false;
    fifo.push_back(f);
    return true;
}

Flit
PhitBuffer::pop()
{
    mmr_assert(!fifo.empty(), "pop() from empty phit buffer");
    Flit f = fifo.front();
    fifo.pop_front();
    return f;
}

const Flit &
PhitBuffer::head() const
{
    mmr_assert(!fifo.empty(), "head() of empty phit buffer");
    return fifo.front();
}

unsigned
PhitBuffer::requiredDepth(unsigned decode_cycles, unsigned phits_per_flit)
{
    // One flit's worth of phits arrives per flit cycle; the decode
    // pipeline is decode_cycles deep, plus the flit being decoded.
    return (decode_cycles + 1) * phits_per_flit;
}

} // namespace mmr
