#include "router/flow_control.hh"

#include <cmath>

#include "base/logging.hh"
#include "sim/invariant.hh"

namespace mmr
{

CreditManager::CreditManager(unsigned ports, unsigned vcs,
                             unsigned initial_credits)
    : numPorts(ports), numVcs(vcs), initial(initial_credits),
      counters(static_cast<std::size_t>(ports) * vcs, initial_credits)
{
    mmr_assert(ports > 0 && vcs > 0, "degenerate credit manager");
    mmr_assert(initial_credits > 0, "need at least one credit per VC");
}

void
CreditManager::reset(PortId port, VcId vc)
{
    unsigned &c = counters[index(port, vc)];
    statResetReclaimed += initial - c;
    c = initial;
    ++ver;
}

void
CreditManager::audit(const CensusFn &census) const
{
    if (infinite)
        return; // counters are frozen at the initial depth
    std::uint64_t outstanding = 0;
    for (PortId p = 0; p < numPorts; ++p) {
        for (VcId v = 0; v < numVcs; ++v) {
            const unsigned c = counters[index(p, v)];
            if (c > initial) {
                mmr_invariant_violated(
                    "credit-ledger", "(", p, ",", v, ") holds ", c,
                    " credits, above the downstream depth ", initial);
            }
            outstanding += initial - c;
            if (census) {
                const unsigned occ = census(p, v);
                if (c + occ != initial) {
                    mmr_invariant_violated(
                        "credit-ledger", "(", p, ",", v, "): ", c,
                        " credits + ", occ,
                        " downstream flits != depth ", initial);
                }
            }
        }
    }
    const std::uint64_t drained = statReplenished + statResetReclaimed;
    if (statConsumed < drained ||
        outstanding != statConsumed - drained) {
        mmr_invariant_violated(
            "credit-ledger", "outstanding census ", outstanding,
            " != consumed ", statConsumed, " - replenished ",
            statReplenished, " - reclaimed ", statResetReclaimed);
    }
}

void
CreditManager::registerInvariants(InvariantChecker &chk, CensusFn census,
                                  unsigned period,
                                  const std::string &prefix) const
{
    chk.add(prefix + "credit-ledger",
            [this, census = std::move(census)](Cycle) { audit(census); },
            period);
}

namespace
{
// arg is carried as signed 16.16 fixed point in the low 32 bits.
constexpr double kFixedScale = 65536.0;
} // namespace

std::uint64_t
ControlWord::encode() const
{
    const auto op_bits = static_cast<std::uint64_t>(op) & 0xff;
    const auto conn_bits = static_cast<std::uint64_t>(conn) & 0xffffff;
    const double clamped =
        std::min(32767.0, std::max(-32768.0, arg));
    const auto arg_fixed = static_cast<std::int32_t>(
        std::lround(clamped * kFixedScale));
    const auto arg_bits =
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(arg_fixed));
    return (op_bits << 56) | (conn_bits << 32) | arg_bits;
}

ControlWord
ControlWord::decode(std::uint64_t bits)
{
    ControlWord w;
    w.op = static_cast<ControlOp>((bits >> 56) & 0xff);
    w.conn = static_cast<ConnId>((bits >> 32) & 0xffffff);
    const auto arg_fixed =
        static_cast<std::int32_t>(static_cast<std::uint32_t>(bits));
    w.arg = static_cast<double>(arg_fixed) / kFixedScale;
    return w;
}

bool
ControlWord::operator==(const ControlWord &o) const
{
    return op == o.op && conn == o.conn &&
           std::fabs(arg - o.arg) < 1.0 / kFixedScale;
}

} // namespace mmr
