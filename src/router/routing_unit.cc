#include "router/routing_unit.hh"

#include "base/logging.hh"

namespace mmr
{

RoutingUnit::RoutingUnit(unsigned num_ports, unsigned vcs_per_port)
    : ports(num_ports), vcs(vcs_per_port),
      direct(static_cast<std::size_t>(num_ports) * vcs_per_port),
      reverse(static_cast<std::size_t>(num_ports) * vcs_per_port),
      histories(static_cast<std::size_t>(num_ports) * vcs_per_port,
                BitVector(num_ports))
{
    mmr_assert(ports > 0 && vcs > 0, "degenerate routing unit");
    inputFree.reserve(ports);
    outputFree.reserve(ports);
    for (unsigned p = 0; p < ports; ++p) {
        inputFree.emplace_back(vcs);
        outputFree.emplace_back(vcs);
        inputFree.back().setAll();
        outputFree.back().setAll();
    }
}

std::size_t
RoutingUnit::index(ChannelRef c) const
{
    mmr_assert(c.port < ports && c.vc < vcs, "channel (", c.port, ",",
               c.vc, ") out of range");
    return static_cast<std::size_t>(c.port) * vcs + c.vc;
}

VcId
RoutingUnit::allocInputVc(PortId port)
{
    mmr_assert(port < ports, "port out of range");
    const std::size_t v = inputFree[port].findFirst();
    if (v >= vcs)
        return kInvalidVc;
    inputFree[port].clear(v);
    return static_cast<VcId>(v);
}

VcId
RoutingUnit::allocOutputVc(PortId port)
{
    mmr_assert(port < ports, "port out of range");
    const std::size_t v = outputFree[port].findFirst();
    if (v >= vcs)
        return kInvalidVc;
    outputFree[port].clear(v);
    return static_cast<VcId>(v);
}

void
RoutingUnit::freeInputVc(PortId port, VcId vc)
{
    mmr_assert(port < ports && vc < vcs, "channel out of range");
    mmr_assert(!inputFree[port].test(vc), "double free of input VC");
    inputFree[port].set(vc);
}

void
RoutingUnit::freeOutputVc(PortId port, VcId vc)
{
    mmr_assert(port < ports && vc < vcs, "channel out of range");
    mmr_assert(!outputFree[port].test(vc), "double free of output VC");
    outputFree[port].set(vc);
}

unsigned
RoutingUnit::freeInputVcCount(PortId port) const
{
    mmr_assert(port < ports, "port out of range");
    return static_cast<unsigned>(inputFree[port].count());
}

unsigned
RoutingUnit::freeOutputVcCount(PortId port) const
{
    mmr_assert(port < ports, "port out of range");
    return static_cast<unsigned>(outputFree[port].count());
}

void
RoutingUnit::map(ChannelRef in, ChannelRef out)
{
    mmr_assert(!direct[index(in)].valid(), "input channel already mapped");
    mmr_assert(!reverse[index(out)].valid(),
               "output channel already mapped");
    direct[index(in)] = out;
    reverse[index(out)] = in;
}

void
RoutingUnit::unmap(ChannelRef in)
{
    const ChannelRef out = direct[index(in)];
    mmr_assert(out.valid(), "unmapping a channel with no mapping");
    direct[index(in)] = ChannelRef{};
    reverse[index(out)] = ChannelRef{};
}

ChannelRef
RoutingUnit::directMap(ChannelRef in) const
{
    return direct[index(in)];
}

ChannelRef
RoutingUnit::reverseMap(ChannelRef out) const
{
    return reverse[index(out)];
}

BitVector &
RoutingUnit::history(ChannelRef in)
{
    return histories[index(in)];
}

void
RoutingUnit::clearHistory(ChannelRef in)
{
    histories[index(in)].clearAll();
}

} // namespace mmr
