/**
 * @file
 * Router configuration: the quantitative design parameters of §2
 * (network size, link bandwidth, router degree, buffer size, number of
 * virtual channels) and the §4 scheduling knobs (K, candidate count,
 * arbitration scheme, concurrency factor).
 *
 * Defaults reproduce the §5 evaluation point: an 8x8 router with 256
 * virtual channels per input port, 1.24 Gb/s links and 128-bit flits.
 */

#ifndef MMR_ROUTER_CONFIG_HH
#define MMR_ROUTER_CONFIG_HH

#include <string>

#include "base/types.hh"

namespace mmr
{

/** Switch scheduling / arbitration scheme (§4.4, §5.1). */
enum class SchedulerKind
{
    BiasedPriority, ///< dynamic priority biasing (the MMR proposal)
    FixedPriority,  ///< static rate-derived priorities (baseline)
    AgePriority,    ///< raw waiting time — the classical aging scheme
    OutputDriven,   ///< output-driven biased arbitration (§4.4 debate)
    Autonet,        ///< Anderson et al. random iterative matching (DEC)
    Islip,          ///< round-robin iterative matching (extension)
    Perfect         ///< Nx-speedup switch: lower bound on delay/jitter
};

std::string to_string(SchedulerKind k);
SchedulerKind schedulerKindFromString(const std::string &s);

/** Crossbar organization (§3.3). */
enum class CrossbarOrg
{
    Multiplexed,          ///< P x P, the MMR choice
    PartiallyDemuxed,     ///< P*V x P
    FullyDemuxed          ///< P*V x P*V
};

std::string to_string(CrossbarOrg o);

struct RouterConfig
{
    unsigned numPorts = 8;        ///< router degree (NxN switch)
    unsigned vcsPerPort = 256;    ///< virtual channels per input link
    double linkRateBps = 1.24 * kGbps;
    unsigned flitBits = 128;
    unsigned phitBits = 16;       ///< link phit (serial LAN links)
    unsigned vcBufferFlits = 64;  ///< per-VC buffer depth in flits
    unsigned roundFactorK = 2;    ///< round = K * vcsPerPort cycles
    unsigned candidates = 4;      ///< candidates per input port (1..8)
    unsigned schedIterations = 3; ///< iterations for PIM/iSLIP
    SchedulerKind scheduler = SchedulerKind::BiasedPriority;
    CrossbarOrg crossbar = CrossbarOrg::Multiplexed;
    double concurrencyFactor = 2.0; ///< VBR peak admission factor
    double bestEffortReserve = 0.0; ///< round fraction kept for BE
    unsigned memBanks = 8;        ///< VC memory interleave factor
    std::uint64_t seed = 1;       ///< router-local RNG seed

    /** Flit cycles per scheduling round (§4.1). */
    unsigned cyclesPerRound() const { return roundFactorK * vcsPerPort; }

    /** Physical duration of one flit cycle in nanoseconds. */
    double flitCycleNanos() const
    {
        return flitCycleNs(flitBits, linkRateBps);
    }

    /** Sanity-check the configuration; fatal on nonsense. */
    void validate() const;
};

} // namespace mmr

#endif // MMR_ROUTER_CONFIG_HH
