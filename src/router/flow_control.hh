/**
 * @file
 * Link-level virtual-channel flow control (§3.1, §4.2).
 *
 * The MMR uses credit-based flow control to guarantee flits are never
 * dropped: a flit may only be forwarded on an output virtual channel
 * when the downstream buffer has space, and small flit buffers make
 * back-pressure propagate quickly toward the source interface.
 *
 * Control words ride the links alongside flits; besides credits they
 * encapsulate the dynamic bandwidth management commands of §4.3
 * (Myrinet-style command encodings).
 */

#ifndef MMR_ROUTER_FLOW_CONTROL_HH
#define MMR_ROUTER_FLOW_CONTROL_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"
#include "router/flit.hh"

namespace mmr
{

/** Per-(output port, output VC) credit counters. */
class CreditManager
{
  public:
    /**
     * @param ports number of output ports
     * @param vcs virtual channels per port
     * @param initial_credits downstream buffer depth in flits
     */
    CreditManager(unsigned ports, unsigned vcs, unsigned initial_credits);

    /**
     * Single-router (§5) experiments attach infinite sinks: credits
     * never run out.
     */
    void setInfinite(bool inf) { infinite = inf; }
    bool isInfinite() const { return infinite; }

    bool hasCredit(PortId port, VcId vc) const;
    void consume(PortId port, VcId vc);
    void replenish(PortId port, VcId vc);

    unsigned credits(PortId port, VcId vc) const;
    unsigned initialCredits() const { return initial; }

    /** Reset one VC's credits to the initial value (VC released). */
    void reset(PortId port, VcId vc);

  private:
    std::size_t index(PortId port, VcId vc) const;

    unsigned numPorts;
    unsigned numVcs;
    unsigned initial;
    bool infinite = false;
    std::vector<unsigned> counters;
};

/**
 * A link control word: the out-of-band command channel of §4.3.
 * Encoded into 64 bits for transmission realism (op:8 | conn:24 |
 * arg:32 fixed-point).
 */
struct ControlWord
{
    ControlOp op = ControlOp::None;
    ConnId conn = kInvalidConn;
    double arg = 0.0; ///< rate in Mb/s, priority level, etc.

    std::uint64_t encode() const;
    static ControlWord decode(std::uint64_t bits);

    bool operator==(const ControlWord &o) const;
};

} // namespace mmr

#endif // MMR_ROUTER_FLOW_CONTROL_HH
