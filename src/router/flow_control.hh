/**
 * @file
 * Link-level virtual-channel flow control (§3.1, §4.2).
 *
 * The MMR uses credit-based flow control to guarantee flits are never
 * dropped: a flit may only be forwarded on an output virtual channel
 * when the downstream buffer has space, and small flit buffers make
 * back-pressure propagate quickly toward the source interface.
 *
 * Control words ride the links alongside flits; besides credits they
 * encapsulate the dynamic bandwidth management commands of §4.3
 * (Myrinet-style command encodings).
 */

#ifndef MMR_ROUTER_FLOW_CONTROL_HH
#define MMR_ROUTER_FLOW_CONTROL_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "router/flit.hh"

namespace mmr
{

class InvariantChecker;

/** Per-(output port, output VC) credit counters. */
class CreditManager
{
  public:
    /**
     * @param ports number of output ports
     * @param vcs virtual channels per port
     * @param initial_credits downstream buffer depth in flits
     */
    CreditManager(unsigned ports, unsigned vcs, unsigned initial_credits);

    /**
     * Single-router (§5) experiments attach infinite sinks: credits
     * never run out.
     */
    void
    setInfinite(bool inf)
    {
        infinite = inf;
        ++ver;
    }
    bool isInfinite() const { return infinite; }

    bool
    hasCredit(PortId port, VcId vc) const
    {
        return infinite || counters[index(port, vc)] > 0;
    }

    void
    consume(PortId port, VcId vc)
    {
        if (infinite)
            return;
        unsigned &c = counters[index(port, vc)];
        if (c == 0) {
            mmr_panic("credit underflow: consuming a credit that is "
                      "not there on (", port, ",", vc, ")");
        }
        --c;
        ++statConsumed;
        ++ver;
    }

    void
    replenish(PortId port, VcId vc)
    {
        if (infinite)
            return;
        unsigned &c = counters[index(port, vc)];
        if (c >= initial) {
            mmr_panic("credit overflow on (", port, ",", vc,
                      "): more returns than the downstream depth ",
                      initial);
        }
        ++c;
        ++statReplenished;
        ++ver;
    }

    /**
     * Monotonic change counter over everything hasCredit() can see.
     * Link schedulers compare it against the value captured when they
     * last rebuilt their eligibility masks: an unchanged version means
     * no credits_available bit has moved.  With infinite credits the
     * version never advances, so the cached masks stay warm.
     */
    std::uint64_t schedVersion() const { return ver; }

    unsigned
    credits(PortId port, VcId vc) const
    {
        return counters[index(port, vc)];
    }

    unsigned initialCredits() const { return initial; }

    /** Reset one VC's credits to the initial value (VC released). */
    void reset(PortId port, VcId vc);

    /** Lifetime credit ledger (conservation audit inputs). */
    std::uint64_t consumedCount() const { return statConsumed; }
    std::uint64_t replenishedCount() const { return statReplenished; }

    /**
     * Downstream occupancy census: flits currently buffered in the
     * downstream VC that (port, vc) feeds.  Supplied by whoever wires
     * the links (network layer or a test) so credit conservation can
     * be stated exactly: credits + downstream occupancy == depth.
     */
    using CensusFn = std::function<unsigned(PortId, VcId)>;

    /**
     * Audit credit conservation; panics on violation.  The internal
     * ledger (credits outstanding == consumed - replenished - amounts
     * reclaimed by reset()) is always checked; when @p census is
     * provided, each counter is additionally checked against the
     * actual downstream buffer: credits + occupancy == initial depth.
     */
    void audit(const CensusFn &census = nullptr) const;

    /** Register the 'credit-ledger' invariant with an auditor.  A
     * non-empty @p prefix namespaces the invariant ("router3.credit-
     * ledger") so many routers can share one checker. */
    void registerInvariants(InvariantChecker &chk,
                            CensusFn census = nullptr,
                            unsigned period = 1,
                            const std::string &prefix = {}) const;

  private:
    std::size_t
    index(PortId port, VcId vc) const
    {
        mmr_assert(port < numPorts && vc < numVcs, "credit index (",
                   port, ",", vc, ") out of range");
        return static_cast<std::size_t>(port) * numVcs + vc;
    }

    unsigned numPorts;
    unsigned numVcs;
    unsigned initial;
    bool infinite = false;
    std::vector<unsigned> counters;

    std::uint64_t statConsumed = 0;
    std::uint64_t statReplenished = 0;
    /** Outstanding credits written off by reset() (VC teardown). */
    std::uint64_t statResetReclaimed = 0;
    std::uint64_t ver = 0; ///< see schedVersion()
};

/**
 * A link control word: the out-of-band command channel of §4.3.
 * Encoded into 64 bits for transmission realism (op:8 | conn:24 |
 * arg:32 fixed-point).
 */
struct ControlWord
{
    ControlOp op = ControlOp::None;
    ConnId conn = kInvalidConn;
    double arg = 0.0; ///< rate in Mb/s, priority level, etc.

    std::uint64_t encode() const;
    static ControlWord decode(std::uint64_t bits);

    bool operator==(const ControlWord &o) const;
};

} // namespace mmr

#endif // MMR_ROUTER_FLOW_CONTROL_HH
