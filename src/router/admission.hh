/**
 * @file
 * Bandwidth allocation and admission control (§4.2).
 *
 * Each output link keeps a register with the total flit cycles/round
 * already allocated to CBR connections (plus VBR permanent bandwidth),
 * and a second register with the total peak bandwidth requested by VBR
 * connections.  A CBR request is admitted while the first register
 * stays within the round; a VBR request additionally requires the peak
 * register to stay within round x concurrency factor.  A fraction of
 * the round may be reserved for best-effort traffic to prevent its
 * starvation.
 */

#ifndef MMR_ROUTER_ADMISSION_HH
#define MMR_ROUTER_ADMISSION_HH

#include <vector>

#include "base/types.hh"

namespace mmr
{

class AdmissionController
{
  public:
    /**
     * @param num_ports output links under control
     * @param cycles_per_round round length in flit cycles (K x V)
     * @param concurrency_factor VBR statistical-multiplexing factor
     * @param best_effort_reserve fraction of the round withheld from
     *        reservations so best-effort traffic cannot starve
     */
    AdmissionController(unsigned num_ports, unsigned cycles_per_round,
                        double concurrency_factor,
                        double best_effort_reserve);

    /** Try to reserve CBR bandwidth on an output link. */
    bool tryAdmitCbr(PortId out, unsigned alloc_cycles);

    /** Release a CBR reservation (connection teardown). */
    void releaseCbr(PortId out, unsigned alloc_cycles);

    /** Try to reserve VBR permanent + peak bandwidth. */
    bool tryAdmitVbr(PortId out, unsigned perm_cycles,
                     unsigned peak_cycles);

    void releaseVbr(PortId out, unsigned perm_cycles,
                    unsigned peak_cycles);

    /** Renegotiate an existing CBR reservation; false if infeasible. */
    bool renegotiateCbr(PortId out, unsigned old_cycles,
                        unsigned new_cycles);

    /** Guaranteed cycles/round currently allocated on a link. */
    unsigned allocatedCycles(PortId out) const;

    /** Total VBR peak cycles/round registered on a link. */
    unsigned peakCycles(PortId out) const;

    /** Cycles/round still available for reservation. */
    unsigned availableCycles(PortId out) const;

    /** Reservation ceiling per round (round minus the BE reserve). */
    unsigned reservableCycles() const { return reservable; }

    unsigned roundLength() const { return roundCycles; }
    double concurrency() const { return concurrencyFactor; }

  private:
    struct LinkRegisters
    {
        unsigned allocated = 0; ///< CBR + VBR permanent cycles/round
        unsigned peak = 0;      ///< sum of VBR peak cycles/round
    };

    unsigned roundCycles;
    unsigned reservable;
    double concurrencyFactor;
    std::vector<LinkRegisters> links;

    LinkRegisters &regs(PortId out);
    const LinkRegisters &regs(PortId out) const;
};

} // namespace mmr

#endif // MMR_ROUTER_ADMISSION_HH
