#include "router/router.hh"

#include <algorithm>
#include <cstdint>

#include "base/logging.hh"
#include "base/simclock.hh"
#include "obs/flight_recorder.hh"
#include "obs/trace.hh"
#include "traffic/rates.hh"

namespace mmr
{

MmrRouter::MmrRouter(const RouterConfig &cfg_, MetricsRecorder *metrics_)
    : cfg(cfg_), metrics(metrics_), rand(cfg_.seed),
      sched(SwitchScheduler::create(cfg_)),
      admit(cfg_.numPorts, cfg_.cyclesPerRound(), cfg_.concurrencyFactor,
            cfg_.bestEffortReserve),
      routes(cfg_.numPorts, cfg_.vcsPerPort),
      creditMgr(cfg_.numPorts, cfg_.vcsPerPort, cfg_.vcBufferFlits),
      bypassMasks(cfg_.numPorts)
{
    cfg.validate();
    // Anderson et al.'s iterative matching arbitrates randomly, but
    // each queue offers its *oldest* cell — so Autonet mode pairs the
    // random switch arbiter with age-ordered candidate selection
    // rather than random selection.
    const bool random_candidates = false;
    inputMems.reserve(cfg.numPorts);
    linkScheds.reserve(cfg.numPorts);
    // A matching holds at most one grant per input port.
    currentStamps.reserve(cfg.numPorts);
    nextStamps.reserve(cfg.numPorts);
    PriorityPolicy policy = PriorityPolicy::Biased;
    if (cfg.scheduler == SchedulerKind::FixedPriority)
        policy = PriorityPolicy::Fixed;
    else if (cfg.scheduler == SchedulerKind::AgePriority ||
             cfg.scheduler == SchedulerKind::Autonet)
        policy = PriorityPolicy::Age;
    const unsigned phits_per_flit = cfg.flitBits / cfg.phitBits;
    phitBufs.reserve(cfg.numPorts);
    for (PortId p = 0; p < cfg.numPorts; ++p) {
        inputMems.emplace_back(cfg.vcsPerPort, cfg.vcBufferFlits);
        linkScheds.emplace_back(p, &inputMems.back(), cfg.numPorts,
                                policy, cfg.cyclesPerRound(),
                                random_candidates);
        // §3.2: deep enough for the phits arriving during one decode
        // period, plus headroom for a couple of back-to-back probes.
        phitBufs.emplace_back(
            PhitBuffer::requiredDepth(3, phits_per_flit),
            phits_per_flit);
    }
    phitBufOuts.resize(cfg.numPorts);
    candScratch.resize(cfg.numPorts);
    bypassInBusy.resize(cfg.numPorts);
    bypassOutBusy.resize(cfg.numPorts);
    // Stand-alone routers deliver to an infinite sink by default.
    creditMgr.setInfinite(true);
}

VcMemory &
MmrRouter::inputMemory(PortId p)
{
    mmr_assert(p < inputMems.size(), "input port out of range");
    return inputMems[p];
}

LinkScheduler &
MmrRouter::linkScheduler(PortId p)
{
    mmr_assert(p < linkScheds.size(), "input port out of range");
    return linkScheds[p];
}

ConnId
MmrRouter::nextLocalConn()
{
    return localConnSeq++;
}

// ---------------------------------------------------------------------
// Connection management
// ---------------------------------------------------------------------

ConnId
MmrRouter::openCbr(PortId in, PortId out, double rate_bps)
{
    if (rate_bps <= 0.0 || rate_bps > cfg.linkRateBps)
        return kInvalidConn; // a link can never carry this rate
    const unsigned cycles =
        cyclesPerRound(rate_bps, cfg.linkRateBps, cfg.cyclesPerRound());
    if (!admit.tryAdmitCbr(out, cycles)) {
        MMR_TRACE_INSTANT(TraceCat::Admission, "admit_reject",
                          simclock::now(), out, kInvalidConn,
                          static_cast<std::int32_t>(cycles));
        return kInvalidConn;
    }

    SegmentParams p;
    p.id = nextLocalConn();
    p.klass = TrafficClass::CBR;
    p.in = in;
    p.inVc = routes.allocInputVc(in);
    p.out = out;
    p.outVc = routes.allocOutputVc(out);
    p.allocCycles = cycles;
    p.interArrival = interArrivalCycles(rate_bps, cfg.linkRateBps);
    if (p.inVc == kInvalidVc || p.outVc == kInvalidVc ||
        !installSegment(p)) {
        if (p.inVc != kInvalidVc)
            routes.freeInputVc(in, p.inVc);
        if (p.outVc != kInvalidVc)
            routes.freeOutputVc(out, p.outVc);
        admit.releaseCbr(out, cycles);
        return kInvalidConn;
    }
    MMR_TRACE_INSTANT(TraceCat::Admission, "admit_cbr", simclock::now(),
                      out, p.id, static_cast<std::int32_t>(cycles));
    return p.id;
}

ConnId
MmrRouter::openVbr(PortId in, PortId out, double mean_bps,
                   double peak_bps, int priority)
{
    if (mean_bps <= 0.0 || peak_bps < mean_bps ||
        peak_bps > cfg.linkRateBps)
        return kInvalidConn;
    const unsigned round = cfg.cyclesPerRound();
    const unsigned perm = cyclesPerRound(mean_bps, cfg.linkRateBps, round);
    const unsigned peak = cyclesPerRound(peak_bps, cfg.linkRateBps, round);
    if (!admit.tryAdmitVbr(out, perm, peak)) {
        MMR_TRACE_INSTANT(TraceCat::Admission, "admit_reject",
                          simclock::now(), out, kInvalidConn,
                          static_cast<std::int32_t>(perm),
                          static_cast<std::int32_t>(peak));
        return kInvalidConn;
    }

    SegmentParams p;
    p.id = nextLocalConn();
    p.klass = TrafficClass::VBR;
    p.in = in;
    p.inVc = routes.allocInputVc(in);
    p.out = out;
    p.outVc = routes.allocOutputVc(out);
    p.permCycles = perm;
    p.peakCycles = peak;
    p.interArrival = interArrivalCycles(mean_bps, cfg.linkRateBps);
    p.priority = priority;
    if (p.inVc == kInvalidVc || p.outVc == kInvalidVc ||
        !installSegment(p)) {
        if (p.inVc != kInvalidVc)
            routes.freeInputVc(in, p.inVc);
        if (p.outVc != kInvalidVc)
            routes.freeOutputVc(out, p.outVc);
        admit.releaseVbr(out, perm, peak);
        return kInvalidConn;
    }
    MMR_TRACE_INSTANT(TraceCat::Admission, "admit_vbr", simclock::now(),
                      out, p.id, static_cast<std::int32_t>(perm),
                      static_cast<std::int32_t>(peak));
    return p.id;
}

ConnId
MmrRouter::openBestEffort(PortId in, PortId out)
{
    SegmentParams p;
    p.id = nextLocalConn();
    p.klass = TrafficClass::BestEffort;
    p.in = in;
    p.inVc = routes.allocInputVc(in);
    p.out = out;
    p.outVc = routes.allocOutputVc(out);
    if (p.inVc == kInvalidVc || p.outVc == kInvalidVc ||
        !installSegment(p)) {
        if (p.inVc != kInvalidVc)
            routes.freeInputVc(in, p.inVc);
        if (p.outVc != kInvalidVc)
            routes.freeOutputVc(out, p.outVc);
        return kInvalidConn;
    }
    return p.id;
}

// mmr-lint: allow(hot-path-alloc) setup path: a segment is installed
// once per connection/probe hop, never on the steady-state data path.
bool
MmrRouter::installSegment(const SegmentParams &p)
{
    if (p.id == kInvalidConn || p.in >= cfg.numPorts ||
        p.out >= cfg.numPorts || p.inVc >= cfg.vcsPerPort ||
        p.outVc >= cfg.vcsPerPort)
        return false;
    if (conns.count(p.id))
        return false;

    VcState &vc = inputMems[p.in].vc(p.inVc);
    if (vc.bound())
        return false;

    switch (p.klass) {
      case TrafficClass::CBR:
        vc.bindCbr(p.id, p.allocCycles, p.interArrival);
        break;
      case TrafficClass::VBR:
        vc.bindVbr(p.id, p.permCycles, p.peakCycles, p.interArrival,
                   p.priority);
        break;
      case TrafficClass::BestEffort:
        vc.bindBestEffort(p.id);
        break;
      case TrafficClass::Control:
        vc.bindControl(p.id);
        break;
    }
    // Credits are deliberately NOT touched here: they track the
    // downstream buffer occupancy of the link VC, which outlives any
    // one segment (a reused output VC may still have a flit draining
    // downstream).
    vc.setMapping(p.out, p.outVc);
    vc.setTieBreak(rand.uniform());
    routes.map(ChannelRef{p.in, p.inVc}, ChannelRef{p.out, p.outVc});
    inputMems[p.in].markSchedDirty(p.inVc);
    conns.emplace(p.id, p);
    if (p.releaseWhenEmpty)
        ++autoReleaseConns;
    MMR_TRACE_INSTANT(TraceCat::Setup, "vc_alloc", simclock::now(),
                      p.in, p.id, static_cast<std::int32_t>(p.inVc),
                      static_cast<std::int32_t>(p.outVc));
    return true;
}

void
MmrRouter::removeSegment(ConnId id)
{
    auto it = conns.find(id);
    mmr_assert(it != conns.end(), "removing unknown connection ", id);
    const SegmentParams p = it->second;

    VcState &vc = inputMems[p.in].vc(p.inVc);
    mmr_assert(vc.empty() && vc.pendingGrants() == 0,
               "removing segment with in-flight flits on conn ", id);
    vc.release();
    inputMems[p.in].markSchedDirty(p.inVc);
    routes.unmap(ChannelRef{p.in, p.inVc});
    if (p.ownsInputVc)
        routes.freeInputVc(p.in, p.inVc);
    if (p.ownsOutputVc)
        routes.freeOutputVc(p.out, p.outVc);

    if (p.klass == TrafficClass::CBR && p.allocCycles > 0)
        admit.releaseCbr(p.out, p.allocCycles);
    else if (p.klass == TrafficClass::VBR)
        admit.releaseVbr(p.out, p.permCycles, p.peakCycles);

    conns.erase(it);
    if (p.releaseWhenEmpty) {
        mmr_assert(autoReleaseConns > 0,
                   "release-when-empty count underflow");
        --autoReleaseConns;
    }
    if (segmentRemoved)
        segmentRemoved(p);
}

bool
MmrRouter::close(ConnId id)
{
    if (!conns.count(id))
        return false;
    removeSegment(id);
    return true;
}

const SegmentParams *
MmrRouter::connection(ConnId id) const
{
    auto it = conns.find(id);
    return it == conns.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------
// Dynamic bandwidth management
// ---------------------------------------------------------------------

bool
MmrRouter::renegotiateBandwidth(ConnId id, double new_rate_bps)
{
    auto it = conns.find(id);
    if (it == conns.end() || it->second.klass != TrafficClass::CBR)
        return false;
    if (new_rate_bps <= 0.0 || new_rate_bps > cfg.linkRateBps)
        return false;
    SegmentParams &p = it->second;
    const unsigned cycles = cyclesPerRound(new_rate_bps, cfg.linkRateBps,
                                           cfg.cyclesPerRound());
    if (!admit.renegotiateCbr(p.out, p.allocCycles, cycles))
        return false;
    p.allocCycles = cycles;
    p.interArrival = interArrivalCycles(new_rate_bps, cfg.linkRateBps);
    VcState &vc = inputMems[p.in].vc(p.inVc);
    vc.setCbrAlloc(cycles);
    vc.setInterArrival(p.interArrival);
    inputMems[p.in].markSchedDirty(p.inVc); // quota moved
    return true;
}

bool
MmrRouter::setConnectionPriority(ConnId id, int priority)
{
    auto it = conns.find(id);
    if (it == conns.end() || it->second.klass != TrafficClass::VBR)
        return false;
    it->second.priority = priority;
    inputMems[it->second.in].vc(it->second.inVc).setUserPriority(priority);
    return true;
}

bool
MmrRouter::applyControlWord(const ControlWord &w)
{
    switch (w.op) {
      case ControlOp::SetBandwidth:
        // arg carries the new rate in Mb/s.
        return renegotiateBandwidth(w.conn, w.arg * kMbps);
      case ControlOp::SetPriority:
        return setConnectionPriority(w.conn,
                                     static_cast<int>(w.arg));
      case ControlOp::Teardown:
        return close(w.conn);
      default:
        return false;
    }
}

// ---------------------------------------------------------------------
// Data path
// ---------------------------------------------------------------------

bool
MmrRouter::inject(ConnId id, Flit f)
{
    auto it = conns.find(id);
    mmr_assert(it != conns.end(), "inject on unknown connection ", id);
    const SegmentParams &p = it->second;
    f.conn = id;
    f.klass = p.klass;
    if (!inputMems[p.in].deposit(p.inVc, f)) {
        ++statInjectReject;
        return false;
    }
    ++statInjected;
    MMR_OBS_EVENT(TraceCat::Flit, "inject", f.readyTime, p.in, id,
                  static_cast<std::int32_t>(p.inVc));
    return true;
}

bool
MmrRouter::injectRaw(PortId in, VcId vc, const Flit &f)
{
    mmr_assert(in < cfg.numPorts && vc < cfg.vcsPerPort,
               "injectRaw target out of range");
    if (!inputMems[in].deposit(vc, f)) {
        ++statInjectReject;
        return false;
    }
    ++statInjected;
    MMR_OBS_EVENT(TraceCat::Flit, "inject", f.readyTime, in, f.conn,
                  static_cast<std::int32_t>(vc));
    return true;
}

bool
MmrRouter::offerControl(PortId in, PortId out, Flit f)
{
    mmr_assert(in < cfg.numPorts && out < cfg.numPorts,
               "control ports out of range");
    f.klass = TrafficClass::Control;
    if (!phitBufs[in].push(f)) {
        ++statControlDrops; // link back-pressure on the probe
        return false;
    }
    phitBufOuts[in].push_back(out);
    ++phitBuffered;
    return true;
}

std::size_t
MmrRouter::phitBufferDepth(PortId in) const
{
    mmr_assert(in < cfg.numPorts, "input port out of range");
    return phitBufs[in].depth();
}

bool
MmrRouter::creditAvailable(const VcState &vc) const
{
    if (creditMgr.isInfinite())
        return true;
    return creditMgr.credits(vc.outPort(), vc.outVc()) >
           vc.pendingGrants();
}

// ---------------------------------------------------------------------
// Clocked
// ---------------------------------------------------------------------

// mmr-lint: allow(hot-path-alloc) control-channel bookkeeping grows
// only while a setup/teardown is in flight; data-only cycles take the
// early-out above the port-mask setup and never allocate.
void
MmrRouter::processBypass(Cycle now)
{
    // Control traffic is rare; with nothing buffered there is nothing
    // to cut through or demote, so the common data-only cycle skips
    // the port-mask setup entirely.
    if (phitBuffered == 0)
        return;

    // Ports used by the matching that transmits during this cycle.
    std::fill(bypassInBusy.begin(), bypassInBusy.end(), false);
    std::fill(bypassOutBusy.begin(), bypassOutBusy.end(), false);
    for (const Candidate &c : currentMatching) {
        bypassInBusy[c.in] = true;
        bypassOutBusy[c.out] = true;
    }

    // Drain the phit buffers (decoded control packets) in port order.
    bypassPending.clear();
    for (PortId p = 0; p < cfg.numPorts; ++p) {
        while (!phitBufs[p].empty()) {
            BypassReq req;
            req.in = p;
            req.flit = phitBufs[p].pop();
            req.out = phitBufOuts[p].front();
            phitBufOuts[p].pop_front();
            --phitBuffered;
            bypassPending.push_back(std::move(req));
        }
    }

    for (BypassReq &req : bypassPending) {
        if (!bypassInBusy[req.in] && !bypassOutBusy[req.out]) {
            // Cut through right now; the ports stay busy for the
            // arbitration of the next flit cycle (§3.4).
            bypassInBusy[req.in] = true;
            bypassOutBusy[req.out] = true;
            bypassMasks.busyIn.set(req.in);
            bypassMasks.busyOut.set(req.out);
            ++statBypassHits;
            ++statForwarded;
            ++statByClass[static_cast<int>(TrafficClass::Control)];
            MMR_OBS_EVENT(TraceCat::Control, "cut_through", now,
                          req.out, req.flit.conn,
                          static_cast<std::int32_t>(req.in));
            if (metrics) {
                // Cut-throughs bypass the VC pipeline: class delay
                // only, no stage decomposition.
                metrics->recordDeparture(
                    req.flit.conn, now,
                    static_cast<double>(now - req.flit.readyTime),
                    TrafficClass::Control);
            }
            if (sink)
                sink(req.out, kInvalidVc, req.flit, now);
            continue;
        }
        // Blocked: buffer on a (lazily opened) control channel and let
        // the synchronous scheduler move it (highest service tier).
        ++statBypassMisses;
        const unsigned key = req.in * cfg.numPorts + req.out;
        auto it = controlChans.find(key);
        ConnId chan = kInvalidConn;
        if (it != controlChans.end()) {
            chan = it->second;
        } else {
            SegmentParams p;
            p.id = nextLocalConn();
            p.klass = TrafficClass::Control;
            p.in = req.in;
            p.inVc = routes.allocInputVc(req.in);
            p.out = req.out;
            p.outVc = routes.allocOutputVc(req.out);
            if (p.inVc == kInvalidVc || p.outVc == kInvalidVc ||
                !installSegment(p)) {
                if (p.inVc != kInvalidVc)
                    routes.freeInputVc(req.in, p.inVc);
                if (p.outVc != kInvalidVc)
                    routes.freeOutputVc(req.out, p.outVc);
                ++statControlDrops;
                continue;
            }
            controlChans.emplace(key, p.id);
            chan = p.id;
        }
        Flit f = req.flit;
        if (!inject(chan, f))
            ++statControlDrops;
    }
}

void
MmrRouter::evaluate(Cycle now)
{
    // Asynchronous VCT cut-throughs happen "within" the current flit
    // cycle, before the arbitration for the next one sees the masks.
    processBypass(now);

    for (PortId p = 0; p < cfg.numPorts; ++p) {
        candScratch[p].clear();
        linkScheds[p].collectCandidates(now, cfg.candidates, creditMgr,
                                        rand, candScratch[p]);
        if (!creditMgr.isInfinite()) {
            // Re-check credits against pending grants (the coarse
            // credits_available bit cannot see in-flight grants).
            auto &v = candScratch[p];
            v.erase(std::remove_if(
                        v.begin(), v.end(),
                        [this](const Candidate &c) {
                            return !creditAvailable(
                                inputMems[c.in].vc(c.vc));
                        }),
                    v.end());
        }
    }

    sched->scheduleInto(candScratch, bypassMasks, rand, nextMatching);
    bypassMasks.busyIn.clearAll();
    bypassMasks.busyOut.clearAll();

    nextStamps.clear();
    for (const Candidate &c : nextMatching) {
        // mmr-lint: allow(hot-path-alloc) amortized: nextStamps'
        // capacity is reserved in the constructor (one slot per port
        // covers any matching) and recycled via the swap in advance().
        nextStamps.emplace_back();
        inputMems[c.in].vc(c.vc).noteGrantIssued(now,
                                                 nextStamps.back());
        // The pending grant shrinks the ungranted-flit count and eats
        // round quota: the link scheduler must re-derive this VC's
        // eligibility bit.
        inputMems[c.in].markSchedDirty(c.vc);
        MMR_OBS_EVENT(TraceCat::Sched, "grant", now, c.in, c.conn,
                      static_cast<std::int32_t>(c.vc),
                      static_cast<std::int32_t>(c.out));
    }

    statMatchSize.add(static_cast<double>(nextMatching.size()));
    MMR_TRACE_COUNTER(TraceCat::Sched, "sched.matching_size", now,
                      static_cast<double>(nextMatching.size()));
}

void
MmrRouter::deliver(const Candidate &grant, Flit &&flit, Cycle now,
                   const StageSample &stages)
{
    ++statForwarded;
    ++statByClass[static_cast<int>(flit.klass)];
    MMR_OBS_EVENT(TraceCat::Flit, "xmit", now, grant.out,
                  grant.conn, static_cast<std::int32_t>(grant.vc),
                  static_cast<std::int32_t>(grant.outVc));
    if (metrics) {
        metrics->recordDeparture(
            grant.conn, now,
            static_cast<double>(now - flit.readyTime), flit.klass,
            &stages);
    }
    if (creditReturn)
        creditReturn(grant.in, grant.vc, now);
    if (sink)
        sink(grant.out, grant.outVc, flit, now);
}

void
MmrRouter::maybeAutoRelease(ConnId id, PortId in, VcId in_vc)
{
    // Fast path for the steady state: with no release-when-empty
    // connections installed (the common case — only VCT control
    // packets set the flag), skip the per-forwarded-flit map lookup.
    if (autoReleaseConns == 0)
        return;
    auto it = conns.find(id);
    if (it == conns.end() || !it->second.releaseWhenEmpty)
        return;
    const VcState &vc = inputMems[in].vc(in_vc);
    if (vc.empty() && vc.pendingGrants() == 0) {
        // Drop every control-channel cache entry pointing at this
        // conn.  Erasing all matches (not just the first found) keeps
        // the cache free of stale entries and makes the loop
        // order-insensitive.
        // mmr-lint: allow(unordered-iter) order-insensitive: erases
        // every match; no observable effect depends on visit order.
        for (auto cit = controlChans.begin();
             cit != controlChans.end();) {
            if (cit->second == id)
                cit = controlChans.erase(cit);
            else
                ++cit;
        }
        removeSegment(id);
    }
}

// mmr-lint: allow(hot-path-alloc) amortized: configScratch is a member
// whose capacity persists across cycles (see test_zero_alloc).
void
MmrRouter::applyMatching(Cycle now)
{
    mmr_assert(currentStamps.size() == currentMatching.size(),
               "matching and stamp vectors fell out of step");
    for (std::size_t gi = 0; gi < currentMatching.size(); ++gi) {
        const Candidate &grant = currentMatching[gi];
        VcState &vc = inputMems[grant.in].vc(grant.vc);
        mmr_assert(!vc.empty(), "granted VC (", grant.in, ",", grant.vc,
                   ") is empty at apply time");
        Flit flit = vc.pop();
        // Stamps travel with the matching (same index = same grant):
        // they attribute the flit's delay to the pipeline stages.
        vc.noteGrantApplied();
        const VcState::GrantStamp &stamp = currentStamps[gi];
        StageSample stages;
        stages.sourceQueue = flit.readyTime > flit.createTime
                                 ? flit.readyTime - flit.createTime
                                 : 0;
        stages.vcResidency = stamp.vcWait;
        stages.arbWait = stamp.arbWait;
        // The stamp keeps only the low 32 bits of the issue cycle;
        // wrap-around subtraction recovers the (small) pipeline delay.
        stages.switchTraversal = static_cast<std::uint32_t>(now) -
                                 stamp.grantCycle;
        vc.noteServiced();
        inputMems[grant.in].noteDrained(grant.vc);
        creditMgr.consume(grant.out, grant.outVc);
        MMR_OBS_EVENT(TraceCat::Credit, "credit_consume", now,
                      grant.out, grant.conn,
                      static_cast<std::int32_t>(grant.outVc),
                      static_cast<std::int32_t>(
                          creditMgr.credits(grant.out, grant.outVc)));
        deliver(grant, std::move(flit), now, stages);
        maybeAutoRelease(grant.conn, grant.in, grant.vc);
    }

    if (metrics) {
        metrics->recordOutputSlots(
            static_cast<unsigned>(currentMatching.size()), cfg.numPorts,
            now);
    }

    // Reconfiguration accounting for the multiplexed crossbar: the
    // switch resets whenever the port assignment changes.
    configScratch.clear();
    for (const Candidate &g : currentMatching)
        configScratch.emplace_back(g.in, g.out);
    std::sort(configScratch.begin(), configScratch.end());
    reconfig.note(configScratch == lastConfig);
    lastConfig.swap(configScratch);
}

void
MmrRouter::advance(Cycle now)
{
    applyMatching(now);
    // Swap instead of move-assign: the spent matching's capacity is
    // recycled as next cycle's scratch.
    currentMatching.swap(nextMatching);
    nextMatching.clear();
    currentStamps.swap(nextStamps);
    nextStamps.clear();
}

std::uint64_t
MmrRouter::forwardedByClass(TrafficClass c) const
{
    return statByClass[static_cast<int>(c)];
}

// ---------------------------------------------------------------------
// Invariant auditing
// ---------------------------------------------------------------------

void
MmrRouter::registerInvariants(InvariantChecker &chk,
                              unsigned sweep_period,
                              const std::string &prefix,
                              ExtraDemandFn extra_demand)
{
    // Flit conservation (§3.1: credit-based flow control "guarantees
    // flits are never dropped").  Every flit that entered a VC memory
    // is either still buffered or was forwarded through the crossbar;
    // bypass cut-throughs never enter a VC memory and are excluded
    // from both sides.  Occupancy is read from the per-memory counter
    // (O(P) rather than O(P*V)); the vc-occupancy invariant below
    // cross-checks that counter against the FIFO ground truth on the
    // same stride, so a flit removed behind the router's back is still
    // caught.
    chk.add(
        prefix + "flit-conservation",
        [this](Cycle) {
            std::uint64_t buffered = 0;
            for (const VcMemory &m : inputMems)
                buffered += m.occupancy();
            const std::uint64_t via_switch =
                statForwarded - statBypassHits;
            if (statInjected != via_switch + buffered) {
                mmr_invariant_violated(
                    "flit-conservation", statInjected,
                    " flits injected != ", via_switch,
                    " forwarded through the switch + ", buffered,
                    " still buffered");
            }
        },
        sweep_period);

    // VC memory occupancy bookkeeping matches the FIFO ground truth.
    chk.add(
        prefix + "vc-occupancy",
        [this](Cycle) {
            for (const VcMemory &m : inputMems)
                m.auditOccupancy();
        },
        sweep_period);

    // VC state machine legality: free VCs hold nothing, mapped VCs
    // are bound, pending grants are covered by buffered flits.
    chk.add(
        prefix + "vc-legality",
        [this](Cycle) {
            for (const VcMemory &m : inputMems)
                m.auditLegality();
        },
        sweep_period);

    // Admission ledger (§4.2): the per-link allocated/peak registers
    // equal the sum over installed segments, and stay within the round
    // minus the best-effort reserve.
    chk.add(
        prefix + "admission-ledger",
        [this, extra_demand = std::move(extra_demand)](Cycle) {
            std::vector<unsigned> alloc(cfg.numPorts, 0);
            std::vector<unsigned> peak(cfg.numPorts, 0);
            if (extra_demand)
                extra_demand(alloc, peak);
            // mmr-lint: allow(unordered-iter) order-insensitive:
            // commutative integer sums into per-port accumulators.
            for (const auto &[id, p] : conns) {
                if (p.klass == TrafficClass::CBR) {
                    alloc[p.out] += p.allocCycles;
                } else if (p.klass == TrafficClass::VBR) {
                    alloc[p.out] += p.permCycles;
                    peak[p.out] += p.peakCycles;
                }
            }
            const double peak_limit =
                static_cast<double>(admit.reservableCycles()) *
                admit.concurrency();
            for (PortId o = 0; o < cfg.numPorts; ++o) {
                if (admit.allocatedCycles(o) != alloc[o]) {
                    mmr_invariant_violated(
                        "admission-ledger", "output ", o,
                        ": allocated register ",
                        admit.allocatedCycles(o),
                        " != sum of bound segments ", alloc[o]);
                }
                if (admit.peakCycles(o) != peak[o]) {
                    mmr_invariant_violated(
                        "admission-ledger", "output ", o,
                        ": peak register ", admit.peakCycles(o),
                        " != sum of bound segments ", peak[o]);
                }
                if (admit.allocatedCycles(o) >
                    admit.reservableCycles()) {
                    mmr_invariant_violated(
                        "admission-ledger", "output ", o,
                        ": allocated ", admit.allocatedCycles(o),
                        " cycles/round exceeds the reservable ",
                        admit.reservableCycles(),
                        " (round minus best-effort reserve)");
                }
                if (static_cast<double>(admit.peakCycles(o)) >
                    peak_limit) {
                    mmr_invariant_violated(
                        "admission-ledger", "output ", o, ": peak ",
                        admit.peakCycles(o),
                        " cycles/round exceeds reservable x "
                        "concurrency = ", peak_limit);
                }
            }
        },
        sweep_period);

    // Crossbar matching validity: the matching applied next cycle
    // grants each input and each output at most once (§3.3).
    chk.add(prefix + "matching-validity", [this](Cycle) {
        SwitchScheduler::auditMatching(currentMatching, cfg.numPorts,
                                       sched->allowsOutputSharing());
    });

    // Credit conservation (§4.2), internal ledger form.
    creditMgr.registerInvariants(chk, nullptr, sweep_period, prefix);
}

// ---------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------

void
MmrRouter::registerStats(StatsRegistry &reg, const std::string &prefix,
                         StatsDetail detail)
{
    reg.addCounter(prefix + "flits.injected", &statInjected);
    reg.addCounter(prefix + "flits.forwarded", &statForwarded);
    reg.addCounter(prefix + "flits.inject_rejects", &statInjectReject);
    reg.addCounter(prefix + "flits.cbr",
                   &statByClass[static_cast<int>(TrafficClass::CBR)]);
    reg.addCounter(prefix + "flits.vbr",
                   &statByClass[static_cast<int>(TrafficClass::VBR)]);
    reg.addCounter(
        prefix + "flits.best_effort",
        &statByClass[static_cast<int>(TrafficClass::BestEffort)]);
    reg.addCounter(
        prefix + "flits.control",
        &statByClass[static_cast<int>(TrafficClass::Control)]);
    reg.addCounter(prefix + "bypass.hits", &statBypassHits);
    reg.addCounter(prefix + "bypass.misses", &statBypassMisses);
    reg.addCounter(prefix + "control.drops", &statControlDrops);

    reg.addGauge(prefix + "sched.matching_size.mean",
                 [this] { return statMatchSize.mean(); });
    reg.addCounter(prefix + "sched.matching_size.count", [this] {
        return static_cast<double>(statMatchSize.count());
    });
    reg.addCounter(prefix + "sched.reconfigs", [this] {
        return static_cast<double>(reconfig.reconfigurations());
    });
    reg.addGauge(prefix + "sched.reconfig_rate",
                 [this] { return reconfig.reconfigRate(); });

    reg.addCounter(prefix + "credit.consumed",
                   [this] {
                       return static_cast<double>(
                           creditMgr.consumedCount());
                   });
    reg.addCounter(prefix + "credit.replenished",
                   [this] {
                       return static_cast<double>(
                           creditMgr.replenishedCount());
                   });

    reg.addGauge(prefix + "connections", [this] {
        return static_cast<double>(conns.size());
    });

    if (detail == StatsDetail::Aggregate)
        return;

    for (PortId p = 0; p < cfg.numPorts; ++p) {
        const std::string in = prefix + "in" + std::to_string(p) + ".";
        reg.addGauge(in + "occupancy", [this, p] {
            return static_cast<double>(inputMems[p].occupancy());
        });
        reg.addCounter(in + "overflows", [this, p] {
            return static_cast<double>(inputMems[p].overflowCount());
        });
        reg.addGauge(in + "phit_depth", [this, p] {
            return static_cast<double>(phitBufs[p].depth());
        });

        const std::string out =
            prefix + "admission.out" + std::to_string(p) + ".";
        reg.addGauge(out + "allocated_cycles", [this, p] {
            return static_cast<double>(admit.allocatedCycles(p));
        });
        reg.addGauge(out + "peak_cycles", [this, p] {
            return static_cast<double>(admit.peakCycles(p));
        });
        reg.addGauge(out + "available_cycles", [this, p] {
            return static_cast<double>(admit.availableCycles(p));
        });

        if (detail != StatsDetail::PerVc)
            continue;
        for (VcId v = 0; v < cfg.vcsPerPort; ++v) {
            reg.addGauge(in + "vc" + std::to_string(v) + ".occupancy",
                         [this, p, v] {
                             return static_cast<double>(
                                 inputMems[p].vc(v).depth());
                         });
        }
    }
}

} // namespace mmr
