/**
 * @file
 * Routing and Arbitration Unit (§3.5).
 *
 * Keeps the channel mappings between input and output virtual channels
 * for established connections.  Direct mappings forward data flits;
 * reverse mappings serve backtracking headers and returned
 * acknowledgments, and propagate status information.  A history store
 * associated with each input virtual channel records the output links
 * a probe has already searched (EPB, Gaughan & Yalamanchili).
 *
 * Also owns the free-VC bookkeeping per port, which both connection
 * establishment (PCS) and best-effort VC allocation (VCT) draw from.
 */

#ifndef MMR_ROUTER_ROUTING_UNIT_HH
#define MMR_ROUTER_ROUTING_UNIT_HH

#include <vector>

#include "base/bitvector.hh"
#include "base/types.hh"

namespace mmr
{

/** A (port, virtual channel) pair. */
struct ChannelRef
{
    PortId port = kInvalidPort;
    VcId vc = kInvalidVc;

    bool valid() const { return port != kInvalidPort; }
    bool operator==(const ChannelRef &o) const
    {
        return port == o.port && vc == o.vc;
    }
};

class RoutingUnit
{
  public:
    RoutingUnit(unsigned num_ports, unsigned vcs_per_port);

    /** Allocate the lowest free VC on an input/output port. */
    VcId allocInputVc(PortId port);
    VcId allocOutputVc(PortId port);

    void freeInputVc(PortId port, VcId vc);
    void freeOutputVc(PortId port, VcId vc);

    unsigned freeInputVcCount(PortId port) const;
    unsigned freeOutputVcCount(PortId port) const;

    /** Record a direct + reverse mapping for a connection. */
    void map(ChannelRef in, ChannelRef out);

    /** Tear a mapping down (both directions). */
    void unmap(ChannelRef in);

    /** Direct mapping: where do flits of this input VC go? */
    ChannelRef directMap(ChannelRef in) const;

    /** Reverse mapping: which input VC feeds this output VC? */
    ChannelRef reverseMap(ChannelRef out) const;

    /** EPB history store for an input VC (bits index output ports). */
    BitVector &history(ChannelRef in);
    void clearHistory(ChannelRef in);

    unsigned numPorts() const { return ports; }
    unsigned vcsPerPort() const { return vcs; }

  private:
    std::size_t index(ChannelRef c) const;

    unsigned ports;
    unsigned vcs;
    std::vector<BitVector> inputFree;  ///< per input port
    std::vector<BitVector> outputFree; ///< per output port
    std::vector<ChannelRef> direct;    ///< indexed by input channel
    std::vector<ChannelRef> reverse;   ///< indexed by output channel
    std::vector<BitVector> histories;  ///< indexed by input channel
};

} // namespace mmr

#endif // MMR_ROUTER_ROUTING_UNIT_HH
