#include "router/switch_sched.hh"

#include <algorithm>

#include "base/logging.hh"
#include "sim/invariant.hh"

namespace mmr
{

bool
SwitchScheduler::validate(const Matching &m, unsigned num_ports,
                          bool allow_output_sharing)
{
    std::vector<bool> in_used(num_ports, false);
    std::vector<bool> out_used(num_ports, false);
    for (const Candidate &c : m) {
        if (c.in >= num_ports || c.out >= num_ports)
            return false;
        if (in_used[c.in])
            return false;
        in_used[c.in] = true;
        if (!allow_output_sharing) {
            if (out_used[c.out])
                return false;
            out_used[c.out] = true;
        }
    }
    return true;
}

void
SwitchScheduler::auditMatching(const Matching &m, unsigned num_ports,
                               bool allow_output_sharing)
{
    std::vector<bool> in_used(num_ports, false);
    std::vector<bool> out_used(num_ports, false);
    for (const Candidate &c : m) {
        if (c.in >= num_ports || c.out >= num_ports) {
            mmr_invariant_violated("matching-validity", "grant (",
                                   c.in, " -> ", c.out,
                                   ") references a port outside the ",
                                   num_ports, "-port switch");
        }
        if (in_used[c.in]) {
            mmr_invariant_violated("matching-validity", "input port ",
                                   c.in, " matched twice in one cycle");
        }
        in_used[c.in] = true;
        if (!allow_output_sharing) {
            if (out_used[c.out]) {
                mmr_invariant_violated("matching-validity",
                                       "output port ", c.out,
                                       " matched twice in one cycle");
            }
            out_used[c.out] = true;
        }
    }
}

std::unique_ptr<SwitchScheduler>
SwitchScheduler::create(const RouterConfig &cfg)
{
    switch (cfg.scheduler) {
      case SchedulerKind::BiasedPriority:
      case SchedulerKind::FixedPriority:
      case SchedulerKind::AgePriority:
        return std::make_unique<GreedyPriorityScheduler>(cfg.numPorts);
      case SchedulerKind::OutputDriven:
        return std::make_unique<OutputDrivenScheduler>(
            cfg.numPorts, cfg.schedIterations);
      case SchedulerKind::Autonet:
        return std::make_unique<AutonetScheduler>(cfg.numPorts,
                                                  cfg.schedIterations);
      case SchedulerKind::Islip:
        return std::make_unique<IslipScheduler>(cfg.numPorts,
                                                cfg.schedIterations);
      case SchedulerKind::Perfect:
        return std::make_unique<PerfectSwitchScheduler>(cfg.numPorts);
    }
    mmr_panic("unhandled scheduler kind");
}

GreedyPriorityScheduler::GreedyPriorityScheduler(unsigned num_ports)
    : numPorts(num_ports)
{
}

namespace
{

/**
 * Kuhn-style augmenting search: try to route input @p in to one of
 * its candidate outputs, displacing lower-stage assignments along an
 * alternating path.  @p holder maps each output to the input holding
 * it (or numPorts when free), @p choice records which candidate each
 * input ended up with.
 */
bool
augment(PortId in, const std::vector<std::vector<const Candidate *>> &req,
        std::vector<unsigned> &holder,
        std::vector<const Candidate *> &choice,
        std::vector<bool> &visited, const std::vector<bool> &out_masked,
        unsigned num_ports)
{
    for (const Candidate *c : req[in]) {
        const PortId out = c->out;
        if (out_masked[out] || visited[out])
            continue;
        visited[out] = true;
        if (holder[out] == num_ports ||
            augment(static_cast<PortId>(holder[out]), req, holder, choice,
                    visited, out_masked, num_ports)) {
            holder[out] = in;
            choice[in] = c;
            return true;
        }
    }
    return false;
}

} // namespace

Matching
GreedyPriorityScheduler::schedule(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng)
{
    (void)rng; // tie-break randomness is pre-drawn in Candidate::tie
    flat.clear();
    for (const auto &cands : per_input)
        flat.insert(flat.end(), cands.begin(), cands.end());

    // Arbitrate by (tier, priority, stable tie).  Service tiers are
    // strict (§4.3): the matching is computed tier by tier, from
    // control down to best effort, and a lower tier may never displace
    // or reroute a grant won by a higher tier.  Within one tier,
    // candidates are admitted in priority order but later candidates
    // may re-route earlier same-tier inputs to alternates (augmenting
    // paths), yielding a maximum matching for the tier — the
    // "maximize the probability of assigning virtual channels to
    // every output link" goal of §4.4.
    std::sort(flat.begin(), flat.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.tier != b.tier)
                      return a.tier > b.tier;
                  if (a.prio != b.prio)
                      return a.prio > b.prio;
                  return a.tie > b.tie;
              });

    std::vector<bool> in_taken(numPorts, false);
    std::vector<bool> out_taken(numPorts, false);
    for (PortId p = 0; p < numPorts; ++p) {
        if (masks.busyIn.test(p))
            in_taken[p] = true;
        if (masks.busyOut.test(p))
            out_taken[p] = true;
    }

    Matching m;
    std::vector<std::vector<const Candidate *>> req(numPorts);
    std::vector<unsigned> holder(numPorts);
    std::vector<const Candidate *> choice(numPorts);
    std::vector<bool> tried(numPorts);

    std::size_t tier_begin = 0;
    while (tier_begin < flat.size()) {
        const int tier = flat[tier_begin].tier;
        std::size_t tier_end = tier_begin;
        while (tier_end < flat.size() && flat[tier_end].tier == tier)
            ++tier_end;

        // Per-input candidate lists for this tier, in priority order,
        // restricted to ports still free after the higher tiers.
        for (PortId p = 0; p < numPorts; ++p) {
            req[p].clear();
            holder[p] = numPorts;
            choice[p] = nullptr;
            tried[p] = false;
        }
        for (std::size_t i = tier_begin; i < tier_end; ++i) {
            const Candidate &c = flat[i];
            if (c.in < numPorts && !in_taken[c.in] && !out_taken[c.out])
                req[c.in].push_back(&c);
        }
        for (std::size_t i = tier_begin; i < tier_end; ++i) {
            const Candidate &c = flat[i];
            if (c.in >= numPorts || in_taken[c.in] || tried[c.in])
                continue;
            tried[c.in] = true; // one augmenting attempt per input
            std::vector<bool> visited(numPorts, false);
            augment(c.in, req, holder, choice, visited, out_taken,
                    numPorts);
        }
        for (PortId in = 0; in < numPorts; ++in) {
            if (choice[in] != nullptr) {
                m.push_back(*choice[in]);
                in_taken[in] = true;
                out_taken[choice[in]->out] = true;
            }
        }
        tier_begin = tier_end;
    }
    return m;
}

OutputDrivenScheduler::OutputDrivenScheduler(unsigned num_ports,
                                             unsigned iterations)
    : numPorts(num_ports), iters(iterations)
{
    mmr_assert(iters >= 1, "need at least one matching iteration");
}

Matching
OutputDrivenScheduler::schedule(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng)
{
    (void)rng;
    Matching m;
    std::vector<bool> in_used(numPorts, false);
    std::vector<bool> out_used(numPorts, false);
    for (PortId p = 0; p < numPorts; ++p) {
        if (masks.busyIn.test(p))
            in_used[p] = true;
        if (masks.busyOut.test(p))
            out_used[p] = true;
    }

    const auto better = [](const Candidate *a, const Candidate *b) {
        if (b == nullptr)
            return true;
        if (a->tier != b->tier)
            return a->tier > b->tier;
        if (a->prio != b->prio)
            return a->prio > b->prio;
        return a->tie > b->tie;
    };

    for (unsigned it = 0; it < iters; ++it) {
        // Grant: every free output picks the best request aimed at it.
        std::vector<const Candidate *> grant(numPorts, nullptr);
        for (const auto &cands : per_input) {
            for (const Candidate &c : cands) {
                if (c.in >= numPorts || in_used[c.in] || out_used[c.out])
                    continue;
                if (better(&c, grant[c.out]))
                    grant[c.out] = &c;
            }
        }
        // Accept: every input takes the best grant it received.
        std::vector<const Candidate *> accept(numPorts, nullptr);
        for (PortId out = 0; out < numPorts; ++out) {
            const Candidate *g = grant[out];
            if (g != nullptr && better(g, accept[g->in]))
                accept[g->in] = g;
        }
        bool progress = false;
        for (PortId in = 0; in < numPorts; ++in) {
            const Candidate *a = accept[in];
            if (a == nullptr)
                continue;
            in_used[a->in] = true;
            out_used[a->out] = true;
            m.push_back(*a);
            progress = true;
        }
        if (!progress)
            break;
    }
    return m;
}

AutonetScheduler::AutonetScheduler(unsigned num_ports, unsigned iterations)
    : numPorts(num_ports), iters(iterations)
{
    mmr_assert(iters >= 1, "need at least one matching iteration");
}

Matching
AutonetScheduler::schedule(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng)
{
    Matching m;
    std::vector<bool> in_used(numPorts, false);
    std::vector<bool> out_used(numPorts, false);
    for (PortId p = 0; p < numPorts; ++p) {
        if (masks.busyIn.test(p))
            in_used[p] = true;
        if (masks.busyOut.test(p))
            out_used[p] = true;
    }

    for (unsigned it = 0; it < iters; ++it) {
        // Request phase: unmatched inputs request the outputs of all
        // their still-available candidates.
        std::vector<std::vector<const Candidate *>> requests(numPorts);
        for (const auto &cands : per_input) {
            for (const Candidate &c : cands) {
                if (c.in < numPorts && !in_used[c.in] &&
                    !out_used[c.out])
                    requests[c.out].push_back(&c);
            }
        }

        // Grant phase: each free output grants one random requester.
        std::vector<const Candidate *> grants(numPorts, nullptr);
        for (PortId out = 0; out < numPorts; ++out) {
            auto &req = requests[out];
            if (out_used[out] || req.empty())
                continue;
            grants[out] = req[rng.below(req.size())];
        }

        // Accept phase: each input accepts one random grant.
        std::vector<std::vector<const Candidate *>> offers(numPorts);
        for (PortId out = 0; out < numPorts; ++out) {
            if (grants[out] != nullptr)
                offers[grants[out]->in].push_back(grants[out]);
        }
        bool progress = false;
        for (PortId in = 0; in < numPorts; ++in) {
            auto &offer = offers[in];
            if (offer.empty())
                continue;
            const Candidate *pick = offer[rng.below(offer.size())];
            in_used[pick->in] = true;
            out_used[pick->out] = true;
            m.push_back(*pick);
            progress = true;
        }
        if (!progress)
            break;
    }
    return m;
}

IslipScheduler::IslipScheduler(unsigned num_ports, unsigned iterations)
    : numPorts(num_ports), iters(iterations), grantPtr(num_ports, 0),
      acceptPtr(num_ports, 0)
{
    mmr_assert(iters >= 1, "need at least one matching iteration");
}

Matching
IslipScheduler::schedule(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng)
{
    (void)rng;
    Matching m;
    std::vector<bool> in_used(numPorts, false);
    std::vector<bool> out_used(numPorts, false);
    for (PortId p = 0; p < numPorts; ++p) {
        if (masks.busyIn.test(p))
            in_used[p] = true;
        if (masks.busyOut.test(p))
            out_used[p] = true;
    }

    for (unsigned it = 0; it < iters; ++it) {
        // Requests: candidate per (input, output); keep the best
        // candidate per pair so the grant can return it.
        std::vector<std::vector<const Candidate *>> req(
            numPorts, std::vector<const Candidate *>(numPorts, nullptr));
        for (const auto &cands : per_input) {
            for (const Candidate &c : cands) {
                if (in_used[c.in] || out_used[c.out])
                    continue;
                const Candidate *&slot = req[c.out][c.in];
                if (slot == nullptr || c.tier > slot->tier ||
                    (c.tier == slot->tier && c.prio > slot->prio))
                    slot = &c;
            }
        }

        // Grant: round-robin from grantPtr over inputs.
        std::vector<const Candidate *> grant(numPorts, nullptr);
        for (PortId out = 0; out < numPorts; ++out) {
            if (out_used[out])
                continue;
            for (unsigned k = 0; k < numPorts; ++k) {
                const unsigned in = (grantPtr[out] + k) % numPorts;
                if (req[out][in] != nullptr) {
                    grant[out] = req[out][in];
                    break;
                }
            }
        }

        // Accept: round-robin from acceptPtr over outputs.
        for (PortId in = 0; in < numPorts; ++in) {
            if (in_used[in])
                continue;
            const Candidate *best = nullptr;
            for (unsigned k = 0; k < numPorts; ++k) {
                const unsigned out = (acceptPtr[in] + k) % numPorts;
                if (grant[out] != nullptr && grant[out]->in == in) {
                    best = grant[out];
                    break;
                }
            }
            if (best == nullptr)
                continue;
            in_used[best->in] = true;
            out_used[best->out] = true;
            m.push_back(*best);
            // iSLIP: pointers advance only on first-iteration accepts,
            // preserving the desynchronization property.
            if (it == 0) {
                grantPtr[best->out] = (best->in + 1) % numPorts;
                acceptPtr[best->in] = (best->out + 1) % numPorts;
            }
        }
    }
    return m;
}

PerfectSwitchScheduler::PerfectSwitchScheduler(unsigned num_ports)
    : numPorts(num_ports)
{
}

Matching
PerfectSwitchScheduler::schedule(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng)
{
    (void)rng;
    // Output conflicts do not exist: each input link simply transmits
    // its best candidate (one flit per input link per cycle — link
    // bandwidth still binds, switch bandwidth does not).
    Matching m;
    for (const auto &cands : per_input) {
        const Candidate *best = nullptr;
        for (const Candidate &c : cands) {
            if (c.in < numPorts && masks.busyIn.test(c.in))
                continue;
            if (best == nullptr || c.tier > best->tier ||
                (c.tier == best->tier && c.prio > best->prio))
                best = &c;
        }
        if (best != nullptr)
            m.push_back(*best);
    }
    return m;
}

} // namespace mmr
