#include "router/switch_sched.hh"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "base/logging.hh"
#include "sim/invariant.hh"

namespace mmr
{

namespace
{

/**
 * Port-usage mask for legality checks.  Switches up to 64 ports wide
 * fit in one machine word, so the every-cycle matching audit runs
 * without touching the heap; wider switches (not used by any current
 * configuration) fall back to a bit vector.
 */
class PortUseMask
{
  public:
    explicit PortUseMask(unsigned num_ports)
    {
        if (num_ports > 64)
            wide.resize(num_ports);
    }

    /** Mark @p p used; returns false when it was already used. */
    bool
    claim(unsigned p)
    {
        if (wide.size() == 0) {
            const std::uint64_t bit = std::uint64_t{1} << p;
            if (narrow & bit)
                return false;
            narrow |= bit;
            return true;
        }
        if (wide.test(p))
            return false;
        wide.set(p);
        return true;
    }

  private:
    std::uint64_t narrow = 0;
    BitVector wide;
};

} // namespace

bool
SwitchScheduler::validate(const Matching &m, unsigned num_ports,
                          bool allow_output_sharing)
{
    PortUseMask in_used(num_ports);
    PortUseMask out_used(num_ports);
    for (const Candidate &c : m) {
        if (c.in >= num_ports || c.out >= num_ports)
            return false;
        if (!in_used.claim(c.in))
            return false;
        if (!allow_output_sharing && !out_used.claim(c.out))
            return false;
    }
    return true;
}

void
SwitchScheduler::auditMatching(const Matching &m, unsigned num_ports,
                               bool allow_output_sharing)
{
    PortUseMask in_used(num_ports);
    PortUseMask out_used(num_ports);
    for (const Candidate &c : m) {
        if (c.in >= num_ports || c.out >= num_ports) {
            mmr_invariant_violated("matching-validity", "grant (",
                                   c.in, " -> ", c.out,
                                   ") references a port outside the ",
                                   num_ports, "-port switch");
        }
        if (!in_used.claim(c.in)) {
            mmr_invariant_violated("matching-validity", "input port ",
                                   c.in, " matched twice in one cycle");
        }
        if (!allow_output_sharing && !out_used.claim(c.out)) {
            mmr_invariant_violated("matching-validity",
                                   "output port ", c.out,
                                   " matched twice in one cycle");
        }
    }
}

std::unique_ptr<SwitchScheduler>
SwitchScheduler::create(const RouterConfig &cfg)
{
    switch (cfg.scheduler) {
      case SchedulerKind::BiasedPriority:
      case SchedulerKind::FixedPriority:
      case SchedulerKind::AgePriority:
        return std::make_unique<GreedyPriorityScheduler>(cfg.numPorts);
      case SchedulerKind::OutputDriven:
        return std::make_unique<OutputDrivenScheduler>(
            cfg.numPorts, cfg.schedIterations);
      case SchedulerKind::Autonet:
        return std::make_unique<AutonetScheduler>(cfg.numPorts,
                                                  cfg.schedIterations);
      case SchedulerKind::Islip:
        return std::make_unique<IslipScheduler>(cfg.numPorts,
                                                cfg.schedIterations);
      case SchedulerKind::Perfect:
        return std::make_unique<PerfectSwitchScheduler>(cfg.numPorts);
    }
    mmr_panic("unhandled scheduler kind");
}

GreedyPriorityScheduler::GreedyPriorityScheduler(unsigned num_ports)
    : numPorts(num_ports), req(num_ports), holder(num_ports),
      choice(num_ports), tried(num_ports), visited(num_ports),
      inTaken(num_ports), outTaken(num_ports)
{
}

namespace
{

/**
 * Kuhn-style augmenting search: try to route input @p in to one of
 * its candidate outputs, displacing lower-stage assignments along an
 * alternating path.  @p holder maps each output to the input holding
 * it (or numPorts when free), @p choice records which candidate each
 * input ended up with.
 */
bool
augment(PortId in, const std::vector<std::vector<const Candidate *>> &req,
        std::vector<unsigned> &holder,
        std::vector<const Candidate *> &choice,
        std::vector<bool> &visited, const std::vector<bool> &out_masked,
        unsigned num_ports)
{
    for (const Candidate *c : req[in]) {
        const PortId out = c->out;
        if (out_masked[out] || visited[out])
            continue;
        visited[out] = true;
        if (holder[out] == num_ports ||
            augment(static_cast<PortId>(holder[out]), req, holder, choice,
                    visited, out_masked, num_ports)) {
            holder[out] = in;
            choice[in] = c;
            return true;
        }
    }
    return false;
}

/**
 * Merge-path variant of augment(): input @p in's request list is the
 * contiguous run per_input[in][seg_begin[in], seg_end[in]) — the
 * current tier's slice of its pre-sorted candidate list — traversed in
 * place (no per-tier pointer vectors).  Skipping out_masked outputs
 * here is equivalent to filtering them while building req[]: both see
 * the tier-entry snapshot of out_masked, in the same candidate order.
 */
bool
augmentRun(unsigned in,
           const std::vector<std::vector<Candidate>> &per_input,
           const std::uint32_t *seg_begin, const std::uint32_t *seg_end,
           std::vector<unsigned> &holder,
           std::vector<const Candidate *> &choice,
           std::vector<bool> &visited, const std::vector<bool> &out_masked,
           unsigned num_ports)
{
    const Candidate *base = per_input[in].data();
    for (std::uint32_t i = seg_begin[in]; i < seg_end[in]; ++i) {
        const Candidate *c = base + i;
        const PortId out = c->out;
        if (out_masked[out] || visited[out])
            continue;
        visited[out] = true;
        if (holder[out] == num_ports ||
            augmentRun(holder[out], per_input, seg_begin, seg_end,
                       holder, choice, visited, out_masked, num_ports)) {
            holder[out] = in;
            choice[in] = c;
            return true;
        }
    }
    return false;
}

} // namespace

// mmr-lint: allow(hot-path-alloc) amortized: the matching and
// any per-call scratch reuse caller/member capacity across
// cycles (verified dynamically by test_zero_alloc).
void
GreedyPriorityScheduler::scheduleInto(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng, Matching &out)
{
    (void)rng; // tie-break randomness is pre-drawn in Candidate::tie
    out.clear();

    for (PortId p = 0; p < numPorts; ++p) {
        inTaken[p] = masks.busyIn.test(p);
        outTaken[p] = masks.busyOut.test(p);
    }

    // Router-shaped inputs — list p holds input port p's candidates,
    // already sorted by (tier, prio, tie) by the link scheduler, with
    // in-range ports — take the merge path, which skips the global
    // flat sort.  Anything else (hand-built test inputs) falls back to
    // the general path.  The scan is cheap: the lists were written
    // this cycle and are still cache-hot.
    bool router_shaped = per_input.size() <= numPorts;
    for (std::size_t p = 0; router_shaped && p < per_input.size(); ++p) {
        const auto &cands = per_input[p];
        for (std::size_t i = 0; i < cands.size(); ++i) {
            const Candidate &c = cands[i];
            if (c.in != static_cast<PortId>(p) || c.out >= numPorts) {
                router_shaped = false;
                break;
            }
            if (i == 0)
                continue;
            const Candidate &prev = cands[i - 1];
            const bool in_order =
                c.tier < prev.tier ||
                (c.tier == prev.tier &&
                 (c.prio < prev.prio ||
                  (c.prio == prev.prio && c.tie <= prev.tie)));
            if (!in_order) {
                router_shaped = false;
                break;
            }
        }
    }

    if (router_shaped)
        scheduleMerge(per_input, out);
    else
        scheduleFlat(per_input, out);
}

// mmr-lint: allow(hot-path-alloc) amortized: the matching and
// any per-call scratch reuse caller/member capacity across
// cycles (verified dynamically by test_zero_alloc).
void
GreedyPriorityScheduler::scheduleFlat(
    const std::vector<std::vector<Candidate>> &per_input, Matching &out)
{
    flat.clear();
    for (const auto &cands : per_input)
        for (const Candidate &c : cands)
            flat.push_back(&c);

    // Arbitrate by (tier, priority, stable tie).  Service tiers are
    // strict (§4.3): the matching is computed tier by tier, from
    // control down to best effort, and a lower tier may never displace
    // or reroute a grant won by a higher tier.  Within one tier,
    // candidates are admitted in priority order but later candidates
    // may re-route earlier same-tier inputs to alternates (augmenting
    // paths), yielding a maximum matching for the tier — the
    // "maximize the probability of assigning virtual channels to
    // every output link" goal of §4.4.
    std::sort(flat.begin(), flat.end(),
              [](const Candidate *a, const Candidate *b) {
                  if (a->tier != b->tier)
                      return a->tier > b->tier;
                  if (a->prio != b->prio)
                      return a->prio > b->prio;
                  return a->tie > b->tie;
              });

    std::size_t tier_begin = 0;
    while (tier_begin < flat.size()) {
        const int tier = flat[tier_begin]->tier;
        std::size_t tier_end = tier_begin;
        while (tier_end < flat.size() && flat[tier_end]->tier == tier)
            ++tier_end;

        // Per-input candidate lists for this tier, in priority order,
        // restricted to ports still free after the higher tiers.
        for (PortId p = 0; p < numPorts; ++p) {
            req[p].clear();
            holder[p] = numPorts;
            choice[p] = nullptr;
            tried[p] = false;
        }
        for (std::size_t i = tier_begin; i < tier_end; ++i) {
            const Candidate &c = *flat[i];
            if (c.in < numPorts && !inTaken[c.in] && !outTaken[c.out])
                req[c.in].push_back(&c);
        }
        for (std::size_t i = tier_begin; i < tier_end; ++i) {
            const Candidate &c = *flat[i];
            if (c.in >= numPorts || inTaken[c.in] || tried[c.in])
                continue;
            tried[c.in] = true; // one augmenting attempt per input
            std::fill(visited.begin(), visited.end(), false);
            augment(c.in, req, holder, choice, visited, outTaken,
                    numPorts);
        }
        for (PortId in = 0; in < numPorts; ++in) {
            if (choice[in] != nullptr) {
                out.push_back(*choice[in]);
                inTaken[in] = true;
                outTaken[choice[in]->out] = true;
            }
        }
        tier_begin = tier_end;
    }
}

// mmr-lint: allow(hot-path-alloc) amortized: segPos/segBegin/segEnd/
// attemptOrder are members sized once per port count; their capacity
// persists across cycles (verified dynamically by test_zero_alloc).
void
GreedyPriorityScheduler::scheduleMerge(
    const std::vector<std::vector<Candidate>> &per_input, Matching &out)
{
    const auto nin = static_cast<unsigned>(per_input.size());
    segPos.assign(nin, 0);
    segBegin.resize(nin);
    segEnd.resize(nin);
    if (attemptOrder.size() < nin)
        attemptOrder.resize(nin);

    // Tiers arrive in descending order within every list, so the
    // highest tier among the per-input cursors is the next tier the
    // flat sort would have produced; its candidates are exactly the
    // per-input runs at the cursors.
    for (;;) {
        constexpr int kNoTier = std::numeric_limits<int>::min();
        int tier = kNoTier;
        for (unsigned p = 0; p < nin; ++p) {
            if (segPos[p] < per_input[p].size())
                tier = std::max(tier, per_input[p][segPos[p]].tier);
        }
        if (tier == kNoTier)
            break;

        // Slice this tier's run out of each list.  The runs double as
        // the per-input request lists: they are already in (prio, tie)
        // order, which is what the flat path's req[] held.
        unsigned n_attempt = 0;
        for (unsigned p = 0; p < nin; ++p) {
            const auto &cands = per_input[p];
            segBegin[p] = segEnd[p] = segPos[p];
            if (segPos[p] < cands.size() &&
                cands[segPos[p]].tier == tier) {
                std::uint32_t e = segPos[p];
                while (e < cands.size() && cands[e].tier == tier)
                    ++e;
                segEnd[p] = e;
                segPos[p] = e;
                attemptOrder[n_attempt++] = p;
            }
        }

        // The flat path attempts one augmenting search per input, in
        // the order of each input's first appearance in the globally
        // sorted candidate stream — i.e. by the rank of its best
        // candidate.  Sorting one head per input reproduces it.
        std::sort(attemptOrder.begin(),
                  attemptOrder.begin() + n_attempt,
                  [&](unsigned a, unsigned b) {
                      const Candidate &ca = per_input[a][segBegin[a]];
                      const Candidate &cb = per_input[b][segBegin[b]];
                      if (ca.prio != cb.prio)
                          return ca.prio > cb.prio;
                      return ca.tie > cb.tie;
                  });

        for (PortId p = 0; p < numPorts; ++p) {
            holder[p] = numPorts;
            choice[p] = nullptr;
        }
        for (unsigned k = 0; k < n_attempt; ++k) {
            const unsigned in = attemptOrder[k];
            if (inTaken[in])
                continue;
            std::fill(visited.begin(), visited.end(), false);
            augmentRun(in, per_input, segBegin.data(), segEnd.data(),
                       holder, choice, visited, outTaken, numPorts);
        }
        for (PortId in = 0; in < numPorts; ++in) {
            if (choice[in] != nullptr) {
                out.push_back(*choice[in]);
                inTaken[in] = true;
                outTaken[choice[in]->out] = true;
            }
        }
    }
}

OutputDrivenScheduler::OutputDrivenScheduler(unsigned num_ports,
                                             unsigned iterations)
    : numPorts(num_ports), iters(iterations), grant(num_ports),
      accept(num_ports), inUsed(num_ports), outUsed(num_ports)
{
    mmr_assert(iters >= 1, "need at least one matching iteration");
}

// mmr-lint: allow(hot-path-alloc) amortized: the matching and
// any per-call scratch reuse caller/member capacity across
// cycles (verified dynamically by test_zero_alloc).
void
OutputDrivenScheduler::scheduleInto(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng, Matching &out)
{
    (void)rng;
    out.clear();
    for (PortId p = 0; p < numPorts; ++p) {
        inUsed[p] = masks.busyIn.test(p);
        outUsed[p] = masks.busyOut.test(p);
    }

    const auto better = [](const Candidate *a, const Candidate *b) {
        if (b == nullptr)
            return true;
        if (a->tier != b->tier)
            return a->tier > b->tier;
        if (a->prio != b->prio)
            return a->prio > b->prio;
        return a->tie > b->tie;
    };

    for (unsigned it = 0; it < iters; ++it) {
        // Grant: every free output picks the best request aimed at it.
        std::fill(grant.begin(), grant.end(), nullptr);
        for (const auto &cands : per_input) {
            for (const Candidate &c : cands) {
                if (c.in >= numPorts || inUsed[c.in] || outUsed[c.out])
                    continue;
                if (better(&c, grant[c.out]))
                    grant[c.out] = &c;
            }
        }
        // Accept: every input takes the best grant it received.
        std::fill(accept.begin(), accept.end(), nullptr);
        for (PortId o = 0; o < numPorts; ++o) {
            const Candidate *g = grant[o];
            if (g != nullptr && better(g, accept[g->in]))
                accept[g->in] = g;
        }
        bool progress = false;
        for (PortId in = 0; in < numPorts; ++in) {
            const Candidate *a = accept[in];
            if (a == nullptr)
                continue;
            inUsed[a->in] = true;
            outUsed[a->out] = true;
            out.push_back(*a);
            progress = true;
        }
        if (!progress)
            break;
    }
}

AutonetScheduler::AutonetScheduler(unsigned num_ports, unsigned iterations)
    : numPorts(num_ports), iters(iterations), requests(num_ports),
      grants(num_ports), offers(num_ports), inUsed(num_ports),
      outUsed(num_ports)
{
    mmr_assert(iters >= 1, "need at least one matching iteration");
}

// mmr-lint: allow(hot-path-alloc) amortized: the matching and
// any per-call scratch reuse caller/member capacity across
// cycles (verified dynamically by test_zero_alloc).
void
AutonetScheduler::scheduleInto(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng, Matching &out)
{
    out.clear();
    for (PortId p = 0; p < numPorts; ++p) {
        inUsed[p] = masks.busyIn.test(p);
        outUsed[p] = masks.busyOut.test(p);
    }

    for (unsigned it = 0; it < iters; ++it) {
        // Request phase: unmatched inputs request the outputs of all
        // their still-available candidates.
        for (auto &r : requests)
            r.clear();
        for (const auto &cands : per_input) {
            for (const Candidate &c : cands) {
                if (c.in < numPorts && !inUsed[c.in] &&
                    !outUsed[c.out])
                    requests[c.out].push_back(&c);
            }
        }

        // Grant phase: each free output grants one random requester.
        std::fill(grants.begin(), grants.end(), nullptr);
        for (PortId o = 0; o < numPorts; ++o) {
            auto &req = requests[o];
            if (outUsed[o] || req.empty())
                continue;
            grants[o] = req[rng.below(req.size())];
        }

        // Accept phase: each input accepts one random grant.
        for (auto &o : offers)
            o.clear();
        for (PortId o = 0; o < numPorts; ++o) {
            if (grants[o] != nullptr)
                offers[grants[o]->in].push_back(grants[o]);
        }
        bool progress = false;
        for (PortId in = 0; in < numPorts; ++in) {
            auto &offer = offers[in];
            if (offer.empty())
                continue;
            const Candidate *pick = offer[rng.below(offer.size())];
            inUsed[pick->in] = true;
            outUsed[pick->out] = true;
            out.push_back(*pick);
            progress = true;
        }
        if (!progress)
            break;
    }
}

IslipScheduler::IslipScheduler(unsigned num_ports, unsigned iterations)
    : numPorts(num_ports), iters(iterations), grantPtr(num_ports, 0),
      acceptPtr(num_ports, 0),
      req(static_cast<std::size_t>(num_ports) * num_ports),
      grant(num_ports), inUsed(num_ports), outUsed(num_ports)
{
    mmr_assert(iters >= 1, "need at least one matching iteration");
}

// mmr-lint: allow(hot-path-alloc) amortized: the matching and
// any per-call scratch reuse caller/member capacity across
// cycles (verified dynamically by test_zero_alloc).
void
IslipScheduler::scheduleInto(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng, Matching &out)
{
    (void)rng;
    out.clear();
    for (PortId p = 0; p < numPorts; ++p) {
        inUsed[p] = masks.busyIn.test(p);
        outUsed[p] = masks.busyOut.test(p);
    }

    for (unsigned it = 0; it < iters; ++it) {
        // Requests: candidate per (input, output); keep the best
        // candidate per pair so the grant can return it.
        std::fill(req.begin(), req.end(), nullptr);
        for (const auto &cands : per_input) {
            for (const Candidate &c : cands) {
                if (inUsed[c.in] || outUsed[c.out])
                    continue;
                const Candidate *&slot =
                    req[static_cast<std::size_t>(c.out) * numPorts + c.in];
                if (slot == nullptr || c.tier > slot->tier ||
                    (c.tier == slot->tier && c.prio > slot->prio))
                    slot = &c;
            }
        }

        // Grant: round-robin from grantPtr over inputs.
        std::fill(grant.begin(), grant.end(), nullptr);
        for (PortId o = 0; o < numPorts; ++o) {
            if (outUsed[o])
                continue;
            const std::size_t row = static_cast<std::size_t>(o) * numPorts;
            for (unsigned k = 0; k < numPorts; ++k) {
                const unsigned in = (grantPtr[o] + k) % numPorts;
                if (req[row + in] != nullptr) {
                    grant[o] = req[row + in];
                    break;
                }
            }
        }

        // Accept: round-robin from acceptPtr over outputs.
        for (PortId in = 0; in < numPorts; ++in) {
            if (inUsed[in])
                continue;
            const Candidate *best = nullptr;
            for (unsigned k = 0; k < numPorts; ++k) {
                const unsigned o = (acceptPtr[in] + k) % numPorts;
                if (grant[o] != nullptr && grant[o]->in == in) {
                    best = grant[o];
                    break;
                }
            }
            if (best == nullptr)
                continue;
            inUsed[best->in] = true;
            outUsed[best->out] = true;
            out.push_back(*best);
            // iSLIP: pointers advance only on first-iteration accepts,
            // preserving the desynchronization property.
            if (it == 0) {
                grantPtr[best->out] = (best->in + 1) % numPorts;
                acceptPtr[best->in] = (best->out + 1) % numPorts;
            }
        }
    }
}

PerfectSwitchScheduler::PerfectSwitchScheduler(unsigned num_ports)
    : numPorts(num_ports)
{
}

// mmr-lint: allow(hot-path-alloc) amortized: the matching and
// any per-call scratch reuse caller/member capacity across
// cycles (verified dynamically by test_zero_alloc).
void
PerfectSwitchScheduler::scheduleInto(
    const std::vector<std::vector<Candidate>> &per_input,
    const PortMasks &masks, Rng &rng, Matching &out)
{
    (void)rng;
    // Output conflicts do not exist: each input link simply transmits
    // its best candidate (one flit per input link per cycle — link
    // bandwidth still binds, switch bandwidth does not).
    out.clear();
    for (const auto &cands : per_input) {
        const Candidate *best = nullptr;
        for (const Candidate &c : cands) {
            if (c.in < numPorts && masks.busyIn.test(c.in))
                continue;
            if (best == nullptr || c.tier > best->tier ||
                (c.tier == best->tier && c.prio > best->prio))
                best = &c;
        }
        if (best != nullptr)
            out.push_back(*best);
    }
}

} // namespace mmr
