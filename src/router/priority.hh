/**
 * @file
 * Head-flit priority policies (§4.4, §5.1).
 *
 * The MMR proposal is *dynamic priority biasing*: the priority of the
 * flit at the head of an input virtual channel is recomputed every
 * flit cycle as the ratio of the delay the flit has experienced at the
 * switch to the inter-arrival time of its connection, so priorities of
 * fast connections grow at a faster rate and bandwidth distribution
 * follows the QoS metric rather than raw waiting time.
 *
 * The comparison baseline is a fixed (static, rate-derived) priority.
 * An age policy (priority == waiting time, the classical scheme the
 * paper contrasts with) is included for the ablation benches.
 */

#ifndef MMR_ROUTER_PRIORITY_HH
#define MMR_ROUTER_PRIORITY_HH

#include <string>

#include "base/logging.hh"
#include "base/types.hh"
#include "router/vc_state.hh"

namespace mmr
{

enum class PriorityPolicy
{
    Biased, ///< delay / inter-arrival, recomputed each cycle (MMR)
    Fixed,  ///< static rate-derived constant
    Age     ///< raw waiting time (time spent in the network)
};

std::string to_string(PriorityPolicy p);

/**
 * Service tier of a candidate (§4.3 ordering).  Larger is served
 * first: "The link scheduling algorithm first assigns all the flit
 * cycles in a round for CBR connections.  Then, it assigns the
 * permanent bandwidth to every VBR connection", then VBR excess
 * (permanent..peak) in priority order, and best effort last; control
 * packets pre-empt everything (§3.4).
 */
enum class ServiceTier : int
{
    BestEffort = 1,
    VbrExcess = 2,
    VbrPermanent = 3, ///< VBR within its permanent bandwidth
    Guaranteed = 4,   ///< CBR within its allocation
    Control = 5
};

/**
 * Compute the scheduling priority of the first ungranted flit of a
 * VC under the given policy.
 *
 * Inline: the link schedulers recompute this for every eligible VC
 * every flit cycle (dynamic priority biasing is per-cycle by design).
 *
 * @param policy priority policy in force
 * @param vc channel state (provides head flit and inter-arrival)
 * @param now current flit cycle
 */
inline double
headPriority(PriorityPolicy policy, const VcState &vc, Cycle now)
{
    const Flit &head = vc.ungrantedHead();
    const double waited =
        now >= head.readyTime
            ? static_cast<double>(now - head.readyTime)
            : 0.0;

    switch (policy) {
      case PriorityPolicy::Biased: {
        const double ia = vc.interArrival();
        // Connections without a declared rate (best-effort, control)
        // age like a 1-cycle inter-arrival stream.
        return ia > 0.0 ? waited / ia : waited;
      }
      case PriorityPolicy::Fixed: {
        // Static priority proportional to the connection rate: a
        // 120 Mb/s stream always beats a 64 Kb/s one.
        const double ia = vc.interArrival();
        return ia > 0.0 ? 1.0 / ia : 0.0;
      }
      case PriorityPolicy::Age:
        return waited;
    }
    mmr_panic("unhandled priority policy");
}

/**
 * Service tier of the VC's next grant given its per-round quota
 * consumption (§4.3).
 */
inline ServiceTier
serviceTier(const VcState &vc)
{
    switch (vc.trafficClass()) {
      case TrafficClass::Control:
        return ServiceTier::Control;
      case TrafficClass::CBR:
        return ServiceTier::Guaranteed;
      case TrafficClass::VBR:
        return vc.serviced() + vc.pendingGrants() < vc.permCycles()
                   ? ServiceTier::VbrPermanent
                   : ServiceTier::VbrExcess;
      case TrafficClass::BestEffort:
        return ServiceTier::BestEffort;
    }
    mmr_panic("unhandled traffic class");
}

} // namespace mmr

#endif // MMR_ROUTER_PRIORITY_HH
