/**
 * @file
 * Crossbar organizations and their silicon cost (§3.3).
 *
 * The MMR uses a multiplexed crossbar — as many ports as physical
 * links — because it "reduces silicon area by V and V^2, respectively,
 * with respect to a partially multiplexed and a fully de-multiplexed
 * crossbar, where V is the number of virtual channels per link".  The
 * price is arbitration every time an input link switches virtual
 * channels, plus a one-clock switch reconfiguration between flit
 * cycles.
 *
 * The functional data movement is performed by the router; this
 * module provides the analytic area/arbitration-delay model behind
 * bench_crossbar_tradeoff and the reconfiguration bookkeeping.
 */

#ifndef MMR_ROUTER_CROSSBAR_HH
#define MMR_ROUTER_CROSSBAR_HH

#include <cstdint>

#include "router/config.hh"

namespace mmr
{

/** Analytic silicon model of a crossbar organization. */
struct CrossbarModel
{
    CrossbarOrg org = CrossbarOrg::Multiplexed;
    unsigned numPorts = 8;
    unsigned vcsPerPort = 256;
    unsigned datapathBits = 128;

    /**
     * Crosspoint count — the dominant area term.  A multiplexed
     * crossbar is P x P, a partially de-multiplexed one (one
     * crossbar input per VC) is PV x P, a fully de-multiplexed one
     * PV x PV.
     */
    std::uint64_t crosspoints() const;

    /** Area in crosspoint-bit units (crosspoints x datapath width). */
    double areaUnits() const;

    /** Area relative to the multiplexed organization (1, V, V^2). */
    double areaRatioVsMultiplexed() const;

    /**
     * Arbitration fan-in: requesters one output arbiter must consider
     * per flit cycle.  Multiplexed crossbars arbitrate among P input
     * links (each pre-filtered to a candidate), de-multiplexed ones
     * among all P*V virtual channels.
     */
    unsigned arbiterFanIn() const;

    /**
     * Arbitration delay in gate-delay units: a tree arbiter over the
     * fan-in is ceil(log2(fanin)) levels deep.
     */
    unsigned arbitrationDelayUnits() const;

    /**
     * Whether the switch can recompute settings at the rate the link
     * requires (§6: 64-128 ns for 1-2 Gb/s links), given a gate delay.
     */
    bool meetsCycleTime(double gate_delay_ns, double flit_cycle_ns) const;
};

/** Reconfiguration accounting for the multiplexed crossbar (§3.4). */
class ReconfigCounter
{
  public:
    /**
     * Record the matching applied in a flit cycle; a reconfiguration
     * happens whenever the input/output assignment changes.
     *
     * @param same true when the new matching equals the previous one
     */
    void note(bool same);

    std::uint64_t cycles() const { return total; }
    std::uint64_t reconfigurations() const { return changes; }

    /** Fraction of flit cycles that required a switch reset. */
    double reconfigRate() const;

  private:
    std::uint64_t total = 0;
    std::uint64_t changes = 0;
};

} // namespace mmr

#endif // MMR_ROUTER_CROSSBAR_HH
