/**
 * @file
 * Virtual Channel Memory (§3.2, Figure 2).
 *
 * The MMR organizes each input port's virtual channels as a set of
 * low-order-interleaved RAM modules: each flit is striped across the
 * banks, flits of one VC occupy adjacent location sets, the write
 * address comes from the flow-control circuitry and the read address
 * from the link scheduler.
 *
 * This class provides (a) the functional storage — per-VC FIFOs with a
 * shared capacity pool and per-VC depth limits — and (b) the timing
 * model used to balance "memory access time, link speed, and crossbar
 * switching delay": a static analysis of the bandwidth a bank
 * configuration sustains, exercised by bench_vc_memory.
 */

#ifndef MMR_ROUTER_VC_MEMORY_HH
#define MMR_ROUTER_VC_MEMORY_HH

#include <vector>

#include "base/bitvector.hh"
#include "base/logging.hh"
#include "router/vc_state.hh"

namespace mmr
{

/** Static timing/bandwidth model of the interleaved buffer memory. */
struct VcMemoryModel
{
    unsigned banks = 8;        ///< number of interleaved RAM modules
    unsigned wordBits = 32;    ///< router internal datapath width
    double accessTimeNs = 6.0; ///< RAM module cycle time
    unsigned portsPerBank = 1; ///< 1 = single-ported (shared r/w)

    /** Words of storage one flit occupies. */
    unsigned wordsPerFlit(unsigned flit_bits) const;

    /**
     * Sustainable per-link bandwidth in bits/s: the banks must absorb
     * one flit write and supply one flit read per flit cycle.
     */
    double sustainableRateBps(unsigned flit_bits) const;

    /** Cycles (of accessTimeNs) needed to stream one flit in or out. */
    double flitAccessNs(unsigned flit_bits) const;

    /** True when the configuration keeps up with the given link. */
    bool matchesLink(unsigned flit_bits, double link_rate_bps) const;

    /**
     * Minimum bank count that sustains the link rate, holding the
     * other parameters fixed.
     */
    static unsigned minBanksFor(double link_rate_bps, unsigned flit_bits,
                                unsigned word_bits, double access_ns,
                                unsigned ports_per_bank = 1);
};

/** Functional per-input-port VC buffer pool. */
class VcMemory
{
  public:
    /**
     * @param vcs number of virtual channels at this input port
     * @param per_vc_depth per-VC depth limit in flits
     */
    VcMemory(unsigned vcs, unsigned per_vc_depth);

    unsigned numVcs() const { return static_cast<unsigned>(vcs.size()); }

    VcState &
    vc(VcId v)
    {
        mmr_assert(v < vcs.size(), "VC ", v, " out of range");
        return vcs[v];
    }

    const VcState &
    vc(VcId v) const
    {
        mmr_assert(v < vcs.size(), "VC ", v, " out of range");
        return vcs[v];
    }

    /**
     * Store an arriving flit into its VC; false (and counted) when the
     * VC is at its depth limit — upstream flow control should have
     * prevented this.
     */
    // mmr-lint: allow(hot-path-alloc) state.push is VcState::push into
    // the FlitFifo ring, which keeps its capacity once grown.
    bool
    deposit(VcId v, const Flit &f)
    {
        VcState &state = vc(v);
        if (state.depth() >= perVcDepth) {
            ++overflows;
            return false;
        }
        state.push(f);
        ++occupied;
        flitsAvail.set(v);
        schedDirty.set(v);
        return true;
    }

    /** Flits currently buffered across all VCs. */
    std::size_t occupancy() const { return occupied; }

    /** Rejected deposits (buffer overflow attempts). */
    std::uint64_t overflowCount() const { return overflows; }

    /** Per-VC free space in flits. */
    unsigned
    freeSlots(VcId v) const
    {
        const auto d = static_cast<unsigned>(vc(v).depth());
        return d >= perVcDepth ? 0 : perVcDepth - d;
    }

    unsigned depthLimit() const { return perVcDepth; }

    /** Bit vector of VCs with at least one buffered flit. */
    const BitVector &flitsAvailable() const { return flitsAvail; }

    /** Called by the router when a flit leaves a VC. */
    void
    noteDrained(VcId v)
    {
        mmr_assert(occupied > 0, "drain with zero occupancy");
        --occupied;
        if (vc(v).empty())
            flitsAvail.clear(v);
        schedDirty.set(v);
    }

    // ------------------------------------------------------------------
    // Scheduling-state change tracking (link-scheduler mask cache)
    // ------------------------------------------------------------------

    /**
     * Record that VC @p v's scheduling inputs changed (flit count,
     * pending grants, serviced counter, binding, mapping or quota),
     * so the link scheduler must re-evaluate its eligibility bit.
     * deposit() and noteDrained() mark automatically; the router marks
     * explicitly when it mutates the VcState behind the memory's back
     * (grant bookkeeping, segment install/remove, renegotiation).
     */
    void markSchedDirty(VcId v) { schedDirty.set(v); }

    /** Conservative form: every VC must be re-evaluated. */
    void markAllSchedDirty() { allDirty = true; }

    /** Dirty set accessors for the owning link scheduler. */
    bool allSchedDirty() const { return allDirty; }
    const BitVector &schedDirtyMask() const { return schedDirty; }

    void
    clearSchedDirty()
    {
        schedDirty.clearAll();
        allDirty = false;
    }

    /**
     * Occupancy conservation audit ('vc-occupancy'); panics when the
     * shared occupancy counter, the per-VC FIFO depths, the per-VC
     * depth limit, or the flits-available bit vector disagree.
     */
    void auditOccupancy() const;

    /**
     * VC state-machine legality audit ('vc-legality'); panics when a
     * free VC still holds flits, a mapping, or pending grants, or when
     * a mapped VC is not bound.
     */
    void auditLegality() const;

  private:
    std::vector<VcState> vcs;
    unsigned perVcDepth;
    std::size_t occupied = 0;
    std::uint64_t overflows = 0;
    BitVector flitsAvail;
    BitVector schedDirty;
    bool allDirty = true; ///< start conservative: full first rebuild
};

} // namespace mmr

#endif // MMR_ROUTER_VC_MEMORY_HH
