#include "router/priority.hh"

#include "base/logging.hh"

namespace mmr
{

std::string
to_string(PriorityPolicy p)
{
    switch (p) {
      case PriorityPolicy::Biased:
        return "biased";
      case PriorityPolicy::Fixed:
        return "fixed";
      case PriorityPolicy::Age:
        return "age";
    }
    return "?";
}

double
headPriority(PriorityPolicy policy, const VcState &vc, Cycle now)
{
    const Flit &head = vc.ungrantedHead();
    const double waited =
        now >= head.readyTime
            ? static_cast<double>(now - head.readyTime)
            : 0.0;

    switch (policy) {
      case PriorityPolicy::Biased: {
        const double ia = vc.interArrival();
        // Connections without a declared rate (best-effort, control)
        // age like a 1-cycle inter-arrival stream.
        return ia > 0.0 ? waited / ia : waited;
      }
      case PriorityPolicy::Fixed: {
        // Static priority proportional to the connection rate: a
        // 120 Mb/s stream always beats a 64 Kb/s one.
        const double ia = vc.interArrival();
        return ia > 0.0 ? 1.0 / ia : 0.0;
      }
      case PriorityPolicy::Age:
        return waited;
    }
    mmr_panic("unhandled priority policy");
}

ServiceTier
serviceTier(const VcState &vc)
{
    switch (vc.trafficClass()) {
      case TrafficClass::Control:
        return ServiceTier::Control;
      case TrafficClass::CBR:
        return ServiceTier::Guaranteed;
      case TrafficClass::VBR:
        return vc.serviced() + vc.pendingGrants() < vc.permCycles()
                   ? ServiceTier::VbrPermanent
                   : ServiceTier::VbrExcess;
      case TrafficClass::BestEffort:
        return ServiceTier::BestEffort;
    }
    mmr_panic("unhandled traffic class");
}

} // namespace mmr
