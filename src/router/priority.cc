#include "router/priority.hh"

#include "base/logging.hh"

namespace mmr
{

std::string
to_string(PriorityPolicy p)
{
    switch (p) {
      case PriorityPolicy::Biased:
        return "biased";
      case PriorityPolicy::Fixed:
        return "fixed";
      case PriorityPolicy::Age:
        return "age";
    }
    return "?";
}

} // namespace mmr
