/**
 * @file
 * Link phit buffers (§3.2).
 *
 * Small buffers at each physical input link, "deep enough to store all
 * the phits that arrive during a decoding period", i.e. while the VC
 * memory address for the incoming flit is being computed.  They also
 * provide the low-latency VCT path for short messages when the
 * requested output link is free.
 *
 * At flit-cycle granularity the decoding period is a sub-cycle effect;
 * functionally the buffer is a small FIFO of flits that must never
 * overflow (overflow means the decode pipeline was mis-provisioned,
 * which validate() makes impossible).
 */

#ifndef MMR_ROUTER_PHIT_BUFFER_HH
#define MMR_ROUTER_PHIT_BUFFER_HH

#include <deque>

#include "router/flit.hh"

namespace mmr
{

class PhitBuffer
{
  public:
    /**
     * @param depth_phits buffer capacity in phits
     * @param phits_per_flit how many phits one flit occupies
     */
    PhitBuffer(unsigned depth_phits, unsigned phits_per_flit);

    /** Capacity in whole flits. */
    unsigned flitCapacity() const { return depthPhits / phitsPerFlit; }

    bool full() const { return fifo.size() >= flitCapacity(); }
    bool empty() const { return fifo.empty(); }
    std::size_t depth() const { return fifo.size(); }

    /** Accept a flit arriving from the link; false when full. */
    bool push(const Flit &f);

    Flit pop();
    const Flit &head() const;

    /** Phits that would arrive during a decode of @p decode_cycles. */
    static unsigned requiredDepth(unsigned decode_cycles,
                                  unsigned phits_per_flit);

  private:
    unsigned depthPhits;
    unsigned phitsPerFlit;
    std::deque<Flit> fifo;
};

} // namespace mmr

#endif // MMR_ROUTER_PHIT_BUFFER_HH
