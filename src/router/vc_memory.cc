#include "router/vc_memory.hh"

#include <cmath>

#include "base/logging.hh"
#include "sim/invariant.hh"

namespace mmr
{

unsigned
VcMemoryModel::wordsPerFlit(unsigned flit_bits) const
{
    return (flit_bits + wordBits - 1) / wordBits;
}

double
VcMemoryModel::flitAccessNs(unsigned flit_bits) const
{
    // Low-order interleaving streams wordsPerFlit words across the
    // banks; each group of `banks` words takes one access time.
    const unsigned words = wordsPerFlit(flit_bits);
    const double groups =
        std::ceil(static_cast<double>(words) / banks);
    return groups * accessTimeNs;
}

double
VcMemoryModel::sustainableRateBps(unsigned flit_bits) const
{
    // Per flit cycle the memory performs one write and one read of a
    // full flit; single-ported banks serialize the two.
    const double accesses_per_flit =
        portsPerBank >= 2 ? 1.0 : 2.0;
    const double ns_per_flit = accesses_per_flit * flitAccessNs(flit_bits);
    return static_cast<double>(flit_bits) / (ns_per_flit * 1e-9);
}

bool
VcMemoryModel::matchesLink(unsigned flit_bits, double link_rate_bps) const
{
    return sustainableRateBps(flit_bits) >= link_rate_bps;
}

unsigned
VcMemoryModel::minBanksFor(double link_rate_bps, unsigned flit_bits,
                           unsigned word_bits, double access_ns,
                           unsigned ports_per_bank)
{
    for (unsigned b = 1; b <= 4096; ++b) {
        VcMemoryModel m{b, word_bits, access_ns, ports_per_bank};
        if (m.matchesLink(flit_bits, link_rate_bps))
            return b;
    }
    mmr_fatal("no feasible bank count sustains ", link_rate_bps,
              " b/s with ", word_bits, "-bit words at ", access_ns, " ns");
}

VcMemory::VcMemory(unsigned nvcs, unsigned per_vc_depth)
    : vcs(nvcs), perVcDepth(per_vc_depth), flitsAvail(nvcs),
      schedDirty(nvcs)
{
    mmr_assert(nvcs > 0, "VC memory needs at least one VC");
    mmr_assert(per_vc_depth > 0, "per-VC depth must be positive");
}

void
VcMemory::auditOccupancy() const
{
    std::size_t total = 0;
    for (std::size_t v = 0; v < vcs.size(); ++v) {
        const std::size_t d = vcs[v].depth();
        total += d;
        if (d > perVcDepth) {
            mmr_invariant_violated("vc-occupancy", "VC ", v, " holds ",
                                   d, " flits, above the depth limit ",
                                   perVcDepth);
        }
        if (flitsAvail.test(v) != (d > 0)) {
            mmr_invariant_violated(
                "vc-occupancy", "VC ", v, " has depth ", d,
                " but its flits-available bit is ",
                flitsAvail.test(v) ? "set" : "clear");
        }
    }
    if (total != occupied) {
        mmr_invariant_violated("vc-occupancy", "occupancy counter ",
                               occupied, " != summed FIFO depths ",
                               total);
    }
}

void
VcMemory::auditLegality() const
{
    for (std::size_t v = 0; v < vcs.size(); ++v) {
        const VcState &s = vcs[v];
        if (!s.bound()) {
            if (!s.empty()) {
                mmr_invariant_violated("vc-legality", "free VC ", v,
                                       " still buffers ", s.depth(),
                                       " flits");
            }
            if (s.mapped()) {
                mmr_invariant_violated("vc-legality", "free VC ", v,
                                       " still maps to output (",
                                       s.outPort(), ",", s.outVc(), ")");
            }
            if (s.pendingGrants() != 0) {
                mmr_invariant_violated("vc-legality", "free VC ", v,
                                       " has ", s.pendingGrants(),
                                       " pending grants");
            }
        }
        if (s.pendingGrants() > s.depth()) {
            mmr_invariant_violated("vc-legality", "VC ", v, " has ",
                                   s.pendingGrants(),
                                   " pending grants but only ",
                                   s.depth(), " buffered flits");
        }
    }
}

} // namespace mmr
