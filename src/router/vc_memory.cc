#include "router/vc_memory.hh"

#include <cmath>

#include "base/logging.hh"

namespace mmr
{

unsigned
VcMemoryModel::wordsPerFlit(unsigned flit_bits) const
{
    return (flit_bits + wordBits - 1) / wordBits;
}

double
VcMemoryModel::flitAccessNs(unsigned flit_bits) const
{
    // Low-order interleaving streams wordsPerFlit words across the
    // banks; each group of `banks` words takes one access time.
    const unsigned words = wordsPerFlit(flit_bits);
    const double groups =
        std::ceil(static_cast<double>(words) / banks);
    return groups * accessTimeNs;
}

double
VcMemoryModel::sustainableRateBps(unsigned flit_bits) const
{
    // Per flit cycle the memory performs one write and one read of a
    // full flit; single-ported banks serialize the two.
    const double accesses_per_flit =
        portsPerBank >= 2 ? 1.0 : 2.0;
    const double ns_per_flit = accesses_per_flit * flitAccessNs(flit_bits);
    return static_cast<double>(flit_bits) / (ns_per_flit * 1e-9);
}

bool
VcMemoryModel::matchesLink(unsigned flit_bits, double link_rate_bps) const
{
    return sustainableRateBps(flit_bits) >= link_rate_bps;
}

unsigned
VcMemoryModel::minBanksFor(double link_rate_bps, unsigned flit_bits,
                           unsigned word_bits, double access_ns,
                           unsigned ports_per_bank)
{
    for (unsigned b = 1; b <= 4096; ++b) {
        VcMemoryModel m{b, word_bits, access_ns, ports_per_bank};
        if (m.matchesLink(flit_bits, link_rate_bps))
            return b;
    }
    mmr_fatal("no feasible bank count sustains ", link_rate_bps,
              " b/s with ", word_bits, "-bit words at ", access_ns, " ns");
}

VcMemory::VcMemory(unsigned nvcs, unsigned per_vc_depth)
    : vcs(nvcs), perVcDepth(per_vc_depth), flitsAvail(nvcs)
{
    mmr_assert(nvcs > 0, "VC memory needs at least one VC");
    mmr_assert(per_vc_depth > 0, "per-VC depth must be positive");
}

VcState &
VcMemory::vc(VcId v)
{
    mmr_assert(v < vcs.size(), "VC ", v, " out of range");
    return vcs[v];
}

const VcState &
VcMemory::vc(VcId v) const
{
    mmr_assert(v < vcs.size(), "VC ", v, " out of range");
    return vcs[v];
}

bool
VcMemory::deposit(VcId v, const Flit &f)
{
    VcState &state = vc(v);
    if (state.depth() >= perVcDepth) {
        ++overflows;
        return false;
    }
    state.push(f);
    ++occupied;
    flitsAvail.set(v);
    return true;
}

unsigned
VcMemory::freeSlots(VcId v) const
{
    const auto d = static_cast<unsigned>(vc(v).depth());
    return d >= perVcDepth ? 0 : perVcDepth - d;
}

void
VcMemory::noteDrained(VcId v)
{
    mmr_assert(occupied > 0, "drain with zero occupancy");
    --occupied;
    if (vc(v).empty())
        flitsAvail.clear(v);
}

} // namespace mmr
