/**
 * @file
 * The MultiMedia Router (Figure 1).
 *
 * An NxN single-chip router with, per physical input link: a phit
 * buffer, a virtual channel memory (interleaved RAM banks holding V
 * virtual channels), and a link scheduler; plus a multiplexed crossbar
 * with a central switch scheduler, a routing and arbitration unit
 * holding channel mappings, per-output-link admission registers and
 * credit-based flow control.
 *
 * Time advances in flit cycles.  During cycle t the switch transmits
 * the flits of the matching computed in cycle t-1 while the schedulers
 * concurrently compute the matching for t+1 (§3.4); control packets
 * may cut through asynchronously when their ports are idle, making
 * those ports busy for the next arbitration.
 */

#ifndef MMR_ROUTER_ROUTER_HH
#define MMR_ROUTER_ROUTER_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "base/rng.hh"
#include "base/stats.hh"
#include "metrics/recorder.hh"
#include "obs/stats_registry.hh"
#include "router/admission.hh"
#include "router/config.hh"
#include "router/crossbar.hh"
#include "router/flow_control.hh"
#include "router/link_sched.hh"
#include "router/phit_buffer.hh"
#include "router/routing_unit.hh"
#include "router/switch_sched.hh"
#include "router/vc_memory.hh"
#include "sim/invariant.hh"
#include "sim/kernel.hh"

namespace mmr
{

/** Everything needed to install one router's share of a connection. */
struct SegmentParams
{
    ConnId id = kInvalidConn;
    TrafficClass klass = TrafficClass::CBR;
    PortId in = kInvalidPort;
    VcId inVc = kInvalidVc;
    PortId out = kInvalidPort;
    VcId outVc = kInvalidVc;
    unsigned allocCycles = 0; ///< CBR reservation (cycles/round)
    unsigned permCycles = 0;  ///< VBR permanent (cycles/round)
    unsigned peakCycles = 0;  ///< VBR peak (cycles/round)
    double interArrival = 0.0;
    int priority = 0;
    bool releaseWhenEmpty = false; ///< VCT packets free their VC
    bool ownsInputVc = true;  ///< input VC came from this router's pool
    bool ownsOutputVc = true; ///< output VC came from this router's pool
};

class MmrRouter : public Clocked
{
  public:
    /** Delivery callback for flits leaving an output port. */
    using SinkFn =
        std::function<void(PortId out, VcId out_vc, const Flit &, Cycle)>;

    /** Credit-return callback: a flit left input VC (in, vc). */
    using CreditFn = std::function<void(PortId in, VcId vc, Cycle)>;

    /** Invoked after a segment is removed (its params by value). */
    using SegmentFn = std::function<void(const SegmentParams &)>;

    explicit MmrRouter(const RouterConfig &cfg,
                       MetricsRecorder *metrics = nullptr);

    // ------------------------------------------------------------------
    // Connection management (§4.2) — local convenience API.  The
    // network layer performs admission and VC allocation hop by hop
    // (EPB) and calls installSegment directly.
    // ------------------------------------------------------------------

    /** Open a CBR connection through this router; kInvalidConn on
     * admission or VC exhaustion failure. */
    ConnId openCbr(PortId in, PortId out, double rate_bps);

    /** Open a VBR connection (permanent + peak rates, §4.2). */
    ConnId openVbr(PortId in, PortId out, double mean_bps,
                   double peak_bps, int priority);

    /** Open an unreserved best-effort channel between two ports. */
    ConnId openBestEffort(PortId in, PortId out);

    /** Close a locally-opened connection and release its resources. */
    bool close(ConnId id);

    /** Install a pre-reserved segment (admission already charged). */
    bool installSegment(const SegmentParams &p);

    /** Remove a segment, releasing VCs and admission state. */
    void removeSegment(ConnId id);

    const SegmentParams *connection(ConnId id) const;

    /** Number of installed segments. */
    std::size_t connectionCount() const { return conns.size(); }

    // ------------------------------------------------------------------
    // Dynamic bandwidth management (§4.3 control words)
    // ------------------------------------------------------------------

    /** Renegotiate a CBR connection's bandwidth; false if infeasible. */
    bool renegotiateBandwidth(ConnId id, double new_rate_bps);

    /** Change a VBR connection's user priority. */
    bool setConnectionPriority(ConnId id, int priority);

    /** Apply a decoded link control word (§4.3 command channel). */
    bool applyControlWord(const ControlWord &w);

    // ------------------------------------------------------------------
    // Data path
    // ------------------------------------------------------------------

    /** Inject a flit on an established connection (readyTime must be
     * set by the caller). False when the VC buffer is full. */
    bool inject(ConnId id, Flit f);

    /** Link-side arrival into an explicit (port, VC). */
    bool injectRaw(PortId in, VcId vc, const Flit &f);

    /**
     * Offer a control packet for asynchronous VCT cut-through (§3.4).
     * It enters the input link's phit buffer ("deep enough to store
     * all the phits that arrive during a decoding period"); from
     * there it is forwarded this cycle when the ports are idle,
     * buffered on a control channel for synchronous scheduling when
     * they are not, or — if even the phit buffer is full — refused
     * (false), modelling link-level back-pressure on probes.
     */
    bool offerControl(PortId in, PortId out, Flit f);

    /** Occupancy of an input link's phit buffer (flits). */
    std::size_t phitBufferDepth(PortId in) const;

    void setSink(SinkFn fn) { sink = std::move(fn); }
    void setCreditReturn(CreditFn fn) { creditReturn = std::move(fn); }
    void setSegmentRemoved(SegmentFn fn)
    {
        segmentRemoved = std::move(fn);
    }

    // ------------------------------------------------------------------
    // Clocked interface
    // ------------------------------------------------------------------
    MMR_HOT_PATH void evaluate(Cycle now) override;
    MMR_HOT_PATH void advance(Cycle now) override;

    // ------------------------------------------------------------------
    // Invariant auditing
    // ------------------------------------------------------------------

    /**
     * Register this router's conservation-law invariants with an
     * auditor (§3.1 credits, §4.2 admission): flit-conservation,
     * vc-occupancy, vc-legality, admission-ledger, matching-validity
     * and credit-ledger.  The checker must tick after the router so it
     * audits committed state.
     *
     * @param sweep_period stride for the sweeps over all P x V virtual
     *        channels; cheap per-cycle checks always run every cycle
     * @param prefix namespaces the invariant names ("router3.flit-
     *        conservation") so many routers can share one checker
     * @param extra_demand optional hook adding per-output bandwidth
     *        held outside installed segments (in-flight setup probes)
     *        to the admission-ledger audit; the vectors arrive sized
     *        numPorts and zeroed
     */
    using ExtraDemandFn =
        std::function<void(std::vector<unsigned> &alloc,
                           std::vector<unsigned> &peak)>;
    void registerInvariants(InvariantChecker &chk,
                            unsigned sweep_period = 16,
                            const std::string &prefix = {},
                            ExtraDemandFn extra_demand = nullptr);

    // ------------------------------------------------------------------
    // Observability (obs/ layer)
    // ------------------------------------------------------------------

    /** Granularity of registerStats: aggregate counters only, plus
     * per-port gauges, plus per-VC occupancy gauges. */
    enum class StatsDetail
    {
        Aggregate,
        PerPort,
        PerVc
    };

    /**
     * Register this router's statistics into @p reg under @p prefix
     * ("router0." -> "router0.flits.forwarded",
     * "router0.in2.occupancy", "router0.admission.out1.allocated_cycles",
     * "router0.in2.vc5.occupancy" at PerVc detail).  Probes read live
     * state on demand; registration itself adds no per-cycle cost.
     * The registry must not outlive the router.
     */
    void registerStats(StatsRegistry &reg, const std::string &prefix,
                       StatsDetail detail = StatsDetail::PerPort);

    // ------------------------------------------------------------------
    // Component access (tests, network layer, benches)
    // ------------------------------------------------------------------
    const RouterConfig &config() const { return cfg; }
    AdmissionController &admission() { return admit; }
    const AdmissionController &admission() const { return admit; }
    RoutingUnit &routing() { return routes; }
    VcMemory &inputMemory(PortId p);
    LinkScheduler &linkScheduler(PortId p);
    CreditManager &credits() { return creditMgr; }
    Rng &rng() { return rand; }

    // Statistics
    std::uint64_t flitsInjected() const { return statInjected; }
    std::uint64_t flitsForwarded() const { return statForwarded; }
    std::uint64_t forwardedByClass(TrafficClass c) const;
    std::uint64_t bypassHits() const { return statBypassHits; }
    std::uint64_t bypassMisses() const { return statBypassMisses; }
    std::uint64_t controlDrops() const { return statControlDrops; }
    std::uint64_t injectionRejects() const { return statInjectReject; }
    const StreamStat &matchingSize() const { return statMatchSize; }
    const ReconfigCounter &reconfigs() const { return reconfig; }

  private:
    ConnId nextLocalConn();
    bool creditAvailable(const VcState &vc) const;
    void applyMatching(Cycle now);
    void processBypass(Cycle now);
    void deliver(const Candidate &grant, Flit &&flit, Cycle now,
                 const StageSample &stages);
    void maybeAutoRelease(ConnId id, PortId in, VcId in_vc);

    RouterConfig cfg;
    MetricsRecorder *metrics;
    Rng rand;

    std::vector<VcMemory> inputMems;       ///< one per input port
    std::vector<LinkScheduler> linkScheds; ///< one per input port
    std::unique_ptr<SwitchScheduler> sched;
    AdmissionController admit;
    RoutingUnit routes;
    CreditManager creditMgr;

    std::unordered_map<ConnId, SegmentParams> conns;
    /** Lazily-opened control channels keyed by in * P + out. */
    std::unordered_map<unsigned, ConnId> controlChans;
    ConnId localConnSeq = 0;

    Matching currentMatching; ///< applied during this cycle
    Matching nextMatching;    ///< computed this cycle, applied next
    /** Stage-latency stamps parallel to the matchings (same index =
     * same grant): issue order equals apply order, so the per-grant
     * decomposition never has to live inside the scanned VC state. */
    std::vector<VcState::GrantStamp> currentStamps;
    std::vector<VcState::GrantStamp> nextStamps;
    PortMasks bypassMasks;    ///< ports claimed by VCT cut-throughs

    /**
     * Per-input-link phit buffers for asynchronous control traffic
     * (§3.2).  The requested output port rides alongside each
     * buffered flit (in hardware it is part of the decoded header).
     */
    std::vector<PhitBuffer> phitBufs;
    std::vector<std::deque<PortId>> phitBufOuts;
    unsigned phitBuffered = 0; ///< total flits across all phit buffers

    /** Installed connections with releaseWhenEmpty set; when zero the
     * per-forwarded-flit auto-release probe is skipped entirely. */
    unsigned autoReleaseConns = 0;

    SinkFn sink;
    CreditFn creditReturn;
    SegmentFn segmentRemoved;

    /** One buffered control packet awaiting cut-through or demotion. */
    struct BypassReq
    {
        PortId in;
        PortId out;
        Flit flit;
    };

    // Per-cycle scratch, reused so steady state allocates nothing.
    std::vector<std::vector<Candidate>> candScratch;
    std::vector<bool> bypassInBusy;
    std::vector<bool> bypassOutBusy;
    std::vector<BypassReq> bypassPending;
    std::vector<std::pair<PortId, PortId>> configScratch;
    std::vector<std::pair<PortId, PortId>> lastConfig; ///< reconfig cmp

    // Hot statistic counters (the values StatsRegistry probes bind
    // to), bumped every cycle by whichever shard worker owns this
    // router.  Cache-line aligned so the block never shares a line
    // with memory another shard's thread writes — with one router per
    // heap allocation the only cross-thread neighbors are allocator-
    // adjacent objects, and the alignment severs exactly that.
    alignas(64) std::uint64_t statInjected = 0;
    std::uint64_t statForwarded = 0;
    std::uint64_t statByClass[4] = {0, 0, 0, 0};
    std::uint64_t statBypassHits = 0;
    std::uint64_t statBypassMisses = 0;
    std::uint64_t statControlDrops = 0;
    std::uint64_t statInjectReject = 0;
    StreamStat statMatchSize;
    ReconfigCounter reconfig;
};

} // namespace mmr

#endif // MMR_ROUTER_ROUTER_HH
