#include "router/admission.hh"

#include <cmath>

#include "base/logging.hh"

namespace mmr
{

AdmissionController::AdmissionController(unsigned num_ports,
                                         unsigned cycles_per_round,
                                         double concurrency_factor,
                                         double best_effort_reserve)
    : roundCycles(cycles_per_round), concurrencyFactor(concurrency_factor),
      links(num_ports)
{
    mmr_assert(num_ports > 0, "admission needs at least one port");
    mmr_assert(cycles_per_round > 0, "round length must be positive");
    mmr_assert(concurrency_factor >= 1.0, "concurrency factor < 1");
    mmr_assert(best_effort_reserve >= 0.0 && best_effort_reserve < 1.0,
               "best-effort reserve out of [0,1)");
    reservable = static_cast<unsigned>(std::floor(
        static_cast<double>(roundCycles) * (1.0 - best_effort_reserve)));
}

AdmissionController::LinkRegisters &
AdmissionController::regs(PortId out)
{
    mmr_assert(out < links.size(), "output port ", out, " out of range");
    return links[out];
}

const AdmissionController::LinkRegisters &
AdmissionController::regs(PortId out) const
{
    mmr_assert(out < links.size(), "output port ", out, " out of range");
    return links[out];
}

bool
AdmissionController::tryAdmitCbr(PortId out, unsigned alloc_cycles)
{
    LinkRegisters &r = regs(out);
    if (r.allocated + alloc_cycles > reservable)
        return false;
    r.allocated += alloc_cycles;
    return true;
}

void
AdmissionController::releaseCbr(PortId out, unsigned alloc_cycles)
{
    LinkRegisters &r = regs(out);
    mmr_assert(r.allocated >= alloc_cycles,
               "releasing more than allocated");
    r.allocated -= alloc_cycles;
}

bool
AdmissionController::tryAdmitVbr(PortId out, unsigned perm_cycles,
                                 unsigned peak_cycles)
{
    mmr_assert(peak_cycles >= perm_cycles, "VBR peak below permanent");
    LinkRegisters &r = regs(out);
    // Condition (i): permanent bandwidth fits in the round.
    if (r.allocated + perm_cycles > reservable)
        return false;
    // Condition (ii): total peak within round x concurrency factor.
    const double peak_limit =
        static_cast<double>(reservable) * concurrencyFactor;
    if (static_cast<double>(r.peak + peak_cycles) > peak_limit)
        return false;
    r.allocated += perm_cycles;
    r.peak += peak_cycles;
    return true;
}

void
AdmissionController::releaseVbr(PortId out, unsigned perm_cycles,
                                unsigned peak_cycles)
{
    LinkRegisters &r = regs(out);
    mmr_assert(r.allocated >= perm_cycles && r.peak >= peak_cycles,
               "releasing more VBR bandwidth than allocated");
    r.allocated -= perm_cycles;
    r.peak -= peak_cycles;
}

bool
AdmissionController::renegotiateCbr(PortId out, unsigned old_cycles,
                                    unsigned new_cycles)
{
    LinkRegisters &r = regs(out);
    mmr_assert(r.allocated >= old_cycles,
               "renegotiating more than allocated");
    const unsigned base = r.allocated - old_cycles;
    if (base + new_cycles > reservable)
        return false;
    r.allocated = base + new_cycles;
    return true;
}

unsigned
AdmissionController::allocatedCycles(PortId out) const
{
    return regs(out).allocated;
}

unsigned
AdmissionController::peakCycles(PortId out) const
{
    return regs(out).peak;
}

unsigned
AdmissionController::availableCycles(PortId out) const
{
    const LinkRegisters &r = regs(out);
    return r.allocated >= reservable ? 0 : reservable - r.allocated;
}

} // namespace mmr
