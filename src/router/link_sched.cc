#include "router/link_sched.hh"

#include <algorithm>
#include <bit>

#include "base/logging.hh"

namespace mmr
{

LinkScheduler::LinkScheduler(PortId port, VcMemory *memory,
                             unsigned num_ports,
                             PriorityPolicy policy,
                             unsigned cycles_per_round,
                             bool random_candidates)
    : inPort(port), mem(memory), numOutPorts(num_ports),
      prioPolicy(policy), roundLen(cycles_per_round),
      randomCandidates(random_candidates),
      nextRoundStart(cycles_per_round)
{
    mmr_assert(mem != nullptr, "link scheduler needs a VC memory");
    mmr_assert(roundLen > 0, "round length must be positive");
}

bool
LinkScheduler::rollRoundIfNeeded(Cycle now)
{
    if (now < nextRoundStart)
        return false;
    do {
        nextRoundStart += roundLen;
        ++rounds;
    } while (now >= nextRoundStart);
    // One sweep regardless of how many boundaries were crossed: the
    // counters are simply zeroed, so catching up multiple rounds at
    // once is equivalent.
    for (VcId v = 0; v < mem->numVcs(); ++v)
        mem->vc(v).newRound();
    return true;
}

bool
LinkScheduler::eligible(const VcState &vc,
                        const CreditManager &credits) const
{
    if (!vc.bound() || !vc.mapped() || !vc.hasUngrantedFlit())
        return false;
    // credits_available: space downstream on the mapped output VC.
    if (!credits.hasCredit(vc.outPort(), vc.outVc()))
        return false;
    // Per-round quota: grants issued this round must stay within the
    // allocation (CBR) or the peak (VBR); §4.3.
    const unsigned quota = vc.quotaThisRound();
    if (quota != ~0u && vc.serviced() + vc.pendingGrants() >= quota)
        return false;
    return true;
}

BitVector
LinkScheduler::eligibleMask(Cycle now, const CreditManager &credits) const
{
    (void)now;
    BitVector mask = mem->flitsAvailable();
    for (std::size_t v = mask.findFirst(); v < mask.size();
         v = mask.findNext(v)) {
        if (!eligible(mem->vc(static_cast<VcId>(v)), credits))
            mask.clear(v);
    }
    return mask;
}

// mmr-lint: allow(hot-path-alloc) amortized: eligMask is sized once
// for the VC count and only reassigned in place thereafter.
void
LinkScheduler::refreshEligMask(const CreditManager &credits, bool force)
{
    if (eligMask.size() != mem->numVcs())
        eligMask.resize(mem->numVcs());

    const std::uint64_t credit_ver = credits.schedVersion();
    if (force || !eligValid || credit_ver != seenCreditVersion ||
        mem->allSchedDirty()) {
        // Full rebuild: the §4.1 AND over the status vectors, seeded
        // from flits_available (eligibility implies a buffered flit)
        // and narrowed per set bit.
        eligMask.clearAll();
        mem->flitsAvailable().forEachSet([this, &credits](std::size_t v) {
            if (eligible(mem->vc(static_cast<VcId>(v)), credits))
                eligMask.set(v);
        });
        eligValid = true;
        ++fullRebuilds;
    } else {
        // Incremental, word-parallel: only the VCs whose scheduling
        // inputs moved since the last refresh can have changed their
        // bit.  A dirty VC with no buffered flit cannot be eligible
        // (eligible() requires an ungranted flit, which requires a
        // buffered one), so whole words of drained channels are
        // cleared with one AND-NOT and only the dirty VCs that still
        // hold flits pay the per-channel eligibility test — the
        // word-level form of the §4.1 status-vector AND.
        const BitVector &avail = mem->flitsAvailable();
        mem->schedDirtyMask().forEachSetWord(
            [this, &credits, &avail](std::size_t wi, std::uint64_t d) {
                eligMask.clearWordBits(wi, d);
                std::uint64_t live = d & avail.word(wi);
                while (live) {
                    const auto v = static_cast<VcId>(
                        wi * BitVector::kWordBits +
                        static_cast<std::size_t>(std::countr_zero(live)));
                    if (eligible(mem->vc(v), credits))
                        eligMask.set(v);
                    live &= live - 1;
                }
            });
        ++incrementalRefreshes;
    }
    seenCreditVersion = credit_ver;
    mem->clearSchedDirty();
}

// mmr-lint: allow(hot-path-alloc) amortized: scratch/touchedOutputs/
// bestPerOutput and the caller-owned `out` all keep their capacity
// across cycles (verified dynamically by test_zero_alloc).
void
LinkScheduler::collectCandidates(Cycle now, unsigned max_candidates,
                                 const CreditManager &credits, Rng &rng,
                                 std::vector<Candidate> &out)
{
    const bool rolled = rollRoundIfNeeded(now);
    refreshEligMask(credits, rolled);

    const auto by_rank = [](const Candidate &a, const Candidate &b) {
        if (a.tier != b.tier)
            return a.tier > b.tier;
        if (a.prio != b.prio)
            return a.prio > b.prio;
        return a.tie > b.tie;
    };

    // One candidate slot per output port: offering two channels bound
    // for the same output from the same input is redundant (only one
    // flit can cross the input link per cycle), and spreading the
    // candidate set over distinct outputs is what "increases the
    // probability of fully utilizing the switch bandwidth" (§4.4).
    if (bestPerOutput.empty())
        bestPerOutput.assign(numOutPorts, kInvalidVc);
    scratch.clear();
    touchedOutputs.clear();

    eligMask.forEachSet([&](std::size_t i) {
        const auto v = static_cast<VcId>(i);
        const VcState &vc = mem->vc(v);

        Candidate c;
        c.in = inPort;
        c.vc = v;
        c.out = vc.outPort();
        c.outVc = vc.outVc();
        c.conn = vc.conn();
        c.tier = static_cast<int>(serviceTier(vc));

        if (c.tier == static_cast<int>(ServiceTier::VbrExcess)) {
            // §4.3: excess bandwidth is serviced connection by
            // connection in user-priority order; a stable key (not the
            // per-cycle aging priority) realizes "completely service
            // one connection before moving to the next".
            c.prio = static_cast<double>(vc.userPriority()) * 1e6 -
                     static_cast<double>(vc.conn());
        } else {
            c.prio = headPriority(prioPolicy, vc, now);
        }
        c.tie = randomCandidates ? rng.uniform() : vc.tieBreak();

        const std::size_t slot = c.out;
        if (bestPerOutput[slot] == kInvalidVc) {
            bestPerOutput[slot] = static_cast<VcId>(scratch.size());
            touchedOutputs.push_back(slot);
            scratch.push_back(c);
        } else if (by_rank(c, scratch[bestPerOutput[slot]])) {
            scratch[bestPerOutput[slot]] = c;
        }
    });
    for (std::size_t slot : touchedOutputs)
        bestPerOutput[slot] = kInvalidVc;

    if (randomCandidates) {
        // Autonet mode: the input link proposes a random subset of the
        // eligible channels (control still pre-empts: sort tiers
        // first, shuffle within by the random tie only).
        std::sort(scratch.begin(), scratch.end(),
                  [](const Candidate &a, const Candidate &b) {
                      if (a.tier != b.tier)
                          return a.tier > b.tier;
                      return a.tie > b.tie;
                  });
    } else if (scratch.size() > max_candidates) {
        std::partial_sort(scratch.begin(),
                          scratch.begin() + max_candidates, scratch.end(),
                          by_rank);
    } else {
        std::sort(scratch.begin(), scratch.end(), by_rank);
    }

    const std::size_t n =
        std::min<std::size_t>(max_candidates, scratch.size());
    out.insert(out.end(), scratch.begin(), scratch.begin() + n);
}

} // namespace mmr
