#include "sim/event_queue.hh"

#include "sim/invariant.hh"

namespace mmr
{

EventQueue::EventId
EventQueue::schedule(Cycle when, Callback fn)
{
    if (when < lastRun) {
        mmr_invariant_violated("event-monotonic", "scheduling at cycle ",
                               when, " after runUntil(", lastRun, ")");
    }
    const EventId id = nextId++;
    heap.push(Entry{when, id, std::move(fn)});
    pending.insert(id);
    return id;
}

void
EventQueue::cancel(EventId id)
{
    // Only a still-pending event may move to the cancelled set;
    // cancelling a fired (or already cancelled) id must be a no-op or
    // the pending census drifts.
    if (pending.erase(id) > 0)
        cancelled.insert(id);
}

Cycle
EventQueue::nextCycle() const
{
    mmr_assert(!empty(), "nextCycle() on empty event queue");
    // The heap top may be a cancelled entry; callers use nextCycle()
    // only as a hint, so report the raw top.
    return heap.top().when;
}

void
EventQueue::runUntil(Cycle now)
{
    if (now < lastRun) {
        mmr_invariant_violated("event-monotonic", "runUntil(", now,
                               ") after runUntil(", lastRun,
                               ") would fire events backwards in time");
    }
    lastRun = now;
    while (!heap.empty() && heap.top().when <= now) {
        Entry e = heap.top();
        heap.pop();
        if (cancelled.erase(e.id) > 0)
            continue;
        pending.erase(e.id);
        e.fn();
    }
}

} // namespace mmr
