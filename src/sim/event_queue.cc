#include "sim/event_queue.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mmr
{

EventQueue::EventId
EventQueue::schedule(Cycle when, Callback fn)
{
    const EventId id = nextId++;
    heap.push(Entry{when, id, std::move(fn)});
    ++live;
    return id;
}

void
EventQueue::cancel(EventId id)
{
    if (id >= nextId)
        return;
    if (!isCancelled(id)) {
        cancelled.push_back(id);
        if (live > 0)
            --live;
    }
}

Cycle
EventQueue::nextCycle() const
{
    mmr_assert(!empty(), "nextCycle() on empty event queue");
    // The heap top may be a cancelled entry; callers use nextCycle()
    // only as a hint, so report the raw top.
    return heap.top().when;
}

void
EventQueue::runUntil(Cycle now)
{
    while (!heap.empty() && heap.top().when <= now) {
        Entry e = heap.top();
        heap.pop();
        if (isCancelled(e.id)) {
            cancelled.erase(
                std::find(cancelled.begin(), cancelled.end(), e.id));
            continue;
        }
        --live;
        e.fn();
    }
}

bool
EventQueue::isCancelled(EventId id) const
{
    return std::find(cancelled.begin(), cancelled.end(), id) !=
           cancelled.end();
}

} // namespace mmr
