/**
 * @file
 * Cycle-driven simulation kernel.
 *
 * Everything in the router operates in lock-step flit cycles (§3.4):
 * during one flit cycle the switch transmits the flits chosen in the
 * previous cycle while schedulers concurrently compute the next
 * matching, then the switch reconfigures.  The kernel captures that as
 * a two-phase tick: evaluate() (combinational work that reads current
 * state) followed by advance() (state commit), run over all registered
 * components each cycle.  The two-phase split lets components observe
 * a consistent snapshot regardless of registration order.
 */

#ifndef MMR_SIM_KERNEL_HH
#define MMR_SIM_KERNEL_HH

#include <functional>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/event_queue.hh"

namespace mmr
{

class InvariantChecker;

/** Interface for anything ticked by the kernel. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Phase 1: compute, reading this-cycle state. */
    virtual void evaluate(Cycle now) = 0;

    /** Phase 2: commit state for the next cycle. */
    virtual void advance(Cycle now) = 0;
};

class Kernel
{
  public:
    /** Withdraws the published simclock cycle (see step()). */
    ~Kernel();

    /** Register a component; not owned. Order is evaluation order. */
    void add(Clocked *c, std::string name = {});

    /** Run @p cycles flit cycles. */
    void run(Cycle cycles);

    /** Run a single flit cycle. */
    void step();

    Cycle now() const { return currentCycle; }

    EventQueue &events() { return queue; }

    /** Register the kernel's own invariants (event-queue time
     * monotonicity) with an auditor. */
    void registerInvariants(InvariantChecker &chk) const;

    std::size_t componentCount() const { return components.size(); }

    // ------------------------------------------------------------------
    // Self-profiling (observability layer)
    // ------------------------------------------------------------------

    /**
     * Attribute wall-clock time to each component's evaluate+advance
     * while stepping.  Off by default: profiling adds two clock reads
     * per component per phase, so enable it only when the attribution
     * is wanted (the cycles/sec summary does not need it).
     */
    void enableProfiling(bool on) { profiling = on; }
    bool profilingEnabled() const { return profiling; }

    /** Cycles stepped since construction (profiled or not). */
    Cycle cyclesRun() const { return currentCycle; }

    /** Component names in registration order ("" when unnamed). */
    std::vector<std::string> componentNames() const;

    /** Accumulated seconds per component (registration order); all
     * zero unless profiling was enabled while stepping. */
    const std::vector<double> &componentSeconds() const
    {
        return compSeconds;
    }

  private:
    void stepProfiled();

    struct Item
    {
        Clocked *component;
        std::string name;
    };

    std::vector<Item> components;
    std::vector<double> compSeconds;
    EventQueue queue;
    Cycle currentCycle = 0;
    bool profiling = false;
};

} // namespace mmr

#endif // MMR_SIM_KERNEL_HH
