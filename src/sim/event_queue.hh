/**
 * @file
 * Discrete-event queue for network-level timers.
 *
 * The router core advances strictly cycle by cycle, but some network
 * machinery is naturally event-driven: probe timeouts, connection
 * teardown timers, source start/stop events.  This queue schedules
 * callbacks at absolute cycles with a stable FIFO order for events at
 * the same cycle (insertion order breaks ties), which keeps runs
 * deterministic.
 */

#ifndef MMR_SIM_EVENT_QUEUE_HH
#define MMR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "base/types.hh"

namespace mmr
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;
    using EventId = std::uint64_t;

    /** Schedule @p fn at absolute cycle @p when. Returns a handle. */
    EventId schedule(Cycle when, Callback fn);

    /** Cancel a pending event; no-op when already fired or cancelled. */
    void cancel(EventId id);

    /** Cycle of the earliest pending event. */
    bool empty() const { return live == 0; }
    Cycle nextCycle() const;

    /** Run every event scheduled at or before @p now. */
    void runUntil(Cycle now);

    std::size_t pendingCount() const { return live; }

  private:
    struct Entry
    {
        Cycle when;
        EventId id;
        Callback fn;
        bool operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    std::vector<EventId> cancelled;
    EventId nextId = 0;
    std::size_t live = 0;

    bool isCancelled(EventId id) const;
};

} // namespace mmr

#endif // MMR_SIM_EVENT_QUEUE_HH
