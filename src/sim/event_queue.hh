/**
 * @file
 * Discrete-event queue for network-level timers.
 *
 * The router core advances strictly cycle by cycle, but some network
 * machinery is naturally event-driven: probe timeouts, connection
 * teardown timers, source start/stop events.  This queue schedules
 * callbacks at absolute cycles with a stable FIFO order for events at
 * the same cycle (insertion order breaks ties), which keeps runs
 * deterministic.
 *
 * Time monotonicity is an enforced invariant ('event-monotonic'):
 * runUntil() may never move backwards and events may not be scheduled
 * before the cycle already processed — either would fire callbacks in
 * non-causal order and silently corrupt simulated time.
 */

#ifndef MMR_SIM_EVENT_QUEUE_HH
#define MMR_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "base/types.hh"

namespace mmr
{

class EventQueue
{
  public:
    using Callback = std::function<void()>;
    using EventId = std::uint64_t;

    /** Schedule @p fn at absolute cycle @p when. Returns a handle.
     * Panics when @p when precedes the cycle already processed. */
    EventId schedule(Cycle when, Callback fn);

    /** Cancel a pending event; no-op when already fired or cancelled. */
    void cancel(EventId id);

    /** Cycle of the earliest pending event. */
    bool empty() const { return pending.empty(); }
    Cycle nextCycle() const;

    /** Run every event scheduled at or before @p now.  Panics when
     * @p now precedes an earlier runUntil() cycle. */
    void runUntil(Cycle now);

    std::size_t pendingCount() const { return pending.size(); }

    /** Latest cycle passed to runUntil(); 0 before the first run. */
    Cycle lastRunCycle() const { return lastRun; }

  private:
    struct Entry
    {
        Cycle when;
        EventId id;
        Callback fn;
        bool operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : id > o.id;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
    /** Ids scheduled and neither fired nor cancelled.  Never iterated,
     * so the unordered container cannot perturb determinism. */
    std::unordered_set<EventId> pending;
    /** Cancelled ids whose heap entries have not been popped yet. */
    std::unordered_set<EventId> cancelled;
    EventId nextId = 0;
    Cycle lastRun = 0;
};

} // namespace mmr

#endif // MMR_SIM_EVENT_QUEUE_HH
