/**
 * @file
 * Intra-run shard worker pool.
 *
 * The network partitions its routers into contiguous-id shards; every
 * flit cycle each shard's routers evaluate (and later advance) on a
 * worker thread, synchronized by a two-phase barrier.  The pool is
 * that execution engine: persistent worker threads (spawn once, not
 * per cycle) that wait on a generation counter, run one phase
 * callback for their shard, and signal completion.  The coordinator
 * thread runs shard 0 itself, so a pool of S shards spawns S-1
 * threads and a 1-shard pool spawns none and runs everything inline —
 * the serial path is untouched by construction.
 *
 * Synchronization is a spin-then-yield loop over acquire/release
 * atomics: on the 1-core bench host a pure spin would livelock the
 * scheduler, while a mutex/condvar round trip per phase (two phases x
 * every flit cycle) would dominate the cycle cost on many-core hosts.
 * All data written by the coordinator before release-publishing the
 * generation counter is visible to workers after their acquire read,
 * and everything workers wrote is visible to the coordinator after it
 * acquires the completion count — the pool is the only inter-thread
 * handshake the sharded network needs.
 */

#ifndef MMR_SIM_SHARD_POOL_HH
#define MMR_SIM_SHARD_POOL_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "base/types.hh"

namespace mmr
{

class ShardPool
{
  public:
    /** Callback run once per shard per phase: fn(shard_id). */
    using PhaseFn = std::function<void(unsigned)>;

    /** Create a pool for @p shards shards (>= 1). */
    explicit ShardPool(unsigned shards);
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    unsigned shards() const { return numShards; }

    /**
     * Run @p fn for every shard id in [0, shards) and wait for all of
     * them (the per-phase barrier).  @p now is published to each
     * worker's thread-local simclock so logging/tracing stamped on a
     * worker carries the right cycle.  Shard 0 runs on the calling
     * thread.
     */
    MMR_HOT_PATH void runPhase(Cycle now, const PhaseFn &fn);

  private:
    /** Shard worker entry point: runs once per phase per worker, every
     *  flit cycle — as hot as the router evaluate/advance it hosts. */
    MMR_HOT_PATH void workerLoop(unsigned shard_id);

    unsigned numShards;

    // Coordinator -> workers: the job for this phase, published by the
    // release store to phaseSeq; workers acquire-read phaseSeq, so the
    // plain members are ordered without being atomic themselves.
    const PhaseFn *job = nullptr;
    Cycle jobCycle = 0;
    bool stopping = false;
    alignas(64) std::atomic<std::uint64_t> phaseSeq{0};

    // Workers -> coordinator: phase-completion count (release on the
    // last decrement, acquire on the coordinator's read).
    alignas(64) std::atomic<unsigned> pending{0};

    std::vector<std::thread> workers;
};

} // namespace mmr

#endif // MMR_SIM_SHARD_POOL_HH
