#include "sim/invariant.hh"

#include <algorithm>
#include <cstdlib>
#include <optional>

namespace mmr
{

namespace invariant
{

namespace
{

/** Runtime override set through setEnabled(); empty = not overridden. */
std::optional<bool> runtimeOverride;

std::optional<bool>
envSetting()
{
    // Read the environment once per process: enabled() sits on the
    // every-cycle audit path, and getenv() is a linear scan of the
    // environment block.  Changing MMR_INVARIANTS after startup was
    // never supported — runtime toggling goes through setEnabled().
    static const std::optional<bool> cached = [] {
        const char *v = std::getenv("MMR_INVARIANTS");
        if (v == nullptr || *v == '\0')
            return std::optional<bool>{};
        return std::optional<bool>(
            !(v[0] == '0' || v[0] == 'n' || v[0] == 'N' ||
              v[0] == 'f' || v[0] == 'F'));
    }();
    return cached;
}

} // namespace

bool
compiledDefault()
{
#ifdef MMR_INVARIANTS_DEFAULT
    return MMR_INVARIANTS_DEFAULT != 0;
#else
    return true;
#endif
}

bool
enabled()
{
    if (runtimeOverride.has_value())
        return *runtimeOverride;
    if (const auto env = envSetting(); env.has_value())
        return *env;
    return compiledDefault();
}

void
setEnabled(bool on)
{
    runtimeOverride = on;
}

void
clearOverride()
{
    runtimeOverride.reset();
}

} // namespace invariant

void
InvariantChecker::add(std::string name, CheckFn fn, unsigned period)
{
    mmr_assert(fn != nullptr, "invariant '", name, "' has no predicate");
    mmr_assert(period > 0, "invariant '", name, "' needs period >= 1");
    mmr_assert(!has(name), "invariant '", name, "' registered twice");
    entries.push_back(Entry{std::move(name), std::move(fn), period});
}

bool
InvariantChecker::has(const std::string &name) const
{
    return std::any_of(entries.begin(), entries.end(),
                       [&](const Entry &e) { return e.name == name; });
}

std::vector<std::string>
InvariantChecker::names() const
{
    std::vector<std::string> out;
    out.reserve(entries.size());
    for (const Entry &e : entries)
        out.push_back(e.name);
    return out;
}

void
InvariantChecker::run(const std::string &name, Cycle now) const
{
    for (const Entry &e : entries) {
        if (e.name == name) {
            e.fn(now);
            ++ran;
            return;
        }
    }
    mmr_panic("no invariant named '", name, "' is registered");
}

void
InvariantChecker::checkAll(Cycle now) const
{
    if (!invariant::enabled())
        return;
    for (const Entry &e : entries) {
        e.fn(now);
        ++ran;
    }
}

void
InvariantChecker::advance(Cycle now)
{
    if (!invariant::enabled())
        return;
    for (const Entry &e : entries) {
        if (e.period == 1 || now % e.period == 0) {
            e.fn(now);
            ++ran;
        }
    }
}

} // namespace mmr
