/**
 * @file
 * Runtime invariant checking framework.
 *
 * The MMR's guarantees rest on conservation laws the simulator must
 * never silently violate: credit-based flow control "guarantees flits
 * are never dropped" (§3.1, §4.2) and admission control keeps per-link
 * allocated bandwidth within the round (§4.2).  This module turns
 * those properties into machine-checked statements: an
 * InvariantChecker holds a registry of named predicates and audits
 * them at the end of every simulated cycle (it is a Clocked component,
 * registered after the units it watches so it sees committed state).
 * A violated invariant reports through mmr_panic with full context so
 * a debugger or death test can capture the state.
 *
 * Checking is controlled at two levels: the CMake option
 * MMR_INVARIANTS selects the compile-time default, and
 * invariant::setEnabled() / the MMR_INVARIANTS environment variable
 * (0/1) override it at runtime.  Individual invariants may declare a
 * period so expensive sweeps (e.g. over all 2048 VCs of an 8x256
 * router) run on a stride instead of every cycle.
 */

#ifndef MMR_SIM_INVARIANT_HH
#define MMR_SIM_INVARIANT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"
#include "sim/kernel.hh"

namespace mmr
{

namespace invariant
{

/** Whether checkers compiled with default-on support (MMR_INVARIANTS). */
bool compiledDefault();

/**
 * Whether invariant auditing is currently active.  Resolution order:
 * setEnabled() override if called, else the MMR_INVARIANTS environment
 * variable (0/1) if set, else the compile-time default.
 */
bool enabled();

/** Runtime override; wins over the environment and compile default. */
void setEnabled(bool on);

/** Drop any runtime override, returning to env/compile resolution. */
void clearOverride();

} // namespace invariant

/**
 * Report an invariant violation with the standard message shape
 * ("invariant 'name' violated: ...") so death tests and log scrapers
 * can match on the invariant name.  A macro so the panic carries the
 * call site's file/line.
 */
#define mmr_invariant_violated(name, ...) \
    mmr_panic("invariant '", name, "' violated: ", __VA_ARGS__)

/**
 * Registry of named invariant predicates, audited once per cycle.
 *
 * Check functions receive the current cycle and must either return
 * normally (invariant holds) or panic via mmr_invariant_violated.
 */
// mmr-lint: allow(clocked-invariants) the auditor itself: it runs the
// registered checks and has no invariants of its own to register.
class InvariantChecker : public Clocked
{
  public:
    using CheckFn = std::function<void(Cycle)>;

    /**
     * Register a named invariant.
     *
     * @param name unique identifier, also used in violation messages
     * @param fn predicate; panics on violation
     * @param period audit every @p period cycles (>= 1)
     */
    void add(std::string name, CheckFn fn, unsigned period = 1);

    /** Number of registered invariants. */
    std::size_t size() const { return entries.size(); }

    bool has(const std::string &name) const;

    /** Registered invariant names, in registration order. */
    std::vector<std::string> names() const;

    /** Run one invariant by name regardless of period/enable state. */
    void run(const std::string &name, Cycle now) const;

    /** Run every invariant regardless of period (still honors the
     * global enable so production runs can switch auditing off). */
    void checkAll(Cycle now) const;

    /** Total individual checks executed so far. */
    std::uint64_t checksRun() const { return ran; }

    // Clocked: audit after state commit, honoring per-entry periods.
    void evaluate(Cycle now) override { (void)now; }
    void advance(Cycle now) override;

  private:
    struct Entry
    {
        std::string name;
        CheckFn fn;
        unsigned period;
    };

    std::vector<Entry> entries;
    mutable std::uint64_t ran = 0;
};

} // namespace mmr

#endif // MMR_SIM_INVARIANT_HH
