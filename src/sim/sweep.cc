#include "sim/sweep.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace mmr
{

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::vector<ExperimentResult>
runExperiments(
    const std::vector<ExperimentConfig> &cfgs, unsigned jobs,
    const std::function<void(std::size_t, const ExperimentResult &)>
        &onDone)
{
    std::vector<ExperimentResult> results(cfgs.size());
    if (cfgs.empty())
        return results;

    if (jobs <= 1) {
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            results[i] = runSingleRouter(cfgs[i]);
            if (onDone)
                onDone(i, results[i]);
        }
        return results;
    }

    jobs = std::min<unsigned>(jobs,
                              static_cast<unsigned>(cfgs.size()));

    std::atomic<std::size_t> next{0};
    std::mutex doneMutex;
    std::exception_ptr firstError;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cfgs.size())
                return;
            try {
                results[i] = runSingleRouter(cfgs[i]);
            } catch (...) {
                std::lock_guard<std::mutex> lock(doneMutex);
                if (!firstError)
                    firstError = std::current_exception();
                continue;
            }
            if (onDone) {
                std::lock_guard<std::mutex> lock(doneMutex);
                onDone(i, results[i]);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

} // namespace mmr
