#include "sim/sweep.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace mmr
{

unsigned
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

namespace
{

/** Insert ".point<N>" before the extension ("out/run.json" ->
 * "out/run.point3.json"; no extension just appends). */
std::string
pointSuffixed(const std::string &path, std::size_t index)
{
    if (path.empty())
        return path;
    const std::string suffix =
        ".point" + std::to_string(index);
    const std::size_t slash = path.find_last_of('/');
    const std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + suffix;
    return path.substr(0, dot) + suffix + path.substr(dot);
}

/**
 * Sweep points sharing one --stats-json/--trace/... flag would all
 * write the same file, last writer winning (and racing under
 * --jobs=N); give every point its own ".point<N>" output instead.
 * Single-point "sweeps" keep the caller's exact path.
 */
ExperimentConfig
withPointOutputs(const ExperimentConfig &cfg, std::size_t index,
                 std::size_t points)
{
    if (points <= 1)
        return cfg;
    ExperimentConfig c = cfg;
    c.obs.tracePath = pointSuffixed(c.obs.tracePath, index);
    c.obs.statsJsonPath = pointSuffixed(c.obs.statsJsonPath, index);
    c.obs.statsCsvPath = pointSuffixed(c.obs.statsCsvPath, index);
    c.obs.vcdPath = pointSuffixed(c.obs.vcdPath, index);
    c.obs.flightRecorderPath =
        pointSuffixed(c.obs.flightRecorderPath, index);
    return c;
}

} // namespace

namespace
{

/**
 * Per-point result slot, cache-line padded: neighboring points are
 * written by different worker threads, and without the alignment two
 * adjacent results could share a line (false sharing — every store by
 * one worker invalidating the other's cache).  Results are copied out
 * to a plain vector once the pool drains.
 */
struct alignas(64) PaddedResult
{
    ExperimentResult r;
};

} // namespace

std::vector<ExperimentResult>
runExperiments(
    const std::vector<ExperimentConfig> &cfgs, unsigned jobs,
    const std::function<void(std::size_t, const ExperimentResult &)>
        &onDone)
{
    if (cfgs.empty())
        return {};

    if (jobs <= 1) {
        std::vector<ExperimentResult> results(cfgs.size());
        for (std::size_t i = 0; i < cfgs.size(); ++i) {
            results[i] = runSingleRouter(
                withPointOutputs(cfgs[i], i, cfgs.size()));
            if (onDone)
                onDone(i, results[i]);
        }
        return results;
    }

    jobs = std::min<unsigned>(jobs,
                              static_cast<unsigned>(cfgs.size()));

    std::vector<PaddedResult> slots(cfgs.size());
    std::atomic<std::size_t> next{0};
    std::mutex doneMutex;
    std::exception_ptr firstError;

    auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= cfgs.size())
                return;
            try {
                slots[i].r = runSingleRouter(
                    withPointOutputs(cfgs[i], i, cfgs.size()));
            } catch (...) {
                std::lock_guard<std::mutex> lock(doneMutex);
                if (!firstError)
                    firstError = std::current_exception();
                continue;
            }
            if (onDone) {
                std::lock_guard<std::mutex> lock(doneMutex);
                onDone(i, slots[i].r);
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    if (firstError)
        std::rethrow_exception(firstError);

    std::vector<ExperimentResult> results;
    results.reserve(cfgs.size());
    for (PaddedResult &slot : slots)
        results.push_back(std::move(slot.r));
    return results;
}

} // namespace mmr
