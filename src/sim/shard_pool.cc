#include "sim/shard_pool.hh"

#include "base/logging.hh"
#include "base/simclock.hh"

namespace mmr
{

namespace
{

/**
 * Spin briefly, then yield: phases are microseconds apart when the
 * host has a core per shard, but on an oversubscribed (or 1-core)
 * host the partner thread needs the CPU to make progress at all.
 */
void
relaxWait(unsigned &spins)
{
    if (++spins < 256)
        return;
    std::this_thread::yield();
}

} // namespace

ShardPool::ShardPool(unsigned shards) : numShards(shards)
{
    mmr_assert(shards >= 1, "shard pool needs at least one shard");
    workers.reserve(shards > 0 ? shards - 1 : 0);
    for (unsigned s = 1; s < shards; ++s)
        workers.emplace_back([this, s] { workerLoop(s); });
}

ShardPool::~ShardPool()
{
    if (workers.empty())
        return;
    stopping = true;
    phaseSeq.fetch_add(1, std::memory_order_release);
    for (std::thread &t : workers)
        t.join();
}

void
ShardPool::runPhase(Cycle now, const PhaseFn &fn)
{
    if (workers.empty()) {
        for (unsigned s = 0; s < numShards; ++s)
            fn(s);
        return;
    }

    job = &fn;
    jobCycle = now;
    pending.store(static_cast<unsigned>(workers.size()),
                  std::memory_order_relaxed);
    phaseSeq.fetch_add(1, std::memory_order_release);

    // The coordinator is shard 0's worker.
    fn(0);

    unsigned spins = 0;
    while (pending.load(std::memory_order_acquire) != 0)
        relaxWait(spins);
    job = nullptr;
}

void
ShardPool::workerLoop(unsigned shard_id)
{
    std::uint64_t seen = 0;
    for (;;) {
        unsigned spins = 0;
        while (phaseSeq.load(std::memory_order_acquire) == seen)
            relaxWait(spins);
        seen = phaseSeq.load(std::memory_order_acquire);
        if (stopping)
            return;
        // Stamp the worker's thread-local simclock so any log or
        // trace emitted from this shard carries the right cycle.
        simclock::set(jobCycle);
        (*job)(shard_id);
        pending.fetch_sub(1, std::memory_order_release);
    }
}

} // namespace mmr
