/**
 * @file
 * Parallel sweep runner: execute independent experiment points on a
 * pool of worker threads.
 *
 * Figure sweeps (§5) are embarrassingly parallel — every point owns
 * its Rng, StatsRegistry, MetricsRecorder and router, and the only
 * process-wide hooks on the hot path (simclock, Tracer::current) are
 * thread-local — so the runner needs no locking beyond handing out
 * point indices and serializing the completion callback.  Results are
 * returned in input order and each point's resultDigest is
 * bit-identical to a serial run: parallelism changes only which OS
 * thread executes a point, never the work the point does.
 */

#ifndef MMR_SIM_SWEEP_HH
#define MMR_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "harness/single_router.hh"

namespace mmr
{

/**
 * Worker count used when the caller does not specify one: the
 * hardware concurrency, at least 1.
 */
unsigned defaultJobs();

/**
 * Run every configuration and return the results in input order.
 *
 * @param cfgs one entry per experiment point
 * @param jobs worker threads; <= 1 runs inline on the caller's
 *        thread, values above cfgs.size() are clamped
 * @param onDone optional progress hook, invoked once per finished
 *        point with (index, result); calls are serialized, but may
 *        arrive out of index order
 *
 * The first exception thrown by an experiment is rethrown on the
 * caller's thread after the pool drains.
 */
std::vector<ExperimentResult> runExperiments(
    const std::vector<ExperimentConfig> &cfgs, unsigned jobs,
    const std::function<void(std::size_t, const ExperimentResult &)>
        &onDone = {});

} // namespace mmr

#endif // MMR_SIM_SWEEP_HH
