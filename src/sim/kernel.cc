#include "sim/kernel.hh"

#include "base/logging.hh"
#include "sim/invariant.hh"

namespace mmr
{

void
Kernel::add(Clocked *c, std::string name)
{
    mmr_assert(c != nullptr, "cannot register a null component");
    components.push_back(Item{c, std::move(name)});
}

void
Kernel::step()
{
    queue.runUntil(currentCycle);
    for (auto &item : components)
        item.component->evaluate(currentCycle);
    for (auto &item : components)
        item.component->advance(currentCycle);
    ++currentCycle;
}

void
Kernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

void
Kernel::registerInvariants(InvariantChecker &chk) const
{
    // schedule()/runUntil() already refuse to move time backwards;
    // this audit additionally catches heap corruption that would leave
    // an unfired event behind the processed cycle.
    chk.add("event-monotonic", [this](Cycle) {
        if (!queue.empty() && queue.nextCycle() < queue.lastRunCycle()) {
            mmr_invariant_violated(
                "event-monotonic", "pending event at cycle ",
                queue.nextCycle(), " predates processed cycle ",
                queue.lastRunCycle());
        }
    });
}

} // namespace mmr
