#include "sim/kernel.hh"

#include "base/logging.hh"

namespace mmr
{

void
Kernel::add(Clocked *c, std::string name)
{
    mmr_assert(c != nullptr, "cannot register a null component");
    components.push_back(Item{c, std::move(name)});
}

void
Kernel::step()
{
    queue.runUntil(currentCycle);
    for (auto &item : components)
        item.component->evaluate(currentCycle);
    for (auto &item : components)
        item.component->advance(currentCycle);
    ++currentCycle;
}

void
Kernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

} // namespace mmr
