#include "sim/kernel.hh"

#include <chrono>

#include "base/logging.hh"
#include "base/simclock.hh"
#include "sim/invariant.hh"

namespace mmr
{

Kernel::~Kernel()
{
    // Without this, a later kernel's pre-run phase (workload setup,
    // admission) would read this run's final cycle from the global
    // clock and stamp its logs/trace events with it.
    simclock::clear();
}

void
Kernel::add(Clocked *c, std::string name)
{
    mmr_assert(c != nullptr, "cannot register a null component");
    components.push_back(Item{c, std::move(name)});
    compSeconds.push_back(0.0);
}

void
Kernel::step()
{
    simclock::set(currentCycle);
    queue.runUntil(currentCycle);
    if (profiling) {
        stepProfiled();
    } else {
        for (auto &item : components)
            item.component->evaluate(currentCycle);
        for (auto &item : components)
            item.component->advance(currentCycle);
    }
    ++currentCycle;
}

void
Kernel::stepProfiled()
{
    using clock = std::chrono::steady_clock;
    for (std::size_t i = 0; i < components.size(); ++i) {
        const auto t0 = clock::now();
        components[i].component->evaluate(currentCycle);
        compSeconds[i] +=
            std::chrono::duration<double>(clock::now() - t0).count();
    }
    for (std::size_t i = 0; i < components.size(); ++i) {
        const auto t0 = clock::now();
        components[i].component->advance(currentCycle);
        compSeconds[i] +=
            std::chrono::duration<double>(clock::now() - t0).count();
    }
}

void
Kernel::run(Cycle cycles)
{
    for (Cycle i = 0; i < cycles; ++i)
        step();
}

std::vector<std::string>
Kernel::componentNames() const
{
    std::vector<std::string> names;
    names.reserve(components.size());
    for (const Item &item : components)
        names.push_back(item.name);
    return names;
}

void
Kernel::registerInvariants(InvariantChecker &chk) const
{
    // schedule()/runUntil() already refuse to move time backwards;
    // this audit additionally catches heap corruption that would leave
    // an unfired event behind the processed cycle.
    chk.add("event-monotonic", [this](Cycle) {
        if (!queue.empty() && queue.nextCycle() < queue.lastRunCycle()) {
            mmr_invariant_violated(
                "event-monotonic", "pending event at cycle ",
                queue.nextCycle(), " predates processed cycle ",
                queue.lastRunCycle());
        }
    });
}

} // namespace mmr
