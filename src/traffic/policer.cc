#include "traffic/policer.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mmr
{

LeakyBucketPolicer::LeakyBucketPolicer(double tokens_per_cycle,
                                       double depth)
    : fillRate(tokens_per_cycle), maxDepth(depth), tokens(depth)
{
    mmr_assert(fillRate > 0.0, "policer fill rate must be positive");
    mmr_assert(maxDepth >= 1.0, "policer depth must allow one flit");
}

void
LeakyBucketPolicer::advanceTo(Cycle now)
{
    mmr_assert(now >= lastUpdate, "policer time moved backwards");
    tokens = std::min(maxDepth,
                      tokens + fillRate *
                                   static_cast<double>(now - lastUpdate));
    lastUpdate = now;
}

void
LeakyBucketPolicer::consume()
{
    mmr_assert(conforming(), "consuming a token that is not there");
    tokens -= 1.0;
}

void
LeakyBucketPolicer::setRate(double tokens_per_cycle)
{
    mmr_assert(tokens_per_cycle > 0.0, "policer rate must be positive");
    fillRate = tokens_per_cycle;
}

} // namespace mmr
