#include "traffic/cbr_source.hh"

#include "base/logging.hh"

namespace mmr
{

CbrSource::CbrSource(double rate_bps, double link_rate_bps, Rng &rng)
    : rateBps(rate_bps),
      period(interArrivalCycles(rate_bps, link_rate_bps)),
      nextArrival(0.0)
{
    mmr_assert(period >= 1.0,
               "CBR rate exceeds link rate: no feasible inter-arrival");
    // Random phase decorrelates connections sharing a router.
    nextArrival = rng.uniform() * period;
}

unsigned
CbrSource::arrivals(Cycle now)
{
    unsigned n = 0;
    const double t = static_cast<double>(now);
    while (nextArrival <= t) {
        ++n;
        nextArrival += period;
    }
    return n;
}

} // namespace mmr
