/**
 * @file
 * Abstract flit source.
 *
 * A traffic source is polled once per flit cycle and reports how many
 * flits (packet == flit for VCT traffic, §3.4) become ready in that
 * cycle.  Sources are pure generators: queueing, policing and
 * injection live in the network interface / harness so the same
 * models drive single-router and network experiments.
 */

#ifndef MMR_TRAFFIC_SOURCE_HH
#define MMR_TRAFFIC_SOURCE_HH

#include "base/types.hh"
#include "traffic/rates.hh"

namespace mmr
{

class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Number of flits that become ready during cycle @p now. */
    virtual unsigned arrivals(Cycle now) = 0;

    /**
     * Earliest cycle (possibly fractional) at which this source can
     * next produce an arrival or change state.  A harness may skip
     * polling arrivals() until that cycle: sources guarantee that
     * polls strictly before the due cycle return 0 and have no side
     * effects (no state change, no RNG draw), so skipping them is
     * bit-exact with polling every cycle.  The default of 0.0 opts
     * out: the source is polled every cycle.
     */
    virtual double nextDueCycle() const { return 0.0; }

    /** Long-run average rate in bits/s. */
    virtual double meanRateBps() const = 0;

    /** Peak rate in bits/s (== mean for CBR). */
    virtual double peakRateBps() const { return meanRateBps(); }

    virtual TrafficClass trafficClass() const = 0;
};

} // namespace mmr

#endif // MMR_TRAFFIC_SOURCE_HH
