/**
 * @file
 * Best-effort datagram sources (§2, §3.4).
 *
 * Two arrival processes are provided: a Poisson source (classical
 * best-effort background) and a two-state Markov-modulated on/off
 * source for bursty traffic.  Packet size equals flit size (§3.4), so
 * one arrival is one flit.  A short-message control source reuses the
 * Poisson process at a low rate.
 */

#ifndef MMR_TRAFFIC_BESTEFFORT_SOURCE_HH
#define MMR_TRAFFIC_BESTEFFORT_SOURCE_HH

#include <algorithm>

#include "base/rng.hh"
#include "traffic/source.hh"

namespace mmr
{

/** Poisson flit arrivals at a given mean rate. */
class PoissonSource : public TrafficSource
{
  public:
    PoissonSource(double rate_bps, double link_rate_bps, Rng &rng,
                  TrafficClass cls = TrafficClass::BestEffort);

    unsigned arrivals(Cycle now) override;
    double nextDueCycle() const override { return nextArrival; }
    double meanRateBps() const override { return rateBps; }
    TrafficClass trafficClass() const override { return klass; }

  private:
    double rateBps;
    double meanGap;      ///< mean inter-arrival in flit cycles
    double nextArrival;
    Rng *rng;
    TrafficClass klass;
};

/**
 * On/off bursty source: exponentially distributed on and off periods;
 * while on, emits at the burst (peak) rate.
 */
class OnOffSource : public TrafficSource
{
  public:
    /**
     * @param mean_rate_bps long-run average rate
     * @param burst_rate_bps emission rate while in the on state
     * @param mean_burst_cycles average duration of an on period
     */
    OnOffSource(double mean_rate_bps, double burst_rate_bps,
                double mean_burst_cycles, double link_rate_bps, Rng &rng);

    unsigned arrivals(Cycle now) override;

    double
    nextDueCycle() const override
    {
        // While on, the next event is an emission or the end of the
        // burst, whichever comes first; while off, nothing happens
        // until the off period expires.
        return on ? std::min(nextEmit, stateEnd) : stateEnd;
    }

    double meanRateBps() const override { return meanRate; }
    double peakRateBps() const override { return burstRate; }
    TrafficClass trafficClass() const override
    {
        return TrafficClass::BestEffort;
    }

  private:
    double meanRate;
    double burstRate;
    double meanOn;
    double meanOff;
    double emitPeriod;   ///< cycles between flits while on
    bool on = false;
    double stateEnd = 0; ///< cycle the current on/off period ends
    double nextEmit = 0;
    Rng *rng;
};

} // namespace mmr

#endif // MMR_TRAFFIC_BESTEFFORT_SOURCE_HH
