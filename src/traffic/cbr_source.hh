/**
 * @file
 * Constant bit rate source (§2, §5).
 *
 * Emits one flit every R/r flit cycles with a fixed random phase, so
 * admission control can rely on a constant inter-arrival time.  The
 * accumulator is exact: over n cycles the source emits
 * floor((n + phase)/T) flits, with no long-run drift.
 */

#ifndef MMR_TRAFFIC_CBR_SOURCE_HH
#define MMR_TRAFFIC_CBR_SOURCE_HH

#include "base/rng.hh"
#include "traffic/source.hh"

namespace mmr
{

class CbrSource : public TrafficSource
{
  public:
    /**
     * @param rate_bps connection rate
     * @param link_rate_bps physical link rate (defines the flit cycle)
     * @param rng used once, to draw the starting phase
     */
    CbrSource(double rate_bps, double link_rate_bps, Rng &rng);

    unsigned arrivals(Cycle now) override;
    double nextDueCycle() const override { return nextArrival; }
    double meanRateBps() const override { return rateBps; }
    TrafficClass trafficClass() const override
    {
        return TrafficClass::CBR;
    }

    /** Inter-arrival time in flit cycles (the biased-priority basis). */
    double interArrival() const { return period; }

  private:
    double rateBps;
    double period;     ///< flit cycles between arrivals
    double nextArrival; ///< cycle at which the next flit is due
};

} // namespace mmr

#endif // MMR_TRAFFIC_CBR_SOURCE_HH
