/**
 * @file
 * Variable bit rate source: a synthetic MPEG-like GOP model (§2, §4).
 *
 * The paper's follow-up work evaluates the MMR with MPEG-2 video
 * traces; those traces are not available here, so this model
 * synthesizes the properties that matter to bandwidth allocation and
 * link scheduling:
 *
 *  - frames arrive at a fixed frame rate (e.g. 25/s, jitter-sensitive),
 *  - frame sizes follow a lognormal distribution whose mean depends on
 *    the frame type in a repeating GOP pattern (I >> P > B),
 *  - within a frame interval the source emits flits evenly but never
 *    above the declared peak rate,
 *  - the source reports permanent (mean) and peak rates for the VBR
 *    admission registers (§4.2).
 */

#ifndef MMR_TRAFFIC_VBR_SOURCE_HH
#define MMR_TRAFFIC_VBR_SOURCE_HH

#include <string>
#include <vector>

#include "base/rng.hh"
#include "traffic/source.hh"

namespace mmr
{

/** Parameters of the synthetic MPEG-like stream. */
struct VbrProfile
{
    double meanRateBps = 4 * kMbps;  ///< long-run (permanent) rate
    double peakToMean = 3.0;         ///< declared peak / mean ratio
    double framesPerSecond = 25.0;
    std::string gopPattern = "IBBPBBPBBPBB"; ///< repeating frame types
    double iScale = 3.0; ///< I-frame mean size relative to overall mean
    double pScale = 1.2; ///< P-frame mean size relative to overall mean
    double bScale = 0.6; ///< B-frame mean size relative to overall mean
    double sigma = 0.25; ///< lognormal shape (frame-size variability)
};

class VbrSource : public TrafficSource
{
  public:
    VbrSource(const VbrProfile &profile, double link_rate_bps,
              unsigned flit_bits, Rng &rng);

    unsigned arrivals(Cycle now) override;

    double
    nextDueCycle() const override
    {
        // Between frames nothing happens until the next frame slot;
        // within a frame the next event is the next flit emission.
        return frameActive ? nextEmit : nextFrameStart;
    }

    double meanRateBps() const override { return prof.meanRateBps; }
    double peakRateBps() const override
    {
        return prof.meanRateBps * prof.peakToMean;
    }
    TrafficClass trafficClass() const override
    {
        return TrafficClass::VBR;
    }

    /** Flits in the frame currently being transmitted (for tests). */
    unsigned currentFrameFlits() const { return frameFlits; }

    /** Frame interval in flit cycles. */
    double frameIntervalCycles() const { return frameInterval; }

    /**
     * Delivery deadline of the frame currently being emitted: a frame
     * is on time when all its flits arrive before the next frame slot
     * begins (the §4.3 discussion of aborting late video frames).
     * Zero until the first frame starts.
     */
    double currentFrameDeadline() const { return frameDeadline; }

    /** Frames started so far (frame index of the current frame). */
    std::uint64_t framesStarted() const { return frameCount; }

  private:
    void startNextFrame(double at_cycle);

    VbrProfile prof;
    double linkRateBps;
    unsigned flitBits;
    Rng *rng;

    double frameInterval;   ///< flit cycles per frame slot
    double emitPeriod = 0;  ///< cycles between flit emissions
    double minEmitPeriod;   ///< floor implied by the peak rate
    std::size_t gopIndex = 0;
    unsigned frameFlits = 0;    ///< flits in the current frame
    unsigned flitsEmitted = 0;  ///< already emitted from current frame
    double nextFrameStart = 0;  ///< cycle the next frame begins
    double nextEmit = 0;        ///< cycle of the next flit emission
    bool frameActive = false;
    double frameDeadline = 0.0; ///< end of the current frame's slot
    std::uint64_t frameCount = 0;
    double frameTypeMean[3];    ///< mean flits per frame for I/P/B
};

} // namespace mmr

#endif // MMR_TRAFFIC_VBR_SOURCE_HH
