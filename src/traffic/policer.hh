/**
 * @file
 * Leaky-bucket policing (§4.2).
 *
 * "During data transmission, a policing protocol operates by limiting
 * the injection of new flits into the network in such a way that each
 * connection does not use higher link bandwidth than that allocated to
 * it."  The bucket fills with one token every 1/rate flit cycles up to
 * a burst depth; a flit may inject when a full token is available.
 */

#ifndef MMR_TRAFFIC_POLICER_HH
#define MMR_TRAFFIC_POLICER_HH

#include "base/types.hh"

namespace mmr
{

class LeakyBucketPolicer
{
  public:
    /**
     * @param tokens_per_cycle fill rate (allocated rate / link rate)
     * @param depth maximum accumulated tokens (burst tolerance)
     */
    LeakyBucketPolicer(double tokens_per_cycle, double depth);

    /** Advance the bucket to cycle @p now. */
    void advanceTo(Cycle now);

    /** True when a flit may be injected right now. */
    bool conforming() const { return tokens >= 1.0; }

    /** Consume one token for an injected flit. */
    void consume();

    double tokenLevel() const { return tokens; }

    /** Change the fill rate (dynamic bandwidth renegotiation, §4.3). */
    void setRate(double tokens_per_cycle);
    double rate() const { return fillRate; }

  private:
    double fillRate;
    double maxDepth;
    double tokens;
    Cycle lastUpdate = 0;
};

} // namespace mmr

#endif // MMR_TRAFFIC_POLICER_HH
