#include "traffic/vbr_source.hh"

#include <cmath>

#include "base/logging.hh"

namespace mmr
{

VbrSource::VbrSource(const VbrProfile &profile, double link_rate_bps,
                     unsigned flit_bits, Rng &rng_)
    : prof(profile), linkRateBps(link_rate_bps), flitBits(flit_bits),
      rng(&rng_)
{
    mmr_assert(prof.meanRateBps > 0.0, "VBR mean rate must be positive");
    mmr_assert(prof.peakToMean >= 1.0, "peak rate below mean rate");
    mmr_assert(!prof.gopPattern.empty(), "empty GOP pattern");

    const double cycles_per_second = linkRateBps / flitBits;
    frameInterval = cycles_per_second / prof.framesPerSecond;
    minEmitPeriod = interArrivalCycles(peakRateBps(), linkRateBps);

    // Normalize per-type scales so the long-run mean matches the
    // declared permanent rate regardless of the GOP pattern.
    unsigned n_i = 0, n_p = 0, n_b = 0;
    for (char c : prof.gopPattern) {
        if (c == 'I')
            ++n_i;
        else if (c == 'P')
            ++n_p;
        else if (c == 'B')
            ++n_b;
        else
            mmr_fatal("GOP pattern may only contain I/P/B, got '", c, "'");
    }
    const double norm =
        (n_i * prof.iScale + n_p * prof.pScale + n_b * prof.bScale) /
        static_cast<double>(prof.gopPattern.size());
    const double mean_flits_per_frame =
        prof.meanRateBps / prof.framesPerSecond / flitBits;
    frameTypeMean[0] = mean_flits_per_frame * prof.iScale / norm;
    frameTypeMean[1] = mean_flits_per_frame * prof.pScale / norm;
    frameTypeMean[2] = mean_flits_per_frame * prof.bScale / norm;

    // Random phase so parallel streams do not emit I frames in sync.
    nextFrameStart = rng->uniform() * frameInterval;
}

void
VbrSource::startNextFrame(double at_cycle)
{
    const char type = prof.gopPattern[gopIndex];
    gopIndex = (gopIndex + 1) % prof.gopPattern.size();
    const double mean =
        frameTypeMean[type == 'I' ? 0 : (type == 'P' ? 1 : 2)];

    // Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
    const double mu = std::log(mean) - prof.sigma * prof.sigma / 2.0;
    const double size = rng->lognormal(mu, prof.sigma);
    frameFlits = std::max(1u, static_cast<unsigned>(std::lround(size)));
    flitsEmitted = 0;

    // Spread the frame across its interval, but never exceed the
    // declared peak rate (the policing contract of §4.2).  When the
    // previous frame overran its slot (it was itself peak-capped),
    // nextEmit still points past its final flit — starting from
    // max() keeps the emission clock monotone so the catch-up never
    // bursts above the peak.
    emitPeriod = std::max(frameInterval / frameFlits, minEmitPeriod);
    nextEmit = std::max(at_cycle, nextEmit);
    frameActive = true;
    frameDeadline = at_cycle + frameInterval;
    ++frameCount;
}

unsigned
VbrSource::arrivals(Cycle now)
{
    const double t = static_cast<double>(now);
    unsigned n = 0;

    if (!frameActive && nextFrameStart <= t)
        startNextFrame(nextFrameStart);

    while (frameActive && nextEmit <= t) {
        ++n;
        ++flitsEmitted;
        nextEmit += emitPeriod;
        if (flitsEmitted >= frameFlits) {
            frameActive = false;
            nextFrameStart += frameInterval;
            if (nextFrameStart <= t)
                startNextFrame(nextFrameStart);
        }
    }
    return n;
}

} // namespace mmr
