#include "traffic/besteffort_source.hh"

#include "base/logging.hh"

namespace mmr
{

PoissonSource::PoissonSource(double rate_bps, double link_rate_bps,
                             Rng &rng_, TrafficClass cls)
    : rateBps(rate_bps),
      meanGap(interArrivalCycles(rate_bps, link_rate_bps)), rng(&rng_),
      klass(cls)
{
    mmr_assert(meanGap >= 1.0, "Poisson rate exceeds link rate");
    nextArrival = rng->exponential(meanGap);
}

unsigned
PoissonSource::arrivals(Cycle now)
{
    const double t = static_cast<double>(now);
    unsigned n = 0;
    while (nextArrival <= t) {
        ++n;
        nextArrival += rng->exponential(meanGap);
    }
    return n;
}

OnOffSource::OnOffSource(double mean_rate_bps, double burst_rate_bps,
                         double mean_burst_cycles, double link_rate_bps,
                         Rng &rng_)
    : meanRate(mean_rate_bps), burstRate(burst_rate_bps),
      meanOn(mean_burst_cycles), rng(&rng_)
{
    mmr_assert(burstRate > meanRate,
               "burst rate must exceed the mean rate");
    emitPeriod = interArrivalCycles(burstRate, link_rate_bps);
    mmr_assert(emitPeriod >= 1.0, "burst rate exceeds link rate");

    // Duty cycle d = mean/burst; mean_off = mean_on * (1-d)/d.
    const double duty = meanRate / burstRate;
    meanOff = meanOn * (1.0 - duty) / duty;

    on = rng->chance(duty);
    stateEnd = rng->exponential(on ? meanOn : meanOff);
    nextEmit = on ? 0.0 : stateEnd;
}

unsigned
OnOffSource::arrivals(Cycle now)
{
    const double t = static_cast<double>(now);
    unsigned n = 0;
    for (;;) {
        if (on) {
            // Emit everything due before the on period ends or now.
            while (nextEmit <= t && nextEmit < stateEnd) {
                ++n;
                nextEmit += emitPeriod;
            }
            if (stateEnd <= t) {
                on = false;
                const double off_end =
                    stateEnd + rng->exponential(meanOff);
                stateEnd = off_end;
                nextEmit = off_end;
                continue;
            }
            break;
        }
        // Off state: wait for the off period to end.
        if (stateEnd <= t) {
            const double on_start = stateEnd;
            on = true;
            stateEnd = on_start + rng->exponential(meanOn);
            nextEmit = on_start;
            continue;
        }
        break;
    }
    return n;
}

} // namespace mmr
