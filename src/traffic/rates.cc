#include "traffic/rates.hh"

#include <cmath>

#include "base/logging.hh"

namespace mmr
{

std::string
to_string(TrafficClass c)
{
    switch (c) {
      case TrafficClass::CBR:
        return "CBR";
      case TrafficClass::VBR:
        return "VBR";
      case TrafficClass::BestEffort:
        return "best-effort";
      case TrafficClass::Control:
        return "control";
    }
    return "?";
}

const std::vector<double> &
paperRateLadder()
{
    static const std::vector<double> ladder = {
        64 * kKbps,  128 * kKbps, 1.54 * kMbps, 2 * kMbps,  5 * kMbps,
        10 * kMbps,  20 * kMbps,  55 * kMbps,   120 * kMbps,
    };
    return ladder;
}

unsigned
cyclesPerRound(double rate_bps, double link_rate_bps,
               unsigned cycles_per_round)
{
    mmr_assert(rate_bps > 0.0 && link_rate_bps > 0.0,
               "rates must be positive");
    mmr_assert(rate_bps <= link_rate_bps,
               "connection rate exceeds link rate");
    const double fraction = rate_bps / link_rate_bps;
    const double cycles =
        std::ceil(fraction * static_cast<double>(cycles_per_round));
    return static_cast<unsigned>(cycles);
}

double
grantedRate(unsigned alloc_cycles, double link_rate_bps,
            unsigned cycles_per_round)
{
    mmr_assert(cycles_per_round > 0, "round length must be positive");
    return link_rate_bps * static_cast<double>(alloc_cycles) /
           static_cast<double>(cycles_per_round);
}

} // namespace mmr
