/**
 * @file
 * Trace-driven VBR source.
 *
 * The MMR's follow-up evaluations drive the router with recorded
 * MPEG-2 video traces.  This source replays such a trace: a text file
 * with one frame size per line (in bits; '#' starts a comment), played
 * at a fixed frame rate and looped when exhausted.  Emission within a
 * frame slot follows the same discipline as the synthetic GOP model —
 * spread across the slot, capped at the declared peak rate — so the
 * two sources are drop-in interchangeable and can cross-validate each
 * other (see writeSyntheticTrace / tests).
 */

#ifndef MMR_TRAFFIC_TRACE_SOURCE_HH
#define MMR_TRAFFIC_TRACE_SOURCE_HH

#include <string>
#include <vector>

#include "base/rng.hh"
#include "traffic/source.hh"
#include "traffic/vbr_source.hh"

namespace mmr
{

/** Parse a frame-size trace (bits per frame, one per line). */
std::vector<std::uint64_t> loadFrameTrace(const std::string &path);

/** Write a synthetic trace generated from the GOP model, so the
 * trace-driven path can be exercised without proprietary data. */
void writeSyntheticTrace(const std::string &path,
                         const VbrProfile &profile, unsigned frames,
                         Rng &rng);

class TraceVbrSource : public TrafficSource
{
  public:
    /**
     * @param frame_bits the trace (frame sizes in bits)
     * @param fps playback rate
     * @param peak_rate_bps declared peak for admission and policing
     * @param link_rate_bps physical link rate
     * @param flit_bits flit size
     * @param rng draws the starting phase
     */
    TraceVbrSource(std::vector<std::uint64_t> frame_bits, double fps,
                   double peak_rate_bps, double link_rate_bps,
                   unsigned flit_bits, Rng &rng);

    /** Convenience: load the trace from a file. */
    TraceVbrSource(const std::string &path, double fps,
                   double peak_rate_bps, double link_rate_bps,
                   unsigned flit_bits, Rng &rng);

    unsigned arrivals(Cycle now) override;

    double
    nextDueCycle() const override
    {
        return frameActive ? nextEmit : nextFrameStart;
    }

    double meanRateBps() const override { return meanBps; }
    double peakRateBps() const override { return peakBps; }
    TrafficClass trafficClass() const override
    {
        return TrafficClass::VBR;
    }

    std::size_t traceLength() const { return trace.size(); }
    double frameIntervalCycles() const { return frameInterval; }

    /** Deadline of the frame currently being emitted (cycles). */
    double currentFrameDeadline() const { return frameDeadline; }

  private:
    void startNextFrame(double at_cycle);

    std::vector<std::uint64_t> trace;
    double meanBps;
    double peakBps;
    unsigned flitBits;

    double frameInterval;
    double minEmitPeriod;
    double emitPeriod = 0.0;
    std::size_t traceIndex = 0;
    unsigned frameFlits = 0;
    unsigned flitsEmitted = 0;
    double nextFrameStart = 0.0;
    double nextEmit = 0.0;
    double frameDeadline = 0.0;
    bool frameActive = false;
};

} // namespace mmr

#endif // MMR_TRAFFIC_TRACE_SOURCE_HH
