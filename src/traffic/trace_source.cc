#include "traffic/trace_source.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "base/logging.hh"

namespace mmr
{

std::vector<std::uint64_t>
loadFrameTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        mmr_fatal("cannot open trace file '", path, "'");
    std::vector<std::uint64_t> trace;
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream iss(line);
        std::uint64_t bits = 0;
        if (!(iss >> bits))
            continue; // blank or comment-only line
        std::string extra;
        if (iss >> extra)
            mmr_fatal("trace '", path, "' line ", lineno,
                      ": expected one frame size, got trailing '",
                      extra, "'");
        if (bits == 0)
            mmr_fatal("trace '", path, "' line ", lineno,
                      ": zero-size frame");
        trace.push_back(bits);
    }
    if (trace.empty())
        mmr_fatal("trace '", path, "' contains no frames");
    return trace;
}

void
writeSyntheticTrace(const std::string &path, const VbrProfile &profile,
                    unsigned frames, Rng &rng)
{
    mmr_assert(frames > 0, "trace needs at least one frame");
    std::ofstream out(path);
    if (!out)
        mmr_fatal("cannot write trace file '", path, "'");
    out << "# synthetic MPEG-like trace: " << frames << " frames, "
        << profile.meanRateBps / kMbps << " Mb/s mean, GOP "
        << profile.gopPattern << "\n";

    // Reproduce the GOP model's per-type frame-size statistics.
    unsigned n_i = 0, n_p = 0, n_b = 0;
    for (char c : profile.gopPattern) {
        if (c == 'I')
            ++n_i;
        else if (c == 'P')
            ++n_p;
        else
            ++n_b;
    }
    const double norm = (n_i * profile.iScale + n_p * profile.pScale +
                         n_b * profile.bScale) /
                        static_cast<double>(profile.gopPattern.size());
    const double mean_bits =
        profile.meanRateBps / profile.framesPerSecond;
    for (unsigned f = 0; f < frames; ++f) {
        const char type =
            profile.gopPattern[f % profile.gopPattern.size()];
        const double scale = type == 'I'   ? profile.iScale
                             : type == 'P' ? profile.pScale
                                           : profile.bScale;
        const double mean = mean_bits * scale / norm;
        const double mu =
            std::log(mean) - profile.sigma * profile.sigma / 2.0;
        const double bits = rng.lognormal(mu, profile.sigma);
        out << static_cast<std::uint64_t>(
                   std::max(1.0, std::llround(bits) * 1.0))
            << "\n";
    }
}

TraceVbrSource::TraceVbrSource(std::vector<std::uint64_t> frame_bits,
                               double fps, double peak_rate_bps,
                               double link_rate_bps, unsigned flit_bits,
                               Rng &rng)
    : trace(std::move(frame_bits)), peakBps(peak_rate_bps),
      flitBits(flit_bits)
{
    mmr_assert(!trace.empty(), "empty frame trace");
    mmr_assert(fps > 0.0, "frame rate must be positive");
    mmr_assert(peak_rate_bps > 0.0 && peak_rate_bps <= link_rate_bps,
               "peak rate must fit the link");

    double total_bits = 0.0;
    for (std::uint64_t bits : trace)
        total_bits += static_cast<double>(bits);
    meanBps = total_bits / static_cast<double>(trace.size()) * fps;

    const double cycles_per_second = link_rate_bps / flitBits;
    frameInterval = cycles_per_second / fps;
    minEmitPeriod = interArrivalCycles(peakBps, link_rate_bps);
    nextFrameStart = rng.uniform() * frameInterval;
}

TraceVbrSource::TraceVbrSource(const std::string &path, double fps,
                               double peak_rate_bps,
                               double link_rate_bps, unsigned flit_bits,
                               Rng &rng)
    : TraceVbrSource(loadFrameTrace(path), fps, peak_rate_bps,
                     link_rate_bps, flit_bits, rng)
{
}

void
TraceVbrSource::startNextFrame(double at_cycle)
{
    const std::uint64_t bits = trace[traceIndex];
    traceIndex = (traceIndex + 1) % trace.size();
    frameFlits = std::max(
        1u, static_cast<unsigned>((bits + flitBits - 1) / flitBits));
    flitsEmitted = 0;
    emitPeriod = std::max(frameInterval / frameFlits, minEmitPeriod);
    // Monotone emission clock: if the previous (peak-capped) frame
    // overran its slot, the new frame resumes where it left off
    // instead of bursting a catch-up clump above the peak rate.
    nextEmit = std::max(at_cycle, nextEmit);
    frameDeadline = at_cycle + frameInterval;
    frameActive = true;
}

unsigned
TraceVbrSource::arrivals(Cycle now)
{
    const double t = static_cast<double>(now);
    unsigned n = 0;

    if (!frameActive && nextFrameStart <= t)
        startNextFrame(nextFrameStart);

    while (frameActive && nextEmit <= t) {
        ++n;
        ++flitsEmitted;
        nextEmit += emitPeriod;
        if (flitsEmitted >= frameFlits) {
            frameActive = false;
            nextFrameStart += frameInterval;
            if (nextFrameStart <= t)
                startNextFrame(nextFrameStart);
        }
    }
    return n;
}

} // namespace mmr
