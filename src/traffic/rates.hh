/**
 * @file
 * Connection rate ladder and bandwidth arithmetic (paper §5).
 *
 * The evaluation draws CBR connections from a fixed set of media-like
 * rates between 64 Kb/s (voice) and 120 Mb/s (uncompressed video) and
 * expresses allocated bandwidth as an integer number of flit cycles
 * per round (§4.1), where a round is K x V flit cycles.
 */

#ifndef MMR_TRAFFIC_RATES_HH
#define MMR_TRAFFIC_RATES_HH

#include <string>
#include <vector>

#include "base/types.hh"

namespace mmr
{

/** Service class of a connection or packet (§2, §3.4). */
enum class TrafficClass
{
    CBR,        ///< constant bit rate stream (guaranteed bandwidth)
    VBR,        ///< variable bit rate stream (permanent + peak)
    BestEffort, ///< datagram traffic, no reservation
    Control     ///< short control/probe/ack messages, highest priority
};

/** Enumerator count, for per-class fixed arrays. */
constexpr std::size_t kNumTrafficClasses = 4;

std::string to_string(TrafficClass c);

/**
 * The CBR rate ladder of §5: {64 Kb/s, 128 Kb/s, 1.54 Mb/s, 2 Mb/s,
 * 5 Mb/s, 10 Mb/s, 20 Mb/s, 55 Mb/s, 120 Mb/s}.
 */
const std::vector<double> &paperRateLadder();

/**
 * Bandwidth of a connection expressed in flit cycles per round,
 * rounded up so the reservation never undershoots the request (§4.2).
 *
 * @param rate_bps connection rate
 * @param link_rate_bps physical link rate
 * @param cycles_per_round round length (K x V flit cycles)
 */
unsigned cyclesPerRound(double rate_bps, double link_rate_bps,
                        unsigned cycles_per_round);

/**
 * The rate actually granted by a cycles/round reservation, in bits/s.
 * Quantization error shrinks as K grows — the §4.1 trade-off probed by
 * bench_k_tradeoff.
 */
double grantedRate(unsigned alloc_cycles, double link_rate_bps,
                   unsigned cycles_per_round);

} // namespace mmr

#endif // MMR_TRAFFIC_RATES_HH
