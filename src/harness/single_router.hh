/**
 * @file
 * The §5 simulation study, as a reusable harness.
 *
 * "The following experiments represent an 8x8 router with 256 virtual
 * channels/input port, 1.24 Gbps physical links and 128-bit flits. ...
 * Connections were randomly selected from the set (64 Kbps ... 120
 * Mbps) and assigned to random input and output ports on the router.
 * The offered load is computed as the percentage of switch bandwidth
 * demanded by all connections through the router."
 *
 * The harness builds such a workload at a target offered load (with
 * admission control on both the input and the output link), runs a
 * warm-up followed by a measured steady-state window, and reports the
 * paper's metrics: mean switch delay (flit cycles and microseconds),
 * mean jitter (flit cycles), and switch utilization.  Extensions add
 * VBR and best-effort shares for the hybrid-traffic benches.
 */

#ifndef MMR_HARNESS_SINGLE_ROUTER_HH
#define MMR_HARNESS_SINGLE_ROUTER_HH

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "metrics/recorder.hh"
#include "obs/obs_config.hh"
#include "obs/profiler.hh"
#include "router/router.hh"
#include "sim/invariant.hh"
#include "traffic/besteffort_source.hh"
#include "traffic/cbr_source.hh"
#include "traffic/vbr_source.hh"

namespace mmr
{

/** Traffic composition of the offered load. */
struct WorkloadMix
{
    double cbrShare = 1.0; ///< share of load from CBR connections
    double vbrShare = 0.0; ///< share from VBR connections (mean rate)
    double beShare = 0.0;  ///< share from best-effort Poisson traffic
    VbrProfile vbrProfile; ///< template for VBR streams
    int vbrPriorityLevels = 4; ///< user priorities drawn uniformly

    /**
     * §4.3: "The network interface may decide to abort the
     * transmission of that frame.  By doing so, less bandwidth is
     * wasted in the transmission of a frame that will not meet the
     * deadline."  When set, the interface stops injecting the rest of
     * a video frame once its deadline has passed.
     */
    bool abortLateFrames = false;

    double total() const { return cbrShare + vbrShare + beShare; }
};

struct ExperimentConfig
{
    RouterConfig router;
    double offeredLoad = 0.5; ///< fraction of aggregate switch bw
    Cycle warmupCycles = 20000;
    Cycle measureCycles = 100000;
    std::uint64_t seed = 42;
    std::vector<double> rateLadder; ///< empty -> paperRateLadder()
    WorkloadMix mix;

    /**
     * §5 methodology: "run until steady state was reached".  When
     * set, the warm-up length is determined by a steady-state
     * detector on windowed mean delay instead of warmupCycles, capped
     * at maxWarmupCycles.
     */
    bool autoWarmup = false;
    Cycle warmupWindow = 2000;   ///< detector window (cycles)
    Cycle maxWarmupCycles = 200000;

    /** Observability outputs (tracing, sampling, profiling); the
     * default is fully off and costs nothing. */
    ObsConfig obs;

    /**
     * Per-class switch-delay budgets in flit cycles (0 = no deadline
     * accounting for that class).  A measured flit whose delay
     * exceeds its class budget counts as a QoS violation (§4.3's
     * deadline argument made measurable).
     */
    Cycle cbrDelayBudget = 0;
    Cycle vbrDelayBudget = 0;
    Cycle beDelayBudget = 0;

    /** Deliberately trip an invariant at this cycle (0 = never).
     * Exercises the flight recorder's crash dump end to end; used by
     * the CI observability-smoke job, never by real experiments. */
    Cycle forcePanicAt = 0;
};

/** Per-service-class aggregate results. */
struct ClassResult
{
    StreamStat delayCycles;
    StreamStat jitterCycles;
    std::uint64_t flits = 0;

    /** Frame-deadline accounting (VBR only, §4.3): a flit misses when
     * it leaves the switch after its frame's slot has ended. */
    std::uint64_t deadlineMisses = 0;
    std::uint64_t deadlineTotal = 0;

    /** QoS budget accounting (ExperimentConfig::*DelayBudget). */
    QosCounters qos;

    /** Full switch-delay distribution + its percentile digest. */
    LatencyHistogram delayHist;
    LatencySummary latency;

    double
    deadlineMissRate() const
    {
        return deadlineTotal
                   ? static_cast<double>(deadlineMisses) /
                         static_cast<double>(deadlineTotal)
                   : 0.0;
    }
};

struct ExperimentResult
{
    double offeredLoad = 0.0;  ///< requested
    double achievedLoad = 0.0; ///< admitted demand / capacity
    unsigned connections = 0;

    double meanDelayCycles = 0.0;
    double meanDelayUs = 0.0;
    double meanJitterCycles = 0.0;
    double p99DelayCycles = 0.0;
    double utilization = 0.0;

    std::uint64_t flitsDelivered = 0;
    std::uint64_t injectionRejects = 0;
    std::uint64_t abortedFlits = 0; ///< dropped by late-frame aborts
    Cycle warmupUsed = 0; ///< actual warm-up (autoWarmup may shorten)

    ClassResult cbr;
    ClassResult vbr;
    ClassResult bestEffort;

    /**
     * Stage latency decomposition: where a flit's switch delay went
     * (source queue, VC residency, arbitration, switch traversal;
     * LinkTransit stays empty in single-router mode).  Histograms are
     * carried whole so sweep shards can be merged bit-identically;
     * summaries are the derived percentile digests.
     */
    LatencyHistogram stageHist[kNumLatencyStages];
    LatencySummary stageLatency[kNumLatencyStages];

    double flitCycleNanos = 0.0;

    /** Simulator throughput (wall-clock; excluded from resultDigest —
     * wall time is inherently nondeterministic). */
    SimProfile profile;
};

class SingleRouterExperiment
{
  public:
    explicit SingleRouterExperiment(const ExperimentConfig &cfg);
    ~SingleRouterExperiment();

    SingleRouterExperiment(const SingleRouterExperiment &) = delete;
    SingleRouterExperiment &
    operator=(const SingleRouterExperiment &) = delete;

    /** Build the workload, run warm-up + measurement, and report. */
    ExperimentResult run();

    /** Router access for white-box tests. */
    MmrRouter &router() { return *dut; }
    MetricsRecorder &metrics() { return recorder; }

    /** The invariant auditor ticking alongside the router.  Always
     * registered; whether checks execute follows invariant::enabled(). */
    InvariantChecker &invariants() { return auditor; }

    /** Connections established by buildWorkload (after run()). */
    unsigned connectionCount() const
    {
        return static_cast<unsigned>(streams.size());
    }

    /** Per-connection VBR deadline stats: conn -> {misses, total}. */
    const std::unordered_map<ConnId,
                             std::pair<std::uint64_t, std::uint64_t>> &
    deadlineStats() const
    {
        return deadlineByConn;
    }

  private:
    struct Stream
    {
        ConnId conn;
        TrafficClass klass;
        /** Input endpoint of the connection, captured at open time so
         * per-flit injection bypasses the router's connection map. */
        PortId in = kInvalidPort;
        VcId inVc = kInvalidVc;
        std::unique_ptr<TrafficSource> source;
        VbrSource *vbr = nullptr; ///< non-owning view for deadlines
        std::uint32_t seq = 0;
    };

    void buildWorkload();
    bool addCbrConnection(double rate_bps);
    bool addVbrConnection(double mean_rate_bps);
    bool addBestEffortFlow(double rate_bps);
    void injectArrivals(Cycle now);
    void pollStream(std::size_t idx, Cycle now);

    ExperimentConfig cfg;
    MetricsRecorder recorder;
    std::unique_ptr<MmrRouter> dut;
    InvariantChecker auditor;
    Rng rng;

    std::vector<Stream> streams;

    /**
     * Injection skip-ahead: a timing wheel of per-cycle buckets.
     * Sources guarantee polls before their due cycle are
     * side-effect-free no-ops (see TrafficSource::nextDueCycle), so
     * only due streams are polled each cycle; buckets are drained in
     * cycle order and sorted by stream index first, so the poll — and
     * therefore shared-RNG draw — order of the naive
     * poll-everyone-every-cycle loop is reproduced bit-exactly.
     * Insertion is O(1) (vs. two O(log n) heap sifts per poll); due
     * cycles beyond the wheel horizon wait in a small overflow heap
     * and spill into the wheel as it turns.
     */
    static constexpr std::size_t kWheelSize = 1024; ///< power of two
    std::vector<std::vector<std::uint32_t>> dueWheel;
    std::vector<std::pair<Cycle, std::uint32_t>> farDue; ///< min-heap
    Cycle lastDrained = 0;
    bool dueWheelInit = false;

    void scheduleStream(std::size_t idx, Cycle due, Cycle origin);
    void drainBucket(Cycle c, Cycle now);

    std::vector<double> inputDemand;  ///< admitted bits/s per input
    std::vector<double> outputDemand; ///< admitted bits/s per output
    std::unordered_map<ConnId, std::pair<std::uint64_t, std::uint64_t>>
        deadlineByConn;
    std::uint64_t abortedFlitCount = 0;
    /** Windowed delay accumulation for the steady-state detector. */
    double windowDelaySum = 0.0;
    std::uint64_t windowDelayCount = 0;
    double admittedBps = 0.0;
    bool built = false;
};

/** Convenience wrapper: configure, run, return the result. */
ExperimentResult runSingleRouter(const ExperimentConfig &cfg);

/**
 * Order-sensitive digest of every statistic in an ExperimentResult
 * (FNV-1a over the raw field bytes).  Two same-seed runs must produce
 * bit-identical digests — the determinism audit that catches
 * unordered-container iteration order or uninitialized-memory bugs
 * before any parallelism work relies on it.
 */
std::uint64_t resultDigest(const ExperimentResult &r);

} // namespace mmr

#endif // MMR_HARNESS_SINGLE_ROUTER_HH
