#include "harness/single_router.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <functional>

#include "base/logging.hh"
#include "base/simclock.hh"
#include "metrics/steady_state.hh"
#include "obs/obs_config.hh"
#include "sim/kernel.hh"
#include "traffic/rates.hh"

namespace mmr
{

SingleRouterExperiment::SingleRouterExperiment(const ExperimentConfig &c)
    : cfg(c), rng(c.seed), inputDemand(c.router.numPorts, 0.0),
      outputDemand(c.router.numPorts, 0.0)
{
    if (cfg.rateLadder.empty())
        cfg.rateLadder = paperRateLadder();
    if (cfg.offeredLoad < 0.0 || cfg.offeredLoad > 1.0)
        mmr_fatal("offered load must be in [0,1], got ", cfg.offeredLoad);
    const double mix_total = cfg.mix.total();
    if (mix_total <= 0.0)
        mmr_fatal("workload mix shares must sum to a positive value");

    RouterConfig rc = cfg.router;
    rc.seed = cfg.seed ^ 0x5eedf00dULL;
    dut = std::make_unique<MmrRouter>(rc, &recorder);

    recorder.setQosBudget(TrafficClass::CBR, cfg.cbrDelayBudget);
    recorder.setQosBudget(TrafficClass::VBR, cfg.vbrDelayBudget);
    recorder.setQosBudget(TrafficClass::BestEffort, cfg.beDelayBudget);

    // Frame-deadline accounting for VBR flits: the injection path
    // stamps each flit with its frame's deadline (Flit::arg); a flit
    // leaving the switch later than that is a miss (§4.3).  Flits the
    // *source* already emitted past the deadline (an oversized frame
    // that cannot fit its slot even at peak rate) are excluded — they
    // measure the traffic model, not the scheduler.
    dut->setSink([this](PortId, VcId, const Flit &f, Cycle now) {
        // Windowed delay accumulation (steady-state detection).
        windowDelaySum += static_cast<double>(now - f.readyTime);
        ++windowDelayCount;
        if (f.klass != TrafficClass::VBR || f.arg <= 0.0)
            return;
        if (!recorder.measuring(now))
            return;
        if (static_cast<double>(f.createTime) > f.arg)
            return; // source-inherent lateness
        auto &[misses, total] = deadlineByConn[f.conn];
        ++total;
        if (static_cast<double>(now) > f.arg)
            ++misses;
    });
}

SingleRouterExperiment::~SingleRouterExperiment() = default;

bool
SingleRouterExperiment::addCbrConnection(double rate_bps)
{
    const unsigned ports = cfg.router.numPorts;
    const double link = cfg.router.linkRateBps;
    // Try several random port pairs before giving up: a single output
    // may be full while others still have room.
    for (unsigned attempt = 0; attempt < 4 * ports; ++attempt) {
        const auto in = static_cast<PortId>(rng.below(ports));
        const auto out = static_cast<PortId>(rng.below(ports));
        if (inputDemand[in] + rate_bps > link ||
            outputDemand[out] + rate_bps > link)
            continue;
        const ConnId id = dut->openCbr(in, out, rate_bps);
        if (id == kInvalidConn)
            continue;
        inputDemand[in] += rate_bps;
        outputDemand[out] += rate_bps;
        admittedBps += rate_bps;
        Stream s;
        s.conn = id;
        s.klass = TrafficClass::CBR;
        s.in = in;
        s.inVc = dut->connection(id)->inVc;
        s.source = std::make_unique<CbrSource>(rate_bps, link, rng);
        streams.push_back(std::move(s));
        return true;
    }
    return false;
}

bool
SingleRouterExperiment::addVbrConnection(double mean_rate_bps)
{
    const unsigned ports = cfg.router.numPorts;
    const double link = cfg.router.linkRateBps;
    const double peak_bps = mean_rate_bps * cfg.mix.vbrProfile.peakToMean;
    if (peak_bps > link)
        return false;
    for (unsigned attempt = 0; attempt < 4 * ports; ++attempt) {
        const auto in = static_cast<PortId>(rng.below(ports));
        const auto out = static_cast<PortId>(rng.below(ports));
        if (inputDemand[in] + mean_rate_bps > link ||
            outputDemand[out] + mean_rate_bps > link)
            continue;
        const int prio = static_cast<int>(
            rng.below(std::max(1, cfg.mix.vbrPriorityLevels)));
        const ConnId id = dut->openVbr(in, out, mean_rate_bps, peak_bps,
                                       prio);
        if (id == kInvalidConn)
            continue;
        inputDemand[in] += mean_rate_bps;
        outputDemand[out] += mean_rate_bps;
        admittedBps += mean_rate_bps;
        VbrProfile prof = cfg.mix.vbrProfile;
        prof.meanRateBps = mean_rate_bps;
        Stream s;
        s.conn = id;
        s.klass = TrafficClass::VBR;
        s.in = in;
        s.inVc = dut->connection(id)->inVc;
        auto src = std::make_unique<VbrSource>(prof, link,
                                               cfg.router.flitBits, rng);
        s.vbr = src.get();
        s.source = std::move(src);
        streams.push_back(std::move(s));
        return true;
    }
    return false;
}

bool
SingleRouterExperiment::addBestEffortFlow(double rate_bps)
{
    const unsigned ports = cfg.router.numPorts;
    const double link = cfg.router.linkRateBps;
    for (unsigned attempt = 0; attempt < 4 * ports; ++attempt) {
        const auto in = static_cast<PortId>(rng.below(ports));
        const auto out = static_cast<PortId>(rng.below(ports));
        if (inputDemand[in] + rate_bps > link ||
            outputDemand[out] + rate_bps > link)
            continue;
        const ConnId id = dut->openBestEffort(in, out);
        if (id == kInvalidConn)
            continue;
        inputDemand[in] += rate_bps;
        outputDemand[out] += rate_bps;
        admittedBps += rate_bps;
        Stream s;
        s.conn = id;
        s.klass = TrafficClass::BestEffort;
        s.in = in;
        s.inVc = dut->connection(id)->inVc;
        s.source = std::make_unique<PoissonSource>(rate_bps, link, rng);
        streams.push_back(std::move(s));
        return true;
    }
    return false;
}

void
SingleRouterExperiment::buildWorkload()
{
    mmr_assert(!built, "workload already built");
    built = true;

    const double capacity =
        cfg.router.linkRateBps * cfg.router.numPorts;
    const double mix_total = cfg.mix.total();
    const double cbr_target =
        capacity * cfg.offeredLoad * cfg.mix.cbrShare / mix_total;
    const double vbr_target =
        capacity * cfg.offeredLoad * cfg.mix.vbrShare / mix_total;
    const double be_target =
        capacity * cfg.offeredLoad * cfg.mix.beShare / mix_total;
    // Allow a small overshoot so the last connection can land.
    const double tol = capacity * 0.002;

    // CBR connections drawn from the rate ladder (§5).
    double cbr_admitted = 0.0;
    unsigned failures = 0;
    while (cbr_admitted < cbr_target && failures < 64) {
        std::vector<double> fitting;
        for (double r : cfg.rateLadder)
            if (cbr_admitted + r <= cbr_target + tol)
                fitting.push_back(r);
        if (fitting.empty())
            break;
        const double rate = rng.pick(fitting);
        if (addCbrConnection(rate)) {
            cbr_admitted += rate;
            failures = 0;
        } else {
            ++failures;
        }
    }

    // VBR connections: mean rates from the video-like upper ladder.
    double vbr_admitted = 0.0;
    failures = 0;
    while (vbr_admitted < vbr_target && failures < 64) {
        std::vector<double> fitting;
        for (double r : cfg.rateLadder)
            if (r >= 1.0 * kMbps &&
                vbr_admitted + r <= vbr_target + tol)
                fitting.push_back(r);
        if (fitting.empty())
            break;
        const double rate = rng.pick(fitting);
        if (addVbrConnection(rate)) {
            vbr_admitted += rate;
            failures = 0;
        } else {
            ++failures;
        }
    }

    // Best-effort background: Poisson flows of a few Mb/s each.
    double be_admitted = 0.0;
    failures = 0;
    const double be_flow_rate = 5.0 * kMbps;
    while (be_target > 0.0 &&
           be_admitted + be_flow_rate <= be_target + tol &&
           failures < 64) {
        if (addBestEffortFlow(be_flow_rate)) {
            be_admitted += be_flow_rate;
            failures = 0;
        } else {
            ++failures;
        }
    }
}

void
SingleRouterExperiment::pollStream(std::size_t idx, Cycle now)
{
    Stream &s = streams[idx];
    const unsigned n = s.source->arrivals(now);
    for (unsigned k = 0; k < n; ++k) {
        if (s.vbr != nullptr && cfg.mix.abortLateFrames &&
            static_cast<double>(now) > s.vbr->currentFrameDeadline()) {
            // §4.3: the interface aborts the rest of a frame that
            // has already missed its deadline rather than wasting
            // link bandwidth on it.
            ++abortedFlitCount;
            continue;
        }
        Flit f;
        f.conn = s.conn;
        f.klass = s.klass;
        f.seq = s.seq++;
        f.createTime = now;
        f.readyTime = now;
        if (s.vbr != nullptr)
            f.arg = s.vbr->currentFrameDeadline();
        // Raw injection at the cached endpoint: same deposit path as
        // inject(conn, ...) minus the per-flit connection-map lookup.
        dut->injectRaw(s.in, s.inVc, f);
    }
}

namespace
{

/** JSON/stats-registry keys for the traffic classes (to_string's
 * human forms — "best-effort" — make poor identifiers). */
constexpr const char *kClassKeys[kNumTrafficClasses] = {
    "cbr", "vbr", "best_effort", "control"};

/** First integer cycle at which a source with fractional due time
 * `due` can fire, never earlier than `floor_cycle`.  A source that
 * reports 0.0 (the opt-out default) lands on `floor_cycle` and is
 * polled every cycle, exactly like the naive loop. */
inline Cycle
dueCycleFor(double due, Cycle floor_cycle)
{
    if (due <= static_cast<double>(floor_cycle))
        return floor_cycle;
    return static_cast<Cycle>(std::ceil(due));
}

} // namespace

void
SingleRouterExperiment::scheduleStream(std::size_t idx, Cycle due,
                                       Cycle origin)
{
    // Buckets are only unambiguous while every wheel entry's due cycle
    // lies within one revolution of the oldest un-drained cycle, so
    // anything at or beyond the horizon parks in the overflow heap and
    // spills in as the wheel turns.
    if (due - origin < kWheelSize) {
        dueWheel[due & (kWheelSize - 1)].push_back(
            static_cast<std::uint32_t>(idx));
    } else {
        farDue.emplace_back(due, static_cast<std::uint32_t>(idx));
        std::push_heap(farDue.begin(), farDue.end(),
                       std::greater<>{});
    }
}

void
SingleRouterExperiment::injectArrivals(Cycle now)
{
    if (!dueWheelInit) {
        // Lazy init: buildWorkload has populated the stream set.
        dueWheelInit = true;
        dueWheel.assign(kWheelSize, {});
        for (std::size_t i = 0; i < streams.size(); ++i)
            scheduleStream(
                i, dueCycleFor(streams[i].source->nextDueCycle(), now),
                now);
        lastDrained = now;
        drainBucket(now, now);
        return;
    }
    // The kernel advances one cycle at a time, so this loop runs one
    // iteration; draining any skipped cycles in order keeps the
    // (cycle, index) poll order identical to the old min-heap either
    // way.
    for (Cycle c = lastDrained + 1; c <= now; ++c)
        drainBucket(c, now);
    lastDrained = now;
}

void
SingleRouterExperiment::drainBucket(Cycle c, Cycle now)
{
    // Entries whose due cycle has rotated into the window move from
    // the overflow heap onto the wheel first.
    while (!farDue.empty() && farDue.front().first - c < kWheelSize) {
        std::pop_heap(farDue.begin(), farDue.end(), std::greater<>{});
        const auto [due, idx] = farDue.back();
        farDue.pop_back();
        dueWheel[due & (kWheelSize - 1)].push_back(idx);
    }
    auto &bucket = dueWheel[c & (kWheelSize - 1)];
    if (bucket.empty())
        return;
    // Same-cycle polls — and therefore draws from the shared RNG —
    // must happen in stream-index order, exactly like the naive
    // poll-every-stream loop.  Each source guarantees its next event
    // lies strictly after a cycle it just processed, so re-scheduling
    // below never targets this bucket again (next due >= now + 1, and
    // due == c + kWheelSize parks in the overflow heap).
    std::sort(bucket.begin(), bucket.end());
    for (std::size_t i = 0; i < bucket.size(); ++i) {
        const std::size_t idx = bucket[i];
        pollStream(idx, now);
        scheduleStream(
            idx,
            dueCycleFor(streams[idx].source->nextDueCycle(), now + 1),
            c);
    }
    bucket.clear();
}

ExperimentResult
SingleRouterExperiment::run()
{
    Kernel kernel;
    kernel.add(dut.get(), "router");
    // The auditor ticks after the router so every cycle's committed
    // state satisfies the conservation laws before the next begins.
    dut->registerInvariants(auditor, 64);
    kernel.registerInvariants(auditor);
    kernel.add(&auditor, "invariants");

    // Observability: register every stat before the sampler attaches
    // (its column set is frozen at construction), and attach before
    // the workload builds so admission / VC-allocation setup events
    // land in the trace (at cycle 0).
    ObsSession obs(cfg.obs);
    if (cfg.obs.enabled()) {
        dut->registerStats(obs.registry(), "router0.",
                           cfg.obs.perVcStats
                               ? MmrRouter::StatsDetail::PerVc
                               : MmrRouter::StatsDetail::PerPort);
        obs.registry().addGauge("harness.measured_flits", [this] {
            return static_cast<double>(recorder.measuredFlits());
        });
        obs.registry().addGauge("harness.mean_delay_cycles", [this] {
            return recorder.meanDelayCycles();
        });

        // Latency-decomposition and QoS gauges: probes read the live
        // histograms, so the sampler's series and the final registry
        // dump both carry the percentiles.
        for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
            const auto stage = static_cast<LatencyStage>(s);
            const std::string base =
                std::string("latency.") + to_string(stage) + ".";
            for (const double p : {50.0, 90.0, 99.0, 99.9}) {
                std::string key = base + "p" +
                                  (p == 99.9 ? "999"
                                             : std::to_string(
                                                   static_cast<int>(p)));
                obs.registry().addGauge(key, [this, stage, p] {
                    return static_cast<double>(
                        recorder.stageHistogram(stage).percentile(p));
                });
            }
        }
        for (std::size_t k = 0; k < kNumTrafficClasses; ++k) {
            const auto klass = static_cast<TrafficClass>(k);
            const std::string base =
                std::string("latency.class.") + kClassKeys[k] + ".";
            for (const double p : {50.0, 99.0, 99.9}) {
                std::string key = base + "p" +
                                  (p == 99.9 ? "999"
                                             : std::to_string(
                                                   static_cast<int>(p)));
                obs.registry().addGauge(key, [this, klass, p] {
                    return static_cast<double>(
                        recorder.classHistogram(klass).percentile(p));
                });
            }
            obs.registry().addGauge(
                std::string("qos.") + kClassKeys[k] + ".violations",
                [this, klass] {
                    return static_cast<double>(
                        recorder.qos(klass).violations);
                });
            obs.registry().addGauge(
                std::string("qos.") + kClassKeys[k] +
                    ".violation_rate",
                [this, klass] {
                    return recorder.qos(klass).violationRate();
                });
        }

        // Full distributions land under "histograms" in --stats-json.
        obs.setHistogramDump([this](std::ostream &os) {
            os << "{\"stage\":{";
            for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
                if (s)
                    os << ",";
                os << "\""
                   << to_string(static_cast<LatencyStage>(s))
                   << "\":";
                recorder
                    .stageHistogram(static_cast<LatencyStage>(s))
                    .writeJson(os);
            }
            os << "},\"class\":{";
            for (std::size_t k = 0; k < kNumTrafficClasses; ++k) {
                if (k)
                    os << ",";
                os << "\"" << kClassKeys[k] << "\":";
                recorder
                    .classHistogram(static_cast<TrafficClass>(k))
                    .writeJson(os);
            }
            os << "}}";
        });

        obs.attach(kernel);
    }

    // Setup happens "at" the kernel's current cycle (0): publish it so
    // the admission/VC-allocation trace events and any setup-time log
    // lines are stamped deterministically.
    simclock::set(kernel.now());
    buildWorkload();

    const auto wall_start = std::chrono::steady_clock::now();

    Cycle warmup = cfg.warmupCycles;
    if (cfg.autoWarmup) {
        // §5: run until steady state, watching windowed mean delay.
        SteadyStateDetector det(cfg.warmupWindow);
        while (!det.steady() && kernel.now() < cfg.maxWarmupCycles) {
            windowDelaySum = 0.0;
            windowDelayCount = 0;
            const Cycle end = kernel.now() + cfg.warmupWindow;
            while (kernel.now() < end) {
                injectArrivals(kernel.now());
                kernel.step();
            }
            det.addWindow(windowDelayCount
                              ? windowDelaySum /
                                    static_cast<double>(windowDelayCount)
                              : 0.0);
        }
        warmup = kernel.now();
    }

    recorder.startMeasurement(warmup);
    const Cycle total = warmup + cfg.measureCycles;
    while (kernel.now() < total) {
        if (cfg.forcePanicAt != 0 && kernel.now() >= cfg.forcePanicAt)
            mmr_invariant_violated(
                "forced-panic", "deliberate invariant violation at "
                                "cycle ",
                kernel.now(), " (ExperimentConfig::forcePanicAt)");
        injectArrivals(kernel.now());
        kernel.step();
    }

    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    obs.finish(kernel.now());

    ExperimentResult r;
    r.profile = collectProfile(kernel, wall_seconds,
                               dut->flitsInjected() +
                                   dut->flitsForwarded());
    r.warmupUsed = warmup;
    r.offeredLoad = cfg.offeredLoad;
    r.achievedLoad =
        admittedBps / (cfg.router.linkRateBps * cfg.router.numPorts);
    r.connections = static_cast<unsigned>(streams.size());
    r.meanDelayCycles = recorder.meanDelayCycles();
    r.flitCycleNanos = cfg.router.flitCycleNanos();
    r.meanDelayUs = r.meanDelayCycles * r.flitCycleNanos / 1000.0;
    r.meanJitterCycles = recorder.meanJitterCycles();
    r.p99DelayCycles = recorder.delayPercentile(99.0);
    r.utilization = recorder.switchUtilization();
    r.flitsDelivered = recorder.measuredFlits();
    r.injectionRejects = dut->injectionRejects();
    r.abortedFlits = abortedFlitCount;

    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        r.stageHist[s] =
            recorder.stageHistogram(static_cast<LatencyStage>(s));
        r.stageLatency[s] = r.stageHist[s].summarize();
    }
    const auto harvestClass = [this](ClassResult &cls,
                                     TrafficClass klass) {
        cls.qos = recorder.qos(klass);
        cls.delayHist = recorder.classHistogram(klass);
        cls.latency = cls.delayHist.summarize();
    };
    harvestClass(r.cbr, TrafficClass::CBR);
    harvestClass(r.vbr, TrafficClass::VBR);
    harvestClass(r.bestEffort, TrafficClass::BestEffort);

    for (const Stream &s : streams) {
        const ConnectionRecorder *rec = recorder.connection(s.conn);
        if (rec == nullptr)
            continue;
        ClassResult *cls = nullptr;
        switch (s.klass) {
          case TrafficClass::CBR:
            cls = &r.cbr;
            break;
          case TrafficClass::VBR:
            cls = &r.vbr;
            break;
          case TrafficClass::BestEffort:
            cls = &r.bestEffort;
            break;
          case TrafficClass::Control:
            break;
        }
        if (cls != nullptr) {
            cls->delayCycles.merge(rec->delay());
            cls->jitterCycles.merge(rec->jitter());
            cls->flits += rec->delay().count();
        }
        if (s.klass == TrafficClass::VBR) {
            auto it = deadlineByConn.find(s.conn);
            if (it != deadlineByConn.end()) {
                r.vbr.deadlineMisses += it->second.first;
                r.vbr.deadlineTotal += it->second.second;
            }
        }
    }
    return r;
}

ExperimentResult
runSingleRouter(const ExperimentConfig &cfg)
{
    SingleRouterExperiment exp(cfg);
    return exp.run();
}

namespace
{

/** FNV-1a, folded field by field so every statistic participates. */
class Fnv1a
{
  public:
    void addU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    }

    void
    addDouble(double v)
    {
        // Canonicalize: -0.0 == 0.0 but their bit patterns differ.
        if (v == 0.0)
            v = 0.0;
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        addU64(bits);
    }

    std::uint64_t value() const { return hash; }

  private:
    std::uint64_t hash = 0xcbf29ce484222325ULL;
};

void
digestHistogram(Fnv1a &h, const LatencyHistogram &hist)
{
    h.addU64(hist.count());
    h.addU64(hist.minValue());
    h.addU64(hist.maxValue());
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i)
        h.addU64(hist.bucketCount(i));
}

void
digestSummary(Fnv1a &h, const LatencySummary &s)
{
    h.addU64(s.count);
    h.addU64(s.p50);
    h.addU64(s.p90);
    h.addU64(s.p99);
    h.addU64(s.p999);
    h.addU64(s.maxCycles);
}

void
digestClass(Fnv1a &h, const ClassResult &c)
{
    h.addU64(c.flits);
    h.addU64(c.deadlineMisses);
    h.addU64(c.deadlineTotal);
    h.addU64(c.delayCycles.count());
    h.addDouble(c.delayCycles.mean());
    h.addDouble(c.delayCycles.max());
    h.addU64(c.jitterCycles.count());
    h.addDouble(c.jitterCycles.mean());
    h.addU64(c.qos.budgetCycles);
    h.addU64(c.qos.flits);
    h.addU64(c.qos.violations);
    h.addU64(c.qos.worstExcessCycles);
    digestSummary(h, c.latency);
    digestHistogram(h, c.delayHist);
}

} // namespace

std::uint64_t
resultDigest(const ExperimentResult &r)
{
    Fnv1a h;
    h.addDouble(r.offeredLoad);
    h.addDouble(r.achievedLoad);
    h.addU64(r.connections);
    h.addDouble(r.meanDelayCycles);
    h.addDouble(r.meanDelayUs);
    h.addDouble(r.meanJitterCycles);
    h.addDouble(r.p99DelayCycles);
    h.addDouble(r.utilization);
    h.addU64(r.flitsDelivered);
    h.addU64(r.injectionRejects);
    h.addU64(r.abortedFlits);
    h.addU64(r.warmupUsed);
    digestClass(h, r.cbr);
    digestClass(h, r.vbr);
    digestClass(h, r.bestEffort);
    for (std::size_t s = 0; s < kNumLatencyStages; ++s) {
        digestSummary(h, r.stageLatency[s]);
        digestHistogram(h, r.stageHist[s]);
    }
    h.addDouble(r.flitCycleNanos);
    return h.value();
}

} // namespace mmr
