/**
 * @file
 * Whole-network experiment harness with optional fault injection.
 *
 * The single-router harness reproduces the §5 switch study; this one
 * runs the *network*: a topology of MMR routers, one host interface
 * per node opening CBR streams (PCS/EPB) and best-effort datagram
 * flows (VCT/up*-down*), with a FaultInjector replaying a seed-derived
 * FaultPlan and a RecoveryManager re-establishing failed connections.
 * It is the engine behind bench/fault_recovery and the randomized
 * fault-schedule property tests, so everything it does is
 * deterministic in the config: same config -> bit-identical
 * NetworkExperimentResult, checkable via networkResultDigest().
 *
 * Component order per cycle: injector (applies due fault events),
 * recovery manager (launches due re-setups), network, invariant
 * checker (audits committed state) — hosts tick before the kernel
 * steps, as in the benches.
 */

#ifndef MMR_HARNESS_NETWORK_EXPERIMENT_HH
#define MMR_HARNESS_NETWORK_EXPERIMENT_HH

#include <cstdint>
#include <string>

#include "fault/fault_plan.hh"
#include "fault/recovery.hh"
#include "network/network.hh"
#include "workload/churn.hh"

namespace mmr
{

/**
 * Build a topology from a spec string: "mesh:4x4", "torus:4x4",
 * "ring:8", "star:8", or "irregular:N:EXTRA:MAXDEG" (randomized from
 * @p seed).  Fatal on malformed specs.
 */
Topology topologyFromSpec(const std::string &spec, std::uint64_t seed);

struct NetworkExperimentConfig
{
    std::string topologySpec = "mesh:4x4";
    NetworkConfig net; ///< net.seed is overridden by seed below

    unsigned cbrStreamsPerHost = 1;
    double cbrRateBps = 10e6;
    unsigned beFlowsPerHost = 1;
    double beRateBps = 2e6;

    Cycle warmupCycles = 5000;
    Cycle measureCycles = 20000;
    /** Post-measurement cycles letting in-flight tails land. */
    Cycle drainCycles = 2000;

    /**
     * Stochastic fault model (FaultPlan::random); all-zero rates mean
     * a fault-free run.  A zero horizon defaults to warmup + measure.
     */
    FaultModel faults;
    /** Explicit "down@C:A-B;..." events; when set they replace the
     * random link schedule (stochastic drop/corrupt rates still
     * apply). */
    std::string faultEvents;

    RecoveryConfig recovery;

    /**
     * End-to-end CBR delay budget in flit cycles (0 = no deadline
     * accounting): measured flits arriving later count as QoS
     * violations, reported as a violation rate next to the
     * acceptance ratio.
     */
    Cycle cbrDelayBudgetCycles = 0;

    /**
     * Session-churn population (workload/churn.hh): when enabled, a
     * ChurnEngine drives timed EPB setups, holding-time injection and
     * teardown on top of (or instead of — set cbrStreamsPerHost 0)
     * the static per-host streams.  Ticked with the hosts, so churn
     * runs are digest-identical serial vs sharded.
     */
    ChurnConfig churn;

    std::uint64_t seed = 42;
    unsigned invariantPeriod = 16;
};

struct NetworkExperimentResult
{
    unsigned nodes = 0;
    unsigned streamsRequested = 0;
    unsigned streamsAccepted = 0;
    unsigned streamsAlive = 0; ///< still established at the end
    double acceptance = 0.0;   ///< accepted / requested
    double aliveFraction = 0.0;

    double meanDelayCycles = 0.0;
    double meanJitterCycles = 0.0;
    double p99DelayCycles = 0.0;
    /** Worst per-connection mean delay over streams alive at the end
     * (the QoS-after-recovery figure of merit). */
    double maxAliveConnMeanDelay = 0.0;

    std::uint64_t flitsDelivered = 0;
    std::uint64_t flitsLost = 0;
    std::uint64_t flitsCorrupted = 0;
    std::uint64_t injectedFlits = 0;
    std::uint64_t droppedInRecovery = 0;
    std::uint64_t backloggedAtEnd = 0;

    std::uint64_t datagramsSent = 0;
    std::uint64_t datagramsDelivered = 0;
    std::uint64_t datagramsLost = 0;  ///< on failed/corrupted links
    std::uint64_t datagramDrops = 0;  ///< resource-exhaustion drops

    std::uint64_t linkDowns = 0;
    std::uint64_t linkUps = 0;
    std::uint64_t connectionsFailed = 0;
    std::uint64_t recoveryRetries = 0;
    std::uint64_t connectionsRecovered = 0;
    std::uint64_t connectionsAbandoned = 0;
    std::uint64_t probeTimeouts = 0;
    std::uint64_t probeMessagesLost = 0;

    /** QoS deadline accounting against cbrDelayBudgetCycles. */
    std::uint64_t qosFlits = 0;
    std::uint64_t qosViolations = 0;
    double qosViolationRate = 0.0;
    Cycle worstQosExcessCycles = 0;

    /** End-to-end CBR delay percentiles and per-hop wire time. */
    LatencySummary cbrLatency;
    LatencySummary linkTransitLatency;

    // ---- session churn (all zero unless churn.enabled) -------------
    std::uint64_t sessionsArrived = 0;
    std::uint64_t sessionsAdmitted = 0;
    std::uint64_t sessionsRejected = 0;
    std::uint64_t sessionsRejectedBusy = 0; ///< pool-full refusals
    std::uint64_t sessionsCompleted = 0;
    std::uint64_t sessionsAbandoned = 0; ///< lost to link faults
    /** admitted / (admitted + rejected) — the figure of merit. */
    double sessionAcceptance = 0.0;
    std::uint64_t sessionPeakLive = 0;
    std::uint64_t sessionPoolBytes = 0;
    /** Resident bytes per live session (the <= 64 B contract). */
    std::uint64_t sessionLiveBytes = 0;
    std::uint64_t sessionFlitsInjected = 0;
    std::uint64_t sessionFlitsDropped = 0;
    /** Pool slots still occupied after the drain (leak detector). */
    std::uint64_t sessionsLeakedAtEnd = 0;
    /** Connection recorders folded into retired aggregates. */
    std::uint64_t retiredConnRecorders = 0;
    /** Measured probe+ack setup latency of admitted sessions. */
    LatencySummary sessionSetupLatency;

    /** Probes still in flight / PCS entries still present at the very
     * end of the run (drain health; sessions should leave neither). */
    std::uint64_t pendingSetupsAtEnd = 0;
    std::uint64_t openConnsAtEnd = 0;

    std::uint64_t invariantChecks = 0;
    Cycle cycles = 0;
};

/** Build, run and tear down one network experiment. */
NetworkExperimentResult
runNetworkExperiment(const NetworkExperimentConfig &cfg);

/**
 * Order-sensitive FNV-1a digest over every field of the result; the
 * reproducibility contract is digest(run(cfg)) == digest(run(cfg)).
 */
std::uint64_t networkResultDigest(const NetworkExperimentResult &r);

} // namespace mmr

#endif // MMR_HARNESS_NETWORK_EXPERIMENT_HH
