#include "harness/network_experiment.hh"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "base/logging.hh"
#include "fault/injector.hh"
#include "network/interface.hh"
#include "obs/flight_recorder.hh"
#include "sim/invariant.hh"
#include "sim/kernel.hh"

namespace mmr
{

namespace
{

/** Deterministic stream destination: host @p n's @p k-th stream. */
NodeId
dstFor(NodeId n, unsigned k, unsigned nodes)
{
    NodeId d = (n + 1 + 2 * k) % nodes;
    if (d == n)
        d = (d + 1) % nodes;
    return d;
}

/** FNV-1a over raw field bytes (same shape as the single-router
 * digest: order-sensitive, canonicalized doubles). */
class Fnv1a
{
  public:
    void
    addU64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            hash ^= (v >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    }

    void
    addDouble(double v)
    {
        if (v == 0.0)
            v = 0.0; // merge -0.0 and 0.0 bit patterns
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        std::memcpy(&bits, &v, sizeof(bits));
        addU64(bits);
    }

    std::uint64_t value() const { return hash; }

  private:
    std::uint64_t hash = 0xcbf29ce484222325ULL;
};

} // namespace

Topology
topologyFromSpec(const std::string &spec, std::uint64_t seed)
{
    const auto colon = spec.find(':');
    if (colon == std::string::npos)
        mmr_fatal("topology spec '", spec, "' lacks ':' (try mesh:4x4)");
    const std::string kind = spec.substr(0, colon);
    const std::string args = spec.substr(colon + 1);

    auto parse_uint = [&](const std::string &s) -> unsigned {
        char *end = nullptr;
        const unsigned long v = std::strtoul(s.c_str(), &end, 10);
        if (end == s.c_str() || *end != '\0' || v == 0)
            mmr_fatal("bad number '", s, "' in topology spec '", spec,
                      "'");
        return static_cast<unsigned>(v);
    };

    if (kind == "mesh" || kind == "torus") {
        const auto x = args.find('x');
        if (x == std::string::npos)
            mmr_fatal("'", kind, "' spec needs WxH: '", spec, "'");
        const unsigned w = parse_uint(args.substr(0, x));
        const unsigned h = parse_uint(args.substr(x + 1));
        return kind == "mesh" ? Topology::mesh2d(w, h)
                              : Topology::torus2d(w, h);
    }
    if (kind == "ring")
        return Topology::ring(parse_uint(args));
    if (kind == "star")
        return Topology::star(parse_uint(args));
    if (kind == "min") {
        const auto c = args.find(':');
        if (c == std::string::npos)
            mmr_fatal("'min' spec needs RADIX:STAGES: '", spec, "'");
        return Topology::multistage(parse_uint(args.substr(0, c)),
                                    parse_uint(args.substr(c + 1)));
    }
    if (kind == "fattree")
        return Topology::fatTree(parse_uint(args));
    if (kind == "leafspine") {
        const auto c = args.find(':');
        if (c == std::string::npos)
            mmr_fatal("'leafspine' spec needs SPINES:LEAVES: '", spec,
                      "'");
        return Topology::leafSpine(parse_uint(args.substr(0, c)),
                                   parse_uint(args.substr(c + 1)));
    }
    if (kind == "irregular") {
        const auto c1 = args.find(':');
        const auto c2 =
            c1 == std::string::npos ? c1 : args.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos)
            mmr_fatal("'irregular' spec needs N:EXTRA:MAXDEG: '", spec,
                      "'");
        const unsigned n = parse_uint(args.substr(0, c1));
        const unsigned extra =
            parse_uint(args.substr(c1 + 1, c2 - c1 - 1));
        const unsigned maxdeg = parse_uint(args.substr(c2 + 1));
        Rng trng(seed ^ 0x7090109fca17e5ULL);
        return Topology::irregular(n, extra, maxdeg, trng);
    }
    mmr_fatal("unknown topology kind '", kind, "' in '", spec,
              "' (mesh/torus/ring/star/irregular/min/fattree/"
              "leafspine)");
}

NetworkExperimentResult
runNetworkExperiment(const NetworkExperimentConfig &cfg)
{
    Topology topo = topologyFromSpec(cfg.topologySpec, cfg.seed);
    const unsigned nodes = topo.numNodes();

    NetworkConfig ncfg = cfg.net;
    ncfg.seed = cfg.seed;
    Network net(std::move(topo), ncfg);
    net.endToEnd().setQosBudget(TrafficClass::CBR,
                                cfg.cbrDelayBudgetCycles);

    // Black box for the fault machinery: a crash or an abandoned
    // recovery dumps the recent sched/credit/fault events.  A caller
    // that already installed a recorder (bench front ends) keeps it.
    FlightRecorder blackBox;
    const bool ownBlackBox = FlightRecorder::active() == nullptr;
    if (ownBlackBox)
        blackBox.activate();

    // The fault plan spans the loaded portion of the run by default.
    FaultModel model = cfg.faults;
    if (model.horizon == 0)
        model.horizon = cfg.warmupCycles + cfg.measureCycles;
    FaultPlan plan;
    if (!cfg.faultEvents.empty()) {
        plan = FaultPlan::fromEvents(cfg.faultEvents, net.topology());
        plan.setModel(model);
    } else {
        plan = FaultPlan::random(net.topology(), model,
                                 cfg.seed ^ 0xfa17a11edfa57ULL);
    }

    FaultInjector injector(net, std::move(plan), cfg.seed + 101);
    RecoveryManager recovery(net, cfg.recovery, cfg.seed + 202);

    // The churn engine is ticked with the hosts (coordinator-serial);
    // its arrival schedule spans the loaded portion of the run, and
    // all its draws live on sub-RNGs of a dedicated seed tweak.
    std::unique_ptr<ChurnEngine> churn;
    if (cfg.churn.enabled)
        churn = std::make_unique<ChurnEngine>(
            net, cfg.churn, cfg.warmupCycles + cfg.measureCycles,
            cfg.seed ^ 0x5e5510bca5e1dULL);

    InvariantChecker checker;
    net.registerInvariants(checker, cfg.invariantPeriod);
    injector.registerInvariants(checker, cfg.invariantPeriod);
    recovery.registerInvariants(checker, cfg.invariantPeriod);
    if (churn)
        churn->registerInvariants(checker, cfg.invariantPeriod);

    Kernel kernel;
    kernel.registerInvariants(checker);
    kernel.add(&injector, "fault-injector");
    kernel.add(&recovery, "recovery-manager");
    kernel.add(&net, "network");
    kernel.add(&checker, "invariants");

    NetworkExperimentResult r;
    r.nodes = nodes;

    std::vector<std::unique_ptr<NetworkInterface>> hosts;
    hosts.reserve(nodes);
    for (NodeId n = 0; n < nodes; ++n) {
        hosts.push_back(
            std::make_unique<NetworkInterface>(net, n, cfg.seed + n));
        if (cfg.recovery.enabled)
            hosts.back()->attachRecovery(&recovery);
        for (unsigned k = 0; k < cfg.cbrStreamsPerHost; ++k) {
            ++r.streamsRequested;
            if (hosts.back()->openCbrStream(dstFor(n, k, nodes),
                                            cfg.cbrRateBps))
                ++r.streamsAccepted;
        }
        for (unsigned k = 0; k < cfg.beFlowsPerHost; ++k)
            hosts.back()->addBestEffortFlow(dstFor(n, k + 1, nodes),
                                            cfg.beRateBps);
    }

    auto run_for = [&](Cycle cycles) {
        for (Cycle c = 0; c < cycles; ++c) {
            for (auto &h : hosts)
                h->tick(kernel.now());
            if (churn)
                churn->tick(kernel.now());
            kernel.step();
        }
    };

    run_for(cfg.warmupCycles);
    net.endToEnd().startMeasurement(kernel.now());
    run_for(cfg.measureCycles);
    if (churn)
        churn->beginDrain(kernel.now());
    run_for(cfg.drainCycles);

    r.cycles = kernel.now();
    r.acceptance =
        r.streamsRequested
            ? static_cast<double>(r.streamsAccepted) /
                  static_cast<double>(r.streamsRequested)
            : 0.0;

    const MetricsRecorder &e2e = net.endToEnd();
    r.meanDelayCycles = e2e.meanDelayCycles();
    r.meanJitterCycles = e2e.meanJitterCycles();
    r.p99DelayCycles = e2e.delayPercentile(0.99);

    const QosCounters &q = e2e.qos(TrafficClass::CBR);
    r.qosFlits = q.flits;
    r.qosViolations = q.violations;
    r.qosViolationRate = q.violationRate();
    r.worstQosExcessCycles = q.worstExcessCycles;
    r.cbrLatency = e2e.classHistogram(TrafficClass::CBR).summarize();
    r.linkTransitLatency =
        e2e.stageHistogram(LatencyStage::LinkTransit).summarize();

    for (auto &h : hosts) {
        r.streamsAlive += h->establishedStreams();
        r.injectedFlits += h->injectedFlits();
        r.droppedInRecovery += h->flitsDroppedInRecovery();
        r.backloggedAtEnd += h->backloggedFlits();
        for (ConnId id : h->connections()) {
            const ConnectionRecorder *c = e2e.connection(id);
            if (c && c->delay().count() > 0)
                r.maxAliveConnMeanDelay =
                    std::max(r.maxAliveConnMeanDelay, c->delay().mean());
        }
    }
    r.aliveFraction =
        r.streamsAccepted
            ? static_cast<double>(r.streamsAlive) /
                  static_cast<double>(r.streamsAccepted)
            : 0.0;

    r.flitsDelivered = net.flitsDelivered();
    r.flitsLost = net.flitsLostToFailures();
    r.flitsCorrupted = net.flitsCorrupted();
    r.datagramsSent = net.datagramsSent();
    r.datagramsDelivered = net.datagramsDelivered();
    r.datagramsLost = net.datagramsLost();
    r.datagramDrops = net.datagramDrops();

    r.linkDowns = injector.linkDownsApplied();
    r.linkUps = injector.linkUpsApplied();
    r.connectionsFailed = net.connectionsFailed();
    r.recoveryRetries = recovery.retriesLaunched();
    r.connectionsRecovered = recovery.connectionsRecovered();
    r.connectionsAbandoned = recovery.connectionsAbandoned();
    r.probeTimeouts = net.probes().setupTimeouts();
    r.probeMessagesLost = net.probes().messagesLost();

    if (churn) {
        const SessionLedger &sl = churn->ledger();
        r.sessionsArrived = sl.arrived;
        r.sessionsAdmitted = sl.admitted;
        r.sessionsRejected = sl.rejected;
        r.sessionsRejectedBusy = sl.rejectedBusy;
        r.sessionsCompleted = sl.completed;
        r.sessionsAbandoned = sl.abandoned;
        r.sessionAcceptance = sl.acceptanceRatio();
        r.sessionPeakLive = churn->peakLiveSessions();
        r.sessionPoolBytes = churn->poolBytes();
        r.sessionLiveBytes = ChurnEngine::liveSessionBytes();
        r.sessionFlitsInjected = churn->flitsInjected();
        r.sessionFlitsDropped = churn->flitsDroppedBackpressure();
        r.sessionsLeakedAtEnd = churn->liveSessions();
        r.retiredConnRecorders = e2e.retiredConnections();
        r.sessionSetupLatency = churn->setupLatency().summarize();
    }
    r.pendingSetupsAtEnd = net.pendingSetups();
    r.openConnsAtEnd = net.openConnectionCount();

    r.invariantChecks = checker.checksRun();
    if (ownBlackBox)
        blackBox.deactivate();
    return r;
}

std::uint64_t
networkResultDigest(const NetworkExperimentResult &r)
{
    Fnv1a h;
    h.addU64(r.nodes);
    h.addU64(r.streamsRequested);
    h.addU64(r.streamsAccepted);
    h.addU64(r.streamsAlive);
    h.addDouble(r.acceptance);
    h.addDouble(r.aliveFraction);
    h.addDouble(r.meanDelayCycles);
    h.addDouble(r.meanJitterCycles);
    h.addDouble(r.p99DelayCycles);
    h.addDouble(r.maxAliveConnMeanDelay);
    h.addU64(r.flitsDelivered);
    h.addU64(r.flitsLost);
    h.addU64(r.flitsCorrupted);
    h.addU64(r.injectedFlits);
    h.addU64(r.droppedInRecovery);
    h.addU64(r.backloggedAtEnd);
    h.addU64(r.datagramsSent);
    h.addU64(r.datagramsDelivered);
    h.addU64(r.datagramsLost);
    h.addU64(r.datagramDrops);
    h.addU64(r.linkDowns);
    h.addU64(r.linkUps);
    h.addU64(r.connectionsFailed);
    h.addU64(r.recoveryRetries);
    h.addU64(r.connectionsRecovered);
    h.addU64(r.connectionsAbandoned);
    h.addU64(r.probeTimeouts);
    h.addU64(r.probeMessagesLost);
    h.addU64(r.qosFlits);
    h.addU64(r.qosViolations);
    h.addDouble(r.qosViolationRate);
    h.addU64(r.worstQosExcessCycles);
    h.addU64(r.sessionsArrived);
    h.addU64(r.sessionsAdmitted);
    h.addU64(r.sessionsRejected);
    h.addU64(r.sessionsRejectedBusy);
    h.addU64(r.sessionsCompleted);
    h.addU64(r.sessionsAbandoned);
    h.addDouble(r.sessionAcceptance);
    h.addU64(r.sessionPeakLive);
    h.addU64(r.sessionLiveBytes);
    h.addU64(r.sessionFlitsInjected);
    h.addU64(r.sessionFlitsDropped);
    h.addU64(r.sessionsLeakedAtEnd);
    h.addU64(r.retiredConnRecorders);
    h.addU64(r.pendingSetupsAtEnd);
    h.addU64(r.openConnsAtEnd);
    for (const LatencySummary *s : {&r.cbrLatency,
                                    &r.linkTransitLatency,
                                    &r.sessionSetupLatency}) {
        h.addU64(s->count);
        h.addU64(s->p50);
        h.addU64(s->p90);
        h.addU64(s->p99);
        h.addU64(s->p999);
        h.addU64(s->maxCycles);
    }
    h.addU64(r.cycles);
    return h.value();
}

} // namespace mmr
