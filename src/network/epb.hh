/**
 * @file
 * Connection establishment by Exhaustive Profitable Backtracking
 * (§3.5, §4.2; Gaughan & Yalamanchili [17]).
 *
 * "Exhaustive profitable backtracking (EPB) will be used when
 * establishing connections.  This algorithm performs an exhaustive
 * search of the minimal paths in the network until a valid path is
 * found or the probe backtracks to the source node."  At every hop
 * the probe reserves link bandwidth (admission registers) and an
 * output virtual channel; when no unsearched profitable link remains
 * it backtracks, releasing the hop's resources and recording the link
 * in the history store so it is never searched twice.
 *
 * The search here is algorithmic (the probe walk is executed
 * synchronously against the routers' real admission and VC state);
 * the step counts it returns convert into setup latency via the
 * per-hop probe cost.  A greedy non-backtracking policy is provided
 * as the baseline for bench_network_epb.
 */

#ifndef MMR_NETWORK_EPB_HH
#define MMR_NETWORK_EPB_HH

#include <functional>
#include <vector>

#include "base/rng.hh"
#include "network/topology.hh"
#include "router/router.hh"

namespace mmr
{

enum class SetupPolicy
{
    Epb,   ///< exhaustive profitable backtracking
    Greedy ///< first profitable link only; fail on a dead end
};

/** Resource demand of the connection being established. */
struct SetupRequest
{
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    TrafficClass klass = TrafficClass::CBR;
    unsigned allocCycles = 0; ///< CBR demand (cycles/round)
    unsigned permCycles = 0;  ///< VBR permanent demand
    unsigned peakCycles = 0;  ///< VBR peak demand
};

/** One reserved hop: the output side of a router along the path. */
struct ReservedHop
{
    NodeId node = kInvalidNode;
    PortId out = kInvalidPort;
    VcId outVc = kInvalidVc;
};

struct SetupResult
{
    bool accepted = false;
    /** Reserved hops from the source router to the destination NI
     * port (the last hop's out is the NI port of dst). */
    std::vector<ReservedHop> hops;
    unsigned forwardSteps = 0;
    unsigned backtrackSteps = 0;
};

/**
 * Run the path search, reserving admission bandwidth and output VCs
 * hop by hop.  On failure every reservation is released.
 *
 * @param topo the router graph
 * @param router_at accessor for the per-node routers
 * @param ni_port_of the host-interface port index of each node
 * @param req connection demand
 * @param policy Epb or Greedy
 * @param rng randomizes the order profitable links are tried
 * @param link_ok optional health filter: false when the directed link
 *        out of @p node through @p port has failed (fault injection)
 */
SetupResult establishPath(
    const Topology &topo,
    const std::function<MmrRouter &(NodeId)> &router_at,
    const std::function<PortId(NodeId)> &ni_port_of,
    const SetupRequest &req, SetupPolicy policy, Rng &rng,
    const std::function<bool(NodeId, PortId)> &link_ok = {});

/**
 * BFS hop distances to @p dst over the links @p link_ok accepts
 * (~0u where unreachable).  With an empty filter this is
 * Topology::bfsDistances.
 */
std::vector<unsigned> survivingDistances(
    const Topology &topo, NodeId dst,
    const std::function<bool(NodeId, PortId)> &link_ok);

} // namespace mmr

#endif // MMR_NETWORK_EPB_HH
