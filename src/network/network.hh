/**
 * @file
 * Multi-router MMR network.
 *
 * Wires one MmrRouter per topology node (degree + 1 ports; the extra
 * port attaches the host interface), connects output ports to the
 * neighbors' input ports with a fixed link latency, returns credits
 * upstream when flits drain, and implements the two transmission
 * regimes of §3:
 *
 *  - PCS connections: established by EPB (or the greedy baseline),
 *    installing a segment in every router along the path; stream
 *    flits then follow the direct channel mappings;
 *  - VCT datagrams (best-effort and control packets): routed hop by
 *    hop with the adaptive up*-down* algorithm, reserving a virtual
 *    channel per hop and releasing it when the single-flit packet
 *    moves on (§3.4).
 */

#ifndef MMR_NETWORK_NETWORK_HH
#define MMR_NETWORK_NETWORK_HH

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "metrics/recorder.hh"
#include "network/epb.hh"
#include "network/probe_protocol.hh"
#include "network/topology.hh"
#include "network/updown.hh"
#include "router/router.hh"
#include "sim/kernel.hh"

namespace mmr
{

class ShardPool;

struct NetworkConfig
{
    /** Per-router template; numPorts is overridden per node. */
    RouterConfig router;
    Cycle linkLatency = 1;       ///< flit cycles per inter-router hop
    double probeHopCycles = 2.0; ///< setup-latency model per probe step
    std::uint64_t seed = 7;

    /**
     * Intra-run parallelism: partition the routers into this many
     * contiguous-id shards, each evaluated/advanced on its own worker
     * thread with cross-shard traffic deferred through per-shard
     * mailboxes (drained in shard order, so results are bit-identical
     * to shards=1).  Clamped to the node count; 0 or 1 selects the
     * serial path.
     */
    unsigned shards = 1;
};

class Network : public Clocked
{
  public:
    Network(Topology topo, NetworkConfig cfg);
    ~Network();

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    unsigned numNodes() const { return topo.numNodes(); }
    const Topology &topology() const { return topo; }
    const UpDownRouting &updown() const { return *updownRoutes; }

    /** Effective shard count (config value clamped to the node count). */
    unsigned shards() const { return numShards; }

    /** Shard owning router @p n (contiguous-id partition). */
    unsigned shardOfNode(NodeId n) const { return shardOf[n]; }

    /** Host-interface port index of a node's router. */
    PortId niPort(NodeId n) const { return topo.degree(n); }

    MmrRouter &routerAt(NodeId n);

    // ------------------------------------------------------------------
    // Connection-oriented traffic (PCS)
    // ------------------------------------------------------------------
    struct SetupOutcome
    {
        ConnId id = kInvalidConn;
        bool accepted = false;
        unsigned forwardSteps = 0;
        unsigned backtrackSteps = 0;
        unsigned pathLength = 0; ///< routers on the final path
        double setupLatencyCycles = 0.0;
    };

    SetupOutcome openCbr(NodeId src, NodeId dst, double rate_bps,
                         SetupPolicy policy = SetupPolicy::Epb);
    SetupOutcome openVbr(NodeId src, NodeId dst, double mean_bps,
                         double peak_bps, int priority,
                         SetupPolicy policy = SetupPolicy::Epb);

    // ---- timed (distributed) establishment ---------------------------
    /**
     * Outcome of a timed setup; polled via timedResult() after the
     * probe/ack protocol finishes.
     */
    struct TimedOutcome
    {
        std::uint64_t token = 0;
        bool done = false;
        bool accepted = false;
        ConnId id = kInvalidConn;
        Cycle setupCycles = 0; ///< measured probe + ack latency
        unsigned forwardSteps = 0;
        unsigned backtrackSteps = 0;
        unsigned pathLength = 0;
    };

    /**
     * Launch a probe at cycle @p now; the connection (if accepted)
     * becomes injectable once timedResult(token)->done.  Unlike
     * openCbr(), setup latency here is *measured*: the probe reserves
     * resources hop by hop in simulated time and contends with other
     * in-flight probes.
     */
    std::uint64_t openCbrTimed(NodeId src, NodeId dst, double rate_bps,
                               Cycle now,
                               SetupPolicy policy = SetupPolicy::Epb);
    std::uint64_t openVbrTimed(NodeId src, NodeId dst, double mean_bps,
                               double peak_bps, int priority, Cycle now,
                               SetupPolicy policy = SetupPolicy::Epb);

    /** nullptr until the token's probe completes. */
    const TimedOutcome *timedResult(std::uint64_t token) const;

    /**
     * Destructive poll: copy the token's outcome into @p out and drop
     * the stored entry.  False while the probe is still in flight.
     * The churn engine uses this instead of timedResult() so the
     * completed-setup table stays bounded over millions of sessions.
     */
    bool takeTimedResult(std::uint64_t token, TimedOutcome &out);

    /** Probes still in flight. */
    std::size_t pendingSetups() const;

    /**
     * Begin tearing a connection down; the per-router segments are
     * removed once their buffers drain.
     */
    bool closeConnection(ConnId id);

    /** Inject a stream flit at the source host; false on back-pressure. */
    bool inject(ConnId id, Flit f, Cycle now);

    /**
     * Resolved injection endpoint — flit-batch processing per
     * (port, VC).  resolveInject() pays the two per-connection hash
     * lookups (network connection map, then the source router's
     * segment map) once; every push() after that deposits straight
     * into the resolved (input port, VC) FIFO.  A handle is only good
     * for the flit cycle it was resolved in: teardown and link
     * failure happen between host ticks (in the network's evaluate
     * prologue), so a host interface that re-resolves each tick stays
     * bit-identical to calling inject() per flit.
     */
    class InjectHandle
    {
      public:
        /** False when the connection is torn down — inject() would
         *  refuse every flit, and so does push(). */
        bool valid() const { return router != nullptr; }

        /** Deposit one flit; false on back-pressure (identical
         *  accounting and trace events to Network::inject). */
        bool push(Flit f, Cycle now);

      private:
        friend class Network;
        Network *net = nullptr;
        MmrRouter *router = nullptr;
        ConnId conn = kInvalidConn;
        NodeId src = 0;
        NodeId dst = 0;
        PortId in = 0;
        VcId inVc = 0;
        TrafficClass klass = TrafficClass::CBR;
    };

    /** Resolve @p id for batched injection this flit cycle. */
    InjectHandle resolveInject(ConnId id);

    /**
     * Renegotiate a CBR connection's bandwidth along its whole path
     * (§4.3 control words); rolls back on any per-hop failure.
     */
    bool renegotiateBandwidth(ConnId id, double new_rate_bps);

    /** Change a VBR connection's priority along its path. */
    bool setConnectionPriority(ConnId id, int priority);

    /** Routers on the path of an open connection (empty if unknown). */
    std::vector<NodeId> connectionPath(ConnId id) const;

    std::size_t openConnectionCount() const { return pcs.size(); }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    /**
     * Fail the bidirectional link between @p a and @p b: flits
     * crossing it (buffered, in flight, or future) are lost and
     * counted, connections routed over it are marked failed and torn
     * down as they drain, datagram routing recomputes up*-down* over
     * the surviving links, and subsequent setup probes avoid it.
     * Returns false when the nodes are not adjacent or the link is
     * already down.
     */
    bool failLink(NodeId a, NodeId b);

    /** Repair a previously failed link (routing recomputed). */
    bool repairLink(NodeId a, NodeId b);

    bool linkIsUp(NodeId a, NodeId b) const;

    /** State of a connection as seen by the host interface. */
    enum class ConnState
    {
        Open,   ///< healthy, injectable
        Failed, ///< lost a link; draining toward removal
        Gone    ///< unknown / fully removed
    };
    ConnState connectionState(ConnId id) const;

    std::uint64_t flitsLostToFailures() const { return statLostFlits; }
    std::uint64_t connectionsFailed() const { return statConnsFailed; }
    std::uint64_t flitsCorrupted() const { return statFlitsCorrupted; }
    std::uint64_t datagramsLost() const { return statDatagramsLost; }

    /**
     * Invoked whenever a link failure marks a connection failed, with
     * (id, src, dst, class) — the subscription point for recovery
     * machinery (fault/recovery.hh) that re-routes affected
     * connections.  Called from inside failLink().
     */
    using ConnectionFailureFn =
        std::function<void(ConnId, NodeId, NodeId, TrafficClass)>;
    void setConnectionFailureHook(ConnectionFailureFn fn)
    {
        connFailHook = std::move(fn);
    }

    /**
     * Fault-injection filter consulted once per flit entering an
     * inter-router link (never the NI): return true to corrupt the
     * flit on the wire.  The downstream router's CRC check discards
     * corrupted flits on arrival, returning the upstream credit (and,
     * for datagrams, the link VC) so nothing wedges.
     */
    using LinkCorruptFn =
        std::function<bool(NodeId, PortId, const Flit &)>;
    void setLinkCorruptHook(LinkCorruptFn fn)
    {
        corruptHook = std::move(fn);
    }

    /** The timed-setup protocol driver (setup timeout, message-loss
     * fault hooks, probe-held reservation accounting). */
    ProbeSetupManager &probes() { return *probeMgr; }
    const ProbeSetupManager &probes() const { return *probeMgr; }

    /**
     * Register the full invariant battery over this network into
     * @p chk: every router's seven invariants under a "router<N>."
     * prefix — with the admission-ledger audit extended by the
     * bandwidth in-flight setup probes hold — plus the network-level
     * link-state symmetry and PCS segment-consistency checks.  The
     * checker must tick after the network.
     */
    void registerInvariants(InvariantChecker &chk,
                            unsigned sweep_period = 16);

    // ------------------------------------------------------------------
    // Datagram traffic (VCT)
    // ------------------------------------------------------------------

    /**
     * Send a single-flit best-effort or control packet.  @p flow tags
     * the packet for end-to-end statistics.
     */
    void sendDatagram(NodeId src, NodeId dst, TrafficClass klass,
                      ConnId flow, Cycle now, std::uint32_t seq = 0);

    // ------------------------------------------------------------------
    // Clocked
    // ------------------------------------------------------------------
    MMR_HOT_PATH void evaluate(Cycle now) override;
    MMR_HOT_PATH void advance(Cycle now) override;

    // ------------------------------------------------------------------
    // Measurement
    // ------------------------------------------------------------------
    /** End-to-end recorder (delay = deliver - create, in cycles). */
    MetricsRecorder &endToEnd() { return e2e; }

    std::uint64_t flitsDelivered() const { return statDelivered; }
    std::uint64_t datagramsSent() const { return statDatagramsSent; }
    std::uint64_t datagramsDelivered() const { return statDatagramsDone; }
    std::uint64_t datagramDrops() const { return statDatagramDrops; }
    std::uint64_t pendingDatagrams() const
    {
        return pendingArrivals.size();
    }
    std::uint64_t injectRejects() const { return statInjectRejects; }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /**
     * Register network-level statistics plus every router's stats
     * (prefixed "router<N>.") into @p reg.  Per-router detail defaults
     * to aggregate counters to keep the column count manageable on
     * large topologies.
     */
    void registerStats(
        StatsRegistry &reg,
        MmrRouter::StatsDetail detail = MmrRouter::StatsDetail::Aggregate);

  private:
    struct PcsConnection
    {
        ConnId id;
        NodeId src;
        NodeId dst;
        TrafficClass klass;
        std::vector<ReservedHop> hops;
        bool closing = false;
        bool failed = false;
    };

    /** A flit in flight on an inter-router link. */
    struct LinkFlit
    {
        NodeId toNode;
        PortId toPort;
        VcId vc;
        Flit flit;
        Cycle arriveAt;
    };

    /** A datagram that could not claim its next-hop resources yet. */
    struct PendingArrival
    {
        NodeId node;
        PortId inPort; ///< kInvalidPort: inject fresh at the NI
        VcId inVc;     ///< kInvalidVc until allocated (NI side)
        Flit flit;
    };

    void wireRouter(NodeId n);
    void handleEgress(NodeId n, PortId out, VcId out_vc, const Flit &f,
                      Cycle now);
    void handleCreditReturn(NodeId n, PortId in, VcId vc, Cycle now);
    void handleSegmentRemoved(NodeId n, const SegmentParams &seg);
    void deliverToHost(NodeId n, const Flit &f, Cycle now);

    // ------------------------------------------------------------------
    // Shard-parallel evaluation core
    // ------------------------------------------------------------------

    /**
     * One router callback captured during a parallel phase instead of
     * being applied inline.  A worker only ever touches its own
     * shard's routers plus its own shard's mailbox; every cross-shard
     * (and cross-router) side effect — link egress, upstream credit
     * return, upstream VC release on segment removal — becomes one of
     * these records, replayed by the coordinator after the phase
     * barrier in ascending shard order.  Within a shard the log is
     * append-ordered, so the replay order equals the ascending-
     * router-id emission order of the serial loop and the results are
     * bit-identical (see DESIGN.md §12 for the full argument).
     */
    struct DeferredEvent
    {
        enum class Kind : std::uint8_t
        {
            Egress,    ///< sink callback: flit leaving a router
            Credit,    ///< credit return toward the upstream router
            SegRemoved ///< datagram segment freed its upstream link VC
        };

        Kind kind;
        NodeId node;
        PortId port; ///< Egress: out port; Credit: in port
        VcId vc;     ///< Egress: out VC;   Credit: in VC
        Flit flit;   ///< Egress only
        SegmentParams seg; ///< SegRemoved only
    };

    /** Per-shard deferred-event log, cache-line padded: neighboring
     * shards append concurrently, and without the alignas the logs'
     * size/capacity words would false-share one line. */
    struct alignas(64) ShardMailbox
    {
        std::vector<DeferredEvent> log;
    };

    /** Replay every mailbox in (shard, emission) order, then clear. */
    MMR_HOT_PATH void drainMailboxes(Cycle now);

    unsigned numShards = 1;
    std::vector<NodeId> shardStart; ///< numShards+1 fenceposts
    std::vector<unsigned> shardOf;  ///< node id -> shard id
    std::vector<ShardMailbox> mailboxes;
    std::unique_ptr<ShardPool> pool;

    /** True only while routers run under the pool: router callbacks
     * append to mailboxes instead of applying inline.  Written by the
     * coordinator before/after each phase; workers read it under the
     * pool's release/acquire barrier. */
    bool deferring = false;

    /** Pre-bound phase callbacks (no per-cycle allocation). */
    std::function<void(unsigned)> evalPhase;
    std::function<void(unsigned)> advPhase;
    Cycle phaseCycle = 0;

    /**
     * Try to give a datagram its next hop at @p node: pick an output
     * by adaptive up*-down* routing (or the NI port when the packet is
     * home), allocate the VC, install a transient segment and deposit
     * the flit.  Returns false when resources are unavailable.
     */
    bool placeDatagram(PendingArrival &p, Cycle now);

    void processArrivals(Cycle now);
    void processPendingCloses();

    SetupOutcome finishSetup(const SetupRequest &req,
                             const SetupResult &sr, double rate_or_mean,
                             double peak_bps, int priority);

    /**
     * Install the per-router segments of a fully reserved path;
     * returns the connection id or kInvalidConn (rolled back).
     */
    ConnId installReservedPath(const SetupRequest &req,
                               const std::vector<ReservedHop> &hops,
                               double rate_or_mean, int priority);

    void onTimedSetupComplete(const TimedSetup &s);

    Topology topo;
    NetworkConfig cfg;
    Rng rand;
    std::unique_ptr<UpDownRouting> updownRoutes;
    std::vector<std::unique_ptr<MmrRouter>> routers;
    std::unique_ptr<ProbeSetupManager> probeMgr;

    struct TimedRequestInfo
    {
        double rateOrMean = 0.0;
        int priority = 0;
    };
    std::unordered_map<std::uint64_t, TimedRequestInfo> timedInfo;
    std::unordered_map<std::uint64_t, TimedOutcome> timedDone;

    std::unordered_map<ConnId, PcsConnection> pcs;
    ConnId nextPcsId = 0x100000;   ///< global PCS connection ids
    ConnId nextTransient = 0x8000000; ///< per-packet segment ids

    std::deque<LinkFlit> linkQueue;
    std::deque<PendingArrival> pendingArrivals;

    /** Scratch for processPendingCloses(): ids of closing connections,
     * sorted before teardown so the walk order never depends on the
     * pcs bucket layout.  A member so its capacity persists. */
    std::vector<ConnId> closeScratch;

    void rebuildRouting();
    bool directedLinkUp(NodeId n, PortId port) const;

    /** linkDown[n][port] true when the link out of port has failed. */
    std::vector<std::vector<bool>> linkDown;

    ConnectionFailureFn connFailHook;
    LinkCorruptFn corruptHook;

    MetricsRecorder e2e;
    std::uint64_t statLostFlits = 0;
    std::uint64_t statConnsFailed = 0;
    std::uint64_t statFlitsCorrupted = 0;
    std::uint64_t statDatagramsLost = 0;
    std::uint64_t statDelivered = 0;
    std::uint64_t statDatagramsSent = 0;
    std::uint64_t statDatagramsDone = 0;
    std::uint64_t statDatagramDrops = 0;
    std::uint64_t statInjectRejects = 0;
};

} // namespace mmr

#endif // MMR_NETWORK_NETWORK_HH
