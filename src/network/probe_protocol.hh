/**
 * @file
 * Timed PCS connection establishment (§3.4, §3.5).
 *
 * The algorithmic establishPath() reserves a whole path in zero
 * simulated time; this module implements the *distributed* protocol
 * the paper describes: a routing probe travels hop by hop, reserving
 * link bandwidth and an output virtual channel at every router it
 * passes, backtracking (and releasing) when it hits a dead end, and —
 * once the destination accepts — an acknowledgment returns along the
 * reverse channel mappings before the source may transmit.  Probes,
 * backtracking probes and acknowledgments are short control messages
 * handled during switch reconfiguration cycles (§3.4), so each hop
 * costs a small fixed number of flit cycles rather than a full
 * scheduling round trip.
 *
 * Because resources are reserved and released *as the probe moves*,
 * concurrent setups contend realistically: two probes racing for the
 * last virtual channel of a link interleave in simulated time and
 * exactly one wins.
 */

#ifndef MMR_NETWORK_PROBE_PROTOCOL_HH
#define MMR_NETWORK_PROBE_PROTOCOL_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/bitvector.hh"
#include "base/rng.hh"
#include "network/epb.hh"
#include "network/topology.hh"

namespace mmr
{

/** Lifecycle of one timed setup attempt. */
enum class SetupState
{
    Probing,     ///< probe searching forward / backtracking
    Returning,   ///< path found; ack travelling back to the source
    Established, ///< ack arrived; data may flow
    Refused      ///< probe backtracked out of the source node
};

std::string to_string(SetupState s);

/** Handle + result of a timed setup. */
struct TimedSetup
{
    std::uint64_t token = 0;
    SetupState state = SetupState::Probing;
    SetupRequest request;
    SetupPolicy policy = SetupPolicy::Epb;
    std::vector<ReservedHop> hops; ///< reserved so far / final path
    unsigned forwardSteps = 0;
    unsigned backtrackSteps = 0;
    Cycle startedAt = 0;
    Cycle finishedAt = 0; ///< valid once Established/Refused
    /** Refused because the source's setup timer expired (the probe or
     * its ack was lost, or establishment simply took too long), not
     * because the search was exhausted. */
    bool timedOut = false;
};

/**
 * Drives all in-flight probes.  The owner (Network) calls step() once
 * per flit cycle and provides router access; on completion the
 * manager invokes the owner's callback so it can install the segments
 * (Established) or record the refusal.
 */
class ProbeSetupManager
{
  public:
    using RouterAccess = std::function<MmrRouter &(NodeId)>;
    using NiPortOf = std::function<PortId(NodeId)>;
    /** Invoked exactly once per setup when it leaves the in-flight
     * set (state Established or Refused). */
    using CompletionFn = std::function<void(const TimedSetup &)>;
    /** Whether the directed link from @p node through @p port is
     * usable (false once failed). */
    using LinkAlive = std::function<bool(NodeId, PortId)>;
    /** Fault-injection filter: return true to lose the setup's next
     * protocol message (probe, backtrack or ack hop) on the wire. */
    using MessageLoss = std::function<bool(const TimedSetup &)>;

    ProbeSetupManager(const Topology &topo, RouterAccess router_at,
                      NiPortOf ni_port_of, CompletionFn on_complete,
                      std::uint64_t seed);

    /** Per-hop latency of probe/backtrack/ack messages (flit cycles). */
    void setHopLatency(Cycle cycles) { hopLatency = cycles; }

    /** Optional link-health filter (fault injection). */
    void setLinkAlive(LinkAlive fn) { linkAlive = std::move(fn); }

    /**
     * Source-side setup timer (§3.4 pushes such decisions to the
     * interfaces): a setup not Established within @p cycles of its
     * begin() is refused with timedOut set and every hop reservation
     * released.  This is the recovery path for lost probes/acks —
     * without it a dropped message would strand its reservations
     * forever.  0 disables the timer (only safe with no message loss).
     */
    void setSetupTimeout(Cycle cycles) { timeoutCycles = cycles; }
    Cycle setupTimeout() const { return timeoutCycles; }

    /** Optional fault-injection hook losing protocol messages. */
    void setMessageLoss(MessageLoss fn) { messageLoss = std::move(fn); }

    /** Probe/backtrack/ack messages lost by the fault hook. */
    std::uint64_t messagesLost() const { return statMessagesLost; }

    /** Setups refused by the source timer expiring. */
    std::uint64_t setupTimeouts() const { return statTimeouts; }

    /**
     * Add the bandwidth held at node @p n by in-flight probes to the
     * per-output demand vectors (sized to the node's port count).
     * Lets an admission-ledger audit account for reservations that
     * are not yet installed segments.
     */
    void accountReservations(NodeId n, std::vector<unsigned> &alloc,
                             std::vector<unsigned> &peak) const;

    /**
     * Launch a probe.  Returns a token to correlate with the
     * completion callback.
     */
    std::uint64_t begin(const SetupRequest &req, SetupPolicy policy,
                        Cycle now);

    /** Advance every in-flight probe that is due at @p now. */
    void step(Cycle now);

    std::size_t inFlight() const { return probes.size(); }

  private:
    struct Probe
    {
        TimedSetup setup;
        NodeId at = kInvalidNode;
        Cycle nextAction = 0;
        /** Source-timer expiry (0 = no timer). */
        Cycle deadline = 0;
        /** The next protocol message was lost; the probe is inert
         * until the source timer reclaims it. */
        bool lost = false;
        /** Output links already searched, per visited node (the
         * per-input-VC history store of §3.5, carried with the probe
         * in this synchronous-model implementation). */
        std::unordered_map<NodeId, BitVector> searched;
        std::vector<unsigned> distToDst;
        /** Ack position while Returning (index into hops). */
        std::size_t ackIndex = 0;
    };

    BitVector &searchedAt(Probe &p, NodeId n);
    bool linkUsable(NodeId n, PortId port) const;

    /** One protocol action for one probe; returns true when the probe
     * is finished and must be removed. */
    bool advanceProbe(Probe &p, Cycle now);

    /** Release every reserved hop and complete as Refused/timedOut. */
    void timeoutProbe(Probe &p, Cycle now);

    const Topology &topo;
    RouterAccess routerAt;
    NiPortOf niPortOf;
    CompletionFn onComplete;
    LinkAlive linkAlive; ///< empty = all links healthy
    MessageLoss messageLoss; ///< empty = lossless control channel
    Rng rng;
    Cycle hopLatency = 2;
    Cycle timeoutCycles = 0;
    std::uint64_t nextToken = 1;
    std::uint64_t statMessagesLost = 0;
    std::uint64_t statTimeouts = 0;
    std::vector<Probe> probes;
};

} // namespace mmr

#endif // MMR_NETWORK_PROBE_PROTOCOL_HH
