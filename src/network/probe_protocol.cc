#include "network/probe_protocol.hh"

#include <algorithm>

#include "base/logging.hh"

namespace mmr
{

std::string
to_string(SetupState s)
{
    switch (s) {
      case SetupState::Probing:
        return "probing";
      case SetupState::Returning:
        return "returning";
      case SetupState::Established:
        return "established";
      case SetupState::Refused:
        return "refused";
    }
    return "?";
}

namespace
{

bool
reserveHop(MmrRouter &router, PortId out, const SetupRequest &req,
           VcId &out_vc)
{
    AdmissionController &admit = router.admission();
    bool admitted = false;
    if (req.klass == TrafficClass::CBR)
        admitted = admit.tryAdmitCbr(out, req.allocCycles);
    else if (req.klass == TrafficClass::VBR)
        admitted = admit.tryAdmitVbr(out, req.permCycles, req.peakCycles);
    else
        mmr_panic("probes establish CBR/VBR connections only");
    if (!admitted)
        return false;
    out_vc = router.routing().allocOutputVc(out);
    if (out_vc == kInvalidVc) {
        if (req.klass == TrafficClass::CBR)
            admit.releaseCbr(out, req.allocCycles);
        else
            admit.releaseVbr(out, req.permCycles, req.peakCycles);
        return false;
    }
    return true;
}

void
releaseHop(MmrRouter &router, const ReservedHop &hop,
           const SetupRequest &req)
{
    router.routing().freeOutputVc(hop.out, hop.outVc);
    if (req.klass == TrafficClass::CBR)
        router.admission().releaseCbr(hop.out, req.allocCycles);
    else
        router.admission().releaseVbr(hop.out, req.permCycles,
                                      req.peakCycles);
}

} // namespace

ProbeSetupManager::ProbeSetupManager(const Topology &topo_,
                                     RouterAccess router_at,
                                     NiPortOf ni_port_of,
                                     CompletionFn on_complete,
                                     std::uint64_t seed)
    : topo(topo_), routerAt(std::move(router_at)),
      niPortOf(std::move(ni_port_of)), onComplete(std::move(on_complete)),
      rng(seed)
{
    mmr_assert(routerAt && niPortOf && onComplete,
               "probe manager needs router access and a callback");
}

BitVector &
ProbeSetupManager::searchedAt(Probe &p, NodeId n)
{
    BitVector &v = p.searched[n];
    if (v.size() == 0)
        v.resize(topo.degree(n) + 1);
    return v;
}

bool
ProbeSetupManager::linkUsable(NodeId n, PortId port) const
{
    return !linkAlive || linkAlive(n, port);
}

std::uint64_t
ProbeSetupManager::begin(const SetupRequest &req, SetupPolicy policy,
                         Cycle now)
{
    mmr_assert(req.src < topo.numNodes() && req.dst < topo.numNodes() &&
                   req.src != req.dst,
               "bad setup endpoints");
    Probe p;
    p.setup.token = nextToken++;
    p.setup.request = req;
    p.setup.policy = policy;
    p.setup.startedAt = now;
    p.at = req.src;
    p.nextAction = now; // first hop attempt happens this cycle
    p.deadline = timeoutCycles ? now + timeoutCycles : 0;
    p.distToDst = survivingDistances(topo, req.dst, linkAlive);
    probes.push_back(std::move(p));
    return probes.back().setup.token;
}

void
ProbeSetupManager::timeoutProbe(Probe &p, Cycle now)
{
    TimedSetup &s = p.setup;
    for (auto it = s.hops.rbegin(); it != s.hops.rend(); ++it)
        releaseHop(routerAt(it->node), *it, s.request);
    s.hops.clear();
    s.state = SetupState::Refused;
    s.timedOut = true;
    s.finishedAt = now;
    ++statTimeouts;
    onComplete(s);
}

void
ProbeSetupManager::accountReservations(NodeId n,
                                       std::vector<unsigned> &alloc,
                                       std::vector<unsigned> &peak) const
{
    for (const Probe &p : probes) {
        const SetupRequest &req = p.setup.request;
        for (const ReservedHop &hop : p.setup.hops) {
            if (hop.node != n)
                continue;
            mmr_assert(hop.out < alloc.size() && hop.out < peak.size(),
                       "reservation accounting vectors too small");
            if (req.klass == TrafficClass::CBR) {
                alloc[hop.out] += req.allocCycles;
            } else {
                alloc[hop.out] += req.permCycles;
                peak[hop.out] += req.peakCycles;
            }
        }
    }
}

bool
ProbeSetupManager::advanceProbe(Probe &p, Cycle now)
{
    TimedSetup &s = p.setup;
    const SetupRequest &req = s.request;

    // Fault injection: this action's message (probe hop, backtrack or
    // ack hop) is lost on the wire.  The probe goes inert; its hop
    // reservations stay held until the source timer reclaims them.
    if (messageLoss && messageLoss(s)) {
        mmr_assert(p.deadline != 0,
                   "message loss requires a setup timeout, or lost "
                   "probes would strand reservations forever");
        p.lost = true;
        ++statMessagesLost;
        return false;
    }

    if (s.state == SetupState::Returning) {
        // The acknowledgment retraces the path toward the source via
        // the reverse channel mappings, one hop per action.
        if (p.ackIndex == 0) {
            s.state = SetupState::Established;
            s.finishedAt = now;
            onComplete(s);
            return true;
        }
        --p.ackIndex;
        p.nextAction = now + hopLatency;
        return false;
    }

    // --- Probing ---------------------------------------------------
    if (p.at == req.dst) {
        const PortId ni = niPortOf(p.at);
        if (!searchedAt(p, p.at).test(ni)) {
            searchedAt(p, p.at).set(ni);
            VcId vc = kInvalidVc;
            if (reserveHop(routerAt(p.at), ni, req, vc)) {
                s.hops.push_back(ReservedHop{p.at, ni, vc});
                // Ack walks back over every reserved hop.
                s.state = SetupState::Returning;
                p.ackIndex = s.hops.size();
                p.nextAction = now + hopLatency;
                return false;
            }
        }
        // Destination host link saturated: dead end, fall through to
        // the backtrack logic below.
    } else {
        // Profitable, unsearched, healthy links in random order.
        std::vector<PortId> cands;
        for (const auto &port : topo.ports(p.at)) {
            if (p.distToDst[port.neighbor] + 1 != p.distToDst[p.at])
                continue;
            if (searchedAt(p, p.at).test(port.localPort))
                continue;
            if (!linkUsable(p.at, port.localPort))
                continue;
            cands.push_back(port.localPort);
        }
        rng.shuffle(cands);
        for (PortId out : cands) {
            searchedAt(p, p.at).set(out);
            VcId vc = kInvalidVc;
            if (!reserveHop(routerAt(p.at), out, req, vc))
                continue;
            s.hops.push_back(ReservedHop{p.at, out, vc});
            p.at = topo.neighborAt(p.at, out);
            ++s.forwardSteps;
            p.nextAction = now + hopLatency;
            return false;
        }
    }

    // Dead end: give up (greedy / exhausted source) or backtrack.
    if (s.policy == SetupPolicy::Greedy || s.hops.empty()) {
        for (auto it = s.hops.rbegin(); it != s.hops.rend(); ++it)
            releaseHop(routerAt(it->node), *it, req);
        s.hops.clear();
        s.state = SetupState::Refused;
        s.finishedAt = now;
        onComplete(s);
        return true;
    }
    const ReservedHop hop = s.hops.back();
    s.hops.pop_back();
    releaseHop(routerAt(hop.node), hop, req);
    p.at = hop.node;
    ++s.backtrackSteps;
    p.nextAction = now + hopLatency;
    return false;
}

void
ProbeSetupManager::step(Cycle now)
{
    for (std::size_t i = 0; i < probes.size();) {
        Probe &p = probes[i];
        // The source timer reclaims overdue setups (lost messages or
        // simply a search that ran too long) before any further
        // protocol action.
        if (p.deadline != 0 && now >= p.deadline) {
            timeoutProbe(p, now);
            probes.erase(probes.begin() +
                         static_cast<std::ptrdiff_t>(i));
            continue;
        }
        if (p.lost || p.nextAction > now) {
            ++i;
            continue;
        }
        if (advanceProbe(p, now)) {
            probes.erase(probes.begin() +
                         static_cast<std::ptrdiff_t>(i));
        } else {
            ++i;
        }
    }
}

} // namespace mmr
