/**
 * @file
 * up*-down* routing with minimal-adaptive selection (§3.5, refs [26],
 * [27]).
 *
 * The MMR routes best-effort packets with "a fully adaptive routing
 * algorithm that has been proposed for wormhole networks with
 * irregular topology and is valid for VCT switching" (Silla & Duato).
 * The deadlock-free substrate is up*-down*: a BFS spanning tree
 * assigns each node a level; a link is "up" toward the root (lower
 * level, node id breaking ties) and a legal route never uses an up
 * link after a down link.  The adaptive layer picks, among the legal
 * next hops, one that makes progress toward the destination, falling
 * back to any legal hop when no profitable legal hop exists.
 */

#ifndef MMR_NETWORK_UPDOWN_HH
#define MMR_NETWORK_UPDOWN_HH

#include <functional>
#include <vector>

#include "base/rng.hh"
#include "network/topology.hh"

namespace mmr
{

class UpDownRouting
{
  public:
    /** Link-health predicate: false when the a<->b link has failed. */
    using LinkFilter = std::function<bool(NodeId, NodeId)>;

    /**
     * @param topo the physical topology
     * @param root spanning-tree root
     * @param filter optional health filter — dead links are excluded
     *        from the tree and from every route.  With a filter the
     *        surviving graph may be disconnected; unroutable pairs
     *        simply have no legal next hops.
     */
    UpDownRouting(const Topology &topo, NodeId root = 0,
                  LinkFilter filter = {});

    /** BFS level of a node (root is 0). */
    unsigned level(NodeId n) const;

    /** True when traversing from -> to goes "up" (toward the root). */
    bool isUp(NodeId from, NodeId to) const;

    /**
     * Legal next hops from @p at toward @p dst.
     * @param down_phase true once the packet has used a down link
     * @return neighbor nodes reachable without violating up*-down*
     */
    std::vector<NodeId> legalNextHops(NodeId at, NodeId dst,
                                      bool down_phase) const;

    /**
     * Adaptive choice: a profitable (distance-reducing) legal hop if
     * any exists, otherwise any legal hop that stays on a working
     * up*-down* route; kInvalidNode when the packet cannot move.
     *
     * @param rng breaks ties among equally good hops
     */
    NodeId adaptiveNextHop(NodeId at, NodeId dst, bool down_phase,
                           Rng &rng) const;

    /**
     * Whether @p dst remains reachable from @p at given the phase —
     * used to prove routes exist (livelock check in tests).
     */
    bool reachable(NodeId at, NodeId dst, bool down_phase) const;

    const Topology &topology() const { return topo; }

  private:
    /** Distance to dst honoring the up*-down* phase automaton. */
    std::vector<unsigned> phaseDistances(NodeId dst) const;

    bool linkOk(NodeId a, NodeId b) const
    {
        return !filter || filter(a, b);
    }

    /** BFS levels over the surviving links only. */
    std::vector<unsigned> filteredBfs(NodeId root) const;

    const Topology &topo;
    LinkFilter filter;
    std::vector<unsigned> levels;
    /**
     * Distance matrices in the phase automaton, computed lazily per
     * destination and cached: index [dst][node * 2 + phase], phase 1
     * meaning the packet has already gone down.
     */
    mutable std::vector<std::vector<unsigned>> distCache;
};

} // namespace mmr

#endif // MMR_NETWORK_UPDOWN_HH
