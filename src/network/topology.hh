/**
 * @file
 * Network topologies (§1, §3.5).
 *
 * The MMR targets clusters and LANs, where topologies are frequently
 * irregular (switch-based networks of workstations); the routing
 * algorithms cited ([26], [27]) are designed for irregular topologies
 * but regular ones (meshes, tori, rings) are supported as well for the
 * comparative benches.  A topology is an undirected multigraph-free
 * graph of routers; each edge becomes a pair of unidirectional links
 * occupying one port on each endpoint.  Port indices at a node are
 * assigned in edge-insertion order; the network layer reserves one
 * extra port per node for the host interface.
 */

#ifndef MMR_NETWORK_TOPOLOGY_HH
#define MMR_NETWORK_TOPOLOGY_HH

#include <vector>

#include "base/rng.hh"
#include "base/types.hh"

namespace mmr
{

class Topology
{
  public:
    /** One endpoint view of a link. */
    struct PortInfo
    {
        NodeId neighbor = kInvalidNode;
        PortId localPort = kInvalidPort;  ///< port index at this node
        PortId remotePort = kInvalidPort; ///< port index at neighbor
    };

    explicit Topology(unsigned num_nodes);

    unsigned numNodes() const
    {
        return static_cast<unsigned>(adj.size());
    }

    /** Add a bidirectional link; fatal on self-loops or duplicates. */
    void addLink(NodeId a, NodeId b);

    unsigned degree(NodeId n) const;

    /** Largest degree over all nodes. */
    unsigned maxDegree() const;

    const std::vector<PortInfo> &ports(NodeId n) const;

    /** Port at @p from leading to @p to; kInvalidPort if not adjacent. */
    PortId portTowards(NodeId from, NodeId to) const;

    /** Neighbor reached through a port. */
    NodeId neighborAt(NodeId n, PortId port) const;

    bool hasLink(NodeId a, NodeId b) const;

    /** BFS hop distances from @p from (UINT_MAX when unreachable). */
    std::vector<unsigned> bfsDistances(NodeId from) const;

    unsigned distance(NodeId a, NodeId b) const;

    bool connected() const;

    unsigned numLinks() const { return links; }

    // --- builders --------------------------------------------------
    static Topology mesh2d(unsigned width, unsigned height);
    static Topology torus2d(unsigned width, unsigned height);
    static Topology ring(unsigned n);
    static Topology star(unsigned leaves);

    /**
     * Random connected irregular topology with bounded degree —
     * the cluster/LAN setting of the paper.
     *
     * @param n node count
     * @param extra_links links added beyond the random spanning tree
     * @param max_degree per-node degree bound
     */
    static Topology irregular(unsigned n, unsigned extra_links,
                              unsigned max_degree, Rng &rng);

    /**
     * k-ary multistage interconnection network (butterfly MIN): @p
     * stages stages of radix^(stages-1) switches each; switch j of
     * stage i links to the @p radix switches of stage i+1 whose base-
     * radix representation differs from j only in digit stages-2-i.
     * Every switch is a router with its own host, so the generator
     * scales runs to stages * radix^(stages-1) routers — the large-MIN
     * setting of the Stergiou multistage analysis.
     */
    static Topology multistage(unsigned radix, unsigned stages);

    /**
     * Three-tier k-ary fat-tree (@p radix even, >= 4): radix pods of
     * radix/2 edge + radix/2 aggregation switches, plus (radix/2)^2
     * core switches; edge switches link to every aggregation switch
     * in their pod, and aggregation switch j of each pod links to core
     * switches [j*radix/2, (j+1)*radix/2).  Node ids: cores first,
     * then pod by pod (aggregation before edge).
     */
    static Topology fatTree(unsigned radix);

    /**
     * Two-tier leaf-spine fabric: every leaf links to every spine
     * (complete bipartite).  Node ids: spines [0, spines), leaves
     * after.
     */
    static Topology leafSpine(unsigned spines, unsigned leaves);

  private:
    std::vector<std::vector<PortInfo>> adj;
    unsigned links = 0;
};

} // namespace mmr

#endif // MMR_NETWORK_TOPOLOGY_HH
