#include "network/epb.hh"

#include <algorithm>

#include "base/bitvector.hh"
#include "base/logging.hh"

namespace mmr
{

namespace
{

/** Try to reserve the connection's demand on one output link. */
bool
reserveHop(MmrRouter &router, PortId out, const SetupRequest &req,
           VcId &out_vc)
{
    AdmissionController &admit = router.admission();
    bool admitted = false;
    if (req.klass == TrafficClass::CBR)
        admitted = admit.tryAdmitCbr(out, req.allocCycles);
    else if (req.klass == TrafficClass::VBR)
        admitted = admit.tryAdmitVbr(out, req.permCycles, req.peakCycles);
    else
        mmr_panic("EPB establishes CBR/VBR connections only");
    if (!admitted)
        return false;

    out_vc = router.routing().allocOutputVc(out);
    if (out_vc == kInvalidVc) {
        if (req.klass == TrafficClass::CBR)
            admit.releaseCbr(out, req.allocCycles);
        else
            admit.releaseVbr(out, req.permCycles, req.peakCycles);
        return false;
    }
    return true;
}

void
releaseHop(MmrRouter &router, const ReservedHop &hop,
           const SetupRequest &req)
{
    router.routing().freeOutputVc(hop.out, hop.outVc);
    if (req.klass == TrafficClass::CBR)
        router.admission().releaseCbr(hop.out, req.allocCycles);
    else
        router.admission().releaseVbr(hop.out, req.permCycles,
                                      req.peakCycles);
}

} // namespace

std::vector<unsigned>
survivingDistances(const Topology &topo, NodeId dst,
                   const std::function<bool(NodeId, PortId)> &link_ok)
{
    if (!link_ok)
        return topo.bfsDistances(dst);
    constexpr unsigned inf = ~0u;
    std::vector<unsigned> dist(topo.numNodes(), inf);
    std::vector<NodeId> frontier{dst};
    dist[dst] = 0;
    while (!frontier.empty()) {
        std::vector<NodeId> next;
        for (NodeId n : frontier) {
            for (const auto &p : topo.ports(n)) {
                // The link is traversed neighbor -> n here, but
                // failures take out both directions.
                if (!link_ok(p.neighbor, p.remotePort))
                    continue;
                if (dist[p.neighbor] == inf) {
                    dist[p.neighbor] = dist[n] + 1;
                    next.push_back(p.neighbor);
                }
            }
        }
        frontier = std::move(next);
    }
    return dist;
}

SetupResult
establishPath(const Topology &topo,
              const std::function<MmrRouter &(NodeId)> &router_at,
              const std::function<PortId(NodeId)> &ni_port_of,
              const SetupRequest &req, SetupPolicy policy, Rng &rng,
              const std::function<bool(NodeId, PortId)> &link_ok)
{
    mmr_assert(req.src < topo.numNodes() && req.dst < topo.numNodes(),
               "setup endpoints out of range");
    mmr_assert(req.src != req.dst, "connection to self");

    SetupResult res;
    // Minimal-path distances over the *surviving* graph: a link that
    // failed must neither count as a shortcut nor attract probes.
    const std::vector<unsigned> dist =
        survivingDistances(topo, req.dst, link_ok);
    if (dist[req.src] == ~0u) {
        res.accepted = false;
        return res; // destination unreachable on surviving links
    }

    // Probe-local history: which output links have been searched at
    // each visited node.  (The hardware keeps this per input virtual
    // channel in the routing unit; the synchronous search keeps it
    // with the probe, which is semantically equivalent because a probe
    // occupies exactly one input VC per visited router.)
    std::vector<BitVector> searched(topo.numNodes());
    auto searched_at = [&](NodeId n) -> BitVector & {
        if (searched[n].size() == 0)
            searched[n].resize(topo.degree(n) + 1);
        return searched[n];
    };

    NodeId cur = req.src;
    for (;;) {
        if (cur == req.dst) {
            // Reserve the final hop onto the destination host link.
            const PortId ni = ni_port_of(cur);
            VcId vc = kInvalidVc;
            if (reserveHop(router_at(cur), ni, req, vc)) {
                res.hops.push_back(ReservedHop{cur, ni, vc});
                res.accepted = true;
                return res;
            }
            // The host link itself is saturated: nothing to search
            // here, treat as a dead end and backtrack.
            searched_at(cur).set(ni);
        }

        if (cur != req.dst) {
            // Profitable candidates: minimal-path neighbors whose
            // link has not been searched yet, in random order.
            std::vector<PortId> cands;
            for (const auto &p : topo.ports(cur)) {
                if (dist[p.neighbor] + 1 != dist[cur])
                    continue;
                if (searched_at(cur).test(p.localPort))
                    continue;
                if (link_ok && !link_ok(cur, p.localPort))
                    continue;
                cands.push_back(p.localPort);
            }
            rng.shuffle(cands);

            bool advanced = false;
            for (PortId out : cands) {
                searched_at(cur).set(out);
                VcId vc = kInvalidVc;
                if (!reserveHop(router_at(cur), out, req, vc))
                    continue;
                res.hops.push_back(ReservedHop{cur, out, vc});
                cur = topo.neighborAt(cur, out);
                ++res.forwardSteps;
                advanced = true;
                break;
            }
            if (advanced)
                continue;
        }

        // Dead end: backtrack (EPB) or give up (greedy).
        if (policy == SetupPolicy::Greedy || res.hops.empty()) {
            for (auto it = res.hops.rbegin(); it != res.hops.rend(); ++it)
                releaseHop(router_at(it->node), *it, req);
            res.hops.clear();
            res.accepted = false;
            return res;
        }
        const ReservedHop hop = res.hops.back();
        res.hops.pop_back();
        releaseHop(router_at(hop.node), hop, req);
        cur = hop.node;
        ++res.backtrackSteps;
    }
}

} // namespace mmr
