#include "network/topology.hh"

#include <algorithm>
#include <limits>
#include <queue>

#include "base/logging.hh"

namespace mmr
{

Topology::Topology(unsigned num_nodes) : adj(num_nodes)
{
    mmr_assert(num_nodes > 0, "topology needs at least one node");
}

void
Topology::addLink(NodeId a, NodeId b)
{
    mmr_assert(a < adj.size() && b < adj.size(), "link endpoint (", a,
               ",", b, ") out of range");
    if (a == b)
        mmr_fatal("self-loop at node ", a);
    if (hasLink(a, b))
        mmr_fatal("duplicate link between ", a, " and ", b);

    const auto pa = static_cast<PortId>(adj[a].size());
    const auto pb = static_cast<PortId>(adj[b].size());
    adj[a].push_back(PortInfo{b, pa, pb});
    adj[b].push_back(PortInfo{a, pb, pa});
    ++links;
}

unsigned
Topology::degree(NodeId n) const
{
    mmr_assert(n < adj.size(), "node out of range");
    return static_cast<unsigned>(adj[n].size());
}

unsigned
Topology::maxDegree() const
{
    unsigned d = 0;
    for (const auto &ports_ : adj)
        d = std::max(d, static_cast<unsigned>(ports_.size()));
    return d;
}

const std::vector<Topology::PortInfo> &
Topology::ports(NodeId n) const
{
    mmr_assert(n < adj.size(), "node out of range");
    return adj[n];
}

PortId
Topology::portTowards(NodeId from, NodeId to) const
{
    for (const PortInfo &p : ports(from))
        if (p.neighbor == to)
            return p.localPort;
    return kInvalidPort;
}

NodeId
Topology::neighborAt(NodeId n, PortId port) const
{
    const auto &ps = ports(n);
    mmr_assert(port < ps.size(), "port ", port, " out of range at node ",
               n);
    return ps[port].neighbor;
}

bool
Topology::hasLink(NodeId a, NodeId b) const
{
    return portTowards(a, b) != kInvalidPort;
}

std::vector<unsigned>
Topology::bfsDistances(NodeId from) const
{
    constexpr unsigned kInf = std::numeric_limits<unsigned>::max();
    std::vector<unsigned> dist(adj.size(), kInf);
    std::queue<NodeId> frontier;
    dist[from] = 0;
    frontier.push(from);
    while (!frontier.empty()) {
        const NodeId n = frontier.front();
        frontier.pop();
        for (const PortInfo &p : adj[n]) {
            if (dist[p.neighbor] == kInf) {
                dist[p.neighbor] = dist[n] + 1;
                frontier.push(p.neighbor);
            }
        }
    }
    return dist;
}

unsigned
Topology::distance(NodeId a, NodeId b) const
{
    return bfsDistances(a)[b];
}

bool
Topology::connected() const
{
    const auto dist = bfsDistances(0);
    return std::none_of(dist.begin(), dist.end(), [](unsigned d) {
        return d == std::numeric_limits<unsigned>::max();
    });
}

Topology
Topology::mesh2d(unsigned width, unsigned height)
{
    mmr_assert(width > 0 && height > 0, "degenerate mesh");
    Topology t(width * height);
    auto id = [width](unsigned x, unsigned y) { return y * width + x; };
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            if (x + 1 < width)
                t.addLink(id(x, y), id(x + 1, y));
            if (y + 1 < height)
                t.addLink(id(x, y), id(x, y + 1));
        }
    }
    return t;
}

Topology
Topology::torus2d(unsigned width, unsigned height)
{
    mmr_assert(width > 2 && height > 2,
               "torus needs width/height > 2 to avoid duplicate links");
    Topology t(width * height);
    auto id = [width](unsigned x, unsigned y) { return y * width + x; };
    for (unsigned y = 0; y < height; ++y) {
        for (unsigned x = 0; x < width; ++x) {
            t.addLink(id(x, y), id((x + 1) % width, y));
            t.addLink(id(x, y), id(x, (y + 1) % height));
        }
    }
    return t;
}

Topology
Topology::ring(unsigned n)
{
    mmr_assert(n >= 3, "ring needs at least 3 nodes");
    Topology t(n);
    for (unsigned i = 0; i < n; ++i)
        t.addLink(i, (i + 1) % n);
    return t;
}

Topology
Topology::star(unsigned leaves)
{
    mmr_assert(leaves >= 1, "star needs at least one leaf");
    Topology t(leaves + 1);
    for (unsigned i = 1; i <= leaves; ++i)
        t.addLink(0, i);
    return t;
}

Topology
Topology::multistage(unsigned radix, unsigned stages)
{
    mmr_assert(radix >= 2, "MIN radix must be at least 2");
    mmr_assert(stages >= 2, "MIN needs at least 2 stages");

    // Switches per stage: radix^(stages-1), with overflow guard.
    unsigned width = 1;
    for (unsigned i = 1; i < stages; ++i) {
        mmr_assert(width <= (1u << 24) / radix,
                   "MIN size overflows: radix ", radix, " stages ",
                   stages);
        width *= radix;
    }

    Topology t(stages * width);
    auto id = [width](unsigned stage, unsigned pos) {
        return stage * width + pos;
    };

    // Butterfly wiring: between stages i and i+1, vary base-radix
    // digit (stages-2-i) of the switch position through all radix
    // values.  Varying the most significant digit first gives the
    // classic butterfly picture with stage 0 on top.
    for (unsigned i = 0; i + 1 < stages; ++i) {
        unsigned digit_weight = 1;
        for (unsigned d = 0; d < stages - 2 - i; ++d)
            digit_weight *= radix;
        for (unsigned j = 0; j < width; ++j) {
            const unsigned digit = (j / digit_weight) % radix;
            const unsigned base = j - digit * digit_weight;
            for (unsigned v = 0; v < radix; ++v)
                t.addLink(id(i, j), id(i + 1, base + v * digit_weight));
        }
    }
    return t;
}

Topology
Topology::fatTree(unsigned radix)
{
    mmr_assert(radix >= 4 && radix % 2 == 0,
               "fat-tree radix must be even and at least 4");
    const unsigned half = radix / 2;
    const unsigned cores = half * half;
    const unsigned per_pod = radix; // half aggregation + half edge
    Topology t(cores + radix * per_pod);

    // Ids: cores [0, cores), then pod p's aggregation switches
    // followed by its edge switches.
    auto agg = [&](unsigned pod, unsigned j) {
        return cores + pod * per_pod + j;
    };
    auto edge = [&](unsigned pod, unsigned j) {
        return cores + pod * per_pod + half + j;
    };

    for (unsigned p = 0; p < radix; ++p) {
        for (unsigned j = 0; j < half; ++j) {
            // Aggregation switch j uplinks to its core group.
            for (unsigned c = 0; c < half; ++c)
                t.addLink(agg(p, j), j * half + c);
            // Every edge switch links to every aggregation switch.
            for (unsigned e = 0; e < half; ++e)
                t.addLink(agg(p, j), edge(p, e));
        }
    }
    return t;
}

Topology
Topology::leafSpine(unsigned spines, unsigned leaves)
{
    mmr_assert(spines >= 1 && leaves >= 1,
               "leaf-spine needs at least one spine and one leaf");
    Topology t(spines + leaves);
    for (unsigned l = 0; l < leaves; ++l)
        for (unsigned s = 0; s < spines; ++s)
            t.addLink(spines + l, s);
    return t;
}

Topology
Topology::irregular(unsigned n, unsigned extra_links, unsigned max_degree,
                    Rng &rng)
{
    mmr_assert(n >= 2, "irregular topology needs at least 2 nodes");
    mmr_assert(max_degree >= 2, "degree bound must be at least 2");
    Topology t(n);

    // Random spanning tree: attach each node to a random earlier one
    // with spare degree.
    std::vector<NodeId> order(n);
    for (unsigned i = 0; i < n; ++i)
        order[i] = i;
    rng.shuffle(order);

    for (unsigned i = 1; i < n; ++i) {
        // Pick an already-attached node with room.
        for (unsigned attempt = 0;; ++attempt) {
            const NodeId cand = order[rng.below(i)];
            if (t.degree(cand) < max_degree) {
                t.addLink(order[i], cand);
                break;
            }
            if (attempt > 8 * n) {
                // Degree bound too tight for a tree; fall back to the
                // lowest-degree attached node.
                NodeId best = order[0];
                for (unsigned j = 0; j < i; ++j)
                    if (t.degree(order[j]) < t.degree(best))
                        best = order[j];
                t.addLink(order[i], best);
                break;
            }
        }
    }

    // Extra cross links subject to the degree bound.
    unsigned added = 0;
    unsigned attempts = 0;
    while (added < extra_links && attempts < 64 * (extra_links + 1)) {
        ++attempts;
        const NodeId a = static_cast<NodeId>(rng.below(n));
        const NodeId b = static_cast<NodeId>(rng.below(n));
        if (a == b || t.hasLink(a, b) || t.degree(a) >= max_degree ||
            t.degree(b) >= max_degree)
            continue;
        t.addLink(a, b);
        ++added;
    }
    return t;
}

} // namespace mmr
