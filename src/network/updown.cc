#include "network/updown.hh"

#include <limits>
#include <queue>

#include "base/logging.hh"

namespace mmr
{

namespace
{
constexpr unsigned kInf = std::numeric_limits<unsigned>::max();
} // namespace

UpDownRouting::UpDownRouting(const Topology &topo_, NodeId root,
                             LinkFilter filter_)
    : topo(topo_), filter(std::move(filter_)),
      distCache(topo_.numNodes())
{
    mmr_assert(root < topo.numNodes(), "root out of range");
    levels = filteredBfs(root);
    if (!filter) {
        mmr_assert(topo.connected(),
                   "up*-down* needs a connected topology");
    }
    // With a filter, unreachable nodes keep level kInf; isUp() still
    // orders every surviving link because both endpoints of a
    // surviving link are reachable from the root or both unreachable
    // (tie-broken by node id).
}

std::vector<unsigned>
UpDownRouting::filteredBfs(NodeId root) const
{
    std::vector<unsigned> dist(topo.numNodes(), kInf);
    std::queue<NodeId> frontier;
    dist[root] = 0;
    frontier.push(root);
    while (!frontier.empty()) {
        const NodeId n = frontier.front();
        frontier.pop();
        for (const auto &p : topo.ports(n)) {
            if (!linkOk(n, p.neighbor))
                continue;
            if (dist[p.neighbor] == kInf) {
                dist[p.neighbor] = dist[n] + 1;
                frontier.push(p.neighbor);
            }
        }
    }
    return dist;
}

unsigned
UpDownRouting::level(NodeId n) const
{
    mmr_assert(n < levels.size(), "node out of range");
    return levels[n];
}

bool
UpDownRouting::isUp(NodeId from, NodeId to) const
{
    // "Up" points toward the root: strictly lower BFS level, with the
    // node id breaking ties so every link has a unique direction.
    if (level(to) != level(from))
        return level(to) < level(from);
    return to < from;
}

// mmr-lint: allow(hot-path-alloc) cold: runs once per destination on a
// distCache miss (construction or topology change), never steady state.
std::vector<unsigned>
UpDownRouting::phaseDistances(NodeId dst) const
{
    // State (node, phase): phase 1 once a down link has been used.
    // Legal transitions: (n,0) -up-> (m,0); (n,0) -down-> (m,1);
    // (n,1) -down-> (m,1).  BFS backward from (dst,0) and (dst,1).
    const unsigned n = topo.numNodes();
    std::vector<unsigned> dist(2 * n, kInf);
    std::queue<unsigned> frontier;
    dist[dst * 2 + 0] = 0;
    dist[dst * 2 + 1] = 0;
    frontier.push(dst * 2 + 0);
    frontier.push(dst * 2 + 1);

    while (!frontier.empty()) {
        const unsigned state = frontier.front();
        frontier.pop();
        const NodeId m = state / 2;
        const unsigned phase = state % 2;
        const unsigned d = dist[state];
        for (const auto &p : topo.ports(m)) {
            const NodeId pred = p.neighbor;
            if (!linkOk(pred, m))
                continue;
            if (phase == 0) {
                // Predecessor used an up link pred -> m in phase 0.
                if (isUp(pred, m)) {
                    const unsigned s = pred * 2 + 0;
                    if (dist[s] == kInf) {
                        dist[s] = d + 1;
                        frontier.push(s);
                    }
                }
            } else {
                // Predecessor used a down link pred -> m, landing in
                // phase 1 from either phase.
                if (!isUp(pred, m)) {
                    for (unsigned pp = 0; pp < 2; ++pp) {
                        const unsigned s = pred * 2 + pp;
                        if (dist[s] == kInf) {
                            dist[s] = d + 1;
                            frontier.push(s);
                        }
                    }
                }
            }
        }
    }
    return dist;
}

// mmr-lint: allow(hot-path-alloc) per-datagram route enumeration,
// bounded by the port count; the CBR/VBR stream path never comes here.
std::vector<NodeId>
UpDownRouting::legalNextHops(NodeId at, NodeId dst, bool down_phase) const
{
    if (distCache[dst].empty())
        distCache[dst] = phaseDistances(dst);
    const auto &dist = distCache[dst];

    std::vector<NodeId> hops;
    for (const auto &p : topo.ports(at)) {
        const NodeId m = p.neighbor;
        if (!linkOk(at, m))
            continue;
        const bool up = isUp(at, m);
        if (down_phase && up)
            continue; // up after down is illegal
        const unsigned next_phase = up ? (down_phase ? 1 : 0) : 1;
        if (dist[m * 2 + next_phase] != kInf || m == dst)
            hops.push_back(m);
    }
    return hops;
}

// mmr-lint: allow(hot-path-alloc) per-datagram tie vector, bounded by
// the port count; the CBR/VBR stream path never comes here.
NodeId
UpDownRouting::adaptiveNextHop(NodeId at, NodeId dst, bool down_phase,
                               Rng &rng) const
{
    if (at == dst)
        return dst;
    if (distCache[dst].empty())
        distCache[dst] = phaseDistances(dst);
    const auto &dist = distCache[dst];

    unsigned best = kInf;
    std::vector<NodeId> ties;
    for (const auto &p : topo.ports(at)) {
        const NodeId m = p.neighbor;
        if (!linkOk(at, m))
            continue;
        const bool up = isUp(at, m);
        if (down_phase && up)
            continue;
        const unsigned next_phase = up ? (down_phase ? 1u : 0u) : 1u;
        const unsigned d = dist[m * 2 + next_phase];
        if (d == kInf)
            continue;
        if (d < best) {
            best = d;
            ties.clear();
        }
        if (d == best)
            ties.push_back(m);
    }
    if (ties.empty())
        return kInvalidNode;
    return ties[rng.below(ties.size())];
}

bool
UpDownRouting::reachable(NodeId at, NodeId dst, bool down_phase) const
{
    if (at == dst)
        return true;
    if (distCache[dst].empty())
        distCache[dst] = phaseDistances(dst);
    return distCache[dst][at * 2 + (down_phase ? 1 : 0)] != kInf;
}

} // namespace mmr
