/**
 * @file
 * Host network interface (§4.2, §4.3).
 *
 * The paper pushes complexity to the interfaces: they run the traffic
 * sources, police injection (back-pressure from the router propagates
 * here), and originate the dynamic bandwidth-management commands.
 * This class bundles that host-side logic for the examples and the
 * network benches: it owns one traffic source per established
 * connection, injects arrivals each flit cycle (holding a backlog when
 * the router pushes back), and can generate best-effort datagram flows
 * to random destinations.
 */

#ifndef MMR_NETWORK_INTERFACE_HH
#define MMR_NETWORK_INTERFACE_HH

#include <deque>
#include <memory>
#include <vector>

#include "network/network.hh"
#include "traffic/besteffort_source.hh"
#include "traffic/cbr_source.hh"
#include "traffic/source.hh"
#include "traffic/trace_source.hh"
#include "traffic/vbr_source.hh"

namespace mmr
{

class RecoveryManager;

class NetworkInterface
{
  public:
    NetworkInterface(Network &net, NodeId host, std::uint64_t seed);

    /** Establish a CBR stream to @p dst and attach its source. */
    bool openCbrStream(NodeId dst, double rate_bps,
                       SetupPolicy policy = SetupPolicy::Epb);

    /** Establish a VBR stream to @p dst. */
    bool openVbrStream(NodeId dst, const VbrProfile &profile,
                       int priority, SetupPolicy policy = SetupPolicy::Epb);

    /**
     * Establish a VBR stream that replays a recorded frame-size trace
     * (one frame size in bits per line).  The permanent bandwidth is
     * the trace's own mean rate; the declared peak is
     * @p peak_to_mean x that mean (§4.2).
     */
    bool openTraceStream(NodeId dst, const std::string &trace_path,
                         double fps, double peak_to_mean, int priority,
                         SetupPolicy policy = SetupPolicy::Epb);

    /** Add a Poisson best-effort flow to a fixed destination. */
    void addBestEffortFlow(NodeId dst, double rate_bps);

    /** Inject everything that became ready during cycle @p now. */
    void tick(Cycle now);

    /**
     * Recovery policy after a link failure kills one of this host's
     * streams (§4.2 pushes such decisions to the interfaces): when
     * enabled, the interface re-runs connection establishment toward
     * the same destination at the same rate and resumes transmission
     * on the new path.
     */
    void setAutoReestablish(bool on) { autoReestablish = on; }

    /**
     * Delegate failure handling to a RecoveryManager (fault/
     * recovery.hh) instead of the synchronous auto-reestablish above:
     * every stream opened (and any already open) is adopted, and when
     * one fails the interface waits on the manager's timed,
     * backoff-scheduled re-setup — dropping the source's arrivals with
     * accounting while recovery is in progress, resuming on the
     * replacement connection, and retiring the stream if recovery is
     * abandoned.  Pass nullptr to detach.
     */
    void attachRecovery(RecoveryManager *mgr);

    unsigned lostStreams() const { return lost; }
    unsigned reestablishedStreams() const { return reestablished; }

    /** Source flits discarded while their stream awaited recovery. */
    std::uint64_t flitsDroppedInRecovery() const
    {
        return droppedInRecovery;
    }

    NodeId node() const { return host; }
    unsigned establishedStreams() const
    {
        return static_cast<unsigned>(streams.size());
    }
    unsigned refusedStreams() const { return refused; }
    std::uint64_t backloggedFlits() const;
    std::uint64_t injectedFlits() const { return injected; }

    /** Connection ids of this host's established streams. */
    std::vector<ConnId> connections() const;

  private:
    struct Stream
    {
        ConnId conn;
        NodeId dst = kInvalidNode;
        double rateBps = 0.0; ///< for re-establishment after failure
        bool isVbr = false;
        VbrProfile profile;
        int priority = 0;
        std::unique_ptr<TrafficSource> source;
        std::deque<Flit> backlog; ///< flits refused by the router
        std::uint32_t seq = 0;
        /** Waiting on the RecoveryManager for a replacement path. */
        bool recovering = false;
    };

    /** Handle a stream whose connection failed; true when replaced. */
    bool recoverStream(Stream &s);

    /** Register a stream with the attached RecoveryManager. */
    void adoptStream(const Stream &s);

    /**
     * Managed-recovery health step for one failed stream: consume the
     * manager's status and return true when the stream survives (still
     * recovering, or swapped onto its replacement connection).
     */
    bool pollRecovery(Stream &s);

    struct BeFlow
    {
        NodeId dst;
        ConnId flow;
        std::unique_ptr<PoissonSource> source;
        std::uint32_t seq = 0;
    };

    Network &net;
    NodeId host;
    Rng rng;
    std::vector<Stream> streams;
    std::vector<BeFlow> beFlows;
    unsigned refused = 0;
    unsigned lost = 0;
    unsigned reestablished = 0;
    bool autoReestablish = false;
    RecoveryManager *recovery = nullptr;
    std::uint64_t injected = 0;
    std::uint64_t droppedInRecovery = 0;
    ConnId nextBeFlow;
};

} // namespace mmr

#endif // MMR_NETWORK_INTERFACE_HH
