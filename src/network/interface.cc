#include "network/interface.hh"

#include "base/logging.hh"
#include "fault/recovery.hh"

namespace mmr
{

NetworkInterface::NetworkInterface(Network &net_, NodeId host_,
                                   std::uint64_t seed)
    : net(net_), host(host_), rng(seed),
      // Best-effort flow ids carry the host in the upper bits so they
      // never collide across interfaces.
      nextBeFlow(0x4000000 + host_ * 0x10000)
{
    mmr_assert(host < net.numNodes(), "host node out of range");
}

bool
NetworkInterface::openCbrStream(NodeId dst, double rate_bps,
                                SetupPolicy policy)
{
    const auto outcome = net.openCbr(host, dst, rate_bps, policy);
    if (!outcome.accepted) {
        ++refused;
        return false;
    }
    Stream s;
    s.conn = outcome.id;
    s.dst = dst;
    s.rateBps = rate_bps;
    s.source = std::make_unique<CbrSource>(
        rate_bps, net.routerAt(host).config().linkRateBps, rng);
    streams.push_back(std::move(s));
    adoptStream(streams.back());
    return true;
}

bool
NetworkInterface::openVbrStream(NodeId dst, const VbrProfile &profile,
                                int priority, SetupPolicy policy)
{
    const double peak = profile.meanRateBps * profile.peakToMean;
    const auto outcome =
        net.openVbr(host, dst, profile.meanRateBps, peak, priority,
                    policy);
    if (!outcome.accepted) {
        ++refused;
        return false;
    }
    const RouterConfig &rc = net.routerAt(host).config();
    Stream s;
    s.conn = outcome.id;
    s.dst = dst;
    s.rateBps = profile.meanRateBps;
    s.isVbr = true;
    s.profile = profile;
    s.priority = priority;
    s.source = std::make_unique<VbrSource>(profile, rc.linkRateBps,
                                           rc.flitBits, rng);
    streams.push_back(std::move(s));
    adoptStream(streams.back());
    return true;
}

bool
NetworkInterface::openTraceStream(NodeId dst,
                                  const std::string &trace_path,
                                  double fps, double peak_to_mean,
                                  int priority, SetupPolicy policy)
{
    mmr_assert(peak_to_mean >= 1.0, "peak/mean ratio below 1");
    const RouterConfig &rc = net.routerAt(host).config();
    // Two-step construction: the trace's own mean rate defines both
    // the permanent bandwidth and (scaled) the declared peak.
    const auto trace = loadFrameTrace(trace_path);
    double total_bits = 0.0;
    for (std::uint64_t bits : trace)
        total_bits += static_cast<double>(bits);
    const double mean =
        total_bits / static_cast<double>(trace.size()) * fps;
    const double peak = mean * peak_to_mean;
    if (peak > rc.linkRateBps) {
        ++refused;
        return false; // no link can carry the declared peak
    }
    auto source = std::make_unique<TraceVbrSource>(
        trace, fps, peak, rc.linkRateBps, rc.flitBits, rng);
    const auto outcome =
        net.openVbr(host, dst, mean, peak, priority, policy);
    if (!outcome.accepted) {
        ++refused;
        return false;
    }
    Stream s;
    s.conn = outcome.id;
    s.dst = dst;
    s.rateBps = mean;
    s.isVbr = true;
    s.profile.meanRateBps = mean;
    s.profile.peakToMean = peak_to_mean;
    s.priority = priority;
    s.source = std::move(source);
    streams.push_back(std::move(s));
    adoptStream(streams.back());
    return true;
}

void
NetworkInterface::attachRecovery(RecoveryManager *mgr)
{
    recovery = mgr;
    if (!recovery)
        return;
    for (const Stream &s : streams)
        adoptStream(s);
}

void
NetworkInterface::adoptStream(const Stream &s)
{
    if (!recovery)
        return;
    RecoverySpec spec;
    spec.src = host;
    spec.dst = s.dst;
    if (s.isVbr) {
        spec.klass = TrafficClass::VBR;
        spec.rateOrMeanBps = s.profile.meanRateBps;
        spec.peakBps = s.profile.meanRateBps * s.profile.peakToMean;
        spec.priority = s.priority;
    } else {
        spec.klass = TrafficClass::CBR;
        spec.rateOrMeanBps = s.rateBps;
    }
    recovery->adopt(s.conn, spec);
}

bool
NetworkInterface::pollRecovery(Stream &s)
{
    if (!s.recovering) {
        // First sight of the failure: the dead path's backlog is
        // abandoned (those flits are counted by the network as lost).
        ++lost;
        s.backlog.clear();
        s.recovering = true;
    }
    const RecoveryStatus *st = recovery->status(s.conn);
    if (!st)
        return false; // failed while unadopted: retire
    switch (st->state) {
      case RecoveryState::Recovering:
        return true; // keep waiting; tick() drops arrivals meanwhile
      case RecoveryState::Recovered:
        s.conn = st->replacement;
        s.recovering = false;
        ++reestablished;
        return true;
      case RecoveryState::Abandoned:
        return false;
    }
    return false;
}

bool
NetworkInterface::recoverStream(Stream &s)
{
    ++lost;
    s.backlog.clear(); // flits of the dead path are abandoned
    if (!autoReestablish)
        return false;
    if (s.isVbr) {
        const double peak = s.profile.meanRateBps * s.profile.peakToMean;
        const auto o =
            net.openVbr(host, s.dst, s.profile.meanRateBps, peak,
                        s.priority);
        if (!o.accepted)
            return false;
        s.conn = o.id;
    } else {
        const auto o = net.openCbr(host, s.dst, s.rateBps);
        if (!o.accepted)
            return false;
        s.conn = o.id;
    }
    ++reestablished;
    return true;
}

void
NetworkInterface::addBestEffortFlow(NodeId dst, double rate_bps)
{
    BeFlow flow;
    flow.dst = dst;
    flow.flow = nextBeFlow++;
    flow.source = std::make_unique<PoissonSource>(
        rate_bps, net.routerAt(host).config().linkRateBps, rng);
    beFlows.push_back(std::move(flow));
}

void
NetworkInterface::tick(Cycle now)
{
    // Streams whose connection died (link failure) are recovered or
    // retired before any injection work.
    for (std::size_t i = 0; i < streams.size();) {
        Stream &s = streams[i];
        if (!s.recovering &&
            net.connectionState(s.conn) == Network::ConnState::Open) {
            ++i;
            continue;
        }
        const bool survives =
            recovery ? pollRecovery(s) : recoverStream(s);
        if (survives) {
            ++i;
        } else {
            streams.erase(streams.begin() +
                          static_cast<std::ptrdiff_t>(i));
        }
    }

    for (Stream &s : streams) {
        if (s.recovering) {
            // Graceful degradation while the RecoveryManager searches
            // for a replacement path: the source keeps producing (so
            // its random stream stays aligned) but nothing can be
            // injected; the discards are accounted, never wedged.
            droppedInRecovery += s.source->arrivals(now);
            continue;
        }
        const unsigned n = s.source->arrivals(now);
        if (n == 0 && s.backlog.empty())
            continue; // idle cycle: skip the endpoint resolution
        // Flit-batch processing per (port, VC): every flit this
        // stream sends this cycle lands in the same input FIFO, so
        // the connection-map lookups are paid once per (stream,
        // cycle) instead of once per flit.
        Network::InjectHandle ep = net.resolveInject(s.conn);
        // Drain the back-pressure backlog first, preserving order.
        while (!s.backlog.empty()) {
            if (!ep.valid() || !ep.push(s.backlog.front(), now))
                break;
            s.backlog.pop_front();
            ++injected;
        }
        for (unsigned k = 0; k < n; ++k) {
            Flit f;
            f.seq = s.seq++;
            f.createTime = now;
            if (!s.backlog.empty() || !ep.valid() || !ep.push(f, now))
                s.backlog.push_back(f);
            else
                ++injected;
        }
    }
    for (BeFlow &flow : beFlows) {
        const unsigned n = flow.source->arrivals(now);
        for (unsigned k = 0; k < n; ++k) {
            net.sendDatagram(host, flow.dst, TrafficClass::BestEffort,
                             flow.flow, now, flow.seq++);
            ++injected;
        }
    }
}

std::uint64_t
NetworkInterface::backloggedFlits() const
{
    std::uint64_t n = 0;
    for (const Stream &s : streams)
        n += s.backlog.size();
    return n;
}

std::vector<ConnId>
NetworkInterface::connections() const
{
    std::vector<ConnId> ids;
    ids.reserve(streams.size());
    for (const Stream &s : streams)
        ids.push_back(s.conn);
    return ids;
}

} // namespace mmr
