#include "network/network.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/simclock.hh"
#include "obs/flight_recorder.hh"
#include "obs/trace.hh"
#include "sim/invariant.hh"
#include "sim/shard_pool.hh"
#include "traffic/rates.hh"

namespace mmr
{

Network::Network(Topology topo_, NetworkConfig cfg_)
    : topo(std::move(topo_)), cfg(cfg_), rand(cfg_.seed),
      updownRoutes(std::make_unique<UpDownRouting>(topo))
{
    // Contiguous-id shard partition (computed before wiring: the
    // router callbacks capture their owning shard).  Contiguity is
    // what makes the mailbox drain order equal the serial loop order.
    const unsigned nodes = topo.numNodes();
    numShards = std::max(1u, std::min(cfg.shards, nodes));
    shardStart.resize(numShards + 1);
    shardOf.resize(nodes);
    const unsigned base = nodes / numShards;
    const unsigned rem = nodes % numShards;
    NodeId next = 0;
    for (unsigned s = 0; s < numShards; ++s) {
        shardStart[s] = next;
        next += base + (s < rem ? 1 : 0);
    }
    shardStart[numShards] = next;
    for (unsigned s = 0; s < numShards; ++s)
        for (NodeId n = shardStart[s]; n < shardStart[s + 1]; ++n)
            shardOf[n] = s;
    mailboxes = std::vector<ShardMailbox>(numShards);
    if (numShards > 1) {
        pool = std::make_unique<ShardPool>(numShards);
        evalPhase = [this](unsigned s) {
            for (NodeId n = shardStart[s]; n < shardStart[s + 1]; ++n)
                routers[n]->evaluate(phaseCycle);
        };
        advPhase = [this](unsigned s) {
            for (NodeId n = shardStart[s]; n < shardStart[s + 1]; ++n)
                routers[n]->advance(phaseCycle);
        };
    }

    routers.reserve(topo.numNodes());
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        RouterConfig rc = cfg.router;
        rc.numPorts = topo.degree(n) + 1; // +1 host-interface port
        rc.seed = cfg.seed * 0x9e3779b9ULL + n + 1;
        routers.push_back(std::make_unique<MmrRouter>(rc));
        routers.back()->credits().setInfinite(false);
        wireRouter(n);
    }
    linkDown.resize(topo.numNodes());
    for (NodeId n = 0; n < topo.numNodes(); ++n)
        linkDown[n].assign(topo.degree(n), false);

    probeMgr = std::make_unique<ProbeSetupManager>(
        topo, [this](NodeId n) -> MmrRouter & { return *routers[n]; },
        [this](NodeId n) { return niPort(n); },
        [this](const TimedSetup &s) { onTimedSetupComplete(s); },
        cfg.seed ^ 0xabcdef12ULL);
    probeMgr->setHopLatency(
        std::max(1u, static_cast<unsigned>(cfg.probeHopCycles)));
    probeMgr->setLinkAlive([this](NodeId n, PortId port) {
        return directedLinkUp(n, port);
    });
}

bool
Network::directedLinkUp(NodeId n, PortId port) const
{
    mmr_assert(n < linkDown.size(), "node out of range");
    if (port >= linkDown[n].size())
        return true; // the NI port never fails
    return !linkDown[n][port];
}

void
Network::rebuildRouting()
{
    updownRoutes = std::make_unique<UpDownRouting>(
        topo, 0, [this](NodeId a, NodeId b) {
            const PortId port = topo.portTowards(a, b);
            return port != kInvalidPort && directedLinkUp(a, port);
        });
}

bool
Network::linkIsUp(NodeId a, NodeId b) const
{
    const PortId port = topo.portTowards(a, b);
    if (port == kInvalidPort)
        return false;
    return directedLinkUp(a, port);
}

bool
Network::failLink(NodeId a, NodeId b)
{
    const PortId pa = topo.portTowards(a, b);
    const PortId pb = topo.portTowards(b, a);
    if (pa == kInvalidPort || linkDown[a][pa])
        return false;
    linkDown[a][pa] = true;
    linkDown[b][pb] = true;

    // Flits already in flight on the dead link are lost; return their
    // credits so the upstream VC is not wedged forever.
    std::deque<LinkFlit> keep;
    for (LinkFlit &lf : linkQueue) {
        const bool on_dead_link =
            (lf.toNode == b && lf.toPort == pb) ||
            (lf.toNode == a && lf.toPort == pa);
        if (!on_dead_link) {
            keep.push_back(std::move(lf));
            continue;
        }
        ++statLostFlits;
        if (!lf.flit.isStream())
            ++statDatagramsLost;
        const NodeId upstream = lf.toNode == b ? a : b;
        const PortId up_port = lf.toNode == b ? pa : pb;
        routers[upstream]->credits().replenish(up_port, lf.vc);
        if (!lf.flit.isStream())
            routers[upstream]->routing().freeOutputVc(up_port, lf.vc);
    }
    linkQueue.swap(keep);

    // Mark and start draining every connection whose path crosses the
    // link, in either direction.  The ids are snapshotted and sorted
    // before any side effect: the failure hook draws backoff jitter
    // from the recovery RNG and appends to its retry queue, so
    // hash-order iteration would leak the standard library's bucket
    // layout into the recovery schedule and the result digest.
    std::vector<ConnId> crossing;
    // mmr-lint: allow(unordered-iter) order-insensitive: ids are only
    // collected here and sorted below before anything observes them.
    for (const auto &[id, conn] : pcs) {
        if (conn.failed)
            continue;
        for (const ReservedHop &hop : conn.hops) {
            const bool crosses = (hop.node == a && hop.out == pa) ||
                                 (hop.node == b && hop.out == pb);
            if (crosses) {
                crossing.push_back(id);
                break;
            }
        }
    }
    std::sort(crossing.begin(), crossing.end());
    for (const ConnId id : crossing) {
        PcsConnection &conn = pcs.find(id)->second;
        conn.failed = true;
        conn.closing = true;
        ++statConnsFailed;
        MMR_OBS_EVENT(TraceCat::Fault, "conn_failed",
                      simclock::now(), conn.src, id,
                      static_cast<std::int32_t>(conn.dst));
        if (connFailHook)
            connFailHook(id, conn.src, conn.dst, conn.klass);
    }

    MMR_OBS_EVENT(TraceCat::Fault, "link_down", simclock::now(), a,
                  kInvalidConn, static_cast<std::int32_t>(b));
    rebuildRouting();
    return true;
}

bool
Network::repairLink(NodeId a, NodeId b)
{
    const PortId pa = topo.portTowards(a, b);
    const PortId pb = topo.portTowards(b, a);
    if (pa == kInvalidPort || !linkDown[a][pa])
        return false;
    linkDown[a][pa] = false;
    linkDown[b][pb] = false;
    MMR_OBS_EVENT(TraceCat::Fault, "link_up", simclock::now(), a,
                  kInvalidConn, static_cast<std::int32_t>(b));
    rebuildRouting();
    return true;
}

Network::ConnState
Network::connectionState(ConnId id) const
{
    auto it = pcs.find(id);
    if (it == pcs.end())
        return ConnState::Gone;
    return it->second.failed ? ConnState::Failed : ConnState::Open;
}

Network::~Network() = default;

MmrRouter &
Network::routerAt(NodeId n)
{
    mmr_assert(n < routers.size(), "node out of range");
    return *routers[n];
}

// mmr-lint: allow(hot-path-alloc) amortized: the mailbox logs the
// router callbacks append to keep their capacity across cycles, so a
// steady-state parallel phase allocates nothing.
void
Network::wireRouter(NodeId n)
{
    // During a parallel phase (deferring == true) every callback
    // becomes a mailbox record on the emitting router's shard instead
    // of being applied inline: the inline bodies touch other routers
    // (credit upstream, link queues, end-to-end stats), which a
    // worker thread must not do.  The coordinator replays the logs
    // after the barrier in shard order, which for a contiguous-id
    // partition is exactly the serial loop's ascending-router order.
    const unsigned shard = shardOf[n];
    routers[n]->setSink(
        [this, n, shard](PortId out, VcId out_vc, const Flit &f,
                         Cycle now) {
            if (deferring) {
                DeferredEvent e;
                e.kind = DeferredEvent::Kind::Egress;
                e.node = n;
                e.port = out;
                e.vc = out_vc;
                e.flit = f;
                mailboxes[shard].log.push_back(e);
                return;
            }
            handleEgress(n, out, out_vc, f, now);
        });
    routers[n]->setCreditReturn(
        [this, n, shard](PortId in, VcId vc, Cycle now) {
            if (deferring) {
                DeferredEvent e;
                e.kind = DeferredEvent::Kind::Credit;
                e.node = n;
                e.port = in;
                e.vc = vc;
                mailboxes[shard].log.push_back(e);
                return;
            }
            handleCreditReturn(n, in, vc, now);
        });
    routers[n]->setSegmentRemoved(
        [this, n, shard](const SegmentParams &seg) {
            // A transient datagram segment owns its *link* input VC
            // from the upstream router's output pool; the link VC is
            // only free again once the packet has left this router, so
            // the upstream allocation is released here rather than
            // when the flit left the upstream router (that early
            // release would let a new connection claim a VC whose
            // buffer is still occupied).
            if (!seg.releaseWhenEmpty || seg.in >= topo.degree(n))
                return;
            if (deferring) {
                DeferredEvent e;
                e.kind = DeferredEvent::Kind::SegRemoved;
                e.node = n;
                e.port = seg.in;
                e.vc = seg.inVc;
                e.seg = seg;
                mailboxes[shard].log.push_back(e);
                return;
            }
            handleSegmentRemoved(n, seg);
        });
}

void
Network::handleSegmentRemoved(NodeId n, const SegmentParams &seg)
{
    const NodeId upstream = topo.neighborAt(n, seg.in);
    const PortId up_port = topo.portTowards(upstream, n);
    routers[upstream]->routing().freeOutputVc(up_port, seg.inVc);
}

// mmr-lint: allow(hot-path-alloc) amortized: linkQueue is a deque
// whose block churn is bounded by the number of in-flight link flits
// (same recycling argument as processArrivals).
void
Network::handleEgress(NodeId n, PortId out, VcId out_vc, const Flit &f,
                      Cycle now)
{
    if (out == niPort(n)) {
        deliverToHost(n, f, now);
        // The host consumes immediately: return the NI credit.
        if (out_vc != kInvalidVc)
            routers[n]->credits().replenish(out, out_vc);
        return;
    }
    if (!directedLinkUp(n, out)) {
        // The link failed after the flit was scheduled: it is lost on
        // the wire.  Return the credit so the (now pointless) VC does
        // not stay wedged while its connection drains out, and — for
        // datagrams — release the link VC the packet was holding,
        // since no downstream segment will ever do it.
        ++statLostFlits;
        if (!f.isStream())
            ++statDatagramsLost;
        if (out_vc != kInvalidVc) {
            routers[n]->credits().replenish(out, out_vc);
            if (!f.isStream())
                routers[n]->routing().freeOutputVc(out, out_vc);
        }
        return;
    }
    const auto &ports = topo.ports(n);
    mmr_assert(out < ports.size(), "egress on unknown port");
    const auto &link = ports[out];
    LinkFlit lf{link.neighbor, link.remotePort, out_vc, f,
                now + cfg.linkLatency};
    // Fault injection: damage the payload on the wire.  The flit still
    // occupies the link; the downstream CRC check discards it.
    if (corruptHook && corruptHook(n, out, f))
        lf.flit.corrupted = true;
    linkQueue.push_back(std::move(lf));
}

void
Network::handleCreditReturn(NodeId n, PortId in, VcId vc, Cycle now)
{
    (void)now;
    if (in >= topo.degree(n))
        return; // NI-side injection is limited by deposit space
    const NodeId upstream = topo.neighborAt(n, in);
    const PortId up_port = topo.portTowards(upstream, n);
    routers[upstream]->credits().replenish(up_port, vc);
}

void
Network::deliverToHost(NodeId n, const Flit &f, Cycle now)
{
    ++statDelivered;
    MMR_OBS_EVENT(TraceCat::Flit, "e2e_deliver", now, n, f.conn,
                  static_cast<std::int32_t>(f.src),
                  static_cast<std::int32_t>(now - f.createTime));
    if (f.klass == TrafficClass::BestEffort ||
        f.klass == TrafficClass::Control)
        ++statDatagramsDone;
    e2e.recordDeparture(f.conn, now,
                        static_cast<double>(now - f.createTime),
                        f.klass);
}

// ---------------------------------------------------------------------
// PCS connections
// ---------------------------------------------------------------------

ConnId
Network::installReservedPath(const SetupRequest &req,
                             const std::vector<ReservedHop> &hops,
                             double rate_or_mean, int priority)
{
    mmr_assert(!hops.empty(), "installing an empty path");
    const ConnId id = nextPcsId++;
    const double link = cfg.router.linkRateBps;

    // Source-side input VC on the NI port.
    const PortId src_ni = niPort(req.src);
    const VcId src_vc = routers[req.src]->routing().allocInputVc(src_ni);
    if (src_vc == kInvalidVc) {
        // Roll the whole reservation back.
        for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
            routers[it->node]->routing().freeOutputVc(it->out, it->outVc);
            if (req.klass == TrafficClass::CBR)
                routers[it->node]->admission().releaseCbr(
                    it->out, req.allocCycles);
            else
                routers[it->node]->admission().releaseVbr(
                    it->out, req.permCycles, req.peakCycles);
        }
        return kInvalidConn;
    }

    for (std::size_t k = 0; k < hops.size(); ++k) {
        const ReservedHop &hop = hops[k];
        SegmentParams p;
        p.id = id;
        p.klass = req.klass;
        p.out = hop.out;
        p.outVc = hop.outVc;
        p.allocCycles = req.allocCycles;
        p.permCycles = req.permCycles;
        p.peakCycles = req.peakCycles;
        p.interArrival = interArrivalCycles(rate_or_mean, link);
        p.priority = priority;
        p.ownsOutputVc = true;
        if (k == 0) {
            p.in = src_ni;
            p.inVc = src_vc;
            p.ownsInputVc = true;
        } else {
            const NodeId prev = hops[k - 1].node;
            p.in = topo.portTowards(hop.node, prev);
            p.inVc = hops[k - 1].outVc;
            p.ownsInputVc = false;
        }
        if (!routers[hop.node]->installSegment(p)) {
            mmr_panic("segment install failed at node ", hop.node,
                      " for reserved connection ", id);
        }
    }

    PcsConnection conn;
    conn.id = id;
    conn.src = req.src;
    conn.dst = req.dst;
    conn.klass = req.klass;
    conn.hops = hops;
    pcs.emplace(id, std::move(conn));
    return id;
}

Network::SetupOutcome
Network::finishSetup(const SetupRequest &req, const SetupResult &sr,
                     double rate_or_mean, double peak_bps, int priority)
{
    (void)peak_bps;
    SetupOutcome out;
    out.forwardSteps = sr.forwardSteps;
    out.backtrackSteps = sr.backtrackSteps;
    if (!sr.accepted) {
        out.setupLatencyCycles =
            cfg.probeHopCycles *
            static_cast<double>(sr.forwardSteps + sr.backtrackSteps);
        MMR_TRACE_INSTANT(TraceCat::Setup, "setup_reject",
                          simclock::now(), req.src, kInvalidConn,
                          static_cast<std::int32_t>(req.dst),
                          static_cast<std::int32_t>(sr.backtrackSteps));
        return out;
    }

    const ConnId id =
        installReservedPath(req, sr.hops, rate_or_mean, priority);
    if (id == kInvalidConn)
        return out;

    out.id = id;
    out.accepted = true;
    out.pathLength = static_cast<unsigned>(sr.hops.size());
    out.setupLatencyCycles =
        cfg.probeHopCycles *
        static_cast<double>(sr.forwardSteps + sr.backtrackSteps +
                            sr.hops.size());
    MMR_TRACE_INSTANT(TraceCat::Setup, "setup_accept", simclock::now(),
                      req.src, id,
                      static_cast<std::int32_t>(req.dst),
                      static_cast<std::int32_t>(out.pathLength));
    return out;
}

std::uint64_t
Network::openCbrTimed(NodeId src, NodeId dst, double rate_bps, Cycle now,
                      SetupPolicy policy)
{
    mmr_assert(rate_bps > 0.0 && rate_bps <= cfg.router.linkRateBps,
               "timed setup with an uncarriable rate");
    SetupRequest req;
    req.src = src;
    req.dst = dst;
    req.klass = TrafficClass::CBR;
    req.allocCycles = cyclesPerRound(rate_bps, cfg.router.linkRateBps,
                                     cfg.router.cyclesPerRound());
    const std::uint64_t token = probeMgr->begin(req, policy, now);
    timedInfo[token] = TimedRequestInfo{rate_bps, 0};
    return token;
}

std::uint64_t
Network::openVbrTimed(NodeId src, NodeId dst, double mean_bps,
                      double peak_bps, int priority, Cycle now,
                      SetupPolicy policy)
{
    mmr_assert(mean_bps > 0.0 && peak_bps >= mean_bps &&
                   peak_bps <= cfg.router.linkRateBps,
               "timed setup with an uncarriable rate");
    SetupRequest req;
    req.src = src;
    req.dst = dst;
    req.klass = TrafficClass::VBR;
    req.permCycles = cyclesPerRound(mean_bps, cfg.router.linkRateBps,
                                    cfg.router.cyclesPerRound());
    req.peakCycles = cyclesPerRound(peak_bps, cfg.router.linkRateBps,
                                    cfg.router.cyclesPerRound());
    const std::uint64_t token = probeMgr->begin(req, policy, now);
    timedInfo[token] = TimedRequestInfo{mean_bps, priority};
    return token;
}

void
Network::onTimedSetupComplete(const TimedSetup &s)
{
    auto info_it = timedInfo.find(s.token);
    mmr_assert(info_it != timedInfo.end(),
               "completion for an unknown setup token");
    const TimedRequestInfo info = info_it->second;
    timedInfo.erase(info_it);

    TimedOutcome out;
    out.token = s.token;
    out.done = true;
    out.forwardSteps = s.forwardSteps;
    out.backtrackSteps = s.backtrackSteps;
    out.setupCycles = s.finishedAt - s.startedAt;
    if (s.state == SetupState::Established) {
        const ConnId id = installReservedPath(s.request, s.hops,
                                              info.rateOrMean,
                                              info.priority);
        if (id != kInvalidConn) {
            out.accepted = true;
            out.id = id;
            out.pathLength = static_cast<unsigned>(s.hops.size());
        }
    }
    MMR_TRACE_INSTANT(TraceCat::Setup,
                      out.accepted ? "probe_established"
                                   : "probe_failed",
                      s.finishedAt, s.request.src, out.id,
                      static_cast<std::int32_t>(s.request.dst),
                      static_cast<std::int32_t>(out.setupCycles));
    timedDone.emplace(s.token, out);
}

const Network::TimedOutcome *
Network::timedResult(std::uint64_t token) const
{
    auto it = timedDone.find(token);
    return it == timedDone.end() ? nullptr : &it->second;
}

bool
Network::takeTimedResult(std::uint64_t token, TimedOutcome &out)
{
    auto it = timedDone.find(token);
    if (it == timedDone.end())
        return false;
    out = it->second;
    timedDone.erase(it);
    return true;
}

std::size_t
Network::pendingSetups() const
{
    return probeMgr->inFlight();
}

Network::SetupOutcome
Network::openCbr(NodeId src, NodeId dst, double rate_bps,
                 SetupPolicy policy)
{
    if (rate_bps <= 0.0 || rate_bps > cfg.router.linkRateBps)
        return SetupOutcome{}; // no link can carry this rate
    SetupRequest req;
    req.src = src;
    req.dst = dst;
    req.klass = TrafficClass::CBR;
    req.allocCycles = cyclesPerRound(rate_bps, cfg.router.linkRateBps,
                                     cfg.router.cyclesPerRound());
    auto router_at = [this](NodeId n) -> MmrRouter & {
        return *routers[n];
    };
    auto ni_of = [this](NodeId n) { return niPort(n); };
    const SetupResult sr =
        establishPath(topo, router_at, ni_of, req, policy, rand,
                      [this](NodeId n, PortId port) {
                          return directedLinkUp(n, port);
                      });
    return finishSetup(req, sr, rate_bps, 0.0, 0);
}

Network::SetupOutcome
Network::openVbr(NodeId src, NodeId dst, double mean_bps,
                 double peak_bps, int priority, SetupPolicy policy)
{
    if (mean_bps <= 0.0 || peak_bps < mean_bps ||
        peak_bps > cfg.router.linkRateBps)
        return SetupOutcome{};
    SetupRequest req;
    req.src = src;
    req.dst = dst;
    req.klass = TrafficClass::VBR;
    req.permCycles = cyclesPerRound(mean_bps, cfg.router.linkRateBps,
                                    cfg.router.cyclesPerRound());
    req.peakCycles = cyclesPerRound(peak_bps, cfg.router.linkRateBps,
                                    cfg.router.cyclesPerRound());
    auto router_at = [this](NodeId n) -> MmrRouter & {
        return *routers[n];
    };
    auto ni_of = [this](NodeId n) { return niPort(n); };
    const SetupResult sr =
        establishPath(topo, router_at, ni_of, req, policy, rand,
                      [this](NodeId n, PortId port) {
                          return directedLinkUp(n, port);
                      });
    return finishSetup(req, sr, mean_bps, peak_bps, priority);
}

bool
Network::closeConnection(ConnId id)
{
    auto it = pcs.find(id);
    if (it == pcs.end())
        return false;
    it->second.closing = true;
    return true;
}

void
Network::processPendingCloses()
{
    // Teardown order is observable (credits return and output VCs free
    // as segments are removed), so walk the closing connections in
    // ascending id order rather than unordered_map bucket order.
    closeScratch.clear();
    // mmr-lint: allow(unordered-iter) order-insensitive: ids are only
    // collected here and sorted below before anything observes them.
    for (const auto &[id, conn] : pcs) {
        if (conn.closing)
            // mmr-lint: allow(hot-path-alloc) amortized: closeScratch
            // is a member; its capacity persists across cycles.
            closeScratch.push_back(id);
    }
    std::sort(closeScratch.begin(), closeScratch.end());
    for (const ConnId id : closeScratch) {
        auto it = pcs.find(id);
        PcsConnection &conn = it->second;
        bool drained = true;
        for (const ReservedHop &hop : conn.hops) {
            const SegmentParams *seg =
                routers[hop.node]->connection(conn.id);
            mmr_assert(seg != nullptr, "missing segment during close");
            const VcState &vc =
                routers[hop.node]->inputMemory(seg->in).vc(seg->inVc);
            if (!vc.empty() || vc.pendingGrants() != 0) {
                drained = false;
                break;
            }
        }
        // A flit can be between routers: in flight on a link.
        if (drained) {
            for (const LinkFlit &lf : linkQueue) {
                if (lf.flit.conn == conn.id) {
                    drained = false;
                    break;
                }
            }
        }
        if (!drained)
            continue;
        for (const ReservedHop &hop : conn.hops)
            routers[hop.node]->removeSegment(conn.id);
        pcs.erase(it);
    }
}

bool
Network::inject(ConnId id, Flit f, Cycle now)
{
    auto it = pcs.find(id);
    if (it == pcs.end() || it->second.failed || it->second.closing)
        return false; // torn down (possibly by a link failure)
    const PcsConnection &conn = it->second;
    f.src = conn.src;
    f.dst = conn.dst;
    f.readyTime = now;
    if (!routers[conn.src]->inject(id, f)) {
        ++statInjectRejects;
        return false;
    }
    return true;
}

Network::InjectHandle
Network::resolveInject(ConnId id)
{
    InjectHandle h;
    auto it = pcs.find(id);
    if (it == pcs.end() || it->second.failed || it->second.closing)
        return h; // torn down: invalid handle, push() would refuse
    const PcsConnection &conn = it->second;
    const SegmentParams *seg = routers[conn.src]->connection(id);
    mmr_assert(seg != nullptr,
               "open connection without a source segment");
    h.net = this;
    h.router = routers[conn.src].get();
    h.conn = id;
    h.src = conn.src;
    h.dst = conn.dst;
    h.in = seg->in;
    h.inVc = seg->inVc;
    h.klass = seg->klass;
    return h;
}

bool
Network::InjectHandle::push(Flit f, Cycle now)
{
    f.conn = conn;
    f.klass = klass;
    f.src = src;
    f.dst = dst;
    f.readyTime = now;
    if (!router->injectRaw(in, inVc, f)) {
        ++net->statInjectRejects;
        return false;
    }
    return true;
}

bool
Network::renegotiateBandwidth(ConnId id, double new_rate_bps)
{
    auto it = pcs.find(id);
    if (it == pcs.end() || it->second.klass != TrafficClass::CBR)
        return false;
    const PcsConnection &conn = it->second;

    // Remember the old rate (identical at each hop) for rollback.
    const SegmentParams *seg0 =
        routers[conn.hops.front().node]->connection(id);
    mmr_assert(seg0 != nullptr, "connection without a first segment");
    const double old_rate =
        cfg.router.linkRateBps / seg0->interArrival;

    std::size_t done = 0;
    for (; done < conn.hops.size(); ++done) {
        if (!routers[conn.hops[done].node]->renegotiateBandwidth(
                id, new_rate_bps))
            break;
    }
    if (done == conn.hops.size())
        return true;
    // Rollback the hops that already accepted the new rate.
    for (std::size_t k = 0; k < done; ++k) {
        const bool ok = routers[conn.hops[k].node]->renegotiateBandwidth(
            id, old_rate);
        mmr_assert(ok, "rollback to the old rate must always fit");
    }
    return false;
}

bool
Network::setConnectionPriority(ConnId id, int priority)
{
    auto it = pcs.find(id);
    if (it == pcs.end() || it->second.klass != TrafficClass::VBR)
        return false;
    for (const ReservedHop &hop : it->second.hops)
        routers[hop.node]->setConnectionPriority(id, priority);
    return true;
}

std::vector<NodeId>
Network::connectionPath(ConnId id) const
{
    std::vector<NodeId> path;
    auto it = pcs.find(id);
    if (it == pcs.end())
        return path;
    path.reserve(it->second.hops.size());
    for (const ReservedHop &hop : it->second.hops)
        path.push_back(hop.node);
    return path;
}

// ---------------------------------------------------------------------
// Datagram traffic
// ---------------------------------------------------------------------

void
Network::sendDatagram(NodeId src, NodeId dst, TrafficClass klass,
                      ConnId flow, Cycle now, std::uint32_t seq)
{
    mmr_assert(src < topo.numNodes() && dst < topo.numNodes(),
               "datagram endpoints out of range");
    mmr_assert(klass == TrafficClass::BestEffort ||
                   klass == TrafficClass::Control,
               "datagrams are best-effort or control packets");
    ++statDatagramsSent;
    MMR_TRACE_INSTANT(TraceCat::Flit, "dgram_send", now, src, flow,
                      static_cast<std::int32_t>(dst));

    Flit f;
    f.conn = flow;
    f.klass = klass;
    f.seq = seq;
    f.src = src;
    f.dst = dst;
    f.createTime = now;
    f.readyTime = now;

    if (src == dst) {
        deliverToHost(dst, f, now);
        return;
    }

    PendingArrival p;
    p.node = src;
    p.inPort = kInvalidPort; // NI-side injection
    p.inVc = kInvalidVc;
    p.flit = f;
    if (!placeDatagram(p, now))
        pendingArrivals.push_back(std::move(p));
}

bool
Network::placeDatagram(PendingArrival &p, Cycle now)
{
    MmrRouter &router = *routers[p.node];
    const bool ni_injection = p.inPort == kInvalidPort;

    // Choose the output side first (no state is touched on failure).
    PortId out = kInvalidPort;
    bool out_is_down = false;
    if (p.node == p.flit.dst) {
        out = niPort(p.node);
    } else {
        // Adaptive up*-down*: try legal hops, closest-first.
        const NodeId pick = updownRoutes->adaptiveNextHop(
            p.node, p.flit.dst, p.flit.downPhase, rand);
        if (pick == kInvalidNode) {
            ++statDatagramDrops;
            if (!ni_injection) {
                // The packet was holding a link VC and its credit at
                // the upstream router; hand both back.
                const NodeId upstream = topo.neighborAt(p.node, p.inPort);
                const PortId up_port =
                    topo.portTowards(upstream, p.node);
                routers[upstream]->credits().replenish(up_port, p.inVc);
                routers[upstream]->routing().freeOutputVc(up_port,
                                                          p.inVc);
            }
            mmr_warn("datagram at node ", p.node, " for ", p.flit.dst,
                     " has no legal route; dropping");
            return true; // consumed (dropped)
        }
        std::vector<NodeId> hops = updownRoutes->legalNextHops(
            p.node, p.flit.dst, p.flit.downPhase);
        // Put the adaptive pick first, keep the rest as fallbacks.
        std::stable_partition(hops.begin(), hops.end(),
                              [pick](NodeId h) { return h == pick; });
        for (NodeId h : hops) {
            const PortId port = topo.portTowards(p.node, h);
            if (router.routing().freeOutputVcCount(port) > 0) {
                out = port;
                out_is_down = !updownRoutes->isUp(p.node, h);
                break;
            }
        }
        if (out == kInvalidPort)
            return false; // all next hops exhausted; retry later
    }

    const VcId out_vc = router.routing().allocOutputVc(out);
    if (out_vc == kInvalidVc)
        return false;

    // Claim the input VC.
    PortId in = p.inPort;
    VcId in_vc = p.inVc;
    bool owns_input = false;
    if (ni_injection) {
        in = niPort(p.node);
        in_vc = router.routing().allocInputVc(in);
        owns_input = true;
        if (in_vc == kInvalidVc) {
            router.routing().freeOutputVc(out, out_vc);
            return false;
        }
    } else if (router.inputMemory(in).vc(in_vc).bound()) {
        // The previous packet on this link VC has not drained yet.
        router.routing().freeOutputVc(out, out_vc);
        return false;
    }

    SegmentParams seg;
    seg.id = nextTransient++;
    seg.klass = p.flit.klass;
    seg.in = in;
    seg.inVc = in_vc;
    seg.out = out;
    seg.outVc = out_vc;
    seg.releaseWhenEmpty = true;
    seg.ownsInputVc = owns_input;
    // A link output VC stays allocated until the downstream router
    // releases the packet (see the segment-removed hook); only the
    // NI hop's output VC has no downstream router and is freed with
    // this segment.
    seg.ownsOutputVc = (out == niPort(p.node));
    if (!routers[p.node]->installSegment(seg)) {
        router.routing().freeOutputVc(out, out_vc);
        if (owns_input)
            router.routing().freeInputVc(in, in_vc);
        return false;
    }

    Flit f = p.flit;
    if (p.node != f.dst) {
        f.downPhase = f.downPhase || out_is_down;
        ++f.hops;
    }
    f.readyTime = now;
    const bool ok = router.injectRaw(in, in_vc, f);
    mmr_assert(ok, "deposit into a fresh datagram VC cannot fail");
    return true;
}

// mmr-lint: allow(hot-path-alloc) deque block churn is bounded by the
// number of in-flight link flits; pendingArrivals recycles its blocks.
void
Network::processArrivals(Cycle now)
{
    // Link flits whose latency has elapsed enter the downstream
    // router: stream flits follow their installed segment; datagrams
    // claim next-hop resources.
    std::deque<LinkFlit> later;
    while (!linkQueue.empty()) {
        LinkFlit lf = linkQueue.front();
        linkQueue.pop_front();
        if (lf.arriveAt > now) {
            later.push_back(std::move(lf));
            continue;
        }
        // CRC check at the input: a flit corrupted on the wire is
        // discarded with accounting.  The upstream credit returns so
        // the VC is not wedged; a datagram additionally releases the
        // link VC it was holding (no downstream segment ever will).
        if (lf.flit.corrupted) {
            ++statFlitsCorrupted;
            if (!lf.flit.isStream())
                ++statDatagramsLost;
            const NodeId upstream = topo.neighborAt(lf.toNode, lf.toPort);
            const PortId up_port = topo.portTowards(upstream, lf.toNode);
            routers[upstream]->credits().replenish(up_port, lf.vc);
            if (!lf.flit.isStream())
                routers[upstream]->routing().freeOutputVc(up_port, lf.vc);
            MMR_OBS_EVENT(TraceCat::Fault, "crc_drop", now,
                          lf.toNode, lf.flit.conn,
                          static_cast<std::int32_t>(lf.flit.src));
            continue;
        }
        Flit f = lf.flit;
        f.readyTime = now;
        // Wire time of this hop (latency plus any cycles spent parked
        // behind same-cycle arrivals): the LinkTransit latency stage.
        e2e.recordLinkTransit(cfg.linkLatency + (now - lf.arriveAt),
                              now);
        if (f.isStream()) {
            if (!routers[lf.toNode]->injectRaw(lf.toPort, lf.vc, f))
                ++statInjectRejects;
            continue;
        }
        PendingArrival p;
        p.node = lf.toNode;
        p.inPort = lf.toPort;
        p.inVc = lf.vc;
        p.flit = f;
        if (!placeDatagram(p, now))
            pendingArrivals.push_back(std::move(p));
    }
    linkQueue.swap(later);

    // Retry datagrams blocked on earlier cycles.
    const std::size_t n = pendingArrivals.size();
    for (std::size_t i = 0; i < n; ++i) {
        PendingArrival p = std::move(pendingArrivals.front());
        pendingArrivals.pop_front();
        if (!placeDatagram(p, now))
            pendingArrivals.push_back(std::move(p));
    }
}

// ---------------------------------------------------------------------
// Clocked
// ---------------------------------------------------------------------

void
Network::evaluate(Cycle now)
{
    // Serial prologue on the coordinator: the probe protocol, link
    // arrivals, and pending closes all run before any router
    // evaluates (in the serial path they always did), so routers
    // never observe partial prologue state from a worker thread.
    probeMgr->step(now);
    processArrivals(now);
    processPendingCloses();
    if (numShards <= 1) {
        for (auto &r : routers)
            r->evaluate(now);
        return;
    }
    phaseCycle = now;
    deferring = true;
    pool->runPhase(now, evalPhase);
    deferring = false;
    drainMailboxes(now);
}

void
Network::advance(Cycle now)
{
    if (numShards <= 1) {
        for (auto &r : routers)
            r->advance(now);
        return;
    }
    phaseCycle = now;
    deferring = true;
    pool->runPhase(now, advPhase);
    deferring = false;
    drainMailboxes(now);
}

void
Network::drainMailboxes(Cycle now)
{
    // Deterministic merge: ascending shard id, per-shard append
    // (emission) order.  With contiguous-id partitions this replays
    // every deferred side effect — link-queue pushes, corrupt-hook
    // RNG draws, upstream credit returns, end-to-end FP accumulation —
    // in exactly the order the serial loop produced them, which is
    // what keeps networkResultDigest bit-identical across shard
    // counts (DESIGN.md §12).
    for (unsigned s = 0; s < numShards; ++s) {
        auto &log = mailboxes[s].log;
        for (const DeferredEvent &e : log) {
            switch (e.kind) {
            case DeferredEvent::Kind::Egress:
                handleEgress(e.node, e.port, e.vc, e.flit, now);
                break;
            case DeferredEvent::Kind::Credit:
                handleCreditReturn(e.node, e.port, e.vc, now);
                break;
            case DeferredEvent::Kind::SegRemoved:
                handleSegmentRemoved(e.node, e.seg);
                break;
            }
        }
        log.clear();
    }
}

// ---------------------------------------------------------------------
// Invariant auditing
// ---------------------------------------------------------------------

void
Network::registerInvariants(InvariantChecker &chk, unsigned sweep_period)
{
    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        routers[n]->registerInvariants(
            chk, sweep_period, "router" + std::to_string(n) + ".",
            [this, n](std::vector<unsigned> &alloc,
                      std::vector<unsigned> &peak) {
                probeMgr->accountReservations(n, alloc, peak);
            });
    }

    // Both directions of a link agree on its health — the fault
    // model's own bookkeeping is self-consistent.
    chk.add(
        "net-link-symmetry",
        [this](Cycle) {
            for (NodeId n = 0; n < topo.numNodes(); ++n) {
                for (const auto &port : topo.ports(n)) {
                    const bool here = linkDown[n][port.localPort];
                    const bool there =
                        linkDown[port.neighbor][port.remotePort];
                    if (here != there) {
                        mmr_invariant_violated(
                            "net-link-symmetry", "link ", n, "<->",
                            port.neighbor,
                            " is down in one direction only");
                    }
                }
            }
        },
        sweep_period);

    // Every open PCS connection still has its segment installed in
    // every router along its path — teardown never leaves a
    // half-removed path behind.
    chk.add(
        "net-pcs-segments",
        [this](Cycle) {
            // mmr-lint: allow(unordered-iter) order-insensitive: pure
            // check; any violation panics regardless of visit order.
            for (const auto &[id, conn] : pcs) {
                for (const ReservedHop &hop : conn.hops) {
                    if (routers[hop.node]->connection(id) == nullptr) {
                        mmr_invariant_violated(
                            "net-pcs-segments", "connection ", id,
                            " (", conn.src, "->", conn.dst,
                            ") has no segment at node ", hop.node);
                    }
                }
            }
        },
        sweep_period);
}

// ---------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------

void
Network::registerStats(StatsRegistry &reg, MmrRouter::StatsDetail detail)
{
    reg.addCounter("net.flits.delivered", &statDelivered);
    reg.addCounter("net.flits.lost", &statLostFlits);
    reg.addCounter("net.flits.corrupted", &statFlitsCorrupted);
    reg.addCounter("net.datagrams.lost", &statDatagramsLost);
    reg.addCounter("net.inject_rejects", &statInjectRejects);
    reg.addCounter("net.datagrams.sent", &statDatagramsSent);
    reg.addCounter("net.datagrams.delivered", &statDatagramsDone);
    reg.addCounter("net.datagrams.drops", &statDatagramDrops);
    reg.addCounter("net.connections.failed", &statConnsFailed);
    reg.addGauge("net.connections.open", [this] {
        return static_cast<double>(pcs.size());
    });
    reg.addGauge("net.setups.pending", [this] {
        return static_cast<double>(probeMgr->inFlight());
    });
    reg.addGauge("net.link_queue.depth", [this] {
        return static_cast<double>(linkQueue.size());
    });
    reg.addGauge("net.datagrams.pending", [this] {
        return static_cast<double>(pendingArrivals.size());
    });

    for (NodeId n = 0; n < topo.numNodes(); ++n) {
        routers[n]->registerStats(
            reg, "router" + std::to_string(n) + ".", detail);
    }
}

} // namespace mmr
