#include "metrics/steady_state.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace mmr
{

SteadyStateDetector::SteadyStateDetector(Cycle window_cycles,
                                         double tolerance,
                                         unsigned stable_windows)
    : windowCycles(window_cycles), tol(tolerance),
      needed(stable_windows)
{
    mmr_assert(window_cycles > 0, "window length must be positive");
    mmr_assert(tolerance > 0.0, "tolerance must be positive");
    mmr_assert(stable_windows >= 1, "need at least one stable window");
}

void
SteadyStateDetector::addWindow(double value)
{
    if (!history.empty() && !isSteady) {
        const double prev = history.back();
        const double scale = std::max({std::fabs(prev),
                                       std::fabs(value), 1e-9});
        if (std::fabs(value - prev) / scale <= tol) {
            if (++agreeing >= needed) {
                isSteady = true;
                steadyWindow = history.size();
            }
        } else {
            agreeing = 0;
        }
    }
    history.push_back(value);
}

} // namespace mmr
