/**
 * @file
 * Delay/jitter measurement exactly as defined in §5:
 *
 *  - delay: difference between the cycle a flit is ready to be
 *    transmitted through the switch and the cycle it actually leaves
 *    the switch;
 *  - jitter: the difference in the delays of successive flits on a
 *    connection (recorded as |d_i - d_{i-1}| in flit cycles).
 *
 * Recorders gate on a warm-up boundary so statistics cover only the
 * steady-state window (§5 gathers ~100,000 cycles after steady state).
 */

#ifndef MMR_METRICS_RECORDER_HH
#define MMR_METRICS_RECORDER_HH

#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "base/types.hh"
#include "obs/histogram.hh"
#include "traffic/rates.hh"

namespace mmr
{

/** Per-connection delay and jitter accumulators. */
class ConnectionRecorder
{
  public:
    /**
     * Record one flit leaving the switch.
     * @param delay_cycles switch delay of the flit in flit cycles
     * @param measured false during warm-up: updates the jitter
     *                 reference but not the statistics
     */
    void record(double delay_cycles, bool measured);

    const StreamStat &delay() const { return delayStat; }
    const StreamStat &jitter() const { return jitterStat; }
    std::uint64_t flitCount() const { return flits; }

    /** True once record() has been called at least once. */
    bool touched() const { return flits > 0; }

  private:
    StreamStat delayStat;
    StreamStat jitterStat;
    double lastDelay = 0.0;
    bool haveLast = false;
    std::uint64_t flits = 0;
};

/**
 * Per-class QoS deadline accounting: every measured flit of a class
 * with a configured delay budget is checked against it, counting
 * violations and the worst excess (§4.3's deadline argument made
 * measurable — the violation *rate* is the figure of merit reported
 * next to the acceptance ratio).
 */
struct QosCounters
{
    Cycle budgetCycles = 0;       ///< 0 = no deadline configured
    std::uint64_t flits = 0;      ///< measured flits checked
    std::uint64_t violations = 0; ///< flits with delay > budget
    Cycle worstExcessCycles = 0;  ///< max(delay - budget) over flits

    double
    violationRate() const
    {
        return flits ? static_cast<double>(violations) /
                           static_cast<double>(flits)
                     : 0.0;
    }
};

/** Whole-experiment aggregation across connections. */
class MetricsRecorder
{
  public:
    /** Start measuring (end of warm-up). */
    void startMeasurement(Cycle now) { measureStart = now; }
    bool measuring(Cycle now) const { return now >= measureStart; }

    /**
     * Record one flit leaving the switch.  @p klass selects the
     * per-class delay histogram and QoS budget; @p stages, when
     * non-null, feeds the per-stage latency decomposition (the
     * router's apply path passes both, legacy callers neither).
     */
    void recordDeparture(ConnId conn, Cycle now, double delay_cycles,
                         TrafficClass klass = TrafficClass::BestEffort,
                         const StageSample *stages = nullptr);

    /** One link hop's wire time (network mode; feeds LinkTransit). */
    void recordLinkTransit(Cycle transit_cycles, Cycle now);

    /** Arm the per-class delay deadline; 0 disables the accounting. */
    void setQosBudget(TrafficClass klass, Cycle budget_cycles);
    const QosCounters &qos(TrafficClass klass) const
    {
        return qosByClass[static_cast<std::size_t>(klass)];
    }

    const LatencyHistogram &stageHistogram(LatencyStage s) const
    {
        return stageHist[static_cast<std::size_t>(s)];
    }

    /** Total switch-delay distribution of one traffic class. */
    const LatencyHistogram &classHistogram(TrafficClass k) const
    {
        return classDelayHist[static_cast<std::size_t>(k)];
    }

    /** One switch output port opportunity: used or idle this cycle. */
    void recordOutputSlot(bool used, Cycle now);

    /**
     * Batch form: @p flits forwarded out of @p ports output-link slots
     * this cycle.  With an N-times-speedup (perfect) switch several
     * flits can share one output slot, so utilization is defined as
     * carried flits over link slots (never exceeds 1: at most one flit
     * enters per input link per cycle).
     */
    void recordOutputSlots(unsigned flits, unsigned ports, Cycle now);

    /** Aggregate mean delay over all measured flits (flit cycles). */
    double meanDelayCycles() const;

    /** Aggregate mean |jitter| over all measured flit pairs (cycles). */
    double meanJitterCycles() const;

    /** Fraction of output-port slots carrying a flit. */
    double switchUtilization() const { return outputSlots.ratio(); }

    std::uint64_t measuredFlits() const;

    /** 99th percentile of measured flit delays (flit cycles). */
    double delayPercentile(double p) const { return delaySketch.percentile(p); }

    const ConnectionRecorder *connection(ConnId conn) const;
    std::vector<ConnId> connections() const;

    /**
     * Retire a finished connection: fold its delay/jitter moments and
     * flit count into the retired aggregates and drop the per-
     * connection entry.  Keeps recorder memory independent of
     * *cumulative* connection count under session churn — only live
     * connections hold a ConnectionRecorder.  Callers must release in
     * a deterministic order (the churn engine reaps coordinator-
     * serial), since StreamStat::merge is floating point.
     */
    void releaseConnection(ConnId conn);

    /** Connections folded into the retired aggregates so far. */
    std::uint64_t retiredConnections() const { return retiredConns; }

  private:
    /**
     * Connection ids are small and dense in practice (the harness
     * hands them out sequentially), so the per-delivered-flit lookup
     * indexes a flat array; ids beyond the direct window fall back to
     * a hash map.  An entry exists once record() touched it.
     */
    static constexpr ConnId kDirectConns = 4096;

    ConnectionRecorder &slot(ConnId conn);
    const ConnectionRecorder *lookup(ConnId conn) const;

    std::vector<ConnectionRecorder> direct; ///< ids < kDirectConns
    std::unordered_map<ConnId, ConnectionRecorder> overflow;

    /** Moments of released connections (releaseConnection). */
    StreamStat retiredDelay;
    StreamStat retiredJitter;
    std::uint64_t retiredConns = 0;
    RatioStat outputSlots;
    PercentileSketch delaySketch;
    Cycle measureStart = 0;

    /** Fixed-footprint distribution state (see obs/histogram.hh):
     * always on — recording is a few integer ops per flit. */
    LatencyHistogram stageHist[kNumLatencyStages];
    LatencyHistogram classDelayHist[kNumTrafficClasses];
    QosCounters qosByClass[kNumTrafficClasses];
};

} // namespace mmr

#endif // MMR_METRICS_RECORDER_HH
