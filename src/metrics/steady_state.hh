/**
 * @file
 * Steady-state detection (§5 methodology: "The simulations were run
 * until steady state was reached and statistics gathered over
 * approximately 100,000 router cycles").
 *
 * The detector watches a stream of per-window means (e.g. mean delay
 * over consecutive windows of N cycles) and declares steady state
 * once K consecutive windows agree within a relative tolerance.  The
 * harness uses it to size the warm-up automatically instead of a
 * fixed cycle count.
 */

#ifndef MMR_METRICS_STEADY_STATE_HH
#define MMR_METRICS_STEADY_STATE_HH

#include <cstddef>
#include <vector>

#include "base/types.hh"

namespace mmr
{

class SteadyStateDetector
{
  public:
    /**
     * @param window_cycles how many cycles one observation window
     *        spans (the caller feeds one sample per window)
     * @param tolerance relative agreement required between windows
     * @param stable_windows consecutive agreeing windows needed
     */
    SteadyStateDetector(Cycle window_cycles, double tolerance = 0.10,
                        unsigned stable_windows = 3);

    /** Feed one window's metric (e.g. mean delay). */
    void addWindow(double value);

    bool steady() const { return isSteady; }

    /** Window index at which steadiness was first declared. */
    std::size_t steadyAtWindow() const { return steadyWindow; }

    /** Cycle count corresponding to steadyAtWindow(). */
    Cycle steadyAtCycle() const
    {
        return static_cast<Cycle>(steadyWindow + 1) * windowCycles;
    }

    std::size_t windowsSeen() const { return history.size(); }
    Cycle windowLength() const { return windowCycles; }

  private:
    Cycle windowCycles;
    double tol;
    unsigned needed;
    unsigned agreeing = 0;
    bool isSteady = false;
    std::size_t steadyWindow = 0;
    std::vector<double> history;
};

} // namespace mmr

#endif // MMR_METRICS_STEADY_STATE_HH
