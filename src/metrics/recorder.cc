#include "metrics/recorder.hh"

#include <algorithm>
#include <cmath>

namespace mmr
{

void
ConnectionRecorder::record(double delay_cycles, bool measured)
{
    ++flits;
    if (measured) {
        delayStat.add(delay_cycles);
        if (haveLast)
            jitterStat.add(std::fabs(delay_cycles - lastDelay));
    }
    lastDelay = delay_cycles;
    haveLast = true;
}

void
MetricsRecorder::recordDeparture(ConnId conn, Cycle now,
                                 double delay_cycles)
{
    const bool measured = measuring(now);
    perConn[conn].record(delay_cycles, measured);
    if (measured)
        delaySketch.add(delay_cycles);
}

void
MetricsRecorder::recordOutputSlot(bool used, Cycle now)
{
    if (!measuring(now))
        return;
    if (used)
        outputSlots.addHit();
    else
        outputSlots.addMiss();
}

void
MetricsRecorder::recordOutputSlots(unsigned flits, unsigned ports,
                                   Cycle now)
{
    if (!measuring(now))
        return;
    outputSlots.addHit(flits);
    if (ports > flits)
        outputSlots.addMiss(ports - flits);
}

double
MetricsRecorder::meanDelayCycles() const
{
    // Merge in sorted connection order: StreamStat::merge is floating
    // point and therefore not associative, so unordered_map iteration
    // order must not leak into reported results (determinism audit).
    StreamStat all;
    for (ConnId conn : connections())
        all.merge(perConn.at(conn).delay());
    return all.mean();
}

double
MetricsRecorder::meanJitterCycles() const
{
    StreamStat all;
    for (ConnId conn : connections())
        all.merge(perConn.at(conn).jitter());
    return all.mean();
}

std::uint64_t
MetricsRecorder::measuredFlits() const
{
    std::uint64_t n = 0;
    for (const auto &[conn, rec] : perConn)
        n += rec.delay().count();
    return n;
}

const ConnectionRecorder *
MetricsRecorder::connection(ConnId conn) const
{
    auto it = perConn.find(conn);
    return it == perConn.end() ? nullptr : &it->second;
}

std::vector<ConnId>
MetricsRecorder::connections() const
{
    std::vector<ConnId> ids;
    ids.reserve(perConn.size());
    for (const auto &[conn, rec] : perConn)
        ids.push_back(conn);
    std::sort(ids.begin(), ids.end());
    return ids;
}

} // namespace mmr
