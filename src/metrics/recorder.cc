#include "metrics/recorder.hh"

#include <algorithm>
#include <cmath>

namespace mmr
{

void
ConnectionRecorder::record(double delay_cycles, bool measured)
{
    ++flits;
    if (measured) {
        delayStat.add(delay_cycles);
        if (haveLast)
            jitterStat.add(std::fabs(delay_cycles - lastDelay));
    }
    lastDelay = delay_cycles;
    haveLast = true;
}

// mmr-lint: allow(hot-path-alloc) grows once per newly observed
// connection (geometric resize / overflow insert); steady-state
// measurement hits existing slots only.
ConnectionRecorder &
MetricsRecorder::slot(ConnId conn)
{
    if (conn < kDirectConns) {
        if (direct.size() <= conn) {
            // Grow geometrically so steady state sees no resizes.
            const std::size_t want = static_cast<std::size_t>(conn) + 1;
            direct.resize(std::min<std::size_t>(
                kDirectConns,
                std::max<std::size_t>(want, direct.size() * 2)));
        }
        return direct[conn];
    }
    return overflow[conn];
}

const ConnectionRecorder *
MetricsRecorder::lookup(ConnId conn) const
{
    if (conn < kDirectConns) {
        if (conn < direct.size() && direct[conn].touched())
            return &direct[conn];
        return nullptr;
    }
    auto it = overflow.find(conn);
    return it == overflow.end() ? nullptr : &it->second;
}

void
MetricsRecorder::recordDeparture(ConnId conn, Cycle now,
                                 double delay_cycles,
                                 TrafficClass klass,
                                 const StageSample *stages)
{
    const bool measured = measuring(now);
    slot(conn).record(delay_cycles, measured);
    if (!measured)
        return;
    delaySketch.add(delay_cycles);

    const auto k = static_cast<std::size_t>(klass);
    const auto delay = static_cast<std::uint64_t>(
        delay_cycles > 0.0 ? delay_cycles : 0.0);
    classDelayHist[k].record(delay);

    QosCounters &q = qosByClass[k];
    if (q.budgetCycles > 0) {
        ++q.flits;
        if (delay > q.budgetCycles) {
            ++q.violations;
            const Cycle excess = delay - q.budgetCycles;
            if (excess > q.worstExcessCycles)
                q.worstExcessCycles = excess;
        }
    }

    if (stages != nullptr) {
        stageHist[static_cast<std::size_t>(LatencyStage::SourceQueue)]
            .record(stages->sourceQueue);
        stageHist[static_cast<std::size_t>(LatencyStage::VcResidency)]
            .record(stages->vcResidency);
        stageHist[static_cast<std::size_t>(LatencyStage::ArbWait)]
            .record(stages->arbWait);
        stageHist[static_cast<std::size_t>(
                      LatencyStage::SwitchTraversal)]
            .record(stages->switchTraversal);
    }
}

void
MetricsRecorder::recordLinkTransit(Cycle transit_cycles, Cycle now)
{
    if (!measuring(now))
        return;
    stageHist[static_cast<std::size_t>(LatencyStage::LinkTransit)]
        .record(transit_cycles);
}

void
MetricsRecorder::setQosBudget(TrafficClass klass, Cycle budget_cycles)
{
    qosByClass[static_cast<std::size_t>(klass)].budgetCycles =
        budget_cycles;
}

void
MetricsRecorder::recordOutputSlot(bool used, Cycle now)
{
    if (!measuring(now))
        return;
    if (used)
        outputSlots.addHit();
    else
        outputSlots.addMiss();
}

void
MetricsRecorder::recordOutputSlots(unsigned flits, unsigned ports,
                                   Cycle now)
{
    if (!measuring(now))
        return;
    outputSlots.addHit(flits);
    if (ports > flits)
        outputSlots.addMiss(ports - flits);
}

void
MetricsRecorder::releaseConnection(ConnId conn)
{
    if (conn < kDirectConns) {
        if (conn >= direct.size() || !direct[conn].touched())
            return;
        retiredDelay.merge(direct[conn].delay());
        retiredJitter.merge(direct[conn].jitter());
        direct[conn] = ConnectionRecorder{};
    } else {
        auto it = overflow.find(conn);
        if (it == overflow.end())
            return;
        retiredDelay.merge(it->second.delay());
        retiredJitter.merge(it->second.jitter());
        overflow.erase(it);
    }
    ++retiredConns;
}

double
MetricsRecorder::meanDelayCycles() const
{
    // Merge in sorted connection order: StreamStat::merge is floating
    // point and therefore not associative, so unordered_map iteration
    // order must not leak into reported results (determinism audit).
    // Retired connections were folded in release order, which callers
    // keep deterministic; they seed the aggregate.
    StreamStat all = retiredDelay;
    for (ConnId conn : connections())
        all.merge(lookup(conn)->delay());
    return all.mean();
}

double
MetricsRecorder::meanJitterCycles() const
{
    StreamStat all = retiredJitter;
    for (ConnId conn : connections())
        all.merge(lookup(conn)->jitter());
    return all.mean();
}

std::uint64_t
MetricsRecorder::measuredFlits() const
{
    std::uint64_t n = retiredDelay.count();
    for (const ConnectionRecorder &rec : direct)
        n += rec.delay().count();
    // mmr-lint: allow(unordered-iter) order-insensitive: commutative
    // integer sum.
    for (const auto &[conn, rec] : overflow)
        n += rec.delay().count();
    return n;
}

const ConnectionRecorder *
MetricsRecorder::connection(ConnId conn) const
{
    return lookup(conn);
}

std::vector<ConnId>
MetricsRecorder::connections() const
{
    // Direct ids come out ascending by construction; overflow ids are
    // all larger than any direct id, so sorting just the tail keeps
    // the whole list ordered (the determinism audit relies on a
    // stable merge order in the aggregates above).
    std::vector<ConnId> ids;
    ids.reserve(direct.size() + overflow.size());
    for (std::size_t c = 0; c < direct.size(); ++c)
        if (direct[c].touched())
            ids.push_back(static_cast<ConnId>(c));
    const std::size_t tail = ids.size();
    // mmr-lint: allow(unordered-iter) order-insensitive: ids are
    // collected and the tail is sorted on the next line.
    for (const auto &[conn, rec] : overflow)
        ids.push_back(conn);
    std::sort(ids.begin() + tail, ids.end());
    return ids;
}

} // namespace mmr
